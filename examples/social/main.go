// Social: run the paper's complex (LDBC-derived) workload — the Figure 2
// macro-benchmark — on an LDBC-style social network across several
// engines, and watch the macro picture blur what the micro-benchmarks
// explain (Sqlg wins single-label hops, loses unfiltered 2-hop scans).
//
// Run with:
//
//	go run ./examples/social
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	const scale = 0.002
	fmt.Printf("generating ldbc dataset at scale %g...\n", scale)
	g := datasets.ByName("ldbc").Generate(scale)
	fmt.Printf("  %d vertices, %d edges, %d labels\n\n", g.NumVertices(), g.NumEdges(), len(g.Labels()))

	ctx := context.Background()
	names := []string{"neo-1.9", "orient", "sqlg", "titan-1.0"}

	fmt.Printf("%-18s", "query")
	for _, n := range names {
		fmt.Printf("%12s", n)
	}
	fmt.Println()

	type cell struct {
		d   time.Duration
		cnt int64
	}
	table := map[string]map[string]cell{}
	for _, en := range names {
		e, err := engines.New(en)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.BulkLoad(g)
		if err != nil {
			log.Fatal(err)
		}
		cp := harness.ComplexFor(g, 1, res)
		for _, cq := range workload.ComplexQueries() {
			start := time.Now()
			r, err := cq.Run(ctx, e, cp)
			if err != nil {
				log.Fatalf("%s: %s: %v", en, cq.Name, err)
			}
			if table[cq.Name] == nil {
				table[cq.Name] = map[string]cell{}
			}
			table[cq.Name][en] = cell{time.Since(start), r.Count}
		}
		e.Close()
	}

	for _, cq := range workload.ComplexQueries() {
		fmt.Printf("%-18s", cq.Name)
		for _, en := range names {
			c := table[cq.Name][en]
			fmt.Printf("%12s", c.d.Round(10*time.Microsecond))
		}
		fmt.Println()
	}

	fmt.Println("\nresult counts agree across engines:")
	for _, cq := range workload.ComplexQueries() {
		ref := table[cq.Name][names[0]].cnt
		agree := true
		for _, en := range names {
			if table[cq.Name][en].cnt != ref {
				agree = false
			}
		}
		fmt.Printf("  %-18s count=%-8d agree=%v\n", cq.Name, ref, agree)
	}
}
