// Knowledgebase: micro-benchmark a Freebase-style knowledge graph —
// the workload family where the paper's engines diverge hardest — and
// demonstrate the effect of attribute indexing (Figure 4(c)).
//
// The label-rich, hub-heavy, fragmented structure makes unfiltered
// traversals expensive on the relational engine (a join per label
// table) and property search expensive everywhere until an index is
// built.
//
// Run with:
//
//	go run ./examples/knowledgebase
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/gremlin"
)

func main() {
	const scale = 0.002
	spec := datasets.ByName("frb-o")
	fmt.Printf("generating %s (%s) at scale %g...\n", spec.Name, spec.Desc, scale)
	g := spec.Generate(scale)
	row := datasets.Stats(g)
	fmt.Printf("  |V|=%d |E|=%d |L|=%d components=%d maxdeg=%d\n\n",
		row.V, row.E, row.L, row.Components, row.MaxDeg)

	ctx := context.Background()
	picks := datasets.Pick(g, 11, 4)
	hub := picks.Vertices[0]

	for _, en := range []string{"neo-1.9", "sparksee", "sqlg", "blaze"} {
		e, err := engines.New(en)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := e.BulkLoad(g)
		if err != nil {
			log.Fatal(err)
		}
		loadTime := time.Since(start)
		gg := gremlin.New(e)
		v := res.VertexIDs[hub]

		t0 := time.Now()
		n1, _ := gg.VID(v).Both().Count(ctx)
		neighborTime := time.Since(t0)

		t0 = time.Now()
		reach, err := gremlin.BFS(ctx, e, v, 3)
		bfsTime := time.Since(t0)
		if err != nil {
			log.Fatalf("%s: BFS: %v", en, err)
		}

		// Property search: scan, then indexed (Figure 4(c)).
		t0 = time.Now()
		hits, _ := gg.VHas("type", core.S("government")).Count(ctx)
		scanTime := time.Since(t0)

		idxNote := "indexed"
		if err := e.BuildVertexPropIndex("type"); err != nil {
			idxNote = "no user indexes (as in the paper)"
		}
		t0 = time.Now()
		hits2, _ := gremlin.New(e).VHas("type", core.S("government")).Count(ctx)
		idxTime := time.Since(t0)
		if hits != hits2 {
			log.Fatalf("%s: index changed results: %d vs %d", en, hits, hits2)
		}

		fmt.Printf("%-10s load=%-9s both(v)=%-4d in %-9s bfs3=%-5d in %-9s search=%-5d scan=%-9s idx=%-9s (%s)\n",
			en, loadTime.Round(time.Millisecond),
			n1, neighborTime.Round(10*time.Microsecond),
			len(reach), bfsTime.Round(10*time.Microsecond),
			hits, scanTime.Round(10*time.Microsecond), idxTime.Round(10*time.Microsecond), idxNote)
		e.Close()
	}
	fmt.Println("\nshapes to notice (paper Sections 6.2–6.4):")
	fmt.Println("  - blaze loads orders of magnitude slower (per-statement B+Tree updates)")
	fmt.Println("  - sqlg's unfiltered traversals pay a join per label table")
	fmt.Println("  - indexes help neo/sqlg; sparksee accepts but ignores them")
}
