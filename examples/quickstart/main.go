// Quickstart: build a small property graph in one engine, query it
// through the Gremlin-style traversal API, and print what the paper's
// primitive operations look like in code.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/gremlin"
)

func main() {
	// Any of the nine configurations works identically behind the
	// core.Engine contract; pick the Neo4j-style native engine.
	e, err := engines.New("neo-1.9")
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	// --- create (Table 2, Q2–Q7) ---
	ann, _ := e.AddVertex(core.Props{"name": core.S("ann"), "age": core.I(31)})
	bob, _ := e.AddVertex(core.Props{"name": core.S("bob"), "age": core.I(27)})
	cay, _ := e.AddVertex(core.Props{"name": core.S("cay"), "age": core.I(35)})
	e.AddEdge(ann, bob, "knows", core.Props{"since": core.I(2015)})
	e.AddEdge(bob, cay, "knows", nil)
	e.AddEdge(ann, cay, "follows", nil)

	ctx := context.Background()
	g := gremlin.New(e)

	// --- read (Q8–Q15) ---
	nv, _ := g.V().Count(ctx)
	ne, _ := g.E().Count(ctx)
	fmt.Printf("graph has %d vertices, %d edges\n", nv, ne)

	labels, _ := g.E().DistinctLabels(ctx)
	fmt.Printf("edge labels: %v\n", labels)

	hits, _ := g.VHas("name", core.S("bob")).IDs(ctx)
	fmt.Printf("g.V.has(name, bob) -> %v\n", hits)

	// --- traverse (Q22–Q27) ---
	friends, _ := g.VID(ann).Out("knows").Values(ctx, "name")
	fmt.Printf("ann knows: %v\n", friends)

	twoHop, _ := g.VID(ann).Out().Out().Dedup().Values(ctx, "name")
	fmt.Printf("two hops from ann: %v\n", twoHop)

	// --- BFS and shortest path (Q32, Q34) ---
	reach, _ := gremlin.BFS(ctx, e, ann, 2)
	fmt.Printf("BFS(ann, depth 2) reaches %d vertices\n", len(reach))

	path, _ := gremlin.ShortestPath(ctx, e, ann, cay)
	fmt.Printf("shortest path ann->cay has %d vertices\n", len(path))

	// --- update & delete (Q16–Q21) ---
	e.SetVertexProp(ann, "age", core.I(32))
	age, _ := e.VertexProp(ann, "age")
	fmt.Printf("ann's age is now %v\n", age)

	e.RemoveVertex(bob) // cascades to bob's edges
	nv, _ = g.V().Count(ctx)
	ne, _ = g.E().Count(ctx)
	fmt.Printf("after removing bob: %d vertices, %d edges\n", nv, ne)

	fmt.Printf("space: %d bytes across %d store components\n",
		e.SpaceUsage().Total, len(e.SpaceUsage().Breakdown))
}
