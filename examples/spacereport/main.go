// Spacereport: reproduce Figure 1's space-occupancy comparison on one
// dataset, with per-component breakdowns that show *why* each
// architecture costs what it costs: BlazeGraph's three statement
// indexes plus a pre-allocated journal, Titan's delta-encoded
// adjacency, OrientDB's per-label cluster files, Neo4j's fixed-size
// records.
//
// Run with:
//
//	go run ./examples/spacereport
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/datasets"
	"repro/internal/engines"
	"repro/internal/graphson"
)

type sink struct{ n int64 }

func (s *sink) Write(p []byte) (int, error) { s.n += int64(len(p)); return len(p), nil }

func main() {
	const scale = 0.002
	spec := datasets.ByName("frb-m")
	g := spec.Generate(scale)
	var raw sink
	if err := graphson.Write(&raw, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at scale %g: %d vertices, %d edges, raw GraphSON %.2f MB\n\n",
		spec.Name, scale, g.NumVertices(), g.NumEdges(), float64(raw.n)/(1<<20))

	type entry struct {
		name  string
		total int64
		parts []string
	}
	var rows []entry
	for _, en := range engines.Names() {
		e, err := engines.New(en)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := e.BulkLoad(g); err != nil {
			log.Fatal(err)
		}
		r := e.SpaceUsage()
		var parts []string
		keys := make([]string, 0, len(r.Breakdown))
		for k := range r.Breakdown {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return r.Breakdown[keys[i]] > r.Breakdown[keys[j]] })
		for _, k := range keys {
			if r.Breakdown[k] > 0 {
				parts = append(parts, fmt.Sprintf("%s=%.2fMB", k, float64(r.Breakdown[k])/(1<<20)))
			}
		}
		rows = append(rows, entry{en, r.Total, parts})
		e.Close()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].total < rows[j].total })

	fmt.Println("space occupancy, smallest first (Figure 1 shape: titan compact, blaze ~3x):")
	for _, r := range rows {
		fmt.Printf("  %-10s %8.2f MB   %v\n", r.name, float64(r.total)/(1<<20), r.parts)
	}
}
