package wallclock_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/wallclock"
)

func TestWallclockPositive(t *testing.T) {
	atest.Run(t, "testdata/src/internal/harness", wallclock.Analyzer)
}

func TestWallclockServeScope(t *testing.T) {
	atest.Run(t, "testdata/src/internal/serve", wallclock.Analyzer)
}

func TestWallclockOutOfScopeIsClean(t *testing.T) {
	atest.Run(t, "testdata/src/outofscope", wallclock.Analyzer)
}
