// Package wallclock forbids reading the wall clock in packages that
// produce exported results. A time.Now captured into a stream header,
// checkpoint, snapshot payload or GraphSON document makes two
// otherwise-identical runs differ byte-for-byte, breaking the
// fingerprint/byte-identity guarantee. Result-producing code must take
// its clock through the harness' injectable now/since fields (frozen
// in tests) or carry timestamps in from the caller; genuinely
// operational uses — handshake deadlines, heartbeat stall detection,
// stale-temp sweeps — document themselves with a //lint:gdb-allow
// directive.
package wallclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Default is the set of result-producing packages: harness writes
// streams and checkpoints, datasets writes snapshot artifacts,
// graphson renders exports, remote ships all three across the wire,
// serve emits latency reports and op logs that must replay
// byte-identically under a frozen clock.
var Default = analysis.Scope{
	"internal/harness",
	"internal/datasets",
	"internal/graphson",
	"internal/remote",
	"internal/serve",
}

// Analyzer applies the rule over the Default scope.
var Analyzer = New(Default)

// banned are the time package's wall-clock reads. time.Sleep and timer
// construction are deliberately absent: they consume durations, they
// do not observe the clock.
var banned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// New builds a wallclock analyzer restricted to scope.
func New(scope analysis.Scope) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "wallclock",
		Doc:  "forbids time.Now/time.Since in result-producing packages outside the frozen-clock abstraction",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !scope.Match(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
					return true
				}
				pass.Reportf(id.Pos(), "time.%s in result-producing package %s; route the clock through the injectable now/since abstraction", fn.Name(), pass.Pkg.Path())
				return true
			})
		}
		return nil
	}
	return a
}
