// Package outofscope is wallclock analyzer testdata: its import path
// matches no scope entry, so wall-clock reads here are legal and the
// package must load clean.
package outofscope

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func Stamp() time.Time {
	return time.Now()
}
