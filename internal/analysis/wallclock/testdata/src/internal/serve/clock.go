// Package serve is wallclock analyzer testdata: it sits at an import
// path ending in internal/serve, so the default scope applies — the
// serving layer's reports and op logs must replay byte-identically
// under a frozen clock.
package serve

import "time"

// measure is the shape of the mistake the scope entry guards against:
// timing an operation directly instead of through the runner's
// injectable now/since fields.
func measure(op func()) time.Duration {
	start := time.Now() // want `\[wallclock\] time\.Now in result-producing package`
	op()
	return time.Since(start) // want `\[wallclock\] time\.Since in result-producing package`
}

// injectableDefault mirrors serve.NewRunner: the production clock is
// fine when documented as the injectable default.
func injectableDefault() func() time.Time {
	//lint:gdb-allow wallclock testdata exercising the directive on the next line
	return time.Now
}

// pacing consumes durations without observing the clock; open-loop
// pacing via sleep is legitimate and must stay silent.
func pacing(d time.Duration) {
	time.Sleep(d)
}
