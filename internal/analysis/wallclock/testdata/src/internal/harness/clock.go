// Package harness is wallclock analyzer testdata: it sits at an
// import path ending in internal/harness, so the default scope applies.
package harness

import "time"

type sample struct {
	at  time.Time
	dur time.Duration
}

func stamp() sample {
	start := time.Now() // want `\[wallclock\] time\.Now in result-producing package`
	return sample{
		at:  start,
		dur: time.Since(start), // want `\[wallclock\] time\.Since in result-producing package`
	}
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `\[wallclock\] time\.Until in result-producing package`
}

// valueUse demonstrates that storing the function value is flagged
// too — a smuggled clock is still a clock.
func valueUse() func() time.Time {
	return time.Now // want `\[wallclock\] time\.Now in result-producing package`
}

// allowed carries the escape hatch with a reason and stays silent.
func allowed() time.Time {
	//lint:gdb-allow wallclock testdata exercising the directive on the next line
	return time.Now()
}

// durationsOnly consumes durations without observing the clock; the
// analyzer must not fire here.
func durationsOnly(d time.Duration) {
	time.Sleep(d / 2)
	_ = d.Seconds()
}
