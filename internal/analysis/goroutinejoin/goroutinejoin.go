// Package goroutinejoin flags `go func(){...}()` launches in the
// concurrency-heavy layers (internal/remote, internal/harness) whose
// goroutine is neither tracked by a sync.WaitGroup nor select-guarded
// by a channel receive. An untracked, unguarded goroutine is exactly
// the shape behind the PR 5 shutdown races: it outlives Close, touches
// freed connections, or leaks per-request. A goroutine passes if its
// body calls (*sync.WaitGroup).Done (the launcher joins it) or
// contains a select with a receive arm (a done/stop channel can end
// it); launches that are structurally joined some other way — e.g. a
// result always drained from a channel — take a //lint:gdb-allow
// directive with the explanation.
package goroutinejoin

import (
	"go/ast"

	"repro/internal/analysis"
)

// Default covers the layers where goroutine lifetime bugs translate
// into shutdown races and leaked connections.
var Default = analysis.Scope{
	"internal/remote",
	"internal/harness",
}

// Analyzer applies the rule over the Default scope.
var Analyzer = New(Default)

// New builds a goroutinejoin analyzer restricted to scope.
func New(scope analysis.Scope) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "goroutinejoin",
		Doc:  "flags go-func launches with no WaitGroup tracking and no select guard",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !scope.Match(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
				if !ok {
					// `go s.loop()` delegates lifetime to a named method,
					// which the analyzer cannot see into; named methods
					// are reviewable at their definition.
					return true
				}
				if !joined(pass, lit.Body) {
					pass.Reportf(gs.Pos(), "goroutine is neither WaitGroup-tracked nor select-guarded; join it or guard it with a done channel")
				}
				return true
			})
		}
		return nil
	}
	return a
}

// joined reports whether the goroutine body carries a recognized
// lifetime discipline: a (*sync.WaitGroup).Done call, or a select with
// a receive arm.
func joined(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.FuncOf(pass.Info, n); fn != nil && fn.FullName() == "(*sync.WaitGroup).Done" {
				found = true
			}
		case *ast.SelectStmt:
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if isReceive(cc.Comm) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isReceive reports whether a select comm clause is a channel receive
// (`<-ch`, `v := <-ch`, `v, ok := <-ch`).
func isReceive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := s.Rhs[0].(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	}
	return false
}
