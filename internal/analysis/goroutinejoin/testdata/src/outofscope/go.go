// Package outofscope is goroutinejoin analyzer testdata: its import
// path matches no scope entry, so even a bare goroutine launch loads
// clean.
package outofscope

func fireAndForget(f func()) {
	go func() { f() }()
}
