// Package remote is goroutinejoin analyzer testdata: it sits at an
// import path ending in internal/remote, so the default scope applies.
package remote

import "sync"

func work() {}

type server struct{ wg sync.WaitGroup }

// untracked launches a goroutine with no lifetime discipline at all.
func untracked() {
	go func() { // want `\[goroutinejoin\] goroutine is neither WaitGroup-tracked nor select-guarded`
		work()
	}()
}

// tracked joins the goroutine through a WaitGroup.
func (s *server) tracked() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// guarded can always be ended through the done channel.
func guarded(done <-chan struct{}, ch <-chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// sendOnlySelect has a select, but no receive arm — nothing can end
// the goroutine from outside, so it is still flagged.
func sendOnlySelect(out chan<- int) {
	go func() { // want `\[goroutinejoin\] goroutine is neither WaitGroup-tracked nor select-guarded`
		for {
			select {
			case out <- 1:
			default:
			}
		}
	}()
}

// named launches a method, not a literal; lifetime is reviewable at
// the method definition, so the analyzer stays silent.
func (s *server) loop() { work() }
func named(s *server)   { go s.loop() }

// allowed exercises the escape hatch.
func allowed(result chan<- int) {
	//lint:gdb-allow goroutinejoin testdata exercising the directive on the next line
	go func() {
		result <- 1
	}()
}
