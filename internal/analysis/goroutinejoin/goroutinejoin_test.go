package goroutinejoin_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/goroutinejoin"
)

func TestGoroutinejoinPositive(t *testing.T) {
	atest.Run(t, "testdata/src/internal/remote", goroutinejoin.Analyzer)
}

func TestGoroutinejoinOutOfScopeIsClean(t *testing.T) {
	atest.Run(t, "testdata/src/outofscope", goroutinejoin.Analyzer)
}
