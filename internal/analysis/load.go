package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Pkg is one loaded, parsed and type-checked package.
type Pkg struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files, with comments
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, an
// empty dir meaning the current one) and type-checks each matched
// package against export data for its dependencies. It shells out to
// `go list -e -export -deps -json`, which compiles dependencies into
// the build cache as needed — so loading requires a building tree,
// which is exactly the contract a linter wants.
//
// Only the matched packages are parsed and analyzed; dependencies
// contribute type information alone. Test files are not loaded: the
// invariants guard production code paths, and _test.go files get their
// own, looser rules (e.g. seeded global rand is fine in tests).
func Load(dir string, patterns ...string) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,GoFiles,CgoFiles,DepOnly,Export,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: package %s does not build: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Pkg
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: package %s uses cgo, which the loader does not support", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Pkg{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
