// Package outofscope is mapalias analyzer testdata: the same
// mutations as the in-scope fixture, in a package outside the
// analyzer's scope — nothing may be reported.
package outofscope

import "repro/internal/analysis/mapalias/testdata/src/internal/mmapfile"

// Mutate would be three findings if this package were in scope.
func Mutate(f *mmapfile.File, src []byte) []byte {
	data := f.Data()
	data[0] = 1
	copy(data, src)
	return append(data, 7)
}
