// Package datasets is mapalias analyzer testdata: mutations through
// slices that alias a read-only mapping must be flagged; copies out of
// the mapping, and heap-only slices, must stay clean.
package datasets

import "repro/internal/analysis/mapalias/testdata/src/internal/mmapfile"

// section stands in for the real artifact section reader, which hands
// out subslices of the mapped file.
func section(b []byte) []byte { return b }

// storeThrough writes into the mapped bytes directly and through a
// re-slice of a reinterpreted view.
func storeThrough(f *mmapfile.File) {
	data := f.Data()
	data[0] = 1 // want `write through a slice aliasing a read-only mapping`
	arr, ok := mmapfile.Int32s(data)
	if !ok {
		return
	}
	sub := arr[1:3]
	sub[0] = 9 // want `write through a slice aliasing a read-only mapping`
}

// grow appends to an aliased slice; a grow that fits the mapped
// capacity writes into the file.
func grow(f *mmapfile.File) []byte {
	data := f.Data()
	return append(data, 7) // want `append to a slice aliasing a read-only mapping`
}

// overwrite copies into the mapping and into a section subslice.
func overwrite(f *mmapfile.File, src []byte) {
	data := f.Data()
	copy(data, src) // want `copy into a slice aliasing a read-only mapping`
	sec := section(data)
	copy(sec, src) // want `copy into a slice aliasing a read-only mapping`
}

// copyOut is the sanctioned pattern: materialise a heap copy, then
// mutate that. Copying FROM the mapping is always fine.
func copyOut(f *mmapfile.File) []byte {
	data := f.Data()
	cp := append([]byte(nil), data...)
	cp[0] = 1
	heap := make([]byte, len(data))
	copy(heap, data)
	heap[0] = 2
	s := mmapfile.String(data)
	_ = s
	return cp
}

// sortInPlace documents a deliberate exception: the caller proved the
// alias helper fell back to a heap copy, so mutating is safe here.
func sortInPlace(f *mmapfile.File) {
	arr, _ := mmapfile.Int32s(f.Data())
	//lint:gdb-allow mapalias Int32s copied onto the heap on this path (checked by caller)
	arr[0] = 3
}
