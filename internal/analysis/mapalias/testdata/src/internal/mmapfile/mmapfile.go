// Package mmapfile is mapalias analyzer testdata: a miniature of the
// real mmapfile API, just enough surface for the fixtures to call the
// alias-returning functions the analyzer knows by name.
package mmapfile

// File stands in for a mapped artifact.
type File struct {
	data []byte
}

// Data returns the mapped bytes (an alias in the real package).
func (f *File) Data() []byte { return f.data }

// Int32s reinterprets b as an int32 slice, aliasing when it can.
func Int32s(b []byte) ([]int32, bool) { return nil, len(b)%4 == 0 }

// String aliases too, but strings are immutable — the analyzer leaves
// it alone.
func String(b []byte) string { return string(b) }
