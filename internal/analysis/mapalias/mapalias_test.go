package mapalias_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/mapalias"
)

func TestMapaliasPositive(t *testing.T) {
	atest.Run(t, "testdata/src/internal/datasets", mapalias.Analyzer)
}

func TestMapaliasFixtureMmapfileIsClean(t *testing.T) {
	atest.Run(t, "testdata/src/internal/mmapfile", mapalias.Analyzer)
}

func TestMapaliasOutOfScopeIsClean(t *testing.T) {
	atest.Run(t, "testdata/src/outofscope", mapalias.Analyzer)
}
