// Package mapalias forbids mutating slices that alias a memory-mapped
// region. mmapfile maps artifacts PROT_READ: a store through an
// aliased slice is a SIGSEGV at best, and an append that fits the
// mapped capacity silently writes into the next reader's bytes. Code
// that needs to grow or edit mapped data must copy it out first; the
// rare deliberate exception (a copying fallback that proved the alias
// is heap-backed) documents itself with //lint:gdb-allow.
//
// The check is flow-insensitive and per-function: an identifier
// assigned — anywhere in the function — from a mapped source
// (mmapfile.Int32s, (*mmapfile.File).Data, the datasets artifact
// section readers) or from a slice of one is treated as mapped
// everywhere in that function. Reassigning the same variable to a
// heap slice later does not unmark it; use a fresh variable for heap
// copies.
package mapalias

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Default is the set of packages that touch mapped regions: mmapfile
// creates them, datasets decodes artifact sections out of them, core
// adopts the aliased CSR arrays.
var Default = analysis.Scope{
	"internal/mmapfile",
	"internal/datasets",
	"internal/core",
}

// Analyzer applies the rule over the Default scope.
var Analyzer = New(Default)

// mappedSources lists the functions whose results alias (or may
// alias) a mapped region, by package-path suffix.
var mappedSources = map[string]map[string]bool{
	"internal/mmapfile": {"Int32s": true, "Data": true},
	// The artifact section readers hand out subslices of the mapped
	// file (String is exempt: it aliases too, but strings are
	// immutable — the compiler already forbids writing through one).
	"internal/datasets": {"section": true, "int32Section": true},
}

// New builds a mapalias analyzer restricted to scope.
func New(scope analysis.Scope) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "mapalias",
		Doc:  "forbids append/copy/store mutations on slices derived from a read-only memory mapping",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !scope.Match(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					return true
				}
				checkFunc(pass, fd.Body)
				return true
			})
		}
		return nil
	}
	return a
}

// checkFunc marks the function's mapped-derived identifiers to a fixed
// point, then reports every mutation through one of them.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	mapped := map[types.Object]bool{}
	isMapped := func(e ast.Expr) bool { return mappedExpr(pass, mapped, e) }

	// Marking pass: repeat until no new identifier is marked, so a
	// chain like a := Int32s(...); b := a[1:]; c := b converges
	// regardless of declaration order.
	for changed := true; changed; {
		changed = false
		mark := func(lhs ast.Expr) {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil && !mapped[obj] {
				mapped[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
					// v, ok := mmapfile.Int32s(b): the alias is the
					// first result.
					if isMapped(st.Rhs[0]) {
						mark(st.Lhs[0])
					}
					return true
				}
				for i := range st.Rhs {
					if i < len(st.Lhs) && isMapped(st.Rhs[i]) {
						mark(st.Lhs[i])
					}
				}
			case *ast.ValueSpec:
				for i := range st.Values {
					if i < len(st.Names) && isMapped(st.Values[i]) {
						mark(st.Names[i])
					}
				}
			}
			return true
		})
	}

	// Reporting pass.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if ok && isMapped(ix.X) {
					pass.Reportf(ix.Pos(), "write through a slice aliasing a read-only mapping; copy the data out before mutating")
				}
			}
		case *ast.CallExpr:
			fn, ok := st.Fun.(*ast.Ident)
			if !ok || len(st.Args) == 0 {
				return true
			}
			if b, isB := pass.Info.Uses[fn].(*types.Builtin); !isB || (b.Name() != "append" && b.Name() != "copy") {
				return true
			}
			if !isMapped(st.Args[0]) {
				return true
			}
			switch fn.Name {
			case "append":
				pass.Reportf(st.Pos(), "append to a slice aliasing a read-only mapping; an in-place grow writes into the mapped file — copy first")
			case "copy":
				pass.Reportf(st.Pos(), "copy into a slice aliasing a read-only mapping; mapped regions are not writable")
			}
		}
		return true
	})
}

// mappedExpr reports whether e evaluates to a mapped-derived slice:
// a marked identifier, a slice of one, or a direct mapped-source call.
func mappedExpr(pass *analysis.Pass, mapped map[types.Object]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj == nil {
			obj = pass.Info.Defs[x]
		}
		return obj != nil && mapped[obj]
	case *ast.ParenExpr:
		return mappedExpr(pass, mapped, x.X)
	case *ast.SliceExpr:
		return mappedExpr(pass, mapped, x.X)
	case *ast.CallExpr:
		return mappedSourceCall(pass, x)
	}
	return false
}

// mappedSourceCall reports whether call's static callee is one of the
// known alias-returning functions.
func mappedSourceCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	for suffix, names := range mappedSources {
		if !names[fn.Name()] {
			continue
		}
		if p := fn.Pkg().Path(); p == suffix || strings.HasSuffix(p, "/"+suffix) {
			return true
		}
	}
	return false
}
