package seedrand_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/seedrand"
)

func TestSeedrandPositive(t *testing.T) {
	atest.Run(t, "testdata/src/a", seedrand.Analyzer)
}

func TestSeedrandCleanPackage(t *testing.T) {
	atest.Run(t, "testdata/src/clean", seedrand.Analyzer)
}
