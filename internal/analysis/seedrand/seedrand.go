// Package seedrand forbids the global math/rand source. Workload
// generation shards its randomness into per-shard *rand.Rand instances
// keyed by (seed, shard) so that any worker, on any machine, generates
// the same cells (PR 2); a stray top-level rand.Intn draws from the
// process-global source instead, whose state depends on everything
// else that ran before it — silently divergent across placements.
// Constructor calls (rand.New, rand.NewSource, rand.NewZipf, ...) are
// the sanctioned way in and stay legal; _test.go files are never
// loaded, so tests keep their freedom.
package seedrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the seedrand invariant checker; it applies everywhere —
// there is no production package where the global source is safe.
var Analyzer = &analysis.Analyzer{
	Name: "seedrand",
	Doc:  "forbids the global math/rand source; use a per-shard *rand.Rand",
	Run:  run,
}

// constructors return an owned generator or feed one; they are the
// sanctioned entry points.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			p := fn.Pkg().Path()
			if p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil || constructors[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "global math/rand source via rand.%s; draw from a per-shard *rand.Rand seeded from the run config", fn.Name())
			return true
		})
	}
	return nil
}
