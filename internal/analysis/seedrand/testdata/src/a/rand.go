// Package a is seedrand analyzer testdata: global math/rand draws are
// flagged, owned *rand.Rand generators are not.
package a

import "math/rand"

func globalDraws() int {
	rand.Seed(42)      // want `\[seedrand\] global math/rand source via rand\.Seed`
	n := rand.Intn(10) // want `\[seedrand\] global math/rand source via rand\.Intn`
	f := rand.Float64  // want `\[seedrand\] global math/rand source via rand\.Float64`
	_ = f
	return n + int(rand.Int63()) // want `\[seedrand\] global math/rand source via rand\.Int63`
}

// shardRand is the sanctioned discipline: an owned generator seeded
// from run config, drawn via methods. Constructors are legal.
func shardRand(seed int64, shard int) int {
	r := rand.New(rand.NewSource(seed + int64(shard)))
	z := rand.NewZipf(r, 1.1, 1, 1000)
	return r.Intn(10) + int(z.Uint64())
}

// allowed exercises the escape hatch.
func allowed() float64 {
	//lint:gdb-allow seedrand testdata exercising the directive on the next line
	return rand.Float64()
}
