// Package clean is seedrand analyzer testdata: per-shard generators
// only, so the package must produce no diagnostics.
package clean

import "math/rand"

type shard struct {
	rng *rand.Rand
}

func newShard(seed int64) *shard {
	return &shard{rng: rand.New(rand.NewSource(seed))}
}

func (s *shard) pick(n int) int {
	return s.rng.Intn(n)
}
