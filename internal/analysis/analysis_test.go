package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePkg wraps one source string as a loaded package; the fake
// analyzers below need no type information.
func parsePkg(t *testing.T, src string) *Pkg {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Pkg{Path: "example/p", Dir: ".", Fset: fset, Files: []*ast.File{f}}
}

// declFlagger reports every top-level var declaration — a trivial
// analyzer for exercising the suppression machinery.
var declFlagger = &Analyzer{
	Name: "declflag",
	Doc:  "flags var declarations (test analyzer)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					pass.Reportf(gd.Pos(), "var declared")
				}
			}
		}
		return nil
	},
}

func TestDirectiveSuppressesSameAndNextLine(t *testing.T) {
	pkg := parsePkg(t, `package p

var a int // want: flagged, no directive

//lint:gdb-allow declflag next-line form
var b int

var c int //lint:gdb-allow declflag trailing form
`)
	diags, err := Run([]*Pkg{pkg}, []*Analyzer{declFlagger})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Line != 3 {
		t.Errorf("surviving diagnostic on line %d, want 3", diags[0].Line)
	}
	if !strings.Contains(diags[0].Message, "suppress with a reason: //lint:gdb-allow declflag") {
		t.Errorf("diagnostic does not surface the escape hatch: %q", diags[0].Message)
	}
}

func TestDirectiveProblemsAreReported(t *testing.T) {
	pkg := parsePkg(t, `package p

//lint:gdb-allow declflag
var a int

//lint:gdb-allow nosuch because reasons
var b int
`)
	diags, err := Run([]*Pkg{pkg}, []*Analyzer{declFlagger})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+d.Message)
	}
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "missing its reason") {
		t.Errorf("reason-less directive not reported:\n%s", joined)
	}
	if !strings.Contains(joined, `unknown analyzer "nosuch"`) {
		t.Errorf("unknown-analyzer directive not reported:\n%s", joined)
	}
	// The reason-less directive must NOT suppress: var a is still
	// flagged (var b is too — its directive names the wrong analyzer).
	var flagged int
	for _, d := range diags {
		if d.Analyzer == "declflag" {
			flagged++
		}
	}
	if flagged != 2 {
		t.Errorf("got %d declflag diagnostics, want 2 (broken directives must not suppress):\n%s", flagged, joined)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	pkg := parsePkg(t, `package p

var b int
var a int
`)
	reversed := &Analyzer{
		Name: "rev",
		Doc:  "reports in reverse order (test analyzer)",
		Run: func(pass *Pass) error {
			f := pass.Files[0]
			for i := len(f.Decls) - 1; i >= 0; i-- {
				pass.Reportf(f.Decls[i].Pos(), "decl")
			}
			return nil
		},
	}
	diags, err := Run([]*Pkg{pkg}, []*Analyzer{reversed})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Line >= diags[1].Line {
		t.Fatalf("diagnostics not sorted by position: %v", diags)
	}
}

func TestScopeMatch(t *testing.T) {
	s := Scope{"internal/harness", "internal/remote"}
	for path, want := range map[string]bool{
		"repro/internal/harness": true,
		"internal/harness":       true,
		"repro/internal/analysis/testdata/src/internal/harness": true,
		"repro/internal/harnessx":                               false,
		"repro/internal/datasets":                               false,
		"harness":                                               false,
	} {
		if got := s.Match(path); got != want {
			t.Errorf("Match(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "x", File: "f.go", Line: 3, Col: 7, Message: "m"}
	if got, want := d.String(), "f.go:3:7: [x] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLoadTypesAPackage(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/loadable")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatalf("package not fully loaded: %+v", p)
	}
	if !strings.HasSuffix(p.Path, "testdata/src/loadable") {
		t.Errorf("unexpected import path %q", p.Path)
	}
	// Type information must resolve through export data: the testdata
	// package uses fmt, so at least one use must be a fmt object.
	found := false
	for _, obj := range p.Info.Uses {
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no fmt uses resolved; export-data importing is broken")
	}
}

func TestLoadRejectsBrokenPatterns(t *testing.T) {
	if _, err := Load(".", "./testdata/src/nonexistent"); err == nil {
		t.Fatal("Load succeeded on a nonexistent package")
	}
}
