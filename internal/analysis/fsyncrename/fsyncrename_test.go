package fsyncrename_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/fsyncrename"
)

func TestFsyncrenamePositive(t *testing.T) {
	atest.Run(t, "testdata/src/a", fsyncrename.Analyzer)
}

func TestFsyncrenameCleanPackage(t *testing.T) {
	atest.Run(t, "testdata/src/clean", fsyncrename.Analyzer)
}

// TestFsyncrenameVFSInScope checks the fsim extension: inside the
// Default scope, FS.Rename/File.Sync/File.Close through the VFS seam
// are publish events under the same contract as the os ones.
func TestFsyncrenameVFSInScope(t *testing.T) {
	atest.Run(t, "testdata/src/internal/lsm/wal", fsyncrename.Analyzer)
}

// TestFsyncrenameVFSOutOfScope pins the boundary: the same VFS calls
// in a package outside the scope produce no diagnostics.
func TestFsyncrenameVFSOutOfScope(t *testing.T) {
	atest.Run(t, "testdata/src/outofscope", fsyncrename.Analyzer)
}
