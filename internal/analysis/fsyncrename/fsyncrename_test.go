package fsyncrename_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/fsyncrename"
)

func TestFsyncrenamePositive(t *testing.T) {
	atest.Run(t, "testdata/src/a", fsyncrename.Analyzer)
}

func TestFsyncrenameCleanPackage(t *testing.T) {
	atest.Run(t, "testdata/src/clean", fsyncrename.Analyzer)
}
