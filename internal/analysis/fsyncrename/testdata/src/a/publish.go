// Package a is fsyncrename analyzer testdata: rename-publishes are
// checked for the fsync-then-checked-close contract.
package a

import "os"

// noSync publishes without forcing bytes to disk.
func noSync(f *os.File, tmp, final string) error {
	if _, err := f.WriteString("data"); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `\[fsyncrename\] rename without a preceding fsync`
}

// ignoredSync calls Sync but throws the error away.
func ignoredSync(f *os.File, tmp, final string) error {
	f.Sync()
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `\[fsyncrename\] rename publishes a file whose Sync error was ignored`
}

// ignoredClose checks Sync but drops the Close error, which can hide
// truncated bytes on some filesystems.
func ignoredClose(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close() // want `\[fsyncrename\] Close error ignored before rename`
	return os.Rename(tmp, final)
}

// closureSync syncs inside a callback; the publishing function itself
// never checked an fsync, so the rename is still flagged.
func closureSync(f *os.File, tmp, final string, run func(func() error)) error {
	run(func() error { return f.Sync() })
	return os.Rename(tmp, final) // want `\[fsyncrename\] rename without a preceding fsync`
}

// good is the publishSnapshot contract: write, Sync (checked), Close
// (checked), then rename.
func good(f *os.File, tmp, final string) error {
	if _, err := f.WriteString("data"); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// allowed exercises the escape hatch.
func allowed(tmp, final string) error {
	//lint:gdb-allow fsyncrename testdata exercising the directive on the next line
	return os.Rename(tmp, final)
}
