// Package outofscope pins the VFS scope boundary: this package is not
// in fsyncrename's Default scope, so renames through the fsim
// interfaces are not publish events here — only os.Rename would be.
// No want comments: the whole file must stay clean.
package outofscope

import "repro/internal/analysis/fsyncrename/testdata/src/internal/lsm/fsim"

// vfsRenameNoSync would be a violation inside internal/lsm; out of
// scope it is invisible to the analyzer.
func vfsRenameNoSync(fsys fsim.FS, f fsim.File, tmp, final string) error {
	f.Close()
	return fsys.Rename(tmp, final)
}
