// Package clean is fsyncrename analyzer testdata: file writes with no
// rename-publish, so the package must produce no diagnostics.
package clean

import "os"

func write(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}
