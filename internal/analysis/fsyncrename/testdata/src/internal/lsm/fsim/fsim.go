// Package fsim is a stub of the real VFS seam for the fsyncrename
// testdata: the FS/File interfaces carry the same method names and the
// package path ends in internal/lsm/fsim, which is all the analyzer
// keys on. The substrate itself is out of the VFS scope, so nothing
// here wants a diagnostic.
package fsim

// FS mirrors the publish-relevant surface of the real fsim.FS.
type FS interface {
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
}

// File mirrors the real fsim.File.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}
