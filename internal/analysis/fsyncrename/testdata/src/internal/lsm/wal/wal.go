// Package wal is fsyncrename analyzer testdata for the VFS extension:
// the package path suffix-matches the Default scope, so renames
// through the fsim interfaces are held to the same
// checked-Sync-before-Rename contract as os.Rename publishes.
package wal

import "repro/internal/analysis/fsyncrename/testdata/src/internal/lsm/fsim"

// noSync publishes through the VFS without forcing bytes to disk.
func noSync(fsys fsim.FS, f fsim.File, tmp, final string) error {
	if _, err := f.Write([]byte("data")); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, final) // want `\[fsyncrename\] rename without a preceding fsync`
}

// ignoredSync calls the interface Sync but throws the error away.
func ignoredSync(fsys fsim.FS, f fsim.File, tmp, final string) error {
	f.Sync()
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, final) // want `\[fsyncrename\] rename publishes a file whose Sync error was ignored`
}

// ignoredClose checks Sync but drops the Close error.
func ignoredClose(fsys fsim.FS, f fsim.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close() // want `\[fsyncrename\] Close error ignored before rename`
	return fsys.Rename(tmp, final)
}

// closureSync syncs inside a callback; the publishing body itself
// never checked an fsync, so the rename is still flagged.
func closureSync(fsys fsim.FS, f fsim.File, tmp, final string, run func(func() error)) error {
	run(func() error { return f.Sync() })
	return fsys.Rename(tmp, final) // want `\[fsyncrename\] rename without a preceding fsync`
}

// publish is the real wal.publishPrefix shape: write, Sync (checked),
// Close (checked), rename — with the error-path cleanup closes inside
// a fail closure, whose body is a separate publish scope.
func publish(fsys fsim.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}

// nonPublish exercises the negatives: Sync and Close without any
// rename in the body are not a publish and stay clean.
func nonPublish(f fsim.File) {
	f.Sync()
	f.Close()
}
