// Package fsyncrename enforces the publishSnapshot contract on
// temp-file-then-rename sequences: before a rename publishes a file
// under its final name, the data must be forced to disk with an
// error-checked Sync, and any pre-rename Close must have its error
// checked. Rename-without-fsync can publish a name whose bytes are
// lost on crash — a torn artifact that then poisons the
// content-addressed cache; an ignored Sync or Close error publishes a
// file the kernel already told us is bad.
//
// Two families of publish calls are recognized. os.Rename /
// (*os.File).Sync / (*os.File).Close are checked in every package.
// The durability layer never touches os directly — it writes through
// the fsim VFS seam — so inside the Default scope the fsim.FS.Rename /
// fsim.File.Sync / fsim.File.Close interface methods count as the same
// events (fsim itself is the substrate, not a publisher, and stays out
// of scope).
//
// The analysis is per function body: a rename is satisfied by a
// checked Sync call earlier in the same body (nested function literals
// are scanned separately — a Sync inside a callback does not vouch for
// a rename outside it).
package fsyncrename

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Default is the scope where VFS-mediated publishes are checked in
// addition to direct os ones: the LSM store and its write-ahead log
// publish truncated segments through fsim.FS, and a rename there
// without a durable prefix is exactly the torn-artifact crash the
// fault matrix exists to catch.
var Default = analysis.Scope{
	"internal/lsm",
	"internal/lsm/wal",
}

// Analyzer applies the rule with the Default VFS scope; the os-level
// checks apply to every package regardless.
var Analyzer = New(Default)

// New builds a fsyncrename analyzer whose fsim-interface recognition
// is restricted to vfsScope. The os.Rename/Sync/Close checks always
// apply everywhere.
func New(vfsScope analysis.Scope) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "fsyncrename",
		Doc:  "flags rename publishes (os or fsim VFS) without an error-checked fsync, or with ignored Sync/Close errors",
	}
	a.Run = func(pass *analysis.Pass) error {
		vfs := vfsScope.Match(pass.Pkg.Path())
		for _, f := range pass.Files {
			// Visit every function body — declarations and literals —
			// each as its own scope.
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						checkBody(pass, n.Body, vfs)
					}
				case *ast.FuncLit:
					checkBody(pass, n.Body, vfs)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// fileCall is one Sync/Close/Rename event in a body, in source order.
type fileCall struct {
	pos     token.Pos
	checked bool // false when the call is a bare expression statement
}

// checkBody scans one function body (excluding nested literals) and
// reports each rename that is not preceded by a checked Sync, plus
// any ignored Sync/Close error ahead of a rename.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, vfs bool) {
	bare := bareCalls(body)

	var syncs, closes []fileCall
	var renames []*ast.CallExpr
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.FuncOf(pass.Info, call)
		if fn == nil {
			return
		}
		switch {
		case fn.FullName() == "(*os.File).Sync",
			vfs && isFsimMethod(fn, "Sync"):
			syncs = append(syncs, fileCall{call.Pos(), !bare[call]})
		case fn.FullName() == "(*os.File).Close",
			vfs && isFsimMethod(fn, "Close"):
			closes = append(closes, fileCall{call.Pos(), !bare[call]})
		case analysis.IsPkgFunc(fn, "os", "Rename"),
			vfs && isFsimMethod(fn, "Rename"):
			renames = append(renames, call)
		}
	})

	for _, r := range renames {
		var checkedSync, uncheckedSync bool
		for _, s := range syncs {
			if s.pos < r.Pos() {
				if s.checked {
					checkedSync = true
				} else {
					uncheckedSync = true
				}
			}
		}
		switch {
		case checkedSync:
			// Satisfied; still flag sloppy closes below.
		case uncheckedSync:
			pass.Reportf(r.Pos(), "rename publishes a file whose Sync error was ignored; check the fsync result before renaming")
		default:
			pass.Reportf(r.Pos(), "rename without a preceding fsync: call Sync (and check its error) before publishing the file")
		}
		for _, c := range closes {
			if c.pos < r.Pos() && !c.checked {
				pass.Reportf(c.pos, "Close error ignored before rename; a failed close can publish truncated bytes")
			}
		}
	}
}

// isFsimMethod reports whether fn is a method named name declared in
// the fsim VFS package — the FS/File interface methods (and their Mem
// and OS implementations) that mirror the os publish primitives. The
// path is suffix-matched so analyzer testdata stubs placed under
// .../testdata/src/internal/lsm/fsim count as the real seam.
func isFsimMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "internal/lsm/fsim" || strings.HasSuffix(p, "/internal/lsm/fsim")
}

// bareCalls maps each call that is a bare expression statement —
// i.e. its error result, if any, is discarded.
func bareCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	inspectShallow(body, func(n ast.Node) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
			out[call] = true
		}
	})
	return out
}

// inspectShallow walks body without descending into nested function
// literals, whose bodies form their own publish scopes.
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
