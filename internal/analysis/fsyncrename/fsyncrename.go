// Package fsyncrename enforces the publishSnapshot contract on
// temp-file-then-rename sequences: before os.Rename publishes a file
// under its final name, the data must be forced to disk with an
// error-checked (*os.File).Sync, and any pre-rename Close must have
// its error checked. Rename-without-fsync can publish a name whose
// bytes are lost on crash — a torn artifact that then poisons the
// content-addressed cache; an ignored Sync or Close error publishes a
// file the kernel already told us is bad.
//
// The analysis is per function body: a rename is satisfied by a
// checked Sync call earlier in the same body (nested function literals
// are scanned separately — a Sync inside a callback does not vouch for
// a rename outside it).
package fsyncrename

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the fsyncrename invariant checker; it applies to every
// package that publishes files.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncrename",
	Doc:  "flags os.Rename publishes without an error-checked fsync, or with ignored Sync/Close errors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Visit every function body — declarations and literals — each
		// as its own scope.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// fileCall is one Sync/Close/Rename event in a body, in source order.
type fileCall struct {
	pos     token.Pos
	checked bool // false when the call is a bare expression statement
}

// checkBody scans one function body (excluding nested literals) and
// reports each os.Rename that is not preceded by a checked Sync, plus
// any ignored Sync/Close error ahead of a rename.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	bare := bareCalls(body)

	var syncs, closes []fileCall
	var renames []*ast.CallExpr
	inspectShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.FuncOf(pass.Info, call)
		if fn == nil {
			return
		}
		switch {
		case fn.FullName() == "(*os.File).Sync":
			syncs = append(syncs, fileCall{call.Pos(), !bare[call]})
		case fn.FullName() == "(*os.File).Close":
			closes = append(closes, fileCall{call.Pos(), !bare[call]})
		case analysis.IsPkgFunc(fn, "os", "Rename"):
			renames = append(renames, call)
		}
	})

	for _, r := range renames {
		var checkedSync, uncheckedSync bool
		for _, s := range syncs {
			if s.pos < r.Pos() {
				if s.checked {
					checkedSync = true
				} else {
					uncheckedSync = true
				}
			}
		}
		switch {
		case checkedSync:
			// Satisfied; still flag sloppy closes below.
		case uncheckedSync:
			pass.Reportf(r.Pos(), "rename publishes a file whose Sync error was ignored; check the fsync result before renaming")
		default:
			pass.Reportf(r.Pos(), "rename without a preceding fsync: call Sync (and check its error) before publishing the file")
		}
		for _, c := range closes {
			if c.pos < r.Pos() && !c.checked {
				pass.Reportf(c.pos, "Close error ignored before rename; a failed close can publish truncated bytes")
			}
		}
	}
}

// bareCalls maps each call that is a bare expression statement —
// i.e. its error result, if any, is discarded.
func bareCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	inspectShallow(body, func(n ast.Node) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
			out[call] = true
		}
	})
	return out
}

// inspectShallow walks body without descending into nested function
// literals, whose bodies form their own publish scopes.
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
