// Package clean is detmap analyzer testdata: only order-independent
// map use, so the package must produce no diagnostics.
package clean

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func maxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
