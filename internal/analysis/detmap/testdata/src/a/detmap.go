// Package a is detmap analyzer testdata: map iteration reaching an
// ordered sink is flagged; the sort-the-keys idiom and
// order-independent loops are not.
package a

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/analysis/detmap/testdata/src/internal/enc"
)

func bufferSink(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m { // want `\[detmap\] map iteration order reaches ordered sink WriteString`
		buf.WriteString(k)
	}
	return buf.String()
}

func fprintfSink(w io.Writer, m map[string]int) {
	for k, v := range m { // want `\[detmap\] map iteration order reaches ordered sink fmt\.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func encoderSink(w io.Writer, m map[string]int) error {
	e := json.NewEncoder(w)
	for k := range m { // want `\[detmap\] map iteration order reaches ordered sink Encode`
		if err := e.Encode(k); err != nil {
			return err
		}
	}
	return nil
}

func hashSink(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m { // want `\[detmap\] map iteration order reaches ordered sink Write`
		h.Write([]byte(k))
	}
	return h.Sum64()
}

func encSink(m map[uint64]uint64) []byte {
	var b []byte
	for k := range m { // want `\[detmap\] map iteration order reaches ordered sink enc\.AppendUvarint`
		b = enc.AppendUvarint(b, k)
	}
	return b
}

// closureSink shows the sink hiding inside a per-key closure — the
// order problem is inherited, so it is still flagged.
func closureSink(w io.Writer, m map[string]int) {
	for k := range m { // want `\[detmap\] map iteration order reaches ordered sink io\.WriteString`
		func() { io.WriteString(w, k) }()
	}
}

// sortedKeys is the sanctioned idiom: collect, sort, then iterate the
// slice. The sink sits in a slice loop, not a map loop.
func sortedKeys(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// countOnly never writes inside the loop; aggregation is
// order-independent.
func countOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// keylessWrite ranges without a key, so each iteration emits identical
// bytes and order cannot show.
func keylessWrite(w io.Writer, m map[string]int) {
	for range m {
		io.WriteString(w, ".")
	}
}

// allowed exercises the escape hatch.
func allowed(w io.Writer, m map[string]int) {
	//lint:gdb-allow detmap testdata exercising the directive on the next line
	for k := range m {
		io.WriteString(w, k)
	}
}
