// Package enc is detmap analyzer testdata standing in for the
// repository's append-style encoders: its import path ends in
// internal/enc, so every call into it is an ordered sink.
package enc

// AppendUvarint appends v to b in varint form.
func AppendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
