package detmap_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/detmap"
)

func TestDetmapPositive(t *testing.T) {
	atest.Run(t, "testdata/src/a", detmap.Analyzer)
}

func TestDetmapCleanPackage(t *testing.T) {
	atest.Run(t, "testdata/src/clean", detmap.Analyzer)
}
