// Package detmap flags `range` loops over maps whose body reaches an
// ordered sink — an io.Writer, an encoder, a hash, one of the
// repository's append-style enc helpers — without an intervening sort.
// Go randomizes map iteration order, so bytes produced inside such a
// loop differ from run to run: the classic silent killer of the
// byte-identical exports, checkpoints and artifact fingerprints this
// repository guarantees (README "Determinism"). The safe idiom —
// collect the keys, sort them, then iterate the sorted slice — never
// places the sink inside the map loop and therefore never triggers
// the analyzer.
package detmap

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detmap invariant checker; it applies to every
// package (any map-ordered bytes are suspect, wherever they are
// produced).
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flags map iteration whose body writes to an ordered sink (writer, encoder, hash)",
	Run:  run,
}

// sinkMethods are method names that commit bytes in call order,
// whatever the receiver: io.Writer implementations, string builders,
// hash.Hash (Write/Sum), encoders (json.Encoder.Encode,
// csv.Writer.Write), binary appenders.
var sinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Encode":      true,
	"Sum":         true,
}

// sinkFuncs are package-level functions that commit bytes in call
// order.
var sinkFuncs = map[[2]string]bool{
	{"fmt", "Fprint"}:            true,
	{"fmt", "Fprintf"}:           true,
	{"fmt", "Fprintln"}:          true,
	{"fmt", "Print"}:             true,
	{"fmt", "Printf"}:            true,
	{"fmt", "Println"}:           true,
	{"io", "WriteString"}:        true,
	{"io", "Copy"}:               true,
	{"encoding/binary", "Write"}: true,
}

// encPkgSuffix marks the repository's append-style varint/tag encoders
// (repro/internal/enc): every function there appends order-sensitive
// bytes.
const encPkgSuffix = "internal/enc"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if rng.Key == nil {
				// `for range m` uses only the map's size, which is
				// order-independent.
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(pass, rng.Body); sink != nil {
				pass.Reportf(rng.Pos(), "map iteration order reaches ordered sink %s (line %d); sort the keys first, or hoist the write out of the loop",
					sinkName(pass, sink), pass.Fset.Position(sink.Pos()).Line)
			}
			return true
		})
	}
	return nil
}

// findSink returns the first ordered-sink call inside body (function
// literals included: a goroutine or closure launched per key inherits
// the order problem).
func findSink(pass *analysis.Pass, body *ast.BlockStmt) *ast.CallExpr {
	var sink *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.FuncOf(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Type().(*types.Signature).Recv() != nil && sinkMethods[fn.Name()]:
			sink = call
		case sinkFuncs[[2]string{fn.Pkg().Path(), fn.Name()}]:
			sink = call
		case pkgHasSuffix(fn.Pkg().Path(), encPkgSuffix):
			sink = call
		}
		return sink == nil
	})
	return sink
}

func pkgHasSuffix(path, suffix string) bool {
	return path == suffix || (len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix)
}

func sinkName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := analysis.FuncOf(pass.Info, call); fn != nil {
		if fn.Type().(*types.Signature).Recv() != nil {
			return fn.Name()
		}
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return "call"
}
