// Package atest is the test harness for the gdb-lint analyzers,
// mirroring golang.org/x/tools' analysistest: a testdata package is
// loaded through the real loader, the analyzer runs over it, and the
// diagnostics are matched against `// want "regexp"` comments placed
// on the lines where findings are expected. Lines without a want
// comment must stay clean, and every want comment must be matched —
// so the testdata packages pin both the positives and the negatives
// of each rule.
package atest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe accepts both quoting styles: `// want "pat"` and
// // want `pat` — the backtick form spares testdata the
// double-escaping of regexp metacharacters.
var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one `// want` comment: a pattern expected to match a
// diagnostic on its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir (a testdata directory, relative
// to the calling test) and checks the analyzers' combined diagnostics
// against the package's want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(".", "./"+strings.TrimPrefix(dir, "./"))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg.Fset, f)...)
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			pat := m[1]
			if m[2] != "" {
				pat = m[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
			}
			out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
		}
	}
	return out
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches; it reports whether one was found.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.File || w.line != d.Line {
			continue
		}
		if w.pattern.MatchString(fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)) {
			w.matched = true
			return true
		}
	}
	return false
}
