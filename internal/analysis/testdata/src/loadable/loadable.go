// Package loadable is loader testdata: a minimal package with a
// stdlib dependency, proving export-data type resolution works.
package loadable

import "fmt"

// Greet formats a greeting.
func Greet(name string) string {
	return fmt.Sprintf("hello, %s", name)
}
