// Package analysis is a small, stdlib-only static-analysis framework
// encoding this repository's determinism and concurrency invariants as
// machine-checked rules. It mirrors the shape of golang.org/x/tools'
// go/analysis — Analyzer, Pass, Diagnostic — but is self-contained:
// packages are enumerated and compiled through `go list -export`, and
// dependency types come from the build cache's export data, so the
// suite needs no module dependencies (the toolchain is the only
// requirement).
//
// The analyzers themselves live in subpackages (detmap, wallclock,
// seedrand, goroutinejoin, fsyncrename); cmd/gdb-lint is the
// multichecker binary that runs them all. Each invariant, and the
// reasoning behind it, is documented in docs/INVARIANTS.md.
//
// A diagnostic can be suppressed — with an explanation — by the
// directive comment
//
//	//lint:gdb-allow <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory: an allowance without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:gdb-allow directives.
	Name string
	// Doc is the one-line description gdb-lint prints.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one type-checked package to an analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Scope is a set of package-path patterns restricting where a
// package-scoped analyzer applies. A pattern matches a package whose
// import path equals it or ends with "/"+pattern, so the repository
// path "internal/harness" matches both "repro/internal/harness" and an
// analyzer-testdata package placed under ".../testdata/src/internal/harness".
type Scope []string

// Match reports whether pkgPath falls inside the scope.
func (s Scope) Match(pkgPath string) bool {
	for _, pat := range s {
		if pkgPath == pat || strings.HasSuffix(pkgPath, "/"+pat) {
			return true
		}
	}
	return false
}

// AllowDirective is the suppression comment: //lint:gdb-allow <name> <reason>.
const AllowDirective = "//lint:gdb-allow"

var directiveRe = regexp.MustCompile(`^//lint:gdb-allow\s+(\S+)(?:\s+(.*\S))?\s*$`)

// allowKey identifies one suppressed (analyzer, file, line) cell.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

// collectAllows scans a file's comments for gdb-allow directives. A
// directive covers its own line (trailing form) and the next line
// (standalone form above the flagged statement). Directives with no
// reason are reported as diagnostics themselves — the escape hatch
// must leave an explanation behind.
func collectAllows(fset *token.FileSet, f *ast.File, known map[string]bool, report func(Diagnostic)) map[allowKey]bool {
	allows := make(map[allowKey]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, AllowDirective) {
				continue
			}
			pos := fset.Position(c.Pos())
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				report(Diagnostic{
					Analyzer: "gdb-allow", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("malformed directive %q: want %s <analyzer> <reason>", c.Text, AllowDirective),
				})
				continue
			}
			name, reason := m[1], m[2]
			if !known[name] {
				report(Diagnostic{
					Analyzer: "gdb-allow", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("directive names unknown analyzer %q", name),
				})
				continue
			}
			if reason == "" {
				report(Diagnostic{
					Analyzer: "gdb-allow", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("directive for %q is missing its reason: the escape hatch must document why the invariant does not apply", name),
				})
				continue
			}
			allows[allowKey{name, pos.Filename, pos.Line}] = true
			allows[allowKey{name, pos.Filename, pos.Line + 1}] = true
		}
	}
	return allows
}

// Run applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. Findings on a line covered
// by a matching //lint:gdb-allow directive are dropped; findings
// without one carry a hint naming the escape hatch.
func Run(pkgs []*Pkg, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := make(map[allowKey]bool)
		for _, f := range pkg.Files {
			for k, v := range collectAllows(pkg.Fset, f, known, func(d Diagnostic) { out = append(out, d) }) {
				allows[k] = v
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report: func(d Diagnostic) {
					if allows[allowKey{d.Analyzer, d.File, d.Line}] {
						return
					}
					d.Message += fmt.Sprintf(" (suppress with a reason: %s %s <reason>)", AllowDirective, d.Analyzer)
					out = append(out, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// FuncOf resolves a call expression to the *types.Func it invokes, or
// nil for calls through function-typed variables, built-ins and type
// conversions. Shared by the analyzers, which all reason in terms of
// "a call to package P's function F" or "a call to method M".
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
