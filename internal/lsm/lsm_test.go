package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func small() Options { return Options{FlushBytes: 256, CompactAt: 4} }

func TestPutGetAcrossFlushes(t *testing.T) {
	s := New(small())
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	flushes, _, runs, _, _ := s.Stats()
	if flushes == 0 || runs == 0 {
		t.Fatalf("expected flushes with tiny memtable: flushes=%d runs=%d", flushes, runs)
	}
	for i := 0; i < 200; i++ {
		v, ok := s.Get([]byte(fmt.Sprintf("k%04d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(k%04d) = %q %v", i, v, ok)
		}
	}
}

func TestNewestWins(t *testing.T) {
	s := New(small())
	key := []byte("key")
	for i := 0; i < 50; i++ {
		s.Put(key, []byte(fmt.Sprint(i)))
		s.Put([]byte(fmt.Sprintf("filler%d", i)), bytes.Repeat([]byte("x"), 40))
	}
	if v, ok := s.Get(key); !ok || string(v) != "49" {
		t.Fatalf("Get = %q %v, want 49", v, ok)
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := New(small())
	s.Put([]byte("a"), []byte("1"))
	s.Flush()
	s.Delete([]byte("a"))
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("tombstoned key visible via memtable")
	}
	s.Flush()
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("tombstoned key visible via runs")
	}
	s.Compact()
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("tombstoned key visible after compaction")
	}
}

func TestCompactionDropsShadowedAndReducesRuns(t *testing.T) {
	s := New(Options{FlushBytes: 128, CompactAt: 100})
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("r%d", round)))
		}
		s.Flush()
	}
	_, _, runsBefore, _, _ := s.Stats()
	if runsBefore < 2 {
		t.Fatalf("expected multiple runs, got %d", runsBefore)
	}
	before := s.Bytes()
	s.Compact()
	_, _, runsAfter, _, _ := s.Stats()
	if runsAfter != 1 {
		t.Fatalf("compaction left %d runs", runsAfter)
	}
	if s.Bytes() >= before {
		t.Fatalf("compaction did not reclaim shadowed space: %d -> %d", before, s.Bytes())
	}
	for i := 0; i < 20; i++ {
		if v, ok := s.Get([]byte(fmt.Sprintf("k%02d", i))); !ok || string(v) != "r4" {
			t.Fatalf("k%02d = %q %v", i, v, ok)
		}
	}
}

func TestScanPrefixMergedOrdered(t *testing.T) {
	s := New(small())
	// Row "r1:" spans memtable and several runs, with an update and a delete.
	s.Put([]byte("r1:c"), []byte("old"))
	s.Put([]byte("r1:a"), []byte("1"))
	s.Flush()
	s.Put([]byte("r1:b"), []byte("2"))
	s.Put([]byte("r1:d"), []byte("del-me"))
	s.Flush()
	s.Put([]byte("r1:c"), []byte("new"))
	s.Delete([]byte("r1:d"))
	s.Put([]byte("r2:a"), []byte("other-row"))

	var got []string
	s.ScanPrefix([]byte("r1:"), func(k, v []byte) bool {
		got = append(got, fmt.Sprintf("%s=%s", k, v))
		return true
	})
	want := []string{"r1:a=1", "r1:b=2", "r1:c=new"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
}

func TestScanPrefixEarlyStop(t *testing.T) {
	s := New(small())
	for i := 0; i < 20; i++ {
		s.Put([]byte(fmt.Sprintf("p:%02d", i)), nil)
	}
	n := 0
	s.ScanPrefix([]byte("p:"), func(_, _ []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRowCacheHitAndInvalidation(t *testing.T) {
	s := New(Options{FlushBytes: 1 << 20, CompactAt: 8, CachePrefixLen: 3})
	s.Put([]byte("r1:a"), []byte("1"))
	s.Put([]byte("r1:b"), []byte("2"))
	scan := func() int {
		n := 0
		s.ScanPrefix([]byte("r1:"), func(_, _ []byte) bool { n++; return true })
		return n
	}
	if scan() != 2 {
		t.Fatal("first scan wrong")
	}
	if scan() != 2 {
		t.Fatal("second scan wrong")
	}
	_, _, _, hits, misses := s.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache hits=%d misses=%d", hits, misses)
	}
	s.Put([]byte("r1:c"), []byte("3"))
	if scan() != 3 {
		t.Fatal("cache not invalidated by write")
	}
}

func TestBulkLoad(t *testing.T) {
	s := New(small())
	var keys, vals [][]byte
	for i := 0; i < 100; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%03d", i)))
		vals = append(vals, []byte(fmt.Sprint(i)))
	}
	if err := s.BulkLoad(keys, vals); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get([]byte("k050")); !ok || string(v) != "50" {
		t.Fatalf("bulk get = %q %v", v, ok)
	}
	_, _, runs, _, _ := s.Stats()
	if runs != 1 {
		t.Fatalf("bulk load produced %d runs", runs)
	}
	if err := s.BulkLoad([][]byte{[]byte("b"), []byte("a")}, [][]byte{{1}, {2}}); err == nil {
		t.Fatal("unsorted bulk load accepted")
	}
}

// TestQuickAgainstMap runs random Put/Delete/Get/scan sequences with
// random flush/compact points against a reference map.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(Options{FlushBytes: 512, CompactAt: 3})
		ref := make(map[string]string)
		for i := 0; i < int(n%1024); i++ {
			k := fmt.Sprintf("key%03d", rng.Intn(200))
			switch rng.Intn(4) {
			case 0:
				v := fmt.Sprint(rng.Intn(100))
				s.Put([]byte(k), []byte(v))
				ref[k] = v
			case 1:
				s.Delete([]byte(k))
				delete(ref, k)
			case 2:
				v, ok := s.Get([]byte(k))
				rv, rok := ref[k]
				if ok != rok || (ok && string(v) != rv) {
					return false
				}
			case 3:
				if rng.Intn(10) == 0 {
					s.Flush()
				}
			}
		}
		// Full-scan comparison.
		var want []string
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		s.ScanPrefix([]byte("key"), func(k, v []byte) bool {
			if ref[string(k)] != string(v) {
				got = nil
				return false
			}
			got = append(got, string(k))
			return true
		})
		return fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
