// Package wal is the write-ahead log under internal/lsm's durable
// mode: CRC-32C-framed append-only records with group commit, segment
// rotation, and WAL-time key-value separation.
//
// Frame layout (all integers big-endian):
//
//	crc32c(4) | payloadLen(4) | payload = type(1) | body
//
// The CRC covers the payload. Records are acknowledged in batches: an
// fsync runs after GroupCommitOps records or once GroupCommitWindow
// has elapsed since the first unsynced record (checked on the next
// append — the log is single-writer and runs no background goroutine,
// so a quiet log syncs at Close). DurableLSN tracks the last frame an
// fsync has covered; everything past it is acknowledged to the
// in-memory store but not yet to durability.
//
// Atomic units: multi-record store operations (a put plus the flush it
// triggers, an engine-level transaction) are delimited by tx marker
// frames, and bulk loads by bulk markers, so recovery only ever stops
// on a unit boundary — a torn tail can not split a logical operation.
// Single-record units are written bare, marker-free.
//
// Key-value separation (the BVLSM pattern): values of at least
// ValueThreshold bytes are appended to a side value log
// (values.vlog, entries crc32c(4) | len(4) | bytes) and the WAL
// frame — and therefore the memtable and every SSTable — carries only
// a (offset, length) pointer, so flush and compaction move keys, not
// payloads. The value log is synced before the WAL segment in each
// group commit: a durable pointer never references torn value bytes.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"time"

	"repro/internal/enc"
	"repro/internal/lsm/fsim"
)

// Record types.
const (
	recPut         byte = 1 // uvarint keyLen | key | value
	recPutPtr      byte = 2 // uvarint keyLen | key | uvarint vlogOff | uvarint valueLen
	recDelete      byte = 3 // key
	recFlushMark   byte = 4
	recCompactMark byte = 5
	recTxBegin     byte = 6
	recTxEnd       byte = 7
	recBulkBegin   byte = 8
	recBulkEnd     byte = 9 // uvarint pair count
)

const (
	frameHeader = 8
	vlogHeader  = 8
	// maxFrame bounds a frame payload; anything larger is corruption,
	// not data.
	maxFrame = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configure a Writer. Zero fields take defaults.
type Options struct {
	// SegmentBytes rotates the log to a fresh segment file once the
	// current one reaches this size (default 1 MiB). Rotation happens
	// between atomic units, never inside one.
	SegmentBytes int64
	// ValueThreshold routes values of at least this many bytes to the
	// value log (default 1024). Negative disables separation.
	ValueThreshold int
	// GroupCommitOps is the record count that forces an fsync
	// (default 64).
	GroupCommitOps int
	// GroupCommitWindow forces an fsync when this much time has
	// passed since the first unsynced record (default 2ms; checked on
	// append).
	GroupCommitWindow time.Duration
	// Now is the clock for the group-commit window (default
	// time.Now). Injected so recovery timing and window behaviour are
	// testable with a fake clock.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.ValueThreshold == 0 {
		o.ValueThreshold = 1024
	}
	if o.GroupCommitOps <= 0 {
		o.GroupCommitOps = 64
	}
	if o.GroupCommitWindow <= 0 {
		o.GroupCommitWindow = 2 * time.Millisecond
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Pointer locates a separated value in the value log.
type Pointer struct {
	Off int64
	Len int64
}

// Writer appends records to the log. It inherits the store's
// single-writer contract: all methods except ReadValue must be called
// from one goroutine at a time.
type Writer struct {
	fs  fsim.FS
	dir string
	o   Options

	seg      fsim.File
	segIdx   int
	segBytes int64

	vlog      fsim.File
	vlogOff   int64
	vlogDirty bool

	lsn     int64 // frames written
	durable int64 // frames covered by the last fsync
	syncs   int64

	pending   int // frames since the last fsync
	pendingT0 time.Time

	txDepth  int
	txBuf    []byte
	txFrames int
	bulk     bool

	err error
}

func segName(i int) string { return fmt.Sprintf("wal-%06d.seg", i) }

// Create opens a fresh writer in dir with no existing log. Most
// callers want Replay, which handles both the fresh and the recovery
// case; Create exists for tests that need a bare writer.
func Create(fsys fsim.FS, dir string, o Options) (*Writer, error) {
	o = o.withDefaults()
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	seg, err := fsys.Append(filepath.Join(dir, segName(1)))
	if err != nil {
		return nil, err
	}
	vlog, err := fsys.Append(filepath.Join(dir, "values.vlog"))
	if err != nil {
		seg.Close()
		return nil, err
	}
	return &Writer{fs: fsys, dir: dir, o: o, seg: seg, segIdx: 1, vlog: vlog}, nil
}

// Err returns the sticky error: after any append or sync failure the
// writer refuses further work.
func (w *Writer) Err() error { return w.err }

// LSN returns the number of frames written (committed units only —
// frames buffered inside an open transaction do not count yet).
func (w *Writer) LSN() int64 { return w.lsn }

// DurableLSN returns the number of frames the last successful fsync
// covered: the acknowledged-durable prefix of the log.
func (w *Writer) DurableLSN() int64 { return w.durable }

// Syncs returns how many group commits (fsync batches) have run.
func (w *Writer) Syncs() int64 { return w.syncs }

func frameBytes(typ byte, body []byte) []byte {
	buf := make([]byte, frameHeader, frameHeader+1+len(body))
	buf = append(buf, typ)
	buf = append(buf, body...)
	payload := buf[frameHeader:]
	binary.BigEndian.PutUint32(buf[0:4], crc32.Checksum(payload, crcTable))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	return buf
}

// writeFrames appends framed bytes holding n frames to the segment.
func (w *Writer) writeFrames(b []byte, n int) error {
	if _, err := w.seg.Write(b); err != nil {
		w.err = err
		return err
	}
	w.segBytes += int64(len(b))
	if w.pending == 0 {
		w.pendingT0 = w.o.Now()
	}
	w.pending += n
	w.lsn += int64(n)
	return nil
}

// emit routes one frame: buffered while a transaction is open,
// straight to the segment otherwise (followed by the rotation and
// group-commit checks).
func (w *Writer) emit(typ byte, body []byte) error {
	if w.err != nil {
		return w.err
	}
	b := frameBytes(typ, body)
	if w.txDepth > 0 {
		w.txBuf = append(w.txBuf, b...)
		w.txFrames++
		return nil
	}
	if err := w.writeFrames(b, 1); err != nil {
		return err
	}
	if w.bulk {
		return nil // bulk defers its single fsync to EndBulk
	}
	return w.afterUnit()
}

// afterUnit runs between atomic units: rotate full segments, then
// apply the group-commit policy.
func (w *Writer) afterUnit() error {
	if w.segBytes >= w.o.SegmentBytes {
		return w.rotate()
	}
	if w.pending >= w.o.GroupCommitOps ||
		(w.pending > 0 && w.o.Now().Sub(w.pendingT0) >= w.o.GroupCommitWindow) {
		return w.syncNow()
	}
	return nil
}

func (w *Writer) syncNow() error {
	if w.vlogDirty {
		if err := w.vlog.Sync(); err != nil {
			w.err = err
			return err
		}
		w.vlogDirty = false
	}
	if err := w.seg.Sync(); err != nil {
		w.err = err
		return err
	}
	w.durable = w.lsn
	w.pending = 0
	w.syncs++
	return nil
}

func (w *Writer) rotate() error {
	if err := w.syncNow(); err != nil {
		return err
	}
	if err := w.seg.Close(); err != nil {
		w.err = err
		return err
	}
	w.segIdx++
	seg, err := w.fs.Append(filepath.Join(w.dir, segName(w.segIdx)))
	if err != nil {
		w.err = err
		return err
	}
	w.seg = seg
	w.segBytes = 0
	return nil
}

// AppendPut logs key→value. Values at or above the separation
// threshold land in the value log; the returned pointer (valid when
// separated is true) is what the store keeps in its memtable and runs.
func (w *Writer) AppendPut(key, value []byte) (ptr Pointer, separated bool, err error) {
	if w.err != nil {
		return Pointer{}, false, w.err
	}
	if w.o.ValueThreshold > 0 && len(value) >= w.o.ValueThreshold {
		ptr, err = w.appendValue(value)
		if err != nil {
			return Pointer{}, false, err
		}
		body := enc.Uvarint(nil, uint64(len(key)))
		body = append(body, key...)
		body = enc.Uvarint(body, uint64(ptr.Off))
		body = enc.Uvarint(body, uint64(ptr.Len))
		return ptr, true, w.emit(recPutPtr, body)
	}
	body := enc.Uvarint(nil, uint64(len(key)))
	body = append(body, key...)
	body = append(body, value...)
	return Pointer{}, false, w.emit(recPut, body)
}

// appendValue writes one value-log entry: crc32c(4) | len(4) | bytes.
func (w *Writer) appendValue(value []byte) (Pointer, error) {
	entry := make([]byte, vlogHeader+len(value))
	binary.BigEndian.PutUint32(entry[0:4], crc32.Checksum(value, crcTable))
	binary.BigEndian.PutUint32(entry[4:8], uint32(len(value)))
	copy(entry[vlogHeader:], value)
	if _, err := w.vlog.Write(entry); err != nil {
		w.err = err
		return Pointer{}, err
	}
	ptr := Pointer{Off: w.vlogOff, Len: int64(len(value))}
	w.vlogOff += int64(len(entry))
	w.vlogDirty = true
	return ptr, nil
}

// ReadValue resolves a separated value. Safe for concurrent readers:
// it touches only the value-log handle via positional reads.
func (w *Writer) ReadValue(ptr Pointer) ([]byte, error) {
	entry := make([]byte, vlogHeader+int(ptr.Len))
	if _, err := w.vlog.ReadAt(entry, ptr.Off); err != nil {
		return nil, err
	}
	value := entry[vlogHeader:]
	if binary.BigEndian.Uint32(entry[4:8]) != uint32(ptr.Len) ||
		binary.BigEndian.Uint32(entry[0:4]) != crc32.Checksum(value, crcTable) {
		return nil, fmt.Errorf("wal: value log entry at %d corrupt", ptr.Off)
	}
	return value, nil
}

// AppendDelete logs a tombstone for key.
func (w *Writer) AppendDelete(key []byte) error {
	return w.emit(recDelete, key)
}

// AppendFlushMark logs that the store flushed its memtable here.
// Replay flushes exactly at marks, reproducing the run structure.
func (w *Writer) AppendFlushMark() error {
	return w.emit(recFlushMark, nil)
}

// AppendCompactMark logs an explicit compaction (flush-triggered
// compactions are implied by the flush mark and not logged).
func (w *Writer) AppendCompactMark() error {
	return w.emit(recCompactMark, nil)
}

// BeginTx opens an atomic unit; frames are buffered until EndTx.
// Nestable: only the outermost pair commits.
func (w *Writer) BeginTx() error {
	if w.err != nil {
		return w.err
	}
	w.txDepth++
	return nil
}

// EndTx closes the unit. A single-frame unit is written bare; a
// multi-frame unit is wrapped in tx markers and written as one blob,
// so recovery either replays all of it or none.
func (w *Writer) EndTx() error {
	if w.err != nil {
		return w.err
	}
	if w.txDepth == 0 {
		w.err = fmt.Errorf("wal: EndTx without BeginTx")
		return w.err
	}
	w.txDepth--
	if w.txDepth > 0 {
		return nil
	}
	buf, n := w.txBuf, w.txFrames
	w.txBuf, w.txFrames = nil, 0
	switch {
	case n == 0:
		return nil
	case n == 1:
		if err := w.writeFrames(buf, 1); err != nil {
			return err
		}
	default:
		blob := frameBytes(recTxBegin, nil)
		blob = append(blob, buf...)
		blob = append(blob, frameBytes(recTxEnd, nil)...)
		if err := w.writeFrames(blob, n+2); err != nil {
			return err
		}
	}
	if w.bulk {
		return nil
	}
	return w.afterUnit()
}

// BeginBulk opens a bulk-load unit: records stream to the segment
// unbuffered, with no interleaved fsyncs, and EndBulk commits the
// whole load with one sync. Recovery discards an unterminated bulk.
func (w *Writer) BeginBulk() error {
	if w.err != nil {
		return w.err
	}
	if w.bulk || w.txDepth > 0 {
		w.err = fmt.Errorf("wal: BeginBulk inside an open unit")
		return w.err
	}
	// The flag goes up before the marker is emitted: a group commit
	// immediately after the BulkBegin frame would advance the durable
	// LSN into an unterminated unit that recovery must discard.
	w.bulk = true
	if err := w.emit(recBulkBegin, nil); err != nil {
		w.bulk = false
		return err
	}
	return nil
}

// EndBulk closes the bulk unit, recording the pair count, and syncs.
func (w *Writer) EndBulk(pairs int) error {
	if w.err != nil {
		return w.err
	}
	if !w.bulk {
		w.err = fmt.Errorf("wal: EndBulk without BeginBulk")
		return w.err
	}
	if err := w.emit(recBulkEnd, enc.Uvarint(nil, uint64(pairs))); err != nil {
		return err
	}
	w.bulk = false
	if err := w.syncNow(); err != nil {
		return err
	}
	if w.segBytes >= w.o.SegmentBytes {
		return w.rotate()
	}
	return nil
}

// Sync forces a group commit of everything appended so far.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if w.pending == 0 && !w.vlogDirty {
		return nil
	}
	return w.syncNow()
}

// Close syncs outstanding records and releases the files.
func (w *Writer) Close() error {
	err := w.Sync()
	if w.seg != nil {
		if cerr := w.seg.Close(); err == nil {
			err = cerr
		}
		w.seg = nil
	}
	if w.vlog != nil {
		if cerr := w.vlog.Close(); err == nil {
			err = cerr
		}
		w.vlog = nil
	}
	return err
}
