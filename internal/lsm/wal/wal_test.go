package wal

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/lsm/fsim"
)

func collect(t *testing.T, fsys fsim.FS, dir string, o Options) (*Writer, *ReplayStats, []Op) {
	t.Helper()
	var ops []Op
	w, st, err := Replay(fsys, dir, o, func(op Op) error {
		ops = append(ops, op)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return w, st, ops
}

// fakeClock is an injectable clock for the group-commit window.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestRoundTrip(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	w, err := Create(m, "wal", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, sep, err := w.AppendPut([]byte("k1"), []byte("v1")); err != nil || sep {
		t.Fatalf("put: sep=%v err=%v", sep, err)
	}
	if err := w.AppendDelete([]byte("k2")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendFlushMark(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCompactMark(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, st, ops := collect(t, m, "wal", Options{})
	defer w2.Close()
	if st.Records != 4 || st.Puts != 1 || st.Deletes != 1 || st.FlushMarks != 1 || st.CompactMarks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesTruncated != 0 || st.VlogBytesTruncated != 0 {
		t.Fatalf("clean log truncated: %+v", st)
	}
	want := []Op{
		{Kind: OpPut, Key: []byte("k1"), Val: []byte("v1")},
		{Kind: OpDelete, Key: []byte("k2")},
		{Kind: OpFlushMark},
		{Kind: OpCompactMark},
	}
	if len(ops) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(ops), len(want))
	}
	for i, op := range ops {
		if op.Kind != want[i].Kind || !bytes.Equal(op.Key, want[i].Key) || !bytes.Equal(op.Val, want[i].Val) {
			t.Fatalf("op %d = %+v, want %+v", i, op, want[i])
		}
	}
	if w2.LSN() != 4 || w2.DurableLSN() != 4 {
		t.Fatalf("resumed lsn = %d/%d, want 4/4", w2.LSN(), w2.DurableLSN())
	}
}

func TestTornTailTruncatedNotFatal(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	w, _ := Create(m, "wal", Options{})
	for i := 0; i < 5; i++ {
		if _, _, err := w.AppendPut([]byte{byte('a' + i)}, []byte("val")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last 3 bytes of the segment, then append
	// garbage — a partial frame followed by noise.
	seg := "wal/wal-000001.seg"
	data, err := m.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := m.Create(seg)
	if _, err := f.Write(data[:len(data)-3]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	w2, st, ops := collect(t, m, "wal", Options{})
	if st.Records != 4 || len(ops) != 4 {
		t.Fatalf("replayed %d records (%d ops), want 4", st.Records, len(ops))
	}
	if st.BytesTruncated == 0 {
		t.Fatalf("no truncation recorded: %+v", st)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Idempotent: a second replay finds a clean log, repairs nothing.
	w3, st2, ops2 := collect(t, m, "wal", Options{})
	defer w3.Close()
	if st2.Records != 4 || len(ops2) != 4 || st2.BytesTruncated != 0 {
		t.Fatalf("second replay not idempotent: %+v", st2)
	}
}

func TestGroupCommitBatchesAndWindow(t *testing.T) {
	clk := &fakeClock{}
	m := fsim.NewMem(fsim.Faults{})
	o := Options{GroupCommitOps: 4, GroupCommitWindow: 2 * time.Millisecond, Now: clk.now}
	w, _ := Create(m, "wal", o)
	for i := 0; i < 3; i++ {
		if _, _, err := w.AppendPut([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if w.DurableLSN() != 0 {
		t.Fatalf("durable = %d before batch boundary", w.DurableLSN())
	}
	if _, _, err := w.AppendPut([]byte{9}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() != 4 || w.Syncs() != 1 {
		t.Fatalf("durable=%d syncs=%d after 4th record, want 4/1", w.DurableLSN(), w.Syncs())
	}

	// Window: one record, then the clock jumps past the window; the
	// next append must force the sync.
	if _, _, err := w.AppendPut([]byte{10}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() != 4 {
		t.Fatalf("durable advanced without sync trigger")
	}
	clk.advance(5 * time.Millisecond)
	if _, _, err := w.AppendPut([]byte{11}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() != 6 || w.Syncs() != 2 {
		t.Fatalf("window sync missing: durable=%d syncs=%d", w.DurableLSN(), w.Syncs())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestValueSeparation(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	big := bytes.Repeat([]byte("x"), 100)
	w, _ := Create(m, "wal", Options{ValueThreshold: 64})
	ptr, sep, err := w.AppendPut([]byte("big"), big)
	if err != nil || !sep {
		t.Fatalf("big put: sep=%v err=%v", sep, err)
	}
	if _, sep, err = w.AppendPut([]byte("small"), []byte("v")); err != nil || sep {
		t.Fatalf("small put separated")
	}
	got, err := w.ReadValue(ptr)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("ReadValue = %d bytes, %v", len(got), err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, st, ops := collect(t, m, "wal", Options{ValueThreshold: 64})
	defer w2.Close()
	if st.Puts != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if !ops[0].Separated || ops[0].Ptr != ptr {
		t.Fatalf("replayed ptr = %+v, want %+v", ops[0].Ptr, ptr)
	}
	if got, err := w2.ReadValue(ops[0].Ptr); err != nil || !bytes.Equal(got, big) {
		t.Fatalf("post-replay ReadValue failed: %v", err)
	}
}

func TestOrphanVlogTailTruncated(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	w, _ := Create(m, "wal", Options{ValueThreshold: 8})
	if _, _, err := w.AppendPut([]byte("a"), bytes.Repeat([]byte("A"), 16)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that persisted vlog bytes whose WAL frame was
	// lost: append garbage to the vlog.
	f, _ := m.Append("wal/values.vlog")
	if _, err := f.Write(bytes.Repeat([]byte{0xff}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	w2, st, _ := collect(t, m, "wal", Options{ValueThreshold: 8})
	if st.VlogBytesTruncated != 32 {
		t.Fatalf("VlogBytesTruncated = %d, want 32", st.VlogBytesTruncated)
	}
	// The surviving entry must still resolve, and the writer must
	// append new values after the trimmed tail without overlap.
	ptr2, sep, err := w2.AppendPut([]byte("b"), bytes.Repeat([]byte("B"), 16))
	if err != nil || !sep {
		t.Fatal(err)
	}
	if got, err := w2.ReadValue(ptr2); err != nil || !bytes.Equal(got, bytes.Repeat([]byte("B"), 16)) {
		t.Fatalf("ReadValue after trim: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTxAtomicity(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	w, _ := Create(m, "wal", Options{})
	// Committed multi-record tx.
	if err := w.BeginTx(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := w.AppendPut([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if w.LSN() != 0 {
		t.Fatalf("tx frames hit the log before commit: lsn=%d", w.LSN())
	}
	if err := w.EndTx(); err != nil {
		t.Fatal(err)
	}
	if w.LSN() != 5 { // TxBegin + 3 puts + TxEnd
		t.Fatalf("lsn = %d after tx, want 5", w.LSN())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the log inside the tx blob: cut after the TxBegin frame
	// plus a bit — recovery must discard the whole transaction.
	seg := "wal/wal-000001.seg"
	data, _ := m.ReadFile(seg)
	f, _ := m.Create(seg)
	if _, err := f.Write(data[:len(data)-12]); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	w2, st, ops := collect(t, m, "wal", Options{})
	defer w2.Close()
	if len(ops) != 0 || st.Records != 0 {
		t.Fatalf("torn tx partially replayed: %d ops, %+v", len(ops), st)
	}
	if st.BytesTruncated != int64(len(data)-12) {
		t.Fatalf("BytesTruncated = %d, want %d (whole torn tx)", st.BytesTruncated, len(data)-12)
	}
}

func TestSegmentRotation(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	w, _ := Create(m, "wal", Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if _, _, err := w.AppendPut([]byte(fmt.Sprintf("key-%02d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := m.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	segCount := 0
	for _, n := range names {
		if n != "values.vlog" {
			segCount++
		}
	}
	if segCount < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d: %v", segCount, names)
	}

	w2, st, ops := collect(t, m, "wal", Options{SegmentBytes: 64})
	if st.Segments != segCount || len(ops) != 20 {
		t.Fatalf("replay across segments: %d ops over %d segments (%+v)", len(ops), st.Segments, st)
	}
	for i, op := range ops {
		if want := fmt.Sprintf("key-%02d", i); string(op.Key) != want {
			t.Fatalf("op %d key = %q, want %q", i, op.Key, want)
		}
	}
	// The resumed writer appends into the newest segment.
	if _, _, err := w2.AppendPut([]byte("after"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, ops2 := collect(t, m, "wal", Options{SegmentBytes: 64})
	if len(ops2) != 21 || st2.BytesTruncated != 0 {
		t.Fatalf("after resume: %d ops, %+v", len(ops2), st2)
	}
}

func TestTornBulkDiscardedWhole(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	w, _ := Create(m, "wal", Options{})
	if err := w.BeginBulk(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := w.AppendPut([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// No EndBulk: simulate a crash before the bulk commit.
	if err := w.seg.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = w.seg.Close()
	_ = w.vlog.Close()

	w2, st, ops := collect(t, m, "wal", Options{})
	defer w2.Close()
	if len(ops) != 0 || st.Records != 0 || st.BulkLoads != 0 {
		t.Fatalf("unterminated bulk replayed: %d ops, %+v", len(ops), st)
	}
	if st.BytesTruncated == 0 {
		t.Fatalf("bulk tail not truncated: %+v", st)
	}
}

func TestCompletedBulkReplayed(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	w, _ := Create(m, "wal", Options{})
	if err := w.BeginBulk(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := w.AppendPut([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.EndBulk(4); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() != w.LSN() {
		t.Fatalf("EndBulk did not sync: %d != %d", w.DurableLSN(), w.LSN())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, st, ops := collect(t, m, "wal", Options{})
	defer w2.Close()
	if st.BulkLoads != 1 || st.BulkPairs != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if len(ops) != 6 || ops[0].Kind != OpBulkBegin || ops[5].Kind != OpBulkEnd {
		t.Fatalf("bulk op stream = %d ops", len(ops))
	}
}
