package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/enc"
	"repro/internal/lsm/fsim"
)

// OpKind classifies a replayed operation.
type OpKind uint8

// Replayed operation kinds.
const (
	OpPut OpKind = iota + 1
	OpDelete
	OpFlushMark
	OpCompactMark
	OpBulkBegin // followed by the bulk's OpPut stream, then OpBulkEnd
	OpBulkEnd
)

// Op is one replayed operation. Replay only ever delivers completed
// atomic units: a torn transaction or bulk load is discarded whole.
type Op struct {
	Kind OpKind
	Key  []byte
	// Val holds the inline value for an un-separated OpPut.
	Val []byte
	// Ptr locates the value in the value log when Separated is true.
	Ptr       Pointer
	Separated bool
}

// ReplayStats counts what recovery found and repaired.
type ReplayStats struct {
	// Records is the number of frames in the kept (valid) prefix,
	// marker frames included — the writer's resumed LSN.
	Records int64
	// Logical operation counts within the kept prefix.
	Puts, Deletes, FlushMarks, CompactMarks int64
	BulkLoads, BulkPairs                    int64
	// Segments found, and how many trailing ones were dropped whole.
	Segments, SegmentsDropped int
	// BytesTruncated is how much torn/discarded segment tail was cut;
	// VlogBytesTruncated likewise for the value log.
	BytesTruncated     int64
	VlogBytesTruncated int64
}

// unit is an atomic group of operations pending delivery.
type unit struct {
	ops    []Op
	frames int64
}

// Replay scans dir's segments oldest-first, delivers the
// newest-valid-prefix of completed units to apply, truncates whatever
// follows (torn frames, bad CRCs, unterminated units, orphan value-log
// bytes), and returns a Writer positioned to append. A fresh directory
// replays zero records. Replay is idempotent: reopening an
// already-recovered log delivers the same operations and repairs
// nothing further.
func Replay(fsys fsim.FS, dir string, o Options, apply func(Op) error) (*Writer, *ReplayStats, error) {
	o = o.withDefaults()
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var segs []string
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "wal-") && strings.HasSuffix(n, ".seg"):
			segs = append(segs, n)
		case strings.HasSuffix(n, ".tmp"):
			// Leftover from an interrupted truncation publish.
			if err := fsys.Remove(filepath.Join(dir, n)); err != nil {
				return nil, nil, err
			}
		}
	}
	sort.Strings(segs) // zero-padded indices sort numerically

	vlogPath := filepath.Join(dir, "values.vlog")
	vlogData, err := fsys.ReadFile(vlogPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, err
	}

	st := &ReplayStats{Segments: len(segs)}
	var vlogEnd int64

	deliver := func(u *unit) error {
		for i := range u.ops {
			op := &u.ops[i]
			switch op.Kind {
			case OpPut:
				st.Puts++
			case OpDelete:
				st.Deletes++
			case OpFlushMark:
				st.FlushMarks++
			case OpCompactMark:
				st.CompactMarks++
			case OpBulkBegin:
				st.BulkLoads++
			}
			if op.Separated {
				if end := op.Ptr.Off + vlogHeader + op.Ptr.Len; end > vlogEnd {
					vlogEnd = end
				}
			}
			if err := apply(*op); err != nil {
				return err
			}
		}
		st.Records += u.frames
		return nil
	}

	// checkVlog verifies a separated value is intact in the value log;
	// a failure means the unit referencing it is torn.
	checkVlog := func(p Pointer) bool {
		end := p.Off + vlogHeader + p.Len
		if p.Off < 0 || p.Len < 0 || end > int64(len(vlogData)) {
			return false
		}
		entry := vlogData[p.Off:end]
		return binary.BigEndian.Uint32(entry[4:8]) == uint32(p.Len) &&
			binary.BigEndian.Uint32(entry[0:4]) == crc32.Checksum(entry[vlogHeader:], crcTable)
	}

	truncSeg := -1 // segment index where the torn tail starts
	var truncOff int64
	lastKeptSize := int64(0)

scan:
	for si, name := range segs {
		data, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		lastKeptSize = int64(len(data))
		var off, commitOff int64
		var cur *unit
		var inTx, inBulk bool
		torn := func() {
			truncSeg, truncOff = si, commitOff
			lastKeptSize = commitOff
		}
		for off < int64(len(data)) {
			typ, body, end, ok := parseFrame(data, off)
			if !ok {
				torn()
				break scan
			}
			op, valid := decodeRecord(typ, body)
			if !valid {
				torn()
				break scan
			}
			switch typ {
			case recTxBegin:
				if inTx || inBulk || cur != nil {
					torn()
					break scan
				}
				inTx, cur = true, &unit{frames: 1}
			case recTxEnd:
				if !inTx {
					torn()
					break scan
				}
				cur.frames++
				if err := deliver(cur); err != nil {
					return nil, nil, err
				}
				inTx, cur = false, nil
				commitOff = end
			case recBulkBegin:
				if inTx || inBulk || cur != nil {
					torn()
					break scan
				}
				inBulk, cur = true, &unit{frames: 1}
				cur.ops = append(cur.ops, op)
			case recBulkEnd:
				if !inBulk {
					torn()
					break scan
				}
				want, _, _ := enc.TakeUvarint(body)
				if int64(len(cur.ops))-1 != int64(want) {
					torn()
					break scan
				}
				cur.ops = append(cur.ops, op)
				cur.frames++
				st.BulkPairs += int64(want)
				if err := deliver(cur); err != nil {
					return nil, nil, err
				}
				inBulk, cur = false, nil
				commitOff = end
			default:
				if op.Separated && !checkVlog(op.Ptr) {
					torn()
					break scan
				}
				if cur != nil {
					cur.ops = append(cur.ops, op)
					cur.frames++
				} else {
					if err := deliver(&unit{ops: []Op{op}, frames: 1}); err != nil {
						return nil, nil, err
					}
					commitOff = end
				}
			}
			off = end
		}
		if truncSeg < 0 && (inTx || inBulk) {
			// Segment ended mid-unit: the unit is torn.
			truncSeg, truncOff = si, commitOff
			lastKeptSize = commitOff
			break scan
		}
	}

	// Repair: rewrite the torn segment to its valid prefix, drop every
	// later segment, and trim orphan value-log bytes.
	if truncSeg >= 0 {
		name := segs[truncSeg]
		data, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		if int64(len(data)) > truncOff {
			st.BytesTruncated += int64(len(data)) - truncOff
			if err := publishPrefix(fsys, filepath.Join(dir, name), data[:truncOff]); err != nil {
				return nil, nil, err
			}
		}
		for _, name := range segs[truncSeg+1:] {
			data, err := fsys.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, nil, err
			}
			st.BytesTruncated += int64(len(data))
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return nil, nil, err
			}
			st.SegmentsDropped++
		}
		segs = segs[:truncSeg+1]
	}
	if int64(len(vlogData)) > vlogEnd {
		st.VlogBytesTruncated = int64(len(vlogData)) - vlogEnd
		if err := publishPrefix(fsys, vlogPath, vlogData[:vlogEnd]); err != nil {
			return nil, nil, err
		}
	}

	// Resume the writer on the last kept segment.
	segIdx := 1
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		if _, err := fmt.Sscanf(last, "wal-%d.seg", &segIdx); err != nil {
			return nil, nil, fmt.Errorf("wal: bad segment name %q: %w", last, err)
		}
	} else {
		lastKeptSize = 0
	}
	seg, err := fsys.Append(filepath.Join(dir, segName(segIdx)))
	if err != nil {
		return nil, nil, err
	}
	vlogF, err := fsys.Append(vlogPath)
	if err != nil {
		seg.Close()
		return nil, nil, err
	}
	w := &Writer{
		fs: fsys, dir: dir, o: o,
		seg: seg, segIdx: segIdx, segBytes: lastKeptSize,
		vlog: vlogF, vlogOff: vlogEnd,
		lsn: st.Records, durable: st.Records,
	}
	return w, st, nil
}

// parseFrame decodes the frame starting at off; ok is false for a
// torn or corrupt frame (short header, impossible length, CRC
// mismatch).
func parseFrame(data []byte, off int64) (typ byte, body []byte, end int64, ok bool) {
	rest := data[off:]
	if len(rest) < frameHeader+1 {
		return 0, nil, 0, false
	}
	want := binary.BigEndian.Uint32(rest[0:4])
	plen := int64(binary.BigEndian.Uint32(rest[4:8]))
	if plen < 1 || plen > maxFrame || plen > int64(len(rest))-frameHeader {
		return 0, nil, 0, false
	}
	payload := rest[frameHeader : frameHeader+plen]
	if crc32.Checksum(payload, crcTable) != want {
		return 0, nil, 0, false
	}
	return payload[0], payload[1:], off + frameHeader + plen, true
}

// decodeRecord turns a frame payload into an Op. Marker frames decode
// to zero-value Ops for the caller's state machine; valid is false on
// malformed bodies.
func decodeRecord(typ byte, body []byte) (Op, bool) {
	switch typ {
	case recPut:
		klen, rest, ok := enc.TakeUvarint(body)
		if !ok || int64(klen) > int64(len(rest)) {
			return Op{}, false
		}
		return Op{
			Kind: OpPut,
			Key:  append([]byte(nil), rest[:klen]...),
			Val:  append([]byte(nil), rest[klen:]...),
		}, true
	case recPutPtr:
		klen, rest, ok := enc.TakeUvarint(body)
		if !ok || int64(klen) > int64(len(rest)) {
			return Op{}, false
		}
		key := append([]byte(nil), rest[:klen]...)
		off, rest, ok := enc.TakeUvarint(rest[klen:])
		if !ok {
			return Op{}, false
		}
		vlen, rest, ok := enc.TakeUvarint(rest)
		if !ok || len(rest) != 0 {
			return Op{}, false
		}
		return Op{
			Kind: OpPut, Key: key,
			Ptr:       Pointer{Off: int64(off), Len: int64(vlen)},
			Separated: true,
		}, true
	case recDelete:
		return Op{Kind: OpDelete, Key: append([]byte(nil), body...)}, true
	case recFlushMark:
		return Op{Kind: OpFlushMark}, len(body) == 0
	case recCompactMark:
		return Op{Kind: OpCompactMark}, len(body) == 0
	case recTxBegin, recTxEnd:
		return Op{}, len(body) == 0
	case recBulkBegin:
		return Op{Kind: OpBulkBegin}, len(body) == 0
	case recBulkEnd:
		n, rest, ok := enc.TakeUvarint(body)
		_ = n
		return Op{Kind: OpBulkEnd}, ok && len(rest) == 0
	default:
		return Op{}, false
	}
}

// publishPrefix atomically replaces path with the given prefix of its
// contents: write a temp file, sync it, then rename over the original
// — the checked-Sync-before-Rename contract fsyncrename enforces.
func publishPrefix(fsys fsim.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}
