package lsm

// Durable-mode benchmarks: sustained write throughput with and
// without group commit, and recovery replay speed. The grouped/
// sync-each pair quantifies the batching effect the WAL exists for;
// TestRecordLSMBenchmarks renders all three into BENCH_lsm.json for
// CI (set BENCH_JSON to the output path) and ratchets against the
// committed floors.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/lsm/wal"
)

func benchWALOpts(groupOps int) wal.Options {
	return wal.Options{
		SegmentBytes:      4 << 20,
		ValueThreshold:    1024,
		GroupCommitOps:    groupOps,
		GroupCommitWindow: 2 * time.Millisecond,
	}
}

func benchDurablePut(b *testing.B, groupOps int) {
	dir := b.TempDir()
	s, _, err := Open(dir, OpenOptions{
		Store: Options{FlushBytes: 4 << 20, CompactAt: 4},
		WAL:   benchWALOpts(groupOps),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%09d", i))
		s.Put(key, val)
		if s.Err() != nil {
			b.Fatal(s.Err())
		}
	}
}

func BenchmarkDurablePutGrouped(b *testing.B)  { benchDurablePut(b, 64) }
func BenchmarkDurablePutSyncEach(b *testing.B) { benchDurablePut(b, 1) }

// benchRecoveryRecords sizes the replayed log.
const benchRecoveryRecords = 20000

func buildRecoveryLog(b *testing.B, dir string) {
	s, _, err := Open(dir, OpenOptions{
		Store: Options{FlushBytes: 64 << 10, CompactAt: 4},
		WAL:   benchWALOpts(64),
	})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 100)
	for i := 0; i < benchRecoveryRecords; i++ {
		s.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
	if s.Err() != nil {
		b.Fatal(s.Err())
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	buildRecoveryLog(b, dir)
	opts := OpenOptions{
		Store: Options{FlushBytes: 64 << 10, CompactAt: 4},
		WAL:   benchWALOpts(64),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, rst, err := Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rst.Puts < benchRecoveryRecords {
			b.Fatalf("replayed only %d puts", rst.Puts)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// lsmBenchRecord is one benchmark's entry in BENCH_lsm.json.
type lsmBenchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TestRecordLSMBenchmarks runs the durable-write pair and the
// recovery benchmark through testing.Benchmark and writes throughput,
// the group-commit speedup, and recovery replay rate to the file
// named by BENCH_JSON (skipped when unset). The committed
// BENCH_lsm.json ratchets the trajectory: falling below half a
// committed floor fails even on a fast machine.
func TestRecordLSMBenchmarks(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set; skipping benchmark recording")
	}
	run := func(name string, fn func(*testing.B)) lsmBenchRecord {
		r := testing.Benchmark(fn)
		t.Logf("%s: %v", name, r)
		return lsmBenchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	grouped := run("durable-put/group-commit-64", BenchmarkDurablePutGrouped)
	syncEach := run("durable-put/sync-each-op", BenchmarkDurablePutSyncEach)
	recovery := run("recovery/20k-records", BenchmarkRecovery)

	throughput := 1e9 / grouped.NsPerOp
	speedup := syncEach.NsPerOp / grouped.NsPerOp
	recRate := float64(benchRecoveryRecords) * 1e9 / recovery.NsPerOp
	doc := struct {
		Benchmarks            []lsmBenchRecord `json:"benchmarks"`
		WriteOpsPerSec        float64          `json:"write_throughput_ops_per_sec"`
		GroupCommitSpeedup    float64          `json:"group_commit_speedup"`
		RecoveryRecordsPerSec float64          `json:"recovery_records_per_sec"`
	}{
		Benchmarks:            []lsmBenchRecord{grouped, syncEach, recovery},
		WriteOpsPerSec:        throughput,
		GroupCommitSpeedup:    speedup,
		RecoveryRecordsPerSec: recRate,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%.0f writes/s, group-commit %.1fx, recovery %.0f records/s)",
		out, throughput, speedup, recRate)
	if speedup < 1.5 {
		t.Errorf("group commit is only %.2fx faster than per-op fsync, want >= 1.5x", speedup)
	}

	if floors, ok := committedLSMFloor(t); ok {
		check := func(name string, got, floor float64) {
			if floor > 0 && got < floor/2 {
				t.Errorf("%s = %.1f is less than half the committed floor %.1f (BENCH_lsm.json); investigate or re-baseline", name, got, floor)
			}
		}
		check("write_throughput_ops_per_sec", throughput, floors.WriteOpsPerSec)
		check("group_commit_speedup", speedup, floors.GroupCommitSpeedup)
		check("recovery_records_per_sec", recRate, floors.RecoveryRecordsPerSec)
	}
}

type lsmFloors struct {
	WriteOpsPerSec        float64 `json:"write_throughput_ops_per_sec"`
	GroupCommitSpeedup    float64 `json:"group_commit_speedup"`
	RecoveryRecordsPerSec float64 `json:"recovery_records_per_sec"`
}

// committedLSMFloor reads the floors from the repo's committed
// BENCH_lsm.json.
func committedLSMFloor(t *testing.T) (lsmFloors, bool) {
	raw, err := os.ReadFile("../../BENCH_lsm.json")
	if err != nil {
		t.Logf("no committed BENCH_lsm.json floor: %v", err)
		return lsmFloors{}, false
	}
	var doc lsmFloors
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed BENCH_lsm.json is unreadable: %v", err)
	}
	return doc, doc.WriteOpsPerSec > 0
}
