// Package fsim is the filesystem seam under the LSM write-ahead log.
// Durability code never touches the os package directly: it writes
// through the FS/File interfaces, so tests can substitute Mem — a
// deterministic in-memory filesystem with seeded failpoints (crash at
// the Nth mutating operation, fail the Nth fsync, tear unsynced writes
// at a seeded byte, drop not-yet-durable renames) — while production
// uses OS, a thin veneer over the real filesystem.
//
// The crash model is deliberately adversarial: bytes written but not
// fsynced may survive partially (a seeded prefix) or not at all, and a
// rename is only durable once a subsequent fsync commits it. Recovery
// code that is correct against Mem is correct against power loss, not
// merely against process death (kill -9 leaves the page cache intact
// and is therefore the *easy* case).
package fsim

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the WAL and value log write through.
// Implementations must return names from ReadDir in sorted order so
// replay visits segments deterministically.
type FS interface {
	// MkdirAll ensures dir and its parents exist.
	MkdirAll(dir string) error
	// ReadDir returns the base names of the regular files directly
	// under dir, sorted ascending. A missing dir is an empty listing.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of name (fs.ErrNotExist if absent).
	ReadFile(name string) ([]byte, error)
	// Create opens name truncated to empty, for writing.
	Create(name string) (File, error)
	// Append opens name for appending writes and positional reads,
	// creating it empty if absent.
	Append(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
}

// File is an open handle: appending writes, positional reads, fsync.
type File interface {
	io.Writer
	io.ReaderAt
	// Sync makes every byte written so far durable.
	Sync() error
	// Close releases the handle without syncing.
	Close() error
}

// OS is the production FS: a direct passthrough to the os package.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Append implements FS.
func (OS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
}

// Rename implements FS. This is the raw primitive the analyzer-checked
// publish paths in internal/lsm and internal/lsm/wal call through the
// FS interface; the checked-Sync-before-Rename ordering is enforced at
// those call sites, not here.
//
//lint:gdb-allow fsyncrename raw VFS primitive; publish ordering is checked at fsim.FS call sites
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// clean normalizes a path so Mem map lookups agree across spellings.
func clean(name string) string { return filepath.Clean(name) }
