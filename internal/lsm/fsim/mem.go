package fsim

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed is returned by every operation on a crashed Mem: the
// simulated machine has lost power and the process with it.
var ErrCrashed = errors.New("fsim: filesystem crashed")

// ErrInjected is returned by a failpoint that fails an operation
// without crashing the filesystem (e.g. the Nth fsync reports an I/O
// error; the process survives and must stop acknowledging writes).
var ErrInjected = errors.New("fsim: injected fault")

var errClosed = errors.New("fsim: file closed")

// Faults configures deterministic failpoints. The zero value injects
// nothing. All randomness derives from Seed, so a (Faults, op
// sequence) pair replays identically.
type Faults struct {
	// CrashAtOp > 0 crashes the filesystem in place of the Nth
	// mutating operation (1-based; Create/Append/Write/Sync/Rename/
	// Remove count). The op itself never takes effect.
	CrashAtOp int
	// FailSyncN > 0 makes the Nth Sync call (1-based) return
	// ErrInjected without persisting anything.
	FailSyncN int
	// TearWrites lets a seeded prefix of each file's unsynced tail
	// survive a crash — the torn-write adversary. When false, a crash
	// drops the unsynced tail entirely.
	TearWrites bool
	// DropRenames rolls back renames that no fsync has committed yet
	// when the crash hits, restoring the replaced file.
	DropRenames bool
	// Seed drives tear lengths.
	Seed int64
}

// Mem is a deterministic in-memory FS with a synced-prefix durability
// model: each file tracks how much of it an fsync has made durable,
// and Crash discards (or tears) everything beyond that point.
type Mem struct {
	mu      sync.Mutex
	faults  Faults
	rng     *rand.Rand
	files   map[string]*memFile
	dirs    map[string]bool
	renames []renameEntry
	ops     int
	syncs   int
	crashed bool
	image   map[string][]byte
}

type memFile struct {
	data   []byte
	synced int
}

// renameEntry records a rename not yet committed by an fsync, with
// enough state to roll it back: the moved file object and whatever the
// destination name pointed at before.
type renameEntry struct {
	from, to string
	moved    *memFile
	replaced *memFile
}

// NewMem returns an empty filesystem with the given failpoints armed.
func NewMem(f Faults) *Mem {
	return &Mem{
		faults: f,
		rng:    rand.New(rand.NewSource(f.Seed)),
		files:  make(map[string]*memFile),
		dirs:   make(map[string]bool),
	}
}

// Ops returns the number of mutating operations attempted so far. A
// fault-free dry run's final count bounds the crash matrix: every n in
// [1, Ops()] is a distinct failpoint.
func (m *Mem) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the filesystem has crashed.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// step counts a mutating op and crashes in its place when the armed
// failpoint is reached. Callers hold m.mu.
func (m *Mem) step() error {
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if m.faults.CrashAtOp > 0 && m.ops == m.faults.CrashAtOp {
		m.crashLocked()
		return ErrCrashed
	}
	return nil
}

// Crash simulates power loss now: uncommitted renames roll back (when
// DropRenames is set), unsynced tails are dropped or torn, and every
// subsequent operation fails with ErrCrashed. Idempotent.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.crashed {
		m.crashLocked()
	}
}

func (m *Mem) crashLocked() {
	m.crashed = true
	if m.faults.DropRenames {
		for i := len(m.renames) - 1; i >= 0; i-- {
			e := m.renames[i]
			m.files[e.from] = e.moved
			if e.replaced != nil {
				m.files[e.to] = e.replaced
			} else if m.files[e.to] == e.moved {
				delete(m.files, e.to)
			}
		}
	}
	// Freeze the durable image now so Image() is stable however often
	// it is called. Names are visited sorted so the seeded tear
	// lengths are deterministic.
	m.image = make(map[string][]byte, len(m.files))
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := m.files[name]
		keep := f.synced
		if m.faults.TearWrites && len(f.data) > f.synced {
			keep += m.rng.Intn(len(f.data) - f.synced + 1)
		}
		m.image[name] = append([]byte(nil), f.data[:keep]...)
	}
}

// Image returns the durable state as a fresh, fault-free filesystem —
// what a reboot would find on disk. Calling Image on a live Mem
// crashes it first.
func (m *Mem) Image() *Mem {
	m.mu.Lock()
	if !m.crashed {
		m.crashLocked()
	}
	img := NewMem(Faults{})
	for name, data := range m.image {
		img.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
	}
	m.mu.Unlock()
	return img
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.dirs[clean(dir)] = true
	return nil
}

// ReadDir implements FS.
func (m *Mem) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	dir = clean(dir)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements FS.
func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[clean(name)]
	if !ok {
		return nil, fmt.Errorf("fsim: %s: %w", name, fs.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

// Create implements FS: a truncating create.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	f := &memFile{}
	m.files[clean(name)] = f
	return &memHandle{fs: m, f: f}, nil
}

// Append implements FS: opens for appending, creating if absent. The
// handle follows the file object across renames, like a real fd.
func (m *Mem) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	f, ok := m.files[clean(name)]
	if !ok {
		f = &memFile{}
		m.files[clean(name)] = f
	}
	return &memHandle{fs: m, f: f}, nil
}

// Rename implements FS. The rename is visible immediately but only
// durable once a subsequent Sync commits it (the DropRenames fault
// rolls uncommitted renames back at crash time).
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	oldname, newname = clean(oldname), clean(newname)
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("fsim: rename %s: %w", oldname, fs.ErrNotExist)
	}
	m.renames = append(m.renames, renameEntry{from: oldname, to: newname, moved: f, replaced: m.files[newname]})
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	name = clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("fsim: remove %s: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

type memHandle struct {
	fs     *Mem
	f      *memFile
	closed bool
}

// Write appends p. When the crash failpoint lands on this op the
// write never happens; tearing of previously-written unsynced bytes is
// applied by the crash itself.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, errClosed
	}
	if err := h.fs.step(); err != nil {
		return 0, err
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// ReadAt implements io.ReaderAt over the file's current (possibly
// unsynced) contents.
func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, errClosed
	}
	if off < 0 || off > int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Sync marks the file's current length durable and commits pending
// renames — the journal-commit point of the model. The FailSyncN
// failpoint reports an error and persists nothing.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return errClosed
	}
	if err := h.fs.step(); err != nil {
		return err
	}
	h.fs.syncs++
	if h.fs.faults.FailSyncN > 0 && h.fs.syncs == h.fs.faults.FailSyncN {
		return ErrInjected
	}
	h.f.synced = len(h.f.data)
	h.fs.renames = nil
	return nil
}

// Close releases the handle without syncing.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
