package fsim

import (
	"bytes"
	"errors"
	"io/fs"
	"path/filepath"
	"testing"
)

func write(t *testing.T, f File, p []byte) {
	t.Helper()
	if _, err := f.Write(p); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func TestMemSyncedPrefixSurvivesCrash(t *testing.T) {
	m := NewMem(Faults{})
	f, err := m.Append("wal/seg")
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, []byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, f, []byte(" volatile"))
	m.Crash()

	img := m.Image()
	got, err := img.ReadFile("wal/seg")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable" {
		t.Fatalf("image = %q, want synced prefix %q", got, "durable")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: err = %v, want ErrCrashed", err)
	}
}

func TestMemTearWritesDeterministic(t *testing.T) {
	run := func() []byte {
		m := NewMem(Faults{TearWrites: true, Seed: 42})
		f, _ := m.Append("seg")
		write(t, f, []byte("synced"))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		write(t, f, []byte("0123456789"))
		m.Crash()
		got, err := m.Image().ReadFile("seg")
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different images: %q vs %q", a, b)
	}
	if !bytes.HasPrefix(a, []byte("synced")) {
		t.Fatalf("image %q lost the synced prefix", a)
	}
	if !bytes.HasPrefix([]byte("synced0123456789"), a) {
		t.Fatalf("image %q is not a prefix of the written stream", a)
	}
}

func TestMemDropRenamesRollsBackUncommitted(t *testing.T) {
	m := NewMem(Faults{DropRenames: true})
	old, _ := m.Create("dir/target")
	write(t, old, []byte("original"))
	if err := old.Sync(); err != nil {
		t.Fatal(err)
	}
	tmp, _ := m.Create("dir/tmp")
	write(t, tmp, []byte("replacement"))
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("dir/tmp", "dir/target"); err != nil {
		t.Fatal(err)
	}
	m.Crash()

	img := m.Image()
	got, err := img.ReadFile("dir/target")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("uncommitted rename survived crash: target = %q", got)
	}
	if back, err := img.ReadFile("dir/tmp"); err != nil || string(back) != "replacement" {
		t.Fatalf("rolled-back temp = %q, %v; want replacement", back, err)
	}
}

func TestMemSyncCommitsRename(t *testing.T) {
	m := NewMem(Faults{DropRenames: true})
	tmp, _ := m.Create("dir/tmp")
	write(t, tmp, []byte("replacement"))
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("dir/tmp", "dir/target"); err != nil {
		t.Fatal(err)
	}
	other, _ := m.Create("dir/other")
	if err := other.Sync(); err != nil { // any fsync commits the journal
		t.Fatal(err)
	}
	m.Crash()
	got, err := m.Image().ReadFile("dir/target")
	if err != nil || string(got) != "replacement" {
		t.Fatalf("committed rename lost: target = %q, %v", got, err)
	}
}

func TestMemFailSyncN(t *testing.T) {
	m := NewMem(Faults{FailSyncN: 2})
	f, _ := m.Append("seg")
	write(t, f, []byte("one"))
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	write(t, f, []byte("two"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2: err = %v, want ErrInjected", err)
	}
	got, err := m.Image().ReadFile("seg")
	if err != nil || string(got) != "one" {
		t.Fatalf("after failed sync, durable = %q, %v; want %q", got, err, "one")
	}
}

func TestMemCrashAtEveryOp(t *testing.T) {
	sequence := func(m *Mem) {
		f, err := m.Append("d/a")
		if err != nil {
			return
		}
		if _, err := f.Write([]byte("aaaa")); err != nil {
			return
		}
		if err := f.Sync(); err != nil {
			return
		}
		g, err := m.Create("d/tmp")
		if err != nil {
			return
		}
		if _, err := g.Write([]byte("bbbb")); err != nil {
			return
		}
		if err := g.Sync(); err != nil {
			return
		}
		if err := m.Rename("d/tmp", "d/b"); err != nil {
			return
		}
		if err := f.Sync(); err != nil {
			return
		}
		_ = m.Remove("d/a")
	}
	dry := NewMem(Faults{})
	sequence(dry)
	total := dry.Ops()
	if total < 8 {
		t.Fatalf("dry run counted %d ops, want >= 8", total)
	}
	for n := 1; n <= total; n++ {
		m := NewMem(Faults{CrashAtOp: n, TearWrites: true, DropRenames: true, Seed: int64(n)})
		sequence(m)
		if !m.Crashed() {
			t.Fatalf("failpoint %d: never crashed", n)
		}
		img := m.Image()
		if _, err := img.ReadDir("d"); err != nil {
			t.Fatalf("failpoint %d: image unreadable: %v", n, err)
		}
	}
}

func TestOSRoundtrip(t *testing.T) {
	var osfs OS
	dir := t.TempDir()
	if err := osfs.MkdirAll(filepath.Join(dir, "wal")); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "wal", "seg-1")
	f, err := osfs.Append(name)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, []byte("hello "))
	write(t, f, []byte("world"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("ReadAt = %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := osfs.ReadDir(filepath.Join(dir, "wal"))
	if err != nil || len(names) != 1 || names[0] != "seg-1" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := osfs.Rename(name, name+".bak"); err != nil {
		t.Fatal(err)
	}
	got, err := osfs.ReadFile(name + ".bak")
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := osfs.Remove(name + ".bak"); err != nil {
		t.Fatal(err)
	}
	if _, err := osfs.ReadFile(name + ".bak"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("removed file still readable: %v", err)
	}
	if missing, err := osfs.ReadDir(filepath.Join(dir, "nope")); err != nil || missing != nil {
		t.Fatalf("missing dir: %v, %v", missing, err)
	}
}
