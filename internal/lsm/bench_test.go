package lsm

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func benchStore(n int, cache bool) *Store {
	opts := DefaultOptions()
	if cache {
		opts.CachePrefixLen = 8
	}
	s := New(opts)
	for i := 0; i < n; i++ {
		var k [12]byte
		binary.BigEndian.PutUint64(k[:], uint64(i%1000)) // 1000 rows
		binary.BigEndian.PutUint32(k[8:], uint32(i))
		s.Put(k[:], []byte(fmt.Sprint(i)))
	}
	s.Flush()
	return s
}

// BenchmarkPut measures the Titan-style write path (memtable insert +
// flush amortization).
func BenchmarkPut(b *testing.B) {
	s := New(DefaultOptions())
	var k [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i))
		s.Put(k[:], k[:])
	}
}

// BenchmarkDelete measures the tombstone write that makes Titan's
// deletions faster than its insertions (Figure 3(c)).
func BenchmarkDelete(b *testing.B) {
	s := New(DefaultOptions())
	var k [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i))
		s.Delete(k[:])
	}
}

func BenchmarkGetAcrossRuns(b *testing.B) {
	s := benchStore(100_000, false)
	var k [12]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(k[:], uint64(i%1000))
		binary.BigEndian.PutUint32(k[8:], uint32(i%100_000))
		s.Get(k[:])
	}
}

// BenchmarkScanPrefix contrasts the row read with and without the v1.0
// row cache — the ablation behind Titan's cache-flattered Figure 2
// numbers.
func BenchmarkScanPrefix(b *testing.B) {
	for _, cache := range []bool{false, true} {
		b.Run(fmt.Sprintf("cache=%v", cache), func(b *testing.B) {
			s := benchStore(100_000, cache)
			var p [8]byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.BigEndian.PutUint64(p[:], uint64(i%1000))
				n := 0
				s.ScanPrefix(p[:], func(_, _ []byte) bool { n++; return true })
			}
		})
	}
}
