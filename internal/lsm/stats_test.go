package lsm

import (
	"bytes"
	"fmt"
	"testing"
)

// TestStatsBytesAfterBulkLoad pins the accounting contract after a
// bulk load: one run, no flushes or compactions, empty memtable, and
// Bytes equal to the run's key+value payload plus per-pair overhead.
func TestStatsBytesAfterBulkLoad(t *testing.T) {
	s := New(Options{FlushBytes: 1 << 20, CompactAt: 4})
	var keys, vals [][]byte
	var payload int64
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		v := bytes.Repeat([]byte("v"), i+1)
		keys = append(keys, k)
		vals = append(vals, v)
		payload += int64(len(k) + len(v))
	}
	if err := s.BulkLoad(keys, vals); err != nil {
		t.Fatal(err)
	}
	flushes, compacts, runs, _, _ := s.Stats()
	if flushes != 0 || compacts != 0 || runs != 1 {
		t.Fatalf("after bulk: flushes/compacts/runs = %d/%d/%d, want 0/0/1", flushes, compacts, runs)
	}
	want := payload + 6*int64(len(keys))
	if got := s.Bytes(); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}

	// A put lands in the memtable and grows the footprint.
	before := s.Bytes()
	s.Put([]byte("zzz"), []byte("tail"))
	if got := s.Bytes(); got <= before {
		t.Fatalf("Bytes() = %d after put, want > %d", got, before)
	}
}

// TestStatsBytesAcrossFlushCompactCycles walks the store through
// flush and compaction cycles, checking the counters move in step and
// Bytes stays consistent with the live structure.
func TestStatsBytesAcrossFlushCompactCycles(t *testing.T) {
	s := New(Options{FlushBytes: 1 << 20, CompactAt: 3})
	for cycle := 0; cycle < 2; cycle++ {
		for i := 0; i < 5; i++ {
			s.Put([]byte(fmt.Sprintf("c%d-%d", cycle, i)), bytes.Repeat([]byte("x"), 10))
		}
		s.Flush()
		flushes, _, _, _, _ := s.Stats()
		if flushes != cycle+1 {
			t.Fatalf("cycle %d: flushes = %d, want %d", cycle, flushes, cycle+1)
		}
	}
	// Two runs so far; a third flush triggers auto-compaction at
	// CompactAt=3, collapsing back to one run.
	s.Put([]byte("final"), []byte("v"))
	s.Flush()
	flushes, compacts, runs, _, _ := s.Stats()
	if flushes != 3 || compacts != 1 || runs != 1 {
		t.Fatalf("after cycles: flushes/compacts/runs = %d/%d/%d, want 3/1/1", flushes, compacts, runs)
	}
	if s.mem.Len() != 0 {
		t.Fatalf("memtable not empty after flush: %d entries", s.mem.Len())
	}
	// All data lives in the single run now; Bytes must equal its size.
	if got := s.Bytes(); got != s.runs[0].bytes {
		t.Fatalf("Bytes() = %d, want run size %d", got, s.runs[0].bytes)
	}

	// Deleting everything and compacting drops tombstones and shadowed
	// versions: footprint returns to zero.
	s.ScanPrefix(nil, func(k, _ []byte) bool {
		s.Delete(append([]byte(nil), k...))
		return true
	})
	s.Flush()
	s.Compact()
	if got := s.Bytes(); got != 0 {
		t.Fatalf("Bytes() = %d after deleting everything and compacting, want 0", got)
	}
	if n := len(dumpStore(s)); n != 0 {
		t.Fatalf("%d live keys after deleting everything", n)
	}
}

// TestRowCacheInvalidationOnReplayApply is the regression the ISSUE
// asks for: writes that arrive through WAL replay go through applyPut,
// which must invalidate the row cache exactly like a live Put — a
// cached ScanPrefix result may never hide a replayed row.
func TestRowCacheInvalidationOnReplayApply(t *testing.T) {
	s := New(Options{FlushBytes: 1 << 20, CompactAt: 4, CachePrefixLen: 2})
	s.Put([]byte("ab1"), []byte("v1"))
	s.Put([]byte("ab2"), []byte("v2"))

	scan := func() []string {
		var got []string
		s.ScanPrefix([]byte("ab"), func(k, _ []byte) bool {
			got = append(got, string(k))
			return true
		})
		return got
	}
	if got := scan(); len(got) != 2 {
		t.Fatalf("warmup scan: %v", got)
	}
	// Second scan must be served from the cache.
	_, _, _, hits0, _ := s.Stats()
	scan()
	if _, _, _, hits, _ := s.Stats(); hits != hits0+1 {
		t.Fatalf("cache hits = %d, want %d (prefix not cached?)", hits, hits0+1)
	}

	// A replay-path write under the cached prefix.
	s.applyPut([]byte("ab3"), []byte("v3"))
	if got := scan(); len(got) != 3 || got[2] != "ab3" {
		t.Fatalf("scan after applyPut = %v, want ab1 ab2 ab3", got)
	}

	// Same for the replay-path delete.
	s.applyDelete([]byte("ab1"))
	if got := scan(); len(got) != 2 || got[0] != "ab2" {
		t.Fatalf("scan after applyDelete = %v, want ab2 ab3", got)
	}
}
