// Package lsm implements a log-structured merge store: an in-memory
// memtable that flushes into immutable sorted runs (SSTables), deletes
// as tombstones, size-tiered compaction, and an optional row cache.
//
// It stands in for the Cassandra backend under the Titan-style engine.
// The behaviours the paper observes all live here: writes are cheap but
// pass through serialization and flush machinery; deletes are *faster*
// than in the other engines because a tombstone write suffices (the
// paper's "tombstone mechanism" note on Titan); reads must consult the
// memtable plus every run (newest wins); and the v1.0 row cache makes
// repeated complex queries look better than the micro-benchmarks say.
package lsm

import (
	"bytes"
	"sort"
	"sync"

	"repro/internal/btree"
	"repro/internal/enc"
	"repro/internal/lsm/wal"
)

// Options configure a Store.
type Options struct {
	// FlushBytes is the memtable payload size that triggers a flush.
	FlushBytes int64
	// CompactAt is the number of runs that triggers a full compaction.
	CompactAt int
	// CachePrefixLen enables the row cache when > 0: ScanPrefix results
	// for prefixes of exactly this length are cached until a write
	// touches the row.
	CachePrefixLen int
}

// DefaultOptions are sized for benchmark workloads.
func DefaultOptions() Options {
	return Options{FlushBytes: 1 << 20, CompactAt: 8}
}

type sstable struct {
	keys  [][]byte
	vals  [][]byte // nil value = tombstone
	bytes int64
}

func (t *sstable) get(key []byte) (val []byte, found bool) {
	i := sort.Search(len(t.keys), func(i int) bool { return bytes.Compare(t.keys[i], key) >= 0 })
	if i < len(t.keys) && bytes.Equal(t.keys[i], key) {
		return t.vals[i], true
	}
	return nil, false
}

// Store is an LSM key-value store. Reads are safe to run concurrently
// with each other (the row cache is internally synchronized, matching
// the core.Engine contract that read surfaces tolerate concurrent
// reads); writes are single-threaded and must not overlap reads.
type Store struct {
	opts     Options
	mem      *btree.Tree
	memBytes int64
	runs     []*sstable // newest last
	flushes  int
	compacts int

	// Durable mode (see Open): every mutation is logged to the WAL
	// before it touches the memtable, and stored values are boxed with
	// an inline/pointer tag so large payloads can live in the value
	// log. Volatile stores (New) leave all of this nil/false and store
	// raw value bytes.
	wal       *wal.Writer
	durable   bool
	replaying bool
	err       error

	// cacheMu guards cache, hits and miss: ScanPrefix mutates them on
	// the read path, which concurrent readers would otherwise race on.
	cacheMu sync.Mutex
	cache   map[string][]kv
	hits    int
	miss    int
}

type kv struct{ k, v []byte }

// New returns an empty store.
func New(opts Options) *Store {
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = DefaultOptions().FlushBytes
	}
	if opts.CompactAt <= 0 {
		opts.CompactAt = DefaultOptions().CompactAt
	}
	s := &Store{opts: opts, mem: btree.New()}
	if opts.CachePrefixLen > 0 {
		s.cache = make(map[string][]kv)
	}
	return s
}

func (s *Store) invalidate(key []byte) {
	if s.cache == nil {
		return
	}
	if len(key) >= s.opts.CachePrefixLen {
		s.cacheMu.Lock()
		delete(s.cache, string(key[:s.opts.CachePrefixLen]))
		s.cacheMu.Unlock()
	}
}

// Put writes key→value. In durable mode the record is logged (and the
// whole operation, including any flush it triggers, commits as one
// atomic WAL unit) before the memtable changes; a logging failure
// poisons the store (see Err) and drops the write.
func (s *Store) Put(key, value []byte) {
	if value == nil {
		value = []byte{}
	}
	if s.wal == nil {
		s.applyPut(key, value)
		return
	}
	if s.err != nil {
		return
	}
	if err := s.wal.BeginTx(); err != nil {
		s.err = err
		return
	}
	ptr, sep, err := s.wal.AppendPut(key, value)
	if err != nil {
		s.err = err
		return
	}
	s.applyPut(key, boxValue(value, ptr, sep))
	if s.err != nil {
		return
	}
	if err := s.wal.EndTx(); err != nil {
		s.err = err
	}
}

// applyPut is the raw memtable insert shared by the volatile path,
// the durable path (boxed values) and WAL replay. It invalidates the
// row cache — recovery must not resurrect stale cached rows.
func (s *Store) applyPut(key, stored []byte) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), stored...)
	s.mem.Put(k, append(v, 1)) // trailing live marker
	s.memBytes += int64(len(k) + len(v) + 1)
	s.invalidate(key)
	s.maybeFlush()
}

// Delete writes a tombstone for key.
func (s *Store) Delete(key []byte) {
	if s.wal == nil {
		s.applyDelete(key)
		return
	}
	if s.err != nil {
		return
	}
	if err := s.wal.BeginTx(); err != nil {
		s.err = err
		return
	}
	if err := s.wal.AppendDelete(key); err != nil {
		s.err = err
		return
	}
	s.applyDelete(key)
	if s.err != nil {
		return
	}
	if err := s.wal.EndTx(); err != nil {
		s.err = err
	}
}

func (s *Store) applyDelete(key []byte) {
	k := append([]byte(nil), key...)
	s.mem.Put(k, []byte{0}) // tombstone marker
	s.memBytes += int64(len(k) + 1)
	s.invalidate(key)
	s.maybeFlush()
}

// Tx groups the mutations issued by fn into one atomic WAL unit:
// recovery replays all of them or none. Engines use this to keep
// multi-record operations (an edge row plus its two adjacency
// columns) from being split by a crash. On a volatile store fn just
// runs; nesting is allowed and commits with the outermost Tx.
func (s *Store) Tx(fn func()) {
	if s.wal == nil {
		fn()
		return
	}
	if s.err != nil {
		return
	}
	if err := s.wal.BeginTx(); err != nil {
		s.err = err
		return
	}
	fn()
	if s.err != nil {
		return
	}
	if err := s.wal.EndTx(); err != nil {
		s.err = err
	}
}

func decodeMem(v []byte) (val []byte, tomb bool) {
	if len(v) == 0 || v[len(v)-1] == 0 {
		return nil, true
	}
	return v[:len(v)-1], false
}

// Get returns the newest value for key; ok is false if absent or
// tombstoned. The read path is memtable first, then runs newest→oldest.
func (s *Store) Get(key []byte) (value []byte, ok bool) {
	if v, found := s.mem.Get(key); found {
		val, tomb := decodeMem(v)
		if tomb {
			return nil, false
		}
		return s.resolve(val), true
	}
	for i := len(s.runs) - 1; i >= 0; i-- {
		if v, found := s.runs[i].get(key); found {
			if v == nil {
				return nil, false
			}
			return s.resolve(v), true
		}
	}
	return nil, false
}

func (s *Store) maybeFlush() {
	if s.replaying {
		// Replay reproduces flushes exactly at logged flush marks;
		// size-triggered flushing would depend on replay batch shape.
		return
	}
	if s.memBytes >= s.opts.FlushBytes {
		s.Flush()
	}
}

// Flush turns the memtable into a new immutable run. In durable mode
// the flush is logged as a mark so recovery rebuilds the same run
// structure.
func (s *Store) Flush() {
	if s.mem.Len() == 0 {
		return
	}
	if s.wal != nil {
		if s.err != nil {
			return
		}
		if err := s.wal.AppendFlushMark(); err != nil {
			s.err = err
			return
		}
	}
	s.flush()
}

// flush is the in-memory flush shared with WAL replay.
func (s *Store) flush() {
	if s.mem.Len() == 0 {
		return
	}
	t := &sstable{}
	c := s.mem.Scan()
	for {
		k, v, ok := c.Next()
		if !ok {
			break
		}
		val, tomb := decodeMem(v)
		t.keys = append(t.keys, k)
		if tomb {
			t.vals = append(t.vals, nil)
		} else {
			t.vals = append(t.vals, val)
		}
		t.bytes += int64(len(k)+len(val)) + 6
	}
	s.runs = append(s.runs, t)
	s.mem = btree.New()
	s.memBytes = 0
	s.flushes++
	if len(s.runs) >= s.opts.CompactAt {
		// Size-triggered: implied by the flush mark, not logged —
		// replaying the flush reproduces it.
		s.compact()
	}
}

// Compact merges all runs into one, dropping shadowed entries and — as
// this is a full merge — tombstones as well. An explicit compaction is
// logged in durable mode (flush-triggered ones are implied).
func (s *Store) Compact() {
	if len(s.runs) <= 1 {
		return
	}
	if s.wal != nil {
		if s.err != nil {
			return
		}
		if err := s.wal.AppendCompactMark(); err != nil {
			s.err = err
			return
		}
	}
	s.compact()
}

// compact is the in-memory merge shared with WAL replay.
func (s *Store) compact() {
	if len(s.runs) <= 1 {
		return
	}
	merged := &sstable{}
	type cursor struct {
		t *sstable
		i int
	}
	cs := make([]cursor, len(s.runs))
	for i, t := range s.runs {
		cs[i] = cursor{t, 0}
	}
	for {
		// Find the smallest current key; runs are ordered oldest→newest,
		// so on key ties the higher index (newer run) wins.
		best := -1
		for i := range cs {
			if cs[i].i >= len(cs[i].t.keys) {
				continue
			}
			if best < 0 || bytes.Compare(cs[i].t.keys[cs[i].i], cs[best].t.keys[cs[best].i]) <= 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		key := cs[best].t.keys[cs[best].i]
		val := cs[best].t.vals[cs[best].i]
		for i := range cs {
			for cs[i].i < len(cs[i].t.keys) && bytes.Equal(cs[i].t.keys[cs[i].i], key) {
				cs[i].i++
			}
		}
		if val == nil {
			continue // tombstone resolved by full compaction
		}
		merged.keys = append(merged.keys, key)
		merged.vals = append(merged.vals, val)
		merged.bytes += int64(len(key)+len(val)) + 6
	}
	s.runs = []*sstable{merged}
	s.compacts++
}

// ScanPrefix streams live key/value pairs whose key starts with prefix,
// in key order, with newest-wins/tombstone semantics across the memtable
// and all runs. If the row cache is enabled and the prefix length
// matches, results are served from and stored into the cache.
func (s *Store) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) {
	if s.cache != nil && len(prefix) == s.opts.CachePrefixLen {
		s.cacheMu.Lock()
		row, ok := s.cache[string(prefix)]
		if ok {
			s.hits++
		} else {
			s.miss++
		}
		s.cacheMu.Unlock()
		if !ok {
			// Concurrent misses on the same prefix scan redundantly and
			// store identical rows; rows are immutable once published.
			s.scanPrefixMerged(prefix, func(k, v []byte) bool {
				row = append(row, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
				return true
			})
			s.cacheMu.Lock()
			s.cache[string(prefix)] = row
			s.cacheMu.Unlock()
		}
		for _, p := range row {
			if !fn(p.k, p.v) {
				return
			}
		}
		return
	}
	s.scanPrefixMerged(prefix, fn)
}

func (s *Store) scanPrefixMerged(prefix []byte, fn func(key, value []byte) bool) {
	// Cursor over memtable + each run, merged newest-wins.
	type src struct {
		key, val []byte
		tomb     bool
		ok       bool
		advance  func() ([]byte, []byte, bool, bool)
	}
	var srcs []*src // index 0 = memtable (newest), then runs newest→oldest

	memCursor := s.mem.Seek(prefix)
	memAdv := func() ([]byte, []byte, bool, bool) {
		k, v, ok := memCursor.Next()
		if !ok || !bytes.HasPrefix(k, prefix) {
			return nil, nil, false, false
		}
		val, tomb := decodeMem(v)
		return k, val, tomb, true
	}
	srcs = append(srcs, &src{advance: memAdv})
	for i := len(s.runs) - 1; i >= 0; i-- {
		t := s.runs[i]
		pos := sort.Search(len(t.keys), func(j int) bool { return bytes.Compare(t.keys[j], prefix) >= 0 })
		tt := t
		p := pos
		adv := func() ([]byte, []byte, bool, bool) {
			if p >= len(tt.keys) || !bytes.HasPrefix(tt.keys[p], prefix) {
				return nil, nil, false, false
			}
			k, v := tt.keys[p], tt.vals[p]
			p++
			return k, v, v == nil, true
		}
		srcs = append(srcs, &src{advance: adv})
	}
	for _, c := range srcs {
		c.key, c.val, c.tomb, c.ok = c.advance()
	}
	for {
		best := -1
		for i, c := range srcs {
			if !c.ok {
				continue
			}
			if best < 0 || bytes.Compare(c.key, srcs[best].key) < 0 {
				best = i
			}
		}
		if best < 0 {
			return
		}
		key, val, tomb := srcs[best].key, srcs[best].val, srcs[best].tomb
		for _, c := range srcs {
			for c.ok && bytes.Equal(c.key, key) {
				c.key, c.val, c.tomb, c.ok = c.advance()
			}
		}
		if tomb {
			continue
		}
		if !fn(key, s.resolve(val)) {
			return
		}
	}
}

// Value boxing: durable stores prefix every stored value with a tag so
// a memtable/SSTable slot can hold either the value itself or a
// pointer into the value log. Volatile stores keep raw bytes.
const (
	valInline byte = 0
	valPtr    byte = 1
)

func boxValue(value []byte, ptr wal.Pointer, separated bool) []byte {
	if !separated {
		return append([]byte{valInline}, value...)
	}
	b := []byte{valPtr}
	b = enc.Uvarint(b, uint64(ptr.Off))
	return enc.Uvarint(b, uint64(ptr.Len))
}

// resolve unboxes a stored value, reading through to the value log for
// separated values. A value-log read error surfaces as an empty value:
// the read path has no error channel, and the fault-injection suite
// only reads from healthy filesystems.
func (s *Store) resolve(stored []byte) []byte {
	if !s.durable || len(stored) == 0 {
		return stored
	}
	if stored[0] == valInline {
		return stored[1:]
	}
	off, rest, ok := enc.TakeUvarint(stored[1:])
	if !ok {
		return []byte{}
	}
	n, _, ok := enc.TakeUvarint(rest)
	if !ok || s.wal == nil {
		return []byte{}
	}
	v, err := s.wal.ReadValue(wal.Pointer{Off: int64(off), Len: int64(n)})
	if err != nil {
		return []byte{}
	}
	return v
}

// BulkLoad replaces the store contents with the given pairs (sorted,
// unique keys) as a single run — the "disable consistency checks and
// write straight to the backend" load path. In durable mode the whole
// load is logged between bulk markers and committed with one fsync;
// recovery discards an unterminated load.
func (s *Store) BulkLoad(keys, vals [][]byte) error {
	if s.wal == nil {
		return s.installBulk(keys, vals)
	}
	if s.err != nil {
		return s.err
	}
	for i := range keys {
		if i > 0 && bytes.Compare(keys[i-1], keys[i]) >= 0 {
			return errNotSorted
		}
	}
	if err := s.wal.BeginBulk(); err != nil {
		s.err = err
		return err
	}
	stored := make([][]byte, len(vals))
	for i := range keys {
		v := vals[i]
		if v == nil {
			v = []byte{}
		}
		ptr, sep, err := s.wal.AppendPut(keys[i], v)
		if err != nil {
			s.err = err
			return err
		}
		stored[i] = boxValue(v, ptr, sep)
	}
	if err := s.wal.EndBulk(len(keys)); err != nil {
		s.err = err
		return err
	}
	return s.installBulk(keys, stored)
}

// installBulk swaps the store contents for a single pre-sorted run;
// shared by the volatile path (raw values), the durable path (boxed
// values) and WAL replay.
func (s *Store) installBulk(keys, vals [][]byte) error {
	t := &sstable{keys: keys, vals: vals}
	for i := range keys {
		if i > 0 && bytes.Compare(keys[i-1], keys[i]) >= 0 {
			return errNotSorted
		}
		t.bytes += int64(len(keys[i])+len(vals[i])) + 6
	}
	s.mem = btree.New()
	s.memBytes = 0
	s.runs = []*sstable{t}
	if s.cache != nil {
		s.cacheMu.Lock()
		s.cache = make(map[string][]kv)
		s.cacheMu.Unlock()
	}
	return nil
}

var errNotSorted = bulkErr("lsm: BulkLoad keys not strictly ascending")

type bulkErr string

func (e bulkErr) Error() string { return string(e) }

// Stats expose internals for tests and reports.
func (s *Store) Stats() (flushes, compacts, runs, cacheHits, cacheMisses int) {
	s.cacheMu.Lock()
	hits, miss := s.hits, s.miss
	s.cacheMu.Unlock()
	return s.flushes, s.compacts, len(s.runs), hits, miss
}

// Bytes returns the approximate footprint of memtable plus runs.
func (s *Store) Bytes() int64 {
	n := s.mem.Bytes()
	for _, t := range s.runs {
		n += t.bytes
	}
	return n
}

// Durable reports whether the store was opened with a WAL.
func (s *Store) Durable() bool { return s.durable }

// Err returns the sticky durability error: once a WAL append or fsync
// fails, the store stops acknowledging mutations and reports why here.
func (s *Store) Err() error { return s.err }

// WALStats exposes the log position: frames written, frames made
// durable by fsync, and group commits run. Zero on volatile stores.
func (s *Store) WALStats() (lsn, durableLSN, syncs int64) {
	if s.wal == nil {
		return 0, 0, 0
	}
	return s.wal.LSN(), s.wal.DurableLSN(), s.wal.Syncs()
}

// Close syncs outstanding WAL records and releases the log files.
// A volatile store's Close is a no-op.
func (s *Store) Close() error {
	if s.wal == nil {
		return s.err
	}
	cerr := s.wal.Close()
	if s.err != nil {
		return s.err
	}
	return cerr
}
