package lsm

import (
	"time"

	"repro/internal/lsm/fsim"
	"repro/internal/lsm/wal"
)

// OpenOptions configure a durable store.
type OpenOptions struct {
	// Store carries the in-memory knobs (flush threshold, compaction
	// trigger, row cache).
	Store Options
	// WAL carries the log knobs (segment size, group commit, value
	// separation threshold).
	WAL wal.Options
	// FS is the filesystem the log writes through; nil means the real
	// one (fsim.OS). Tests inject fsim.Mem to simulate crashes.
	FS fsim.FS
	// Now is the clock used for the recovery wall-time counter; nil
	// means time.Now. Injected so tests assert deterministic timings.
	Now func() time.Time
}

// RecoveryStats reports what Open replayed and repaired.
type RecoveryStats struct {
	wal.ReplayStats
	// WallNS is the recovery wall time measured with the injected
	// clock.
	WallNS int64
}

// Open returns a durable store rooted at dir, replaying any existing
// write-ahead log with newest-valid-prefix semantics: a torn tail
// (partial frame, bad CRC, unterminated transaction or bulk load) is
// truncated cleanly, never an error. Replay applies records through
// the same memtable paths as live writes and flushes/compacts exactly
// at the logged marks, so the recovered store is structurally
// identical — runs, counters, bytes — to the store that wrote the
// acknowledged prefix. Reopening an already-recovered directory is
// idempotent.
func Open(dir string, o OpenOptions) (*Store, *RecoveryStats, error) {
	if o.FS == nil {
		o.FS = fsim.OS{}
	}
	now := o.Now
	if now == nil {
		now = time.Now
	}
	start := now()

	s := New(o.Store)
	s.durable = true
	s.replaying = true
	var bulkKeys, bulkVals [][]byte
	inBulk := false
	w, rst, err := wal.Replay(o.FS, dir, o.WAL, func(op wal.Op) error {
		switch op.Kind {
		case wal.OpBulkBegin:
			inBulk = true
			bulkKeys, bulkVals = nil, nil
		case wal.OpBulkEnd:
			inBulk = false
			if err := s.installBulk(bulkKeys, bulkVals); err != nil {
				return err
			}
			bulkKeys, bulkVals = nil, nil
		case wal.OpPut:
			stored := boxValue(op.Val, op.Ptr, op.Separated)
			if inBulk {
				bulkKeys = append(bulkKeys, op.Key)
				bulkVals = append(bulkVals, stored)
			} else {
				s.applyPut(op.Key, stored)
			}
		case wal.OpDelete:
			s.applyDelete(op.Key)
		case wal.OpFlushMark:
			s.flush()
		case wal.OpCompactMark:
			s.compact()
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	s.replaying = false
	s.wal = w
	return s, &RecoveryStats{ReplayStats: *rst, WallNS: now().Sub(start).Nanoseconds()}, nil
}
