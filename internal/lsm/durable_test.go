package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/lsm/fsim"
	"repro/internal/lsm/wal"
)

// fixedNow freezes the WAL group-commit window and the recovery clock
// so the crash matrix's filesystem op counts are deterministic.
func fixedNow() time.Time { return time.Unix(1000, 0) }

func matrixWALOpts() wal.Options {
	return wal.Options{
		SegmentBytes:      2048,
		ValueThreshold:    48,
		GroupCommitOps:    4,
		GroupCommitWindow: time.Hour,
		Now:               fixedNow,
	}
}

func matrixStoreOpts() Options {
	return Options{FlushBytes: 400, CompactAt: 3, CachePrefixLen: 2}
}

func matrixOpen(fs fsim.FS) (*Store, *RecoveryStats, error) {
	return Open("w", OpenOptions{
		Store: matrixStoreOpts(),
		WAL:   matrixWALOpts(),
		FS:    fs,
		Now:   fixedNow,
	})
}

// mop is one store-level operation of the seeded sequence.
type mop struct {
	kind           byte // 'B' bulk, 'p' put, 'd' delete, 'f' flush, 'c' compact, 't' tx batch
	key, val       []byte
	pairsK, pairsV [][]byte
	batch          []mop
}

func genValue(rng *rand.Rand) []byte {
	n := 5 + rng.Intn(16)
	if rng.Intn(10) < 3 {
		n = 60 + rng.Intn(21) // above the separation threshold
	}
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('A' + rng.Intn(26))
	}
	return v
}

func genKey(rng *rand.Rand) []byte {
	return []byte(fmt.Sprintf("k%02d", rng.Intn(28)))
}

// genMatrixOps builds a seeded sequence: a bulk load, then a mix of
// puts (some value-log separated), deletes, explicit flushes and
// compactions, and multi-record transactions.
func genMatrixOps(seed int64, n int) []mop {
	rng := rand.New(rand.NewSource(seed))
	bulk := func() mop {
		var ks, vs [][]byte
		for i := 0; i < 12; i++ {
			ks = append(ks, []byte(fmt.Sprintf("b%02d", i)))
			vs = append(vs, genValue(rng))
		}
		return mop{kind: 'B', pairsK: ks, pairsV: vs}
	}
	ops := []mop{bulk()}
	for len(ops) < n {
		switch r := rng.Intn(100); {
		case r < 50:
			ops = append(ops, mop{kind: 'p', key: genKey(rng), val: genValue(rng)})
		case r < 70:
			ops = append(ops, mop{kind: 'd', key: genKey(rng)})
		case r < 80:
			ops = append(ops, mop{kind: 'f'})
		case r < 85:
			ops = append(ops, mop{kind: 'c'})
		case r < 88:
			ops = append(ops, bulk())
		default:
			var batch []mop
			for i := 0; i < 2+rng.Intn(3); i++ {
				if rng.Intn(4) == 0 {
					batch = append(batch, mop{kind: 'd', key: genKey(rng)})
				} else {
					batch = append(batch, mop{kind: 'p', key: genKey(rng), val: genValue(rng)})
				}
			}
			ops = append(ops, mop{kind: 't', batch: batch})
		}
	}
	return ops
}

func applyMop(s *Store, op mop) {
	switch op.kind {
	case 'B':
		_ = s.BulkLoad(op.pairsK, op.pairsV)
	case 'p':
		s.Put(op.key, op.val)
	case 'd':
		s.Delete(op.key)
	case 'f':
		s.Flush()
	case 'c':
		s.Compact()
	case 't':
		s.Tx(func() {
			for _, sub := range op.batch {
				applyMop(s, sub)
			}
		})
	}
}

// runOps applies ops until the store poisons itself (crash), returning
// the WAL frame count after each completed op — the unit boundaries
// recovery may legally stop at.
func runOps(s *Store, ops []mop) []int64 {
	var ends []int64
	for _, op := range ops {
		applyMop(s, op)
		if s.Err() != nil {
			break
		}
		lsn, _, _ := s.WALStats()
		ends = append(ends, lsn)
	}
	return ends
}

// opBoundary returns the largest op count whose cumulative frame count
// equals records, or -1 if records is not a unit boundary.
func opBoundary(ends []int64, records int64) int {
	best := -1
	if records == 0 {
		best = 0
	}
	for i, e := range ends {
		if e == records {
			best = i + 1
		}
	}
	return best
}

type pair struct{ k, v []byte }

func dumpStore(s *Store) []pair {
	var out []pair
	s.ScanPrefix(nil, func(k, v []byte) bool {
		out = append(out, pair{append([]byte(nil), k...), append([]byte(nil), v...)})
		return true
	})
	return out
}

// diffStores compares logical contents and run structure; empty means
// equivalent.
func diffStores(got, want *Store) string {
	gf, gc, gr, _, _ := got.Stats()
	wf, wc, wr, _, _ := want.Stats()
	if gf != wf || gc != wc || gr != wr {
		return fmt.Sprintf("structure: flushes/compacts/runs = %d/%d/%d, want %d/%d/%d", gf, gc, gr, wf, wc, wr)
	}
	if got.Bytes() != want.Bytes() {
		return fmt.Sprintf("Bytes() = %d, want %d", got.Bytes(), want.Bytes())
	}
	gd, wd := dumpStore(got), dumpStore(want)
	if len(gd) != len(wd) {
		return fmt.Sprintf("%d live keys, want %d", len(gd), len(wd))
	}
	for i := range gd {
		if !bytes.Equal(gd[i].k, wd[i].k) || !bytes.Equal(gd[i].v, wd[i].v) {
			return fmt.Sprintf("pair %d: %q=%q, want %q=%q", i, gd[i].k, gd[i].v, wd[i].k, wd[i].v)
		}
	}
	return ""
}

// TestCrashMatrix is the durability acceptance test: a seeded op
// sequence runs against a fault-injected filesystem that crashes at
// every mutating-op boundary (with and without torn writes; renames
// not yet fsynced are always dropped); after each crash the store is
// reopened and must be equivalent to a reference store that applied
// exactly some acknowledged prefix of the sequence — never losing a
// durably-acknowledged write, never resurrecting a delete, never
// failing on a torn tail.
func TestCrashMatrix(t *testing.T) {
	ops := genMatrixOps(7, 60)

	// Dry run bounds the matrix.
	dry := fsim.NewMem(fsim.Faults{})
	s, _, err := matrixOpen(dry)
	if err != nil {
		t.Fatal(err)
	}
	runOps(s, ops)
	if s.Err() != nil {
		t.Fatalf("dry run errored: %v", s.Err())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	total := dry.Ops()
	if total < 100 {
		t.Fatalf("dry run produced only %d fs ops; sequence too small to be interesting", total)
	}

	// Reference stores per prefix length are rebuilt on demand.
	refs := make(map[int]*Store)
	reference := func(t *testing.T, j int) *Store {
		if ref, ok := refs[j]; ok {
			return ref
		}
		ref, _, err := matrixOpen(fsim.NewMem(fsim.Faults{}))
		if err != nil {
			t.Fatalf("reference open: %v", err)
		}
		runOps(ref, ops[:j])
		if ref.Err() != nil {
			t.Fatalf("reference run: %v", ref.Err())
		}
		refs[j] = ref
		return ref
	}

	for _, tearWrites := range []bool{false, true} {
		for n := 1; n <= total; n++ {
			m := fsim.NewMem(fsim.Faults{
				CrashAtOp:   n,
				TearWrites:  tearWrites,
				DropRenames: true,
				Seed:        int64(n),
			})
			var ends []int64
			var durableAt, lsnAtCrash int64
			s, _, err := matrixOpen(m)
			if err == nil {
				ends = runOps(s, ops)
				lsnAtCrash, durableAt, _ = s.WALStats()
			}
			if !m.Crashed() {
				t.Fatalf("tear=%v n=%d: failpoint never hit", tearWrites, n)
			}

			rec, rst, err := matrixOpen(m.Image())
			if err != nil {
				t.Fatalf("tear=%v n=%d: recovery must not fail: %v", tearWrites, n, err)
			}
			if rst.Records < durableAt {
				t.Fatalf("tear=%v n=%d: lost acknowledged-durable records: recovered %d < durable %d",
					tearWrites, n, rst.Records, durableAt)
			}
			j := opBoundary(ends, rst.Records)
			if j < 0 && rst.Records == lsnAtCrash && len(ends) < len(ops) {
				// The crashed op's WAL unit committed and synced before
				// the crash landed (e.g. on the segment rotation right
				// after it); the store never acknowledged the op, but an
				// un-acked durable write may legally replay.
				j = len(ends) + 1
			}
			if j < 0 {
				t.Fatalf("tear=%v n=%d: recovered LSN %d is not an op boundary (ends %v)",
					tearWrites, n, rst.Records, ends)
			}
			if diff := diffStores(rec, reference(t, j)); diff != "" {
				t.Fatalf("tear=%v n=%d: recovered store != reference at %d ops: %s",
					tearWrites, n, j, diff)
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("tear=%v n=%d: close recovered: %v", tearWrites, n, err)
			}
		}
	}
}

// TestReopenIdempotent recovers the same crash image twice: the second
// open must replay identical state and repair nothing further.
func TestReopenIdempotent(t *testing.T) {
	ops := genMatrixOps(11, 40)
	m := fsim.NewMem(fsim.Faults{CrashAtOp: 70, TearWrites: true, DropRenames: true, Seed: 3})
	if s, _, err := matrixOpen(m); err == nil {
		runOps(s, ops)
	}
	img := m.Image()

	rec1, rst1, err := matrixOpen(img)
	if err != nil {
		t.Fatal(err)
	}
	dump1 := dumpStore(rec1)
	if err := rec1.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, rst2, err := matrixOpen(img)
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if rst2.Records != rst1.Records {
		t.Fatalf("second replay: %d records, first %d", rst2.Records, rst1.Records)
	}
	if rst2.BytesTruncated != 0 || rst2.VlogBytesTruncated != 0 {
		t.Fatalf("second replay repaired again: %+v", rst2.ReplayStats)
	}
	dump2 := dumpStore(rec2)
	if len(dump1) != len(dump2) {
		t.Fatalf("dumps differ: %d vs %d keys", len(dump1), len(dump2))
	}
	for i := range dump1 {
		if !bytes.Equal(dump1[i].k, dump2[i].k) || !bytes.Equal(dump1[i].v, dump2[i].v) {
			t.Fatalf("dump mismatch at %d", i)
		}
	}
}

// TestRecoveryCounters checks the counters the ISSUE names: records
// replayed, bytes truncated, and wall time from the injected clock.
func TestRecoveryCounters(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{})
	s, _, err := Open("w", OpenOptions{WAL: matrixWALOpts(), FS: m, Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("a"), bytes.Repeat([]byte("A"), 64)) // separated
	s.Put([]byte("b"), []byte("small"))
	s.Delete([]byte("a"))
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append garbage to the newest segment.
	f, err := m.Append("w/wal-000001.seg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	var tick int64
	clock := func() time.Time {
		tick++
		return time.Unix(0, tick*int64(time.Millisecond))
	}
	rec, rst, err := Open("w", OpenOptions{WAL: matrixWALOpts(), FS: m, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rst.Records != 4 || rst.Puts != 2 || rst.Deletes != 1 || rst.FlushMarks != 1 {
		t.Fatalf("replay counters = %+v", rst.ReplayStats)
	}
	if rst.BytesTruncated != 5 {
		t.Fatalf("BytesTruncated = %d, want 5", rst.BytesTruncated)
	}
	if rst.WallNS != int64(time.Millisecond) {
		t.Fatalf("WallNS = %d, want %d (injected clock)", rst.WallNS, int64(time.Millisecond))
	}
	if v, ok := rec.Get([]byte("b")); !ok || string(v) != "small" {
		t.Fatalf("recovered b = %q, %v", v, ok)
	}
	if _, ok := rec.Get([]byte("a")); ok {
		t.Fatal("delete of a was resurrected")
	}
}

// TestFailedFsyncPoisonsStore: the Nth-fsync failpoint must stop the
// store from acknowledging writes, and recovery must surface only the
// durable prefix.
func TestFailedFsyncPoisonsStore(t *testing.T) {
	m := fsim.NewMem(fsim.Faults{FailSyncN: 1})
	o := matrixWALOpts()
	o.GroupCommitOps = 2
	s, _, err := Open("w", OpenOptions{WAL: o, FS: m, Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("a"), []byte("1"))
	if s.Err() != nil {
		t.Fatalf("first put errored early: %v", s.Err())
	}
	s.Put([]byte("b"), []byte("2")) // triggers the failing group commit
	if s.Err() == nil {
		t.Fatal("failed fsync did not poison the store")
	}
	s.Put([]byte("c"), []byte("3")) // must be refused
	if _, ok := s.Get([]byte("c")); ok {
		t.Fatal("write accepted after poisoning")
	}
	if _, durable, _ := s.WALStats(); durable != 0 {
		t.Fatalf("durable = %d after failed fsync, want 0", durable)
	}

	rec, rst, err := Open("w", OpenOptions{WAL: o, FS: m.Image(), Now: fixedNow})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rst.Records != 0 {
		t.Fatalf("recovered %d records, want 0 (nothing was durable)", rst.Records)
	}
}

// TestDurableBasicsOnRealFS exercises the OS filesystem end to end:
// write, close, reopen, verify — including a separated value.
func TestDurableBasicsOnRealFS(t *testing.T) {
	dir := t.TempDir()
	o := OpenOptions{WAL: wal.Options{ValueThreshold: 32}}
	s, rst, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Records != 0 {
		t.Fatalf("fresh dir replayed %d records", rst.Records)
	}
	big := bytes.Repeat([]byte("z"), 100)
	s.Put([]byte("big"), big)
	s.Put([]byte("small"), []byte("v"))
	s.Delete([]byte("small"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rec, rst, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rst.Records != 3 {
		t.Fatalf("replayed %d records, want 3", rst.Records)
	}
	if v, ok := rec.Get([]byte("big")); !ok || !bytes.Equal(v, big) {
		t.Fatalf("big value lost: %d bytes, ok=%v", len(v), ok)
	}
	if _, ok := rec.Get([]byte("small")); ok {
		t.Fatal("deleted key resurrected")
	}
}
