package rel

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func benchTable(b *testing.B, n int, indexed bool) *Table {
	b.Helper()
	db := NewDB()
	t, err := db.CreateTable("t", "id", "src", "grp")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		t.Insert(Row{core.I(int64(i)), core.I(int64(i % 1000)), core.I(int64(i % 50))})
	}
	if indexed {
		t.CreateIndex("src")
	}
	return t
}

// BenchmarkSelectEq contrasts the planner's scan vs index-seek choice —
// the mechanism behind Figure 4(c)'s up-to-600× Sqlg speed-up.
func BenchmarkSelectEq(b *testing.B) {
	for _, indexed := range []bool{false, true} {
		b.Run(fmt.Sprintf("indexed=%v", indexed), func(b *testing.B) {
			t := benchTable(b, 100_000, indexed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				t.SelectEq("src", core.I(int64(i%1000)), func(Row) bool { n++; return true })
			}
		})
	}
}

// BenchmarkHashJoinVsIndexedJoin contrasts the two join strategies the
// Sqlg engine alternates between: full-scan hash join (large frontiers)
// vs per-key index lookups (small frontiers).
func BenchmarkHashJoinVsIndexedJoin(b *testing.B) {
	t := benchTable(b, 100_000, true)
	keys := map[int64]struct{}{}
	var keyList []int64
	for i := int64(0); i < 10; i++ {
		keys[i] = struct{}{}
		keyList = append(keyList, i)
	}
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.HashJoin("src", keys, func(Row) bool { return true })
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t.IndexedJoin("src", keyList, func(Row) bool { return true })
		}
	})
}

// BenchmarkInsert measures the tuple-insert path (Sqlg's fast Q2).
func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	t, _ := db.CreateTable("t", "id", "v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(Row{core.I(int64(i)), core.S("x")})
	}
}

// BenchmarkAlterAddColumn measures the table rewrite behind Sqlg's slow
// "new property name" CUD path.
func BenchmarkAlterAddColumn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := benchTable(b, 10_000, false)
		b.StartTimer()
		if err := t.AlterAddColumn(fmt.Sprintf("c%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}
