// Package rel implements a miniature relational engine: tables of typed
// rows with an int64 primary key, secondary B+Tree indexes, equality
// selection with a scan-vs-index planner, hash joins, and ALTER TABLE.
//
// It is the "Postgres" under the Sqlg-style engine. The paper's Sqlg
// findings are architectural consequences reproduced here: per-label
// vertex/edge tables make single-label hops an indexed join (fast), but
// unfiltered traversals must union joins over *every* edge table and
// build large intermediates (slow); adding a property that has no column
// yet is a table rewrite (slow CUD on fresh property names).
package rel

import (
	"fmt"
	"slices"
	"sort"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/enc"
)

// Row is one tuple. Column 0 is always the int64 primary key "id".
type Row []core.Value

// Table is a heap of rows plus indexes.
type Table struct {
	name    string
	cols    []string
	colIdx  map[string]int
	rows    []Row         // position-addressed; nil = deleted
	pk      map[int64]int // id -> position
	indexes map[string]*btree.Tree
	// scans and seeks are atomic: they are incremented on read paths,
	// which may run concurrently (see core.Engine's concurrent-read
	// contract).
	scans atomic.Int64 // planner statistics: full scans performed
	seeks atomic.Int64 // planner statistics: index lookups performed
}

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
	order  []string
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// CreateTable creates a table. The column list must start with "id".
func (db *DB) CreateTable(name string, cols ...string) (*Table, error) {
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("rel: table %q already exists", name)
	}
	if len(cols) == 0 || cols[0] != "id" {
		return nil, fmt.Errorf("rel: table %q: first column must be \"id\"", name)
	}
	t := &Table{
		name:    name,
		cols:    append([]string(nil), cols...),
		colIdx:  make(map[string]int, len(cols)),
		pk:      make(map[int64]int),
		indexes: make(map[string]*btree.Tree),
	}
	for i, c := range cols {
		if _, dup := t.colIdx[c]; dup {
			return nil, fmt.Errorf("rel: table %q: duplicate column %q", name, c)
		}
		t.colIdx[c] = i
	}
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Tables returns table names in creation order.
func (db *DB) Tables() []string { return append([]string(nil), db.order...) }

// Bytes returns the approximate footprint of all tables and indexes.
func (db *DB) Bytes() int64 {
	var n int64
	for _, t := range db.tables {
		n += t.Bytes()
	}
	return n
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names.
func (t *Table) Columns() []string { return append([]string(nil), t.cols...) }

// HasColumn reports whether the column exists.
func (t *Table) HasColumn(col string) bool { _, ok := t.colIdx[col]; return ok }

// Len returns the live row count.
func (t *Table) Len() int { return len(t.pk) }

// Stats returns planner counters (full scans, index seeks) for tests and
// the harness's explain output.
func (t *Table) Stats() (scans, seeks int) { return int(t.scans.Load()), int(t.seeks.Load()) }

// Reserve grows the table's row storage for n additional rows without
// reallocation, and pre-sizes the primary-key map when the table is
// still empty — the bulk-load pre-sizing hook. Contents are unchanged.
func (t *Table) Reserve(n int) {
	if n <= 0 {
		return
	}
	t.rows = slices.Grow(t.rows, n)
	if len(t.pk) == 0 {
		t.pk = make(map[int64]int, n)
	}
}

// Insert adds a row; the row's arity must match the schema and its id
// must be fresh.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.cols) {
		return fmt.Errorf("rel: %s: row arity %d != %d", t.name, len(r), len(t.cols))
	}
	id := r[0].Int()
	if r[0].Kind() != core.KindInt {
		return fmt.Errorf("rel: %s: id must be int, got %v", t.name, r[0].Kind())
	}
	if _, dup := t.pk[id]; dup {
		return fmt.Errorf("rel: %s: duplicate key %d", t.name, id)
	}
	pos := len(t.rows)
	t.rows = append(t.rows, append(Row(nil), r...))
	t.pk[id] = pos
	for col, idx := range t.indexes {
		ci := t.colIdx[col]
		idx.Put(indexKey(r[ci], pos), nil)
	}
	return nil
}

// Get returns the row with the given id (as a copy).
func (t *Table) Get(id int64) (Row, bool) {
	pos, ok := t.pk[id]
	if !ok {
		return nil, false
	}
	return append(Row(nil), t.rows[pos]...), true
}

// Value returns one cell of the row with the given id.
func (t *Table) Value(id int64, col string) (core.Value, bool) {
	pos, ok := t.pk[id]
	if !ok {
		return core.Nil, false
	}
	ci, ok := t.colIdx[col]
	if !ok {
		return core.Nil, false
	}
	return t.rows[pos][ci], true
}

// Update sets one cell, maintaining indexes.
func (t *Table) Update(id int64, col string, v core.Value) error {
	pos, ok := t.pk[id]
	if !ok {
		return fmt.Errorf("rel: %s: no row %d", t.name, id)
	}
	ci, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("rel: %s: no column %q", t.name, col)
	}
	if ci == 0 {
		return fmt.Errorf("rel: %s: cannot update primary key", t.name)
	}
	if idx := t.indexes[col]; idx != nil {
		idx.Delete(indexKey(t.rows[pos][ci], pos))
		idx.Put(indexKey(v, pos), nil)
	}
	t.rows[pos][ci] = v
	return nil
}

// Delete removes the row with the given id.
func (t *Table) Delete(id int64) error {
	pos, ok := t.pk[id]
	if !ok {
		return fmt.Errorf("rel: %s: no row %d", t.name, id)
	}
	for col, idx := range t.indexes {
		ci := t.colIdx[col]
		idx.Delete(indexKey(t.rows[pos][ci], pos))
	}
	t.rows[pos] = nil
	delete(t.pk, id)
	return nil
}

// AlterAddColumn adds a column initialized to Nil. As in a row store,
// every live row is rewritten — the cost the Sqlg engine pays the first
// time a new property name is set on a label.
func (t *Table) AlterAddColumn(col string) error {
	if t.HasColumn(col) {
		return fmt.Errorf("rel: %s: column %q exists", t.name, col)
	}
	t.colIdx[col] = len(t.cols)
	t.cols = append(t.cols, col)
	for pos, r := range t.rows {
		if r == nil {
			continue
		}
		nr := make(Row, len(t.cols))
		copy(nr, r)
		t.rows[pos] = nr
	}
	return nil
}

// CreateIndex builds a secondary B+Tree index on col.
func (t *Table) CreateIndex(col string) error {
	ci, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("rel: %s: no column %q", t.name, col)
	}
	if _, dup := t.indexes[col]; dup {
		return nil
	}
	idx := btree.New()
	for pos, r := range t.rows {
		if r == nil {
			continue
		}
		idx.Put(indexKey(r[ci], pos), nil)
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether an index on col exists.
func (t *Table) HasIndex(col string) bool { _, ok := t.indexes[col]; return ok }

func indexKey(v core.Value, pos int) []byte {
	return enc.Uint64(enc.Value(nil, v), uint64(pos))
}

// Scan calls fn for every live row (as a direct view; do not mutate)
// until fn returns false.
func (t *Table) Scan(fn func(Row) bool) {
	t.scans.Add(1)
	for _, r := range t.rows {
		if r != nil && !fn(r) {
			return
		}
	}
}

// SelectEq streams rows whose col equals v, using the index when one
// exists (index seek) and a full scan otherwise — the planner choice
// whose effect Figure 4(c) measures.
func (t *Table) SelectEq(col string, v core.Value, fn func(Row) bool) error {
	ci, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("rel: %s: no column %q", t.name, col)
	}
	if idx := t.indexes[col]; idx != nil {
		t.seeks.Add(1)
		prefix := enc.Value(nil, v)
		idx.AscendPrefix(prefix, func(k, _ []byte) bool {
			posBytes := k[len(prefix):]
			pos, _ := enc.TakeUint64(posBytes)
			r := t.rows[pos]
			return r == nil || fn(r)
		})
		return nil
	}
	t.scans.Add(1)
	for _, r := range t.rows {
		if r == nil {
			continue
		}
		if r[ci].Compare(v) == 0 && !fn(r) {
			return nil
		}
	}
	return nil
}

// CountEq counts rows whose col equals v.
func (t *Table) CountEq(col string, v core.Value) (int, error) {
	n := 0
	err := t.SelectEq(col, v, func(Row) bool { n++; return true })
	return n, err
}

// Bytes returns the table's approximate footprint including indexes.
func (t *Table) Bytes() int64 {
	var n int64 = 64
	for _, c := range t.cols {
		n += int64(len(c)) + 16
	}
	for _, r := range t.rows {
		n += 8 // row slot
		for _, v := range r {
			n += v.Bytes()
		}
	}
	n += int64(len(t.pk)) * 24
	for _, idx := range t.indexes {
		n += idx.Bytes()
	}
	return n
}

// HashJoin scans t once, probing keys (values of col) and calling fn for
// every matching row. It is the build-side-in-memory join the Sqlg
// engine falls back to when a traversal frontier is large: cost is a
// full scan of the table regardless of how many keys match, which is
// exactly the "very large joins" behaviour the paper observes on BFS.
func (t *Table) HashJoin(col string, keys map[int64]struct{}, fn func(Row) bool) error {
	ci, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("rel: %s: no column %q", t.name, col)
	}
	t.scans.Add(1)
	for _, r := range t.rows {
		if r == nil {
			continue
		}
		if _, hit := keys[r[ci].Int()]; hit && !fn(r) {
			return nil
		}
	}
	return nil
}

// IndexedJoin looks each key up through the index on col (creating no
// index implicitly; returns an error if absent) — the fast path Sqlg
// uses for single-label hops with small frontiers.
func (t *Table) IndexedJoin(col string, keys []int64, fn func(Row) bool) error {
	if !t.HasIndex(col) {
		return fmt.Errorf("rel: %s: IndexedJoin requires index on %q", t.name, col)
	}
	for _, k := range keys {
		stop := false
		if err := t.SelectEq(col, core.I(k), func(r Row) bool {
			if !fn(r) {
				stop = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// SortedIDs returns all live primary keys in ascending order (used by
// deterministic scans in the engine layer).
func (t *Table) SortedIDs() []int64 {
	ids := make([]int64, 0, len(t.pk))
	for id := range t.pk {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
