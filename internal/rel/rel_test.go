package rel

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func personTable(t *testing.T) *Table {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable("person", "id", "name", "age")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("t", "name"); err == nil {
		t.Fatal("table without id column accepted")
	}
	if _, err := db.CreateTable("t", "id", "a", "a"); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := db.CreateTable("t", "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", "id"); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if db.Table("t") == nil || db.Table("nope") != nil {
		t.Fatal("Table lookup wrong")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Tables() = %v", got)
	}
}

func TestInsertGetDelete(t *testing.T) {
	tbl := personTable(t)
	if err := tbl.Insert(Row{core.I(1), core.S("ann"), core.I(30)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{core.I(1), core.S("dup"), core.I(0)}); err == nil {
		t.Fatal("duplicate pk accepted")
	}
	if err := tbl.Insert(Row{core.I(2), core.S("short")}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := tbl.Insert(Row{core.S("x"), core.S("bad"), core.I(0)}); err == nil {
		t.Fatal("non-int pk accepted")
	}
	r, ok := tbl.Get(1)
	if !ok || r[1].Str() != "ann" {
		t.Fatalf("Get = %v %v", r, ok)
	}
	r[1] = core.S("mutated")
	if r2, _ := tbl.Get(1); r2[1].Str() != "ann" {
		t.Fatal("Get returned a shared row")
	}
	if err := tbl.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(1); ok {
		t.Fatal("deleted row visible")
	}
	if err := tbl.Delete(1); err == nil {
		t.Fatal("double delete accepted")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestUpdateMaintainsIndex(t *testing.T) {
	tbl := personTable(t)
	for i := int64(0); i < 10; i++ {
		tbl.Insert(Row{core.I(i), core.S(fmt.Sprint("p", i%3)), core.I(20 + i)})
	}
	if err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(4, "name", core.S("renamed")); err != nil {
		t.Fatal(err)
	}
	n, _ := tbl.CountEq("name", core.S("renamed"))
	if n != 1 {
		t.Fatalf("indexed count after update = %d", n)
	}
	n, _ = tbl.CountEq("name", core.S("p1"))
	if n != 2 { // ids 1,7 (4 was renamed)
		t.Fatalf("count p1 = %d", n)
	}
	if err := tbl.Update(4, "id", core.I(99)); err == nil {
		t.Fatal("pk update accepted")
	}
	if err := tbl.Update(99, "name", core.S("x")); err == nil {
		t.Fatal("update of missing row accepted")
	}
}

func TestSelectEqPlannerIndexVsScan(t *testing.T) {
	tbl := personTable(t)
	for i := int64(0); i < 100; i++ {
		tbl.Insert(Row{core.I(i), core.S(fmt.Sprint("name", i)), core.I(i % 5)})
	}
	tbl.SelectEq("age", core.I(3), func(Row) bool { return true })
	scans, seeks := tbl.Stats()
	if scans == 0 || seeks != 0 {
		t.Fatalf("expected scan without index: scans=%d seeks=%d", scans, seeks)
	}
	tbl.CreateIndex("age")
	n := 0
	tbl.SelectEq("age", core.I(3), func(Row) bool { n++; return true })
	_, seeks = tbl.Stats()
	if seeks != 1 {
		t.Fatalf("expected index seek: seeks=%d", seeks)
	}
	if n != 20 {
		t.Fatalf("indexed select found %d rows", n)
	}
}

func TestCreateIndexOnExistingData(t *testing.T) {
	tbl := personTable(t)
	for i := int64(0); i < 50; i++ {
		tbl.Insert(Row{core.I(i), core.S("same"), core.I(i)})
	}
	tbl.CreateIndex("name")
	n, _ := tbl.CountEq("name", core.S("same"))
	if n != 50 {
		t.Fatalf("backfilled index count = %d", n)
	}
	if !tbl.HasIndex("name") || tbl.HasIndex("age") {
		t.Fatal("HasIndex wrong")
	}
	if err := tbl.CreateIndex("none"); err == nil {
		t.Fatal("index on missing column accepted")
	}
	if err := tbl.CreateIndex("name"); err != nil {
		t.Fatal("re-creating index should be a no-op")
	}
}

func TestIndexSkipsDeletedRows(t *testing.T) {
	tbl := personTable(t)
	tbl.CreateIndex("name")
	tbl.Insert(Row{core.I(1), core.S("x"), core.I(1)})
	tbl.Insert(Row{core.I(2), core.S("x"), core.I(2)})
	tbl.Delete(1)
	n, _ := tbl.CountEq("name", core.S("x"))
	if n != 1 {
		t.Fatalf("count after delete = %d", n)
	}
}

func TestAlterAddColumn(t *testing.T) {
	tbl := personTable(t)
	tbl.Insert(Row{core.I(1), core.S("a"), core.I(10)})
	if err := tbl.AlterAddColumn("city"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AlterAddColumn("city"); err == nil {
		t.Fatal("duplicate alter accepted")
	}
	r, _ := tbl.Get(1)
	if len(r) != 4 || !r[3].IsNil() {
		t.Fatalf("row after alter = %v", r)
	}
	if err := tbl.Update(1, "city", core.S("rome")); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Value(1, "city"); v.Str() != "rome" {
		t.Fatalf("city = %v", v)
	}
	// New inserts must carry the new arity.
	if err := tbl.Insert(Row{core.I(2), core.S("b"), core.I(20), core.S("milan")}); err != nil {
		t.Fatal(err)
	}
}

func TestHashJoinAndIndexedJoin(t *testing.T) {
	db := NewDB()
	edges, _ := db.CreateTable("knows", "id", "src", "dst")
	for i := int64(0); i < 100; i++ {
		edges.Insert(Row{core.I(i), core.I(i % 10), core.I((i + 1) % 10)})
	}
	keys := map[int64]struct{}{3: {}, 7: {}}
	var hits int
	if err := edges.HashJoin("src", keys, func(Row) bool { hits++; return true }); err != nil {
		t.Fatal(err)
	}
	if hits != 20 {
		t.Fatalf("hash join matched %d", hits)
	}
	if err := edges.IndexedJoin("src", []int64{3, 7}, func(Row) bool { return true }); err == nil {
		t.Fatal("IndexedJoin without index accepted")
	}
	edges.CreateIndex("src")
	hits = 0
	if err := edges.IndexedJoin("src", []int64{3, 7}, func(Row) bool { hits++; return true }); err != nil {
		t.Fatal(err)
	}
	if hits != 20 {
		t.Fatalf("indexed join matched %d", hits)
	}
}

func TestSortedIDs(t *testing.T) {
	tbl := personTable(t)
	for _, id := range []int64{5, 1, 9, 3} {
		tbl.Insert(Row{core.I(id), core.S("x"), core.I(0)})
	}
	tbl.Delete(9)
	got := tbl.SortedIDs()
	if fmt.Sprint(got) != "[1 3 5]" {
		t.Fatalf("SortedIDs = %v", got)
	}
}

func TestBytesGrowsWithRowsAndIndexes(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", "id", "v")
	empty := db.Bytes()
	for i := int64(0); i < 100; i++ {
		tbl.Insert(Row{core.I(i), core.S("some value here")})
	}
	withRows := db.Bytes()
	tbl.CreateIndex("v")
	withIndex := db.Bytes()
	if !(empty < withRows && withRows < withIndex) {
		t.Fatalf("bytes not monotone: %d %d %d", empty, withRows, withIndex)
	}
}

// TestQuickSelectEqMatchesScan: with or without an index, SelectEq
// returns exactly the rows a predicate scan returns.
func TestQuickSelectEqMatchesScan(t *testing.T) {
	f := func(seed int64, useIndex bool) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		tbl, _ := db.CreateTable("t", "id", "grp")
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			tbl.Insert(Row{core.I(int64(i)), core.I(int64(rng.Intn(7)))})
		}
		// Random deletes.
		for i := 0; i < n/4; i++ {
			tbl.Delete(int64(rng.Intn(n)))
		}
		if useIndex {
			tbl.CreateIndex("grp")
		}
		for g := int64(0); g < 7; g++ {
			want := 0
			tbl.Scan(func(r Row) bool {
				if r[1].Int() == g {
					want++
				}
				return true
			})
			got, err := tbl.CountEq("grp", core.I(g))
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTableReserve(t *testing.T) {
	db := NewDB()
	tb, err := db.CreateTable("t", "id", "x")
	if err != nil {
		t.Fatal(err)
	}
	tb.Reserve(64)
	for i := 0; i < 64; i++ {
		if err := tb.Insert(Row{core.I(int64(i)), core.S("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tb.Len())
	}
	// Reserving a non-empty table must keep its rows and pk intact.
	tb.Reserve(128)
	if r, ok := tb.Get(17); !ok || r[1].Str() != "v" {
		t.Fatal("Reserve disturbed existing rows")
	}
	tb.Reserve(0)
	tb.Reserve(-1)
}
