package enc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestUint64Order(t *testing.T) {
	f := func(a, b uint64) bool {
		ea, eb := Uint64(nil, a), Uint64(nil, b)
		c := bytes.Compare(ea, eb)
		return (a < b) == (c < 0) && (a == b) == (c == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt64OrderAndRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := Int64(nil, a), Int64(nil, b)
		c := bytes.Compare(ea, eb)
		if (a < b) != (c < 0) || (a == b) != (c == 0) {
			return false
		}
		got, rest := TakeInt64(ea)
		return got == a && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringOrderAndPrefixFreedom(t *testing.T) {
	f := func(a, b string) bool {
		ea, eb := String(nil, a), String(nil, b)
		c := bytes.Compare(ea, eb)
		if (a < b) != (c < 0) || (a == b) != (c == 0) {
			return false
		}
		// Prefix freedom: distinct strings never have prefix-related encodings.
		if a != b && (bytes.HasPrefix(ea, eb) || bytes.HasPrefix(eb, ea)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringWithNulBytes(t *testing.T) {
	a := String(nil, "a\x00b")
	b := String(nil, "a")
	if bytes.Compare(b, a) >= 0 {
		t.Fatalf(`"a" must sort before "a\x00b"`)
	}
	if bytes.HasPrefix(a, b) {
		t.Fatalf("embedded NUL broke prefix freedom")
	}
}

func TestValueOrderMatchesCompare(t *testing.T) {
	vals := []core.Value{
		core.Nil,
		core.S(""), core.S("a"), core.S("ab"), core.S("b"),
		core.I(-5), core.I(0), core.I(7),
		core.F(-1.5), core.F(0), core.F(2.25),
		core.B(false), core.B(true),
	}
	for _, x := range vals {
		for _, y := range vals {
			ex, ey := Value(nil, x), Value(nil, y)
			c := bytes.Compare(ex, ey)
			want := x.Compare(y)
			if sign(c) != sign(want) {
				t.Errorf("Value order mismatch: %v vs %v: bytes %d, Compare %d", x, y, c, want)
			}
		}
	}
}

func TestValueFloatNegativeOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if a != a || b != b { // skip NaN
			return true
		}
		c := bytes.Compare(Value(nil, core.F(a)), Value(nil, core.F(b)))
		return (a < b) == (c < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

func TestUvarintRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		b := Uvarint(nil, x)
		got, rest, ok := TakeUvarint(b)
		return ok && got == x && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Truncated and empty inputs must report !ok, never panic.
	full := Uvarint(nil, 1<<40)
	for i := 0; i < len(full); i++ {
		if _, _, ok := TakeUvarint(full[:i]); ok {
			t.Errorf("truncated uvarint of %d bytes decoded", i)
		}
	}
	// Overlong encoding (11 continuation bytes) is malformed.
	if _, _, ok := TakeUvarint([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}); ok {
		t.Error("overlong uvarint decoded")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(x int64) bool { return Unzigzag(Zigzag(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for i, want := range []uint64{0, 1, 2, 3, 4} {
		xs := []int64{0, -1, 1, -2, 2}
		if Zigzag(xs[i]) != want {
			t.Errorf("Zigzag(%d) = %d, want %d", xs[i], Zigzag(xs[i]), want)
		}
	}
}
