// Package enc provides order-preserving key encodings for the B+Tree-
// and LSM-backed engines: composite index keys compare correctly under
// bytes.Compare iff each component is encoded with these helpers.
package enc

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
)

// Uint64 appends x big-endian, preserving unsigned order.
func Uint64(b []byte, x uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], x)
	return append(b, buf[:]...)
}

// Int64 appends x with the sign bit flipped, preserving signed order.
func Int64(b []byte, x int64) []byte {
	return Uint64(b, uint64(x)^(1<<63))
}

// TakeUint64 decodes a Uint64 from the front of b.
func TakeUint64(b []byte) (uint64, []byte) {
	return binary.BigEndian.Uint64(b), b[8:]
}

// TakeInt64 decodes an Int64 from the front of b.
func TakeInt64(b []byte) (int64, []byte) {
	u, rest := TakeUint64(b)
	return int64(u ^ (1 << 63)), rest
}

// String appends s escaped and terminated so that (a) ordering is
// preserved, and (b) no encoded string is a prefix of another (needed
// for exact-equality prefix scans). 0x00 bytes in s become 0x00 0xFF;
// the terminator is 0x00 0x00.
func String(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 0x00 {
			b = append(b, 0x00, 0xFF)
		} else {
			b = append(b, c)
		}
	}
	return append(b, 0x00, 0x00)
}

// Value kind tags. Distinct from core.Kind values so that the encoding
// is self-contained; the tag is the first byte and makes values of
// different kinds sort by kind, matching core.Value.Compare.
const (
	tagNil    = 0x01
	tagString = 0x02
	tagInt    = 0x03
	tagFloat  = 0x04
	tagBool   = 0x05
)

// Value appends an order-preserving encoding of v: values compare under
// bytes.Compare exactly as under core.Value.Compare, and no encoding is
// a prefix of another.
func Value(b []byte, v core.Value) []byte {
	switch v.Kind() {
	case core.KindNil:
		return append(b, tagNil)
	case core.KindString:
		return String(append(b, tagString), v.Str())
	case core.KindInt:
		return Int64(append(b, tagInt), v.Int())
	case core.KindFloat:
		f := v.Float()
		bits := floatBits(f)
		return Uint64(append(b, tagFloat), bits)
	case core.KindBool:
		if v.Bool() {
			return append(b, tagBool, 1)
		}
		return append(b, tagBool, 0)
	}
	return append(b, tagNil)
}

// floatBits maps float64 to uint64 preserving order: positive floats
// get the sign bit set; negative floats are fully inverted.
func floatBits(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | (1 << 63)
}

// --- variable-length encodings (dataset snapshots) ---
//
// Unlike the order-preserving encodings above, these optimize for
// density: the binary dataset snapshots (internal/datasets) store
// counts, dense indexes and deltas, which are overwhelmingly small
// non-negative numbers. Truncated input is reported via ok=false
// instead of panicking, because snapshot files are untrusted (a
// half-written artifact must fall back to regeneration, not crash).

// Uvarint appends x in unsigned LEB128 form.
func Uvarint(b []byte, x uint64) []byte {
	return binary.AppendUvarint(b, x)
}

// TakeUvarint decodes a Uvarint from the front of b. ok is false when b
// is truncated or malformed.
func TakeUvarint(b []byte) (x uint64, rest []byte, ok bool) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, false
	}
	return x, b[n:], true
}

// Zigzag maps a signed integer to an unsigned one with small absolute
// values staying small: 0,-1,1,-2,... → 0,1,2,3,...
func Zigzag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
