package datasets

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// randomTestGraph builds a deterministic pseudo-random multigraph:
// enough structure (many components, skewed degrees, parallel and self
// edges) to exercise every reduction in StatsCSR.
func randomTestGraph(seed int64, n, m int) *core.Graph {
	g := core.NewGraph(n, m)
	rng := newSplitMix(seed)
	labels := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		g.AddVertex(nil)
	}
	for i := 0; i < m; i++ {
		// Bias endpoints into the low range for skew and fragmentation.
		src := int(rng.next() % uint64(n))
		dst := int(rng.next() % uint64(n/2+1))
		g.AddEdge(src, dst, labels[rng.next()%uint64(len(labels))], nil)
	}
	return g
}

// TestStatsParallelMatchesSequential is the determinism contract of
// the parallel analytics: StatsCSR must produce a byte-identical
// Table3Row for every worker count — three seeded random graphs and
// two catalog datasets, sequential versus 4 and 16 workers.
func TestStatsParallelMatchesSequential(t *testing.T) {
	snaps := map[string]*core.CSR{}
	for _, seed := range []int64{1, 2, 3} {
		g := randomTestGraph(seed, 2000, 5000)
		snaps[string(rune('a'+seed))] = g.Snapshot()
	}
	for _, name := range []string{"yeast", "mico"} {
		snaps[name] = ByName(name).Generate(snapTestScale).Snapshot()
	}
	for name, c := range snaps {
		seq := StatsCSR(c, 1)
		for _, workers := range []int{4, 16} {
			if par := StatsCSR(c, workers); !reflect.DeepEqual(par, seq) {
				t.Errorf("%s: StatsCSR(%d workers) = %+v\n  sequential %+v", name, workers, par, seq)
			}
		}
	}
}

// TestStatsKnownValues pins the analytics on graphs small enough to
// verify by hand.
func TestStatsKnownValues(t *testing.T) {
	// Path 0-1-2-3 plus isolated vertex 4.
	g := core.NewGraph(5, 3)
	for i := 0; i < 5; i++ {
		g.AddVertex(nil)
	}
	g.AddEdge(0, 1, "e", nil)
	g.AddEdge(1, 2, "e", nil)
	g.AddEdge(2, 3, "e", nil)
	row := Stats(g)
	if row.Components != 2 || row.MaxComp != 4 || row.Diameter != 3 || row.MaxDeg != 2 {
		t.Errorf("path graph: %+v", row)
	}

	// Two same-size components: the largest-component tie must break to
	// the one containing the smallest vertex, so the diameter seed is
	// deterministic. Component {0,3} and {1,2} both have 2 vertices.
	g2 := core.NewGraph(4, 2)
	for i := 0; i < 4; i++ {
		g2.AddVertex(nil)
	}
	g2.AddEdge(3, 0, "e", nil)
	g2.AddEdge(1, 2, "e", nil)
	row2 := Stats(g2)
	if row2.Components != 2 || row2.MaxComp != 2 || row2.Diameter != 1 {
		t.Errorf("tied components: %+v", row2)
	}

	// Self-loop only: one vertex at distance 0 from itself.
	g3 := core.NewGraph(2, 1)
	g3.AddVertex(nil)
	g3.AddVertex(nil)
	g3.AddEdge(0, 0, "self", nil)
	row3 := Stats(g3)
	if row3.Components != 2 || row3.Diameter != 0 {
		t.Errorf("self-loop graph: %+v", row3)
	}

	// Empty graph.
	if row := Stats(core.NewGraph(0, 0)); row.V != 0 || row.Components != 0 {
		t.Errorf("empty graph: %+v", row)
	}
}
