package datasets

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestAcquireViaFetched: on a local miss the fetch layer must serve
// the graph, re-verify it, and store the artifact through the atomic
// write path — the next Acquire is a plain warm hit, no fetch, no
// generation.
func TestAcquireViaFetched(t *testing.T) {
	spec := ByName("yeast")
	g := spec.Generate(snapTestScale)
	fp := SnapshotFingerprint("yeast", snapTestScale, spec.Seed)
	raw := RawJSONSize(g)
	var art bytes.Buffer
	if err := WriteSnapshot(&art, g, raw, fp); err != nil {
		t.Fatal(err)
	}

	fetches := 0
	fetch := func(name string, want [32]byte) (io.ReadCloser, error) {
		fetches++
		if name != "yeast" || want != fp {
			return nil, errors.New("unknown artifact")
		}
		return io.NopCloser(bytes.NewReader(art.Bytes())), nil
	}

	dir := t.TempDir()
	got, st, err := AcquireVia("yeast", snapTestScale, dir, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Fetched || st.Hit || !st.Stored || st.Err != nil {
		t.Fatalf("fetched acquire status: %+v", st)
	}
	if st.RawJSON != raw {
		t.Fatalf("fetched RawJSON %d, want %d", st.RawJSON, raw)
	}
	if !reflect.DeepEqual(got.VProps, g.VProps) || !reflect.DeepEqual(got.EdgeL, g.EdgeL) {
		t.Fatal("fetched graph differs from generated one")
	}
	// The artifact must have landed byte-identical at the content
	// address, with no temp residue.
	onDisk, err := os.ReadFile(st.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, art.Bytes()) {
		t.Fatal("stored artifact differs from the fetched bytes")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("cache dir holds %d entries after fetch, want 1", len(entries))
	}

	// Warm now: neither fetch nor generation.
	_, st2, err := AcquireVia("yeast", snapTestScale, dir, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Hit || st2.Fetched || fetches != 1 {
		t.Fatalf("second acquire not a pure hit: %+v (fetches=%d)", st2, fetches)
	}

	// Without a cache dir the fetched artifact is verified and decoded
	// straight off the stream.
	got3, st3, err := AcquireVia("yeast", snapTestScale, "", fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Fetched || st3.Stored || st3.Path != "" || st3.RawJSON != raw {
		t.Fatalf("uncached fetched acquire: %+v", st3)
	}
	if !reflect.DeepEqual(got3.VProps, g.VProps) {
		t.Fatal("uncached fetched graph differs")
	}
}

// TestAcquireViaBadFetchFallsBack: a fetch that errors, serves
// garbage, or serves an artifact with the wrong fingerprint must fall
// back to generation — recorded as a non-fatal status error — and
// still heal the cache. A truncated transfer must leave no temp file.
func TestAcquireViaBadFetchFallsBack(t *testing.T) {
	spec := ByName("yeast")
	g := spec.Generate(snapTestScale)
	wrongFP := SnapshotFingerprint("yeast", snapTestScale, spec.Seed+1)
	var wrong bytes.Buffer
	if err := WriteSnapshot(&wrong, g, 0, wrongFP); err != nil {
		t.Fatal(err)
	}

	cases := map[string]FetchFunc{
		"fetch-error": func(string, [32]byte) (io.ReadCloser, error) {
			return nil, errors.New("scheduler unreachable")
		},
		"garbage": func(string, [32]byte) (io.ReadCloser, error) {
			return io.NopCloser(strings.NewReader("not a snapshot at all")), nil
		},
		"wrong-fingerprint": func(string, [32]byte) (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(wrong.Bytes())), nil
		},
	}
	for name, fetch := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			got, st, err := AcquireVia("yeast", snapTestScale, dir, fetch)
			if err != nil {
				t.Fatal(err)
			}
			if st.Fetched || st.Hit {
				t.Fatalf("bad fetch served a graph: %+v", st)
			}
			if st.Err == nil || !strings.Contains(st.Err.Error(), "fetch") {
				t.Fatalf("fetch failure not surfaced: %v", st.Err)
			}
			if !st.Stored {
				t.Fatalf("generation fallback did not heal the cache: %+v", st)
			}
			if !reflect.DeepEqual(got.VProps, g.VProps) || !reflect.DeepEqual(got.EdgeL, g.EdgeL) {
				t.Fatal("fallback graph differs from generated one")
			}
			// No temp residue from the failed transfer.
			entries, _ := os.ReadDir(dir)
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), ".tmp-") {
					t.Fatalf("failed fetch stranded temp file %s", e.Name())
				}
			}
		})
	}
}

// TestAcquireViaFetchSurvivesStoreFailure: when the transfer is fine
// but the cache cannot be written (here: the cache path is a regular
// file, so staging fails before a byte is consumed), the fetched
// artifact must still be decoded and served — generation is for failed
// *fetches*, not failed stores — with the store problem surfaced as a
// non-fatal status error.
func TestAcquireViaFetchSurvivesStoreFailure(t *testing.T) {
	spec := ByName("yeast")
	g := spec.Generate(snapTestScale)
	fp := SnapshotFingerprint("yeast", snapTestScale, spec.Seed)
	raw := RawJSONSize(g)
	var art bytes.Buffer
	if err := WriteSnapshot(&art, g, raw, fp); err != nil {
		t.Fatal(err)
	}
	fetches := 0
	fetch := func(string, [32]byte) (io.ReadCloser, error) {
		fetches++
		return io.NopCloser(bytes.NewReader(art.Bytes())), nil
	}

	badDir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(badDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, st, err := AcquireVia("yeast", snapTestScale, badDir, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Fetched || st.Stored || st.Hit {
		t.Fatalf("store-failure acquire status: %+v", st)
	}
	if st.Err == nil || !strings.Contains(st.Err.Error(), "served uncached") {
		t.Fatalf("store failure not surfaced as uncached serve: %v", st.Err)
	}
	if fetches != 1 {
		t.Fatalf("fetch called %d times, want 1", fetches)
	}
	if st.RawJSON != raw {
		t.Fatalf("RawJSON %d, want %d", st.RawJSON, raw)
	}
	if !reflect.DeepEqual(got.VProps, g.VProps) || !reflect.DeepEqual(got.EdgeL, g.EdgeL) {
		t.Fatal("fetched-uncached graph differs from generated one")
	}
}

// TestSweepStaleTemps: temp files stranded by a crash between
// CreateTemp and Rename must be swept during Acquire once they are
// older than the grace period; fresh temps (a concurrent writer) and
// unrelated files must survive.
func TestSweepStaleTemps(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	stale := mk(".tmp-yeast-old-123")
	fresh := mk(".tmp-yeast-new-456")
	other := mk("keep.gsnp")
	old := time.Now().Add(-2 * staleTempGrace)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Acquire("yeast", snapTestScale, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp not swept: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp swept: %v", err)
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatalf("non-temp file swept: %v", err)
	}
}
