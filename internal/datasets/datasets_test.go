package datasets

import (
	"math"
	"testing"

	"repro/internal/core"
)

// benchScale keeps test generation fast while preserving structure.
const benchScale = 0.01

func TestSpecsComplete(t *testing.T) {
	specs := Specs()
	if len(specs) != 7 {
		t.Fatalf("datasets = %d, want 7 (Table 3)", len(specs))
	}
	for _, s := range specs {
		if s.Name == "" || s.Desc == "" || s.Generate == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if s.Paper.V == 0 || s.Paper.E == 0 || s.Paper.L == 0 {
			t.Fatalf("%s: missing paper characteristics", s.Name)
		}
	}
	if ByName("ldbc") == nil || ByName("nope") != nil {
		t.Fatal("ByName wrong")
	}
	if len(Names()) != 7 {
		t.Fatal("Names wrong")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, s := range Specs() {
		a := s.Generate(0.002)
		b := s.Generate(0.002)
		if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: nondeterministic sizes", s.Name)
		}
		for i := range a.EdgeL {
			if a.EdgeL[i].Src != b.EdgeL[i].Src || a.EdgeL[i].Label != b.EdgeL[i].Label {
				t.Fatalf("%s: nondeterministic edges at %d", s.Name, i)
			}
		}
	}
}

func TestScaleTracksPaperSizes(t *testing.T) {
	for _, s := range Specs() {
		g := s.Generate(benchScale)
		wantV := float64(s.Paper.V) * benchScale
		gotV := float64(g.NumVertices())
		// Generators clamp to a minimum viable size; only check datasets
		// whose scaled target is above the clamp region.
		if wantV > 500 && (gotV < wantV*0.5 || gotV > wantV*2.5) {
			t.Errorf("%s: |V| = %.0f, want ≈ %.0f", s.Name, gotV, wantV)
		}
		wantE := float64(s.Paper.E) * benchScale
		gotE := float64(g.NumEdges())
		if wantE > 1000 && (gotE < wantE*0.5 || gotE > wantE*2.5) {
			t.Errorf("%s: |E| = %.0f, want ≈ %.0f", s.Name, gotE, wantE)
		}
	}
}

// TestStructuralShapes verifies the properties that drive the paper's
// findings apart: label cardinality ranking, fragmentation, degree
// skew, and the connectivity of ldbc.
func TestStructuralShapes(t *testing.T) {
	rows := map[string]Table3Row{}
	graphs := map[string]*core.Graph{}
	for _, s := range Specs() {
		g := s.Generate(benchScale)
		graphs[s.Name] = g
		rows[s.Name] = Stats(g)
	}

	// ldbc: exactly 15 labels, single component, modularity 0.
	ldbc := rows["ldbc"]
	if ldbc.L != 15 {
		t.Errorf("ldbc labels = %d, want 15", ldbc.L)
	}
	if ldbc.Components != 1 || ldbc.Modularity != 0 {
		t.Errorf("ldbc components = %d, modularity = %g; want 1, 0", ldbc.Components, ldbc.Modularity)
	}
	// ldbc is the only dataset with edge properties.
	hasEdgeProps := func(g *core.Graph) bool {
		for i := range g.EdgeL {
			if len(g.EdgeL[i].Props) > 0 {
				return true
			}
		}
		return false
	}
	if !hasEdgeProps(graphs["ldbc"]) {
		t.Error("ldbc must carry edge properties")
	}
	for _, name := range []string{"yeast", "mico", "frb-s"} {
		if hasEdgeProps(graphs[name]) {
			t.Errorf("%s must not carry edge properties", name)
		}
	}

	// Freebase family: label-rich and fragmented; frb-s sparser than
	// frb-o (edges < nodes), with very high modularity.
	if rows["frb-s"].L <= rows["mico"].L {
		t.Errorf("frb-s labels (%d) must exceed mico labels (%d)", rows["frb-s"].L, rows["mico"].L)
	}
	if rows["frb-s"].Modularity < 0.9 {
		t.Errorf("frb-s modularity = %g, want > 0.9", rows["frb-s"].Modularity)
	}
	if rows["frb-s"].AvgDeg >= rows["mico"].AvgDeg {
		t.Errorf("frb-s avg degree (%g) must be below mico (%g)", rows["frb-s"].AvgDeg, rows["mico"].AvgDeg)
	}
	if rows["frb-s"].Components < 100 {
		t.Errorf("frb-s components = %d, want heavy fragmentation", rows["frb-s"].Components)
	}

	// Hubs: freebase max degree far above its average.
	fo := rows["frb-o"]
	if float64(fo.MaxDeg) < 20*fo.AvgDeg {
		t.Errorf("frb-o lacks hubs: max %d vs avg %g", fo.MaxDeg, fo.AvgDeg)
	}

	// Yeast is denser than the big graphs by orders of magnitude.
	if rows["yeast"].Density <= rows["mico"].Density {
		t.Errorf("yeast density (%g) must exceed mico (%g)", rows["yeast"].Density, rows["mico"].Density)
	}
}

func TestStatsOnKnownGraph(t *testing.T) {
	// Two triangles plus an isolated vertex.
	g := core.NewGraph(7, 6)
	for i := 0; i < 7; i++ {
		g.AddVertex(nil)
	}
	g.AddEdge(0, 1, "a", nil)
	g.AddEdge(1, 2, "a", nil)
	g.AddEdge(2, 0, "b", nil)
	g.AddEdge(3, 4, "a", nil)
	g.AddEdge(4, 5, "c", nil)
	g.AddEdge(5, 3, "c", nil)
	row := Stats(g)
	if row.V != 7 || row.E != 6 || row.L != 3 {
		t.Fatalf("V/E/L = %d/%d/%d", row.V, row.E, row.L)
	}
	if row.Components != 3 || row.MaxComp != 3 {
		t.Fatalf("components = %d, max = %d", row.Components, row.MaxComp)
	}
	if row.MaxDeg != 2 {
		t.Fatalf("max degree = %d", row.MaxDeg)
	}
	if math.Abs(row.AvgDeg-12.0/7) > 1e-9 {
		t.Fatalf("avg degree = %g", row.AvgDeg)
	}
	// Two equal communities: Q = 1 - 2*(1/2)^2 = 0.5.
	if math.Abs(row.Modularity-0.5) > 1e-9 {
		t.Fatalf("modularity = %g, want 0.5", row.Modularity)
	}
	if row.Diameter != 1 {
		t.Fatalf("diameter = %d, want 1 (triangle)", row.Diameter)
	}
	if d := Stats(core.NewGraph(0, 0)); d.V != 0 {
		t.Fatalf("empty stats = %+v", d)
	}
}

func TestPickDeterministicAndConnected(t *testing.T) {
	g := MiCo(0.005)
	p1 := Pick(g, 123, 20)
	p2 := Pick(g, 123, 20)
	if len(p1.Vertices) != 20 || len(p1.Edges) != 20 {
		t.Fatalf("pick sizes = %d/%d", len(p1.Vertices), len(p1.Edges))
	}
	for i := range p1.Vertices {
		if p1.Vertices[i] != p2.Vertices[i] || p1.Edges[i] != p2.Edges[i] {
			t.Fatal("Pick not deterministic")
		}
	}
	deg := make([]int, g.NumVertices())
	for i := range g.EdgeL {
		deg[g.EdgeL[i].Src]++
		deg[g.EdgeL[i].Dst]++
	}
	for _, v := range p1.Vertices {
		if deg[v] == 0 {
			t.Fatalf("picked isolated vertex %d", v)
		}
	}
	p3 := Pick(g, 999, 20)
	same := true
	for i := range p1.Vertices {
		if p1.Vertices[i] != p3.Vertices[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical picks")
	}
}

func TestLDBCComplexQuerySubstrate(t *testing.T) {
	// The complex workload needs persons, places, companies,
	// universities and tags, plus knows/livesIn/worksAt/studyAt/
	// hasInterest edges.
	g := LDBC(benchScale)
	kinds := map[string]int{}
	for _, p := range g.VProps {
		kinds[p["kind"].Str()]++
	}
	for _, k := range []string{"person", "place", "company", "university", "tag", "forum", "post"} {
		if kinds[k] == 0 {
			t.Errorf("ldbc lacks %s nodes", k)
		}
	}
	labels := map[string]bool{}
	for i := range g.EdgeL {
		labels[g.EdgeL[i].Label] = true
	}
	for _, l := range ldbcLabels {
		if !labels[l] {
			t.Errorf("ldbc lacks %s edges", l)
		}
	}
}
