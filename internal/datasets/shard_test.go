package datasets

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestShardedGenerationDeterministic is the determinism contract of
// sharded generation: every generator produces a byte-identical graph —
// vertices, properties, edges, edge properties — for any worker count.
// Run under -race it also proves the shards write disjoint ranges.
func TestShardedGenerationDeterministic(t *testing.T) {
	defer SetGenWorkers(0)
	generate := func(workers int, spec *Spec) *core.Graph {
		SetGenWorkers(workers)
		return spec.Generate(0.002)
	}
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			a := generate(1, &s)
			b := generate(8, &s)
			if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
				t.Fatalf("sizes diverge: %d/%d vs %d/%d",
					a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
			}
			for i := range a.VProps {
				if !reflect.DeepEqual(a.VProps[i], b.VProps[i]) {
					t.Fatalf("vertex %d diverges:\nworkers=1: %v\nworkers=8: %v", i, a.VProps[i], b.VProps[i])
				}
			}
			for i := range a.EdgeL {
				if !reflect.DeepEqual(a.EdgeL[i], b.EdgeL[i]) {
					t.Fatalf("edge %d diverges:\nworkers=1: %v\nworkers=8: %v", i, a.EdgeL[i], b.EdgeL[i])
				}
			}
		})
	}
}

func TestForShardsCoversEveryIndexOnce(t *testing.T) {
	defer SetGenWorkers(0)
	for _, workers := range []int{1, 3, 16} {
		SetGenWorkers(workers)
		const n = 3*shardSize + 17
		seen := make([]int32, n)
		forShards(n, func(shard, start, end int) {
			if start != shard*shardSize {
				t.Errorf("shard %d starts at %d", shard, start)
			}
			for i := start; i < end; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestShardRNGStreamsIndependent(t *testing.T) {
	a := shardRNG(1, phaseEdges, 0)
	b := shardRNG(1, phaseEdges, 1)
	c := shardRNG(1, phaseVertices, 0)
	av, bv, cv := a.Int63(), b.Int63(), c.Int63()
	if av == bv || av == cv {
		t.Fatalf("shard RNG streams collide: %d %d %d", av, bv, cv)
	}
	if again := shardRNG(1, phaseEdges, 0).Int63(); again != av {
		t.Fatalf("shard RNG not deterministic: %d vs %d", again, av)
	}
}
