package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// frbProfile parameterizes the Freebase-family generator on the paper's
// Table 3 characteristics. The four samples differ in size, label
// cardinality, and edge/node ratio (which drives their fragmentation).
type frbProfile struct {
	name   string
	seed   int64
	nodes  int
	edges  int
	labels int
	// hubAlpha controls degree skew: higher → stronger hubs.
	hubAlpha float64
	// giantFrac bounds the largest connected component as a fraction of
	// |V| (Table 3's Maxim column): edges never leave their node block,
	// which reproduces the fragmentation of random edge sampling.
	giantFrac float64
	topics    []string
}

var commonTopics = []string{
	"people", "location", "film", "music", "book", "sports",
	"education", "medicine", "biology", "astronomy",
}

var orgTopics = []string{
	"organization", "business", "government", "finance", "geography", "military",
}

var (
	frbS = frbProfile{name: "frb-s", seed: 1001, nodes: 500_000, edges: 300_000,
		labels: 1_814, hubAlpha: 0.62, giantFrac: 0.04, topics: commonTopics}
	frbO = frbProfile{name: "frb-o", seed: 1002, nodes: 1_900_000, edges: 4_300_000,
		labels: 424, hubAlpha: 0.70, giantFrac: 0.84, topics: orgTopics}
	frbM = frbProfile{name: "frb-m", seed: 1003, nodes: 4_000_000, edges: 3_100_000,
		labels: 2_912, hubAlpha: 0.68, giantFrac: 0.35, topics: commonTopics}
	frbL = frbProfile{name: "frb-l", seed: 1004, nodes: 28_400_000, edges: 31_200_000,
		labels: 3_821, hubAlpha: 0.72, giantFrac: 0.81, topics: commonTopics}
)

// freebase generates a knowledge-base-like multigraph: entity nodes
// with mid/name/type properties, Zipfian edge-label usage over a large
// label vocabulary, strong hubs, and — because edges are drawn
// independently of any connectivity goal, exactly like the paper's
// random edge sampling — heavy fragmentation with many singleton
// components. Vertices and edges are generated in shards (see
// shard.go), so the graph is identical for any worker count.
func freebase(p frbProfile, scale float64) *core.Graph {
	n := scaled(p.nodes, scale, 300)
	m := scaled(p.edges, scale, 200)
	labels := p.labels
	if labels > m/2 {
		labels = m/2 + 1 // keep label reuse plausible at tiny scales
	}

	g := &core.Graph{VProps: make([]core.Props, n), EdgeL: make([]core.EdgeRec, m)}
	forShards(n, func(_, start, end int) {
		for i := start; i < end; i++ {
			topic := p.topics[i%len(p.topics)]
			props := core.Props{
				"mid":  core.S(fmt.Sprintf("/m/%s.%07x", p.name, i)),
				"type": core.S(topic),
			}
			// As in Freebase, only a fraction of entities carry names.
			if i%3 != 0 {
				props["name"] = core.S(fmt.Sprintf("%s entity %d", topic, i))
			}
			g.VProps[i] = props
		}
	})
	// Node blocks: [0, giant) is the block hosting the largest
	// component; the rest of the node space falls into blocks of ~1% of
	// |V|. Both endpoints of an edge stay inside the source's block, so
	// components never outgrow their block — the fragmentation the
	// paper's Table 3 reports for the Freebase samples — while nodes
	// untouched by any edge remain singletons, giving the very large
	// component counts.
	giant := int(float64(n) * p.giantFrac)
	if giant < 10 {
		giant = 10
	}
	small := n / 100
	if small < 8 {
		small = 8
	}
	blockOf := func(v int) (start, size int) {
		if v < giant {
			return 0, giant
		}
		b := (v - giant) / small
		start = giant + b*small
		end := start + small
		if end > n {
			end = n
		}
		return start, end - start
	}
	forShards(m, func(shard, lo, hi int) {
		rng := shardRNG(p.seed, phaseEdges, shard)
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(labels-1))
		for i := lo; i < hi; i++ {
			src := rng.Intn(n)
			start, size := blockOf(src)
			// Objects (dst) are hub-biased within the block: a few
			// entities (countries, types, popular people) accumulate
			// enormous in-degree.
			dst := start + powerLawIndex(rng, size, p.hubAlpha)
			label := zipfLabel(rng, zipf, "/rel/r", labels)
			g.EdgeL[i] = core.EdgeRec{Src: src, Dst: dst, Label: label}
		}
	})
	return g
}
