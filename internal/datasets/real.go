package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Generator seeds, hoisted to package level so the dataset Specs can
// report them to the snapshot-cache fingerprint.
const (
	yeastSeed = 42
	micoSeed  = 43
)

// Yeast generates the protein-interaction-network equivalent: ~2.3K
// proteins, ~7.1K interaction edges whose labels are protein-class
// pairs (167 distinct), nodes carrying short/long names, a description,
// and a putative function class — the property shape the paper
// describes for the Pajek yeast dataset. Generation is sharded (see
// shard.go): output is identical for any worker count.
func Yeast(scale float64) *core.Graph {
	const seed = yeastSeed
	n := scaled(2_300, scale, 200)
	m := scaled(7_100, scale, 600)

	classes := []string{"E", "T", "M", "P", "G", "R", "C", "F", "D", "O", "U", "B", "A"}
	g := &core.Graph{VProps: make([]core.Props, n), EdgeL: make([]core.EdgeRec, m)}
	forShards(n, func(shard, start, end int) {
		rng := shardRNG(seed, phaseVertices, shard)
		for i := start; i < end; i++ {
			cls := classes[rng.Intn(len(classes))]
			g.VProps[i] = core.Props{
				"short":       core.S(fmt.Sprintf("Y%c%c%03d", 'A'+rng.Intn(16), 'L'+rng.Intn(4), i%1000)),
				"long":        core.S(fmt.Sprintf("protein %d of budding yeast", i)),
				"description": core.S(fmt.Sprintf("putative %s-class protein involved in pathway %d", cls, i%40)),
				"class":       core.S(cls),
			}
		}
	})
	// Interactions: mildly clustered (proteins in the same pathway
	// interact more), which yields ~a hundred small components around
	// one dominant component, as in Table 3.
	forShards(m, func(shard, start, end int) {
		rng := shardRNG(seed, phaseEdges, shard)
		for i := start; i < end; i++ {
			a := rng.Intn(n)
			var b int
			if rng.Float64() < 0.7 {
				b = (a + 1 + rng.Intn(30)) % n // local
			} else {
				b = rng.Intn(n)
			}
			// Edge label = interacting protein classes, 13×13 → ~167 used.
			la := classes[rng.Intn(len(classes))]
			lb := classes[rng.Intn(len(classes))]
			g.EdgeL[i] = core.EdgeRec{Src: a, Dst: b, Label: la + "-" + lb}
		}
	})
	return g
}

// MiCo generates the co-authorship-network equivalent: ~100K authors,
// ~1.1M co-author edges labelled with the number of co-authored papers
// (~106 distinct values, heavily skewed toward 1), and community
// structure around research areas. Generation is sharded (see
// shard.go): output is identical for any worker count.
func MiCo(scale float64) *core.Graph {
	const seed = micoSeed
	n := scaled(100_000, scale, 500)
	m := scaled(1_100_000, scale, 4_000)

	areas := []string{"databases", "theory", "systems", "ml", "networks", "hci", "security", "graphics"}
	g := &core.Graph{VProps: make([]core.Props, n), EdgeL: make([]core.EdgeRec, m)}
	communities := n / 50
	if communities < 4 {
		communities = 4
	}
	forShards(n, func(_, start, end int) {
		for i := start; i < end; i++ {
			g.VProps[i] = core.Props{
				"name": core.S(fmt.Sprintf("author-%06d", i)),
				"area": core.S(areas[(i*7)%len(areas)]),
			}
		}
	})
	forShards(m, func(shard, start, end int) {
		rng := shardRNG(seed, phaseEdges, shard)
		zipf := rand.NewZipf(rng, 1.9, 1, 105) // paper counts: 1..106, mass at 1
		for i := start; i < end; i++ {
			c := rng.Intn(communities)
			lo := c * n / communities
			hi := (c + 1) * n / communities
			a := lo + rng.Intn(hi-lo)
			var b int
			if rng.Float64() < 0.9 {
				b = lo + rng.Intn(hi-lo) // intra-community collaboration
			} else {
				b = rng.Intn(n)
			}
			papers := int(zipf.Uint64()) + 1
			g.EdgeL[i] = core.EdgeRec{Src: a, Dst: b, Label: fmt.Sprintf("%d", papers)}
		}
	})
	return g
}
