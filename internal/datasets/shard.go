package datasets

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Dataset generation is sharded: every generator phase (a vertex range
// or an edge range) is cut into fixed-size shards, each shard draws
// from its own RNG derived from (generator seed, phase, shard index),
// and shards fill disjoint slices of the pre-sized graph. Because the
// shard boundaries and the per-shard seeds depend only on the phase
// size — never on the worker count — the generated graph is
// byte-identical for any number of generation workers, including one.

// shardSize is the number of objects (vertices or edges) per shard. It
// is part of the determinism contract: changing it changes the
// generated graphs, exactly like changing a generator seed would.
const shardSize = 8192

// genWorkers bounds the goroutines used per generation phase.
var genWorkers atomic.Int64

func init() { genWorkers.Store(int64(runtime.NumCPU())) }

// SetGenWorkers bounds the number of parallel dataset-generation
// workers; n <= 0 restores the default (all CPUs). The worker count
// never affects the generated graphs, only how fast they appear.
func SetGenWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	genWorkers.Store(int64(n))
}

// GenWorkers returns the current generation worker bound.
func GenWorkers() int { return int(genWorkers.Load()) }

// splitmix64 is the SplitMix64 finalizer: a bijective mixer whose
// outputs for sequential inputs are statistically independent — the
// standard way to derive uncorrelated per-shard seeds from one seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardRNG returns the RNG for shard s of the given phase, derived from
// the generator seed. Distinct (seed, phase, shard) triples get
// distinct, independent streams.
func shardRNG(seed int64, phase uint64, s int) *rand.Rand {
	h := splitmix64(splitmix64(uint64(seed)+phase<<32) + uint64(s))
	return rand.New(rand.NewSource(int64(h)))
}

// shardCount is the number of fixed-size shards covering [0, n). It
// depends only on n, never on the worker count — per-shard partial
// results combined in shard order are therefore identical for any
// parallelism, which is how the floating-point reductions in stats.go
// stay byte-deterministic.
func shardCount(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + shardSize - 1) / shardSize
}

// forShards partitions [0, n) into shardSize-sized shards and runs
// fn(shard, start, end) for each on at most GenWorkers goroutines.
// fn must write only into the [start, end) range of its outputs.
func forShards(n int, fn func(shard, start, end int)) {
	forShardsN(n, GenWorkers(), fn)
}

// forShardsN is forShards with an explicit worker bound (n <= 0 means
// GenWorkers). It returns only after every shard has run, so callers
// may read the outputs without further synchronization.
func forShardsN(n, workers int, fn func(shard, start, end int)) {
	if n <= 0 {
		return
	}
	shards := shardCount(n)
	if workers <= 0 {
		workers = GenWorkers()
	}
	if workers > shards {
		workers = shards
	}
	run := func(s int) {
		start := s * shardSize
		end := start + shardSize
		if end > n {
			end = n
		}
		fn(s, start, end)
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			run(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				run(s)
			}
		}()
	}
	wg.Wait()
}

// Phase identifiers: every generator phase that consumes randomness has
// its own constant so no two phases of the same generator ever share an
// RNG stream (ldbc.go defines further phases from 16 up).
const (
	phaseVertices uint64 = iota + 1
	phaseEdges
)
