package datasets

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graphson"
	"repro/internal/mmapfile"
)

// This file implements the dataset artifact cache: a compact binary
// sectioned snapshot of a generated core.Graph (format v2, see
// snapformat.go), stored content-addressed on disk so that repeated
// and distributed runs acquire each dataset at decode speed — or, with
// Mmap, at section-verify speed — instead of regeneration speed.
//
// Decoding reconstructs the exact Graph the generator produced —
// including the nil-versus-empty distinction of property maps — so
// exports, checkpoints and catalog fingerprints cannot tell a cache
// hit from a cache miss, and a mapped open from a heap one. Truncation,
// bit rot and identity drift are all detected (size + per-section CRCs
// + embedded fingerprint) and reported as errors; Acquire falls back to
// regeneration on any of them — including a valid artifact in the v1
// format, which is healed in place by the same overwrite path.

// GeneratorVersion identifies the dataset generators' output, not
// their speed: bump it whenever any generator's bytes change (new
// phases, changed seeds or shard size, different property shapes).
// It is part of every snapshot fingerprint, so stale artifacts from
// an older generator can never be served. Version 2 is the sharded
// per-phase-RNG generation introduced in PR 2.
const GeneratorVersion = 2

// SnapshotFingerprint is the content address of a dataset artifact:
// a digest over everything that determines the generated graph —
// dataset name, scale, generator seed and generator version. Two runs
// agree on the fingerprint iff they would generate identical graphs.
//
// The snapshot *format* version is deliberately not part of the
// fingerprint: the artifact path must stay stable across format bumps
// so that Acquire finds an old-format artifact at the address it
// looks at, rejects it by its header version byte, and heals it in
// place through the regenerate-and-overwrite path.
func SnapshotFingerprint(name string, scale float64, seed int64) [32]byte {
	return sha256.Sum256([]byte(fmt.Sprintf(
		"gdb-snapshot|generator=%d|name=%s|scale=%s|seed=%d",
		GeneratorVersion, name,
		strconv.FormatFloat(scale, 'g', -1, 64), seed)))
}

// SnapshotPath is the content-addressed artifact location: the
// fingerprint prefix makes the name unique per (name, scale, seed,
// generator version); the dataset name prefix keeps it human-readable.
func SnapshotPath(dir, name string, fp [32]byte) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%x.gsnp", name, fp[:8]))
}

// FetchFunc obtains a reader over the raw bytes of one .gsnp artifact
// from somewhere else — in the distributed harness, from the scheduler
// over the wire. The fetched bytes are never trusted: AcquireVia
// re-verifies them through the snapshot format's own fingerprint and
// CRCs before serving the graph, and any error (including verification
// failure) falls back to local generation.
type FetchFunc func(name string, fp [32]byte) (io.ReadCloser, error)

// AcquireOptions selects how Acquire obtains and opens artifacts.
type AcquireOptions struct {
	// CacheDir is the artifact cache directory; empty disables caching.
	CacheDir string
	// Fetch, when non-nil, is a remote artifact source layered between
	// the local cache and generation.
	Fetch FetchFunc
	// Mmap opens cache-hit artifacts through a shared memory mapping
	// instead of reading them onto the heap. The decoded graph aliases
	// the mapping (strings, CSR arrays), so mappings are process-shared
	// and never unmapped. Results are byte-identical either way; only
	// the open cost differs.
	Mmap bool
}

// CacheStatus reports how Acquire obtained a graph. Err is non-fatal:
// it records a cache problem (unreadable or invalid artifact, failed
// fetch or store) that Acquire already recovered from.
type CacheStatus struct {
	Hit     bool   // served from a valid local snapshot artifact
	Fetched bool   // served from an artifact fetched via FetchFunc
	Stored  bool   // this call wrote (or rewrote) the artifact
	Mapped  bool   // served through a live memory mapping
	Path    string // artifact path; empty when caching is disabled
	Err     error  // non-fatal cache problem, already recovered from
	// RawJSON is the graph's GraphSON byte size — the "Raw Data" bar of
	// the paper's Figure 1 — carried by the artifact so warm acquires
	// skip the O(dataset) sizing pass too. It is -1 when caching is
	// disabled: the caller computes it (RawJSONSize) only if needed.
	RawJSON int64
}

// RawJSONSize measures the GraphSON size of a dataset graph by
// streaming the document through a counting writer: the exact size a
// materialized document would have, with no O(dataset) buffer.
func RawJSONSize(g *core.Graph) int64 {
	var cw countingWriter
	if err := graphson.Write(&cw, g); err != nil {
		return 0
	}
	return cw.n
}

// countingWriter discards its input and counts the bytes.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Acquire returns the named dataset graph at the given scale. With a
// non-empty cacheDir it first tries the content-addressed snapshot
// artifact, falling back to generation — and refreshing the artifact —
// when the artifact is missing, truncated, corrupt, in an old format,
// or carries a different fingerprint. The returned graph is identical
// to a freshly generated one either way; only the acquisition speed
// differs.
//
// Concurrent callers are safe: artifacts are written to a private temp
// file and published with an atomic rename, so a reader either sees a
// complete valid artifact or none at all.
func Acquire(name string, scale float64, cacheDir string) (*core.Graph, CacheStatus, error) {
	return AcquireWith(name, scale, AcquireOptions{CacheDir: cacheDir})
}

// AcquireVia is Acquire with a remote artifact source layered between
// the local cache and generation.
func AcquireVia(name string, scale float64, cacheDir string, fetch FetchFunc) (*core.Graph, CacheStatus, error) {
	return AcquireWith(name, scale, AcquireOptions{CacheDir: cacheDir, Fetch: fetch})
}

// AcquireWith is the full-option acquire. The fallback order is:
//
//  1. local cache (when CacheDir is non-empty) — a valid artifact at
//     the content address is decoded and served, through a shared
//     memory mapping when Mmap is set;
//  2. fetch (when non-nil) — the artifact is pulled from the source,
//     re-verified by fingerprint and CRCs on arrival, written into the
//     cache via the same temp-file+fsync+rename path a generated
//     artifact uses (when CacheDir is non-empty), and served;
//  3. local generation — always succeeds; refreshes the cache.
//
// Every layer produces the exact same graph bytes, so a fetched graph
// is indistinguishable from a generated one to exports, checkpoints
// and catalog fingerprints.
func AcquireWith(name string, scale float64, opts AcquireOptions) (*core.Graph, CacheStatus, error) {
	spec := ByName(name)
	if spec == nil {
		return nil, CacheStatus{}, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	if opts.CacheDir == "" && opts.Fetch == nil {
		return spec.Generate(scale), CacheStatus{RawJSON: -1}, nil
	}
	fp := SnapshotFingerprint(name, scale, spec.Seed)
	st := CacheStatus{RawJSON: -1}

	if opts.CacheDir != "" {
		st.Path = SnapshotPath(opts.CacheDir, name, fp)
		// Housekeeping: a crash between CreateTemp and Rename strands a
		// .tmp-* file that nothing would ever remove; sweep old ones
		// while we are looking at the directory anyway.
		sweepStaleTemps(opts.CacheDir)
		g, rawJSON, mapped, derr := openArtifact(st.Path, fp, opts.Mmap, decodeGraph)
		if derr == nil {
			st.Hit = true
			st.Mapped = mapped
			st.RawJSON = rawJSON
			return g, st, nil
		}
		if !errors.Is(derr, os.ErrNotExist) {
			// Invalid artifact (truncated write, bit rot, old format,
			// foreign bytes at our path): refetch or regenerate, and
			// rewrite it below.
			st.Err = fmt.Errorf("datasets: cache %s: %w (refreshed)", st.Path, derr)
		}
	}

	if opts.Fetch != nil {
		g, rawJSON, storeErr, ferr := fetchSnapshot(opts.CacheDir, st.Path, name, fp, opts.Fetch)
		if ferr == nil {
			st.Fetched = true
			st.Stored = opts.CacheDir != "" && storeErr == nil
			if storeErr != nil {
				// The fetch itself succeeded; only caching the bytes
				// failed (read-only dir, disk full). Serve the fetched
				// graph uncached rather than regenerating it.
				st.Err = errors.Join(st.Err, fmt.Errorf("datasets: cache %s: %w (fetched, served uncached)", st.Path, storeErr))
			}
			st.RawJSON = rawJSON
			if st.Stored && opts.Mmap {
				// Land-then-map: the fetched bytes are verified and on
				// disk now, so serve them through the shared mapping —
				// a fetched artifact behaves exactly like a warm hit.
				if mg, mraw, mapped, merr := openArtifact(st.Path, fp, true, decodeGraph); merr == nil {
					st.Mapped = mapped
					st.RawJSON = mraw
					return mg, st, nil
				}
			}
			return g, st, nil
		}
		st.Err = errors.Join(st.Err, fmt.Errorf("datasets: fetch %s: %w (generated locally)", name, ferr))
	}

	g := spec.Generate(scale)
	if opts.CacheDir == "" {
		return g, st, nil
	}
	st.RawJSON = RawJSONSize(g)
	if err := storeSnapshot(opts.CacheDir, st.Path, g, st.RawJSON, fp); err != nil {
		// The graph is good; only the artifact store failed (read-only
		// dir, disk full). Report and carry on uncached.
		st.Err = errors.Join(st.Err, err)
		return g, st, nil
	}
	st.Stored = true
	return g, st, nil
}

// AcquireCSR returns the dataset's CSR adjacency snapshot without
// materializing the property graph when it can: a valid cached
// artifact serves the CSR straight from its sections — with Mmap, the
// arrays alias the mapping and the open cost is O(sections touched) —
// and only a cache miss falls back to the full acquire (generating,
// refreshing the artifact, and snapshotting the graph). Analytics
// that work purely off the CSR (gdb-stats) get warm opens that skip
// the property sections entirely.
func AcquireCSR(name string, scale float64, opts AcquireOptions) (*core.CSR, CacheStatus, error) {
	spec := ByName(name)
	if spec == nil {
		return nil, CacheStatus{}, fmt.Errorf("datasets: unknown dataset %q", name)
	}
	if opts.CacheDir != "" {
		fp := SnapshotFingerprint(name, scale, spec.Seed)
		path := SnapshotPath(opts.CacheDir, name, fp)
		c, rawJSON, mapped, err := openArtifact(path, fp, opts.Mmap, decodeCSR)
		if err == nil {
			return c, CacheStatus{Hit: true, Mapped: mapped, Path: path, RawJSON: rawJSON}, nil
		}
	}
	g, st, err := AcquireWith(name, scale, opts)
	if err != nil {
		return nil, st, err
	}
	return g.Snapshot(), st, nil
}

// openArtifact opens and decodes one cached artifact, mapped or from
// the heap, through a caller-chosen section decoder. The mapped flag
// reports whether the returned value aliases a live mapping.
func openArtifact[T any](path string, fp [32]byte, mapped bool, decode func(*artifactView) (T, int64, error)) (T, int64, bool, error) {
	var zero T
	if mapped {
		f, err := openShared(path, fp)
		if err != nil {
			return zero, 0, false, err
		}
		v, err := parseArtifact(f.Data(), fp)
		if err != nil {
			return zero, 0, false, err
		}
		out, rawJSON, err := decode(v)
		if err != nil {
			// The header verified but a section is bad: drop the path
			// from the registry so a healed (rewritten) artifact is
			// re-mapped instead of served stale.
			dropShared(path)
			return zero, 0, false, err
		}
		return out, rawJSON, f.Mapped(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return zero, 0, false, err
	}
	v, err := parseArtifact(data, fp)
	if err != nil {
		return zero, 0, false, err
	}
	out, rawJSON, err := decode(v)
	return out, rawJSON, false, err
}

// sharedMaps is the process-global registry of artifact mappings,
// keyed by path. A mapping is registered once its header and directory
// verify, and is never unmapped afterwards: decoded graphs alias the
// region (strings, CSR arrays), so the mapping must outlive every
// graph served from it — and content addressing makes reuse sound,
// since a valid artifact at one path can only ever be replaced by an
// identical one. Losing a registration race leaks at most one extra
// mapping; nothing is ever unmapped while aliases can exist.
var sharedMaps = struct {
	sync.Mutex
	files map[string]*mmapfile.File
}{files: make(map[string]*mmapfile.File)}

// openShared returns the process-shared read-only view of path,
// mapping (or heap-reading, on platforms without mmap) it on first
// use. The artifact's header and directory are verified against fp
// before the view is registered.
func openShared(path string, fp [32]byte) (*mmapfile.File, error) {
	sharedMaps.Lock()
	f := sharedMaps.files[path]
	sharedMaps.Unlock()
	if f != nil {
		return f, nil
	}
	f, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	if _, err := parseArtifact(f.Data(), fp); err != nil {
		// Nothing aliased the view yet; safe to release it.
		f.Close()
		return nil, err
	}
	sharedMaps.Lock()
	defer sharedMaps.Unlock()
	if prev := sharedMaps.files[path]; prev != nil {
		// Lost the race. Our view has no escaped aliases (only the
		// header check above read it), so it can be released.
		f.Close()
		return prev, nil
	}
	sharedMaps.files[path] = f
	return f, nil
}

// dropShared forgets the mapping registered for path, so the next open
// re-reads the file. The mapping itself is deliberately leaked: decode
// work may have aliased it before failing.
func dropShared(path string) {
	sharedMaps.Lock()
	delete(sharedMaps.files, path)
	sharedMaps.Unlock()
}

// fetchSnapshot pulls one artifact from the remote source. With a
// cache dir the bytes land in a private temp file first and are
// re-verified — magic, embedded fingerprint against the expected
// content address, file size, CRCs — before the atomic rename
// publishes them, exactly like a locally generated artifact; without
// one they are verified and decoded straight off the stream. Either
// way a corrupted or mismatched transfer is an error (err), never a
// served graph. A store-only failure (unwritable cache dir, a failed
// rename) does not waste the transfer: the fetched graph is returned
// with storeErr set and the caller serves it uncached — mirroring how
// a generated graph survives a failed artifact store.
func fetchSnapshot(cacheDir, path, name string, fp [32]byte, fetch FetchFunc) (g *core.Graph, rawJSON int64, storeErr, err error) {
	rc, err := fetch(name, fp)
	if err != nil {
		return nil, 0, nil, err
	}
	defer rc.Close()
	if cacheDir == "" {
		g, rawJSON, err = ReadSnapshot(rc, fp)
		return g, rawJSON, nil, err
	}
	cr := &countingReader{r: rc}
	decoded := false
	storeErr = publishSnapshot(cacheDir, path, func(tmp *os.File) error {
		if _, err := io.Copy(tmp, cr); err != nil {
			return err
		}
		if _, err := tmp.Seek(0, io.SeekStart); err != nil {
			return err
		}
		var derr error
		g, rawJSON, derr = ReadSnapshot(tmp, fp)
		decoded = derr == nil
		return derr
	})
	switch {
	case storeErr == nil:
		return g, rawJSON, nil, nil
	case decoded:
		// The graph came off the temp file intact; only the publish
		// tail (sync, close, rename) failed.
		return g, rawJSON, storeErr, nil
	case cr.n == 0:
		// Staging failed before any byte was consumed (unwritable or
		// full cache dir): the stream is untouched, decode it
		// directly and serve uncached.
		g, rawJSON, err = ReadSnapshot(cr, fp)
		return g, rawJSON, storeErr, err
	default:
		// The stream is partially consumed and nothing was decoded —
		// a transfer or mid-copy staging error; the fetch is unusable.
		return nil, 0, nil, storeErr
	}
}

// countingReader counts consumed bytes so fetchSnapshot knows whether
// a failed staging attempt left the stream re-readable.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// publishSnapshot is the crash-safe publish sequence shared by store
// and fetch: a private .tmp- file in the artifact's own directory,
// filled by fill, fsynced, closed, and atomically renamed to path.
// Any failure removes the temp file, so nothing ever appears at path
// partially written — and concurrent publishers race benignly, since
// every writer of one content address produces identical bytes.
func publishSnapshot(dir, path string, fill func(tmp *os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := fill(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// staleTempGrace is how old an orphaned .tmp-* file must be before the
// sweep removes it. Generously longer than any plausible write: a
// concurrent writer's live temp file must never be swept from under
// it.
const staleTempGrace = time.Hour

// sweepStaleTemps removes temp files stranded by a crash between
// CreateTemp and Rename. Without it every crash leaks one temp file
// into the cache dir forever. Best-effort: sweep errors are ignored —
// the cache works fine with stray temps around, they just waste disk.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempGrace) //lint:gdb-allow wallclock janitorial cutoff for stale temp files, never enters an artifact
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		os.Remove(filepath.Join(dir, e.Name()))
	}
}

// storeSnapshot writes the artifact atomically via publishSnapshot, so
// readers never observe a partial file at the final path.
func storeSnapshot(dir, path string, g *core.Graph, rawJSON int64, fp [32]byte) error {
	err := publishSnapshot(dir, path, func(tmp *os.File) error {
		return WriteSnapshot(tmp, g, rawJSON, fp)
	})
	if err != nil {
		return fmt.Errorf("datasets: cache %s: %w", path, err)
	}
	return nil
}

// WriteSnapshot serializes g as a snapshot artifact stamped with the
// given fingerprint, carrying the graph's GraphSON size alongside it.
// Encoding is deterministic: the same graph always produces the same
// bytes.
func WriteSnapshot(w io.Writer, g *core.Graph, rawJSON int64, fp [32]byte) error {
	_, err := w.Write(encodeSnapshot(g, rawJSON, fp))
	return err
}

// ReadSnapshot decodes a snapshot artifact from a stream, with the
// same verification chain openArtifact applies to files: magic,
// version, embedded fingerprint against want, claimed size against
// the bytes read, directory and per-section CRCs. It returns the
// graph and the GraphSON size the artifact carries.
func ReadSnapshot(r io.Reader, want [32]byte) (*core.Graph, int64, error) {
	// A corrupted size field must never OOM the process: read through
	// a limiter; parseArtifact then compares the claimed size against
	// what actually arrived.
	data, err := io.ReadAll(io.LimitReader(r, maxSnapshotFile))
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot truncated: %w", err)
	}
	v, err := parseArtifact(data, want)
	if err != nil {
		return nil, 0, err
	}
	return decodeGraph(v)
}
