// Package datasets generates the benchmark datasets of Table 3. The
// paper's real datasets (Yeast, MiCo, four Freebase samples) are not
// redistributable, so each is replaced by a deterministic synthetic
// generator matched to its reported characteristics: node/edge/label
// counts, degree skew, component structure, and property shapes. The
// ldbc dataset is generated directly (the paper, too, generates it with
// the LDBC tool rather than using real data).
//
// All generators are seeded and take a scale factor: 1.0 reproduces the
// paper's object counts, smaller values shrink node/edge counts
// proportionally while keeping label cardinality and skew — the
// *structural* properties that drive the engines apart — as close to
// the paper as the size allows.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Table3Row is a row of the paper's Table 3 (dataset characteristics).
type Table3Row struct {
	V          int     // |V|
	E          int     // |E|
	L          int     // |L| distinct edge labels
	Components int     // # connected components
	MaxComp    int     // size of the largest component
	Density    float64 // |E| / (|V|·(|V|−1))
	Modularity float64 // modularity of the component partition
	AvgDeg     float64 // average degree 2|E|/|V|
	MaxDeg     int     // maximum degree
	Diameter   int     // graph diameter (of the largest component)
}

// Spec describes one benchmark dataset.
type Spec struct {
	Name  string
	Desc  string
	Paper Table3Row // the characteristics reported in Table 3
	// Seed is the generator's fixed seed. It never varies at run time;
	// it is exposed so the snapshot cache fingerprint (snapshot.go)
	// covers it — editing a generator's seed constant must invalidate
	// its cached artifacts exactly like a code change would.
	Seed int64
	// Generate builds the dataset at the given scale (1.0 = paper size).
	Generate func(scale float64) *core.Graph
}

// Specs returns all datasets in Table 3 order.
func Specs() []Spec {
	return []Spec{
		{
			Name: "yeast",
			Desc: "protein–protein interaction network (S. cerevisiae)",
			Paper: Table3Row{V: 2_300, E: 7_100, L: 167, Components: 101, MaxComp: 2_200,
				Density: 1.34e-3, Modularity: 3.66e-2, AvgDeg: 6.1, MaxDeg: 66, Diameter: 11},
			Seed:     yeastSeed,
			Generate: Yeast,
		},
		{
			Name: "mico",
			Desc: "co-authorship network (Microsoft Academic, CS)",
			Paper: Table3Row{V: 100_000, E: 1_100_000, L: 106, Components: 1_300, MaxComp: 93_000,
				Density: 1.10e-6, Modularity: 5.45e-3, AvgDeg: 21.6, MaxDeg: 1_300, Diameter: 23},
			Seed:     micoSeed,
			Generate: MiCo,
		},
		{
			Name: "frb-o",
			Desc: "Freebase subset: organization/business/government/… topics",
			Paper: Table3Row{V: 1_900_000, E: 4_300_000, L: 424, Components: 133_000, MaxComp: 1_600_000,
				Density: 1.19e-6, Modularity: 9.82e-1, AvgDeg: 4.3, MaxDeg: 92_000, Diameter: 48},
			Seed:     frbO.seed,
			Generate: func(s float64) *core.Graph { return freebase(frbO, s) },
		},
		{
			Name: "frb-s",
			Desc: "Freebase 0.1% random edge sample",
			Paper: Table3Row{V: 500_000, E: 300_000, L: 1_814, Components: 160_000, MaxComp: 20_000,
				Density: 1.20e-6, Modularity: 9.91e-1, AvgDeg: 1.3, MaxDeg: 13_000, Diameter: 4},
			Seed:     frbS.seed,
			Generate: func(s float64) *core.Graph { return freebase(frbS, s) },
		},
		{
			Name: "frb-m",
			Desc: "Freebase 1% random edge sample",
			Paper: Table3Row{V: 4_000_000, E: 3_100_000, L: 2_912, Components: 1_100_000, MaxComp: 1_400_000,
				Density: 1.94e-7, Modularity: 7.97e-1, AvgDeg: 1.5, MaxDeg: 139_000, Diameter: 37},
			Seed:     frbM.seed,
			Generate: func(s float64) *core.Graph { return freebase(frbM, s) },
		},
		{
			Name: "frb-l",
			Desc: "Freebase 10% random edge sample",
			Paper: Table3Row{V: 28_400_000, E: 31_200_000, L: 3_821, Components: 2_000_000, MaxComp: 23_000_000,
				Density: 3.87e-8, Modularity: 2.12e-1, AvgDeg: 2.2, MaxDeg: 1_400_000, Diameter: 33},
			Seed:     frbL.seed,
			Generate: func(s float64) *core.Graph { return freebase(frbL, s) },
		},
		{
			Name: "ldbc",
			Desc: "LDBC SNB-style social network (1000 users, 3 years)",
			Paper: Table3Row{V: 184_000, E: 1_500_000, L: 15, Components: 1, MaxComp: 184_000,
				Density: 4.43e-5, Modularity: 0, AvgDeg: 16.6, MaxDeg: 48_000, Diameter: 10},
			Seed:     ldbcSeed,
			Generate: LDBC,
		},
	}
}

// ByName returns the named dataset spec, or nil.
func ByName(name string) *Spec {
	for _, s := range Specs() {
		if s.Name == name {
			s := s
			return &s
		}
	}
	return nil
}

// Names returns dataset names in Table 3 order.
func Names() []string {
	var out []string
	for _, s := range Specs() {
		out = append(out, s.Name)
	}
	return out
}

// scaled returns max(lo, round(n*scale)).
func scaled(n int, scale float64, lo int) int {
	v := int(math.Round(float64(n) * scale))
	if v < lo {
		return lo
	}
	return v
}

// powerLawIndex draws an index in [0, n) with a hub bias: index 0 is
// the biggest hub. alpha around 0.6–0.8 produces Freebase-like skew.
func powerLawIndex(rng *rand.Rand, n int, alpha float64) int {
	u := rng.Float64()
	i := int(math.Pow(u, 1/(1-alpha)) * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// zipfLabel draws one of n labels with Zipfian frequency, named
// prefix0..prefix<n-1>.
func zipfLabel(rng *rand.Rand, zipf *rand.Zipf, prefix string, n int) string {
	i := int(zipf.Uint64())
	if i >= n {
		i = n - 1
	}
	return fmt.Sprintf("%s%d", prefix, i)
}
