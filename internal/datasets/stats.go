package datasets

import (
	"sync/atomic"

	"repro/internal/core"
)

// Stats computes the Table 3 characteristics of a dataset graph:
// connected components (treating edges as undirected, as the paper's
// component and diameter figures do), density, modularity of the
// component partition, degree statistics, and a double-sweep BFS
// estimate of the largest component's diameter.
//
// It works off the graph's shared CSR snapshot (core.Graph.Snapshot)
// and runs the sweeps on GenWorkers goroutines; see StatsCSR for the
// determinism contract.
func Stats(g *core.Graph) Table3Row { return StatsCSR(g.Snapshot(), 0) }

// StatsCSR computes the Table 3 row purely from a CSR snapshot — it
// never touches the owning graph, so it also serves snapshots decoded
// straight from a cache artifact (AcquireCSR). workers bounds the
// goroutines; workers <= 0 means GenWorkers.
//
// The row is byte-identical for every worker count, including one:
// integer reductions (component count, sizes, degree sums, maxima)
// are order-free; the floating-point modularity sum combines fixed
// shardSize partials in shard order; and every selection (largest
// component, farthest BFS vertex) tie-breaks on the smallest vertex
// index. Union-find roots are canonical too — a root only ever links
// to a smaller root, so each component's root is its minimum vertex
// regardless of execution order.
func StatsCSR(c *core.CSR, workers int) Table3Row {
	n := c.NumVertices()
	m := c.NumEdges()
	row := Table3Row{V: n, E: m, L: len(c.Labels)}
	if n == 0 {
		return row
	}

	// Components: lock-free union-find over the undirected adjacency.
	// Each undirected edge is processed once (by its smaller endpoint's
	// shard); links always point from the larger root to the smaller.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for {
			p := atomic.LoadInt32(&parent[x])
			if p == x {
				return x
			}
			if gp := atomic.LoadInt32(&parent[p]); gp != p {
				atomic.CompareAndSwapInt32(&parent[x], p, gp) // path halving
			}
			x = p
		}
	}
	forShardsN(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			for _, w := range c.Und(v) {
				if int(w) <= v {
					continue
				}
				a, b := int32(v), w
				for {
					ra, rb := find(a), find(b)
					if ra == rb {
						break
					}
					if ra > rb {
						ra, rb = rb, ra
					}
					if atomic.CompareAndSwapInt32(&parent[rb], rb, ra) {
						break
					}
				}
			}
		}
	})
	// Full compression: after this barrier parent[v] is the canonical
	// root and can be read without atomics.
	forShardsN(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			atomic.StoreInt32(&parent[v], find(int32(v)))
		}
	})

	// Component sizes and degree sums, indexed by root. Integer atomic
	// adds commute, so the totals are exact for any schedule.
	size := make([]int32, n)
	deg := make([]int64, n)
	forShardsN(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			r := parent[v]
			atomic.AddInt32(&size[r], 1)
			atomic.AddInt64(&deg[r], int64(c.Degree(v)))
		}
	})

	// Component count, largest component, max degree: per-shard bests
	// merged in shard order with strict comparisons, so ties resolve to
	// the smallest root/vertex.
	nsh := shardCount(n)
	type shardBest struct {
		comps            int
		maxSize, maxRoot int32
		maxDeg           int32
	}
	bests := make([]shardBest, nsh)
	forShardsN(n, workers, func(s, lo, hi int) {
		p := shardBest{maxRoot: -1}
		for v := lo; v < hi; v++ {
			if int(parent[v]) == v {
				p.comps++
				if size[v] > p.maxSize {
					p.maxSize, p.maxRoot = size[v], int32(v)
				}
			}
			if d := int32(c.Degree(v)); d > p.maxDeg {
				p.maxDeg = d
			}
		}
		bests[s] = p
	})
	maxRoot, maxSize := int32(-1), int32(0)
	for _, p := range bests {
		row.Components += p.comps
		if int(p.maxDeg) > row.MaxDeg {
			row.MaxDeg = int(p.maxDeg)
		}
		if p.maxRoot >= 0 && (maxRoot < 0 || p.maxSize > maxSize) {
			maxSize, maxRoot = p.maxSize, p.maxRoot
		}
	}
	row.MaxComp = int(maxSize)

	// Density of the directed graph.
	if n > 1 {
		row.Density = float64(m) / (float64(n) * float64(n-1))
	}

	// Modularity of the component partition:
	// Q = Σ_c [ e_c/m − (d_c/2m)² ]. With components as communities,
	// Σ e_c = m, so Q = 1 − Σ (d_c/2m)² — zero for a single component,
	// approaching 1 for many comparable fragments; this reproduces the
	// shape of the paper's modularity column. The float sum runs over
	// fixed shard partials in shard order (roots ascending within each),
	// never over a schedule-dependent order.
	if m > 0 {
		qpart := make([]float64, nsh)
		forShardsN(n, workers, func(s, lo, hi int) {
			sum := 0.0
			for v := lo; v < hi; v++ {
				if int(parent[v]) == v {
					frac := float64(deg[v]) / float64(2*m)
					sum += frac * frac
				}
			}
			qpart[s] = sum
		})
		sum := 0.0
		for _, q := range qpart {
			sum += q
		}
		row.Modularity = 1 - sum
	}

	row.AvgDeg = 2 * float64(m) / float64(n)

	// Diameter estimate: double-sweep BFS on the largest component,
	// seeded at its root — which, being the component's minimum vertex,
	// is the same seed the sequential scan used to find (exact
	// diameters are infeasible at these sizes; the double sweep is a
	// standard tight lower bound). Both sweeps share one distance array
	// and one frontier buffer pair.
	if m > 0 {
		b := newBFSState(n)
		far, _ := b.farthest(c, int(maxRoot), workers)
		_, dist := b.farthest(c, far, workers)
		row.Diameter = dist
	}
	return row
}

// bfsState holds the buffers of a BFS sweep so the double sweep (and
// any further sweeps) reuses one allocation set instead of paying it
// per call.
type bfsState struct {
	dist     []int32
	frontier []int32
	next     []int32
	buckets  [][]int32 // per-shard discovery lists, pooled across levels
}

func newBFSState(n int) *bfsState {
	return &bfsState{dist: make([]int32, n)}
}

// farthest runs a level-synchronous parallel BFS over the undirected
// adjacency from start and returns the farthest vertex plus its
// distance. Distances are exact (a vertex is claimed for level d by a
// CompareAndSwap that only ever fires at its true BFS depth), so the
// result — max distance, tie-broken to the smallest vertex index — is
// deterministic for any worker count even though the frontier
// permutation is not.
func (b *bfsState) farthest(c *core.CSR, start, workers int) (int, int) {
	n := c.NumVertices()
	forShardsN(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			b.dist[i] = -1
		}
	})
	b.dist[start] = 0
	b.frontier = append(b.frontier[:0], int32(start))

	for level := int32(1); len(b.frontier) > 0; level++ {
		fsh := shardCount(len(b.frontier))
		for len(b.buckets) < fsh {
			b.buckets = append(b.buckets, nil)
		}
		forShardsN(len(b.frontier), workers, func(s, lo, hi int) {
			out := b.buckets[s][:0]
			for _, v := range b.frontier[lo:hi] {
				for _, w := range c.Und(int(v)) {
					if atomic.LoadInt32(&b.dist[w]) >= 0 {
						continue
					}
					if atomic.CompareAndSwapInt32(&b.dist[w], -1, level) {
						out = append(out, w)
					}
				}
			}
			b.buckets[s] = out
		})
		b.next = b.next[:0]
		for s := 0; s < fsh; s++ {
			b.next = append(b.next, b.buckets[s]...)
		}
		b.frontier, b.next = b.next, b.frontier
	}

	// Deterministic farthest reduce: per-shard (max dist, min vertex)
	// merged in shard order.
	type farBest struct{ v, d int32 }
	bests := make([]farBest, shardCount(n))
	forShardsN(n, workers, func(s, lo, hi int) {
		best := farBest{int32(lo), -1}
		for v := lo; v < hi; v++ {
			if d := b.dist[v]; d > best.d {
				best = farBest{int32(v), d}
			}
		}
		bests[s] = best
	})
	far := farBest{int32(start), 0}
	for _, p := range bests {
		if p.d > far.d {
			far = p
		}
	}
	return int(far.v), int(far.d)
}

// PickRandom draws deterministic benchmark parameters from a dataset
// graph: the harness uses it so the same logical objects are used on
// every engine (Section 5's fairness requirement). It prefers vertices
// that have edges, since most per-vertex queries are uninteresting on
// isolated vertices.
type Picks struct {
	Vertices []int // dataset vertex indexes with degree > 0
	Edges    []int // dataset edge indexes
}

// Pick samples k connected vertices and k edges with the given seed.
// Degrees come from the graph's shared CSR snapshot, so repeated calls
// (one per engine cell) no longer rebuild a degree array each time.
func Pick(g *core.Graph, seed int64, k int) Picks {
	snap := g.Snapshot()
	var connected []int
	for v, n := 0, g.NumVertices(); v < n; v++ {
		if snap.Degree(v) > 0 {
			connected = append(connected, v)
		}
	}
	rng := newSplitMix(seed)
	p := Picks{}
	for i := 0; i < k && len(connected) > 0; i++ {
		p.Vertices = append(p.Vertices, connected[int(rng.next()%uint64(len(connected)))])
	}
	for i := 0; i < k && g.NumEdges() > 0; i++ {
		p.Edges = append(p.Edges, int(rng.next()%uint64(g.NumEdges())))
	}
	return p
}

// splitMix is a tiny deterministic PRNG, independent of math/rand's
// stream so picks stay stable even if generators change.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{s: uint64(seed)} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
