package datasets

import (
	"repro/internal/core"
)

// Stats computes the Table 3 characteristics of a dataset graph:
// connected components (treating edges as undirected, as the paper's
// component and diameter figures do), density, modularity of the
// component partition, degree statistics, and a double-sweep BFS
// estimate of the largest component's diameter.
//
// It works off the graph's shared CSR snapshot (core.Graph.Snapshot):
// labels, degrees and the undirected adjacency are read from the
// one-time snapshot instead of being rebuilt per call, and the BFS
// uses a flat distance array — the per-call Adjacency()/Labels()
// allocations of the original implementation are gone.
func Stats(g *core.Graph) Table3Row {
	n := g.NumVertices()
	m := g.NumEdges()
	snap := g.Snapshot()
	row := Table3Row{V: n, E: m, L: len(snap.Labels)}
	if n == 0 {
		return row
	}

	// Union-find over undirected edges.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := range g.EdgeL {
		union(int32(g.EdgeL[i].Src), int32(g.EdgeL[i].Dst))
	}
	compSize := make(map[int32]int)
	compEdges := make(map[int32]int)
	compDeg := make(map[int32]int)
	for i := 0; i < n; i++ {
		compSize[find(int32(i))]++
	}
	for i := range g.EdgeL {
		c := find(int32(g.EdgeL[i].Src))
		compEdges[c]++
		compDeg[c] += 2
	}
	row.Components = len(compSize)
	var maxComp int32
	for c, s := range compSize {
		if s > compSize[maxComp] || row.MaxComp == 0 {
			maxComp = c
			row.MaxComp = s
		}
	}

	// Density of the directed graph.
	if n > 1 {
		row.Density = float64(m) / (float64(n) * float64(n-1))
	}

	// Modularity of the component partition:
	// Q = Σ_c [ e_c/m − (d_c/2m)² ]. With components as communities,
	// Σ e_c = m, so Q = 1 − Σ (d_c/2m)² — zero for a single component,
	// approaching 1 for many comparable fragments; this reproduces the
	// shape of the paper's modularity column.
	if m > 0 {
		sum := 0.0
		for _, d := range compDeg {
			frac := float64(d) / float64(2*m)
			sum += frac * frac
		}
		row.Modularity = 1 - sum
	}

	// Degrees (undirected, as in Table 3's Avg = 2|E|/|V|).
	for v := 0; v < n; v++ {
		if d := snap.Degree(v); d > row.MaxDeg {
			row.MaxDeg = d
		}
	}
	row.AvgDeg = 2 * float64(m) / float64(n)

	// Diameter estimate: double-sweep BFS on the largest component
	// (exact diameters are infeasible at these sizes; the double sweep
	// is a standard tight lower bound).
	if m > 0 {
		var seed int
		for i := 0; i < n; i++ {
			if find(int32(i)) == maxComp {
				seed = i
				break
			}
		}
		far, _ := bfsFarthest(snap, seed)
		far2, dist := bfsFarthest(snap, far)
		_ = far2
		row.Diameter = dist
	}
	return row
}

// bfsFarthest returns the vertex farthest from start and its distance,
// walking the CSR snapshot's undirected adjacency with a flat distance
// array.
func bfsFarthest(snap *core.CSR, start int) (int, int) {
	dist := make([]int32, snap.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	frontier := []int32{int32(start)}
	farNode, farDist := int32(start), int32(0)
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			d := dist[v] + 1
			for _, w := range snap.Und(int(v)) {
				if dist[w] >= 0 {
					continue
				}
				dist[w] = d
				if d > farDist {
					farNode, farDist = w, d
				}
				next = append(next, w)
			}
		}
		frontier = next
	}
	return int(farNode), int(farDist)
}

// PickRandom draws deterministic benchmark parameters from a dataset
// graph: the harness uses it so the same logical objects are used on
// every engine (Section 5's fairness requirement). It prefers vertices
// that have edges, since most per-vertex queries are uninteresting on
// isolated vertices.
type Picks struct {
	Vertices []int // dataset vertex indexes with degree > 0
	Edges    []int // dataset edge indexes
}

// Pick samples k connected vertices and k edges with the given seed.
// Degrees come from the graph's shared CSR snapshot, so repeated calls
// (one per engine cell) no longer rebuild a degree array each time.
func Pick(g *core.Graph, seed int64, k int) Picks {
	snap := g.Snapshot()
	var connected []int
	for v, n := 0, g.NumVertices(); v < n; v++ {
		if snap.Degree(v) > 0 {
			connected = append(connected, v)
		}
	}
	rng := newSplitMix(seed)
	p := Picks{}
	for i := 0; i < k && len(connected) > 0; i++ {
		p.Vertices = append(p.Vertices, connected[int(rng.next()%uint64(len(connected)))])
	}
	for i := 0; i < k && g.NumEdges() > 0; i++ {
		p.Edges = append(p.Edges, int(rng.next()%uint64(g.NumEdges())))
	}
	return p
}

// splitMix is a tiny deterministic PRNG, independent of math/rand's
// stream so picks stay stable even if generators change.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{s: uint64(seed)} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
