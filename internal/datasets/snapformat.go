package datasets

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/mmapfile"
)

// This file implements snapshot format v2: an mmap-ready sectioned
// artifact. Where v1 was one varint-packed payload that had to be
// decoded front to back, v2 lays the graph out as individually CRC'd,
// 8-byte-aligned sections behind a directory, so a memory-mapped (or
// heap-read) artifact can hand core.CSR its arrays without decoding
// and a CSR-only open touches only the sections it needs.
//
// Layout (all header/directory fields big-endian):
//
//	magic    "GSNP"                          4 bytes
//	version  2                               1 byte
//	fp       snapshot fingerprint            32 bytes
//	fileSize total artifact length           8 bytes
//	nsec     section count                   4 bytes
//	directory: nsec entries of
//	    id   section identifier             4 bytes
//	    off  offset from file start         8 bytes
//	    len  section length                 8 bytes
//	    crc  CRC-32C of the section bytes   4 bytes
//	dirCRC   CRC-32C of everything above    4 bytes
//	zero padding to the first 8-aligned offset
//	sections, each starting 8-aligned, zero-padded between
//
// The magic/version/fingerprint prefix matches v1 byte for byte, so
// either version's reader rejects the other's artifacts with a clear
// version error — which is what lets Acquire heal a v1 artifact in
// place (the fingerprint, and so the path, no longer encodes the
// format version).
//
// Sections:
//
//	meta      varints: rawJSON, V, E, L, VPropTotal, EPropTotal
//	labels    varint count, per-label varint length, then one blob
//	outOff/inOff/undOff   CSR degree prefix sums, []int32 LE
//	undAdj                undirected adjacency, []int32 LE
//	labelIx/labelOff/labelAdj  per-edge label ids and the per-label
//	                           CSR slices, []int32 LE
//	edgeSrc/edgeDst       edge endpoint columns, []int32 LE
//	strtab    varint count, per-string varint length, then one blob
//	vprops/eprops   the v1 sharded property encoding: global sorted
//	                column-key list (string-table ids), then one
//	                length-prefixed block per shardSize-sized range
//	                with sparse delta-encoded (index, value) entries
//	                and the range's empty-but-non-nil Props indexes
//
// On a little-endian host with an aligned base (a mapping always
// qualifies; file offsets are 8-aligned and mappings are page-aligned)
// every []int32 section aliases the artifact bytes directly via
// mmapfile.Int32s, and both string blobs alias via mmapfile.String —
// decode allocates the Graph spine and property maps, nothing else.
// Everything aliased is read-only; the mapalias analyzer (gdb-lint)
// machine-checks that in this package. Hosts or buffers that cannot
// alias fall back to copying decode of the same bytes, so mapped and
// heap opens are value-identical by construction.
//
// Values in property blocks carry a one-byte kind tag; strings are
// table ids, ints are zigzag varints, floats 8 raw bytes, bools one
// byte — unchanged from v1, as is the sharding: blocks cover disjoint
// ranges, so decode fans out across the generation worker pool.

const (
	snapshotMagic   = "GSNP"
	snapshotVersion = 2
	// snapshotHeaderLen = magic + version + fingerprint + fileSize +
	// section count — the fixed prefix before the directory (the same
	// 49 bytes the v1 header occupied).
	snapshotHeaderLen = 4 + 1 + 32 + 8 + 4
	sectionEntryLen   = 4 + 8 + 8 + 4
	// maxSnapshotFile caps how large an artifact a header can claim —
	// far above any real dataset, low enough that a corrupt length
	// field cannot OOM the process.
	maxSnapshotFile = 1 << 40
	// maxSections bounds the directory: the format defines 14 section
	// ids, so a directory claiming many more is corrupt, and the bound
	// keeps a hostile header from sizing a huge directory allocation.
	maxSections = 64
)

// Section identifiers. The writer emits sections in this order; the
// reader goes through the directory and does not care.
const (
	secMeta = iota + 1
	secLabels
	secOutOff
	secInOff
	secUndOff
	secUndAdj
	secLabelIx
	secLabelOff
	secLabelAdj
	secEdgeSrc
	secEdgeDst
	secStrTab
	secVProps
	secEProps
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var errSnapMalformed = errors.New("snapshot payload malformed")

// --- encoding ---

// stringTable interns strings during encoding.
type stringTable struct {
	ids  map[string]uint64
	list []string
}

func (t *stringTable) id(s string) uint64 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := uint64(len(t.list))
	t.ids[s] = id
	t.list = append(t.list, s)
	return id
}

// snapShards returns the number of shard blocks covering n objects —
// the same arithmetic forShards uses (shard.go), so parallel decode
// reuses the generation worker pool with matching ranges.
func snapShards(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + shardSize - 1) / shardSize
}

// Value kind tags of the snapshot encoding (distinct from enc's
// order-preserving tags: snapshots optimize for density, not order).
const (
	snapNil    = 0
	snapString = 1
	snapInt    = 2
	snapFloat  = 3
	snapBool   = 4
)

func appendValue(b []byte, v core.Value, strs *stringTable) []byte {
	switch v.Kind() {
	case core.KindString:
		b = append(b, snapString)
		return enc.Uvarint(b, strs.id(v.Str()))
	case core.KindInt:
		b = append(b, snapInt)
		return enc.Uvarint(b, enc.Zigzag(v.Int()))
	case core.KindFloat:
		b = append(b, snapFloat)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(v.Float()))
	case core.KindBool:
		if v.Bool() {
			return append(b, snapBool, 1)
		}
		return append(b, snapBool, 0)
	default:
		return append(b, snapNil)
	}
}

func sortedPropKeys(count int, props func(int) core.Props) []string {
	seen := make(map[string]bool)
	var keys []string
	for i := 0; i < count; i++ {
		for k := range props(i) {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// encodeProps serializes one property table in the sharded sparse
// encoding shared with v1 (see the section list above).
func encodeProps(strs *stringTable, count int, props func(int) core.Props) []byte {
	keys := sortedPropKeys(count, props)
	body := enc.Uvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		body = enc.Uvarint(body, strs.id(k))
	}
	for lo := 0; lo < count; lo += shardSize {
		hi := lo + shardSize
		if hi > count {
			hi = count
		}
		var blk []byte
		for _, k := range keys {
			cnt := 0
			for i := lo; i < hi; i++ {
				if _, ok := props(i)[k]; ok {
					cnt++
				}
			}
			blk = enc.Uvarint(blk, uint64(cnt))
			prev := lo
			for i := lo; i < hi; i++ {
				if v, ok := props(i)[k]; ok {
					blk = enc.Uvarint(blk, uint64(i-prev))
					prev = i
					blk = appendValue(blk, v, strs)
				}
			}
		}
		cnt := 0
		for i := lo; i < hi; i++ {
			if p := props(i); p != nil && len(p) == 0 {
				cnt++
			}
		}
		blk = enc.Uvarint(blk, uint64(cnt))
		prev := lo
		for i := lo; i < hi; i++ {
			if p := props(i); p != nil && len(p) == 0 {
				blk = enc.Uvarint(blk, uint64(i-prev))
				prev = i
			}
		}
		body = enc.Uvarint(body, uint64(len(blk)))
		body = append(body, blk...)
	}
	return body
}

// encodeInt32s serializes a []int32 little-endian — the byte order
// mmapfile.Int32s can alias on common hardware.
func encodeInt32s(s []int32) []byte {
	out := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// encodeStringBlob serializes a string list as varint count, one
// varint length per string, then all bytes in one blob — so a reader
// can alias every string out of the contiguous blob region.
func encodeStringBlob(list []string) []byte {
	out := enc.Uvarint(nil, uint64(len(list)))
	for _, s := range list {
		out = enc.Uvarint(out, uint64(len(s)))
	}
	for _, s := range list {
		out = append(out, s...)
	}
	return out
}

// encodeSnapshot builds the complete v2 artifact. Encoding is
// deterministic: the same graph always produces the same bytes.
func encodeSnapshot(g *core.Graph, rawJSON int64, fp [32]byte) []byte {
	snap := g.Snapshot()
	n, m := snap.NumVertices(), snap.NumEdges()

	var meta []byte
	meta = enc.Uvarint(meta, uint64(rawJSON))
	meta = enc.Uvarint(meta, uint64(n))
	meta = enc.Uvarint(meta, uint64(m))
	meta = enc.Uvarint(meta, uint64(len(snap.Labels)))
	meta = enc.Uvarint(meta, uint64(snap.VPropTotal))
	meta = enc.Uvarint(meta, uint64(snap.EPropTotal))

	edgeSrc := make([]int32, m)
	edgeDst := make([]int32, m)
	for i := range g.EdgeL {
		edgeSrc[i] = int32(g.EdgeL[i].Src)
		edgeDst[i] = int32(g.EdgeL[i].Dst)
	}

	// The property sections populate the string table, so they are
	// encoded before it is serialized.
	strs := &stringTable{ids: make(map[string]uint64)}
	vprops := encodeProps(strs, n, func(i int) core.Props { return g.VProps[i] })
	eprops := encodeProps(strs, m, func(i int) core.Props { return g.EdgeL[i].Props })

	type section struct {
		id   uint32
		body []byte
	}
	sections := []section{
		{secMeta, meta},
		{secLabels, encodeStringBlob(snap.Labels)},
		{secOutOff, encodeInt32s(snap.OutOff)},
		{secInOff, encodeInt32s(snap.InOff)},
		{secUndOff, encodeInt32s(snap.UndOff)},
		{secUndAdj, encodeInt32s(snap.UndAdj)},
		{secLabelIx, encodeInt32s(snap.LabelIx)},
		{secLabelOff, encodeInt32s(snap.LabelOff)},
		{secLabelAdj, encodeInt32s(snap.LabelAdj)},
		{secEdgeSrc, encodeInt32s(edgeSrc)},
		{secEdgeDst, encodeInt32s(edgeDst)},
		{secStrTab, encodeStringBlob(strs.list)},
		{secVProps, vprops},
		{secEProps, eprops},
	}

	dirEnd := snapshotHeaderLen + len(sections)*sectionEntryLen
	off := align8(dirEnd + 4)
	type placed struct {
		section
		off int
	}
	laid := make([]placed, len(sections))
	for i, s := range sections {
		laid[i] = placed{s, off}
		off = align8(off + len(s.body))
	}
	fileSize := laid[len(laid)-1].off + len(laid[len(laid)-1].section.body)

	out := make([]byte, 0, fileSize)
	out = append(out, snapshotMagic...)
	out = append(out, snapshotVersion)
	out = append(out, fp[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(fileSize))
	out = binary.BigEndian.AppendUint32(out, uint32(len(sections)))
	for _, s := range laid {
		out = binary.BigEndian.AppendUint32(out, s.id)
		out = binary.BigEndian.AppendUint64(out, uint64(s.off))
		out = binary.BigEndian.AppendUint64(out, uint64(len(s.body)))
		out = binary.BigEndian.AppendUint32(out, crc32.Checksum(s.body, crcTable))
	}
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
	for _, s := range laid {
		for len(out) < s.off {
			out = append(out, 0)
		}
		out = append(out, s.body...)
	}
	return out
}

func align8(n int) int { return (n + 7) &^ 7 }

// --- decoding ---

// artifactView is a parsed v2 artifact: the verified header and
// directory over the raw bytes. Section contents are CRC-checked
// lazily, on access — a CSR-only open never pays for the property
// sections it skips.
type artifactView struct {
	data []byte
	dir  []dirEntry
}

type dirEntry struct {
	id       uint32
	off, ln  uint64
	checksum uint32
}

// parseArtifact verifies, in order: magic and version, the embedded
// fingerprint against want (identity — a changed scale, seed or
// generator version must never be served), the claimed file size
// against the actual bytes (truncation), and the directory CRC. The
// section entries themselves are bounds- and alignment-checked; their
// contents are verified on access.
func parseArtifact(data []byte, want [32]byte) (*artifactView, error) {
	if len(data) < snapshotHeaderLen {
		return nil, fmt.Errorf("snapshot truncated: %d header bytes of %d", len(data), snapshotHeaderLen)
	}
	if string(data[:4]) != snapshotMagic {
		return nil, errors.New("not a dataset snapshot (bad magic)")
	}
	if data[4] != snapshotVersion {
		return nil, fmt.Errorf("snapshot format v%d, want v%d", data[4], snapshotVersion)
	}
	var got [32]byte
	copy(got[:], data[5:37])
	if got != want {
		return nil, fmt.Errorf("snapshot fingerprint mismatch (artifact %x…, want %x…): dataset name, scale, seed or generator version differ", got[:6], want[:6])
	}
	fileSize := binary.BigEndian.Uint64(data[37:45])
	if fileSize > maxSnapshotFile {
		return nil, fmt.Errorf("snapshot file size %d implausible", fileSize)
	}
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("snapshot truncated: %d of %d bytes", len(data), fileSize)
	}
	nsec := binary.BigEndian.Uint32(data[45:49])
	if nsec > maxSections {
		return nil, fmt.Errorf("snapshot section count %d implausible", nsec)
	}
	dirEnd := snapshotHeaderLen + int(nsec)*sectionEntryLen
	if dirEnd+4 > len(data) {
		return nil, errors.New("snapshot truncated: directory cut short")
	}
	if crc := crc32.Checksum(data[:dirEnd], crcTable); crc != binary.BigEndian.Uint32(data[dirEnd:dirEnd+4]) {
		return nil, errors.New("snapshot directory CRC mismatch")
	}
	v := &artifactView{data: data, dir: make([]dirEntry, nsec)}
	for i := range v.dir {
		e := data[snapshotHeaderLen+i*sectionEntryLen:]
		d := dirEntry{
			id:       binary.BigEndian.Uint32(e[0:4]),
			off:      binary.BigEndian.Uint64(e[4:12]),
			ln:       binary.BigEndian.Uint64(e[12:20]),
			checksum: binary.BigEndian.Uint32(e[20:24]),
		}
		if d.off%8 != 0 || d.off > uint64(len(data)) || d.ln > uint64(len(data))-d.off {
			return nil, fmt.Errorf("snapshot section %d out of bounds", d.id)
		}
		v.dir[i] = d
	}
	return v, nil
}

// section returns the verified bytes of one section: located through
// the directory and CRC-checked. The returned slice aliases the
// artifact bytes — read-only, like everything derived from a view.
func (v *artifactView) section(id uint32) ([]byte, error) {
	for _, d := range v.dir {
		if d.id != id {
			continue
		}
		b := v.data[d.off : d.off+d.ln]
		if crc32.Checksum(b, crcTable) != d.checksum {
			return nil, fmt.Errorf("snapshot section %d CRC mismatch", id)
		}
		return b, nil
	}
	return nil, fmt.Errorf("snapshot section %d missing", id)
}

// int32Section returns one []int32 section of exactly want values:
// aliased from the artifact bytes when the host and base address
// allow, decoded by copy otherwise. Either path yields identical
// values.
func (v *artifactView) int32Section(id uint32, want int) ([]int32, error) {
	b, err := v.section(id)
	if err != nil {
		return nil, err
	}
	if len(b) != 4*want {
		return nil, errSnapMalformed
	}
	if s, ok := mmapfile.Int32s(b); ok {
		return s, nil
	}
	out := make([]int32, want)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// stringSection decodes one string-blob section (labels, strtab). The
// strings alias the artifact bytes: one unsafe view over the blob,
// sub-sliced per string — decode allocates the []string spine only.
func (v *artifactView) stringSection(id uint32) ([]string, error) {
	b, err := v.section(id)
	if err != nil {
		return nil, err
	}
	r := &snapReader{b: b}
	count := r.count(len(r.b))
	lens := make([]int, count)
	total := 0
	for i := range lens {
		l := r.count(len(r.b))
		lens[i] = l
		total += l
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != total {
		return nil, errSnapMalformed
	}
	blob := mmapfile.String(r.b)
	out := make([]string, count)
	off := 0
	for i, l := range lens {
		out[i] = blob[off : off+l]
		off += l
	}
	return out, nil
}

// snapMeta is the decoded meta section.
type snapMeta struct {
	rawJSON        int64
	n, m, labels   int
	vPropT, ePropT int
}

func (v *artifactView) meta() (snapMeta, error) {
	b, err := v.section(secMeta)
	if err != nil {
		return snapMeta{}, err
	}
	r := &snapReader{b: b}
	raw := r.uvarint()
	// Every vertex and edge costs at least 4 bytes in its prefix-sum or
	// column section, so the artifact size bounds the counts — a tiny
	// corrupt-but-CRC-valid file fails here instead of attempting a
	// multi-gigabyte allocation. The exact section-length checks follow
	// in int32Section.
	maxObjects := len(v.data) / 4
	mt := snapMeta{
		rawJSON: int64(raw),
		n:       r.count(maxObjects),
		m:       r.count(maxObjects),
		labels:  r.count(maxObjects),
		vPropT:  r.count(len(v.data)),
		ePropT:  r.count(len(v.data)),
	}
	if r.err != nil {
		return snapMeta{}, r.err
	}
	if len(r.b) != 0 {
		return snapMeta{}, errSnapMalformed
	}
	return mt, nil
}

// decodeCSR reconstructs the CSR snapshot from the artifact without
// touching the string table or property sections — the O(touched)
// path behind AcquireCSR and warm mapped opens.
func decodeCSR(v *artifactView) (*core.CSR, int64, error) {
	mt, err := v.meta()
	if err != nil {
		return nil, 0, err
	}
	labels, err := v.stringSection(secLabels)
	if err != nil {
		return nil, 0, err
	}
	if len(labels) != mt.labels {
		return nil, 0, errSnapMalformed
	}
	c := &core.CSR{
		Labels:     labels,
		VPropTotal: mt.vPropT,
		EPropTotal: mt.ePropT,
	}
	load := func(dst *[]int32, id uint32, want int) {
		if err == nil {
			*dst, err = v.int32Section(id, want)
		}
	}
	load(&c.OutOff, secOutOff, mt.n+1)
	load(&c.InOff, secInOff, mt.n+1)
	load(&c.UndOff, secUndOff, mt.n+1)
	load(&c.UndAdj, secUndAdj, 2*mt.m)
	load(&c.LabelIx, secLabelIx, mt.m)
	load(&c.LabelOff, secLabelOff, mt.labels+1)
	load(&c.LabelAdj, secLabelAdj, mt.m)
	if err != nil {
		return nil, 0, err
	}
	if err := validateCSR(c, mt.n, mt.m); err != nil {
		return nil, 0, err
	}
	return c, mt.rawJSON, nil
}

// validateCSR bounds-checks a decoded CSR so a corrupt-but-CRC-valid
// artifact cannot push out-of-range indexes into traversals: prefix
// sums must rise monotonically to the expected totals, adjacency and
// slice entries must stay in range. O(n+m) scans, no allocation.
func validateCSR(c *core.CSR, n, m int) error {
	offs := func(off []int32, total int) bool {
		if off[0] != 0 || int(off[len(off)-1]) != total {
			return false
		}
		for i := 1; i < len(off); i++ {
			if off[i] < off[i-1] {
				return false
			}
		}
		return true
	}
	if !offs(c.OutOff, m) || !offs(c.InOff, m) || !offs(c.UndOff, 2*m) || !offs(c.LabelOff, m) {
		return errSnapMalformed
	}
	for _, w := range c.UndAdj {
		if w < 0 || int(w) >= n {
			return errSnapMalformed
		}
	}
	nl := int32(len(c.Labels))
	for _, l := range c.LabelIx {
		if l < 0 || l >= nl {
			return errSnapMalformed
		}
	}
	for _, e := range c.LabelAdj {
		if e < 0 || int(e) >= m {
			return errSnapMalformed
		}
	}
	return nil
}

// decodeGraph materializes the full Graph from the artifact: the CSR
// sections (adopted as the graph's snapshot, so no rebuild), the edge
// endpoint columns, and the sharded property sections decoded in
// parallel on the generation worker pool.
func decodeGraph(v *artifactView) (*core.Graph, int64, error) {
	c, rawJSON, err := decodeCSR(v)
	if err != nil {
		return nil, 0, err
	}
	n, m := c.NumVertices(), c.NumEdges()
	edgeSrc, err := v.int32Section(secEdgeSrc, m)
	if err != nil {
		return nil, 0, err
	}
	edgeDst, err := v.int32Section(secEdgeDst, m)
	if err != nil {
		return nil, 0, err
	}
	strs, err := v.stringSection(secStrTab)
	if err != nil {
		return nil, 0, err
	}

	g := &core.Graph{}
	if n > 0 {
		g.VProps = make([]core.Props, n)
	}
	if m > 0 {
		g.EdgeL = make([]core.EdgeRec, m)
	}
	edgeErrs := make([]error, snapShards(m))
	forShards(m, func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			s, d := edgeSrc[i], edgeDst[i]
			if s < 0 || int(s) >= n || d < 0 || int(d) >= n {
				edgeErrs[shard] = errSnapMalformed
				return
			}
			g.EdgeL[i].Src = int(s)
			g.EdgeL[i].Dst = int(d)
			g.EdgeL[i].Label = c.Labels[c.LabelIx[i]]
		}
	})
	if err := firstErr(edgeErrs); err != nil {
		return nil, 0, err
	}

	if err := decodePropSection(v, secVProps, strs, n,
		func(i int) core.Props { return g.VProps[i] },
		func(i int, p core.Props) { g.VProps[i] = p }); err != nil {
		return nil, 0, err
	}
	if err := decodePropSection(v, secEProps, strs, m,
		func(i int) core.Props { return g.EdgeL[i].Props },
		func(i int, p core.Props) { g.EdgeL[i].Props = p }); err != nil {
		return nil, 0, err
	}
	g.AdoptSnapshot(c)
	return g, rawJSON, nil
}

// decodePropSection reads one property section: the global column-key
// list, then the shard blocks, decoded in parallel — every block
// writes a disjoint range.
func decodePropSection(v *artifactView, id uint32, strs []string, count int, get func(int) core.Props, set func(int, core.Props)) error {
	b, err := v.section(id)
	if err != nil {
		return err
	}
	r := &snapReader{b: b}
	ncols := r.count(len(r.b))
	keys := make([]string, ncols)
	for i := range keys {
		kid := r.uvarint()
		if r.err == nil && kid >= uint64(len(strs)) {
			r.err = errSnapMalformed
		}
		if r.err != nil {
			return r.err
		}
		keys[i] = strs[kid]
	}
	blocks := r.cutBlocks(count)
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return errSnapMalformed
	}
	errs := make([]error, len(blocks))
	forShards(count, func(shard, lo, hi int) {
		errs[shard] = decodePropBlock(blocks[shard], keys, strs, lo, hi, get, set)
	})
	return firstErr(errs)
}

// snapReader is a bounds-checked cursor over a section payload; the
// first malformed read poisons it, so callers check err once at the
// end of a section instead of at every field.
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, rest, ok := enc.TakeUvarint(r.b)
	if !ok {
		r.err = errSnapMalformed
		return 0
	}
	r.b = rest
	return x
}

// count reads a length field that at most max items can follow.
func (r *snapReader) count(max int) int {
	x := r.uvarint()
	if r.err == nil && x > uint64(max) {
		r.err = errSnapMalformed
		return 0
	}
	return int(x)
}

func (r *snapReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.err = errSnapMalformed
		return nil
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b
}

// cutBlocks slices the length-prefixed shard blocks of one section.
func (r *snapReader) cutBlocks(count int) [][]byte {
	blocks := make([][]byte, snapShards(count))
	for s := range blocks {
		blocks[s] = r.bytes(r.count(len(r.b)))
	}
	return blocks
}

// parseValue decodes one tagged value from the front of b. ok is
// false on malformed or truncated input. It is a plain cursor with no
// per-call error-field traffic, which matters in the per-entry loop.
func parseValue(b []byte, strs []string) (core.Value, []byte, bool) {
	if len(b) == 0 {
		return core.Nil, b, false
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case snapNil:
		return core.Nil, b, true
	case snapString:
		id, sz := binary.Uvarint(b)
		if sz <= 0 || id >= uint64(len(strs)) {
			return core.Nil, b, false
		}
		return core.S(strs[id]), b[sz:], true
	case snapInt:
		x, sz := binary.Uvarint(b)
		if sz <= 0 {
			return core.Nil, b, false
		}
		return core.I(enc.Unzigzag(x)), b[sz:], true
	case snapFloat:
		if len(b) < 8 {
			return core.Nil, b, false
		}
		return core.F(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], true
	case snapBool:
		if len(b) < 1 {
			return core.Nil, b, false
		}
		return core.B(b[0] != 0), b[1:], true
	default:
		return core.Nil, b, false
	}
}

// decodePropBlock fills the [lo, hi) range of one property table from
// its shard block. get/set access the table (vertex or edge Props);
// maps are created lazily on the first key that lands on an index, so
// indexes without entries stay nil.
func decodePropBlock(blk []byte, keys, strs []string, lo, hi int, get func(int) core.Props, set func(int, core.Props)) error {
	b := blk
	for _, k := range keys {
		nent, sz := binary.Uvarint(b)
		if sz <= 0 || nent > uint64(hi-lo) {
			return errSnapMalformed
		}
		b = b[sz:]
		idx := lo
		for e := uint64(0); e < nent; e++ {
			d, sz := binary.Uvarint(b)
			// Validate the delta before the int conversion: a huge
			// uvarint must surface as a malformed artifact, never as a
			// wrapped-negative index.
			if sz <= 0 || d >= uint64(hi-lo) {
				return errSnapMalformed
			}
			b = b[sz:]
			idx += int(d)
			if idx >= hi {
				return errSnapMalformed
			}
			v, rest, ok := parseValue(b, strs)
			if !ok {
				return errSnapMalformed
			}
			b = rest
			p := get(idx)
			if p == nil {
				p = make(core.Props)
				set(idx, p)
			}
			p[k] = v
		}
	}
	nemp, sz := binary.Uvarint(b)
	if sz <= 0 || nemp > uint64(hi-lo) {
		return errSnapMalformed
	}
	b = b[sz:]
	idx := lo
	for e := uint64(0); e < nemp; e++ {
		d, sz := binary.Uvarint(b)
		if sz <= 0 || d >= uint64(hi-lo) {
			return errSnapMalformed
		}
		b = b[sz:]
		idx += int(d)
		if idx >= hi || get(idx) != nil {
			return errSnapMalformed // out of range, or empty-marked index also has entries
		}
		set(idx, core.Props{})
	}
	if len(b) != 0 {
		return errSnapMalformed
	}
	return nil
}

// firstErr folds per-shard decode errors.
func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
