package datasets

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/enc"
)

const snapTestScale = 0.001

// sameGraph compares two graphs for exact equality of contents,
// treating a nil and an empty slice as the same (a decoded empty graph
// need not reproduce the capacity hints of NewGraph).
func sameGraph(a, b *core.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if a.NumVertices() > 0 && !reflect.DeepEqual(a.VProps, b.VProps) {
		return false
	}
	return a.NumEdges() == 0 || reflect.DeepEqual(a.EdgeL, b.EdgeL)
}

// TestSnapshotRoundTripAllDatasets is the byte-identity contract of the
// cache: for every dataset in the catalog, decode(encode(g)) must
// reproduce the generated graph exactly — including the nil-versus-
// empty distinction of property maps — and encoding must be
// deterministic.
func TestSnapshotRoundTripAllDatasets(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate(snapTestScale)
			fp := SnapshotFingerprint(spec.Name, snapTestScale, spec.Seed)

			raw := RawJSONSize(g)
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, g, raw, fp); err != nil {
				t.Fatal(err)
			}
			var buf2 bytes.Buffer
			if err := WriteSnapshot(&buf2, g, raw, fp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("snapshot encoding is not deterministic")
			}

			got, gotRaw, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), fp)
			if err != nil {
				t.Fatal(err)
			}
			if gotRaw != raw {
				t.Fatalf("decoded raw GraphSON size %d, want %d", gotRaw, raw)
			}
			if !reflect.DeepEqual(got.VProps, g.VProps) {
				t.Fatal("decoded vertex properties differ from generated ones")
			}
			if !reflect.DeepEqual(got.EdgeL, g.EdgeL) {
				t.Fatal("decoded edges differ from generated ones")
			}
		})
	}
}

// TestSnapshotRoundTripEdgeCases covers shapes the generators do not
// produce: empty graph, empty-but-non-nil property maps, every value
// kind, and parallel/self edges.
func TestSnapshotRoundTripEdgeCases(t *testing.T) {
	graphs := map[string]*core.Graph{
		"empty": core.NewGraph(0, 0),
	}
	g := core.NewGraph(4, 4)
	g.AddVertex(core.Props{}) // empty, non-nil
	g.AddVertex(nil)          // nil
	g.AddVertex(core.Props{"s": core.S("x"), "i": core.I(-42), "f": core.F(1.5), "b": core.B(true), "n": core.Nil})
	g.AddVertex(core.Props{"f0": core.F(0), "bf": core.B(false)})
	g.AddEdge(2, 2, "self", core.Props{})
	g.AddEdge(2, 3, "par", nil)
	g.AddEdge(2, 3, "par", core.Props{"w": core.F(-0.5)})
	graphs["kinds"] = g

	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			var fp [32]byte
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, g, 0, fp); err != nil {
				t.Fatal(err)
			}
			got, _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), fp)
			if err != nil {
				t.Fatal(err)
			}
			if !sameGraph(got, g) {
				t.Fatalf("round trip diverged:\n got %+v %+v\nwant %+v %+v", got.VProps, got.EdgeL, g.VProps, g.EdgeL)
			}
		})
	}
}

// TestSnapshotFingerprintCoversIdentity: any change to the dataset
// name, scale, seed or generator/format version must change the
// fingerprint — that is the whole invalidation rule of the cache.
func TestSnapshotFingerprintCoversIdentity(t *testing.T) {
	base := SnapshotFingerprint("yeast", 0.01, 42)
	if got := SnapshotFingerprint("mico", 0.01, 42); got == base {
		t.Error("fingerprint ignores dataset name")
	}
	if got := SnapshotFingerprint("yeast", 0.02, 42); got == base {
		t.Error("fingerprint ignores scale")
	}
	if got := SnapshotFingerprint("yeast", 0.01, 43); got == base {
		t.Error("fingerprint ignores seed")
	}
	if got := SnapshotFingerprint("yeast", 0.01, 42); got != base {
		t.Error("fingerprint is not deterministic")
	}
}

func TestAcquireColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	g1, st1, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hit || !st1.Stored || st1.Err != nil {
		t.Fatalf("cold acquire: %+v", st1)
	}
	g2, st2, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Hit || st2.Stored || st2.Err != nil {
		t.Fatalf("warm acquire: %+v", st2)
	}
	if st1.Path != st2.Path {
		t.Fatalf("paths differ: %s vs %s", st1.Path, st2.Path)
	}
	if !reflect.DeepEqual(g1.VProps, g2.VProps) || !reflect.DeepEqual(g1.EdgeL, g2.EdgeL) {
		t.Fatal("cached graph differs from generated one")
	}
	// The cache is content-addressed per (name, scale): another scale
	// must produce a second artifact, not overwrite the first.
	_, st3, err := Acquire("yeast", 2*snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Path == st1.Path {
		t.Fatal("different scale mapped to the same artifact path")
	}
	// No cache dir: plain generation, no artifact.
	_, st4, err := Acquire("yeast", snapTestScale, "")
	if err != nil {
		t.Fatal(err)
	}
	if st4.Hit || st4.Stored || st4.Path != "" {
		t.Fatalf("uncached acquire touched the cache: %+v", st4)
	}
	if _, _, err := Acquire("no-such-dataset", 1, dir); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// TestAcquireTruncatedSnapshot: a half-written artifact (the footprint
// of a crash without the atomic rename, or of disk corruption) must
// fall back to regeneration and heal the artifact.
func TestAcquireTruncatedSnapshot(t *testing.T) {
	dir := t.TempDir()
	g1, st1, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st1.Path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 3, snapshotHeaderLen - 1, snapshotHeaderLen + 10, len(raw) - 1} {
		if err := os.WriteFile(st1.Path, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		g, st, err := Acquire("yeast", snapTestScale, dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Hit {
			t.Fatalf("truncated artifact (%d bytes) served as a hit", keep)
		}
		if st.Err == nil || !st.Stored {
			t.Fatalf("truncated artifact (%d bytes) not reported+healed: %+v", keep, st)
		}
		if !reflect.DeepEqual(g.VProps, g1.VProps) || !reflect.DeepEqual(g.EdgeL, g1.EdgeL) {
			t.Fatal("regenerated graph differs")
		}
		// The artifact must be healed: next acquire hits.
		if _, st, _ := Acquire("yeast", snapTestScale, dir); !st.Hit {
			t.Fatalf("artifact not healed after truncation to %d bytes", keep)
		}
	}
}

// TestAcquireFingerprintMismatch: an artifact whose embedded
// fingerprint differs from the expected one — the on-disk footprint of
// a changed generator version, seed or scale landing on the same path —
// must never be served.
func TestAcquireFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	_, st1, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st1.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 0xFF // first fingerprint byte
	if err := os.WriteFile(st1.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hit {
		t.Fatal("fingerprint-mismatched artifact served as a hit")
	}
	if st.Err == nil || !strings.Contains(st.Err.Error(), "fingerprint mismatch") {
		t.Fatalf("mismatch not surfaced: %v", st.Err)
	}

	// Corrupted payload byte: CRC must catch it.
	raw2, err := os.ReadFile(st1.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw2[len(raw2)-1] ^= 0x01
	if err := os.WriteFile(st1.Path, raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, st, _ := Acquire("yeast", snapTestScale, dir); st.Hit || st.Err == nil {
		t.Fatalf("corrupt payload served: %+v", st)
	}
}

// TestAcquireConcurrentReaders: many goroutines acquiring the same
// cold entry must all get equivalent graphs, and the artifact must be
// valid afterwards — the atomic temp-file+rename protocol at work.
func TestAcquireConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	const readers = 8
	graphs := make([]*core.Graph, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i], _, errs[i] = Acquire("yeast", snapTestScale, dir)
		}(i)
	}
	wg.Wait()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(graphs[i].VProps, graphs[0].VProps) || !reflect.DeepEqual(graphs[i].EdgeL, graphs[0].EdgeL) {
			t.Fatalf("reader %d got a different graph", i)
		}
	}
	// Exactly one artifact, no leftover temp files, and it is valid.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	if len(files) != 1 || !strings.HasSuffix(files[0], ".gsnp") {
		t.Fatalf("cache dir contents after concurrent acquire: %v", files)
	}
	if _, st, _ := Acquire("yeast", snapTestScale, dir); !st.Hit {
		t.Fatal("artifact invalid after concurrent acquire")
	}
}

// testSection is one section body for buildArtifact.
type testSection struct {
	id   uint32
	body []byte
}

// buildArtifact frames arbitrary section bodies as a v2 artifact with
// a valid header and directory (magic, version, fingerprint, size,
// alignment, directory and per-section CRCs) — for adversarial decoder
// tests: everything outer validation accepts, with contents only the
// decoder can judge.
func buildArtifact(fp [32]byte, secs []testSection) []byte {
	dirEnd := snapshotHeaderLen + len(secs)*sectionEntryLen
	off := align8(dirEnd + 4)
	offs := make([]int, len(secs))
	for i, s := range secs {
		offs[i] = off
		off = align8(off + len(s.body))
	}
	fileSize := dirEnd + 4
	if len(secs) > 0 {
		fileSize = offs[len(secs)-1] + len(secs[len(secs)-1].body)
	}
	out := append([]byte(snapshotMagic), snapshotVersion)
	out = append(out, fp[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(fileSize))
	out = binary.BigEndian.AppendUint32(out, uint32(len(secs)))
	for i, s := range secs {
		out = binary.BigEndian.AppendUint32(out, s.id)
		out = binary.BigEndian.AppendUint64(out, uint64(offs[i]))
		out = binary.BigEndian.AppendUint64(out, uint64(len(s.body)))
		out = binary.BigEndian.AppendUint32(out, crc32.Checksum(s.body, crcTable))
	}
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
	for i, s := range secs {
		for len(out) < offs[i] {
			out = append(out, 0)
		}
		out = append(out, s.body...)
	}
	return out
}

// edgelessSections builds the full section set of a graph with n
// vertices, no edges and no labels, with caller-supplied strtab and
// property section bodies — the minimal scaffold for poisoning one
// section at a time.
func edgelessSections(n int, strtab, vprops, eprops []byte) []testSection {
	zeros := make([]int32, n+1)
	var meta []byte
	meta = enc.Uvarint(meta, 0)         // rawJSON
	meta = enc.Uvarint(meta, uint64(n)) // V
	meta = enc.Uvarint(meta, 0)         // E
	meta = enc.Uvarint(meta, 0)         // labels
	meta = enc.Uvarint(meta, 0)         // VPropTotal
	meta = enc.Uvarint(meta, 0)         // EPropTotal
	return []testSection{
		{secMeta, meta},
		{secLabels, enc.Uvarint(nil, 0)},
		{secOutOff, encodeInt32s(zeros)},
		{secInOff, encodeInt32s(zeros)},
		{secUndOff, encodeInt32s(zeros)},
		{secUndAdj, nil},
		{secLabelIx, nil},
		{secLabelOff, encodeInt32s([]int32{0})},
		{secLabelAdj, nil},
		{secEdgeSrc, nil},
		{secEdgeDst, nil},
		{secStrTab, strtab},
		{secVProps, vprops},
		{secEProps, eprops},
	}
}

// TestSnapshotMalformedDeltaDoesNotPanic: a CRC-valid artifact whose
// property block carries a huge index delta (a legal 10-byte LEB128
// encoding of 1<<63) must decode to an error, not a wrapped-negative
// slice index and a process panic.
func TestSnapshotMalformedDeltaDoesNotPanic(t *testing.T) {
	var fp [32]byte
	var strtab []byte
	strtab = enc.Uvarint(strtab, 1) // one string, "k"
	strtab = enc.Uvarint(strtab, 1)
	strtab = append(strtab, 'k')
	// Vertex prop section: 1 column (key id 0), one shard block.
	var vprops []byte
	vprops = enc.Uvarint(vprops, 1)
	vprops = enc.Uvarint(vprops, 0)
	var blk []byte
	blk = enc.Uvarint(blk, 1)     // one entry
	blk = enc.Uvarint(blk, 1<<63) // poisoned delta
	blk = append(blk, snapNil)    // value
	blk = enc.Uvarint(blk, 0)     // no empties
	vprops = enc.Uvarint(vprops, uint64(len(blk)))
	vprops = append(vprops, blk...)
	eprops := enc.Uvarint(nil, 0) // 0 columns, no blocks (E=0)

	raw := buildArtifact(fp, edgelessSections(2, strtab, vprops, eprops))
	if _, _, err := ReadSnapshot(bytes.NewReader(raw), fp); err == nil {
		t.Fatal("poisoned delta decoded without error")
	}

	// Same poison in the empty-props list.
	vprops = enc.Uvarint(nil, 0) // 0 columns
	blk = blk[:0]
	blk = enc.Uvarint(blk, 1)     // one empty marker
	blk = enc.Uvarint(blk, 1<<63) // poisoned delta
	vprops = enc.Uvarint(vprops, uint64(len(blk)))
	vprops = append(vprops, blk...)
	raw = buildArtifact(fp, edgelessSections(2, enc.Uvarint(nil, 0), vprops, eprops))
	if _, _, err := ReadSnapshot(bytes.NewReader(raw), fp); err == nil {
		t.Fatal("poisoned empty-list delta decoded without error")
	}
}

// TestSnapshotHugeCountsRejectedCheaply: a tiny CRC-valid artifact
// declaring astronomically many vertices must be rejected by the
// size-proportional bound — and then by the exact section-length
// checks — before any large allocation; and a corrupted (oversized)
// file size field must fail against the actual byte count, not size
// an allocation.
func TestSnapshotHugeCountsRejectedCheaply(t *testing.T) {
	var fp [32]byte
	var meta []byte
	meta = enc.Uvarint(meta, 0)     // rawJSON
	meta = enc.Uvarint(meta, 1<<34) // absurd V for a file this small
	meta = enc.Uvarint(meta, 0)
	meta = enc.Uvarint(meta, 0)
	meta = enc.Uvarint(meta, 0)
	meta = enc.Uvarint(meta, 0)
	raw := buildArtifact(fp, []testSection{{secMeta, meta}})
	if _, _, err := ReadSnapshot(bytes.NewReader(raw), fp); err == nil {
		t.Fatal("absurd vertex count accepted")
	}

	// Oversized file size: flip the size field way up on a real
	// artifact.
	g := Yeast(snapTestScale)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, 0, fp); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	binary.BigEndian.PutUint64(raw[37:45], 1<<39)
	if _, _, err := ReadSnapshot(bytes.NewReader(raw), fp); err == nil {
		t.Fatal("oversized size field accepted")
	}

	// A corrupted directory entry must fail the directory CRC.
	buf.Reset()
	if err := WriteSnapshot(&buf, g, 0, fp); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	raw[snapshotHeaderLen+2] ^= 0x01
	if _, _, err := ReadSnapshot(bytes.NewReader(raw), fp); err == nil {
		t.Fatal("corrupt directory accepted")
	}
}

// TestSnapshotInconsistentSectionsRejected: CRC-valid artifacts whose
// sections contradict each other (adjacency out of range, prefix sums
// that do not reach the edge count) must be rejected by the CSR
// validation pass, never served.
func TestSnapshotInconsistentSectionsRejected(t *testing.T) {
	var fp [32]byte
	strtab := enc.Uvarint(nil, 0)
	poke := func(name string, mutate func(secs []testSection)) {
		// A 2-vertex edgeless graph needs a 1-byte empty shard block in
		// vprops/eprops (0 columns, 0 empties) to decode cleanly.
		blk := enc.Uvarint(nil, 0)
		props := enc.Uvarint(nil, 0)
		props = enc.Uvarint(props, uint64(len(blk)))
		props = append(props, blk...)
		secs := edgelessSections(2, strtab, props, props)
		mutate(secs)
		raw := buildArtifact(fp, secs)
		if _, _, err := ReadSnapshot(bytes.NewReader(raw), fp); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	poke("non-monotonic prefix sum", func(secs []testSection) {
		secs[2].body = encodeInt32s([]int32{0, 1, 0}) // OutOff dips
	})
	poke("prefix sum missing edge total", func(secs []testSection) {
		secs[2].body = encodeInt32s([]int32{0, 1, 1}) // claims an edge, E=0
	})
	poke("ragged int32 section", func(secs []testSection) {
		secs[5].body = []byte{1, 2, 3} // UndAdj length must be 4×count
	})

	// Out-of-range adjacency entries in an otherwise consistent
	// one-edge graph (0→1 "knows").
	oneEdge := func(mutate func(secs []testSection)) []byte {
		blk := enc.Uvarint(nil, 0) // 0 empties
		props := enc.Uvarint(nil, 0)
		props = enc.Uvarint(props, uint64(len(blk)))
		props = append(props, blk...)
		var meta []byte
		meta = enc.Uvarint(meta, 0) // rawJSON
		meta = enc.Uvarint(meta, 2) // V
		meta = enc.Uvarint(meta, 1) // E
		meta = enc.Uvarint(meta, 1) // labels
		meta = enc.Uvarint(meta, 0) // VPropTotal
		meta = enc.Uvarint(meta, 0) // EPropTotal
		var labels []byte
		labels = enc.Uvarint(labels, 1)
		labels = enc.Uvarint(labels, 5)
		labels = append(labels, "knows"...)
		secs := []testSection{
			{secMeta, meta},
			{secLabels, labels},
			{secOutOff, encodeInt32s([]int32{0, 1, 1})},
			{secInOff, encodeInt32s([]int32{0, 0, 1})},
			{secUndOff, encodeInt32s([]int32{0, 1, 2})},
			{secUndAdj, encodeInt32s([]int32{1, 0})},
			{secLabelIx, encodeInt32s([]int32{0})},
			{secLabelOff, encodeInt32s([]int32{0, 1})},
			{secLabelAdj, encodeInt32s([]int32{0})},
			{secEdgeSrc, encodeInt32s([]int32{0})},
			{secEdgeDst, encodeInt32s([]int32{1})},
			{secStrTab, enc.Uvarint(nil, 0)},
			{secVProps, props},
			{secEProps, props},
		}
		mutate(secs)
		return buildArtifact(fp, secs)
	}
	g, _, err := ReadSnapshot(bytes.NewReader(oneEdge(func([]testSection) {})), fp)
	if err != nil {
		t.Fatalf("consistent one-edge artifact rejected: %v", err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 || g.EdgeL[0].Label != "knows" {
		t.Fatalf("one-edge artifact decoded wrong: %+v", g.EdgeL)
	}
	for name, mutate := range map[string]func([]testSection){
		"undirected adjacency out of range": func(secs []testSection) { secs[5].body = encodeInt32s([]int32{5, 0}) },
		"label index out of range":          func(secs []testSection) { secs[6].body = encodeInt32s([]int32{7}) },
		"edge endpoint out of range":        func(secs []testSection) { secs[10].body = encodeInt32s([]int32{9}) },
	} {
		if _, _, err := ReadSnapshot(bytes.NewReader(oneEdge(mutate)), fp); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
