package datasets

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/enc"
)

const snapTestScale = 0.001

// sameGraph compares two graphs for exact equality of contents,
// treating a nil and an empty slice as the same (a decoded empty graph
// need not reproduce the capacity hints of NewGraph).
func sameGraph(a, b *core.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if a.NumVertices() > 0 && !reflect.DeepEqual(a.VProps, b.VProps) {
		return false
	}
	return a.NumEdges() == 0 || reflect.DeepEqual(a.EdgeL, b.EdgeL)
}

// TestSnapshotRoundTripAllDatasets is the byte-identity contract of the
// cache: for every dataset in the catalog, decode(encode(g)) must
// reproduce the generated graph exactly — including the nil-versus-
// empty distinction of property maps — and encoding must be
// deterministic.
func TestSnapshotRoundTripAllDatasets(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate(snapTestScale)
			fp := SnapshotFingerprint(spec.Name, snapTestScale, spec.Seed)

			raw := RawJSONSize(g)
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, g, raw, fp); err != nil {
				t.Fatal(err)
			}
			var buf2 bytes.Buffer
			if err := WriteSnapshot(&buf2, g, raw, fp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("snapshot encoding is not deterministic")
			}

			got, gotRaw, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), fp)
			if err != nil {
				t.Fatal(err)
			}
			if gotRaw != raw {
				t.Fatalf("decoded raw GraphSON size %d, want %d", gotRaw, raw)
			}
			if !reflect.DeepEqual(got.VProps, g.VProps) {
				t.Fatal("decoded vertex properties differ from generated ones")
			}
			if !reflect.DeepEqual(got.EdgeL, g.EdgeL) {
				t.Fatal("decoded edges differ from generated ones")
			}
		})
	}
}

// TestSnapshotRoundTripEdgeCases covers shapes the generators do not
// produce: empty graph, empty-but-non-nil property maps, every value
// kind, and parallel/self edges.
func TestSnapshotRoundTripEdgeCases(t *testing.T) {
	graphs := map[string]*core.Graph{
		"empty": core.NewGraph(0, 0),
	}
	g := core.NewGraph(4, 4)
	g.AddVertex(core.Props{}) // empty, non-nil
	g.AddVertex(nil)          // nil
	g.AddVertex(core.Props{"s": core.S("x"), "i": core.I(-42), "f": core.F(1.5), "b": core.B(true), "n": core.Nil})
	g.AddVertex(core.Props{"f0": core.F(0), "bf": core.B(false)})
	g.AddEdge(2, 2, "self", core.Props{})
	g.AddEdge(2, 3, "par", nil)
	g.AddEdge(2, 3, "par", core.Props{"w": core.F(-0.5)})
	graphs["kinds"] = g

	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			var fp [32]byte
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, g, 0, fp); err != nil {
				t.Fatal(err)
			}
			got, _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), fp)
			if err != nil {
				t.Fatal(err)
			}
			if !sameGraph(got, g) {
				t.Fatalf("round trip diverged:\n got %+v %+v\nwant %+v %+v", got.VProps, got.EdgeL, g.VProps, g.EdgeL)
			}
		})
	}
}

// TestSnapshotFingerprintCoversIdentity: any change to the dataset
// name, scale, seed or generator/format version must change the
// fingerprint — that is the whole invalidation rule of the cache.
func TestSnapshotFingerprintCoversIdentity(t *testing.T) {
	base := SnapshotFingerprint("yeast", 0.01, 42)
	if got := SnapshotFingerprint("mico", 0.01, 42); got == base {
		t.Error("fingerprint ignores dataset name")
	}
	if got := SnapshotFingerprint("yeast", 0.02, 42); got == base {
		t.Error("fingerprint ignores scale")
	}
	if got := SnapshotFingerprint("yeast", 0.01, 43); got == base {
		t.Error("fingerprint ignores seed")
	}
	if got := SnapshotFingerprint("yeast", 0.01, 42); got != base {
		t.Error("fingerprint is not deterministic")
	}
}

func TestAcquireColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	g1, st1, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hit || !st1.Stored || st1.Err != nil {
		t.Fatalf("cold acquire: %+v", st1)
	}
	g2, st2, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Hit || st2.Stored || st2.Err != nil {
		t.Fatalf("warm acquire: %+v", st2)
	}
	if st1.Path != st2.Path {
		t.Fatalf("paths differ: %s vs %s", st1.Path, st2.Path)
	}
	if !reflect.DeepEqual(g1.VProps, g2.VProps) || !reflect.DeepEqual(g1.EdgeL, g2.EdgeL) {
		t.Fatal("cached graph differs from generated one")
	}
	// The cache is content-addressed per (name, scale): another scale
	// must produce a second artifact, not overwrite the first.
	_, st3, err := Acquire("yeast", 2*snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Path == st1.Path {
		t.Fatal("different scale mapped to the same artifact path")
	}
	// No cache dir: plain generation, no artifact.
	_, st4, err := Acquire("yeast", snapTestScale, "")
	if err != nil {
		t.Fatal(err)
	}
	if st4.Hit || st4.Stored || st4.Path != "" {
		t.Fatalf("uncached acquire touched the cache: %+v", st4)
	}
	if _, _, err := Acquire("no-such-dataset", 1, dir); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// TestAcquireTruncatedSnapshot: a half-written artifact (the footprint
// of a crash without the atomic rename, or of disk corruption) must
// fall back to regeneration and heal the artifact.
func TestAcquireTruncatedSnapshot(t *testing.T) {
	dir := t.TempDir()
	g1, st1, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st1.Path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 3, snapshotHeaderLen - 1, snapshotHeaderLen + 10, len(raw) - 1} {
		if err := os.WriteFile(st1.Path, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		g, st, err := Acquire("yeast", snapTestScale, dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Hit {
			t.Fatalf("truncated artifact (%d bytes) served as a hit", keep)
		}
		if st.Err == nil || !st.Stored {
			t.Fatalf("truncated artifact (%d bytes) not reported+healed: %+v", keep, st)
		}
		if !reflect.DeepEqual(g.VProps, g1.VProps) || !reflect.DeepEqual(g.EdgeL, g1.EdgeL) {
			t.Fatal("regenerated graph differs")
		}
		// The artifact must be healed: next acquire hits.
		if _, st, _ := Acquire("yeast", snapTestScale, dir); !st.Hit {
			t.Fatalf("artifact not healed after truncation to %d bytes", keep)
		}
	}
}

// TestAcquireFingerprintMismatch: an artifact whose embedded
// fingerprint differs from the expected one — the on-disk footprint of
// a changed generator version, seed or scale landing on the same path —
// must never be served.
func TestAcquireFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	_, st1, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st1.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 0xFF // first fingerprint byte
	if err := os.WriteFile(st1.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hit {
		t.Fatal("fingerprint-mismatched artifact served as a hit")
	}
	if st.Err == nil || !strings.Contains(st.Err.Error(), "fingerprint mismatch") {
		t.Fatalf("mismatch not surfaced: %v", st.Err)
	}

	// Corrupted payload byte: CRC must catch it.
	raw2, err := os.ReadFile(st1.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw2[len(raw2)-1] ^= 0x01
	if err := os.WriteFile(st1.Path, raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, st, _ := Acquire("yeast", snapTestScale, dir); st.Hit || st.Err == nil {
		t.Fatalf("corrupt payload served: %+v", st)
	}
}

// TestAcquireConcurrentReaders: many goroutines acquiring the same
// cold entry must all get equivalent graphs, and the artifact must be
// valid afterwards — the atomic temp-file+rename protocol at work.
func TestAcquireConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	const readers = 8
	graphs := make([]*core.Graph, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i], _, errs[i] = Acquire("yeast", snapTestScale, dir)
		}(i)
	}
	wg.Wait()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(graphs[i].VProps, graphs[0].VProps) || !reflect.DeepEqual(graphs[i].EdgeL, graphs[0].EdgeL) {
			t.Fatalf("reader %d got a different graph", i)
		}
	}
	// Exactly one artifact, no leftover temp files, and it is valid.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
	}
	if len(files) != 1 || !strings.HasSuffix(files[0], ".gsnp") {
		t.Fatalf("cache dir contents after concurrent acquire: %v", files)
	}
	if _, st, _ := Acquire("yeast", snapTestScale, dir); !st.Hit {
		t.Fatal("artifact invalid after concurrent acquire")
	}
}

// buildArtifact frames an arbitrary payload as a snapshot artifact
// with a valid header (magic, version, fingerprint, length, CRC) —
// for adversarial decoder tests: everything outer validation accepts,
// with a payload only the decoder can judge.
func buildArtifact(payload []byte, fp [32]byte) []byte {
	out := append([]byte(snapshotMagic), snapshotVersion)
	out = append(out, fp[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// TestSnapshotMalformedDeltaDoesNotPanic: a CRC-valid artifact whose
// property block carries a huge index delta (a legal 10-byte LEB128
// encoding of 1<<63) must decode to an error, not a wrapped-negative
// slice index and a process panic.
func TestSnapshotMalformedDeltaDoesNotPanic(t *testing.T) {
	var fp [32]byte
	var p []byte
	p = enc.Uvarint(p, 0) // rawJSON
	p = enc.Uvarint(p, 2) // V
	p = enc.Uvarint(p, 0) // E
	p = enc.Uvarint(p, 1) // one string
	p = enc.Uvarint(p, 1)
	p = append(p, 'k')
	// vertex prop section: 1 column (key id 0), one shard block.
	p = enc.Uvarint(p, 1)
	p = enc.Uvarint(p, 0)
	var blk []byte
	blk = enc.Uvarint(blk, 1)     // one entry
	blk = enc.Uvarint(blk, 1<<63) // poisoned delta
	blk = append(blk, snapNil)    // value
	blk = enc.Uvarint(blk, 0)     // no empties
	p = enc.Uvarint(p, uint64(len(blk)))
	p = append(p, blk...)
	// no edge blocks (E=0); edge prop section: 0 columns.
	p = enc.Uvarint(p, 0)

	if _, _, err := ReadSnapshot(bytes.NewReader(buildArtifact(p, fp)), fp); err == nil {
		t.Fatal("poisoned delta decoded without error")
	}

	// Same poison in the empty-props list.
	p = p[:0]
	p = enc.Uvarint(p, 0) // rawJSON
	p = enc.Uvarint(p, 2) // V
	p = enc.Uvarint(p, 0) // E
	p = enc.Uvarint(p, 0) // no strings
	p = enc.Uvarint(p, 0) // 0 columns
	blk = blk[:0]
	blk = enc.Uvarint(blk, 1)     // one empty marker
	blk = enc.Uvarint(blk, 1<<63) // poisoned delta
	p = enc.Uvarint(p, uint64(len(blk)))
	p = append(p, blk...)
	p = enc.Uvarint(p, 0) // edge prop section: 0 columns
	if _, _, err := ReadSnapshot(bytes.NewReader(buildArtifact(p, fp)), fp); err == nil {
		t.Fatal("poisoned empty-list delta decoded without error")
	}
}

// TestSnapshotHugeCountsRejectedCheaply: a tiny CRC-valid artifact
// declaring astronomically many vertices must be rejected by the
// payload-proportional bound before any large allocation; and a
// corrupted (oversized) header length field — the one field outside
// the CRC — must fail on short read, not size an allocation.
func TestSnapshotHugeCountsRejectedCheaply(t *testing.T) {
	var fp [32]byte
	var p []byte
	p = enc.Uvarint(p, 0)     // rawJSON
	p = enc.Uvarint(p, 1<<34) // absurd V for a payload this small
	p = enc.Uvarint(p, 0)
	if _, _, err := ReadSnapshot(bytes.NewReader(buildArtifact(p, fp)), fp); err == nil {
		t.Fatal("absurd vertex count accepted")
	}

	// Oversized plen: flip the length field way up on a real artifact.
	g := Yeast(snapTestScale)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g, 0, fp); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.BigEndian.PutUint64(raw[37:45], 1<<39)
	if _, _, err := ReadSnapshot(bytes.NewReader(raw), fp); err == nil {
		t.Fatal("oversized length field accepted")
	}
}
