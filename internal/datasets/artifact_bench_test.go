package datasets_test

// Dataset-acquisition benchmarks: the perf trajectory of the artifact
// cache (cold = generate + GraphSON sizing + encode + store, i.e.
// everything a cold cached acquire pays; warm = decode the artifact,
// which already carries the GraphSON size), Stats over the CSR
// snapshot, and an engine BulkLoad — the paths the snapshot layer
// accelerates. TestRecordDatasetBenchmarks renders them into
// BENCH_datasets.json for CI (set BENCH_JSON to the output path), and
// enforces the warm-path speedup floor.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/datasets"
	"repro/internal/engines"
)

// The benchmark dataset: mico is edge-heavy (per-edge RNG + Zipf +
// label formatting on generation, three varints on decode), which is
// exactly the load profile the cache exists for.
const (
	benchDataset = "mico"
	benchScale   = 0.1
)

func benchAcquireCold(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		if err := os.RemoveAll(dir); err != nil {
			b.Fatal(err)
		}
		if _, st, err := datasets.Acquire(benchDataset, benchScale, dir); err != nil || st.Hit || !st.Stored {
			b.Fatalf("cold acquire: %v %+v", err, st)
		}
	}
}

func benchAcquireWarm(b *testing.B) {
	dir := b.TempDir()
	if _, _, err := datasets.Acquire(benchDataset, benchScale, dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := datasets.Acquire(benchDataset, benchScale, dir); err != nil || !st.Hit {
			b.Fatalf("warm acquire: %v %+v", err, st)
		}
	}
}

// benchAcquireWarmMmap is the zero-copy warm path: the artifact is
// memory-mapped and the CSR arrays alias its columnar sections, so a
// warm open skips the heap decode entirely. Repeated opens hit the
// process-shared mapping registry — exactly what a multi-cell run
// pays per acquisition.
func benchAcquireWarmMmap(b *testing.B) {
	dir := b.TempDir()
	if _, _, err := datasets.Acquire(benchDataset, benchScale, dir); err != nil {
		b.Fatal(err)
	}
	opts := datasets.AcquireOptions{CacheDir: dir, Mmap: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, st, err := datasets.AcquireCSR(benchDataset, benchScale, opts)
		if err != nil || !st.Hit || c.NumEdges() == 0 {
			b.Fatalf("warm mmap acquire: %v %+v", err, st)
		}
	}
}

// statsBenchWorkers is the parallel-stats worker count the trajectory
// records; the acceptance floor (≥2× over sequential) only means
// anything with at least that many CPUs underneath.
const statsBenchWorkers = 4

func benchStatsN(b *testing.B, workers int) {
	g, _, err := datasets.Acquire(benchDataset, benchScale, "")
	if err != nil {
		b.Fatal(err)
	}
	c := g.Snapshot() // steady state: the one-time CSR build is not the measurand
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row := datasets.StatsCSR(c, workers); row.V == 0 {
			b.Fatal("empty stats")
		}
	}
}

func benchStatsSeq(b *testing.B)      { benchStatsN(b, 1) }
func benchStatsParallel(b *testing.B) { benchStatsN(b, statsBenchWorkers) }

// benchLabelSlice walks every per-label edge slice end to end — the
// O(matches) label-filtered traversal the LabelOff/LabelAdj sections
// buy, replacing the old scan-and-compare over all |E| labels.
func benchLabelSlice(b *testing.B) {
	g, _, err := datasets.Acquire(benchDataset, benchScale, "")
	if err != nil {
		b.Fatal(err)
	}
	c := g.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for l := range c.Labels {
			for _, e := range c.LabelEdges(l) {
				sum += int64(e)
			}
		}
		if sum == 0 && c.NumEdges() > 0 {
			b.Fatal("label slices empty")
		}
	}
}

func benchBulkLoad(b *testing.B) {
	g, _, err := datasets.Acquire(benchDataset, benchScale, "")
	if err != nil {
		b.Fatal(err)
	}
	g.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := engines.New("neo-1.9")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.BulkLoad(g); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

func BenchmarkDatasetAcquireCold(b *testing.B)     { benchAcquireCold(b) }
func BenchmarkDatasetAcquireWarm(b *testing.B)     { benchAcquireWarm(b) }
func BenchmarkDatasetAcquireWarmMmap(b *testing.B) { benchAcquireWarmMmap(b) }
func BenchmarkDatasetStatsSeq(b *testing.B)        { benchStatsSeq(b) }
func BenchmarkDatasetStatsParallel(b *testing.B)   { benchStatsParallel(b) }
func BenchmarkDatasetLabelSlice(b *testing.B)      { benchLabelSlice(b) }
func BenchmarkDatasetBulkLoad(b *testing.B)        { benchBulkLoad(b) }

// benchRecord is one benchmark's entry in BENCH_datasets.json.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TestRecordDatasetBenchmarks runs the dataset benchmarks through
// testing.Benchmark and writes their results — plus the cold/warm
// speedup — to the file named by BENCH_JSON (skipped when unset, so
// ordinary test runs stay fast). The ≥5× warm-path floor is asserted
// here: CI records the trajectory and enforces the contract in one
// step.
func TestRecordDatasetBenchmarks(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set; skipping benchmark recording")
	}
	run := func(name string, fn func(*testing.B)) benchRecord {
		r := testing.Benchmark(fn)
		t.Logf("%s: %v", name, r)
		return benchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	cold := run("acquire/cold", benchAcquireCold)
	warm := run("acquire/warm", benchAcquireWarm)
	warmMmap := run("acquire/warm-mmap", benchAcquireWarmMmap)
	statsSeq := run("stats/seq", benchStatsSeq)
	statsPar := run("stats/parallel", benchStatsParallel)
	labelSlice := run("csr/label-slice", benchLabelSlice)
	load := run("bulkload/neo-1.9", benchBulkLoad)

	speedup := cold.NsPerOp / warm.NsPerOp
	mmapSpeedup := warm.NsPerOp / warmMmap.NsPerOp
	statsSpeedup := statsSeq.NsPerOp / statsPar.NsPerOp
	doc := struct {
		Dataset          string        `json:"dataset"`
		Scale            float64       `json:"scale"`
		GeneratorVersion int           `json:"generator_version"`
		CPUs             int           `json:"cpus"`
		Benchmarks       []benchRecord `json:"benchmarks"`
		WarmSpeedup      float64       `json:"warm_speedup"`
		MmapSpeedup      float64       `json:"mmap_speedup"`
		StatsSpeedup     float64       `json:"stats_parallel_speedup"`
	}{
		Dataset:          benchDataset,
		Scale:            benchScale,
		GeneratorVersion: datasets.GeneratorVersion,
		CPUs:             runtime.NumCPU(),
		Benchmarks:       []benchRecord{cold, warm, warmMmap, statsSeq, statsPar, labelSlice, load},
		WarmSpeedup:      speedup,
		MmapSpeedup:      mmapSpeedup,
		StatsSpeedup:     statsSpeedup,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (warm %.1fx, mmap %.1fx, stats parallel %.1fx on %d CPUs)",
		out, speedup, mmapSpeedup, statsSpeedup, runtime.NumCPU())
	if speedup < 5 {
		t.Errorf("warm dataset acquisition is only %.1fx faster than cold, want >= 5x", speedup)
	}
	if mmapSpeedup < 5 {
		t.Errorf("mapped warm open is only %.1fx faster than the heap decode, want >= 5x", mmapSpeedup)
	}
	// The parallel-stats floor presumes the workers have CPUs to run
	// on: on a machine with fewer cores than statsBenchWorkers the
	// speedup is physically capped near 1x, so the trajectory is
	// recorded but the floor is not enforced.
	if runtime.NumCPU() >= statsBenchWorkers && statsSpeedup < 2 {
		t.Errorf("parallel stats at %d workers is only %.1fx faster than sequential, want >= 2x", statsBenchWorkers, statsSpeedup)
	}

	// The committed trajectory is the second floor: a regression that
	// halves a recorded speedup fails even while it clears the absolute
	// bar. The factor-of-two slack absorbs machine-to-machine variance;
	// the committed file ratchets the rest. The parallel-stats ratchet
	// additionally requires both the committed and the current machine
	// to have enough CPUs for the comparison to be physical.
	committed, ok := committedFloor(t)
	if ok && speedup < committed.Warm/2 {
		t.Errorf("warm speedup %.1fx is less than half the committed floor %.1fx (BENCH_datasets.json); investigate or re-baseline", speedup, committed.Warm)
	}
	if ok && committed.Mmap > 0 && mmapSpeedup < committed.Mmap/2 {
		t.Errorf("mmap speedup %.1fx is less than half the committed floor %.1fx (BENCH_datasets.json); investigate or re-baseline", mmapSpeedup, committed.Mmap)
	}
	if ok && committed.Stats > 0 && committed.CPUs >= statsBenchWorkers && runtime.NumCPU() >= statsBenchWorkers &&
		statsSpeedup < committed.Stats/2 {
		t.Errorf("parallel-stats speedup %.1fx is less than half the committed floor %.1fx (BENCH_datasets.json); investigate or re-baseline", statsSpeedup, committed.Stats)
	}
}

// floors is the committed speedup trajectory relevant to ratcheting.
type floors struct {
	Warm  float64
	Mmap  float64
	Stats float64
	CPUs  int
}

// committedFloor reads the recorded speedups from the repo's committed
// BENCH_datasets.json. The comparison only holds between identical
// workloads, so a differing dataset/scale/generator skips it; fields
// absent from an older committed file come back zero and their
// ratchets are skipped individually.
func committedFloor(t *testing.T) (floors, bool) {
	raw, err := os.ReadFile("../../BENCH_datasets.json")
	if err != nil {
		t.Logf("no committed BENCH_datasets.json floor: %v", err)
		return floors{}, false
	}
	var doc struct {
		Dataset          string  `json:"dataset"`
		Scale            float64 `json:"scale"`
		GeneratorVersion int     `json:"generator_version"`
		CPUs             int     `json:"cpus"`
		WarmSpeedup      float64 `json:"warm_speedup"`
		MmapSpeedup      float64 `json:"mmap_speedup"`
		StatsSpeedup     float64 `json:"stats_parallel_speedup"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed BENCH_datasets.json is unreadable: %v", err)
	}
	if doc.Dataset != benchDataset || doc.Scale != benchScale || doc.GeneratorVersion != datasets.GeneratorVersion {
		t.Logf("committed floor is for %s@%g gen=%d, current workload is %s@%g gen=%d; skipping comparison",
			doc.Dataset, doc.Scale, doc.GeneratorVersion, benchDataset, benchScale, datasets.GeneratorVersion)
		return floors{}, false
	}
	f := floors{Warm: doc.WarmSpeedup, Mmap: doc.MmapSpeedup, Stats: doc.StatsSpeedup, CPUs: doc.CPUs}
	return f, f.Warm > 0
}
