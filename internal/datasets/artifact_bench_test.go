package datasets_test

// Dataset-acquisition benchmarks: the perf trajectory of the artifact
// cache (cold = generate + GraphSON sizing + encode + store, i.e.
// everything a cold cached acquire pays; warm = decode the artifact,
// which already carries the GraphSON size), Stats over the CSR
// snapshot, and an engine BulkLoad — the paths the snapshot layer
// accelerates. TestRecordDatasetBenchmarks renders them into
// BENCH_datasets.json for CI (set BENCH_JSON to the output path), and
// enforces the warm-path speedup floor.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/datasets"
	"repro/internal/engines"
)

// The benchmark dataset: mico is edge-heavy (per-edge RNG + Zipf +
// label formatting on generation, three varints on decode), which is
// exactly the load profile the cache exists for.
const (
	benchDataset = "mico"
	benchScale   = 0.1
)

func benchAcquireCold(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		if err := os.RemoveAll(dir); err != nil {
			b.Fatal(err)
		}
		if _, st, err := datasets.Acquire(benchDataset, benchScale, dir); err != nil || st.Hit || !st.Stored {
			b.Fatalf("cold acquire: %v %+v", err, st)
		}
	}
}

func benchAcquireWarm(b *testing.B) {
	dir := b.TempDir()
	if _, _, err := datasets.Acquire(benchDataset, benchScale, dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := datasets.Acquire(benchDataset, benchScale, dir); err != nil || !st.Hit {
			b.Fatalf("warm acquire: %v %+v", err, st)
		}
	}
}

func benchStats(b *testing.B) {
	g, _, err := datasets.Acquire(benchDataset, benchScale, "")
	if err != nil {
		b.Fatal(err)
	}
	g.Snapshot() // steady state: the one-time CSR build is not the measurand
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if row := datasets.Stats(g); row.V == 0 {
			b.Fatal("empty stats")
		}
	}
}

func benchBulkLoad(b *testing.B) {
	g, _, err := datasets.Acquire(benchDataset, benchScale, "")
	if err != nil {
		b.Fatal(err)
	}
	g.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := engines.New("neo-1.9")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.BulkLoad(g); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

func BenchmarkDatasetAcquireCold(b *testing.B) { benchAcquireCold(b) }
func BenchmarkDatasetAcquireWarm(b *testing.B) { benchAcquireWarm(b) }
func BenchmarkDatasetStats(b *testing.B)       { benchStats(b) }
func BenchmarkDatasetBulkLoad(b *testing.B)    { benchBulkLoad(b) }

// benchRecord is one benchmark's entry in BENCH_datasets.json.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TestRecordDatasetBenchmarks runs the dataset benchmarks through
// testing.Benchmark and writes their results — plus the cold/warm
// speedup — to the file named by BENCH_JSON (skipped when unset, so
// ordinary test runs stay fast). The ≥5× warm-path floor is asserted
// here: CI records the trajectory and enforces the contract in one
// step.
func TestRecordDatasetBenchmarks(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set; skipping benchmark recording")
	}
	run := func(name string, fn func(*testing.B)) benchRecord {
		r := testing.Benchmark(fn)
		t.Logf("%s: %v", name, r)
		return benchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	cold := run("acquire/cold", benchAcquireCold)
	warm := run("acquire/warm", benchAcquireWarm)
	stats := run("stats", benchStats)
	load := run("bulkload/neo-1.9", benchBulkLoad)

	speedup := cold.NsPerOp / warm.NsPerOp
	doc := struct {
		Dataset          string        `json:"dataset"`
		Scale            float64       `json:"scale"`
		GeneratorVersion int           `json:"generator_version"`
		Benchmarks       []benchRecord `json:"benchmarks"`
		WarmSpeedup      float64       `json:"warm_speedup"`
	}{
		Dataset:          benchDataset,
		Scale:            benchScale,
		GeneratorVersion: datasets.GeneratorVersion,
		Benchmarks:       []benchRecord{cold, warm, stats, load},
		WarmSpeedup:      speedup,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (warm speedup %.1fx)", out, speedup)
	if speedup < 5 {
		t.Errorf("warm dataset acquisition is only %.1fx faster than cold, want >= 5x", speedup)
	}

	// The committed trajectory is the second floor: a regression that
	// halves the recorded speedup fails even while it clears the
	// absolute 5x bar. The factor-of-two slack absorbs machine-to-
	// machine variance; the committed file ratchets the rest.
	if committed, ok := committedFloor(t); ok && speedup < committed/2 {
		t.Errorf("warm speedup %.1fx is less than half the committed floor %.1fx (BENCH_datasets.json); investigate or re-baseline", speedup, committed)
	}
}

// committedFloor reads the warm speedup from the repo's committed
// BENCH_datasets.json. The comparison only holds between identical
// workloads, so a differing dataset/scale/generator skips it.
func committedFloor(t *testing.T) (float64, bool) {
	raw, err := os.ReadFile("../../BENCH_datasets.json")
	if err != nil {
		t.Logf("no committed BENCH_datasets.json floor: %v", err)
		return 0, false
	}
	var doc struct {
		Dataset          string  `json:"dataset"`
		Scale            float64 `json:"scale"`
		GeneratorVersion int     `json:"generator_version"`
		WarmSpeedup      float64 `json:"warm_speedup"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed BENCH_datasets.json is unreadable: %v", err)
	}
	if doc.Dataset != benchDataset || doc.Scale != benchScale || doc.GeneratorVersion != datasets.GeneratorVersion {
		t.Logf("committed floor is for %s@%g gen=%d, current workload is %s@%g gen=%d; skipping comparison",
			doc.Dataset, doc.Scale, doc.GeneratorVersion, benchDataset, benchScale, datasets.GeneratorVersion)
		return 0, false
	}
	return doc.WarmSpeedup, doc.WarmSpeedup > 0
}
