package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// ldbcSeed is the ldbc generator's fixed seed (see Spec.Seed).
const ldbcSeed = 7

// The 15 edge labels of the ldbc dataset (Table 3 reports |L| = 15).
var ldbcLabels = []string{
	"knows", "livesIn", "worksAt", "studyAt", "hasInterest",
	"hasModerator", "hasMember", "containerOf", "created", "likes",
	"hasTag", "replyOf", "locatedIn", "isPartOf", "follows",
}

// Generation phases of the ldbc dataset. Each consumes its own RNG
// streams (see shard.go) so the phases — and the shards within a
// phase — are independent, which is what makes the sharded generator
// byte-stable for any worker count.
const (
	ldbcPersonV uint64 = iota + 16
	ldbcPostV
	ldbcKnowsE
	ldbcPartE
	ldbcLocatedE
	ldbcModeratorE
	ldbcPostE
	ldbcTagE
	ldbcPersonE
	ldbcActivityE
)

// LDBC generates the LDBC-SNB-style social network: the only dataset
// with properties on both nodes and edges, a single connected
// component, power-law user activity, and assortative interests — the
// characteristics for which the paper selects the LDBC generator over
// a real social-network dump.
//
// Layout is fully precomputed — vertex and edge counts per phase are
// derived from the scale alone — so every shard knows its slot range
// and the uid properties (which equal the object's global index, as in
// the sequential generator) up front.
func LDBC(scale float64) *core.Graph {
	const seed = ldbcSeed
	totalV := scaled(184_000, scale, 1_500)
	totalE := scaled(1_500_000, scale, 12_000)

	// Node composition (fractions chosen to mimic SNB output: content
	// dominates, persons are few).
	nPersons := totalV * 2 / 100
	if nPersons < 50 {
		nPersons = 50
	}
	nForums := totalV * 2 / 100
	nTags := totalV * 3 / 100
	nPlaces := totalV / 100
	nOrgs := totalV / 100
	if nForums < 5 {
		nForums = 5
	}
	if nTags < 10 {
		nTags = 10
	}
	if nPlaces < 5 {
		nPlaces = 5
	}
	if nOrgs < 4 {
		nOrgs = 4
	}
	nPosts := totalV - nPersons - nForums - nTags - nPlaces - nOrgs

	// Vertex bases, in the canonical insertion order.
	basePerson := 0
	basePlace := basePerson + nPersons
	baseOrg := basePlace + nPlaces
	baseTag := baseOrg + nOrgs
	baseForum := baseTag + nTags
	basePost := baseForum + nForums

	// Edge bases: the connectivity skeleton (fixed sizes), then activity
	// edges filling the remaining budget.
	eKnows := nPersons - 1
	ePart := nPlaces - 1
	eLocated := nOrgs
	eModerator := nForums
	ePost := 2 * nPosts
	eTag := nTags
	ePerson := 3 * nPersons
	skeleton := eKnows + ePart + eLocated + eModerator + ePost + eTag + ePerson
	activity := totalE - skeleton
	if activity < 0 {
		activity = 0
	}

	baseKnows := 0
	basePart := baseKnows + eKnows
	baseLocated := basePart + ePart
	baseModerator := baseLocated + eLocated
	basePostE := baseModerator + eModerator
	baseTagE := basePostE + ePost
	basePersonE := baseTagE + eTag
	baseActivity := basePersonE + ePerson

	g := &core.Graph{
		VProps: make([]core.Props, totalV),
		EdgeL:  make([]core.EdgeRec, skeleton+activity),
	}
	browsers := []string{"Firefox", "Chrome", "Safari", "Opera"}

	// day is a timestamp within the dataset's 3-year window.
	day := func(rng *rand.Rand) core.Value { return core.I(int64(rng.Intn(1095))) }
	euid := func(rng *rand.Rand, e int) core.Props {
		return core.Props{"uid": core.I(int64(e)), "at": day(rng)}
	}

	// --- vertices ---
	forShards(nPersons, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcPersonV, shard)
		for i := start; i < end; i++ {
			g.VProps[basePerson+i] = core.Props{
				"kind":      core.S("person"),
				"uid":       core.I(int64(basePerson + i)),
				"firstName": core.S(fmt.Sprintf("First%04d", i)),
				"lastName":  core.S(fmt.Sprintf("Last%04d", i%500)),
				"birthday":  core.I(int64(1950 + rng.Intn(55))),
				"browser":   core.S(browsers[rng.Intn(len(browsers))]),
				"ip":        core.S(fmt.Sprintf("10.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256))),
			}
		}
	})
	forShards(nPlaces, func(_, start, end int) {
		for i := start; i < end; i++ {
			g.VProps[basePlace+i] = core.Props{
				"kind": core.S("place"), "uid": core.I(int64(basePlace + i)),
				"name": core.S(fmt.Sprintf("city-%03d", i)),
			}
		}
	})
	forShards(nOrgs, func(_, start, end int) {
		for i := start; i < end; i++ {
			kind := "company"
			if i%2 == 1 {
				kind = "university"
			}
			g.VProps[baseOrg+i] = core.Props{
				"kind": core.S(kind), "uid": core.I(int64(baseOrg + i)),
				"name": core.S(fmt.Sprintf("%s-%03d", kind, i)),
			}
		}
	})
	forShards(nTags, func(_, start, end int) {
		for i := start; i < end; i++ {
			g.VProps[baseTag+i] = core.Props{
				"kind": core.S("tag"), "uid": core.I(int64(baseTag + i)),
				"name": core.S(fmt.Sprintf("tag-%04d", i)),
			}
		}
	})
	forShards(nForums, func(_, start, end int) {
		for i := start; i < end; i++ {
			g.VProps[baseForum+i] = core.Props{
				"kind": core.S("forum"), "uid": core.I(int64(baseForum + i)),
				"title": core.S(fmt.Sprintf("forum-%04d", i)),
			}
		}
	})
	forShards(nPosts, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcPostV, shard)
		for i := start; i < end; i++ {
			g.VProps[basePost+i] = core.Props{
				"kind": core.S("post"), "uid": core.I(int64(basePost + i)),
				"length": core.I(int64(10 + rng.Intn(500))),
			}
		}
	})

	// --- connectivity skeleton: guarantees one component ---
	// Chain + preferential attachment gives connected power-law knows.
	forShards(eKnows, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcKnowsE, shard)
		for j := start; j < end; j++ {
			e := baseKnows + j
			g.EdgeL[e] = core.EdgeRec{
				Src: basePerson + j + 1, Dst: basePerson + powerLawIndex(rng, j+1, 0.55),
				Label: "knows",
				Props: core.Props{"uid": core.I(int64(e)), "since": day(rng)},
			}
		}
	})
	forShards(ePart, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcPartE, shard)
		for j := start; j < end; j++ {
			e := basePart + j
			g.EdgeL[e] = core.EdgeRec{
				Src: basePlace + j + 1, Dst: basePlace,
				Label: "isPartOf", Props: euid(rng, e),
			}
		}
	})
	forShards(eLocated, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcLocatedE, shard)
		for j := start; j < end; j++ {
			e := baseLocated + j
			g.EdgeL[e] = core.EdgeRec{
				Src: baseOrg + j, Dst: basePlace + j%nPlaces,
				Label: "locatedIn", Props: euid(rng, e),
			}
		}
	})
	forShards(eModerator, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcModeratorE, shard)
		for j := start; j < end; j++ {
			e := baseModerator + j
			g.EdgeL[e] = core.EdgeRec{
				Src: baseForum + j, Dst: basePerson + j%nPersons,
				Label: "hasModerator", Props: euid(rng, e),
			}
		}
	})
	// Every post is created by a (hub-biased) person and contained in a
	// forum: two edges per post.
	forShards(nPosts, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcPostE, shard)
		for j := start; j < end; j++ {
			e := basePostE + 2*j
			creator := basePerson + powerLawIndex(rng, nPersons, 0.6)
			g.EdgeL[e] = core.EdgeRec{
				Src: creator, Dst: basePost + j,
				Label: "created", Props: euid(rng, e),
			}
			g.EdgeL[e+1] = core.EdgeRec{
				Src: baseForum + j%nForums, Dst: basePost + j,
				Label: "containerOf", Props: euid(rng, e+1),
			}
		}
	})
	forShards(eTag, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcTagE, shard)
		for j := start; j < end; j++ {
			e := baseTagE + j
			g.EdgeL[e] = core.EdgeRec{
				Src: basePost + j%nPosts, Dst: baseTag + j,
				Label: "hasTag", Props: euid(rng, e),
			}
		}
	})
	// Every person lives somewhere, works somewhere, studied somewhere:
	// three edges per person.
	forShards(nPersons, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcPersonE, shard)
		for j := start; j < end; j++ {
			e := basePersonE + 3*j
			p := basePerson + j
			g.EdgeL[e] = core.EdgeRec{
				Src: p, Dst: basePlace + rng.Intn(nPlaces),
				Label: "livesIn", Props: euid(rng, e),
			}
			g.EdgeL[e+1] = core.EdgeRec{
				Src: p, Dst: baseOrg + rng.Intn(nOrgs),
				Label: "worksAt",
				Props: core.Props{"uid": core.I(int64(e + 1)), "since": day(rng)},
			}
			g.EdgeL[e+2] = core.EdgeRec{
				Src: p, Dst: baseOrg + rng.Intn(nOrgs),
				Label: "studyAt",
				Props: core.Props{"uid": core.I(int64(e + 2)), "classYear": core.I(int64(1990 + rng.Intn(25)))},
			}
		}
	})

	// --- activity: fill the remaining edge budget ---
	forShards(activity, func(shard, start, end int) {
		rng := shardRNG(seed, ldbcActivityE, shard)
		for j := start; j < end; j++ {
			e := baseActivity + j
			p := basePerson + powerLawIndex(rng, nPersons, 0.6)
			switch rng.Intn(10) {
			case 0, 1, 2: // likes dominate, hub posts attract most
				g.EdgeL[e] = core.EdgeRec{
					Src: p, Dst: basePost + powerLawIndex(rng, nPosts, 0.7),
					Label: "likes", Props: euid(rng, e),
				}
			case 3, 4:
				g.EdgeL[e] = core.EdgeRec{
					Src: p, Dst: basePost + rng.Intn(nPosts),
					Label: "likes", Props: euid(rng, e),
				}
			case 5:
				g.EdgeL[e] = core.EdgeRec{
					Src: p, Dst: basePerson + powerLawIndex(rng, nPersons, 0.55),
					Label: "knows",
					Props: core.Props{"uid": core.I(int64(e)), "since": day(rng)},
				}
			case 6:
				g.EdgeL[e] = core.EdgeRec{
					Src: p, Dst: baseTag + rng.Intn(nTags),
					Label: "hasInterest", Props: euid(rng, e),
				}
			case 7:
				g.EdgeL[e] = core.EdgeRec{
					Src: baseForum + rng.Intn(nForums), Dst: p,
					Label: "hasMember",
					Props: core.Props{"uid": core.I(int64(e)), "joined": day(rng)},
				}
			case 8:
				g.EdgeL[e] = core.EdgeRec{
					Src: p, Dst: baseForum + rng.Intn(nForums),
					Label: "follows", Props: euid(rng, e),
				}
			case 9:
				// Replies need two distinct posts; every slot must yield an
				// edge (slot == uid), so redraw the target, falling back to
				// a like when the post table is degenerate.
				a := rng.Intn(nPosts)
				b := rng.Intn(nPosts)
				if a == b {
					b = (a + 1) % nPosts
				}
				if a != b {
					g.EdgeL[e] = core.EdgeRec{
						Src: basePost + a, Dst: basePost + b,
						Label: "replyOf", Props: euid(rng, e),
					}
				} else {
					g.EdgeL[e] = core.EdgeRec{
						Src: p, Dst: basePost + a,
						Label: "likes", Props: euid(rng, e),
					}
				}
			}
		}
	})
	return g
}
