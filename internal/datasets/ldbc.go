package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// The 15 edge labels of the ldbc dataset (Table 3 reports |L| = 15).
var ldbcLabels = []string{
	"knows", "livesIn", "worksAt", "studyAt", "hasInterest",
	"hasModerator", "hasMember", "containerOf", "created", "likes",
	"hasTag", "replyOf", "locatedIn", "isPartOf", "follows",
}

// LDBC generates the LDBC-SNB-style social network: the only dataset
// with properties on both nodes and edges, a single connected
// component, power-law user activity, and assortative interests — the
// characteristics for which the paper selects the LDBC generator over
// a real social-network dump.
func LDBC(scale float64) *core.Graph {
	rng := rand.New(rand.NewSource(7))
	totalV := scaled(184_000, scale, 1_500)
	totalE := scaled(1_500_000, scale, 12_000)

	// Node composition (fractions chosen to mimic SNB output: content
	// dominates, persons are few).
	nPersons := totalV * 2 / 100
	if nPersons < 50 {
		nPersons = 50
	}
	nForums := totalV * 2 / 100
	nTags := totalV * 3 / 100
	nPlaces := totalV / 100
	nOrgs := totalV / 100
	if nForums < 5 {
		nForums = 5
	}
	if nTags < 10 {
		nTags = 10
	}
	if nPlaces < 5 {
		nPlaces = 5
	}
	if nOrgs < 4 {
		nOrgs = 4
	}
	nPosts := totalV - nPersons - nForums - nTags - nPlaces - nOrgs

	g := core.NewGraph(totalV, totalE)
	browsers := []string{"Firefox", "Chrome", "Safari", "Opera"}

	person := make([]int, nPersons)
	for i := range person {
		person[i] = g.AddVertex(core.Props{
			"kind":      core.S("person"),
			"uid":       core.I(int64(g.NumVertices())),
			"firstName": core.S(fmt.Sprintf("First%04d", i)),
			"lastName":  core.S(fmt.Sprintf("Last%04d", i%500)),
			"birthday":  core.I(int64(1950 + rng.Intn(55))),
			"browser":   core.S(browsers[rng.Intn(len(browsers))]),
			"ip":        core.S(fmt.Sprintf("10.%d.%d.%d", rng.Intn(256), rng.Intn(256), rng.Intn(256))),
		})
	}
	place := make([]int, nPlaces)
	for i := range place {
		place[i] = g.AddVertex(core.Props{
			"kind": core.S("place"), "uid": core.I(int64(g.NumVertices())),
			"name": core.S(fmt.Sprintf("city-%03d", i)),
		})
	}
	org := make([]int, nOrgs)
	for i := range org {
		kind := "company"
		if i%2 == 1 {
			kind = "university"
		}
		org[i] = g.AddVertex(core.Props{
			"kind": core.S(kind), "uid": core.I(int64(g.NumVertices())),
			"name": core.S(fmt.Sprintf("%s-%03d", kind, i)),
		})
	}
	tag := make([]int, nTags)
	for i := range tag {
		tag[i] = g.AddVertex(core.Props{
			"kind": core.S("tag"), "uid": core.I(int64(g.NumVertices())),
			"name": core.S(fmt.Sprintf("tag-%04d", i)),
		})
	}
	forum := make([]int, nForums)
	for i := range forum {
		forum[i] = g.AddVertex(core.Props{
			"kind": core.S("forum"), "uid": core.I(int64(g.NumVertices())),
			"title": core.S(fmt.Sprintf("forum-%04d", i)),
		})
	}
	post := make([]int, nPosts)
	for i := range post {
		post[i] = g.AddVertex(core.Props{
			"kind": core.S("post"), "uid": core.I(int64(g.NumVertices())),
			"length": core.I(int64(10 + rng.Intn(500))),
		})
	}

	day := func() core.Value { return core.I(int64(rng.Intn(1095))) } // 3 years
	euid := func() core.Props {
		return core.Props{"uid": core.I(int64(g.NumEdges())), "at": day()}
	}

	// --- connectivity skeleton: guarantees one component ---
	for i := 1; i < nPersons; i++ {
		// Chain + preferential attachment gives connected power-law knows.
		g.AddEdge(person[i], person[powerLawIndex(rng, i, 0.55)], "knows",
			core.Props{"uid": core.I(int64(g.NumEdges())), "since": day()})
	}
	for i, p := range place {
		if i > 0 {
			g.AddEdge(place[i], place[0], "isPartOf", euid())
		}
		_ = p
	}
	for i, o := range org {
		g.AddEdge(o, place[i%nPlaces], "locatedIn", euid())
	}
	for i, f := range forum {
		g.AddEdge(f, person[i%nPersons], "hasModerator", euid())
	}
	for i, po := range post {
		creator := person[powerLawIndex(rng, nPersons, 0.6)]
		g.AddEdge(creator, po, "created", euid())
		g.AddEdge(forum[i%nForums], po, "containerOf", euid())
	}
	for i, tg := range tag {
		g.AddEdge(post[i%nPosts], tg, "hasTag", euid())
	}
	for _, p := range person {
		g.AddEdge(p, place[rng.Intn(nPlaces)], "livesIn", euid())
		g.AddEdge(p, org[rng.Intn(nOrgs)], "worksAt",
			core.Props{"uid": core.I(int64(g.NumEdges())), "since": day()})
		g.AddEdge(p, org[rng.Intn(nOrgs)], "studyAt",
			core.Props{"uid": core.I(int64(g.NumEdges())), "classYear": core.I(int64(1990 + rng.Intn(25)))})
	}

	// --- activity: fill the remaining edge budget ---
	for g.NumEdges() < totalE {
		p := person[powerLawIndex(rng, nPersons, 0.6)]
		switch rng.Intn(10) {
		case 0, 1, 2: // likes dominate, hub posts attract most
			g.AddEdge(p, post[powerLawIndex(rng, nPosts, 0.7)], "likes", euid())
		case 3, 4:
			g.AddEdge(p, post[rng.Intn(nPosts)], "likes", euid())
		case 5:
			g.AddEdge(p, person[powerLawIndex(rng, nPersons, 0.55)], "knows",
				core.Props{"uid": core.I(int64(g.NumEdges())), "since": day()})
		case 6:
			g.AddEdge(p, tag[rng.Intn(nTags)], "hasInterest", euid())
		case 7:
			g.AddEdge(forum[rng.Intn(nForums)], p, "hasMember",
				core.Props{"uid": core.I(int64(g.NumEdges())), "joined": day()})
		case 8:
			g.AddEdge(p, forum[rng.Intn(nForums)], "follows", euid())
		case 9:
			a := rng.Intn(nPosts)
			b := rng.Intn(nPosts)
			if a != b {
				g.AddEdge(post[a], post[b], "replyOf", euid())
			}
		}
	}
	return g
}
