package datasets

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
)

// buildV1Artifact reproduces the exact format-v1 framing (magic,
// version byte 1, fingerprint, big-endian payload length, payload CRC,
// payload) so healing tests can plant a genuine old-format artifact.
func buildV1Artifact(fp [32]byte, payload []byte) []byte {
	out := append([]byte(snapshotMagic), 1)
	out = append(out, fp[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// TestAcquireHealsV1Artifact: a well-formed format-v1 artifact on the
// acquire path must not be served — the version check rejects it, the
// dataset regenerates, and the artifact is overwritten in place with a
// format-v2 one that hits on the next acquire. This is the upgrade
// path for caches written before the format bump.
func TestAcquireHealsV1Artifact(t *testing.T) {
	dir := t.TempDir()
	spec := ByName("yeast")
	fp := SnapshotFingerprint("yeast", snapTestScale, spec.Seed)
	path := SnapshotPath(dir, "yeast", fp)
	if err := os.WriteFile(path, buildV1Artifact(fp, []byte("old v1 payload bytes")), 0o644); err != nil {
		t.Fatal(err)
	}

	g, st, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hit {
		t.Fatal("format-v1 artifact served as a hit")
	}
	if st.Err == nil || !st.Stored {
		t.Fatalf("v1 artifact not reported+healed: %+v", st)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) <= snapshotHeaderLen || raw[4] != snapshotVersion {
		t.Fatalf("healed artifact is not format v%d", snapshotVersion)
	}
	g2, st2, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Hit {
		t.Fatal("healed artifact does not hit")
	}
	want := spec.Generate(snapTestScale)
	for _, got := range []*core.Graph{g, g2} {
		if !reflect.DeepEqual(got.VProps, want.VProps) || !reflect.DeepEqual(got.EdgeL, want.EdgeL) {
			t.Fatal("healed graph differs from generation")
		}
	}
}

// csrEqual compares the traversal-relevant fields of two snapshots.
func csrEqual(t *testing.T, got, want *core.CSR) {
	t.Helper()
	type pair struct {
		name string
		a, b any
	}
	for _, p := range []pair{
		{"Labels", got.Labels, want.Labels},
		{"OutOff", got.OutOff, want.OutOff},
		{"InOff", got.InOff, want.InOff},
		{"UndOff", got.UndOff, want.UndOff},
		{"UndAdj", got.UndAdj, want.UndAdj},
		{"LabelIx", got.LabelIx, want.LabelIx},
		{"LabelOff", got.LabelOff, want.LabelOff},
		{"LabelAdj", got.LabelAdj, want.LabelAdj},
	} {
		if !reflect.DeepEqual(p.a, p.b) {
			t.Fatalf("snapshot %s differs:\n got %v\nwant %v", p.name, p.a, p.b)
		}
	}
}

// TestAcquireMmapMatchesHeap is the zero-copy equivalence contract:
// a mapped open must produce exactly the graph and snapshot a heap
// decode produces, and concurrent mapped opens share one mapping.
func TestAcquireMmapMatchesHeap(t *testing.T) {
	dir := t.TempDir()
	gen, _, err := Acquire("frb-s", snapTestScale, dir) // cold: generates+stores
	if err != nil {
		t.Fatal(err)
	}
	heap, stH, err := Acquire("frb-s", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !stH.Hit || stH.Mapped {
		t.Fatalf("heap acquire: %+v", stH)
	}
	mm, stM, err := AcquireWith("frb-s", snapTestScale, AcquireOptions{CacheDir: dir, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stM.Hit {
		t.Fatalf("mmap acquire missed: %+v", stM)
	}
	for _, g := range []*core.Graph{heap, mm} {
		if !reflect.DeepEqual(g.VProps, gen.VProps) || !reflect.DeepEqual(g.EdgeL, gen.EdgeL) {
			t.Fatal("decoded graph differs from generated one")
		}
	}
	csrEqual(t, mm.Snapshot(), gen.Snapshot())
	csrEqual(t, heap.Snapshot(), gen.Snapshot())

	// Concurrent mapped opens of the same artifact: one shared mapping,
	// all value-identical.
	const readers = 8
	graphs := make([]*core.Graph, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i], _, errs[i] = AcquireWith("frb-s", snapTestScale, AcquireOptions{CacheDir: dir, Mmap: true})
		}(i)
	}
	wg.Wait()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(graphs[i].EdgeL, gen.EdgeL) {
			t.Fatalf("mapped reader %d got a different graph", i)
		}
	}
}

// TestAcquireMmapHealsCorruptArtifact: a mapped open of a corrupt
// artifact must fall back to regeneration, heal the file, and — the
// subtle part — drop the stale shared mapping so the next mapped open
// maps the healed bytes, not the old ones.
func TestAcquireMmapHealsCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	gen, st1, err := Acquire("yeast", snapTestScale, dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(st1.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01 // flip a byte inside the last section
	if err := os.WriteFile(st1.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	g, st, err := AcquireWith("yeast", snapTestScale, AcquireOptions{CacheDir: dir, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hit || st.Err == nil || !st.Stored {
		t.Fatalf("corrupt mapped artifact not reported+healed: %+v", st)
	}
	if !reflect.DeepEqual(g.EdgeL, gen.EdgeL) {
		t.Fatal("regenerated graph differs")
	}
	g2, st2, err := AcquireWith("yeast", snapTestScale, AcquireOptions{CacheDir: dir, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Hit {
		t.Fatalf("healed artifact does not hit under mmap: %+v", st2)
	}
	if !reflect.DeepEqual(g2.EdgeL, gen.EdgeL) || !reflect.DeepEqual(g2.VProps, gen.VProps) {
		t.Fatal("mapped graph after healing differs")
	}
}

// TestAcquireCSR: the snapshot-only acquire must serve a CSR identical
// to the full graph's snapshot — cold (generate+store, build) and warm
// (decoded straight from the artifact's columnar sections, heap or
// mapped) — without ever diverging.
func TestAcquireCSR(t *testing.T) {
	dir := t.TempDir()
	c1, st1, err := AcquireCSR("yeast", snapTestScale, AcquireOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hit || !st1.Stored {
		t.Fatalf("cold CSR acquire: %+v", st1)
	}
	c2, st2, err := AcquireCSR("yeast", snapTestScale, AcquireOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Hit || st2.Stored {
		t.Fatalf("warm CSR acquire: %+v", st2)
	}
	c3, st3, err := AcquireCSR("yeast", snapTestScale, AcquireOptions{CacheDir: dir, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Hit {
		t.Fatalf("warm mapped CSR acquire: %+v", st3)
	}
	want := ByName("yeast").Generate(snapTestScale).Snapshot()
	for _, c := range []*core.CSR{c1, c2, c3} {
		csrEqual(t, c, want)
	}
	// Degree accessors agree on a few vertices.
	for v := 0; v < want.NumVertices() && v < 16; v++ {
		if c2.OutDegree(v) != want.OutDegree(v) || c3.Degree(v) != want.Degree(v) {
			t.Fatalf("degree mismatch at vertex %d", v)
		}
	}
	// No cache dir: plain generation, no artifact.
	c4, st4, err := AcquireCSR("yeast", snapTestScale, AcquireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st4.Hit || st4.Stored || st4.Path != "" {
		t.Fatalf("uncached CSR acquire touched the cache: %+v", st4)
	}
	csrEqual(t, c4, want)
	if _, _, err := AcquireCSR("no-such-dataset", 1, AcquireOptions{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
