package core

import (
	"sync"
	"testing"
)

// stubEngine is a minimal map-backed Engine for guard tests. It is
// deliberately unsynchronized — the guard must provide all mutual
// exclusion — and counts how many operations are in flight so tests
// can prove writers never overlap anything.
type stubEngine struct {
	vetoReads  bool
	grantWrite bool

	nextID   ID
	vertices map[ID]Props
	edges    map[ID][3]int64 // src, dst, label index (unused)

	inFlight   int
	maxReaders int
	overlapped bool // a writer overlapped another operation
	writing    bool
	trackMu    sync.Mutex // tracking only; never protects the maps
}

func newStub(vetoReads bool) *stubEngine {
	return &stubEngine{
		vetoReads: vetoReads, grantWrite: !vetoReads,
		vertices: map[ID]Props{}, edges: map[ID][3]int64{},
	}
}

func (s *stubEngine) enter(write bool) func() {
	s.trackMu.Lock()
	if s.writing || (write && s.inFlight > 0) {
		s.overlapped = true
	}
	s.inFlight++
	if write {
		s.writing = true
	} else if s.inFlight > s.maxReaders {
		s.maxReaders = s.inFlight
	}
	s.trackMu.Unlock()
	return func() {
		s.trackMu.Lock()
		s.inFlight--
		if write {
			s.writing = false
		}
		s.trackMu.Unlock()
	}
}

func (s *stubEngine) ConcurrentReads() bool  { return !s.vetoReads }
func (s *stubEngine) ConcurrentWrites() bool { return s.grantWrite }

func (s *stubEngine) Meta() EngineMeta {
	return EngineMeta{Name: "stub", Kind: KindNative, Storage: "maps", EdgeTraversal: "maps", Gremlin: "-"}
}

func (s *stubEngine) AddVertex(props Props) (ID, error) {
	defer s.enter(true)()
	id := s.nextID
	s.nextID++
	s.vertices[id] = props
	return id, nil
}

func (s *stubEngine) AddEdge(src, dst ID, label string, props Props) (ID, error) {
	defer s.enter(true)()
	id := s.nextID
	s.nextID++
	s.edges[id] = [3]int64{int64(src), int64(dst), 0}
	return id, nil
}

func (s *stubEngine) HasVertex(id ID) bool {
	defer s.enter(false)()
	_, ok := s.vertices[id]
	return ok
}

func (s *stubEngine) HasEdge(id ID) bool {
	defer s.enter(false)()
	_, ok := s.edges[id]
	return ok
}

func (s *stubEngine) VertexProps(id ID) (Props, error) {
	defer s.enter(false)()
	p, ok := s.vertices[id]
	if !ok {
		return nil, ErrNotFound
	}
	return p, nil
}

func (s *stubEngine) EdgeProps(id ID) (Props, error)           { return nil, ErrNotFound }
func (s *stubEngine) VertexProp(id ID, n string) (Value, bool) { return Nil, false }
func (s *stubEngine) EdgeProp(id ID, n string) (Value, bool)   { return Nil, false }
func (s *stubEngine) EdgeLabel(id ID) (string, error)          { return "", ErrNotFound }
func (s *stubEngine) EdgeEnds(id ID) (ID, ID, error) {
	defer s.enter(false)()
	e, ok := s.edges[id]
	if !ok {
		return NoID, NoID, ErrNotFound
	}
	return ID(e[0]), ID(e[1]), nil
}

func (s *stubEngine) SetVertexProp(id ID, n string, v Value) error {
	defer s.enter(true)()
	p, ok := s.vertices[id]
	if !ok {
		return ErrNotFound
	}
	if p == nil {
		p = Props{}
		s.vertices[id] = p
	}
	p[n] = v
	return nil
}

func (s *stubEngine) SetEdgeProp(id ID, n string, v Value) error { return ErrNotFound }

func (s *stubEngine) RemoveVertex(id ID) error {
	defer s.enter(true)()
	if _, ok := s.vertices[id]; !ok {
		return ErrNotFound
	}
	delete(s.vertices, id)
	for eid, e := range s.edges {
		if ID(e[0]) == id || ID(e[1]) == id {
			delete(s.edges, eid)
		}
	}
	return nil
}

func (s *stubEngine) RemoveEdge(id ID) error {
	defer s.enter(true)()
	if _, ok := s.edges[id]; !ok {
		return ErrNotFound
	}
	delete(s.edges, id)
	return nil
}

func (s *stubEngine) RemoveVertexProp(id ID, n string) error { return ErrNotFound }
func (s *stubEngine) RemoveEdgeProp(id ID, n string) error   { return ErrNotFound }

func (s *stubEngine) CountVertices() (int64, error) {
	defer s.enter(false)()
	return int64(len(s.vertices)), nil
}

func (s *stubEngine) CountEdges() (int64, error) {
	defer s.enter(false)()
	return int64(len(s.edges)), nil
}

func (s *stubEngine) Vertices() Iter[ID] {
	defer s.enter(false)()
	ids := make([]ID, 0, len(s.vertices))
	for id := range s.vertices {
		ids = append(ids, id)
	}
	return SliceIter(ids)
}

func (s *stubEngine) Edges() Iter[ID] {
	defer s.enter(false)()
	ids := make([]ID, 0, len(s.edges))
	for id := range s.edges {
		ids = append(ids, id)
	}
	return SliceIter(ids)
}

func (s *stubEngine) VerticesByProp(n string, v Value) Iter[ID]              { return EmptyIter[ID]() }
func (s *stubEngine) EdgesByProp(n string, v Value) Iter[ID]                 { return EmptyIter[ID]() }
func (s *stubEngine) EdgesByLabel(l string) Iter[ID]                         { return EmptyIter[ID]() }
func (s *stubEngine) Neighbors(id ID, d Direction, ls ...string) Iter[ID]    { return EmptyIter[ID]() }
func (s *stubEngine) IncidentEdges(id ID, d Direction, l ...string) Iter[ID] { return EmptyIter[ID]() }

func (s *stubEngine) Degree(id ID, d Direction) (int64, error) {
	defer s.enter(false)()
	if _, ok := s.vertices[id]; !ok {
		return 0, ErrNotFound
	}
	n := int64(0)
	for _, e := range s.edges {
		if ID(e[0]) == id || ID(e[1]) == id {
			n++
		}
	}
	return n, nil
}

func (s *stubEngine) BuildVertexPropIndex(n string) error { return ErrUnsupported }
func (s *stubEngine) HasVertexPropIndex(n string) bool    { return false }

func (s *stubEngine) BulkLoad(g *Graph) (*LoadResult, error) {
	defer s.enter(true)()
	res := &LoadResult{}
	for _, p := range g.VProps {
		id := s.nextID
		s.nextID++
		s.vertices[id] = p
		res.VertexIDs = append(res.VertexIDs, id)
	}
	for _, e := range g.EdgeL {
		id := s.nextID
		s.nextID++
		s.edges[id] = [3]int64{int64(res.VertexIDs[e.Src]), int64(res.VertexIDs[e.Dst]), 0}
		res.EdgeIDs = append(res.EdgeIDs, id)
	}
	return res, nil
}

func (s *stubEngine) SpaceUsage() SpaceReport { return SpaceReport{} }
func (s *stubEngine) Close() error            { return nil }

// TestGuardSingleWriterMultiReader hammers a guarded unsynchronized
// engine with concurrent readers and writers: the tracking instruments
// in the stub prove no writer ever overlapped another operation, and
// the race detector proves the guard's locking covers the map accesses.
func TestGuardSingleWriterMultiReader(t *testing.T) {
	s := newStub(false)
	g := Guard(s)
	if g.Exclusive() {
		t.Fatal("guard serialized a read-granting engine")
	}
	seed, err := g.AddVertex(nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v, _ := g.AddVertex(Props{"i": I(int64(i))})
				g.AddEdge(seed, v, "w", nil)
				g.SetVertexProp(v, "touch", I(int64(w)))
				if i%3 == 0 {
					g.RemoveVertex(v)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				g.HasVertex(seed)
				g.CountVertices()
				g.CountEdges()
				Drain(g.Vertices())
				g.Degree(seed, DirBoth)
			}
		}()
	}
	wg.Wait()
	s.trackMu.Lock()
	defer s.trackMu.Unlock()
	if s.overlapped {
		t.Fatal("a writer overlapped another operation under the guard")
	}
	if s.maxReaders < 2 {
		t.Log("note: readers never actually overlapped (scheduling-dependent)")
	}
}

// TestGuardExclusiveForVetoingEngine verifies the degraded mode: an
// engine vetoing concurrent reads gets full mutual exclusion, and the
// guarded view re-grants ConcurrentReads (results can no longer depend
// on interleaving).
func TestGuardExclusiveForVetoingEngine(t *testing.T) {
	s := newStub(true)
	g := Guard(s)
	if !g.Exclusive() {
		t.Fatal("guard did not serialize a vetoing engine")
	}
	if !g.ConcurrentReads() {
		t.Fatal("guarded view must grant ConcurrentReads (it serializes)")
	}
	if g.ConcurrentWrites() {
		t.Fatal("guard invented a ConcurrentWrites grant")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v, _ := g.AddVertex(nil)
				g.HasVertex(v)
				g.CountVertices()
			}
		}()
	}
	wg.Wait()
	s.trackMu.Lock()
	defer s.trackMu.Unlock()
	if s.overlapped {
		t.Fatal("operations overlapped under the exclusive guard")
	}
	if s.maxReaders > 1 {
		t.Fatalf("%d readers overlapped under the exclusive guard", s.maxReaders)
	}
}

// TestGuardSnapshotIterators proves an iterator handed out by the
// guard is a stable snapshot: mutations after the call must not change
// (or race) what it yields.
func TestGuardSnapshotIterators(t *testing.T) {
	g := Guard(newStub(false))
	var want []ID
	for i := 0; i < 10; i++ {
		v, _ := g.AddVertex(nil)
		want = append(want, v)
	}
	it := g.Vertices()
	for _, v := range want {
		g.RemoveVertex(v)
	}
	if n := Drain(it); n != len(want) {
		t.Fatalf("snapshot iterator yielded %d, want %d", n, len(want))
	}
	if n, _ := g.CountVertices(); n != 0 {
		t.Fatalf("mutations lost: %d vertices", n)
	}
}

// TestGuardForwardsCapabilities checks the optional interfaces pass
// through the wrapper.
func TestGuardForwardsCapabilities(t *testing.T) {
	s := newStub(false)
	g := Guard(s)
	if !g.ConcurrentWrites() {
		t.Fatal("ConcurrentWrites grant not forwarded")
	}
	if g.PlanStats() != nil {
		t.Fatal("PlanStats invented for a stats-less engine")
	}
	if g.Unwrap() != Engine(s) {
		t.Fatal("Unwrap lost the inner engine")
	}
}
