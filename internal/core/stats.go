package core

import (
	"sort"
	"sync/atomic"
)

// PlanStats is the cheap cardinality summary the query planner reads:
// vertex/edge totals, per-label edge counts and log-bucketed degree
// histograms, all derived in one pass from the CSR snapshot a dataset
// graph already carries. No statistics machinery — these are exactly
// the signals Graph.Snapshot() computes anyway, packaged so the
// gremlin optimizer can rank commutable filter steps without touching
// the engine.
//
// Stats are taken at bulk-load time and never refreshed: they are
// estimates that influence only the *order* of commutable steps, never
// the result, so staleness after mutation is harmless.
type PlanStats struct {
	// V and E are the snapshotted vertex and edge counts.
	V, E int64

	// labels is the sorted distinct edge label set; labelEdges[i] is
	// the number of edges carrying labels[i].
	labels     []string
	labelEdges []int64

	// degHist[d][b] counts vertices whose degree in direction d has
	// bit-length b (bucket 0 holds degree-0 vertices). Three rows:
	// DirOut, DirIn, DirBoth.
	degHist [3][maxDegBits]int64
}

// maxDegBits bounds the degree histogram: bit-length of an int32
// degree never exceeds 31, plus the zero bucket.
const maxDegBits = 32

// EdgesWithLabel returns the number of snapshotted edges carrying the
// label, and whether the label exists at all.
func (s *PlanStats) EdgesWithLabel(label string) (int64, bool) {
	i := sort.SearchStrings(s.labels, label)
	if i < len(s.labels) && s.labels[i] == label {
		return s.labelEdges[i], true
	}
	return 0, false
}

// LabelSelectivity estimates the fraction of edges that carry the
// label.
func (s *PlanStats) LabelSelectivity(label string) float64 {
	if s.E == 0 {
		return 0
	}
	n, _ := s.EdgesWithLabel(label)
	return float64(n) / float64(s.E)
}

// DegreeAtLeastFrac estimates the fraction of vertices whose degree in
// direction d is at least k, from the log-bucketed histogram: buckets
// entirely above k count fully, the bucket straddling k counts by its
// covered fraction.
func (s *PlanStats) DegreeAtLeastFrac(d Direction, k int64) float64 {
	if s.V == 0 {
		return 0
	}
	if k <= 0 {
		return 1
	}
	h := &s.degHist[d]
	var n float64
	for b := 1; b < maxDegBits; b++ {
		lo := int64(1) << (b - 1) // smallest degree in bucket b
		hi := lo<<1 - 1           // largest
		switch {
		case lo >= k:
			n += float64(h[b])
		case hi >= k:
			// k falls inside this bucket: assume uniform occupancy.
			n += float64(h[b]) * float64(hi-k+1) / float64(hi-lo+1)
		}
	}
	return n / float64(s.V)
}

// AvgDegree estimates the mean per-vertex fan-out in direction d,
// restricted to the given edge labels (all labels when none given).
func (s *PlanStats) AvgDegree(d Direction, labels []string) float64 {
	if s.V == 0 {
		return 0
	}
	edges := s.E
	if len(labels) > 0 {
		edges = 0
		for _, l := range labels {
			n, _ := s.EdgesWithLabel(l)
			edges += n
		}
	}
	per := float64(edges) / float64(s.V)
	if d == DirBoth {
		per *= 2
	}
	return per
}

// PlanStatsProvider is implemented by engines that retain planning
// statistics from their bulk-loaded dataset. The gremlin optimizer
// consults it through a type assertion; engines without stats (or
// instances populated element by element, as in the shell) simply run
// with heuristic defaults. Like core.ConcurrentReader, this is an
// optional capability, not part of the Engine contract.
type PlanStatsProvider interface {
	// PlanStats returns the load-time statistics, or nil when none
	// were captured.
	PlanStats() *PlanStats
}

// PlanStatsHolder is an embeddable PlanStatsProvider: an engine embeds
// it and calls CapturePlanStats from its BulkLoad, after which the
// gremlin optimizer can read the dataset's cardinality signals through
// the engine. Engines populated element by element (the shell) never
// capture, and PlanStats stays nil — the optimizer then runs on
// heuristic defaults.
type PlanStatsHolder struct{ stats statsCache }

// PlanStats returns the captured statistics, or nil.
func (h *PlanStatsHolder) PlanStats() *PlanStats { return h.stats.Load() }

// CapturePlanStats derives and retains the planner statistics of the
// bulk-loaded graph. The stats are shared with every other engine
// loading the same graph — they live on the graph's CSR snapshot.
func (h *PlanStatsHolder) CapturePlanStats(g *Graph) {
	h.stats.Store(g.Snapshot().PlanStats())
}

// PlanStats derives (and caches) the planner statistics of this
// snapshot. Concurrent first calls may race to build, but every build
// produces identical contents, so whichever pointer wins is
// equivalent — the same contract Graph.Snapshot has.
func (c *CSR) PlanStats() *PlanStats {
	if s := c.stats.Load(); s != nil {
		return s
	}
	s := buildPlanStats(c)
	c.stats.Store(s)
	return s
}

func buildPlanStats(c *CSR) *PlanStats {
	s := &PlanStats{
		V:      int64(c.NumVertices()),
		E:      int64(c.NumEdges()),
		labels: c.Labels,
	}
	s.labelEdges = make([]int64, len(c.Labels))
	for i := range c.Labels {
		s.labelEdges[i] = int64(c.LabelEdgeCount(i))
	}
	for v := 0; v < c.NumVertices(); v++ {
		s.degHist[DirOut][bitLen(c.OutDegree(v))]++
		s.degHist[DirIn][bitLen(c.InDegree(v))]++
		s.degHist[DirBoth][bitLen(c.Degree(v))]++
	}
	return s
}

// bitLen returns the bucket index of a degree: 0 for degree 0, else
// the position of the highest set bit plus one.
func bitLen(d int) int {
	b := 0
	for d > 0 {
		b++
		d >>= 1
	}
	return b
}

// statsCache is the cached-stats slot embedded in CSR.
type statsCache = atomic.Pointer[PlanStats]
