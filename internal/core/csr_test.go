package core

import (
	"reflect"
	"sync"
	"testing"
)

func csrTestGraph() *Graph {
	g := NewGraph(4, 4)
	g.AddVertex(Props{"name": S("a")})
	g.AddVertex(Props{"name": S("b"), "x": I(1)})
	g.AddVertex(nil)
	g.AddVertex(Props{"name": S("d")})
	g.AddEdge(0, 1, "knows", Props{"w": I(1)})
	g.AddEdge(1, 2, "likes", nil)
	g.AddEdge(1, 2, "knows", nil) // parallel edge
	g.AddEdge(2, 2, "self", nil)  // self loop
	return g
}

func TestSnapshotMatchesGraphMethods(t *testing.T) {
	g := csrTestGraph()
	c := g.Snapshot()

	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("snapshot sizes %d/%d, graph %d/%d", c.NumVertices(), c.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if got := c.Labels; !reflect.DeepEqual(got, g.Labels()) {
		t.Fatalf("snapshot labels %v, graph %v", got, g.Labels())
	}
	out, in := g.OutDegrees(), g.InDegrees()
	adj := g.Adjacency()
	for v := 0; v < g.NumVertices(); v++ {
		if c.OutDegree(v) != out[v] {
			t.Errorf("vertex %d: OutDegree %d, want %d", v, c.OutDegree(v), out[v])
		}
		if c.InDegree(v) != in[v] {
			t.Errorf("vertex %d: InDegree %d, want %d", v, c.InDegree(v), in[v])
		}
		if c.Degree(v) != len(adj[v]) {
			t.Errorf("vertex %d: Degree %d, want %d", v, c.Degree(v), len(adj[v]))
		}
		und := c.Und(v)
		got := make(map[int]int)
		for _, w := range und {
			got[int(w)]++
		}
		want := make(map[int]int)
		for _, w := range adj[v] {
			want[w]++
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("vertex %d: neighbours %v, want %v", v, got, want)
		}
	}
	for e := range g.EdgeL {
		if c.LabelOf(e) != g.EdgeL[e].Label {
			t.Errorf("edge %d: label %q, want %q", e, c.LabelOf(e), g.EdgeL[e].Label)
		}
	}
	wantCount := make([]int, len(c.Labels))
	for _, ix := range c.LabelIx {
		wantCount[ix]++
	}
	for l := range c.Labels {
		if c.LabelEdgeCount(l) != wantCount[l] {
			t.Errorf("LabelEdgeCount(%d) = %d, want %d", l, c.LabelEdgeCount(l), wantCount[l])
		}
		prev := int32(-1)
		for _, e := range c.LabelEdges(l) {
			if c.LabelIx[e] != int32(l) {
				t.Errorf("LabelEdges(%d) contains edge %d with label %q", l, e, c.LabelOf(int(e)))
			}
			if e <= prev {
				t.Errorf("LabelEdges(%d) not ascending: %d after %d", l, e, prev)
			}
			prev = e
		}
	}
	if got := c.EdgesWithLabel("knows"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("EdgesWithLabel(knows) = %v, want [0 2]", got)
	}
	if got := c.EdgesWithLabel("absent"); got != nil {
		t.Errorf("EdgesWithLabel(absent) = %v, want nil", got)
	}
	if c.VPropTotal != 4 || c.EPropTotal != 1 {
		t.Errorf("prop totals %d/%d, want 4/1", c.VPropTotal, c.EPropTotal)
	}
}

func TestSnapshotCachedAndInvalidated(t *testing.T) {
	g := csrTestGraph()
	c1 := g.Snapshot()
	if c2 := g.Snapshot(); c1 != c2 {
		t.Fatal("second Snapshot did not return the cached pointer")
	}
	g.AddEdge(0, 3, "new", nil)
	c3 := g.Snapshot()
	if c3 == c1 {
		t.Fatal("mutation did not invalidate the snapshot")
	}
	if c3.NumEdges() != 5 || c3.OutDegree(0) != 2 {
		t.Fatalf("rebuilt snapshot stale: edges %d, outdeg(0) %d", c3.NumEdges(), c3.OutDegree(0))
	}
}

// TestSnapshotConcurrent exercises the build race under -race: many
// goroutines snapshotting one graph must all observe equivalent
// contents.
func TestSnapshotConcurrent(t *testing.T) {
	g := csrTestGraph()
	var wg sync.WaitGroup
	snaps := make([]*CSR, 8)
	for i := range snaps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snaps[i] = g.Snapshot()
		}(i)
	}
	wg.Wait()
	for i, c := range snaps {
		if !reflect.DeepEqual(c.UndOff, snaps[0].UndOff) || !reflect.DeepEqual(c.Labels, snaps[0].Labels) {
			t.Fatalf("snapshot %d differs", i)
		}
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	c := g.Snapshot()
	if c.NumVertices() != 0 || c.NumEdges() != 0 || len(c.Labels) != 0 {
		t.Fatalf("empty graph snapshot not empty: %+v", c)
	}
}
