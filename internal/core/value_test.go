package core

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsRoundTrip(t *testing.T) {
	if got := S("abc"); got.Kind() != KindString || got.Str() != "abc" {
		t.Errorf("S(abc) = %v", got)
	}
	if got := I(-42); got.Kind() != KindInt || got.Int() != -42 {
		t.Errorf("I(-42) = %v", got)
	}
	if got := F(3.25); got.Kind() != KindFloat || got.Float() != 3.25 {
		t.Errorf("F(3.25) = %v", got)
	}
	if got := B(true); got.Kind() != KindBool || !got.Bool() {
		t.Errorf("B(true) = %v", got)
	}
	if got := B(false); got.Bool() {
		t.Errorf("B(false).Bool() = true")
	}
	if !Nil.IsNil() || Nil.Kind() != KindNil {
		t.Errorf("Nil is not nil: %v", Nil)
	}
}

func TestValueCrossKindAccessorsAreZero(t *testing.T) {
	v := S("x")
	if v.Int() != 0 || v.Float() != 0 || v.Bool() {
		t.Errorf("string value leaked numeric payloads: %d %f %v", v.Int(), v.Float(), v.Bool())
	}
	w := I(7)
	if w.Str() != "" || w.Float() != 0 {
		t.Errorf("int value leaked other payloads")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Nil, "nil"},
		{S("hello"), "hello"},
		{I(12), "12"},
		{F(1.5), "1.5"},
		{B(true), "true"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueComparableAsMapKey(t *testing.T) {
	m := map[Value]int{S("a"): 1, I(1): 2, F(1): 3, B(true): 4}
	if len(m) != 4 {
		t.Fatalf("distinct values collided: %v", m)
	}
	if m[S("a")] != 1 || m[I(1)] != 2 {
		t.Fatalf("lookup failed")
	}
}

func TestValueCompareTotalOrderInts(t *testing.T) {
	f := func(a, b int64) bool {
		c := I(a).Compare(I(b))
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareTotalOrderStrings(t *testing.T) {
	f := func(a, b string) bool {
		c := S(a).Compare(S(b))
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		vs := []Value{I(a), I(b), S(s1), S(s2), F(float64(a) / 3), B(a%2 == 0), Nil}
		for _, x := range vs {
			for _, y := range vs {
				if sign(x.Compare(y)) != -sign(y.Compare(x)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

func TestValueCompareKindsOrdered(t *testing.T) {
	if S("z").Compare(I(0)) >= 0 == (KindString < KindInt) {
		t.Errorf("cross-kind compare does not follow kind order")
	}
	if Nil.Compare(S("")) >= 0 {
		t.Errorf("Nil should sort before strings")
	}
}

func TestPropsClone(t *testing.T) {
	p := Props{"a": I(1)}
	q := p.Clone()
	q["a"] = I(2)
	q["b"] = I(3)
	if p["a"].Int() != 1 || len(p) != 1 {
		t.Errorf("Clone is not defensive: %v", p)
	}
	if Props(nil).Clone() != nil {
		t.Errorf("nil clone should stay nil")
	}
}

func TestPropsBytesGrowsWithContent(t *testing.T) {
	small := Props{"k": S("v")}
	big := Props{"k": S("a much longer value than v"), "k2": S("more")}
	if small.Bytes() <= 0 || big.Bytes() <= small.Bytes() {
		t.Errorf("Bytes accounting not monotone: %d vs %d", small.Bytes(), big.Bytes())
	}
}
