package core

import (
	"fmt"
	"sort"
)

// EdgeRec is one edge of a dataset Graph. Src and Dst index into the
// graph's vertex table.
type EdgeRec struct {
	Src, Dst int
	Label    string
	Props    Props
}

// Graph is the engine-independent, in-memory dataset representation:
// what a GraphSON file deserializes to, and what the generators in
// internal/datasets produce. Vertices are implicit, numbered 0..NumV-1;
// VProps[i] holds the properties of vertex i.
//
// Graph is a value to load *into* engines, not a queryable store; engines
// each re-encode it into their own physical organization via BulkLoad.
type Graph struct {
	VProps []Props
	EdgeL  []EdgeRec

	// csr caches the CSR adjacency snapshot (see Snapshot); mutations
	// invalidate it.
	csr csrCache
}

// NewGraph returns an empty dataset graph with capacity hints.
func NewGraph(vcap, ecap int) *Graph {
	return &Graph{
		VProps: make([]Props, 0, vcap),
		EdgeL:  make([]EdgeRec, 0, ecap),
	}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.VProps) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.EdgeL) }

// AddVertex appends a vertex and returns its index.
func (g *Graph) AddVertex(p Props) int {
	g.csr.Store(nil)
	g.VProps = append(g.VProps, p)
	return len(g.VProps) - 1
}

// AddEdge appends an edge between existing vertex indexes.
func (g *Graph) AddEdge(src, dst int, label string, p Props) int {
	if src < 0 || src >= len(g.VProps) || dst < 0 || dst >= len(g.VProps) {
		panic(fmt.Sprintf("core: edge endpoints (%d,%d) out of range [0,%d)", src, dst, len(g.VProps)))
	}
	g.csr.Store(nil)
	g.EdgeL = append(g.EdgeL, EdgeRec{Src: src, Dst: dst, Label: label, Props: p})
	return len(g.EdgeL) - 1
}

// Labels returns the sorted set of distinct edge labels.
func (g *Graph) Labels() []string {
	set := make(map[string]struct{})
	for i := range g.EdgeL {
		set[g.EdgeL[i].Label] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []int {
	d := make([]int, len(g.VProps))
	for i := range g.EdgeL {
		d[g.EdgeL[i].Src]++
	}
	return d
}

// InDegrees returns the in-degree of every vertex.
func (g *Graph) InDegrees() []int {
	d := make([]int, len(g.VProps))
	for i := range g.EdgeL {
		d[g.EdgeL[i].Dst]++
	}
	return d
}

// Adjacency builds an undirected adjacency list (neighbour vertex
// indexes, both directions, with duplicates for parallel edges). It is
// used by the dataset statistics (components, diameter) and by tests.
func (g *Graph) Adjacency() [][]int {
	deg := make([]int, len(g.VProps))
	for i := range g.EdgeL {
		deg[g.EdgeL[i].Src]++
		deg[g.EdgeL[i].Dst]++
	}
	adj := make([][]int, len(g.VProps))
	for v, d := range deg {
		adj[v] = make([]int, 0, d)
	}
	for i := range g.EdgeL {
		e := &g.EdgeL[i]
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	return adj
}

// LoadResult maps dataset object indexes to engine-local IDs after a
// BulkLoad. The harness uses it so that "the same random node" can be
// queried in every engine, as the paper's methodology requires.
type LoadResult struct {
	VertexIDs []ID // VertexIDs[i] is the engine ID of dataset vertex i
	EdgeIDs   []ID // EdgeIDs[i] is the engine ID of dataset edge i
}

// SpaceReport is an engine's structural space accounting, the measure
// behind the paper's Figure 1(a,b).
type SpaceReport struct {
	// Total is the number of bytes attributed to the engine's persistent
	// structures (record files, trees, journals, documents, tables).
	Total int64
	// Breakdown attributes bytes to named components, e.g. "journal",
	// "spo-index", "node-store".
	Breakdown map[string]int64
}

// Add accumulates a component into the report.
func (s *SpaceReport) Add(component string, bytes int64) {
	if s.Breakdown == nil {
		s.Breakdown = make(map[string]int64)
	}
	s.Breakdown[component] += bytes
	s.Total += bytes
}

// SystemKind distinguishes the two architecture families of Table 1.
type SystemKind string

// Architecture families.
const (
	KindNative SystemKind = "Native"
	KindHybrid SystemKind = "Hybrid"
)

// EngineMeta is the static description of an engine, reproducing the
// columns of the paper's Table 1.
type EngineMeta struct {
	Name          string     // e.g. "neo-1.9"
	Kind          SystemKind // Native or Hybrid
	Substrate     string     // e.g. "Document", "RDF", "Relational", "Columnar"
	Storage       string     // storage description column
	EdgeTraversal string     // edge traversal mechanism column
	Gremlin       string     // supported Gremlin dialect version
	Execution     string     // query execution column
	Optimized     bool       // whether the engine conflates/optimizes steps
}
