package core

import (
	"reflect"
	"testing"
)

func triangle() *Graph {
	g := NewGraph(3, 3)
	a := g.AddVertex(Props{"name": S("a")})
	b := g.AddVertex(Props{"name": S("b")})
	c := g.AddVertex(Props{"name": S("c")})
	g.AddEdge(a, b, "knows", nil)
	g.AddEdge(b, c, "knows", nil)
	g.AddEdge(c, a, "likes", Props{"w": I(2)})
	return g
}

func TestGraphCounts(t *testing.T) {
	g := triangle()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("counts = %d,%d", g.NumVertices(), g.NumEdges())
	}
}

func TestGraphLabelsSortedDistinct(t *testing.T) {
	g := triangle()
	if got := g.Labels(); !reflect.DeepEqual(got, []string{"knows", "likes"}) {
		t.Fatalf("Labels() = %v", got)
	}
}

func TestGraphDegrees(t *testing.T) {
	g := triangle()
	if got := g.OutDegrees(); !reflect.DeepEqual(got, []int{1, 1, 1}) {
		t.Fatalf("OutDegrees() = %v", got)
	}
	if got := g.InDegrees(); !reflect.DeepEqual(got, []int{1, 1, 1}) {
		t.Fatalf("InDegrees() = %v", got)
	}
}

func TestGraphAdjacencyUndirected(t *testing.T) {
	g := triangle()
	adj := g.Adjacency()
	for v, ns := range adj {
		if len(ns) != 2 {
			t.Errorf("vertex %d has %d undirected neighbours, want 2", v, len(ns))
		}
	}
}

func TestGraphAddEdgePanicsOnBadEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for out-of-range endpoint")
		}
	}()
	g := NewGraph(0, 0)
	g.AddEdge(0, 1, "x", nil)
}

func TestSpaceReportAdd(t *testing.T) {
	var r SpaceReport
	r.Add("a", 10)
	r.Add("a", 5)
	r.Add("b", 1)
	if r.Total != 16 || r.Breakdown["a"] != 15 || r.Breakdown["b"] != 1 {
		t.Fatalf("report = %+v", r)
	}
}

func TestIterHelpers(t *testing.T) {
	it := SliceIter([]int{1, 2, 3, 4})
	even := FilterIter(it, func(i int) bool { return i%2 == 0 })
	if got := Collect(even); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("filter/collect = %v", got)
	}
	if n := Drain(SliceIter([]string{"a", "b"})); n != 2 {
		t.Fatalf("Drain = %d", n)
	}
	cat := ConcatIter(SliceIter([]int{1}), EmptyIter[int](), SliceIter([]int{2, 3}))
	if got := Collect(cat); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("concat = %v", got)
	}
	if _, ok := EmptyIter[int]()(); ok {
		t.Fatalf("EmptyIter yielded an element")
	}
}
