package core

import "errors"

// ID identifies a vertex or an edge inside a specific engine. IDs are
// engine-local: the same dataset object usually has different IDs in
// different engines (e.g. Neo-style engines use record offsets while the
// document store uses sequence numbers). The harness keeps the mapping
// from dataset object indexes to engine IDs (see LoadResult).
type ID int64

// NoID is the invalid identifier.
const NoID ID = -1

// Direction selects which incident edges of a vertex to follow.
type Direction uint8

// Traversal directions.
const (
	DirOut Direction = iota
	DirIn
	DirBoth
)

// String returns "out", "in" or "both".
func (d Direction) String() string {
	switch d {
	case DirOut:
		return "out"
	case DirIn:
		return "in"
	default:
		return "both"
	}
}

// Sentinel errors shared across engines and the traversal layer.
var (
	// ErrNotFound reports that the referenced vertex, edge or property
	// does not exist (possibly because it was deleted).
	ErrNotFound = errors.New("core: object not found")
	// ErrClosed reports an operation on a closed engine.
	ErrClosed = errors.New("core: engine is closed")
	// ErrOutOfMemory reports that an operation exceeded the engine's
	// configured memory budget. It reproduces the paper's finding that
	// Sparksee exhausts RAM and swap on the degree-filter queries.
	ErrOutOfMemory = errors.New("core: memory budget exhausted")
	// ErrTimeout reports that a query exceeded the harness deadline.
	// It is the error the paper's 2-hour limit turns into.
	ErrTimeout = errors.New("core: query timed out")
	// ErrUnsupported reports a capability an engine does not provide
	// (e.g. BlazeGraph has no user-controlled attribute indexes).
	ErrUnsupported = errors.New("core: operation not supported by engine")
)

// Iter is a pull iterator: each call produces the next element until ok
// is false. All engine scan and traversal surfaces return Iter so the
// Gremlin layer can stream without materializing (unless the engine's own
// architecture forces materialization, as for the document store).
type Iter[T any] func() (item T, ok bool)

// EmptyIter returns an iterator that yields nothing.
func EmptyIter[T any]() Iter[T] {
	return func() (T, bool) { var zero T; return zero, false }
}

// SliceIter iterates over a slice snapshot.
func SliceIter[T any](s []T) Iter[T] {
	i := 0
	return func() (T, bool) {
		if i >= len(s) {
			var zero T
			return zero, false
		}
		v := s[i]
		i++
		return v, true
	}
}

// Collect drains the iterator into a slice.
func Collect[T any](it Iter[T]) []T {
	var out []T
	for v, ok := it(); ok; v, ok = it() {
		out = append(out, v)
	}
	return out
}

// Drain consumes the iterator and returns the number of elements seen.
func Drain[T any](it Iter[T]) int {
	n := 0
	for _, ok := it(); ok; _, ok = it() {
		n++
	}
	return n
}

// ConcatIter chains iterators in order.
func ConcatIter[T any](its ...Iter[T]) Iter[T] {
	i := 0
	return func() (T, bool) {
		for i < len(its) {
			if v, ok := its[i](); ok {
				return v, true
			}
			i++
		}
		var zero T
		return zero, false
	}
}

// FilterIter yields only the elements for which keep returns true.
func FilterIter[T any](it Iter[T], keep func(T) bool) Iter[T] {
	return func() (T, bool) {
		for {
			v, ok := it()
			if !ok {
				var zero T
				return zero, false
			}
			if keep(v) {
				return v, true
			}
		}
	}
}
