package core

import (
	"sort"
	"sync/atomic"
)

// CSR is a compact, read-only adjacency snapshot of a dataset Graph in
// compressed-sparse-row form: prefix-summed degree offsets, one shared
// undirected adjacency array, and a string-interned label table. It is
// built once per graph (see Graph.Snapshot) and then shared by every
// consumer that previously rebuilt the same information per call —
// datasets.Stats, parameter picking, and the engines' BulkLoad
// pre-sizing — so the per-cell cost of those paths no longer scales
// with redundant allocation.
//
// All index arrays are int32: the paper's largest dataset (frb-l,
// 28.4M vertices, 31.2M edges) stays well inside the int32 range even
// at scale 1.0, and halving the footprint matters at that size.
type CSR struct {
	// OutOff, InOff and UndOff are prefix sums of the out-, in- and
	// undirected degrees: vertex v's degree is Off[v+1]-Off[v].
	OutOff, InOff, UndOff []int32
	// UndAdj holds the undirected neighbour lists back to back:
	// UndAdj[UndOff[v]:UndOff[v+1]] are v's neighbours in both
	// directions, with duplicates for parallel edges — the same
	// contents Graph.Adjacency returns, in one allocation.
	UndAdj []int32
	// Labels is the sorted set of distinct edge labels; LabelIx[e] is
	// the index into Labels of edge e's label.
	Labels  []string
	LabelIx []int32
	// LabelOff and LabelAdj are the per-label CSR slices: LabelAdj
	// holds every edge index grouped by label (ascending within each
	// label), and LabelAdj[LabelOff[l]:LabelOff[l+1]] are exactly the
	// edges carrying Labels[l]. Label-filtered access — the
	// EdgesByLabel/hasLabel shape — walks one slice instead of
	// scanning and comparing all |E| labels.
	LabelOff []int32
	LabelAdj []int32
	// VPropTotal and EPropTotal are the total number of vertex and edge
	// properties — the exact statement/pair counts several engines'
	// bulk loaders need up front.
	VPropTotal, EPropTotal int

	// stats caches the derived planner statistics (see PlanStats).
	stats statsCache
}

// NumVertices returns the vertex count of the snapshotted graph.
func (c *CSR) NumVertices() int { return len(c.OutOff) - 1 }

// NumEdges returns the edge count of the snapshotted graph.
func (c *CSR) NumEdges() int { return len(c.LabelIx) }

// OutDegree returns the out-degree of vertex v.
func (c *CSR) OutDegree(v int) int { return int(c.OutOff[v+1] - c.OutOff[v]) }

// InDegree returns the in-degree of vertex v.
func (c *CSR) InDegree(v int) int { return int(c.InOff[v+1] - c.InOff[v]) }

// Degree returns the undirected degree of vertex v (out + in, parallel
// edges counted).
func (c *CSR) Degree(v int) int { return int(c.UndOff[v+1] - c.UndOff[v]) }

// Und returns vertex v's undirected neighbour list as a shared,
// read-only sub-slice of the snapshot's adjacency array.
func (c *CSR) Und(v int) []int32 { return c.UndAdj[c.UndOff[v]:c.UndOff[v+1]] }

// LabelOf returns the label of edge e.
func (c *CSR) LabelOf(e int) string { return c.Labels[c.LabelIx[e]] }

// LabelIndex returns the index of label in the sorted Labels table,
// and whether the label occurs at all.
func (c *CSR) LabelIndex(label string) (int, bool) {
	i := sort.SearchStrings(c.Labels, label)
	if i < len(c.Labels) && c.Labels[i] == label {
		return i, true
	}
	return 0, false
}

// LabelEdges returns the edge indexes carrying Labels[l], ascending —
// a shared, read-only sub-slice of the per-label adjacency.
func (c *CSR) LabelEdges(l int) []int32 { return c.LabelAdj[c.LabelOff[l]:c.LabelOff[l+1]] }

// LabelEdgeCount returns the number of edges carrying Labels[l].
func (c *CSR) LabelEdgeCount(l int) int { return int(c.LabelOff[l+1] - c.LabelOff[l]) }

// EdgesWithLabel returns the edge indexes carrying the label,
// ascending; nil when the label does not occur. The slice view makes
// label-filtered traversal O(matches) instead of O(|E|).
func (c *CSR) EdgesWithLabel(label string) []int32 {
	l, ok := c.LabelIndex(label)
	if !ok {
		return nil
	}
	return c.LabelEdges(l)
}

// Snapshot returns the graph's CSR adjacency snapshot, building it on
// first use. The snapshot is cached and shared: concurrent callers may
// race to build it, but every build of the same graph produces
// identical contents, so whichever pointer wins is equivalent. Any
// later mutation (AddVertex, AddEdge) invalidates the cache, and the
// next Snapshot call rebuilds.
func (g *Graph) Snapshot() *CSR {
	if c := g.csr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.csr.Store(c)
	return c
}

// AdoptSnapshot installs a pre-built CSR as the graph's cached
// snapshot. The snapshot decoder uses it to attach the CSR it
// reconstructed from the artifact's columnar sections, so the first
// Snapshot call after a decode does no work. The caller asserts c
// describes exactly this graph; a later mutation invalidates the cache
// as usual.
func (g *Graph) AdoptSnapshot(c *CSR) { g.csr.Store(c) }

func buildCSR(g *Graph) *CSR {
	n, m := len(g.VProps), len(g.EdgeL)
	c := &CSR{
		OutOff:  make([]int32, n+1),
		InOff:   make([]int32, n+1),
		UndOff:  make([]int32, n+1),
		UndAdj:  make([]int32, 2*m),
		LabelIx: make([]int32, m),
	}

	// Degree counting, label interning and property totals in one pass.
	labelID := make(map[string]int32)
	for i := range g.EdgeL {
		e := &g.EdgeL[i]
		c.OutOff[e.Src+1]++
		c.InOff[e.Dst+1]++
		c.UndOff[e.Src+1]++
		c.UndOff[e.Dst+1]++
		id, ok := labelID[e.Label]
		if !ok {
			id = int32(len(c.Labels))
			labelID[e.Label] = id
			c.Labels = append(c.Labels, e.Label)
		}
		c.LabelIx[i] = id
		c.EPropTotal += len(e.Props)
	}
	for i := range g.VProps {
		c.VPropTotal += len(g.VProps[i])
	}

	// Re-intern labels in sorted order so Labels matches Graph.Labels.
	if len(c.Labels) > 0 {
		sorted := append([]string(nil), c.Labels...)
		sort.Strings(sorted)
		remap := make([]int32, len(c.Labels))
		for newID, l := range sorted {
			remap[labelID[l]] = int32(newID)
		}
		c.Labels = sorted
		for i, old := range c.LabelIx {
			c.LabelIx[i] = remap[old]
		}
	}
	buildLabelSlices(c)

	// Prefix sums.
	for v := 0; v < n; v++ {
		c.OutOff[v+1] += c.OutOff[v]
		c.InOff[v+1] += c.InOff[v]
		c.UndOff[v+1] += c.UndOff[v]
	}

	// Fill the undirected adjacency using a moving cursor per vertex.
	cursor := make([]int32, n)
	copy(cursor, c.UndOff[:n])
	for i := range g.EdgeL {
		e := &g.EdgeL[i]
		c.UndAdj[cursor[e.Src]] = int32(e.Dst)
		cursor[e.Src]++
		c.UndAdj[cursor[e.Dst]] = int32(e.Src)
		cursor[e.Dst]++
	}
	return c
}

// buildLabelSlices derives LabelOff/LabelAdj from LabelIx by counting
// sort: one counting pass, one prefix sum, one scatter. Scanning edges
// in ascending index order keeps each label's slice ascending. Snapshot
// decode reuses this after reconstructing LabelIx, so the slices are
// identical whether a CSR was built from a Graph or read from disk.
func buildLabelSlices(c *CSR) {
	c.LabelOff = make([]int32, len(c.Labels)+1)
	c.LabelAdj = make([]int32, len(c.LabelIx))
	for _, l := range c.LabelIx {
		c.LabelOff[l+1]++
	}
	for l := 0; l < len(c.Labels); l++ {
		c.LabelOff[l+1] += c.LabelOff[l]
	}
	cursor := make([]int32, len(c.Labels))
	copy(cursor, c.LabelOff[:len(c.Labels)])
	for e, l := range c.LabelIx {
		c.LabelAdj[cursor[l]] = int32(e)
		cursor[l]++
	}
}

// csrCache is the cached-snapshot slot embedded in Graph. It is a named
// type so graph.go stays focused on the data model.
type csrCache = atomic.Pointer[CSR]
