// Package core defines the property-graph data model shared by every
// component of the benchmark suite: typed values, the in-memory dataset
// graph, and the Engine contract that each storage engine implements.
//
// The model follows the attributed graph model of Angles & Gutierrez
// (ACM CSUR 2008) as adopted by the paper: nodes and edges are first-class
// objects with internal identifiers, edges carry a label, and both nodes
// and edges carry a set of name/value properties.
package core

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the property value types supported by the suite.
// The set matches what GraphSON (plain JSON) can carry.
type Kind uint8

// Supported value kinds.
const (
	KindNil Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a compact, comparable property value. The zero Value is Nil.
//
// A struct of unexported fields is used instead of an interface so that
// values are comparable with ==, usable as map keys (needed by the
// attribute indexes of several engines), and free of per-value heap
// allocation.
type Value struct {
	kind Kind
	str  string
	num  int64 // int payload, or float bits, or 0/1 for bool
}

// Nil is the absent value.
var Nil = Value{}

// S returns a string Value.
func S(s string) Value { return Value{kind: KindString, str: s} }

// I returns an integer Value.
func I(i int64) Value { return Value{kind: KindInt, num: i} }

// F returns a float Value.
func F(f float64) Value { return Value{kind: KindFloat, num: int64(math.Float64bits(f))} }

// B returns a boolean Value.
func B(b bool) Value {
	if b {
		return Value{kind: KindBool, num: 1}
	}
	return Value{kind: KindBool}
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is absent.
func (v Value) IsNil() bool { return v.kind == KindNil }

// Str returns the string payload; it is "" for non-string values.
func (v Value) Str() string { return v.str }

// Int returns the integer payload; it is 0 for non-int values.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		return 0
	}
	return v.num
}

// Float returns the float payload; it is 0 for non-float values.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		return 0
	}
	return math.Float64frombits(uint64(v.num))
}

// Bool returns the boolean payload; it is false for non-bool values.
func (v Value) Bool() bool { return v.kind == KindBool && v.num == 1 }

// String renders the value for human consumption.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.num == 1)
	default:
		return "?"
	}
}

// Compare orders values: first by kind, then by payload. It returns a
// negative number, zero, or a positive number as v sorts before, equal
// to, or after w. This total order is what the B+Tree-backed engines use
// for their attribute indexes.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return int(v.kind) - int(w.kind)
	}
	switch v.kind {
	case KindString:
		switch {
		case v.str < w.str:
			return -1
		case v.str > w.str:
			return 1
		}
		return 0
	case KindFloat:
		a, b := v.Float(), w.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	default:
		switch {
		case v.num < w.num:
			return -1
		case v.num > w.num:
			return 1
		}
		return 0
	}
}

// Bytes returns an approximation of the in-memory footprint of the value,
// used by the engines' space accounting.
func (v Value) Bytes() int64 { return int64(16 + len(v.str)) }

// Props is a set of name/value properties attached to a node or an edge.
type Props map[string]Value

// Clone returns a defensive copy of the property set.
func (p Props) Clone() Props {
	if p == nil {
		return nil
	}
	q := make(Props, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// Bytes returns an approximation of the in-memory footprint of the set.
func (p Props) Bytes() int64 {
	var n int64
	for k, v := range p {
		n += int64(len(k)) + v.Bytes() + 16
	}
	return n
}
