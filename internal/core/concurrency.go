package core

import "sync"

// ConcurrentWriter is the second optional concurrency capability next
// to ConcurrentReader: it reports whether the engine supports *mutation
// while other operations are in flight* under the single-writer/
// multi-reader discipline Guard enforces. Granting engines promise that
//
//   - read paths mutate no result-affecting shared state, so a single
//     exclusive writer interleaved with shared readers yields the same
//     per-operation results as some serial schedule of the same
//     operations (per-operation linearizability); and
//   - every mutation leaves the instance in a state from which all
//     read surfaces (scans, counts, traversals, indexes) are
//     consistent with each other.
//
// Engines that do not implement the interface — or return false — are
// limited to read-only concurrent workloads: the serving layer rejects
// mixed read/write mixes for them. The grant is about *semantics*, not
// raw memory safety: memory safety is the Guard's job, which is why
// even granting engines must be accessed through it (or equivalent
// external locking) when mutated concurrently.
type ConcurrentWriter interface {
	// ConcurrentWrites reports whether guarded mixed read/write
	// workloads yield per-operation results consistent with a serial
	// schedule.
	ConcurrentWrites() bool
}

// Guard wraps an engine for concurrent use under the documented
// contract: mutating operations hold an exclusive lock, read
// operations a shared one, so any number of readers run concurrently
// and writers serialize with everything. Engines that veto concurrent
// reads via ConcurrentReader degrade to full mutual exclusion — every
// operation exclusive — which preserves their sequential semantics
// under concurrent callers.
//
// Iterator-returning surfaces (Vertices, Edges, Neighbors, …)
// materialize their results while the lock is held and return a stable
// snapshot: a lazily-pulling iterator would otherwise read engine
// internals after the lock is gone, racing any later writer. The cost
// is bounded by the result size, and it buys the one contract a mixed
// workload needs — each Engine method is atomic with respect to every
// other.
//
// Multi-call queries (a traversal draining several iterators, a BFS)
// are *not* atomic as a whole: like any production store without
// transactions, they may observe mutations that land between calls.
//
// Guard forwards the optional capabilities of the wrapped engine
// (ConcurrentReader, ConcurrentWriter, PlanStatsProvider), so planner
// statistics and veto decisions survive wrapping.
func Guard(e Engine) *GuardedEngine {
	g := &GuardedEngine{inner: e}
	if cr, ok := e.(ConcurrentReader); ok && !cr.ConcurrentReads() {
		g.exclusive = true
	}
	return g
}

// The guard is a full Engine plus the optional capabilities.
var (
	_ Engine            = (*GuardedEngine)(nil)
	_ ConcurrentReader  = (*GuardedEngine)(nil)
	_ ConcurrentWriter  = (*GuardedEngine)(nil)
	_ PlanStatsProvider = (*GuardedEngine)(nil)
)

// GuardedEngine is the engine wrapper Guard returns. The zero value is
// not usable; always construct through Guard.
type GuardedEngine struct {
	inner Engine
	// exclusive degrades the shared (read) lock to the exclusive one
	// for engines that veto concurrent reads.
	exclusive bool
	mu        sync.RWMutex
}

// Unwrap returns the guarded engine.
func (g *GuardedEngine) Unwrap() Engine { return g.inner }

// Exclusive reports whether the guard serializes *all* operations —
// true exactly when the wrapped engine vetoed concurrent reads.
func (g *GuardedEngine) Exclusive() bool { return g.exclusive }

func (g *GuardedEngine) rlock() func() {
	if g.exclusive {
		g.mu.Lock()
		return g.mu.Unlock
	}
	g.mu.RLock()
	return g.mu.RUnlock
}

// --- capability forwarding ---

// ConcurrentReads always holds for the guarded view: a vetoing engine
// is fully serialized, so its results cannot depend on read
// interleaving; any other engine already granted it.
func (g *GuardedEngine) ConcurrentReads() bool { return true }

// ConcurrentWrites forwards the wrapped engine's grant.
func (g *GuardedEngine) ConcurrentWrites() bool {
	if cw, ok := g.inner.(ConcurrentWriter); ok {
		return cw.ConcurrentWrites()
	}
	return false
}

// PlanStats forwards the wrapped engine's planner statistics, so the
// gremlin optimizer sees through the guard.
func (g *GuardedEngine) PlanStats() *PlanStats {
	if p, ok := g.inner.(PlanStatsProvider); ok {
		return p.PlanStats()
	}
	return nil
}

// --- lifecycle and metadata ---

func (g *GuardedEngine) Meta() EngineMeta { return g.inner.Meta() }

func (g *GuardedEngine) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.Close()
}

func (g *GuardedEngine) BulkLoad(gr *Graph) (*LoadResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.BulkLoad(gr)
}

func (g *GuardedEngine) SpaceUsage() SpaceReport {
	defer g.rlock()()
	return g.inner.SpaceUsage()
}

// --- mutations: exclusive ---

func (g *GuardedEngine) AddVertex(props Props) (ID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.AddVertex(props)
}

func (g *GuardedEngine) AddEdge(src, dst ID, label string, props Props) (ID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.AddEdge(src, dst, label, props)
}

func (g *GuardedEngine) SetVertexProp(id ID, name string, v Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.SetVertexProp(id, name, v)
}

func (g *GuardedEngine) SetEdgeProp(id ID, name string, v Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.SetEdgeProp(id, name, v)
}

func (g *GuardedEngine) RemoveVertex(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.RemoveVertex(id)
}

func (g *GuardedEngine) RemoveEdge(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.RemoveEdge(id)
}

func (g *GuardedEngine) RemoveVertexProp(id ID, name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.RemoveVertexProp(id, name)
}

func (g *GuardedEngine) RemoveEdgeProp(id ID, name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.RemoveEdgeProp(id, name)
}

func (g *GuardedEngine) BuildVertexPropIndex(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.BuildVertexPropIndex(name)
}

// --- reads: shared ---

func (g *GuardedEngine) HasVertex(id ID) bool {
	defer g.rlock()()
	return g.inner.HasVertex(id)
}

func (g *GuardedEngine) HasEdge(id ID) bool {
	defer g.rlock()()
	return g.inner.HasEdge(id)
}

func (g *GuardedEngine) VertexProps(id ID) (Props, error) {
	defer g.rlock()()
	return g.inner.VertexProps(id)
}

func (g *GuardedEngine) EdgeProps(id ID) (Props, error) {
	defer g.rlock()()
	return g.inner.EdgeProps(id)
}

func (g *GuardedEngine) VertexProp(id ID, name string) (Value, bool) {
	defer g.rlock()()
	return g.inner.VertexProp(id, name)
}

func (g *GuardedEngine) EdgeProp(id ID, name string) (Value, bool) {
	defer g.rlock()()
	return g.inner.EdgeProp(id, name)
}

func (g *GuardedEngine) EdgeLabel(id ID) (string, error) {
	defer g.rlock()()
	return g.inner.EdgeLabel(id)
}

func (g *GuardedEngine) EdgeEnds(id ID) (src, dst ID, err error) {
	defer g.rlock()()
	return g.inner.EdgeEnds(id)
}

func (g *GuardedEngine) CountVertices() (int64, error) {
	defer g.rlock()()
	return g.inner.CountVertices()
}

func (g *GuardedEngine) CountEdges() (int64, error) {
	defer g.rlock()()
	return g.inner.CountEdges()
}

func (g *GuardedEngine) Degree(id ID, d Direction) (int64, error) {
	defer g.rlock()()
	return g.inner.Degree(id, d)
}

func (g *GuardedEngine) HasVertexPropIndex(name string) bool {
	defer g.rlock()()
	return g.inner.HasVertexPropIndex(name)
}

// --- iterator reads: materialized under the shared lock ---

func (g *GuardedEngine) snapshot(it Iter[ID]) Iter[ID] {
	return SliceIter(Collect(it))
}

func (g *GuardedEngine) Vertices() Iter[ID] {
	defer g.rlock()()
	return g.snapshot(g.inner.Vertices())
}

func (g *GuardedEngine) Edges() Iter[ID] {
	defer g.rlock()()
	return g.snapshot(g.inner.Edges())
}

func (g *GuardedEngine) VerticesByProp(name string, v Value) Iter[ID] {
	defer g.rlock()()
	return g.snapshot(g.inner.VerticesByProp(name, v))
}

func (g *GuardedEngine) EdgesByProp(name string, v Value) Iter[ID] {
	defer g.rlock()()
	return g.snapshot(g.inner.EdgesByProp(name, v))
}

func (g *GuardedEngine) EdgesByLabel(label string) Iter[ID] {
	defer g.rlock()()
	return g.snapshot(g.inner.EdgesByLabel(label))
}

func (g *GuardedEngine) Neighbors(id ID, d Direction, labels ...string) Iter[ID] {
	defer g.rlock()()
	return g.snapshot(g.inner.Neighbors(id, d, labels...))
}

func (g *GuardedEngine) IncidentEdges(id ID, d Direction, labels ...string) Iter[ID] {
	defer g.rlock()()
	return g.snapshot(g.inner.IncidentEdges(id, d, labels...))
}
