package core

// Engine is the contract every storage engine under test implements. It
// plays the role the TinkerPop adapter plays in the paper: a common
// access surface over which all 35 micro queries and the 13 complex
// queries are expressed exactly once (in internal/gremlin and
// internal/workload), so that observed differences come from the
// engines' physical organization, not from query phrasing.
//
// Concurrency contract: concurrent *reads* must always be race-free —
// read paths may keep internal accounting only behind atomics or locks
// (the -cell-workers fan-out depends on this). Engines are
// single-writer: mutation is never safe concurrently with anything
// else unless the caller serializes it, which is what Guard provides
// (exclusive writer, shared readers). Two optional capabilities refine
// the contract per engine: ConcurrentReader lets an engine veto read
// fan-out when its read results depend on interleaving, and
// ConcurrentWriter reports whether guarded mixed read/write workloads
// yield serial-schedule-consistent results. The serving layer
// (internal/serve) and the enginetest concurrency-conformance suite
// are written against exactly this contract.
type Engine interface {
	// Meta describes the engine (Table 1).
	Meta() EngineMeta

	// --- Create (Q2–Q7) ---

	// AddVertex creates a vertex with the given properties.
	AddVertex(props Props) (ID, error)
	// AddEdge creates a labelled edge between existing vertices.
	AddEdge(src, dst ID, label string, props Props) (ID, error)

	// --- Read: by id (Q14, Q15) ---

	// HasVertex reports whether the vertex exists.
	HasVertex(id ID) bool
	// HasEdge reports whether the edge exists.
	HasEdge(id ID) bool
	// VertexProps returns a copy of the vertex's properties.
	VertexProps(id ID) (Props, error)
	// EdgeProps returns a copy of the edge's properties.
	EdgeProps(id ID) (Props, error)
	// VertexProp returns one vertex property.
	VertexProp(id ID, name string) (Value, bool)
	// EdgeProp returns one edge property.
	EdgeProp(id ID, name string) (Value, bool)
	// EdgeLabel returns the edge's label.
	EdgeLabel(id ID) (string, error)
	// EdgeEnds returns the source and destination vertices of an edge.
	EdgeEnds(id ID) (src, dst ID, err error)

	// --- Update (Q5, Q6, Q16, Q17) ---

	// SetVertexProp creates or updates a vertex property.
	SetVertexProp(id ID, name string, v Value) error
	// SetEdgeProp creates or updates an edge property.
	SetEdgeProp(id ID, name string, v Value) error

	// --- Delete (Q18–Q21) ---

	// RemoveVertex deletes a vertex, its properties, and — as the paper
	// requires of Q18 — all its incident edges.
	RemoveVertex(id ID) error
	// RemoveEdge deletes an edge and its properties.
	RemoveEdge(id ID) error
	// RemoveVertexProp deletes one vertex property.
	RemoveVertexProp(id ID, name string) error
	// RemoveEdgeProp deletes one edge property.
	RemoveEdgeProp(id ID, name string) error

	// --- Scans (Q8–Q13) ---

	// CountVertices returns the number of live vertices (Q8). Engines
	// whose architecture cannot count without materializing must
	// materialize here (that cost is part of what is being measured).
	CountVertices() (int64, error)
	// CountEdges returns the number of live edges (Q9).
	CountEdges() (int64, error)
	// Vertices iterates all live vertex IDs.
	Vertices() Iter[ID]
	// Edges iterates all live edge IDs.
	Edges() Iter[ID]
	// VerticesByProp finds vertices with property name = v (Q11), using
	// the attribute index if one was built, scanning otherwise.
	VerticesByProp(name string, v Value) Iter[ID]
	// EdgesByProp finds edges with property name = v (Q12).
	EdgesByProp(name string, v Value) Iter[ID]
	// EdgesByLabel finds edges with the given label (Q13).
	EdgesByLabel(label string) Iter[ID]

	// --- Traversal (Q22–Q35 building blocks) ---

	// Neighbors iterates the vertices adjacent to id in direction d,
	// optionally restricted to the given edge labels.
	Neighbors(id ID, d Direction, labels ...string) Iter[ID]
	// IncidentEdges iterates the edges incident to id in direction d,
	// optionally restricted to the given edge labels.
	IncidentEdges(id ID, d Direction, labels ...string) Iter[ID]
	// Degree counts incident edges. It returns ErrOutOfMemory when the
	// engine's Gremlin adapter must materialize beyond its budget (the
	// Sparksee Q28–Q31 failure mode from the paper).
	Degree(id ID, d Direction) (int64, error)

	// --- Attribute indexing (Section 6.4, "Effect of Indexing") ---

	// BuildVertexPropIndex creates the user-controlled attribute index
	// on a vertex property. Engines without the capability return
	// ErrUnsupported.
	BuildVertexPropIndex(name string) error
	// HasVertexPropIndex reports whether the index exists.
	HasVertexPropIndex(name string) bool

	// --- Bulk load (Q1) and lifecycle ---

	// BulkLoad ingests a dataset graph using the engine's preferred bulk
	// path (the paper had to bypass Gremlin for several systems; the
	// per-engine differences in this path are part of Figure 3(a)).
	BulkLoad(g *Graph) (*LoadResult, error)
	// SpaceUsage reports structural space occupancy (Figure 1).
	SpaceUsage() SpaceReport
	// Close releases the engine.
	Close() error
}

// Constructor builds a fresh, empty engine instance. Registered per
// engine configuration in internal/engines.
type Constructor func() Engine

// ConcurrentReader lets an engine veto read fan-out. All engines must
// make concurrent reads race-free (see Engine), but an engine whose
// read paths share *result-affecting* mutable state — e.g. Sparksee's
// retention accounting, whose OOM verdict depends on what other
// in-flight reads have accumulated — returns false here, and the
// harness measures its batches sequentially even when cell parallelism
// is enabled, preserving deterministic results. Engines that do not
// implement the interface are treated as safe to fan out.
type ConcurrentReader interface {
	// ConcurrentReads reports whether concurrent read queries yield the
	// same results as sequential execution.
	ConcurrentReads() bool
}
