// Package bitmap implements a compressed bitmap over uint64 keys, in the
// style of Roaring bitmaps: the key space is split into 2^16-wide chunks,
// each stored either as a sorted array of 16-bit offsets (sparse) or as a
// 1024-word bitset (dense), converting between the two as cardinality
// crosses a threshold.
//
// It is the substrate of the Sparksee-style engine, whose architecture
// the paper describes as "clusters of bitmaps": object sets, per-value
// attribute sets, and per-node incident-edge sets are all bitmaps, so
// counting is a popcount and set operations are bitwise. The same
// structure also explains that engine's weakness: operations that need
// *materialized* neighbour lists per node must decompress many bitmaps.
package bitmap

import (
	"math/bits"
	"sort"
)

// arrayToBitmapThreshold is the container cardinality above which a
// sorted array is converted into a dense bitset (and below which a dense
// bitset converts back on removal).
const arrayToBitmapThreshold = 4096

const wordsPerContainer = 1 << 16 / 64

type container struct {
	// Exactly one of array / words is non-nil.
	array []uint16
	words []uint64
	n     int // cardinality (maintained for both representations)
}

// Bitmap is a set of uint64 values. The zero value is an empty set ready
// for use.
type Bitmap struct {
	keys []uint64              // sorted high-bits chunk keys
	cs   map[uint64]*container // chunk key -> container
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

func split(x uint64) (hi uint64, lo uint16) { return x >> 16, uint16(x & 0xffff) }

func (b *Bitmap) container(hi uint64, create bool) *container {
	if b.cs == nil {
		if !create {
			return nil
		}
		b.cs = make(map[uint64]*container)
	}
	c := b.cs[hi]
	if c == nil && create {
		c = &container{}
		b.cs[hi] = c
		i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= hi })
		b.keys = append(b.keys, 0)
		copy(b.keys[i+1:], b.keys[i:])
		b.keys[i] = hi
	}
	return c
}

func (c *container) contains(lo uint16) bool {
	if c.words != nil {
		return c.words[lo/64]&(1<<(lo%64)) != 0
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= lo })
	return i < len(c.array) && c.array[i] == lo
}

func (c *container) add(lo uint16) bool {
	if c.words != nil {
		w := &c.words[lo/64]
		mask := uint64(1) << (lo % 64)
		if *w&mask != 0 {
			return false
		}
		*w |= mask
		c.n++
		return true
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= lo })
	if i < len(c.array) && c.array[i] == lo {
		return false
	}
	c.array = append(c.array, 0)
	copy(c.array[i+1:], c.array[i:])
	c.array[i] = lo
	c.n++
	if c.n > arrayToBitmapThreshold {
		c.toWords()
	}
	return true
}

func (c *container) remove(lo uint16) bool {
	if c.words != nil {
		w := &c.words[lo/64]
		mask := uint64(1) << (lo % 64)
		if *w&mask == 0 {
			return false
		}
		*w &^= mask
		c.n--
		if c.n < arrayToBitmapThreshold/2 {
			c.toArray()
		}
		return true
	}
	i := sort.Search(len(c.array), func(i int) bool { return c.array[i] >= lo })
	if i >= len(c.array) || c.array[i] != lo {
		return false
	}
	copy(c.array[i:], c.array[i+1:])
	c.array = c.array[:len(c.array)-1]
	c.n--
	return true
}

func (c *container) toWords() {
	c.words = make([]uint64, wordsPerContainer)
	for _, lo := range c.array {
		c.words[lo/64] |= 1 << (lo % 64)
	}
	c.array = nil
}

func (c *container) toArray() {
	c.array = make([]uint16, 0, c.n)
	for wi, w := range c.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			c.array = append(c.array, uint16(wi*64+bit))
			w &^= 1 << bit
		}
	}
	c.words = nil
}

// Add inserts x, reporting whether it was absent.
func (b *Bitmap) Add(x uint64) bool {
	hi, lo := split(x)
	return b.container(hi, true).add(lo)
}

// Remove deletes x, reporting whether it was present.
func (b *Bitmap) Remove(x uint64) bool {
	hi, lo := split(x)
	c := b.container(hi, false)
	if c == nil {
		return false
	}
	ok := c.remove(lo)
	if ok && c.n == 0 {
		delete(b.cs, hi)
		i := sort.Search(len(b.keys), func(i int) bool { return b.keys[i] >= hi })
		copy(b.keys[i:], b.keys[i+1:])
		b.keys = b.keys[:len(b.keys)-1]
	}
	return ok
}

// Contains reports membership of x.
func (b *Bitmap) Contains(x uint64) bool {
	hi, lo := split(x)
	c := b.container(hi, false)
	return c != nil && c.contains(lo)
}

// Len returns the cardinality. This is the popcount-style O(#containers)
// operation behind the Sparksee engine's fast counting queries.
func (b *Bitmap) Len() int {
	n := 0
	for _, c := range b.cs {
		n += c.n
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (b *Bitmap) IsEmpty() bool { return b.Len() == 0 }

// Iterate calls fn on each element in ascending order until fn returns
// false.
func (b *Bitmap) Iterate(fn func(x uint64) bool) {
	for _, hi := range b.keys {
		c := b.cs[hi]
		base := hi << 16
		if c.words != nil {
			for wi, w := range c.words {
				for w != 0 {
					bit := bits.TrailingZeros64(w)
					if !fn(base | uint64(wi*64+bit)) {
						return
					}
					w &^= 1 << bit
				}
			}
		} else {
			for _, lo := range c.array {
				if !fn(base | uint64(lo)) {
					return
				}
			}
		}
	}
}

// Slice materializes the set in ascending order.
func (b *Bitmap) Slice() []uint64 {
	out := make([]uint64, 0, b.Len())
	b.Iterate(func(x uint64) bool { out = append(out, x); return true })
	return out
}

// Min returns the smallest element; ok is false when the set is empty.
func (b *Bitmap) Min() (uint64, bool) {
	var min uint64
	found := false
	b.Iterate(func(x uint64) bool { min, found = x, true; return false })
	return min, found
}

// And returns the intersection of b and o as a new bitmap.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	out := New()
	small, large := b, o
	if small.Len() > large.Len() {
		small, large = large, small
	}
	small.Iterate(func(x uint64) bool {
		if large.Contains(x) {
			out.Add(x)
		}
		return true
	})
	return out
}

// Or returns the union of b and o as a new bitmap.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	out := New()
	b.Iterate(func(x uint64) bool { out.Add(x); return true })
	o.Iterate(func(x uint64) bool { out.Add(x); return true })
	return out
}

// AndLen returns the intersection cardinality without materializing it.
func (b *Bitmap) AndLen(o *Bitmap) int {
	small, large := b, o
	if small.Len() > large.Len() {
		small, large = large, small
	}
	n := 0
	small.Iterate(func(x uint64) bool {
		if large.Contains(x) {
			n++
		}
		return true
	})
	return n
}

// Bytes approximates the memory footprint, for space accounting.
func (b *Bitmap) Bytes() int64 {
	var n int64 = 48
	for _, c := range b.cs {
		n += 40
		if c.words != nil {
			n += wordsPerContainer * 8
		} else {
			n += int64(len(c.array)) * 2
		}
	}
	n += int64(len(b.keys)) * 8
	return n
}
