package bitmap

import (
	"math/rand"
	"testing"
)

// BenchmarkAdd measures the insert path behind the Sparksee engine's
// fastest-in-study CUD operations.
func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]uint64, b.N)
	for i := range xs {
		xs[i] = uint64(rng.Intn(1 << 24))
	}
	bm := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Add(xs[i])
	}
}

// BenchmarkLen measures the popcount-style counting behind the fast Q8/Q9.
func BenchmarkLen(b *testing.B) {
	bm := New()
	for i := uint64(0); i < 1_000_000; i++ {
		bm.Add(i * 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bm.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkContains(b *testing.B) {
	bm := New()
	for i := uint64(0); i < 1_000_000; i++ {
		bm.Add(i * 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Contains(uint64(i % 2_000_000))
	}
}

// BenchmarkAndLen measures the label-filter intersection of the
// Sparksee traversal path.
func BenchmarkAndLen(b *testing.B) {
	a, c := New(), New()
	for i := uint64(0); i < 100_000; i++ {
		a.Add(i)
		if i%3 == 0 {
			c.Add(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AndLen(a)
	}
}
