package bitmap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	b := New()
	if b.Contains(5) {
		t.Fatalf("empty bitmap contains 5")
	}
	if !b.Add(5) || b.Add(5) {
		t.Fatalf("Add semantics wrong")
	}
	if !b.Contains(5) || b.Len() != 1 {
		t.Fatalf("bitmap state wrong after Add")
	}
	if !b.Remove(5) || b.Remove(5) {
		t.Fatalf("Remove semantics wrong")
	}
	if b.Contains(5) || !b.IsEmpty() {
		t.Fatalf("bitmap state wrong after Remove")
	}
}

func TestSparseToDenseConversion(t *testing.T) {
	b := New()
	// Push one container well past the array threshold and back.
	for i := uint64(0); i < 10000; i++ {
		b.Add(i)
	}
	if b.Len() != 10000 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := uint64(0); i < 10000; i++ {
		if !b.Contains(i) {
			t.Fatalf("lost %d after dense conversion", i)
		}
	}
	for i := uint64(0); i < 9500; i++ {
		b.Remove(i)
	}
	if b.Len() != 500 {
		t.Fatalf("Len = %d after removals", b.Len())
	}
	for i := uint64(9500); i < 10000; i++ {
		if !b.Contains(i) {
			t.Fatalf("lost %d after array conversion", i)
		}
	}
}

func TestIterateAscendingAcrossContainers(t *testing.T) {
	b := New()
	vals := []uint64{1, 100000, 65535, 65536, 1 << 40, 3, 1<<40 + 1}
	for _, v := range vals {
		b.Add(v)
	}
	got := b.Slice()
	want := append([]uint64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("Slice len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if m, ok := b.Min(); !ok || m != 1 {
		t.Fatalf("Min = %d, %v", m, ok)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	b := New()
	for i := uint64(0); i < 100; i++ {
		b.Add(i)
	}
	n := 0
	b.Iterate(func(uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSetOperations(t *testing.T) {
	a, b := New(), New()
	for i := uint64(0); i < 100; i++ {
		a.Add(i)
	}
	for i := uint64(50); i < 150; i++ {
		b.Add(i)
	}
	if got := a.And(b).Len(); got != 50 {
		t.Fatalf("And len = %d", got)
	}
	if got := a.AndLen(b); got != 50 {
		t.Fatalf("AndLen = %d", got)
	}
	if got := a.Or(b).Len(); got != 150 {
		t.Fatalf("Or len = %d", got)
	}
}

func TestEmptyContainerIsDropped(t *testing.T) {
	b := New()
	b.Add(70000)
	b.Remove(70000)
	if len(b.keys) != 0 || len(b.cs) != 0 {
		t.Fatalf("container leaked: keys=%v", b.keys)
	}
}

func TestBytesShrinksWithDensity(t *testing.T) {
	sparse := New()
	for i := 0; i < 100; i++ {
		sparse.Add(uint64(i) << 20) // one element per container
	}
	dense := New()
	for i := uint64(0); i < 100; i++ {
		dense.Add(i) // all in one array container
	}
	if dense.Bytes() >= sparse.Bytes() {
		t.Fatalf("dense (%d) not cheaper than scattered (%d)", dense.Bytes(), sparse.Bytes())
	}
}

// TestQuickAgainstMapSet checks random operation sequences against a
// reference set, including iteration order.
func TestQuickAgainstMapSet(t *testing.T) {
	f := func(seed int64, nops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		ref := make(map[uint64]bool)
		for i := 0; i < int(nops%2048); i++ {
			x := uint64(rng.Intn(1 << 18))
			switch rng.Intn(3) {
			case 0:
				if b.Add(x) == ref[x] {
					return false
				}
				ref[x] = true
			case 1:
				if b.Remove(x) != ref[x] {
					return false
				}
				delete(ref, x)
			case 2:
				if b.Contains(x) != ref[x] {
					return false
				}
			}
		}
		if b.Len() != len(ref) {
			return false
		}
		var prev uint64
		first := true
		ok := true
		n := 0
		b.Iterate(func(x uint64) bool {
			if !ref[x] || (!first && x <= prev) {
				ok = false
				return false
			}
			prev, first = x, false
			n++
			return true
		})
		return ok && n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
