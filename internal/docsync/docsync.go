// Package docsync is the shared documentation drift guard for the CLI
// binaries: every flag a command defines must be mentioned — in
// backtick-delimited form — in README.md or docs/*.md. Each command's
// test calls FlagsDocumented with its own defineFlags, so the corpus
// and matching rule live in exactly one place.
package docsync

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// FlagsDocumented fails the test for every flag defined by define that
// does not appear as `-name` in root's README.md or docs/*.md. root is
// the repository root relative to the calling test's directory (for
// cmd/* tests, "../..").
func FlagsDocumented(t *testing.T, root string, define func(*flag.FlagSet)) {
	t.Helper()
	var docs bytes.Buffer
	paths := []string{filepath.Join(root, "README.md")}
	more, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, more...)
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		docs.Write(b)
	}
	fs := flag.NewFlagSet("docsync", flag.ContinueOnError)
	define(fs)
	fs.VisitAll(func(f *flag.Flag) {
		// Require the backtick-delimited form: a raw substring match
		// would let `-list` ride on `-listen` and defeat the guard.
		if !bytes.Contains(docs.Bytes(), []byte("`-"+f.Name+"`")) {
			t.Errorf("flag -%s is not documented in README.md or docs/*.md — add `-%s` to the flag table", f.Name, f.Name)
		}
	})
}
