// Package blaze implements the hybrid engine modelled on BlazeGraph as
// the paper characterizes it: an RDF statement store serving a property
// graph through reification.
//
// Architecture reproduced (Section 3.2):
//
//   - all data is Subject-Predicate-Object statements over a term
//     dictionary; every statement is indexed three times (SPO, POS, OSP
//     B+Trees);
//   - edges are *reified*: an edge is a resource E with statements
//     (E, rdf:subject, src), (E, rdf:predicate, label),
//     (E, rdf:object, dst), so traversing one edge needs several B+Tree
//     accesses;
//   - a journal file pre-allocated in fixed-size segments backs the
//     store — together with the triple indexes this is why the paper
//     measures ~3× the space of any other engine;
//   - each fine-grained insert rebalances all three trees ("updates and
//     balances its B+Tree index structure after every insertion"),
//     making per-item loading orders of magnitude slower; BulkLoad uses
//     the explicit bulk-build path the paper had to enable;
//   - Gremlin steps are executed one by one against the graph API, never
//     compiled to SPARQL, so whole-graph steps (label search, property
//     search) iterate and probe per object — the source of this engine's
//     chronic timeouts;
//   - there are no user-controlled attribute indexes
//     (BuildVertexPropIndex returns core.ErrUnsupported, as the paper
//     notes "BlazeGraph provides no such capability").
package blaze

import (
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/enc"
)

// Term tags (top byte of a term ID).
const (
	tagVertex  = 1
	tagEdge    = 2
	tagPred    = 3
	tagLiteral = 4
)

func mkTerm(tag byte, seq int64) int64 { return int64(tag)<<56 | seq }
func termTag(t int64) byte             { return byte(t >> 56) }
func termSeq(t int64) int64            { return t & (1<<56 - 1) }

// Well-known predicate sequence numbers.
const (
	predType = iota // rdf:type
	predSubject
	predPredicate
	predObject
	predFirstUser // first user predicate (property names, labels)
)

// Well-known literal: the ":Vertex" class object.
const litVertexClass = 0

// journalSegment is the fixed pre-allocation unit of the backing
// journal file.
const journalSegment = 1 << 20

type statement struct{ s, p, o int64 }

// Engine is a BlazeGraph-style RDF statement store.
type Engine struct {
	core.PlanStatsHolder

	spo, pos, osp *btree.Tree

	// Term dictionary.
	preds     map[string]int64
	predNames []string // seq - predFirstUser -> name
	lits      map[core.Value]int64
	litVals   []core.Value
	nextV     int64
	nextE     int64

	journalUsed int64 // bytes written
	journalCap  int64 // bytes pre-allocated (fixed segments)
}

// New returns an empty engine.
func New() *Engine {
	e := &Engine{
		spo:        btree.New(),
		pos:        btree.New(),
		osp:        btree.New(),
		preds:      make(map[string]int64),
		lits:       make(map[core.Value]int64),
		journalCap: journalSegment,
	}
	// Reserve the vertex-class literal at seq 0.
	e.lits[core.S(":Vertex")] = mkTerm(tagLiteral, litVertexClass)
	e.litVals = append(e.litVals, core.S(":Vertex"))
	return e
}

// Meta implements core.Engine.
func (e *Engine) Meta() core.EngineMeta {
	return core.EngineMeta{
		Name:          "blaze",
		Kind:          core.KindHybrid,
		Substrate:     "RDF",
		Storage:       "RDF statements (SPO/POS/OSP B+Trees)",
		EdgeTraversal: "B+Tree",
		Gremlin:       "3.2",
		Execution:     "Programming API, non-optimized",
	}
}

func (e *Engine) pred(name string) int64 {
	if t, ok := e.preds[name]; ok {
		return t
	}
	t := mkTerm(tagPred, int64(len(e.predNames))+predFirstUser)
	e.preds[name] = t
	e.predNames = append(e.predNames, name)
	return t
}

func (e *Engine) predName(t int64) string {
	seq := termSeq(t)
	if seq < predFirstUser {
		return [...]string{"rdf:type", "rdf:subject", "rdf:predicate", "rdf:object"}[seq]
	}
	return e.predNames[seq-predFirstUser]
}

func (e *Engine) literal(v core.Value) int64 {
	if t, ok := e.lits[v]; ok {
		return t
	}
	t := mkTerm(tagLiteral, int64(len(e.litVals)))
	e.lits[v] = t
	e.litVals = append(e.litVals, v)
	return t
}

func (e *Engine) literalValue(t int64) core.Value { return e.litVals[termSeq(t)] }

func key3(a, b, c int64) []byte {
	k := make([]byte, 0, 24)
	k = enc.Int64(k, a)
	k = enc.Int64(k, b)
	return enc.Int64(k, c)
}

func key2(a, b int64) []byte {
	k := make([]byte, 0, 16)
	k = enc.Int64(k, a)
	return enc.Int64(k, b)
}

func key1(a int64) []byte { return enc.Int64(nil, a) }

func decode3(k []byte) (a, b, c int64) {
	a, k = enc.TakeInt64(k)
	b, k = enc.TakeInt64(k)
	c, _ = enc.TakeInt64(k)
	return
}

// addStatement inserts st into all three indexes and appends it to the
// journal, growing the journal by a fixed segment when full — the
// eager, per-statement path the paper measured as up to three orders of
// magnitude slower than other loaders.
func (e *Engine) addStatement(st statement) {
	e.spo.Put(key3(st.s, st.p, st.o), nil)
	e.pos.Put(key3(st.p, st.o, st.s), nil)
	e.osp.Put(key3(st.o, st.s, st.p), nil)
	e.journalUsed += 3 * 25 // serialized statement + record header, ×3 indexes
	for e.journalUsed > e.journalCap {
		e.journalCap += journalSegment
	}
}

func (e *Engine) removeStatement(st statement) bool {
	ok := e.spo.Delete(key3(st.s, st.p, st.o))
	e.pos.Delete(key3(st.p, st.o, st.s))
	e.osp.Delete(key3(st.o, st.s, st.p))
	// The journal is append-only: deletion writes a retraction record.
	if ok {
		e.journalUsed += 25
		for e.journalUsed > e.journalCap {
			e.journalCap += journalSegment
		}
	}
	return ok
}

func (e *Engine) hasStatement(st statement) bool {
	return e.spo.Has(key3(st.s, st.p, st.o))
}

// forSP iterates objects of (s, p, *).
func (e *Engine) forSP(s, p int64, fn func(o int64) bool) {
	e.spo.AscendPrefix(key2(s, p), func(k, _ []byte) bool {
		_, _, o := decode3(k)
		return fn(o)
	})
}

// forPO iterates subjects of (*, p, o).
func (e *Engine) forPO(p, o int64, fn func(s int64) bool) {
	e.pos.AscendPrefix(key2(p, o), func(k, _ []byte) bool {
		_, _, s := decode3(k)
		return fn(s)
	})
}

// forS iterates (p, o) pairs of (s, *, *).
func (e *Engine) forS(s int64, fn func(p, o int64) bool) {
	e.spo.AscendPrefix(key1(s), func(k, _ []byte) bool {
		_, p, o := decode3(k)
		return fn(p, o)
	})
}

// firstSP returns the first object of (s, p, *).
func (e *Engine) firstSP(s, p int64) (int64, bool) {
	var out int64
	found := false
	e.forSP(s, p, func(o int64) bool { out, found = o, true; return false })
	return out, found
}

// ConcurrentWrites implements core.ConcurrentWriter: the statement
// indexes are mutated only by write operations, and read paths keep no
// shared state, so under core.Guard's exclusive-writer discipline
// mixed read/write workloads are serial-schedule consistent.
func (e *Engine) ConcurrentWrites() bool { return true }
