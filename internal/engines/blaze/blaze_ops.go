package blaze

import (
	"bytes"
	"sort"

	"repro/internal/btree"
	"repro/internal/core"
)

// Well-known predicate terms.
var (
	rdfType      = mkTerm(tagPred, predType)
	rdfSubject   = mkTerm(tagPred, predSubject)
	rdfPredicate = mkTerm(tagPred, predPredicate)
	rdfObject    = mkTerm(tagPred, predObject)
)

func vertexClassTerm() int64 { return mkTerm(tagLiteral, litVertexClass) }

// --- vertex CRUD ---

// AddVertex implements core.Engine: a type statement plus one statement
// per property, each hitting all three indexes.
func (e *Engine) AddVertex(props core.Props) (core.ID, error) {
	v := mkTerm(tagVertex, e.nextV)
	e.nextV++
	e.addStatement(statement{v, rdfType, vertexClassTerm()})
	for k, val := range props {
		e.addStatement(statement{v, e.pred(k), e.literal(val)})
	}
	return core.ID(v), nil
}

// HasVertex implements core.Engine.
func (e *Engine) HasVertex(id core.ID) bool {
	return termTag(int64(id)) == tagVertex &&
		e.hasStatement(statement{int64(id), rdfType, vertexClassTerm()})
}

// VertexProps implements core.Engine: an SPO prefix scan over the
// vertex's statements.
func (e *Engine) VertexProps(id core.ID) (core.Props, error) {
	if !e.HasVertex(id) {
		return nil, core.ErrNotFound
	}
	p := core.Props{}
	e.forS(int64(id), func(pr, o int64) bool {
		if pr != rdfType {
			p[e.predName(pr)] = e.literalValue(o)
		}
		return true
	})
	if len(p) == 0 {
		return nil, nil
	}
	return p, nil
}

// VertexProp implements core.Engine.
func (e *Engine) VertexProp(id core.ID, name string) (core.Value, bool) {
	if !e.HasVertex(id) {
		return core.Nil, false
	}
	pr, ok := e.preds[name]
	if !ok {
		return core.Nil, false
	}
	o, ok := e.firstSP(int64(id), pr)
	if !ok {
		return core.Nil, false
	}
	return e.literalValue(o), true
}

// SetVertexProp implements core.Engine: retract + assert.
func (e *Engine) SetVertexProp(id core.ID, name string, v core.Value) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	pr := e.pred(name)
	if old, ok := e.firstSP(int64(id), pr); ok {
		e.removeStatement(statement{int64(id), pr, old})
	}
	e.addStatement(statement{int64(id), pr, e.literal(v)})
	return nil
}

// RemoveVertexProp implements core.Engine.
func (e *Engine) RemoveVertexProp(id core.ID, name string) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	if pr, ok := e.preds[name]; ok {
		if old, ok := e.firstSP(int64(id), pr); ok {
			e.removeStatement(statement{int64(id), pr, old})
		}
	}
	return nil
}

// RemoveVertex implements core.Engine: retract the vertex's own
// statements and cascade to every reified edge that references it.
func (e *Engine) RemoveVertex(id core.ID) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	v := int64(id)
	var edges []int64
	e.forPO(rdfSubject, v, func(s int64) bool { edges = append(edges, s); return true })
	e.forPO(rdfObject, v, func(s int64) bool { edges = append(edges, s); return true })
	for _, ed := range edges {
		if e.isEdgeTerm(ed) {
			e.removeEdgeStatements(ed)
		}
	}
	var own []statement
	e.forS(v, func(p, o int64) bool { own = append(own, statement{v, p, o}); return true })
	for _, st := range own {
		e.removeStatement(st)
	}
	return nil
}

// --- edge CRUD (reification) ---

func (e *Engine) isEdgeTerm(t int64) bool {
	if termTag(t) != tagEdge {
		return false
	}
	_, ok := e.firstSP(t, rdfSubject)
	return ok
}

// AddEdge implements core.Engine: three reification statements plus one
// per property — each ×3 indexes, the write amplification behind this
// engine's slow loading.
func (e *Engine) AddEdge(src, dst core.ID, label string, props core.Props) (core.ID, error) {
	if !e.HasVertex(src) || !e.HasVertex(dst) {
		return core.NoID, core.ErrNotFound
	}
	ed := mkTerm(tagEdge, e.nextE)
	e.nextE++
	e.addStatement(statement{ed, rdfSubject, int64(src)})
	e.addStatement(statement{ed, rdfPredicate, e.pred("label:" + label)})
	e.addStatement(statement{ed, rdfObject, int64(dst)})
	for k, v := range props {
		e.addStatement(statement{ed, e.pred(k), e.literal(v)})
	}
	return core.ID(ed), nil
}

// HasEdge implements core.Engine.
func (e *Engine) HasEdge(id core.ID) bool {
	if termTag(int64(id)) != tagEdge {
		return false
	}
	_, ok := e.firstSP(int64(id), rdfSubject)
	return ok
}

// EdgeLabel implements core.Engine.
func (e *Engine) EdgeLabel(id core.ID) (string, error) {
	if !e.HasEdge(id) {
		return "", core.ErrNotFound
	}
	p, ok := e.firstSP(int64(id), rdfPredicate)
	if !ok {
		return "", core.ErrNotFound
	}
	return e.predName(p)[len("label:"):], nil
}

// EdgeEnds implements core.Engine: two B+Tree probes (the reification
// cost of every edge traversal on this engine).
func (e *Engine) EdgeEnds(id core.ID) (core.ID, core.ID, error) {
	s, ok := e.firstSP(int64(id), rdfSubject)
	if !ok {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	o, ok := e.firstSP(int64(id), rdfObject)
	if !ok {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	return core.ID(s), core.ID(o), nil
}

// EdgeProps implements core.Engine.
func (e *Engine) EdgeProps(id core.ID) (core.Props, error) {
	if !e.HasEdge(id) {
		return nil, core.ErrNotFound
	}
	p := core.Props{}
	e.forS(int64(id), func(pr, o int64) bool {
		if pr != rdfSubject && pr != rdfPredicate && pr != rdfObject {
			p[e.predName(pr)] = e.literalValue(o)
		}
		return true
	})
	if len(p) == 0 {
		return nil, nil
	}
	return p, nil
}

// EdgeProp implements core.Engine.
func (e *Engine) EdgeProp(id core.ID, name string) (core.Value, bool) {
	if !e.HasEdge(id) {
		return core.Nil, false
	}
	pr, ok := e.preds[name]
	if !ok {
		return core.Nil, false
	}
	o, ok := e.firstSP(int64(id), pr)
	if !ok {
		return core.Nil, false
	}
	return e.literalValue(o), true
}

// SetEdgeProp implements core.Engine.
func (e *Engine) SetEdgeProp(id core.ID, name string, v core.Value) error {
	if !e.HasEdge(id) {
		return core.ErrNotFound
	}
	pr := e.pred(name)
	if old, ok := e.firstSP(int64(id), pr); ok {
		e.removeStatement(statement{int64(id), pr, old})
	}
	e.addStatement(statement{int64(id), pr, e.literal(v)})
	return nil
}

// RemoveEdgeProp implements core.Engine.
func (e *Engine) RemoveEdgeProp(id core.ID, name string) error {
	if !e.HasEdge(id) {
		return core.ErrNotFound
	}
	if pr, ok := e.preds[name]; ok {
		if old, ok := e.firstSP(int64(id), pr); ok {
			e.removeStatement(statement{int64(id), pr, old})
		}
	}
	return nil
}

// RemoveEdge implements core.Engine.
func (e *Engine) RemoveEdge(id core.ID) error {
	if !e.HasEdge(id) {
		return core.ErrNotFound
	}
	e.removeEdgeStatements(int64(id))
	return nil
}

func (e *Engine) removeEdgeStatements(ed int64) {
	var sts []statement
	e.forS(ed, func(p, o int64) bool { sts = append(sts, statement{ed, p, o}); return true })
	for _, st := range sts {
		e.removeStatement(st)
	}
}

// --- scans (per-step graph API execution; see package doc) ---

// CountVertices implements core.Engine.
func (e *Engine) CountVertices() (int64, error) {
	var n int64
	e.forPO(rdfType, vertexClassTerm(), func(int64) bool { n++; return true })
	return n, nil
}

// CountEdges implements core.Engine: enumerate reified subjects.
func (e *Engine) CountEdges() (int64, error) {
	var n int64
	e.pos.AscendPrefix(key1(rdfSubject), func(_, _ []byte) bool { n++; return true })
	return n, nil
}

// Vertices implements core.Engine.
func (e *Engine) Vertices() core.Iter[core.ID] {
	var out []core.ID
	e.forPO(rdfType, vertexClassTerm(), func(s int64) bool {
		out = append(out, core.ID(s))
		return true
	})
	return core.SliceIter(out)
}

// Edges implements core.Engine.
func (e *Engine) Edges() core.Iter[core.ID] {
	var out []core.ID
	e.pos.AscendPrefix(key1(rdfSubject), func(k, _ []byte) bool {
		_, _, s := decode3(k)
		out = append(out, core.ID(s))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return core.SliceIter(out)
}

// VerticesByProp implements core.Engine: iterate all vertices and probe
// each one's statement (the step-at-a-time Gremlin execution that never
// reaches the SPARQL optimizer).
func (e *Engine) VerticesByProp(name string, v core.Value) core.Iter[core.ID] {
	pr, okP := e.preds[name]
	lit, okL := e.lits[v]
	if !okP || !okL {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Vertices(), func(id core.ID) bool {
		return e.hasStatement(statement{int64(id), pr, lit})
	})
}

// EdgesByProp implements core.Engine.
func (e *Engine) EdgesByProp(name string, v core.Value) core.Iter[core.ID] {
	pr, okP := e.preds[name]
	lit, okL := e.lits[v]
	if !okP || !okL {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		return e.hasStatement(statement{int64(id), pr, lit})
	})
}

// EdgesByLabel implements core.Engine.
func (e *Engine) EdgesByLabel(label string) core.Iter[core.ID] {
	pr, ok := e.preds["label:"+label]
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		return e.hasStatement(statement{int64(id), rdfPredicate, pr})
	})
}

// --- traversal ---

// IncidentEdges implements core.Engine: POS probes for the reified
// statements, then per-edge label probes when a filter is present.
func (e *Engine) IncidentEdges(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	if !e.HasVertex(id) {
		return core.EmptyIter[core.ID]()
	}
	var want map[int64]bool
	if len(labels) > 0 {
		want = make(map[int64]bool, len(labels))
		for _, l := range labels {
			if pr, ok := e.preds["label:"+l]; ok {
				want[pr] = true
			}
		}
		if len(want) == 0 {
			return core.EmptyIter[core.ID]()
		}
	}
	var out []core.ID
	add := func(s int64) bool {
		if want != nil {
			p, _ := e.firstSP(s, rdfPredicate)
			if !want[p] {
				return true
			}
		}
		out = append(out, core.ID(s))
		return true
	}
	v := int64(id)
	switch d {
	case core.DirOut:
		e.forPO(rdfSubject, v, add)
	case core.DirIn:
		e.forPO(rdfObject, v, add)
	default:
		e.forPO(rdfSubject, v, add)
		e.forPO(rdfObject, v, func(s int64) bool {
			// Skip loops: already collected by the subject pass.
			if sub, _ := e.firstSP(s, rdfSubject); sub == v {
				return true
			}
			return add(s)
		})
	}
	return core.SliceIter(out)
}

// Neighbors implements core.Engine.
func (e *Engine) Neighbors(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	inner := e.IncidentEdges(id, d, labels...)
	return func() (core.ID, bool) {
		eid, ok := inner()
		if !ok {
			return core.NoID, false
		}
		s, o, err := e.EdgeEnds(eid)
		if err != nil {
			return core.NoID, false
		}
		if s != id {
			return s, true
		}
		return o, true
	}
}

// Degree implements core.Engine.
func (e *Engine) Degree(id core.ID, d core.Direction) (int64, error) {
	if !e.HasVertex(id) {
		return 0, core.ErrNotFound
	}
	return int64(core.Drain(e.IncidentEdges(id, d))), nil
}

// --- index / bulk / space ---

// BuildVertexPropIndex implements core.Engine: the engine has no
// user-controlled attribute indexes.
func (e *Engine) BuildVertexPropIndex(string) error { return core.ErrUnsupported }

// HasVertexPropIndex implements core.Engine.
func (e *Engine) HasVertexPropIndex(string) bool { return false }

// BulkLoad implements core.Engine through the explicit "bulk loading"
// option: statements are collected, sorted once per index, and the
// three B+Trees are bulk-built without per-insert rebalancing.
func (e *Engine) BulkLoad(g *core.Graph) (*core.LoadResult, error) {
	e.CapturePlanStats(g)
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	// Exact statement count from the CSR snapshot: one rdf:type per
	// vertex, three reification triples per edge, one per property.
	snap := g.Snapshot()
	sts := make([]statement, 0, g.NumVertices()+3*g.NumEdges()+snap.VPropTotal+snap.EPropTotal)
	// The label predicates alone put len(snap.Labels) terms in the
	// dictionary; pre-size an untouched one to at least that.
	if len(e.preds) == 0 {
		e.preds = make(map[string]int64, len(snap.Labels))
	}
	for i := range g.VProps {
		v := mkTerm(tagVertex, e.nextV)
		e.nextV++
		res.VertexIDs[i] = core.ID(v)
		sts = append(sts, statement{v, rdfType, vertexClassTerm()})
		for k, val := range g.VProps[i] {
			sts = append(sts, statement{v, e.pred(k), e.literal(val)})
		}
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		ed := mkTerm(tagEdge, e.nextE)
		e.nextE++
		res.EdgeIDs[i] = core.ID(ed)
		sts = append(sts,
			statement{ed, rdfSubject, int64(res.VertexIDs[er.Src])},
			statement{ed, rdfPredicate, e.pred("label:" + er.Label)},
			statement{ed, rdfObject, int64(res.VertexIDs[er.Dst])})
		for k, val := range er.Props {
			sts = append(sts, statement{ed, e.pred(k), e.literal(val)})
		}
	}
	// Merge with any pre-existing statements (bulk load on a non-empty
	// store falls back to the incremental path for simplicity).
	if e.spo.Len() > 0 {
		for _, st := range sts {
			e.addStatement(st)
		}
		return res, nil
	}
	build := func(t *btree.Tree, perm func(statement) []byte) error {
		keys := make([][]byte, len(sts))
		for i, st := range sts {
			keys[i] = perm(st)
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		// Dedupe defensively: BulkBuild requires strictly ascending keys.
		uniq := keys[:0]
		for i, k := range keys {
			if i == 0 || !bytes.Equal(k, keys[i-1]) {
				uniq = append(uniq, k)
			}
		}
		return t.BulkBuild(uniq, make([][]byte, len(uniq)))
	}
	if err := build(e.spo, func(st statement) []byte { return key3(st.s, st.p, st.o) }); err != nil {
		return nil, err
	}
	if err := build(e.pos, func(st statement) []byte { return key3(st.p, st.o, st.s) }); err != nil {
		return nil, err
	}
	if err := build(e.osp, func(st statement) []byte { return key3(st.o, st.s, st.p) }); err != nil {
		return nil, err
	}
	e.journalUsed += int64(len(sts)) * 75
	for e.journalUsed > e.journalCap {
		e.journalCap += journalSegment
	}
	return res, nil
}

// SpaceUsage implements core.Engine: the pre-allocated journal plus the
// threefold statement indexes and the term dictionary.
func (e *Engine) SpaceUsage() core.SpaceReport {
	var r core.SpaceReport
	r.Add("journal(preallocated)", e.journalCap)
	r.Add("spo-index", e.spo.Bytes())
	r.Add("pos-index", e.pos.Bytes())
	r.Add("osp-index", e.osp.Bytes())
	var dict int64
	for v := range e.lits {
		dict += v.Bytes() + 24
	}
	for _, p := range e.predNames {
		dict += int64(len(p)) + 24
	}
	r.Add("term-dictionary", dict)
	return r
}

// Close implements core.Engine.
func (e *Engine) Close() error { return nil }
