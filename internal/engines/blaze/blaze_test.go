package blaze

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engines/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New() })
}

func TestConcurrencyConformance(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New() })
}

func TestEveryStatementIndexedThreeTimes(t *testing.T) {
	e := New()
	defer e.Close()
	e.AddVertex(core.Props{"p": core.I(1)})
	// 2 statements (type + property) in each of the three indexes.
	if e.spo.Len() != 2 || e.pos.Len() != 2 || e.osp.Len() != 2 {
		t.Fatalf("index lengths = %d/%d/%d", e.spo.Len(), e.pos.Len(), e.osp.Len())
	}
}

func TestEdgeReification(t *testing.T) {
	e := New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	eid, _ := e.AddEdge(a, b, "knows", core.Props{"w": core.I(1)})
	// Reified edge = subject + predicate + object + 1 property = 4
	// statements; plus 2 vertex type statements = 6 total.
	if e.spo.Len() != 6 {
		t.Fatalf("spo statements = %d, want 6", e.spo.Len())
	}
	if s, _ := e.firstSP(int64(eid), rdfSubject); s != int64(a) {
		t.Fatal("rdf:subject statement wrong")
	}
	if o, _ := e.firstSP(int64(eid), rdfObject); o != int64(b) {
		t.Fatal("rdf:object statement wrong")
	}
	e.RemoveEdge(eid)
	if e.spo.Len() != 2 || e.pos.Len() != 2 || e.osp.Len() != 2 {
		t.Fatalf("edge statements not fully retracted: %d", e.spo.Len())
	}
}

func TestJournalPreallocatedInFixedSegments(t *testing.T) {
	e := New()
	defer e.Close()
	r := e.SpaceUsage()
	if r.Breakdown["journal(preallocated)"] != journalSegment {
		t.Fatalf("empty journal = %d, want one segment %d",
			r.Breakdown["journal(preallocated)"], journalSegment)
	}
	// The journal only grows in whole segments (over-allocation is the
	// paper's explanation for the ~3x space).
	g := core.NewGraph(2000, 8000)
	for i := 0; i < 2000; i++ {
		g.AddVertex(core.Props{"n": core.I(int64(i))})
	}
	for i := 0; i < 8000; i++ {
		g.AddEdge(i%2000, (i+7)%2000, "l", nil)
	}
	if _, err := e.BulkLoad(g); err != nil {
		t.Fatal(err)
	}
	cap := e.SpaceUsage().Breakdown["journal(preallocated)"]
	if cap%journalSegment != 0 {
		t.Fatalf("journal capacity %d not a multiple of the segment size", cap)
	}
	if cap <= e.journalUsed {
		t.Fatalf("journal capacity %d must exceed used bytes %d", cap, e.journalUsed)
	}
}

func TestBulkLoadMatchesIncrementalState(t *testing.T) {
	g := core.NewGraph(50, 120)
	for i := 0; i < 50; i++ {
		g.AddVertex(core.Props{"i": core.I(int64(i))})
	}
	for i := 0; i < 120; i++ {
		g.AddEdge(i%50, (i+3)%50, "l", core.Props{"w": core.I(int64(i))})
	}
	bulk := New()
	if _, err := bulk.BulkLoad(g); err != nil {
		t.Fatal(err)
	}
	incr := New()
	res := &core.LoadResult{}
	for i := range g.VProps {
		id, _ := incr.AddVertex(g.VProps[i])
		res.VertexIDs = append(res.VertexIDs, id)
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		id, _ := incr.AddEdge(res.VertexIDs[er.Src], res.VertexIDs[er.Dst], er.Label, er.Props)
		res.EdgeIDs = append(res.EdgeIDs, id)
	}
	if bulk.spo.Len() != incr.spo.Len() {
		t.Fatalf("statement counts differ: bulk=%d incr=%d", bulk.spo.Len(), incr.spo.Len())
	}
	nb, _ := bulk.CountEdges()
	ni, _ := incr.CountEdges()
	if nb != ni || nb != 120 {
		t.Fatalf("edge counts: bulk=%d incr=%d", nb, ni)
	}
	// Both must answer the same traversal.
	db, _ := bulk.Degree(core.ID(mkTerm(tagVertex, 0)), core.DirBoth)
	di, _ := incr.Degree(core.ID(mkTerm(tagVertex, 0)), core.DirBoth)
	if db != di {
		t.Fatalf("degree diverged: %d vs %d", db, di)
	}
}

func TestNoUserIndexes(t *testing.T) {
	e := New()
	defer e.Close()
	if err := e.BuildVertexPropIndex("x"); err != core.ErrUnsupported {
		t.Fatalf("BuildVertexPropIndex err = %v, want ErrUnsupported", err)
	}
	if e.HasVertexPropIndex("x") {
		t.Fatal("index reported despite being unsupported")
	}
}

func TestSpaceTriplication(t *testing.T) {
	// The three statement indexes make structural bytes ~3x a single
	// index; verify spo/pos/osp are all populated and similar in size.
	e := New()
	defer e.Close()
	g := core.NewGraph(100, 400)
	for i := 0; i < 100; i++ {
		g.AddVertex(nil)
	}
	for i := 0; i < 400; i++ {
		g.AddEdge(i%100, (i+1)%100, "l", nil)
	}
	e.BulkLoad(g)
	r := e.SpaceUsage()
	spo, pos, osp := r.Breakdown["spo-index"], r.Breakdown["pos-index"], r.Breakdown["osp-index"]
	if spo == 0 || pos == 0 || osp == 0 {
		t.Fatalf("an index is empty: %d/%d/%d", spo, pos, osp)
	}
	if pos < spo/2 || pos > spo*2 || osp < spo/2 || osp > spo*2 {
		t.Fatalf("index sizes should be comparable: %d/%d/%d", spo, pos, osp)
	}
}
