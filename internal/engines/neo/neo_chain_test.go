package neo

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestPropertyChainSurgery exercises removal at the head, middle and
// tail of long property chains, plus record reuse.
func TestPropertyChainSurgery(t *testing.T) {
	for _, v := range []Version{V19, V30} {
		t.Run(fmt.Sprint("v", v), func(t *testing.T) {
			e := New(v)
			defer e.Close()
			id, _ := e.AddVertex(nil)
			const n = 20
			for i := 0; i < n; i++ {
				e.SetVertexProp(id, fmt.Sprintf("p%02d", i), core.I(int64(i)))
			}
			// Remove middle, head (last added = chain head), and tail.
			for _, name := range []string{"p10", fmt.Sprintf("p%02d", n-1), "p00"} {
				if err := e.RemoveVertexProp(id, name); err != nil {
					t.Fatalf("remove %s: %v", name, err)
				}
			}
			props, _ := e.VertexProps(id)
			if len(props) != n-3 {
				t.Fatalf("props = %d, want %d", len(props), n-3)
			}
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("p%02d", i)
				_, ok := e.VertexProp(id, name)
				removed := name == "p10" || name == fmt.Sprintf("p%02d", n-1) || name == "p00"
				if ok == removed {
					t.Fatalf("%s: ok=%v removed=%v", name, ok, removed)
				}
			}
			// Freed property records must be reused by new properties.
			live := e.props.Live()
			e.SetVertexProp(id, "fresh1", core.I(1))
			e.SetVertexProp(id, "fresh2", core.I(2))
			if e.props.Live() != live+2 {
				t.Fatalf("prop records live = %d, want %d", e.props.Live(), live+2)
			}
			if e.props.HighWater() != int64(n) {
				t.Fatalf("high water = %d, want %d (reuse expected)", e.props.HighWater(), n)
			}
		})
	}
}

// TestChainStressRandomEdgeChurn hammers the doubly-linked relationship
// chains with random insertions and deletions, checking the chain view
// against a reference set after every batch.
func TestChainStressRandomEdgeChurn(t *testing.T) {
	for _, v := range []Version{V19, V30} {
		t.Run(fmt.Sprint("v", v), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			e := New(v)
			defer e.Close()
			const nv = 12
			var vs []core.ID
			for i := 0; i < nv; i++ {
				id, _ := e.AddVertex(nil)
				vs = append(vs, id)
			}
			type edge struct {
				id       core.ID
				src, dst int
			}
			var live []edge
			labels := []string{"x", "y"}
			for round := 0; round < 60; round++ {
				if rng.Intn(3) != 0 || len(live) == 0 {
					s, d := rng.Intn(nv), rng.Intn(nv)
					id, err := e.AddEdge(vs[s], vs[d], labels[rng.Intn(2)], nil)
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, edge{id, s, d})
				} else {
					k := rng.Intn(len(live))
					if err := e.RemoveEdge(live[k].id); err != nil {
						t.Fatal(err)
					}
					live = append(live[:k], live[k+1:]...)
				}
				// Verify per-vertex incident sets.
				for vi, vid := range vs {
					want := map[core.ID]bool{}
					for _, ed := range live {
						if ed.src == vi || ed.dst == vi {
							want[ed.id] = true
						}
					}
					got := map[core.ID]bool{}
					it := e.IncidentEdges(vid, core.DirBoth)
					for id, ok := it(); ok; id, ok = it() {
						if got[id] {
							t.Fatalf("round %d: duplicate edge %d at vertex %d", round, id, vi)
						}
						got[id] = true
					}
					if len(got) != len(want) {
						t.Fatalf("round %d: vertex %d sees %d edges, want %d", round, vi, len(got), len(want))
					}
					for id := range want {
						if !got[id] {
							t.Fatalf("round %d: vertex %d missing edge %d", round, vi, id)
						}
					}
				}
			}
		})
	}
}

// TestRelationshipRecordReuse verifies freed relationship records go
// back to the store freelist (ID = offset reuse).
func TestRelationshipRecordReuse(t *testing.T) {
	e := New(V19)
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	e1, _ := e.AddEdge(a, b, "l", nil)
	e.RemoveEdge(e1)
	e2, _ := e.AddEdge(b, a, "l2", nil)
	if e2 != e1 {
		t.Fatalf("freed relationship record not reused: %d then %d", e1, e2)
	}
	if l, _ := e.EdgeLabel(e2); l != "l2" {
		t.Fatalf("label after reuse = %q", l)
	}
}
