package neo

import (
	"sort"

	"repro/internal/core"
	"repro/internal/pagefile"
)

// --- vertex CRUD ---

// AddVertex implements core.Engine.
func (e *Engine) AddVertex(props core.Props) (core.ID, error) {
	if e.closed {
		return core.NoID, core.ErrClosed
	}
	t := e.begin()
	id := e.addVertexDirect(props)
	t.record(0, int64(id), nil)
	t.commit()
	return id, nil
}

func (e *Engine) addVertexDirect(props core.Props) core.ID {
	id := e.nodes.Alloc()
	rec, _ := e.nodes.Record(id)
	setNodeFirstRel(rec, nilRef)
	first := nilRef
	for k, v := range props {
		first = e.propChainSet(first, k, v, nil)
		e.indexAdd(k, v, core.ID(id))
	}
	setNodeFirstProp(rec, first)
	return core.ID(id)
}

// HasVertex implements core.Engine.
func (e *Engine) HasVertex(id core.ID) bool { return e.nodes.InUse(int64(id)) }

// VertexProps implements core.Engine.
func (e *Engine) VertexProps(id core.ID) (core.Props, error) {
	rec, ok := e.nodes.Record(int64(id))
	if !ok {
		return nil, core.ErrNotFound
	}
	return e.propChainAll(nodeFirstProp(rec)), nil
}

// VertexProp implements core.Engine.
func (e *Engine) VertexProp(id core.ID, name string) (core.Value, bool) {
	rec, ok := e.nodes.Record(int64(id))
	if !ok {
		return core.Nil, false
	}
	return e.propChainGet(nodeFirstProp(rec), name)
}

// SetVertexProp implements core.Engine.
func (e *Engine) SetVertexProp(id core.ID, name string, v core.Value) error {
	rec, ok := e.nodes.Record(int64(id))
	if !ok {
		return core.ErrNotFound
	}
	t := e.begin()
	t.record(0, int64(id), rec)
	if _, indexed := e.vindexes[name]; indexed {
		if old, had := e.propChainGet(nodeFirstProp(rec), name); had {
			e.indexRemove(name, old, id)
		}
		e.indexAdd(name, v, id)
	}
	setNodeFirstProp(rec, e.propChainSet(nodeFirstProp(rec), name, v, t))
	t.commit()
	return nil
}

// RemoveVertexProp implements core.Engine.
func (e *Engine) RemoveVertexProp(id core.ID, name string) error {
	rec, ok := e.nodes.Record(int64(id))
	if !ok {
		return core.ErrNotFound
	}
	t := e.begin()
	t.record(0, int64(id), rec)
	if _, indexed := e.vindexes[name]; indexed {
		if old, had := e.propChainGet(nodeFirstProp(rec), name); had {
			e.indexRemove(name, old, id)
		}
	}
	head, _ := e.propChainRemove(nodeFirstProp(rec), name, t)
	setNodeFirstProp(rec, head)
	t.commit()
	return nil
}

// RemoveVertex implements core.Engine. Incident edges are cascaded.
func (e *Engine) RemoveVertex(id core.ID) error {
	rec, ok := e.nodes.Record(int64(id))
	if !ok {
		return core.ErrNotFound
	}
	t := e.begin()
	t.record(0, int64(id), rec)
	// Collect incident edges first: unlinking while walking would break
	// the chain.
	incident := core.Collect(e.IncidentEdges(id, core.DirBoth))
	for _, eid := range incident {
		if err := e.removeEdgeInternal(eid, t); err != nil {
			return err
		}
	}
	// Drop index entries for this vertex.
	for name := range e.vindexes {
		if v, had := e.propChainGet(nodeFirstProp(rec), name); had {
			e.indexRemove(name, v, id)
		}
	}
	e.propChainFree(nodeFirstProp(rec))
	if e.version == V30 {
		e.freeGroups(nodeFirstRel(rec))
	}
	e.nodes.Free(int64(id))
	t.commit()
	return nil
}

// --- edge CRUD ---

// AddEdge implements core.Engine.
func (e *Engine) AddEdge(src, dst core.ID, label string, props core.Props) (core.ID, error) {
	if !e.nodes.InUse(int64(src)) || !e.nodes.InUse(int64(dst)) {
		return core.NoID, core.ErrNotFound
	}
	t := e.begin()
	id := e.addEdgeDirect(src, dst, label, props, t)
	t.commit()
	return id, nil
}

func (e *Engine) addEdgeDirect(src, dst core.ID, label string, props core.Props, t *tx) core.ID {
	tok := e.labels.get(label)
	id := e.rels.Alloc()
	rec, _ := e.rels.Record(id)
	putI64(rec, rSrc, int64(src))
	putI64(rec, rDst, int64(dst))
	putU32(rec, rType, tok)
	putI64(rec, rSrcPrev, nilRef)
	putI64(rec, rSrcNext, nilRef)
	putI64(rec, rDstPrev, nilRef)
	putI64(rec, rDstNext, nilRef)
	first := nilRef
	for k, v := range props {
		first = e.propChainSet(first, k, v, nil)
	}
	putI64(rec, rFirstProp, first)

	if e.version == V19 {
		e.linkV19(int64(src), id, rec, true)
		if dst != src {
			e.linkV19(int64(dst), id, rec, false)
		}
	} else {
		e.linkV30(int64(src), id, rec, tok, true, t)
		e.linkV30(int64(dst), id, rec, tok, false, t)
	}
	t.record(1, id, rec)
	return core.ID(id)
}

// linkV19 pushes rel id at the head of node's single chain. asSrc
// selects which pointer pair of the new record carries the chain.
func (e *Engine) linkV19(node, id int64, rec []byte, asSrc bool) {
	nrec, _ := e.nodes.Record(node)
	head := nodeFirstRel(nrec)
	if asSrc {
		putI64(rec, rSrcNext, head)
	} else {
		putI64(rec, rDstNext, head)
	}
	if head != nilRef {
		hrec, _ := e.rels.Record(head)
		if getI64(hrec, rSrc) == node {
			putI64(hrec, rSrcPrev, id)
		} else {
			putI64(hrec, rDstPrev, id)
		}
	}
	setNodeFirstRel(nrec, id)
}

// linkV30 pushes rel id at the head of node's per-type chain: the out
// chain when asSrc, the in chain otherwise. Group records are created on
// demand (the relationship-group machinery the newer storage format
// introduced to split chains by type and direction).
func (e *Engine) linkV30(node, id int64, rec []byte, tok uint32, asSrc bool, t *tx) {
	grp := e.findOrAddGroup(node, tok, t)
	grec, _ := e.groups.Record(grp)
	if asSrc {
		head := getI64(grec, gFirstOut)
		putI64(rec, rSrcNext, head)
		if head != nilRef {
			hrec, _ := e.rels.Record(head)
			putI64(hrec, rSrcPrev, id)
		}
		putI64(grec, gFirstOut, id)
	} else {
		head := getI64(grec, gFirstIn)
		putI64(rec, rDstNext, head)
		if head != nilRef {
			hrec, _ := e.rels.Record(head)
			putI64(hrec, rDstPrev, id)
		}
		putI64(grec, gFirstIn, id)
	}
}

func (e *Engine) findOrAddGroup(node int64, tok uint32, t *tx) int64 {
	nrec, _ := e.nodes.Record(node)
	for g := nodeFirstRel(nrec); g != nilRef; {
		grec, _ := e.groups.Record(g)
		if getU32(grec, gType) == tok {
			return g
		}
		g = getI64(grec, gNext)
	}
	g := e.groups.Alloc()
	grec, _ := e.groups.Record(g)
	putU32(grec, gType, tok)
	putI64(grec, gNext, nodeFirstRel(nrec))
	putI64(grec, gFirstOut, nilRef)
	putI64(grec, gFirstIn, nilRef)
	setNodeFirstRel(nrec, g)
	t.record(3, g, grec)
	return g
}

func (e *Engine) freeGroups(first int64) {
	for g := first; g != nilRef; {
		grec, _ := e.groups.Record(g)
		next := getI64(grec, gNext)
		e.groups.Free(g)
		g = next
	}
}

// HasEdge implements core.Engine.
func (e *Engine) HasEdge(id core.ID) bool { return e.rels.InUse(int64(id)) }

// EdgeLabel implements core.Engine.
func (e *Engine) EdgeLabel(id core.ID) (string, error) {
	rec, ok := e.rels.Record(int64(id))
	if !ok {
		return "", core.ErrNotFound
	}
	return e.labels.name(getU32(rec, rType)), nil
}

// EdgeEnds implements core.Engine.
func (e *Engine) EdgeEnds(id core.ID) (core.ID, core.ID, error) {
	rec, ok := e.rels.Record(int64(id))
	if !ok {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	return core.ID(getI64(rec, rSrc)), core.ID(getI64(rec, rDst)), nil
}

// EdgeProps implements core.Engine.
func (e *Engine) EdgeProps(id core.ID) (core.Props, error) {
	rec, ok := e.rels.Record(int64(id))
	if !ok {
		return nil, core.ErrNotFound
	}
	return e.propChainAll(getI64(rec, rFirstProp)), nil
}

// EdgeProp implements core.Engine.
func (e *Engine) EdgeProp(id core.ID, name string) (core.Value, bool) {
	rec, ok := e.rels.Record(int64(id))
	if !ok {
		return core.Nil, false
	}
	return e.propChainGet(getI64(rec, rFirstProp), name)
}

// SetEdgeProp implements core.Engine.
func (e *Engine) SetEdgeProp(id core.ID, name string, v core.Value) error {
	rec, ok := e.rels.Record(int64(id))
	if !ok {
		return core.ErrNotFound
	}
	t := e.begin()
	t.record(1, int64(id), rec)
	putI64(rec, rFirstProp, e.propChainSet(getI64(rec, rFirstProp), name, v, t))
	t.commit()
	return nil
}

// RemoveEdgeProp implements core.Engine.
func (e *Engine) RemoveEdgeProp(id core.ID, name string) error {
	rec, ok := e.rels.Record(int64(id))
	if !ok {
		return core.ErrNotFound
	}
	t := e.begin()
	t.record(1, int64(id), rec)
	head, _ := e.propChainRemove(getI64(rec, rFirstProp), name, t)
	putI64(rec, rFirstProp, head)
	t.commit()
	return nil
}

// RemoveEdge implements core.Engine.
func (e *Engine) RemoveEdge(id core.ID) error {
	if !e.rels.InUse(int64(id)) {
		return core.ErrNotFound
	}
	t := e.begin()
	err := e.removeEdgeInternal(id, t)
	t.commit()
	return err
}

func (e *Engine) removeEdgeInternal(id core.ID, t *tx) error {
	rec, ok := e.rels.Record(int64(id))
	if !ok {
		return core.ErrNotFound
	}
	t.record(1, int64(id), rec)
	src := getI64(rec, rSrc)
	dst := getI64(rec, rDst)
	tok := getU32(rec, rType)
	if e.version == V19 {
		e.unlinkV19(src, int64(id), rec, true)
		if dst != src {
			e.unlinkV19(dst, int64(id), rec, false)
		}
	} else {
		e.unlinkV30(src, int64(id), rec, tok, true)
		e.unlinkV30(dst, int64(id), rec, tok, false)
	}
	e.propChainFree(getI64(rec, rFirstProp))
	e.rels.Free(int64(id))
	return nil
}

// unlinkV19 removes rel id from node's chain. asSrc selects which
// pointer pair of the record carries this node's chain.
func (e *Engine) unlinkV19(node, id int64, rec []byte, asSrc bool) {
	var prev, next int64
	if asSrc {
		prev, next = getI64(rec, rSrcPrev), getI64(rec, rSrcNext)
	} else {
		prev, next = getI64(rec, rDstPrev), getI64(rec, rDstNext)
	}
	if prev == nilRef {
		nrec, _ := e.nodes.Record(node)
		setNodeFirstRel(nrec, next)
	} else {
		prec, _ := e.rels.Record(prev)
		if getI64(prec, rSrc) == node {
			putI64(prec, rSrcNext, next)
		} else {
			putI64(prec, rDstNext, next)
		}
	}
	if next != nilRef {
		nrec, _ := e.rels.Record(next)
		if getI64(nrec, rSrc) == node {
			putI64(nrec, rSrcPrev, prev)
		} else {
			putI64(nrec, rDstPrev, prev)
		}
	}
}

// unlinkV30 removes rel id from the per-type out or in chain of node.
func (e *Engine) unlinkV30(node, id int64, rec []byte, tok uint32, asSrc bool) {
	var prev, next int64
	if asSrc {
		prev, next = getI64(rec, rSrcPrev), getI64(rec, rSrcNext)
	} else {
		prev, next = getI64(rec, rDstPrev), getI64(rec, rDstNext)
	}
	if prev == nilRef {
		// Head of a group chain: find the group.
		nrec, _ := e.nodes.Record(node)
		for g := nodeFirstRel(nrec); g != nilRef; {
			grec, _ := e.groups.Record(g)
			if getU32(grec, gType) == tok {
				if asSrc {
					putI64(grec, gFirstOut, next)
				} else {
					putI64(grec, gFirstIn, next)
				}
				break
			}
			g = getI64(grec, gNext)
		}
	} else {
		prec, _ := e.rels.Record(prev)
		if asSrc {
			putI64(prec, rSrcNext, next)
		} else {
			putI64(prec, rDstNext, next)
		}
	}
	if next != nilRef {
		nrec, _ := e.rels.Record(next)
		if asSrc {
			putI64(nrec, rSrcPrev, prev)
		} else {
			putI64(nrec, rDstPrev, prev)
		}
	}
}

// --- store-wide scans ---

func storeIter(s *pagefile.Store) core.Iter[core.ID] {
	var i int64
	hw := s.HighWater()
	return func() (core.ID, bool) {
		for i < hw {
			id := i
			i++
			if s.InUse(id) {
				return core.ID(id), true
			}
		}
		return core.NoID, false
	}
}

// CountVertices implements core.Engine; it scans the node store, as the
// modelled versions do (no count store).
func (e *Engine) CountVertices() (int64, error) {
	return int64(core.Drain(e.Vertices())), nil
}

// CountEdges implements core.Engine.
func (e *Engine) CountEdges() (int64, error) {
	return int64(core.Drain(e.Edges())), nil
}

// Vertices implements core.Engine.
func (e *Engine) Vertices() core.Iter[core.ID] { return storeIter(e.nodes) }

// Edges implements core.Engine.
func (e *Engine) Edges() core.Iter[core.ID] { return storeIter(e.rels) }

// VerticesByProp implements core.Engine: an index lookup when the user
// built one, a full node-store scan with property-chain walks otherwise.
func (e *Engine) VerticesByProp(name string, v core.Value) core.Iter[core.ID] {
	if idx, ok := e.vindexes[name]; ok {
		set := idx[v]
		out := make([]core.ID, 0, len(set))
		for id := range set {
			out = append(out, id)
		}
		// Ascending id order: the same sequence the scan path yields, so
		// indexed and unindexed lookups are interchangeable downstream.
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return core.SliceIter(out)
	}
	inner := e.Vertices()
	return core.FilterIter(inner, func(id core.ID) bool {
		got, ok := e.VertexProp(id, name)
		return ok && got.Compare(v) == 0
	})
}

// EdgesByProp implements core.Engine (always a scan: the modelled
// versions index only node attributes).
func (e *Engine) EdgesByProp(name string, v core.Value) core.Iter[core.ID] {
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		got, ok := e.EdgeProp(id, name)
		return ok && got.Compare(v) == 0
	})
}

// EdgesByLabel implements core.Engine: a relationship-store scan
// comparing type tokens (the paper notes native engines did not
// specially optimize label equality search).
func (e *Engine) EdgesByLabel(label string) core.Iter[core.ID] {
	tok, ok := e.labels.lookup(label)
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		rec, _ := e.rels.Record(int64(id))
		return getU32(rec, rType) == tok
	})
}

// --- traversal ---

// IncidentEdges implements core.Engine.
func (e *Engine) IncidentEdges(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	if !e.nodes.InUse(int64(id)) {
		return core.EmptyIter[core.ID]()
	}
	toks, any, none := e.labelToks(labels)
	if none {
		return core.EmptyIter[core.ID]()
	}
	if e.version == V19 {
		return e.incidentV19(int64(id), d, toks, any)
	}
	return e.incidentV30(int64(id), d, toks, any)
}

func (e *Engine) labelToks(labels []string) (map[uint32]bool, bool, bool) {
	if len(labels) == 0 {
		return nil, true, false
	}
	toks := make(map[uint32]bool, len(labels))
	for _, l := range labels {
		if tok, ok := e.labels.lookup(l); ok {
			toks[tok] = true
		}
	}
	return toks, false, len(toks) == 0
}

func (e *Engine) incidentV19(node int64, d core.Direction, toks map[uint32]bool, any bool) core.Iter[core.ID] {
	nrec, _ := e.nodes.Record(node)
	cur := nodeFirstRel(nrec)
	return func() (core.ID, bool) {
		for cur != nilRef {
			id := cur
			rec, _ := e.rels.Record(id)
			src := getI64(rec, rSrc)
			if src == node {
				cur = getI64(rec, rSrcNext)
			} else {
				cur = getI64(rec, rDstNext)
			}
			if !any && !toks[getU32(rec, rType)] {
				continue
			}
			dst := getI64(rec, rDst)
			switch d {
			case core.DirOut:
				if src != node {
					continue
				}
			case core.DirIn:
				if dst != node {
					continue
				}
			}
			return core.ID(id), true
		}
		return core.NoID, false
	}
}

// incidentV30 walks the group chains. For DirBoth, the out chains are
// walked first and then the in chains with self-loops skipped (a loop is
// already reported by its out chain).
func (e *Engine) incidentV30(node int64, d core.Direction, toks map[uint32]bool, any bool) core.Iter[core.ID] {
	nrec, _ := e.nodes.Record(node)
	grp := nodeFirstRel(nrec)
	phaseOut := d == core.DirOut || d == core.DirBoth
	cur := nilRef
	advanceGroup := func() {
		for cur == nilRef && grp != nilRef {
			grec, _ := e.groups.Record(grp)
			if any || toks[getU32(grec, gType)] {
				if phaseOut {
					cur = getI64(grec, gFirstOut)
				} else {
					cur = getI64(grec, gFirstIn)
				}
			}
			if cur == nilRef {
				grp = getI64(grec, gNext)
			}
		}
	}
	advanceGroup()
	return func() (core.ID, bool) {
		for {
			if cur == nilRef {
				if grp == nilRef {
					if phaseOut && d == core.DirBoth {
						// Switch to the in-chain phase.
						phaseOut = false
						grp = nodeFirstRel(nrec)
						advanceGroup()
						continue
					}
					return core.NoID, false
				}
				grec, _ := e.groups.Record(grp)
				grp = getI64(grec, gNext)
				advanceGroup()
				continue
			}
			id := cur
			rec, _ := e.rels.Record(id)
			if phaseOut {
				cur = getI64(rec, rSrcNext)
			} else {
				cur = getI64(rec, rDstNext)
			}
			if cur == nilRef {
				grec, _ := e.groups.Record(grp)
				grp = getI64(grec, gNext)
				advanceGroup()
			}
			if !phaseOut && d == core.DirBoth && getI64(rec, rSrc) == getI64(rec, rDst) {
				continue // loop already seen in the out phase
			}
			return core.ID(id), true
		}
	}
}

// Neighbors implements core.Engine: the opposite endpoint of each
// incident edge.
func (e *Engine) Neighbors(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	inner := e.IncidentEdges(id, d, labels...)
	return func() (core.ID, bool) {
		eid, ok := inner()
		if !ok {
			return core.NoID, false
		}
		rec, _ := e.rels.Record(int64(eid))
		src := core.ID(getI64(rec, rSrc))
		if src != id {
			return src, true
		}
		return core.ID(getI64(rec, rDst)), true
	}
}

// Degree implements core.Engine by walking the chains.
func (e *Engine) Degree(id core.ID, d core.Direction) (int64, error) {
	if !e.nodes.InUse(int64(id)) {
		return 0, core.ErrNotFound
	}
	return int64(core.Drain(e.IncidentEdges(id, d))), nil
}

// --- attribute index ---

func (e *Engine) indexAdd(name string, v core.Value, id core.ID) {
	idx, ok := e.vindexes[name]
	if !ok {
		return
	}
	set := idx[v]
	if set == nil {
		set = make(map[core.ID]struct{})
		idx[v] = set
	}
	set[id] = struct{}{}
}

func (e *Engine) indexRemove(name string, v core.Value, id core.ID) {
	if idx, ok := e.vindexes[name]; ok {
		if set := idx[v]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(idx, v)
			}
		}
	}
}

// BuildVertexPropIndex implements core.Engine.
func (e *Engine) BuildVertexPropIndex(name string) error {
	if _, dup := e.vindexes[name]; dup {
		return nil
	}
	e.vindexes[name] = make(map[core.Value]map[core.ID]struct{})
	it := e.Vertices()
	for id, ok := it(); ok; id, ok = it() {
		if v, has := e.VertexProp(id, name); has {
			e.indexAdd(name, v, id)
		}
	}
	return nil
}

// HasVertexPropIndex implements core.Engine.
func (e *Engine) HasVertexPropIndex(name string) bool {
	_, ok := e.vindexes[name]
	return ok
}

// --- bulk load, space, lifecycle ---

// BulkLoad implements core.Engine through the direct storage path (the
// paper found the Gremlin load path of this engine equally good, so no
// penalty applies).
func (e *Engine) BulkLoad(g *core.Graph) (*core.LoadResult, error) {
	e.CapturePlanStats(g)
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	// Reserve the store files up front — the record counts are known
	// exactly from the CSR snapshot (one node record per vertex, one
	// relationship record per edge, one property record per property),
	// so the loader skips every doubling copy of incremental growth.
	snap := g.Snapshot()
	e.nodes.Reserve(int64(g.NumVertices()))
	e.rels.Reserve(int64(g.NumEdges()))
	e.props.Reserve(int64(snap.VPropTotal + snap.EPropTotal))
	// The snapshot's label table is exactly the relationship-type token
	// set this load will intern.
	e.labels.reserve(len(snap.Labels))
	for i := range g.VProps {
		res.VertexIDs[i] = e.addVertexDirect(g.VProps[i])
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		res.EdgeIDs[i] = e.addEdgeDirect(res.VertexIDs[er.Src], res.VertexIDs[er.Dst], er.Label, er.Props, nil)
	}
	return res, nil
}

// SpaceUsage implements core.Engine.
func (e *Engine) SpaceUsage() core.SpaceReport {
	var r core.SpaceReport
	r.Add("node-store", e.nodes.Bytes())
	r.Add("relationship-store", e.rels.Bytes())
	r.Add("property-store", e.props.Bytes())
	r.Add("string-store", e.strs.Bytes())
	r.Add("token-stores", e.labels.bytes()+e.propKeys.bytes())
	if e.groups != nil {
		r.Add("group-store", e.groups.Bytes())
	}
	var idx int64
	for _, m := range e.vindexes {
		idx += 48
		for v, set := range m {
			idx += v.Bytes() + int64(len(set))*16
		}
	}
	r.Add("attribute-indexes", idx)
	return r
}

// Close implements core.Engine.
func (e *Engine) Close() error {
	e.closed = true
	return nil
}
