// Package neo implements the native graph engine modelled on Neo4j's
// storage architecture as the paper describes it (Section 3.2):
//
//   - one store file of fixed-size records per object family (nodes,
//     relationships, properties), where the record ID is the offset —
//     fetching a record is a multiply and a slice;
//   - node records point at the head of a doubly-linked list of
//     relationship records, so enumerating a vertex's edges costs O(deg)
//     independent of graph size ("index-free adjacency");
//   - property values are off-loaded to a property chain store with
//     string payloads in a separate dynamic store, keeping the
//     structural records small — the separation of structure from data
//     whose benefits Section 6 highlights.
//
// Two versions are provided, matching the paper's pairing:
//
//   - V19 ("Neo4j 1.9"): a single relationship chain per node and direct
//     API calls — very fast CUD and unfiltered traversals.
//   - V30 ("Neo4j 3.0"): relationship chains split by (type, direction)
//     through group records — faster label-filtered traversal, but
//     unfiltered scans walk the groups, and every CUD call pays the
//     TinkerPop wrapper's transaction bootstrap that the paper
//     identifies as the regression between versions.
package neo

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/pagefile"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Version selects the modelled Neo4j release.
type Version int

// Supported versions.
const (
	V19 Version = iota // single relationship chain, direct API
	V30                // per-(type,direction) chains + wrapper transactions
)

const nilRef = int64(-1)

// Record layouts (little-endian). Sizes chosen to match the information
// content of the real stores, not their exact byte counts.
const (
	// node record: firstRel|firstGroup (8) + firstProp (8)
	nodeRecSize = 16
	// relationship record:
	// src(8) dst(8) type(4) srcPrev(8) srcNext(8) dstPrev(8) dstNext(8) firstProp(8)
	relRecSize = 60
	// property record: next(8) keyTok(4) kind(1) payload(8)
	propRecSize = 21
	// group record (V30): type(4) next(8) firstOut(8) firstIn(8)
	groupRecSize = 28
)

// Engine is a Neo4j-style native graph store.
type Engine struct {
	core.PlanStatsHolder

	version Version

	nodes  *pagefile.Store
	rels   *pagefile.Store
	props  *pagefile.Store
	groups *pagefile.Store // V30 only
	strs   *pagefile.Heap  // dynamic string store

	labels   *tokens // relationship type tokens
	propKeys *tokens // property key tokens

	// User-controlled attribute indexes on vertex properties
	// (Section 6.4 "Effect of Indexing").
	vindexes map[string]map[core.Value]map[core.ID]struct{}

	closed bool
}

// tokens interns strings to small IDs, as the label/type token stores do.
type tokens struct {
	byName map[string]uint32
	names  []string
}

func newTokens() *tokens { return &tokens{byName: make(map[string]uint32)} }

// reserve pre-sizes an empty token store for n names; a store that has
// already interned anything is left alone (IDs are first-encounter).
func (t *tokens) reserve(n int) {
	if n <= 0 || len(t.names) > 0 {
		return
	}
	t.byName = make(map[string]uint32, n)
	t.names = make([]string, 0, n)
}

func (t *tokens) get(name string) uint32 {
	if id, ok := t.byName[name]; ok {
		return id
	}
	id := uint32(len(t.names))
	t.byName[name] = id
	t.names = append(t.names, name)
	return id
}

func (t *tokens) lookup(name string) (uint32, bool) {
	id, ok := t.byName[name]
	return id, ok
}

func (t *tokens) name(id uint32) string { return t.names[id] }

func (t *tokens) bytes() int64 {
	var n int64
	for _, s := range t.names {
		n += int64(len(s)) + 24
	}
	return n
}

// New returns an empty engine of the given version.
func New(v Version) *Engine {
	e := &Engine{
		version:  v,
		nodes:    pagefile.NewStore(nodeRecSize),
		rels:     pagefile.NewStore(relRecSize),
		props:    pagefile.NewStore(propRecSize),
		strs:     pagefile.NewHeap(),
		labels:   newTokens(),
		propKeys: newTokens(),
		vindexes: make(map[string]map[core.Value]map[core.ID]struct{}),
	}
	if v == V30 {
		e.groups = pagefile.NewStore(groupRecSize)
	}
	return e
}

// Meta implements core.Engine.
func (e *Engine) Meta() core.EngineMeta {
	name, gremlin := "neo-1.9", "2.6"
	if e.version == V30 {
		name, gremlin = "neo-3.0", "3.2"
	}
	return core.EngineMeta{
		Name:          name,
		Kind:          core.KindNative,
		Substrate:     "Native",
		Storage:       "Linked fixed-size records",
		EdgeTraversal: "Direct pointer",
		Gremlin:       gremlin,
		Execution:     "Programming API, non-optimized",
	}
}

// --- record field accessors ---

func getI64(rec []byte, off int) int64 { return int64(binary.LittleEndian.Uint64(rec[off:])) }
func putI64(rec []byte, off int, v int64) {
	binary.LittleEndian.PutUint64(rec[off:], uint64(v))
}
func getU32(rec []byte, off int) uint32 { return binary.LittleEndian.Uint32(rec[off:]) }
func putU32(rec []byte, off int, v uint32) {
	binary.LittleEndian.PutUint32(rec[off:], v)
}

// node record fields
func nodeFirstRel(rec []byte) int64       { return getI64(rec, 0) }
func setNodeFirstRel(rec []byte, v int64) { putI64(rec, 0, v) }
func nodeFirstProp(rec []byte) int64      { return getI64(rec, 8) }
func setNodeFirstProp(rec []byte, v int64) {
	putI64(rec, 8, v)
}

// relationship record fields
const (
	rSrc       = 0
	rDst       = 8
	rType      = 16
	rSrcPrev   = 20
	rSrcNext   = 28
	rDstPrev   = 36
	rDstNext   = 44
	rFirstProp = 52
)

// group record fields (V30)
const (
	gType     = 0
	gNext     = 4
	gFirstOut = 12
	gFirstIn  = 20
)

// property record fields
const (
	pNext    = 0
	pKey     = 8
	pKind    = 12
	pPayload = 13
)

// --- wrapper transaction bootstrap (V30) ---

// tx models the per-operation transaction machinery that the TinkerPop
// wrapper of the newer version interposes on every CUD call: allocate a
// transaction context, record undo intents, validate, release. The paper
// attributes the order-of-magnitude CUD regression between versions to
// this bootstrap, not to the storage format.
type tx struct {
	undo    []undoRec
	touched map[int64]struct{}
}

type undoRec struct {
	store int8
	id    int64
	image []byte
}

func (e *Engine) begin() *tx {
	if e.version != V30 {
		return nil
	}
	return &tx{touched: make(map[int64]struct{}, 8)}
}

func (t *tx) record(store int8, id int64, rec []byte) {
	if t == nil {
		return
	}
	if _, dup := t.touched[int64(store)<<56|id]; dup {
		return
	}
	t.touched[int64(store)<<56|id] = struct{}{}
	t.undo = append(t.undo, undoRec{store: store, id: id, image: append([]byte(nil), rec...)})
}

func (t *tx) commit() {
	if t == nil {
		return
	}
	// Validation pass over the undo log (checksum-style touch of every
	// before-image), then release.
	var sum byte
	for i := range t.undo {
		for _, b := range t.undo[i].image {
			sum ^= b
		}
	}
	_ = sum
	t.undo = nil
}

// --- property chains ---

func (e *Engine) propChainGet(first int64, key string) (core.Value, bool) {
	tok, ok := e.propKeys.lookup(key)
	if !ok {
		return core.Nil, false
	}
	for id := first; id != nilRef; {
		rec, ok := e.props.Record(id)
		if !ok {
			return core.Nil, false
		}
		if getU32(rec, pKey) == tok {
			return e.decodeValue(rec), true
		}
		id = getI64(rec, pNext)
	}
	return core.Nil, false
}

func (e *Engine) propChainAll(first int64) core.Props {
	p := core.Props{}
	for id := first; id != nilRef; {
		rec, ok := e.props.Record(id)
		if !ok {
			break
		}
		p[e.propKeys.name(getU32(rec, pKey))] = e.decodeValue(rec)
		id = getI64(rec, pNext)
	}
	if len(p) == 0 {
		return nil
	}
	return p
}

// propChainSet updates or prepends; it returns the (possibly new) chain
// head.
func (e *Engine) propChainSet(first int64, key string, v core.Value, t *tx) int64 {
	tok := e.propKeys.get(key)
	for id := first; id != nilRef; {
		rec, _ := e.props.Record(id)
		if getU32(rec, pKey) == tok {
			t.record(2, id, rec)
			e.freeValuePayload(rec)
			e.encodeValue(rec, v)
			return first
		}
		id = getI64(rec, pNext)
	}
	id := e.props.Alloc()
	rec, _ := e.props.Record(id)
	putI64(rec, pNext, first)
	putU32(rec, pKey, tok)
	e.encodeValue(rec, v)
	t.record(2, id, rec)
	return id
}

// propChainRemove unlinks key; it returns the new head and whether the
// key existed.
func (e *Engine) propChainRemove(first int64, key string, t *tx) (int64, bool) {
	tok, ok := e.propKeys.lookup(key)
	if !ok {
		return first, false
	}
	prev := nilRef
	for id := first; id != nilRef; {
		rec, _ := e.props.Record(id)
		next := getI64(rec, pNext)
		if getU32(rec, pKey) == tok {
			t.record(2, id, rec)
			e.freeValuePayload(rec)
			e.props.Free(id)
			if prev == nilRef {
				return next, true
			}
			prevRec, _ := e.props.Record(prev)
			putI64(prevRec, pNext, next)
			return first, true
		}
		prev, id = id, next
	}
	return first, false
}

func (e *Engine) propChainFree(first int64) {
	for id := first; id != nilRef; {
		rec, _ := e.props.Record(id)
		next := getI64(rec, pNext)
		e.freeValuePayload(rec)
		e.props.Free(id)
		id = next
	}
}

func (e *Engine) encodeValue(rec []byte, v core.Value) {
	rec[pKind] = byte(v.Kind())
	switch v.Kind() {
	case core.KindString:
		off := e.strs.Append([]byte(v.Str()))
		putI64(rec, pPayload, off)
	case core.KindInt:
		putI64(rec, pPayload, v.Int())
	case core.KindFloat:
		putI64(rec, pPayload, int64(floatBits(v.Float())))
	case core.KindBool:
		var b int64
		if v.Bool() {
			b = 1
		}
		putI64(rec, pPayload, b)
	default:
		putI64(rec, pPayload, 0)
	}
}

func (e *Engine) decodeValue(rec []byte) core.Value {
	payload := getI64(rec, pPayload)
	switch core.Kind(rec[pKind]) {
	case core.KindString:
		b, _ := e.strs.Read(payload)
		return core.S(string(b))
	case core.KindInt:
		return core.I(payload)
	case core.KindFloat:
		return core.F(bitsFloat(uint64(payload)))
	case core.KindBool:
		return core.B(payload == 1)
	default:
		return core.Nil
	}
}

func (e *Engine) freeValuePayload(rec []byte) {
	if core.Kind(rec[pKind]) == core.KindString {
		e.strs.Delete(getI64(rec, pPayload))
	}
}

// ConcurrentWrites implements core.ConcurrentWriter: record stores and
// relationship chains are touched only by write operations, and read
// paths keep no shared state, so under core.Guard's exclusive-writer
// discipline mixed read/write workloads are serial-schedule
// consistent.
func (e *Engine) ConcurrentWrites() bool { return true }
