package neo

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engines/enginetest"
)

func TestConformanceV19(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New(V19) })
}

func TestConformanceV30(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New(V30) })
}

func TestConcurrencyConformanceV19(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New(V19) })
}

func TestConcurrencyConformanceV30(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New(V30) })
}

func TestRecordIDsAreOffsets(t *testing.T) {
	e := New(V19)
	defer e.Close()
	// IDs must be dense offsets starting at 0, and freed slots must be
	// reused — the defining property of the fixed-record stores.
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d; want offsets 0,1", a, b)
	}
	e.RemoveVertex(a)
	c, _ := e.AddVertex(nil)
	if c != a {
		t.Fatalf("freed record not reused: %d", c)
	}
}

func TestV30GroupsSplitChainsByType(t *testing.T) {
	e := New(V30)
	defer e.Close()
	hub, _ := e.AddVertex(nil)
	var others []core.ID
	for i := 0; i < 6; i++ {
		v, _ := e.AddVertex(nil)
		others = append(others, v)
	}
	labels := []string{"a", "b", "c"}
	for i, v := range others {
		e.AddEdge(hub, v, labels[i%3], nil)
	}
	// Groups are per (node, type): the hub has one per label, and each
	// spoke has one for its single incoming label.
	if e.groups.Live() != 9 {
		t.Fatalf("group records = %d, want 9 (3 hub + 6 spokes)", e.groups.Live())
	}
	if got := countGroups(e, hub); got != 3 {
		t.Fatalf("hub group chain length = %d, want 3", got)
	}
	// Label-filtered traversal touches only one chain.
	if n := core.Drain(e.IncidentEdges(hub, core.DirOut, "a")); n != 2 {
		t.Fatalf("out(hub,a) = %d", n)
	}
	// Removing the hub releases its own groups (spokes keep theirs).
	e.RemoveVertex(hub)
	if e.groups.Live() != 6 {
		t.Fatalf("groups after hub removal = %d, want 6", e.groups.Live())
	}
}

func TestV19SingleChainCoversBothDirections(t *testing.T) {
	e := New(V19)
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	e1, _ := e.AddEdge(a, b, "x", nil)
	e2, _ := e.AddEdge(b, a, "y", nil)
	got := map[core.ID]bool{}
	it := e.IncidentEdges(a, core.DirBoth)
	for id, ok := it(); ok; id, ok = it() {
		got[id] = true
	}
	if !got[e1] || !got[e2] || len(got) != 2 {
		t.Fatalf("bothE(a) = %v", got)
	}
}

func TestStringPropertyPayloadInDynamicStore(t *testing.T) {
	e := New(V19)
	defer e.Close()
	before := e.strs.Bytes()
	v, _ := e.AddVertex(core.Props{"s": core.S("a rather long string value")})
	if e.strs.Bytes() <= before {
		t.Fatal("string payload not off-loaded to dynamic store")
	}
	// Updating a string property retires the old payload.
	e.SetVertexProp(v, "s", core.S("new"))
	if e.strs.DeadBytes() == 0 {
		t.Fatal("old string payload not marked dead")
	}
	if got, _ := e.VertexProp(v, "s"); got != core.S("new") {
		t.Fatalf("prop = %v", got)
	}
}

func TestSpaceBreakdownSeparatesStructureFromData(t *testing.T) {
	e := New(V19)
	defer e.Close()
	g := core.NewGraph(100, 200)
	for i := 0; i < 100; i++ {
		g.AddVertex(core.Props{"name": core.S("vertex-name-payload")})
	}
	for i := 0; i < 200; i++ {
		g.AddEdge(i%100, (i+1)%100, "l", nil)
	}
	if _, err := e.BulkLoad(g); err != nil {
		t.Fatal(err)
	}
	r := e.SpaceUsage()
	if r.Breakdown["node-store"] == 0 || r.Breakdown["relationship-store"] == 0 ||
		r.Breakdown["property-store"] == 0 || r.Breakdown["string-store"] == 0 {
		t.Fatalf("expected populated store files: %v", r.Breakdown)
	}
	// Structure (nodes+rels) must be independent of the attribute data
	// volume: doubling the string payload grows only the dynamic store.
	structBefore := r.Breakdown["node-store"] + r.Breakdown["relationship-store"]
	// A second identical load doubles the structural stores; the extra
	// string property set on every vertex must land only in the property
	// and dynamic stores.
	res2, err := e.BulkLoad(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, vid := range res2.VertexIDs {
		e.SetVertexProp(vid, "extra", core.S("another long string attribute value"))
	}
	r2 := e.SpaceUsage()
	structAfter := r2.Breakdown["node-store"] + r2.Breakdown["relationship-store"]
	if structAfter != 2*structBefore {
		t.Fatalf("structural stores grew with attribute data: %d -> %d", structBefore, structAfter)
	}
	if r2.Breakdown["string-store"] <= r.Breakdown["string-store"] {
		t.Fatal("string payloads did not land in the dynamic store")
	}
}

func countGroups(e *Engine, id core.ID) int {
	rec, _ := e.nodes.Record(int64(id))
	n := 0
	for g := nodeFirstRel(rec); g != nilRef; {
		grec, _ := e.groups.Record(g)
		n++
		g = getI64(grec, gNext)
	}
	return n
}

func TestV30CUDSlowerPathStillCorrect(t *testing.T) {
	// The wrapper bootstrap must not change semantics: mirror a sequence
	// of CUD ops on both versions and compare final state.
	e19, e30 := New(V19), New(V30)
	defer e19.Close()
	defer e30.Close()
	var vs19, vs30 []core.ID
	for i := 0; i < 20; i++ {
		a, _ := e19.AddVertex(core.Props{"i": core.I(int64(i))})
		b, _ := e30.AddVertex(core.Props{"i": core.I(int64(i))})
		vs19 = append(vs19, a)
		vs30 = append(vs30, b)
	}
	for i := 0; i < 19; i++ {
		e19.AddEdge(vs19[i], vs19[i+1], "n", nil)
		e30.AddEdge(vs30[i], vs30[i+1], "n", nil)
	}
	e19.RemoveVertex(vs19[10])
	e30.RemoveVertex(vs30[10])
	n19, _ := e19.CountEdges()
	n30, _ := e30.CountEdges()
	if n19 != n30 || n19 != 17 {
		t.Fatalf("edge counts diverged: v19=%d v30=%d", n19, n30)
	}
	d19, _ := e19.Degree(vs19[9], core.DirBoth)
	d30, _ := e30.Degree(vs30[9], core.DirBoth)
	if d19 != d30 || d19 != 1 {
		t.Fatalf("degrees diverged: %d vs %d", d19, d30)
	}
}
