package orient

import (
	"sort"

	"repro/internal/core"
)

// --- vertex CRUD ---

// AddVertex implements core.Engine: appending a document, the fast path
// Figure 3(b) shows.
func (e *Engine) AddVertex(props core.Props) (core.ID, error) {
	d := &vertexDoc{props: props.Clone()}
	pos := e.vcluster.add(e.encodeVertex(d))
	id := makeRID(vertexCluster, pos)
	for k, v := range props {
		e.indexAdd(k, v, id)
	}
	return id, nil
}

// HasVertex implements core.Engine.
func (e *Engine) HasVertex(id core.ID) bool {
	c, pos := splitRID(id)
	if c != vertexCluster {
		return false
	}
	_, ok := e.vcluster.pmap.Get(pos)
	return ok
}

// VertexProps implements core.Engine.
func (e *Engine) VertexProps(id core.ID) (core.Props, error) {
	d, ok := e.readVertex(id)
	if !ok {
		return nil, core.ErrNotFound
	}
	return d.props, nil
}

// VertexProp implements core.Engine.
func (e *Engine) VertexProp(id core.ID, name string) (core.Value, bool) {
	d, ok := e.readVertex(id)
	if !ok {
		return core.Nil, false
	}
	v, ok := d.props[name]
	return v, ok
}

// rewriteVertex re-encodes and relocates the document.
func (e *Engine) rewriteVertex(id core.ID, d *vertexDoc) {
	_, pos := splitRID(id)
	e.vcluster.rewrite(pos, e.encodeVertex(d))
}

// SetVertexProp implements core.Engine: document rewrite at the tail.
func (e *Engine) SetVertexProp(id core.ID, name string, v core.Value) error {
	d, ok := e.readVertex(id)
	if !ok {
		return core.ErrNotFound
	}
	if old, had := d.props[name]; had {
		e.indexRemove(name, old, id)
	}
	if d.props == nil {
		d.props = core.Props{}
	}
	d.props[name] = v
	e.indexAdd(name, v, id)
	e.rewriteVertex(id, d)
	return nil
}

// RemoveVertexProp implements core.Engine.
func (e *Engine) RemoveVertexProp(id core.ID, name string) error {
	d, ok := e.readVertex(id)
	if !ok {
		return core.ErrNotFound
	}
	if old, had := d.props[name]; had {
		e.indexRemove(name, old, id)
		delete(d.props, name)
		e.rewriteVertex(id, d)
	}
	return nil
}

// RemoveVertex implements core.Engine; cascading is document surgery on
// every adjacent vertex, which is why Figure 3(c) shows this engine's
// node removal degrading with graph structure.
func (e *Engine) RemoveVertex(id core.ID) error {
	d, ok := e.readVertex(id)
	if !ok {
		return core.ErrNotFound
	}
	for _, eid := range append(append([]core.ID(nil), d.out...), d.in...) {
		if e.HasEdge(eid) {
			if err := e.RemoveEdge(eid); err != nil {
				return err
			}
		}
	}
	// Re-read: RemoveEdge rewrote this vertex's lists.
	for name := range e.vindexes {
		if v, had := d.props[name]; had {
			e.indexRemove(name, v, id)
		}
	}
	_, pos := splitRID(id)
	e.vcluster.free(pos)
	return nil
}

// --- edge CRUD ---

// AddEdge implements core.Engine: one append in the label's cluster plus
// a rewrite of both endpoint documents.
func (e *Engine) AddEdge(src, dst core.ID, label string, props core.Props) (core.ID, error) {
	sd, ok := e.readVertex(src)
	if !ok {
		return core.NoID, core.ErrNotFound
	}
	dd, ok := e.readVertex(dst)
	if !ok {
		return core.NoID, core.ErrNotFound
	}
	cid := e.clusterFor(label)
	pos := e.eclusters[cid-1].add(e.encodeEdge(&edgeDoc{src: src, dst: dst, props: props.Clone()}))
	eid := makeRID(cid, pos)
	if src == dst {
		sd.out = append(sd.out, eid)
		sd.in = append(sd.in, eid)
		e.rewriteVertex(src, sd)
		return eid, nil
	}
	sd.out = append(sd.out, eid)
	e.rewriteVertex(src, sd)
	dd.in = append(dd.in, eid)
	e.rewriteVertex(dst, dd)
	return eid, nil
}

// HasEdge implements core.Engine.
func (e *Engine) HasEdge(id core.ID) bool {
	c, pos, ok := e.edgeCluster(id)
	if !ok {
		return false
	}
	_, ok = c.pmap.Get(pos)
	return ok
}

// EdgeLabel implements core.Engine: the label is the cluster identity.
func (e *Engine) EdgeLabel(id core.ID) (string, error) {
	if !e.HasEdge(id) {
		return "", core.ErrNotFound
	}
	c, _ := splitRID(id)
	return e.labels[c-1], nil
}

// EdgeEnds implements core.Engine.
func (e *Engine) EdgeEnds(id core.ID) (core.ID, core.ID, error) {
	c, pos, ok := e.edgeCluster(id)
	if !ok {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	doc, ok := c.read(pos)
	if !ok {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	src, dst := edgeEndsFast(doc)
	return src, dst, nil
}

// EdgeProps implements core.Engine.
func (e *Engine) EdgeProps(id core.ID) (core.Props, error) {
	d, ok := e.readEdge(id)
	if !ok {
		return nil, core.ErrNotFound
	}
	return d.props, nil
}

// EdgeProp implements core.Engine.
func (e *Engine) EdgeProp(id core.ID, name string) (core.Value, bool) {
	d, ok := e.readEdge(id)
	if !ok {
		return core.Nil, false
	}
	v, ok := d.props[name]
	return v, ok
}

// SetEdgeProp implements core.Engine.
func (e *Engine) SetEdgeProp(id core.ID, name string, v core.Value) error {
	d, ok := e.readEdge(id)
	if !ok {
		return core.ErrNotFound
	}
	if d.props == nil {
		d.props = core.Props{}
	}
	d.props[name] = v
	c, pos, _ := e.edgeCluster(id)
	c.rewrite(pos, e.encodeEdge(d))
	return nil
}

// RemoveEdgeProp implements core.Engine.
func (e *Engine) RemoveEdgeProp(id core.ID, name string) error {
	d, ok := e.readEdge(id)
	if !ok {
		return core.ErrNotFound
	}
	if _, had := d.props[name]; had {
		delete(d.props, name)
		c, pos, _ := e.edgeCluster(id)
		c.rewrite(pos, e.encodeEdge(d))
	}
	return nil
}

// RemoveEdge implements core.Engine.
func (e *Engine) RemoveEdge(id core.ID) error {
	d, ok := e.readEdge(id)
	if !ok {
		return core.ErrNotFound
	}
	if sd, ok := e.readVertex(d.src); ok {
		sd.out = removeRID(sd.out, id)
		if d.src == d.dst {
			sd.in = removeRID(sd.in, id)
		}
		e.rewriteVertex(d.src, sd)
	}
	if d.dst != d.src {
		if dd, ok := e.readVertex(d.dst); ok {
			dd.in = removeRID(dd.in, id)
			e.rewriteVertex(d.dst, dd)
		}
	}
	c, pos, _ := e.edgeCluster(id)
	c.free(pos)
	return nil
}

func removeRID(rids []core.ID, id core.ID) []core.ID {
	for i, r := range rids {
		if r == id {
			return append(rids[:i], rids[i+1:]...)
		}
	}
	return rids
}

// --- scans ---

// CountVertices implements core.Engine.
func (e *Engine) CountVertices() (int64, error) {
	n := int64(0)
	e.vcluster.pmap.ScanLive(func(int64) bool { n++; return true })
	return n, nil
}

// CountEdges implements core.Engine.
func (e *Engine) CountEdges() (int64, error) {
	n := int64(0)
	for _, c := range e.eclusters {
		c.pmap.ScanLive(func(int64) bool { n++; return true })
	}
	return n, nil
}

// Vertices implements core.Engine.
func (e *Engine) Vertices() core.Iter[core.ID] {
	var pos int64
	end := e.vcluster.pmap.Len()
	return func() (core.ID, bool) {
		for pos < end {
			p := pos
			pos++
			if _, ok := e.vcluster.pmap.Get(p); ok {
				return makeRID(vertexCluster, p), true
			}
		}
		return core.NoID, false
	}
}

// Edges implements core.Engine: concatenation of the per-label clusters.
func (e *Engine) Edges() core.Iter[core.ID] {
	ci := 0
	var pos int64
	return func() (core.ID, bool) {
		for ci < len(e.eclusters) {
			c := e.eclusters[ci]
			for pos < c.pmap.Len() {
				p := pos
				pos++
				if _, ok := c.pmap.Get(p); ok {
					return makeRID(ci+1, p), true
				}
			}
			ci++
			pos = 0
		}
		return core.NoID, false
	}
}

// VerticesByProp implements core.Engine.
func (e *Engine) VerticesByProp(name string, v core.Value) core.Iter[core.ID] {
	if idx, ok := e.vindexes[name]; ok {
		set := idx[v]
		out := make([]core.ID, 0, len(set))
		for id := range set {
			out = append(out, id)
		}
		// Ascending RID order: the same sequence the cluster scan yields,
		// so indexed and unindexed lookups are interchangeable downstream.
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return core.SliceIter(out)
	}
	return core.FilterIter(e.Vertices(), func(id core.ID) bool {
		got, ok := e.VertexProp(id, name)
		return ok && got.Compare(v) == 0
	})
}

// EdgesByProp implements core.Engine.
func (e *Engine) EdgesByProp(name string, v core.Value) core.Iter[core.ID] {
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		got, ok := e.EdgeProp(id, name)
		return ok && got.Compare(v) == 0
	})
}

// EdgesByLabel implements core.Engine. The per-label clusters could
// serve this in O(result), but — as the paper observes — the Gremlin
// adapter iterates all edges and filters, so that is what is modelled.
func (e *Engine) EdgesByLabel(label string) core.Iter[core.ID] {
	want, ok := e.labelOf[label]
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		c, _ := splitRID(id)
		return c == want
	})
}

// --- traversal ---

// IncidentEdges implements core.Engine. Label filtering is free: the
// label is encoded in the RID's cluster, so non-matching edges are
// skipped without reading them.
func (e *Engine) IncidentEdges(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	vd, ok := e.readVertex(id)
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	want := map[int]bool{}
	for _, l := range labels {
		if c, ok := e.labelOf[l]; ok {
			want[c] = true
		}
	}
	if len(labels) > 0 && len(want) == 0 {
		return core.EmptyIter[core.ID]()
	}
	match := func(eid core.ID) bool {
		if len(want) == 0 {
			return true
		}
		c, _ := splitRID(eid)
		return want[c]
	}
	var list []core.ID
	switch d {
	case core.DirOut:
		list = vd.out
	case core.DirIn:
		list = vd.in
	case core.DirBoth:
		list = append(append([]core.ID(nil), vd.out...), vd.in...)
	}
	inStart := len(vd.out)
	if d != core.DirBoth {
		inStart = -1
	}
	i := 0
	return func() (core.ID, bool) {
		for i < len(list) {
			eid := list[i]
			fromIn := inStart >= 0 && i >= inStart
			i++
			if !match(eid) {
				continue
			}
			if fromIn {
				// In the Both walk, skip loops on the in-list pass: the
				// out-list already reported them.
				if ed, ok := e.readEdge(eid); ok && ed.src == ed.dst {
					continue
				}
			}
			return eid, true
		}
		return core.NoID, false
	}
}

// Neighbors implements core.Engine.
func (e *Engine) Neighbors(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	inner := e.IncidentEdges(id, d, labels...)
	return func() (core.ID, bool) {
		eid, ok := inner()
		if !ok {
			return core.NoID, false
		}
		src, dst, err := e.EdgeEnds(eid)
		if err != nil {
			return core.NoID, false
		}
		if src != id {
			return src, true
		}
		return dst, true
	}
}

// Degree implements core.Engine: list lengths from the vertex document,
// with loops deduplicated.
func (e *Engine) Degree(id core.ID, d core.Direction) (int64, error) {
	vd, ok := e.readVertex(id)
	if !ok {
		return 0, core.ErrNotFound
	}
	switch d {
	case core.DirOut:
		return int64(len(vd.out)), nil
	case core.DirIn:
		return int64(len(vd.in)), nil
	default:
		loops := 0
		for _, eid := range vd.in {
			if ed, ok := e.readEdge(eid); ok && ed.src == ed.dst {
				loops++
			}
		}
		return int64(len(vd.out) + len(vd.in) - loops), nil
	}
}

// --- index / bulk / lifecycle ---

// BuildVertexPropIndex implements core.Engine.
func (e *Engine) BuildVertexPropIndex(name string) error {
	if _, dup := e.vindexes[name]; dup {
		return nil
	}
	e.vindexes[name] = make(map[core.Value]map[core.ID]struct{})
	it := e.Vertices()
	for id, ok := it(); ok; id, ok = it() {
		if v, has := e.VertexProp(id, name); has {
			e.indexAdd(name, v, id)
		}
	}
	return nil
}

// HasVertexPropIndex implements core.Engine.
func (e *Engine) HasVertexPropIndex(name string) bool {
	_, ok := e.vindexes[name]
	return ok
}

// BulkLoad implements core.Engine through the implementation-specific
// script path the paper had to use (the Gremlin path performed per-edge
// bookkeeping per label): edge documents are written first, then each
// vertex document exactly once with its full RID lists.
func (e *Engine) BulkLoad(g *core.Graph) (*core.LoadResult, error) {
	e.CapturePlanStats(g)
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	// Vertex RIDs are dense positions assigned in order.
	base := e.vcluster.pmap.Len()
	for i := range res.VertexIDs {
		res.VertexIDs[i] = makeRID(vertexCluster, base+int64(i))
	}
	// The per-vertex RIDBAG lists are carved out of two shared arenas,
	// pre-sized from the CSR snapshot's degree prefix sums: one edge
	// contributes exactly one out- and one in-slot, so the appends
	// below never reallocate. Full-capacity sub-slices keep appends
	// inside each vertex's own range.
	snap := g.Snapshot()
	outs := make([][]core.ID, g.NumVertices())
	ins := make([][]core.ID, g.NumVertices())
	outArena := make([]core.ID, g.NumEdges())
	inArena := make([]core.ID, g.NumEdges())
	var oo, io int
	for v := range outs {
		od, id := snap.OutDegree(v), snap.InDegree(v)
		outs[v] = outArena[oo : oo : oo+od]
		ins[v] = inArena[io : io : io+id]
		oo += od
		io += id
	}
	// Create each label's cluster up front (first-encounter order, which
	// fixes the cluster-id part of the edge RIDs) and reserve its
	// position map to the exact row count from the snapshot's per-label
	// slices, so the edge loop below never regrows a map.
	for i := range g.EdgeL {
		e.clusterFor(g.EdgeL[i].Label)
	}
	for ci, label := range e.labels {
		if li, ok := snap.LabelIndex(label); ok {
			e.eclusters[ci].pmap.Reserve(int64(snap.LabelEdgeCount(li)))
		}
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		cid := e.clusterFor(er.Label)
		pos := e.eclusters[cid-1].add(e.encodeEdge(&edgeDoc{
			src:   res.VertexIDs[er.Src],
			dst:   res.VertexIDs[er.Dst],
			props: er.Props,
		}))
		eid := makeRID(cid, pos)
		res.EdgeIDs[i] = eid
		outs[er.Src] = append(outs[er.Src], eid)
		ins[er.Dst] = append(ins[er.Dst], eid)
	}
	for i := range g.VProps {
		pos := e.vcluster.add(e.encodeVertex(&vertexDoc{
			out:   outs[i],
			in:    ins[i],
			props: g.VProps[i],
		}))
		if got := makeRID(vertexCluster, pos); got != res.VertexIDs[i] {
			return nil, errRIDMismatch
		}
	}
	return res, nil
}

var errRIDMismatch = ridErr("orient: bulk load RID assignment out of sync")

type ridErr string

func (e ridErr) Error() string { return string(e) }

// SpaceUsage implements core.Engine.
func (e *Engine) SpaceUsage() core.SpaceReport {
	var r core.SpaceReport
	r.Add("vertex-cluster", e.vcluster.bytes())
	var eb int64
	for _, c := range e.eclusters {
		eb += c.bytes() + 96 // per-cluster file overhead
	}
	r.Add("edge-clusters", eb)
	var idx int64
	for _, m := range e.vindexes {
		idx += 48
		for v, set := range m {
			idx += v.Bytes() + int64(len(set))*16
		}
	}
	r.Add("sbtree-indexes", idx)
	var tok int64
	for _, k := range e.keyNames {
		tok += int64(len(k)) + 24
	}
	for _, l := range e.labels {
		tok += int64(len(l)) + 24
	}
	r.Add("schema", tok)
	return r
}

// Close implements core.Engine.
func (e *Engine) Close() error { return nil }
