package orient

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engines/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New() })
}

func TestConcurrencyConformance(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New() })
}

func TestOneClusterPerEdgeLabel(t *testing.T) {
	e := New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	for _, l := range []string{"x", "y", "z", "x"} {
		e.AddEdge(a, b, l, nil)
	}
	if len(e.eclusters) != 3 {
		t.Fatalf("edge clusters = %d, want 3", len(e.eclusters))
	}
	// Space must grow with label cardinality even at constant edge count
	// (the paper's Frb-S finding).
	manyLabels := New()
	fewLabels := New()
	ga := core.NewGraph(50, 200)
	gb := core.NewGraph(50, 200)
	for i := 0; i < 50; i++ {
		ga.AddVertex(nil)
		gb.AddVertex(nil)
	}
	for i := 0; i < 200; i++ {
		ga.AddEdge(i%50, (i+1)%50, string(rune('a'+i%26))+string(rune('a'+(i/26)%26)), nil)
		gb.AddEdge(i%50, (i+1)%50, "only", nil)
	}
	manyLabels.BulkLoad(ga)
	fewLabels.BulkLoad(gb)
	if manyLabels.SpaceUsage().Breakdown["edge-clusters"] <= fewLabels.SpaceUsage().Breakdown["edge-clusters"] {
		t.Fatal("label cardinality did not cost cluster space")
	}
}

func TestRIDStableAcrossRelocation(t *testing.T) {
	e := New()
	defer e.Close()
	v, _ := e.AddVertex(core.Props{"n": core.I(1)})
	heapBefore := e.vcluster.heap.Bytes()
	// Many rewrites relocate the document; the RID must keep resolving.
	for i := int64(0); i < 20; i++ {
		if err := e.SetVertexProp(v, "n", core.I(i)); err != nil {
			t.Fatal(err)
		}
	}
	if e.vcluster.heap.Bytes() <= heapBefore {
		t.Fatal("rewrites did not append (expected append-only relocation)")
	}
	if e.vcluster.heap.DeadBytes() == 0 {
		t.Fatal("old document versions not marked dead")
	}
	if got, _ := e.VertexProp(v, "n"); got != core.I(19) {
		t.Fatalf("value after relocations = %v", got)
	}
}

func TestEdgeInsertRewritesBothEndpoints(t *testing.T) {
	e := New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	dead := e.vcluster.heap.DeadBytes()
	e.AddEdge(a, b, "l", nil)
	if e.vcluster.heap.DeadBytes() <= dead {
		t.Fatal("edge insertion did not rewrite endpoint documents")
	}
}

func TestLabelFilteredTraversalSkipsOtherClusters(t *testing.T) {
	e := New()
	defer e.Close()
	hub, _ := e.AddVertex(nil)
	for i := 0; i < 10; i++ {
		v, _ := e.AddVertex(nil)
		label := "a"
		if i%2 == 1 {
			label = "b"
		}
		e.AddEdge(hub, v, label, nil)
	}
	if n := core.Drain(e.Neighbors(hub, core.DirOut, "a")); n != 5 {
		t.Fatalf("out(hub,a) = %d", n)
	}
	if n := core.Drain(e.Neighbors(hub, core.DirOut, "absent")); n != 0 {
		t.Fatalf("out(hub,absent) = %d", n)
	}
	if n := core.Drain(e.Neighbors(hub, core.DirOut, "a", "b")); n != 10 {
		t.Fatalf("out(hub,a,b) = %d", n)
	}
}

func TestBulkLoadWritesEachVertexDocOnce(t *testing.T) {
	e := New()
	defer e.Close()
	g := core.NewGraph(100, 300)
	for i := 0; i < 100; i++ {
		g.AddVertex(nil)
	}
	for i := 0; i < 300; i++ {
		g.AddEdge(i%100, (i+3)%100, "l", nil)
	}
	if _, err := e.BulkLoad(g); err != nil {
		t.Fatal(err)
	}
	if e.vcluster.heap.DeadBytes() != 0 {
		t.Fatalf("bulk load rewrote vertex documents (%d dead bytes)", e.vcluster.heap.DeadBytes())
	}
}
