// Package orient implements the native multi-model engine modelled on
// OrientDB's storage architecture as the paper describes it:
//
//   - records live in *clusters* (append-only files); record identity is
//     a logical RID = (cluster, position) resolved through an append-only
//     position map, so records relocate without changing identity;
//   - there is one cluster for vertices and one cluster *per edge label*
//     — the design that makes loading and space sensitive to edge-label
//     cardinality (the paper's Frb-S observation: ~1.8K labels for only
//     ~300K edges put OrientDB second-to-last in space);
//   - vertices are documents embedding their incident-edge RID lists
//     ("2-hop pointer" traversal: node → edge record → node);
//   - documents are rewritten at the tail on every mutation, which is
//     why node/property insertion is fast but edge insertion — which
//     rewrites both endpoint documents — is slower and erratic, exactly
//     the inconsistency Figure 3(b) shows.
package orient

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/pagefile"
)

// RID packing: cluster in the top 20 bits, position in the low 44.
const posBits = 44

func makeRID(cluster int, pos int64) core.ID {
	return core.ID(int64(cluster)<<posBits | pos)
}

func splitRID(id core.ID) (cluster int, pos int64) {
	return int(int64(id) >> posBits), int64(id) & (1<<posBits - 1)
}

const vertexCluster = 0

type cluster struct {
	heap *pagefile.Heap
	pmap *pagefile.PositionMap
}

func newCluster() *cluster {
	return &cluster{heap: pagefile.NewHeap(), pmap: pagefile.NewPositionMap()}
}

func (c *cluster) add(doc []byte) int64 {
	return c.pmap.Add(c.heap.Append(doc))
}

func (c *cluster) read(pos int64) ([]byte, bool) {
	phys, ok := c.pmap.Get(pos)
	if !ok {
		return nil, false
	}
	return c.heap.Read(phys)
}

// rewrite relocates the document at pos to the tail.
func (c *cluster) rewrite(pos int64, doc []byte) bool {
	phys, ok := c.pmap.Get(pos)
	if !ok {
		return false
	}
	return c.pmap.Move(pos, c.heap.Update(phys, doc))
}

func (c *cluster) free(pos int64) bool {
	phys, ok := c.pmap.Get(pos)
	if !ok {
		return false
	}
	c.heap.Delete(phys)
	return c.pmap.Free(pos)
}

func (c *cluster) bytes() int64 { return c.heap.Bytes() + c.pmap.Bytes() }

// Engine is an OrientDB-style native graph store.
type Engine struct {
	core.PlanStatsHolder

	vcluster  *cluster
	eclusters []*cluster // index = cluster id - 1
	labels    []string   // cluster id - 1 -> label
	labelOf   map[string]int
	propKeys  map[string]uint32
	keyNames  []string

	// SB-Tree style attribute indexes on vertex properties:
	// name -> value -> set of vertex RIDs.
	vindexes map[string]map[core.Value]map[core.ID]struct{}
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		vcluster: newCluster(),
		labelOf:  make(map[string]int),
		propKeys: make(map[string]uint32),
		vindexes: make(map[string]map[core.Value]map[core.ID]struct{}),
	}
}

// Meta implements core.Engine.
func (e *Engine) Meta() core.EngineMeta {
	return core.EngineMeta{
		Name:          "orient",
		Kind:          core.KindNative,
		Substrate:     "Native",
		Storage:       "Linked records (clusters + position map)",
		EdgeTraversal: "2-hop pointer",
		Gremlin:       "2.6",
		Execution:     "Mixed",
	}
}

func (e *Engine) keyTok(name string) uint32 {
	if t, ok := e.propKeys[name]; ok {
		return t
	}
	t := uint32(len(e.keyNames))
	e.propKeys[name] = t
	e.keyNames = append(e.keyNames, name)
	return t
}

func (e *Engine) clusterFor(label string) int {
	if c, ok := e.labelOf[label]; ok {
		return c
	}
	e.eclusters = append(e.eclusters, newCluster())
	e.labels = append(e.labels, label)
	c := len(e.eclusters) // cluster ids start at 1
	e.labelOf[label] = c
	return c
}

// --- document encoding ---

func appendProps(doc []byte, e *Engine, p core.Props) []byte {
	doc = binary.LittleEndian.AppendUint32(doc, uint32(len(p)))
	for k, v := range p {
		doc = binary.LittleEndian.AppendUint32(doc, e.keyTok(k))
		doc = append(doc, byte(v.Kind()))
		switch v.Kind() {
		case core.KindString:
			doc = binary.LittleEndian.AppendUint32(doc, uint32(len(v.Str())))
			doc = append(doc, v.Str()...)
		case core.KindInt:
			doc = binary.LittleEndian.AppendUint64(doc, uint64(v.Int()))
		case core.KindFloat:
			doc = binary.LittleEndian.AppendUint64(doc, math.Float64bits(v.Float()))
		case core.KindBool:
			b := byte(0)
			if v.Bool() {
				b = 1
			}
			doc = append(doc, b)
		}
	}
	return doc
}

func readProps(doc []byte, e *Engine) (core.Props, []byte) {
	n := binary.LittleEndian.Uint32(doc)
	doc = doc[4:]
	if n == 0 {
		return nil, doc
	}
	p := make(core.Props, n)
	for i := uint32(0); i < n; i++ {
		tok := binary.LittleEndian.Uint32(doc)
		kind := core.Kind(doc[4])
		doc = doc[5:]
		var v core.Value
		switch kind {
		case core.KindString:
			l := binary.LittleEndian.Uint32(doc)
			v = core.S(string(doc[4 : 4+l]))
			doc = doc[4+l:]
		case core.KindInt:
			v = core.I(int64(binary.LittleEndian.Uint64(doc)))
			doc = doc[8:]
		case core.KindFloat:
			v = core.F(math.Float64frombits(binary.LittleEndian.Uint64(doc)))
			doc = doc[8:]
		case core.KindBool:
			v = core.B(doc[0] == 1)
			doc = doc[1:]
		}
		p[e.keyNames[tok]] = v
	}
	return p, doc
}

func appendRIDs(doc []byte, rids []core.ID) []byte {
	doc = binary.LittleEndian.AppendUint32(doc, uint32(len(rids)))
	for _, r := range rids {
		doc = binary.LittleEndian.AppendUint64(doc, uint64(r))
	}
	return doc
}

func readRIDs(doc []byte) ([]core.ID, []byte) {
	n := binary.LittleEndian.Uint32(doc)
	doc = doc[4:]
	if n == 0 {
		return nil, doc
	}
	out := make([]core.ID, n)
	for i := range out {
		out[i] = core.ID(binary.LittleEndian.Uint64(doc))
		doc = doc[8:]
	}
	return out, doc
}

type vertexDoc struct {
	out, in []core.ID
	props   core.Props
}

func (e *Engine) encodeVertex(d *vertexDoc) []byte {
	doc := appendRIDs(nil, d.out)
	doc = appendRIDs(doc, d.in)
	return appendProps(doc, e, d.props)
}

func (e *Engine) decodeVertex(doc []byte) *vertexDoc {
	var d vertexDoc
	d.out, doc = readRIDs(doc)
	d.in, doc = readRIDs(doc)
	d.props, _ = readProps(doc, e)
	return &d
}

type edgeDoc struct {
	src, dst core.ID
	props    core.Props
}

func (e *Engine) encodeEdge(d *edgeDoc) []byte {
	doc := binary.LittleEndian.AppendUint64(nil, uint64(d.src))
	doc = binary.LittleEndian.AppendUint64(doc, uint64(d.dst))
	return appendProps(doc, e, d.props)
}

func (e *Engine) decodeEdge(doc []byte) *edgeDoc {
	var d edgeDoc
	d.src = core.ID(binary.LittleEndian.Uint64(doc))
	d.dst = core.ID(binary.LittleEndian.Uint64(doc[8:]))
	d.props, _ = readProps(doc[16:], e)
	return &d
}

// edgeEndsFast decodes only the endpoints (fixed prefix), avoiding the
// property blob.
func edgeEndsFast(doc []byte) (src, dst core.ID) {
	return core.ID(binary.LittleEndian.Uint64(doc)), core.ID(binary.LittleEndian.Uint64(doc[8:]))
}

func (e *Engine) readVertex(id core.ID) (*vertexDoc, bool) {
	c, pos := splitRID(id)
	if c != vertexCluster {
		return nil, false
	}
	doc, ok := e.vcluster.read(pos)
	if !ok {
		return nil, false
	}
	return e.decodeVertex(doc), true
}

func (e *Engine) edgeCluster(id core.ID) (*cluster, int64, bool) {
	c, pos := splitRID(id)
	if c < 1 || c > len(e.eclusters) {
		return nil, 0, false
	}
	return e.eclusters[c-1], pos, true
}

func (e *Engine) readEdge(id core.ID) (*edgeDoc, bool) {
	c, pos, ok := e.edgeCluster(id)
	if !ok {
		return nil, false
	}
	doc, ok := c.read(pos)
	if !ok {
		return nil, false
	}
	return e.decodeEdge(doc), true
}

// --- index helpers (SB-Tree style) ---

func (e *Engine) indexAdd(name string, v core.Value, id core.ID) {
	idx, ok := e.vindexes[name]
	if !ok {
		return
	}
	set := idx[v]
	if set == nil {
		set = make(map[core.ID]struct{})
		idx[v] = set
	}
	set[id] = struct{}{}
}

func (e *Engine) indexRemove(name string, v core.Value, id core.ID) {
	if idx, ok := e.vindexes[name]; ok {
		if set := idx[v]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(idx, v)
			}
		}
	}
}

// ConcurrentWrites implements core.ConcurrentWriter: RID chains and
// property records are mutated only by write operations, and read
// paths keep no shared state, so under core.Guard's exclusive-writer
// discipline mixed read/write workloads are serial-schedule
// consistent.
func (e *Engine) ConcurrentWrites() bool { return true }
