// Package engines registers the nine graph database configurations of
// the study (Table 1) under stable names, so the harness, the CLI tools
// and the benchmarks address them uniformly.
package engines

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/engines/arango"
	"repro/internal/engines/blaze"
	"repro/internal/engines/neo"
	"repro/internal/engines/orient"
	"repro/internal/engines/sparksee"
	"repro/internal/engines/sqlg"
	"repro/internal/engines/titan"
)

// Names of the registered configurations, in the paper's listing order.
var names = []string{
	"arango",
	"blaze",
	"neo-1.9",
	"neo-3.0",
	"orient",
	"sparksee",
	"sqlg",
	"titan-0.5",
	"titan-1.0",
}

// mu guards names and registry: the harness resolves constructors from
// concurrent grid workers, and Register may add entries at any time.
var mu sync.RWMutex

var registry = map[string]core.Constructor{
	"arango":    func() core.Engine { return arango.New() },
	"blaze":     func() core.Engine { return blaze.New() },
	"neo-1.9":   func() core.Engine { return neo.New(neo.V19) },
	"neo-3.0":   func() core.Engine { return neo.New(neo.V30) },
	"orient":    func() core.Engine { return orient.New() },
	"sparksee":  func() core.Engine { return sparksee.New() },
	"sqlg":      func() core.Engine { return sqlg.New() },
	"titan-0.5": func() core.Engine { return titan.New(titan.V05) },
	"titan-1.0": func() core.Engine { return titan.New(titan.V10) },
}

// Names returns the registered configuration names in listing order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), names...)
}

// Register adds (or replaces) a configuration under name — the hook
// for experimental engines and for test doubles such as harness DNF
// fixtures. It returns a function that undoes the registration,
// restoring any constructor it replaced.
func Register(name string, c core.Constructor) (unregister func()) {
	mu.Lock()
	defer mu.Unlock()
	old, replaced := registry[name]
	registry[name] = c
	if !replaced {
		names = append(names, name)
	}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if replaced {
			registry[name] = old
			return
		}
		delete(registry, name)
		for i, n := range names {
			if n == name {
				names = append(names[:i], names[i+1:]...)
				break
			}
		}
	}
}

// New builds a fresh engine by name.
func New(name string) (core.Engine, error) {
	mu.RLock()
	c, ok := registry[name]
	mu.RUnlock()
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("engines: unknown engine %q (known: %v)", name, known)
	}
	return c(), nil
}

// Constructor returns the named constructor, or nil.
func Constructor(name string) core.Constructor {
	mu.RLock()
	defer mu.RUnlock()
	return registry[name]
}

// ForEach calls fn with a fresh instance of every registered engine,
// closing each afterwards. It stops at the first error.
func ForEach(fn func(e core.Engine) error) error {
	for _, n := range Names() {
		c := Constructor(n)
		if c == nil {
			continue
		}
		e := c()
		err := fn(e)
		e.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
	}
	return nil
}
