// Package engines registers the nine graph database configurations of
// the study (Table 1) under stable names, so the harness, the CLI tools
// and the benchmarks address them uniformly.
package engines

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/engines/arango"
	"repro/internal/engines/blaze"
	"repro/internal/engines/neo"
	"repro/internal/engines/orient"
	"repro/internal/engines/sparksee"
	"repro/internal/engines/sqlg"
	"repro/internal/engines/titan"
	"repro/internal/lsm"
)

// Names of the registered configurations, in the paper's listing order.
var names = []string{
	"arango",
	"blaze",
	"neo-1.9",
	"neo-3.0",
	"orient",
	"sparksee",
	"sqlg",
	"titan-0.5",
	"titan-1.0",
}

// mu guards names and registry: the harness resolves constructors from
// concurrent grid workers, and Register may add entries at any time.
var mu sync.RWMutex

var registry = map[string]core.Constructor{
	"arango":    func() core.Engine { return arango.New() },
	"blaze":     func() core.Engine { return blaze.New() },
	"neo-1.9":   func() core.Engine { return neo.New(neo.V19) },
	"neo-3.0":   func() core.Engine { return neo.New(neo.V30) },
	"orient":    func() core.Engine { return orient.New() },
	"sparksee":  func() core.Engine { return sparksee.New() },
	"sqlg":      func() core.Engine { return sqlg.New() },
	"titan-0.5": func() core.Engine { return titan.New(titan.V05) },
	"titan-1.0": func() core.Engine { return titan.New(titan.V10) },
}

// Names returns the registered configuration names in listing order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), names...)
}

// Register adds (or replaces) a configuration under name — the hook
// for experimental engines and for test doubles such as harness DNF
// fixtures. It returns a function that undoes the registration,
// restoring any constructor it replaced.
func Register(name string, c core.Constructor) (unregister func()) {
	mu.Lock()
	defer mu.Unlock()
	old, replaced := registry[name]
	registry[name] = c
	if !replaced {
		names = append(names, name)
	}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if replaced {
			registry[name] = old
			return
		}
		delete(registry, name)
		for i, n := range names {
			if n == name {
				names = append(names[:i], names[i+1:]...)
				break
			}
		}
	}
}

// SupportsDurable reports whether OpenDurable can build the named
// engine over a write-ahead-logged store.
func SupportsDurable(name string) bool {
	return name == "titan-0.5" || name == "titan-1.0"
}

// OpenDurable builds the named engine in durable mode, rooted at dir:
// the engine's store recovers any existing WAL there and logs every
// subsequent write. Only the Titan configurations have a durable
// substrate (their LSM store plays the Cassandra role); every other
// name errors.
func OpenDurable(name, dir string) (core.Engine, *lsm.RecoveryStats, error) {
	switch name {
	case "titan-0.5":
		return titan.Open(titan.V05, dir)
	case "titan-1.0":
		return titan.Open(titan.V10, dir)
	default:
		return nil, nil, fmt.Errorf("engines: %q has no durable mode (supported: titan-0.5, titan-1.0)", name)
	}
}

// DurableReport is DurableAudit's JSON-ready result: the recovery
// counters from replaying the WAL plus the graph-level integrity
// audit. The serve smoke greps records_replayed and audit_ok after a
// kill -9.
type DurableReport struct {
	Engine          string   `json:"engine"`
	Dir             string   `json:"lsm_dir"`
	RecordsReplayed int64    `json:"records_replayed"`
	PutsReplayed    int64    `json:"puts_replayed"`
	DeletesReplayed int64    `json:"deletes_replayed"`
	BytesTruncated  int64    `json:"bytes_truncated"`
	SegmentsDropped int      `json:"segments_dropped"`
	RecoveryWallNS  int64    `json:"recovery_wall_ns"`
	Vertices        int64    `json:"vertices"`
	Edges           int64    `json:"edges"`
	NextID          int64    `json:"next_id"`
	AuditOk         bool     `json:"audit_ok"`
	Problems        []string `json:"problems,omitempty"`
}

// DurableAudit recovers the durable store at dir for the named engine
// and runs the engine's integrity audit, without serving anything.
func DurableAudit(name, dir string) (*DurableReport, error) {
	e, rst, err := OpenDurable(name, dir)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	te, ok := e.(*titan.Engine)
	if !ok {
		return nil, fmt.Errorf("engines: %q durable engine has no audit", name)
	}
	rep := te.Audit()
	return &DurableReport{
		Engine:          name,
		Dir:             dir,
		RecordsReplayed: rst.Records,
		PutsReplayed:    rst.Puts,
		DeletesReplayed: rst.Deletes,
		BytesTruncated:  rst.BytesTruncated,
		SegmentsDropped: rst.SegmentsDropped,
		RecoveryWallNS:  rst.WallNS,
		Vertices:        rep.Vertices,
		Edges:           rep.Edges,
		NextID:          rep.NextID,
		AuditOk:         rep.Ok(),
		Problems:        rep.Problems,
	}, nil
}

// New builds a fresh engine by name.
func New(name string) (core.Engine, error) {
	mu.RLock()
	c, ok := registry[name]
	mu.RUnlock()
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("engines: unknown engine %q (known: %v)", name, known)
	}
	return c(), nil
}

// Constructor returns the named constructor, or nil.
func Constructor(name string) core.Constructor {
	mu.RLock()
	defer mu.RUnlock()
	return registry[name]
}

// ForEach calls fn with a fresh instance of every registered engine,
// closing each afterwards. It stops at the first error.
func ForEach(fn func(e core.Engine) error) error {
	for _, n := range Names() {
		c := Constructor(n)
		if c == nil {
			continue
		}
		e := c()
		err := fn(e)
		e.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
	}
	return nil
}
