package sqlg

import (
	"repro/internal/core"
	"repro/internal/rel"
)

// --- vertex CRUD ---

// AddVertex implements core.Engine: a tuple insert, plus ALTER TABLE for
// any property name the schema has not seen.
func (e *Engine) AddVertex(props core.Props) (core.ID, error) {
	for k := range props {
		ensureColumn(e.vtab, k)
	}
	id := e.nextVertex
	e.nextVertex++
	cols := e.vtab.Columns()
	row := make(rel.Row, len(cols))
	row[0] = core.I(id)
	for i := 1; i < len(cols); i++ {
		if v, ok := props[cols[i]]; ok {
			row[i] = v
		}
	}
	if err := e.vtab.Insert(row); err != nil {
		return core.NoID, err
	}
	return core.ID(id), nil
}

// HasVertex implements core.Engine.
func (e *Engine) HasVertex(id core.ID) bool {
	if _, isEdge := splitEdgeID(id); isEdge || id < 0 {
		return false
	}
	_, ok := e.vtab.Get(int64(id))
	return ok
}

// VertexProps implements core.Engine.
func (e *Engine) VertexProps(id core.ID) (core.Props, error) {
	if _, isEdge := splitEdgeID(id); isEdge {
		return nil, core.ErrNotFound
	}
	r, ok := e.vtab.Get(int64(id))
	if !ok {
		return nil, core.ErrNotFound
	}
	return rowToProps(e.vtab, r, 1), nil
}

// VertexProp implements core.Engine.
func (e *Engine) VertexProp(id core.ID, name string) (core.Value, bool) {
	if _, isEdge := splitEdgeID(id); isEdge {
		return core.Nil, false
	}
	v, ok := e.vtab.Value(int64(id), name)
	if !ok || v.IsNil() {
		return core.Nil, false
	}
	return v, true
}

// SetVertexProp implements core.Engine.
func (e *Engine) SetVertexProp(id core.ID, name string, v core.Value) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	ensureColumn(e.vtab, name)
	return e.vtab.Update(int64(id), name, v)
}

// RemoveVertexProp implements core.Engine: SET NULL.
func (e *Engine) RemoveVertexProp(id core.ID, name string) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	if !e.vtab.HasColumn(name) {
		return nil
	}
	return e.vtab.Update(int64(id), name, core.Nil)
}

// RemoveVertex implements core.Engine: cascading deletes through the
// src/dst foreign-key indexes of every edge table.
func (e *Engine) RemoveVertex(id core.ID) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	key := core.I(int64(id))
	for _, t := range e.etabs {
		var doomed []int64
		t.SelectEq("src", key, func(r rel.Row) bool {
			doomed = append(doomed, r[0].Int())
			return true
		})
		t.SelectEq("dst", key, func(r rel.Row) bool {
			doomed = append(doomed, r[0].Int())
			return true
		})
		for _, eid := range doomed {
			// A loop edge is collected twice; the second delete is a no-op.
			if _, ok := t.Get(eid); ok {
				if err := t.Delete(eid); err != nil {
					return err
				}
			}
		}
	}
	return e.vtab.Delete(int64(id))
}

// --- edge CRUD ---

// AddEdge implements core.Engine: an insert into the label's join table.
func (e *Engine) AddEdge(src, dst core.ID, label string, props core.Props) (core.ID, error) {
	if !e.HasVertex(src) || !e.HasVertex(dst) {
		return core.NoID, core.ErrNotFound
	}
	t, ti := e.edgeTable(label)
	for k := range props {
		ensureColumn(t, k)
	}
	id := makeEdgeID(ti, e.nextEdge)
	e.nextEdge++
	cols := t.Columns()
	row := make(rel.Row, len(cols))
	row[0] = core.I(int64(id))
	row[1] = core.I(int64(src))
	row[2] = core.I(int64(dst))
	for i := 3; i < len(cols); i++ {
		if v, ok := props[cols[i]]; ok {
			row[i] = v
		}
	}
	if err := t.Insert(row); err != nil {
		return core.NoID, err
	}
	return id, nil
}

func (e *Engine) edgeRow(id core.ID) (*rel.Table, rel.Row, bool) {
	ti, isEdge := splitEdgeID(id)
	if !isEdge || ti >= len(e.etabs) {
		return nil, nil, false
	}
	r, ok := e.etabs[ti].Get(int64(id))
	if !ok {
		return nil, nil, false
	}
	return e.etabs[ti], r, true
}

// HasEdge implements core.Engine.
func (e *Engine) HasEdge(id core.ID) bool {
	_, _, ok := e.edgeRow(id)
	return ok
}

// EdgeLabel implements core.Engine: the label is the table.
func (e *Engine) EdgeLabel(id core.ID) (string, error) {
	ti, isEdge := splitEdgeID(id)
	if !isEdge || ti >= len(e.etabs) {
		return "", core.ErrNotFound
	}
	if _, ok := e.etabs[ti].Get(int64(id)); !ok {
		return "", core.ErrNotFound
	}
	return e.labels[ti], nil
}

// EdgeEnds implements core.Engine.
func (e *Engine) EdgeEnds(id core.ID) (core.ID, core.ID, error) {
	_, r, ok := e.edgeRow(id)
	if !ok {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	return core.ID(r[1].Int()), core.ID(r[2].Int()), nil
}

// EdgeProps implements core.Engine.
func (e *Engine) EdgeProps(id core.ID) (core.Props, error) {
	t, r, ok := e.edgeRow(id)
	if !ok {
		return nil, core.ErrNotFound
	}
	return rowToProps(t, r, 3), nil
}

// EdgeProp implements core.Engine.
func (e *Engine) EdgeProp(id core.ID, name string) (core.Value, bool) {
	t, _, ok := e.edgeRow(id)
	if !ok {
		return core.Nil, false
	}
	v, ok := t.Value(int64(id), name)
	if !ok || v.IsNil() {
		return core.Nil, false
	}
	return v, true
}

// SetEdgeProp implements core.Engine.
func (e *Engine) SetEdgeProp(id core.ID, name string, v core.Value) error {
	t, _, ok := e.edgeRow(id)
	if !ok {
		return core.ErrNotFound
	}
	ensureColumn(t, name)
	return t.Update(int64(id), name, v)
}

// RemoveEdgeProp implements core.Engine.
func (e *Engine) RemoveEdgeProp(id core.ID, name string) error {
	t, _, ok := e.edgeRow(id)
	if !ok {
		return core.ErrNotFound
	}
	if !t.HasColumn(name) {
		return nil
	}
	return t.Update(int64(id), name, core.Nil)
}

// RemoveEdge implements core.Engine.
func (e *Engine) RemoveEdge(id core.ID) error {
	t, _, ok := e.edgeRow(id)
	if !ok {
		return core.ErrNotFound
	}
	return t.Delete(int64(id))
}

// --- scans ---

// CountVertices implements core.Engine: COUNT(*) heap scan.
func (e *Engine) CountVertices() (int64, error) {
	var n int64
	e.vtab.Scan(func(rel.Row) bool { n++; return true })
	return n, nil
}

// CountEdges implements core.Engine: a UNION ALL of counts over every
// edge table.
func (e *Engine) CountEdges() (int64, error) {
	var n int64
	for _, t := range e.etabs {
		t.Scan(func(rel.Row) bool { n++; return true })
	}
	return n, nil
}

// Vertices implements core.Engine.
func (e *Engine) Vertices() core.Iter[core.ID] {
	ids := e.vtab.SortedIDs()
	out := make([]core.ID, len(ids))
	for i, id := range ids {
		out[i] = core.ID(id)
	}
	return core.SliceIter(out)
}

// Edges implements core.Engine: union over the edge tables.
func (e *Engine) Edges() core.Iter[core.ID] {
	var out []core.ID
	for _, t := range e.etabs {
		for _, id := range t.SortedIDs() {
			out = append(out, core.ID(id))
		}
	}
	return core.SliceIter(sortedIDs(out))
}

// VerticesByProp implements core.Engine: one relational predicate scan,
// or an index seek when the user created an attribute index — the
// planner choice measured by Figure 4(c).
func (e *Engine) VerticesByProp(name string, v core.Value) core.Iter[core.ID] {
	if !e.vtab.HasColumn(name) {
		return core.EmptyIter[core.ID]()
	}
	var out []core.ID
	e.vtab.SelectEq(name, v, func(r rel.Row) bool {
		out = append(out, core.ID(r[0].Int()))
		return true
	})
	return core.SliceIter(sortedIDs(out))
}

// EdgesByProp implements core.Engine.
func (e *Engine) EdgesByProp(name string, v core.Value) core.Iter[core.ID] {
	var out []core.ID
	for _, t := range e.etabs {
		if !t.HasColumn(name) {
			continue
		}
		t.SelectEq(name, v, func(r rel.Row) bool {
			out = append(out, core.ID(r[0].Int()))
			return true
		})
	}
	return core.SliceIter(sortedIDs(out))
}

// EdgesByLabel implements core.Engine: a single-table scan — the
// relational layout's home game (an order of magnitude faster than the
// native engines in the paper).
func (e *Engine) EdgesByLabel(label string) core.Iter[core.ID] {
	i, ok := e.labelOf[label]
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	var out []core.ID
	e.etabs[i].Scan(func(r rel.Row) bool {
		out = append(out, core.ID(r[0].Int()))
		return true
	})
	return core.SliceIter(sortedIDs(out))
}

// --- traversal ---

// tablesFor returns the edge tables a hop must consult: one per
// requested label, or all of them for an unfiltered hop (the union the
// paper blames for Sqlg's traversal cost).
func (e *Engine) tablesFor(labels []string) []*rel.Table {
	if len(labels) == 0 {
		return e.etabs
	}
	var out []*rel.Table
	for _, l := range labels {
		if i, ok := e.labelOf[l]; ok {
			out = append(out, e.etabs[i])
		}
	}
	return out
}

// IncidentEdges implements core.Engine: an indexed join per table.
func (e *Engine) IncidentEdges(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	if !e.HasVertex(id) {
		return core.EmptyIter[core.ID]()
	}
	key := core.I(int64(id))
	var out []core.ID
	for _, t := range e.tablesFor(labels) {
		if d == core.DirOut || d == core.DirBoth {
			t.SelectEq("src", key, func(r rel.Row) bool {
				out = append(out, core.ID(r[0].Int()))
				return true
			})
		}
		if d == core.DirIn || d == core.DirBoth {
			t.SelectEq("dst", key, func(r rel.Row) bool {
				if d == core.DirBoth && r[1].Compare(r[2]) == 0 {
					return true // loop already collected by the src join
				}
				out = append(out, core.ID(r[0].Int()))
				return true
			})
		}
	}
	return core.SliceIter(out)
}

// Neighbors implements core.Engine.
func (e *Engine) Neighbors(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	if !e.HasVertex(id) {
		return core.EmptyIter[core.ID]()
	}
	key := core.I(int64(id))
	var out []core.ID
	for _, t := range e.tablesFor(labels) {
		if d == core.DirOut || d == core.DirBoth {
			t.SelectEq("src", key, func(r rel.Row) bool {
				out = append(out, core.ID(r[2].Int()))
				return true
			})
		}
		if d == core.DirIn || d == core.DirBoth {
			t.SelectEq("dst", key, func(r rel.Row) bool {
				if d == core.DirBoth && r[1].Compare(r[2]) == 0 {
					return true
				}
				out = append(out, core.ID(r[1].Int()))
				return true
			})
		}
	}
	return core.SliceIter(out)
}

// Degree implements core.Engine: indexed counts over every edge table.
func (e *Engine) Degree(id core.ID, d core.Direction) (int64, error) {
	if !e.HasVertex(id) {
		return 0, core.ErrNotFound
	}
	return int64(core.Drain(e.IncidentEdges(id, d))), nil
}

// --- index / bulk / space ---

// BuildVertexPropIndex implements core.Engine: CREATE INDEX.
func (e *Engine) BuildVertexPropIndex(name string) error {
	ensureColumn(e.vtab, name)
	if err := e.vtab.CreateIndex(name); err != nil {
		return err
	}
	e.vindexed[name] = true
	return nil
}

// HasVertexPropIndex implements core.Engine.
func (e *Engine) HasVertexPropIndex(name string) bool { return e.vindexed[name] }

// BulkLoad implements core.Engine: schema first (one ALTER-free CREATE
// per label with all property columns known up front), then COPY-style
// row inserts.
func (e *Engine) BulkLoad(g *core.Graph) (*core.LoadResult, error) {
	e.CapturePlanStats(g)
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	// Collect the vertex schema.
	for i := range g.VProps {
		for k := range g.VProps[i] {
			ensureColumn(e.vtab, k)
		}
	}
	e.vtab.Reserve(g.NumVertices())
	cols := e.vtab.Columns()
	for i := range g.VProps {
		id := e.nextVertex
		e.nextVertex++
		row := make(rel.Row, len(cols))
		row[0] = core.I(id)
		for ci := 1; ci < len(cols); ci++ {
			if v, ok := g.VProps[i][cols[ci]]; ok {
				row[ci] = v
			}
		}
		if err := e.vtab.Insert(row); err != nil {
			return nil, err
		}
		res.VertexIDs[i] = core.ID(id)
	}
	// Edge schemas per label.
	for i := range g.EdgeL {
		t, _ := e.edgeTable(g.EdgeL[i].Label)
		for k := range g.EdgeL[i].Props {
			ensureColumn(t, k)
		}
	}
	// Every label's table now exists (created above, in first-encounter
	// order, which fixes the table-id part of the edge IDs); reserve
	// each to its exact row count from the snapshot's per-label slices.
	snap := g.Snapshot()
	for li, label := range snap.Labels {
		t, _ := e.edgeTable(label)
		t.Reserve(snap.LabelEdgeCount(li))
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		t, ti := e.edgeTable(er.Label)
		id := makeEdgeID(ti, e.nextEdge)
		e.nextEdge++
		ecols := t.Columns()
		row := make(rel.Row, len(ecols))
		row[0] = core.I(int64(id))
		row[1] = core.I(int64(res.VertexIDs[er.Src]))
		row[2] = core.I(int64(res.VertexIDs[er.Dst]))
		for ci := 3; ci < len(ecols); ci++ {
			if v, ok := er.Props[ecols[ci]]; ok {
				row[ci] = v
			}
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		res.EdgeIDs[i] = id
	}
	return res, nil
}

// SpaceUsage implements core.Engine.
func (e *Engine) SpaceUsage() core.SpaceReport {
	var r core.SpaceReport
	r.Add("vertex-table", e.vtab.Bytes())
	var eb int64
	for _, t := range e.etabs {
		eb += t.Bytes()
	}
	r.Add("edge-tables", eb)
	return r
}

// Close implements core.Engine.
func (e *Engine) Close() error { return nil }
