package sqlg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engines/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New() })
}

func TestConcurrencyConformance(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New() })
}

func TestOneJoinTablePerLabel(t *testing.T) {
	e := New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	e.AddEdge(a, b, "knows", nil)
	e.AddEdge(a, b, "likes", nil)
	e.AddEdge(b, a, "knows", nil)
	tables := e.db.Tables()
	want := map[string]bool{"V": true, "E_knows": true, "E_likes": true}
	if len(tables) != 3 {
		t.Fatalf("tables = %v", tables)
	}
	for _, name := range tables {
		if !want[name] {
			t.Fatalf("unexpected table %q", name)
		}
	}
	if e.db.Table("E_knows").Len() != 2 || e.db.Table("E_likes").Len() != 1 {
		t.Fatal("edge rows in wrong tables")
	}
}

func TestEndpointColumnsAreIndexed(t *testing.T) {
	e := New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	e.AddEdge(a, b, "l", nil)
	t1 := e.db.Table("E_l")
	if !t1.HasIndex("src") || !t1.HasIndex("dst") {
		t.Fatal("foreign-key indexes missing")
	}
	// A hop must be an index seek, not a scan.
	scansBefore, seeksBefore := t1.Stats()
	core.Drain(e.Neighbors(a, core.DirOut, "l"))
	scansAfter, seeksAfter := t1.Stats()
	if scansAfter != scansBefore {
		t.Fatalf("labelled hop performed a scan")
	}
	if seeksAfter != seeksBefore+1 {
		t.Fatalf("labelled hop seeks = %d, want %d", seeksAfter, seeksBefore+1)
	}
}

func TestUnfilteredHopTouchesEveryEdgeTable(t *testing.T) {
	e := New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	for _, l := range []string{"l1", "l2", "l3", "l4"} {
		e.AddEdge(a, b, l, nil)
	}
	var before []int
	for _, tab := range e.etabs {
		_, seeks := tab.Stats()
		before = append(before, seeks)
	}
	core.Drain(e.Neighbors(a, core.DirOut))
	for i, tab := range e.etabs {
		if _, seeks := tab.Stats(); seeks != before[i]+1 {
			t.Fatalf("table %d not consulted by unfiltered hop", i)
		}
	}
}

func TestNewPropertyNameIsAlterTable(t *testing.T) {
	e := New()
	defer e.Close()
	v, _ := e.AddVertex(core.Props{"known": core.I(1)})
	if e.vtab.HasColumn("fresh") {
		t.Fatal("column exists prematurely")
	}
	if err := e.SetVertexProp(v, "fresh", core.S("x")); err != nil {
		t.Fatal(err)
	}
	if !e.vtab.HasColumn("fresh") {
		t.Fatal("ALTER TABLE did not happen")
	}
	if got, ok := e.VertexProp(v, "fresh"); !ok || got != core.S("x") {
		t.Fatalf("prop = %v %v", got, ok)
	}
}

func TestAttributeIndexSpeedsSelection(t *testing.T) {
	e := New()
	defer e.Close()
	for i := 0; i < 200; i++ {
		e.AddVertex(core.Props{"grp": core.I(int64(i % 10))})
	}
	scans0, seeks0 := e.vtab.Stats()
	if n := core.Drain(e.VerticesByProp("grp", core.I(3))); n != 20 {
		t.Fatalf("pre-index result = %d", n)
	}
	scans1, _ := e.vtab.Stats()
	if scans1 != scans0+1 {
		t.Fatal("pre-index search should scan")
	}
	if err := e.BuildVertexPropIndex("grp"); err != nil {
		t.Fatal(err)
	}
	if n := core.Drain(e.VerticesByProp("grp", core.I(3))); n != 20 {
		t.Fatalf("post-index result = %d", n)
	}
	scans2, seeks2 := e.vtab.Stats()
	if scans2 != scans1 {
		t.Fatal("post-index search still scanned")
	}
	if seeks2 <= seeks0 {
		t.Fatal("post-index search did not seek")
	}
}

func TestEdgesByLabelIsSingleTableScan(t *testing.T) {
	e := New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	for i := 0; i < 5; i++ {
		e.AddEdge(a, b, "hot", nil)
		e.AddEdge(a, b, "cold", nil)
	}
	cold := e.db.Table("E_cold")
	scansBefore, _ := cold.Stats()
	if n := core.Drain(e.EdgesByLabel("hot")); n != 5 {
		t.Fatalf("EdgesByLabel = %d", n)
	}
	if scansAfter, _ := cold.Stats(); scansAfter != scansBefore {
		t.Fatal("label search touched an unrelated table")
	}
}
