// Package sqlg implements the hybrid engine modelled on Sqlg over
// Postgres as the paper characterizes it: Apache TinkerPop implemented
// on a relational engine (internal/rel plays the Postgres role).
//
// Architecture reproduced (Section 3.2):
//
//   - one table for vertices and one join table per edge label, with
//     primary-key and foreign-key (src/dst) B+Tree indexes;
//   - a single-label hop is an indexed join on one table — the fast path
//     behind Sqlg winning half the complex queries in Figure 2;
//   - an *unfiltered* hop must union joins over every edge table, so
//     traversals on label-rich graphs (Freebase: thousands of labels)
//     pay a per-hop cost proportional to label cardinality — the slow
//     BFS/shortest-path behaviour of Figures 6 and 7;
//   - property search is a relational scan (fast relative to the native
//     engines' property-chain walks) and becomes an index seek once the
//     user creates an attribute index — the up-to-600× speed-up of
//     Figure 4(c);
//   - setting a property name the schema has not seen is ALTER TABLE,
//     i.e. a row rewrite — the slow CUD path the paper observes "where
//     it has to change the table structure".
package sqlg

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rel"
)

// Edge IDs carry their label table in the top bits (vertices use table
// index 0).
const tableBits = 44

func makeEdgeID(tableIdx int, seq int64) core.ID {
	return core.ID(int64(tableIdx+1)<<tableBits | seq)
}

func splitEdgeID(id core.ID) (tableIdx int, ok bool) {
	t := int(int64(id) >> tableBits)
	return t - 1, t >= 1
}

// Engine is a Sqlg-style relational graph store.
type Engine struct {
	core.PlanStatsHolder

	db         *rel.DB
	vtab       *rel.Table
	etabs      []*rel.Table // per label
	labelOf    map[string]int
	labels     []string
	nextVertex int64
	nextEdge   int64
	vindexed   map[string]bool
}

// New returns an empty engine.
func New() *Engine {
	db := rel.NewDB()
	vt, err := db.CreateTable("V", "id")
	if err != nil {
		panic("sqlg: " + err.Error())
	}
	return &Engine{
		db:       db,
		vtab:     vt,
		labelOf:  make(map[string]int),
		vindexed: make(map[string]bool),
	}
}

// Meta implements core.Engine.
func (e *Engine) Meta() core.EngineMeta {
	return core.EngineMeta{
		Name:          "sqlg",
		Kind:          core.KindHybrid,
		Substrate:     "Relational",
		Storage:       "Tables",
		EdgeTraversal: "Table join",
		Gremlin:       "3.2",
		Execution:     "SQL, optimized",
	}
}

func (e *Engine) edgeTable(label string) (*rel.Table, int) {
	if i, ok := e.labelOf[label]; ok {
		return e.etabs[i], i
	}
	name := "E_" + label
	t, err := e.db.CreateTable(name, "id", "src", "dst")
	if err != nil {
		// Label collision after sanitization: disambiguate.
		name = fmt.Sprintf("E_%s_%d", label, len(e.etabs))
		t, err = e.db.CreateTable(name, "id", "src", "dst")
		if err != nil {
			panic("sqlg: " + err.Error())
		}
	}
	// Foreign-key indexes, as Sqlg creates for endpoint columns.
	if err := t.CreateIndex("src"); err != nil {
		panic("sqlg: " + err.Error())
	}
	if err := t.CreateIndex("dst"); err != nil {
		panic("sqlg: " + err.Error())
	}
	i := len(e.etabs)
	e.etabs = append(e.etabs, t)
	e.labels = append(e.labels, label)
	e.labelOf[label] = i
	return t, i
}

// ensureColumn adds a property column, paying the ALTER TABLE row
// rewrite when the name is new to the table.
func ensureColumn(t *rel.Table, col string) {
	if !t.HasColumn(col) {
		_ = t.AlterAddColumn(col)
	}
}

// rowToProps converts a row to a property set, skipping system columns
// and NULLs.
func rowToProps(t *rel.Table, r rel.Row, skip int) core.Props {
	cols := t.Columns()
	p := core.Props{}
	for i := skip; i < len(r); i++ {
		if !r[i].IsNil() {
			p[cols[i]] = r[i]
		}
	}
	if len(p) == 0 {
		return nil
	}
	return p
}

func sortedIDs(ids []core.ID) []core.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ConcurrentWrites implements core.ConcurrentWriter: the relational
// tables are mutated only by write operations and the planner's
// read-side counters are atomics, so under core.Guard's
// exclusive-writer discipline mixed read/write workloads are
// serial-schedule consistent.
func (e *Engine) ConcurrentWrites() bool { return true }
