package enginetest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// RunConcurrency executes the concurrency-conformance battery against
// fresh engines produced by newEngine. It exercises the documented
// contract from internal/core: engines are accessed through core.Guard
// (exclusive writer, shared readers; full serialization for
// ConcurrentReader-vetoing engines), and after any guarded schedule the
// read surfaces must agree with each other. Run it under -race — half
// the value of the suite is the detector watching the shared-reader
// paths.
func RunConcurrency(t *testing.T, newEngine func() core.Engine) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(*testing.T, func() core.Engine)
	}{
		{"GuardHonorsVeto", testGuardHonorsVeto},
		{"ConcurrentReadersDuringMutation", testConcurrentReadersDuringMutation},
		{"SingleWriterInterleavings", testSingleWriterInterleavings},
		{"RandomizedScheduleInvariants", testRandomizedScheduleInvariants},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.fn(t, newEngine) })
	}
}

// testGuardHonorsVeto pins the capability wiring: the guard serializes
// exactly the engines that veto concurrent reads, and never invents a
// ConcurrentWrites grant the engine did not make.
func testGuardHonorsVeto(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	g := core.Guard(e)
	veto := false
	if cr, ok := e.(core.ConcurrentReader); ok && !cr.ConcurrentReads() {
		veto = true
	}
	if g.Exclusive() != veto {
		t.Fatalf("guard exclusive = %v, engine read veto = %v", g.Exclusive(), veto)
	}
	grant := false
	if cw, ok := e.(core.ConcurrentWriter); ok {
		grant = cw.ConcurrentWrites()
	}
	if g.ConcurrentWrites() != grant {
		t.Fatalf("guard write grant = %v, engine grant = %v", g.ConcurrentWrites(), grant)
	}
	if !g.ConcurrentReads() {
		t.Fatal("guarded view must always grant ConcurrentReads")
	}
}

// testConcurrentReadersDuringMutation runs read-only clients over every
// read surface while a single writer churns its own region of the
// graph. Readers only assert facts the writer never invalidates (the
// bulk-loaded base is left untouched), so any failure is a real
// consistency break, not schedule noise.
func testConcurrentReadersDuringMutation(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	g := core.Guard(e)
	res, err := g.BulkLoad(sampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	base := res.VertexIDs
	baseEdges := int64(len(res.EdgeIDs))

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}

	wg.Add(1)
	go func() { // the single writer: grows and prunes a private star
		defer wg.Done()
		hub, err := g.AddVertex(core.Props{"role": core.S("hub")})
		if err != nil {
			report("writer AddVertex: %v", err)
			return
		}
		var spokes []core.ID
		for i := 0; i < 120; i++ {
			v, err := g.AddVertex(core.Props{"i": core.I(int64(i))})
			if err != nil {
				report("writer AddVertex: %v", err)
				return
			}
			if _, err := g.AddEdge(hub, v, "spoke", nil); err != nil {
				report("writer AddEdge: %v", err)
				return
			}
			if err := g.SetVertexProp(v, "touched", core.I(1)); err != nil {
				report("writer SetVertexProp: %v", err)
				return
			}
			spokes = append(spokes, v)
			if i%4 == 3 { // prune the oldest spoke (cascades its edge)
				if err := g.RemoveVertex(spokes[0]); err != nil {
					report("writer RemoveVertex: %v", err)
					return
				}
				spokes = spokes[1:]
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, v := range base {
					if !g.HasVertex(v) {
						report("base vertex %d vanished", v)
						return
					}
				}
				if p, ok := g.VertexProp(base[0], "idx"); !ok || p != core.I(0) {
					report("base prop drifted: %v %v", p, ok)
					return
				}
				if n, err := g.CountVertices(); err != nil || n < int64(len(base)) {
					report("CountVertices = %d (%v)", n, err)
					return
				}
				if n, err := g.CountEdges(); err != nil || n < baseEdges {
					report("CountEdges = %d (%v)", n, err)
					return
				}
				// Scans and traversals must at least cover the base and never race.
				if n := core.Drain(g.Vertices()); n < len(base) {
					report("Vertices scan saw %d < base %d", n, len(base))
					return
				}
				if got := ids(g.Neighbors(base[0], core.DirOut)); !sameIDs(got, ids(core.SliceIter([]core.ID{base[1], base[2]}))) {
					report("base adjacency drifted: %v", got)
					return
				}
				if d, err := g.Degree(base[4], core.DirBoth); err != nil || d != 3 {
					report("base degree drifted: %d (%v)", d, err)
					return
				}
				core.Drain(g.EdgesByLabel("spoke"))
				core.Drain(g.VerticesByProp("role", core.S("hub")))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	checkConsistent(t, g)
}

// testSingleWriterInterleavings runs several writer clients through the
// guard and checks the final state is the serial sum of their work:
// every client's private chain must be fully present with its edges and
// final property values, whatever the interleaving.
func testSingleWriterInterleavings(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	g := core.Guard(e)
	const writers, chain = 4, 40

	owned := make([][]core.ID, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var prev core.ID = core.NoID
			for i := 0; i < chain; i++ {
				v, err := g.AddVertex(core.Props{"w": core.I(int64(w))})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if prev != core.NoID {
					if _, err := g.AddEdge(prev, v, "next", nil); err != nil {
						t.Errorf("writer %d edge: %v", w, err)
						return
					}
				}
				// Overwrite twice: last write must win within this client.
				g.SetVertexProp(v, "seq", core.I(int64(i-1)))
				if err := g.SetVertexProp(v, "seq", core.I(int64(i))); err != nil {
					t.Errorf("writer %d set: %v", w, err)
					return
				}
				owned[w] = append(owned[w], v)
				prev = v
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if n, _ := g.CountVertices(); n != int64(writers*chain) {
		t.Fatalf("CountVertices = %d, want %d", n, writers*chain)
	}
	if n, _ := g.CountEdges(); n != int64(writers*(chain-1)) {
		t.Fatalf("CountEdges = %d, want %d", n, writers*(chain-1))
	}
	for w, vs := range owned {
		for i, v := range vs {
			if got, ok := g.VertexProp(v, "seq"); !ok || got != core.I(int64(i)) {
				t.Fatalf("writer %d vertex %d seq = %v %v", w, i, got, ok)
			}
			if i > 0 {
				if got := ids(g.Neighbors(vs[i-1], core.DirOut)); !sameIDs(got, []core.ID{v}) {
					t.Fatalf("writer %d chain broken at %d: %v", w, i, got)
				}
			}
		}
	}
	checkConsistent(t, g)
}

// testRandomizedScheduleInvariants drives a seeded mixed schedule —
// every client interleaves reads, inserts, updates, and deletes of its
// own objects — then audits the survivors' full read surface against
// each other. The schedule is deterministic per client (seeded), the
// interleaving is not; the invariants hold either way.
func testRandomizedScheduleInvariants(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	g := core.Guard(e)
	res, err := g.BulkLoad(sampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	base := res.VertexIDs

	const clients, steps = 4, 150
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			var mine []core.ID // vertices this client owns
			for i := 0; i < steps; i++ {
				switch op := rng.Intn(10); {
				case op < 3: // insert vertex
					v, err := g.AddVertex(core.Props{"c": core.I(int64(c))})
					if err != nil {
						t.Errorf("client %d add: %v", c, err)
						return
					}
					mine = append(mine, v)
				case op < 5 && len(mine) > 0: // insert edge among owned
					src := mine[rng.Intn(len(mine))]
					dst := mine[rng.Intn(len(mine))]
					if _, err := g.AddEdge(src, dst, "r", nil); err != nil {
						t.Errorf("client %d edge: %v", c, err)
						return
					}
				case op < 6 && len(mine) > 0: // update
					v := mine[rng.Intn(len(mine))]
					if err := g.SetVertexProp(v, "u", core.I(int64(i))); err != nil {
						t.Errorf("client %d set: %v", c, err)
						return
					}
				case op < 7 && len(mine) > 1: // delete an owned vertex
					k := rng.Intn(len(mine))
					if err := g.RemoveVertex(mine[k]); err != nil {
						t.Errorf("client %d remove: %v", c, err)
						return
					}
					mine = append(mine[:k], mine[k+1:]...)
				default: // read
					g.HasVertex(base[rng.Intn(len(base))])
					core.Drain(g.Neighbors(base[rng.Intn(len(base))], core.DirBoth))
					g.CountEdges()
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	checkConsistent(t, g)
}

// checkConsistent audits every read surface against every other after
// the schedule has quiesced: counts match scans, edges connect live
// vertices, per-vertex degrees sum to the edge population, and label
// partitions cover the edge set exactly.
func checkConsistent(t *testing.T, e core.Engine) {
	t.Helper()
	vs := core.Collect(e.Vertices())
	es := core.Collect(e.Edges())
	if n, err := e.CountVertices(); err != nil || n != int64(len(vs)) {
		t.Fatalf("CountVertices = %d (%v), scan = %d", n, err, len(vs))
	}
	if n, err := e.CountEdges(); err != nil || n != int64(len(es)) {
		t.Fatalf("CountEdges = %d (%v), scan = %d", n, err, len(es))
	}
	live := make(map[core.ID]bool, len(vs))
	for _, v := range vs {
		if !e.HasVertex(v) {
			t.Fatalf("scanned vertex %d fails HasVertex", v)
		}
		live[v] = true
	}
	labels := map[string]int{}
	var outSum, inSum int64
	for _, id := range es {
		if !e.HasEdge(id) {
			t.Fatalf("scanned edge %d fails HasEdge", id)
		}
		src, dst, err := e.EdgeEnds(id)
		if err != nil {
			t.Fatalf("EdgeEnds(%d): %v", id, err)
		}
		if !live[src] || !live[dst] {
			t.Fatalf("edge %d connects dead endpoint (%d -> %d)", id, src, dst)
		}
		l, err := e.EdgeLabel(id)
		if err != nil {
			t.Fatalf("EdgeLabel(%d): %v", id, err)
		}
		labels[l]++
	}
	for _, v := range vs {
		out, err := e.Degree(v, core.DirOut)
		if err != nil {
			t.Fatalf("Degree(%d, out): %v", v, err)
		}
		in, err := e.Degree(v, core.DirIn)
		if err != nil {
			t.Fatalf("Degree(%d, in): %v", v, err)
		}
		if n := int64(core.Drain(e.Neighbors(v, core.DirOut))); n != out {
			t.Fatalf("vertex %d: out degree %d, neighbors %d", v, out, n)
		}
		outSum += out
		inSum += in
	}
	if outSum != int64(len(es)) || inSum != int64(len(es)) {
		t.Fatalf("degree sums out=%d in=%d, edges=%d", outSum, inSum, len(es))
	}
	var labelSum int
	for l, n := range labels {
		if got := core.Drain(e.EdgesByLabel(l)); got != n {
			t.Fatalf("EdgesByLabel(%q) = %d, want %d", l, got, n)
		}
		labelSum += n
	}
	if labelSum != len(es) {
		t.Fatalf("label partition covers %d of %d edges", labelSum, len(es))
	}
}
