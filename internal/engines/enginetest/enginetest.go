// Package enginetest is a conformance kit for core.Engine
// implementations. Every engine package runs the same battery through
// Run, so the nine configurations are held to identical semantics — the
// precondition for the paper's comparative methodology ("any random
// selection made in one system has been maintained the same across the
// other systems").
//
// Contract details the kit enforces beyond the obvious:
//
//   - BothE yields each incident edge exactly once (self-loops once).
//   - Neighbors yields the opposite endpoint per incident edge, so
//     parallel edges produce duplicates and self-loops yield the vertex.
//   - RemoveVertex cascades to incident edges and their properties.
//   - Scans see exactly the live objects, in any order.
//   - BulkLoad's LoadResult maps dataset indexes to engine IDs.
package enginetest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
)

// Run executes the full conformance battery against fresh engines
// produced by newEngine.
func Run(t *testing.T, newEngine func() core.Engine) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(*testing.T, func() core.Engine)
	}{
		{"VertexCRUD", testVertexCRUD},
		{"EdgeCRUD", testEdgeCRUD},
		{"PropertyUpdateRemove", testPropertyUpdateRemove},
		{"RemoveVertexCascades", testRemoveVertexCascades},
		{"Counts", testCounts},
		{"Scans", testScans},
		{"SearchByProperty", testSearchByProperty},
		{"SearchByLabel", testSearchByLabel},
		{"Traversal", testTraversal},
		{"ParallelEdgesAndLoops", testParallelEdgesAndLoops},
		{"Degree", testDegree},
		{"MissingIDs", testMissingIDs},
		{"BulkLoad", testBulkLoad},
		{"PropertyIndex", testPropertyIndex},
		{"SpaceUsage", testSpaceUsage},
		{"Meta", testMeta},
		{"RandomizedAgainstReference", testRandomizedAgainstReference},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.fn(t, newEngine) })
	}
}

func ids(it core.Iter[core.ID]) []core.ID {
	s := core.Collect(it)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func sameIDs(a, b []core.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func testVertexCRUD(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	id, err := e.AddVertex(core.Props{"name": core.S("ann"), "age": core.I(31)})
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasVertex(id) {
		t.Fatal("vertex missing after AddVertex")
	}
	p, err := e.VertexProps(id)
	if err != nil {
		t.Fatal(err)
	}
	if p["name"] != core.S("ann") || p["age"] != core.I(31) {
		t.Fatalf("props = %v", p)
	}
	if v, ok := e.VertexProp(id, "name"); !ok || v != core.S("ann") {
		t.Fatalf("VertexProp = %v %v", v, ok)
	}
	if _, ok := e.VertexProp(id, "none"); ok {
		t.Fatal("absent property returned")
	}
	if err := e.RemoveVertex(id); err != nil {
		t.Fatal(err)
	}
	if e.HasVertex(id) {
		t.Fatal("vertex visible after removal")
	}
}

func testEdgeCRUD(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	eid, err := e.AddEdge(a, b, "knows", core.Props{"since": core.I(2010)})
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasEdge(eid) {
		t.Fatal("edge missing after AddEdge")
	}
	if l, err := e.EdgeLabel(eid); err != nil || l != "knows" {
		t.Fatalf("label = %q %v", l, err)
	}
	src, dst, err := e.EdgeEnds(eid)
	if err != nil || src != a || dst != b {
		t.Fatalf("ends = %v,%v %v", src, dst, err)
	}
	if v, ok := e.EdgeProp(eid, "since"); !ok || v != core.I(2010) {
		t.Fatalf("EdgeProp = %v %v", v, ok)
	}
	p, err := e.EdgeProps(eid)
	if err != nil || p["since"] != core.I(2010) {
		t.Fatalf("EdgeProps = %v %v", p, err)
	}
	if err := e.RemoveEdge(eid); err != nil {
		t.Fatal(err)
	}
	if e.HasEdge(eid) {
		t.Fatal("edge visible after removal")
	}
	if n := core.Drain(e.IncidentEdges(a, core.DirBoth)); n != 0 {
		t.Fatalf("incident edges after removal = %d", n)
	}
}

func testPropertyUpdateRemove(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	v, _ := e.AddVertex(core.Props{"p": core.I(1)})
	if err := e.SetVertexProp(v, "p", core.I(2)); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.VertexProp(v, "p"); got != core.I(2) {
		t.Fatalf("updated prop = %v", got)
	}
	if err := e.SetVertexProp(v, "q", core.S("new")); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.VertexProp(v, "q"); got != core.S("new") {
		t.Fatalf("added prop = %v", got)
	}
	if err := e.RemoveVertexProp(v, "p"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.VertexProp(v, "p"); ok {
		t.Fatal("removed prop visible")
	}

	a, _ := e.AddVertex(nil)
	eid, _ := e.AddEdge(v, a, "l", nil)
	if err := e.SetEdgeProp(eid, "w", core.F(0.5)); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.EdgeProp(eid, "w"); got != core.F(0.5) {
		t.Fatalf("edge prop = %v", got)
	}
	if err := e.SetEdgeProp(eid, "w", core.F(1.5)); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.EdgeProp(eid, "w"); got != core.F(1.5) {
		t.Fatalf("edge prop after update = %v", got)
	}
	if err := e.RemoveEdgeProp(eid, "w"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.EdgeProp(eid, "w"); ok {
		t.Fatal("removed edge prop visible")
	}
}

func testRemoveVertexCascades(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	hub, _ := e.AddVertex(core.Props{"k": core.S("hub")})
	var spokes []core.ID
	var edges []core.ID
	for i := 0; i < 5; i++ {
		s, _ := e.AddVertex(nil)
		spokes = append(spokes, s)
		var eid core.ID
		if i%2 == 0 {
			eid, _ = e.AddEdge(hub, s, "out", nil)
		} else {
			eid, _ = e.AddEdge(s, hub, "in", core.Props{"i": core.I(int64(i))})
		}
		edges = append(edges, eid)
	}
	if err := e.RemoveVertex(hub); err != nil {
		t.Fatal(err)
	}
	for _, eid := range edges {
		if e.HasEdge(eid) {
			t.Fatalf("edge %d survived vertex removal", eid)
		}
	}
	if n, _ := e.CountEdges(); n != 0 {
		t.Fatalf("edge count after cascade = %d", n)
	}
	for _, s := range spokes {
		if !e.HasVertex(s) {
			t.Fatalf("spoke %d disappeared", s)
		}
		if n := core.Drain(e.IncidentEdges(s, core.DirBoth)); n != 0 {
			t.Fatalf("spoke %d still sees %d edges", s, n)
		}
	}
}

func testCounts(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	if n, _ := e.CountVertices(); n != 0 {
		t.Fatalf("empty engine has %d vertices", n)
	}
	var vs []core.ID
	for i := 0; i < 10; i++ {
		v, _ := e.AddVertex(nil)
		vs = append(vs, v)
	}
	for i := 0; i < 9; i++ {
		e.AddEdge(vs[i], vs[i+1], "n", nil)
	}
	if n, _ := e.CountVertices(); n != 10 {
		t.Fatalf("CountVertices = %d", n)
	}
	if n, _ := e.CountEdges(); n != 9 {
		t.Fatalf("CountEdges = %d", n)
	}
	e.RemoveVertex(vs[5]) // cascades 2 edges
	if n, _ := e.CountVertices(); n != 9 {
		t.Fatalf("CountVertices after delete = %d", n)
	}
	if n, _ := e.CountEdges(); n != 7 {
		t.Fatalf("CountEdges after cascade = %d", n)
	}
}

func testScans(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	var want []core.ID
	for i := 0; i < 7; i++ {
		v, _ := e.AddVertex(nil)
		want = append(want, v)
	}
	e1, _ := e.AddEdge(want[0], want[1], "a", nil)
	e2, _ := e.AddEdge(want[1], want[2], "b", nil)
	e.RemoveVertex(want[6])
	got := ids(e.Vertices())
	if !sameIDs(got, ids(core.SliceIter(want[:6]))) {
		t.Fatalf("Vertices = %v, want %v", got, want[:6])
	}
	gotE := ids(e.Edges())
	if !sameIDs(gotE, ids(core.SliceIter([]core.ID{e1, e2}))) {
		t.Fatalf("Edges = %v", gotE)
	}
}

func testSearchByProperty(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	var reds []core.ID
	for i := 0; i < 10; i++ {
		var p core.Props
		if i%3 == 0 {
			p = core.Props{"color": core.S("red"), "i": core.I(int64(i))}
		} else {
			p = core.Props{"color": core.S("blue")}
		}
		v, _ := e.AddVertex(p)
		if i%3 == 0 {
			reds = append(reds, v)
		}
	}
	got := ids(e.VerticesByProp("color", core.S("red")))
	if !sameIDs(got, ids(core.SliceIter(reds))) {
		t.Fatalf("VerticesByProp = %v, want %v", got, reds)
	}
	if n := core.Drain(e.VerticesByProp("color", core.S("green"))); n != 0 {
		t.Fatalf("found %d green vertices", n)
	}
	// Edge property search.
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	e1, _ := e.AddEdge(a, b, "l", core.Props{"w": core.I(9)})
	e.AddEdge(b, a, "l", core.Props{"w": core.I(1)})
	gotE := ids(e.EdgesByProp("w", core.I(9)))
	if len(gotE) != 1 || gotE[0] != e1 {
		t.Fatalf("EdgesByProp = %v, want [%v]", gotE, e1)
	}
}

func testSearchByLabel(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	var knows []core.ID
	for i := 0; i < 4; i++ {
		id, _ := e.AddEdge(a, b, "knows", nil)
		knows = append(knows, id)
	}
	other, _ := e.AddEdge(b, a, "likes", nil)
	got := ids(e.EdgesByLabel("knows"))
	if !sameIDs(got, ids(core.SliceIter(knows))) {
		t.Fatalf("EdgesByLabel(knows) = %v", got)
	}
	if got := ids(e.EdgesByLabel("likes")); len(got) != 1 || got[0] != other {
		t.Fatalf("EdgesByLabel(likes) = %v", got)
	}
	if n := core.Drain(e.EdgesByLabel("absent")); n != 0 {
		t.Fatalf("EdgesByLabel(absent) = %d", n)
	}
}

func testTraversal(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	//      a --x--> b --y--> c
	//      a --y--> c
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	c, _ := e.AddVertex(nil)
	ab, _ := e.AddEdge(a, b, "x", nil)
	bc, _ := e.AddEdge(b, c, "y", nil)
	ac, _ := e.AddEdge(a, c, "y", nil)

	if got := ids(e.Neighbors(a, core.DirOut)); !sameIDs(got, ids(core.SliceIter([]core.ID{b, c}))) {
		t.Fatalf("out(a) = %v", got)
	}
	if got := ids(e.Neighbors(a, core.DirOut, "y")); !sameIDs(got, []core.ID{c}) {
		t.Fatalf("out(a,y) = %v", got)
	}
	if got := ids(e.Neighbors(c, core.DirIn)); !sameIDs(got, ids(core.SliceIter([]core.ID{a, b}))) {
		t.Fatalf("in(c) = %v", got)
	}
	if got := ids(e.Neighbors(b, core.DirBoth)); !sameIDs(got, ids(core.SliceIter([]core.ID{a, c}))) {
		t.Fatalf("both(b) = %v", got)
	}
	if got := ids(e.IncidentEdges(a, core.DirOut)); !sameIDs(got, ids(core.SliceIter([]core.ID{ab, ac}))) {
		t.Fatalf("outE(a) = %v", got)
	}
	if got := ids(e.IncidentEdges(c, core.DirIn, "y")); !sameIDs(got, ids(core.SliceIter([]core.ID{bc, ac}))) {
		t.Fatalf("inE(c,y) = %v", got)
	}
	if got := ids(e.IncidentEdges(b, core.DirBoth)); !sameIDs(got, ids(core.SliceIter([]core.ID{ab, bc}))) {
		t.Fatalf("bothE(b) = %v", got)
	}
	if got := ids(e.IncidentEdges(b, core.DirBoth, "x")); !sameIDs(got, []core.ID{ab}) {
		t.Fatalf("bothE(b,x) = %v", got)
	}
}

func testParallelEdgesAndLoops(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	e.AddEdge(a, b, "p", nil)
	e.AddEdge(a, b, "p", nil) // parallel
	loop, _ := e.AddEdge(a, a, "self", nil)

	if got := core.Collect(e.Neighbors(a, core.DirOut)); len(got) != 3 {
		t.Fatalf("out(a) with parallels = %v", got)
	}
	// BothE: each incident edge exactly once; the loop appears once.
	gotE := core.Collect(e.IncidentEdges(a, core.DirBoth))
	if len(gotE) != 3 {
		t.Fatalf("bothE(a) = %v (want 3 edges, loop once)", gotE)
	}
	seen := map[core.ID]int{}
	for _, id := range gotE {
		seen[id]++
	}
	if seen[loop] != 1 {
		t.Fatalf("loop appeared %d times in bothE", seen[loop])
	}
	// Loop visible from both directions.
	if got := ids(e.IncidentEdges(a, core.DirIn)); len(got) != 1 || got[0] != loop {
		t.Fatalf("inE(a) = %v", got)
	}
	if d, err := e.Degree(a, core.DirBoth); err != nil || d != 3 {
		t.Fatalf("degree(a) = %d %v", d, err)
	}
}

func testDegree(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	var outs []core.ID
	for i := 0; i < 6; i++ {
		v, _ := e.AddVertex(nil)
		outs = append(outs, v)
		e.AddEdge(a, v, "o", nil)
	}
	e.AddEdge(outs[0], a, "i", nil)
	if d, _ := e.Degree(a, core.DirOut); d != 6 {
		t.Fatalf("out degree = %d", d)
	}
	if d, _ := e.Degree(a, core.DirIn); d != 1 {
		t.Fatalf("in degree = %d", d)
	}
	if d, _ := e.Degree(a, core.DirBoth); d != 7 {
		t.Fatalf("both degree = %d", d)
	}
}

func testMissingIDs(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	v, _ := e.AddVertex(nil)
	const missing = core.ID(1 << 40)
	if e.HasVertex(missing) || e.HasEdge(missing) {
		t.Fatal("missing ids reported present")
	}
	if _, err := e.VertexProps(missing); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("VertexProps err = %v", err)
	}
	if _, err := e.EdgeProps(missing); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("EdgeProps err = %v", err)
	}
	if _, err := e.EdgeLabel(missing); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("EdgeLabel err = %v", err)
	}
	if _, _, err := e.EdgeEnds(missing); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("EdgeEnds err = %v", err)
	}
	if err := e.SetVertexProp(missing, "p", core.I(1)); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("SetVertexProp err = %v", err)
	}
	if err := e.RemoveVertex(missing); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("RemoveVertex err = %v", err)
	}
	if err := e.RemoveEdge(missing); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("RemoveEdge err = %v", err)
	}
	if _, err := e.AddEdge(v, missing, "l", nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("AddEdge to missing dst err = %v", err)
	}
	if _, err := e.AddEdge(missing, v, "l", nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("AddEdge from missing src err = %v", err)
	}
	if _, err := e.Degree(missing, core.DirBoth); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("Degree err = %v", err)
	}
}

func sampleGraph() *core.Graph {
	g := core.NewGraph(6, 8)
	for i := 0; i < 6; i++ {
		g.AddVertex(core.Props{"idx": core.I(int64(i)), "name": core.S(fmt.Sprint("v", i))})
	}
	g.AddEdge(0, 1, "a", core.Props{"w": core.I(1)})
	g.AddEdge(1, 2, "a", nil)
	g.AddEdge(2, 3, "b", nil)
	g.AddEdge(3, 0, "b", nil)
	g.AddEdge(0, 2, "c", core.Props{"w": core.I(5)})
	g.AddEdge(4, 5, "a", nil)
	g.AddEdge(5, 4, "a", nil)
	g.AddEdge(4, 4, "loop", nil)
	return g
}

func testBulkLoad(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	g := sampleGraph()
	res, err := e.BulkLoad(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VertexIDs) != 6 || len(res.EdgeIDs) != 8 {
		t.Fatalf("LoadResult sizes = %d,%d", len(res.VertexIDs), len(res.EdgeIDs))
	}
	if n, _ := e.CountVertices(); n != 6 {
		t.Fatalf("CountVertices = %d", n)
	}
	if n, _ := e.CountEdges(); n != 8 {
		t.Fatalf("CountEdges = %d", n)
	}
	for i, vid := range res.VertexIDs {
		v, ok := e.VertexProp(vid, "idx")
		if !ok || v.Int() != int64(i) {
			t.Fatalf("vertex %d props lost: %v %v", i, v, ok)
		}
	}
	for i, eid := range res.EdgeIDs {
		l, err := e.EdgeLabel(eid)
		if err != nil || l != g.EdgeL[i].Label {
			t.Fatalf("edge %d label = %q %v", i, l, err)
		}
		src, dst, _ := e.EdgeEnds(eid)
		if src != res.VertexIDs[g.EdgeL[i].Src] || dst != res.VertexIDs[g.EdgeL[i].Dst] {
			t.Fatalf("edge %d endpoints wrong", i)
		}
	}
	if w, ok := e.EdgeProp(res.EdgeIDs[4], "w"); !ok || w != core.I(5) {
		t.Fatalf("edge prop lost: %v %v", w, ok)
	}
	// Topology check: out(0) = {1, 2}.
	got := ids(e.Neighbors(res.VertexIDs[0], core.DirOut))
	want := ids(core.SliceIter([]core.ID{res.VertexIDs[1], res.VertexIDs[2]}))
	if !sameIDs(got, want) {
		t.Fatalf("out(v0) = %v, want %v", got, want)
	}
}

func testPropertyIndex(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	var want []core.ID
	for i := 0; i < 30; i++ {
		v, _ := e.AddVertex(core.Props{"mod": core.I(int64(i % 3))})
		if i%3 == 1 {
			want = append(want, v)
		}
	}
	err := e.BuildVertexPropIndex("mod")
	if errors.Is(err, core.ErrUnsupported) {
		t.Skip("engine has no user-controlled attribute indexes (as in the paper)")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasVertexPropIndex("mod") {
		t.Fatal("index not reported")
	}
	got := ids(e.VerticesByProp("mod", core.I(1)))
	if !sameIDs(got, ids(core.SliceIter(want))) {
		t.Fatalf("indexed search = %v, want %v", got, want)
	}
	// Index must track subsequent mutations.
	v, _ := e.AddVertex(core.Props{"mod": core.I(1)})
	e.SetVertexProp(want[0], "mod", core.I(2))
	e.RemoveVertex(want[1])
	got = ids(e.VerticesByProp("mod", core.I(1)))
	want2 := append([]core.ID{v}, want[2:]...)
	if !sameIDs(got, ids(core.SliceIter(want2))) {
		t.Fatalf("indexed search after mutations = %v, want %v", got, want2)
	}
}

func testSpaceUsage(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	empty := e.SpaceUsage().Total
	g := sampleGraph()
	if _, err := e.BulkLoad(g); err != nil {
		t.Fatal(err)
	}
	loaded := e.SpaceUsage()
	if loaded.Total <= empty {
		t.Fatalf("space did not grow on load: %d -> %d", empty, loaded.Total)
	}
	if len(loaded.Breakdown) == 0 {
		t.Fatal("space report has no breakdown")
	}
	var sum int64
	for _, b := range loaded.Breakdown {
		sum += b
	}
	if sum != loaded.Total {
		t.Fatalf("breakdown sums to %d, total %d", sum, loaded.Total)
	}
}

func testMeta(t *testing.T, newEngine func() core.Engine) {
	e := newEngine()
	defer e.Close()
	m := e.Meta()
	if m.Name == "" || m.Storage == "" || m.EdgeTraversal == "" || m.Gremlin == "" {
		t.Fatalf("incomplete meta: %+v", m)
	}
	if m.Kind != core.KindNative && m.Kind != core.KindHybrid {
		t.Fatalf("bad kind %q", m.Kind)
	}
}

// testRandomizedAgainstReference loads a random graph and checks every
// traversal surface against a reference adjacency computed from the
// dataset, then applies random mutations and re-checks.
func testRandomizedAgainstReference(t *testing.T, newEngine func() core.Engine) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		e := newEngine()
		nv := 8 + rng.Intn(20)
		ne := 2 * nv
		g := core.NewGraph(nv, ne)
		for i := 0; i < nv; i++ {
			g.AddVertex(core.Props{"n": core.I(int64(i))})
		}
		labels := []string{"x", "y", "z"}
		for i := 0; i < ne; i++ {
			g.AddEdge(rng.Intn(nv), rng.Intn(nv), labels[rng.Intn(3)], nil)
		}
		res, err := e.BulkLoad(g)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstReference(t, e, g, res)

		// Random deletions, then re-check.
		alive := make([]bool, ne)
		for i := range alive {
			alive[i] = true
		}
		for i := 0; i < ne/4; i++ {
			k := rng.Intn(ne)
			if alive[k] {
				if err := e.RemoveEdge(res.EdgeIDs[k]); err != nil {
					t.Fatal(err)
				}
				alive[k] = false
			}
		}
		g2 := core.NewGraph(nv, ne)
		g2.VProps = g.VProps
		edgeIDs2 := make([]core.ID, 0, ne)
		for i, a := range alive {
			if a {
				g2.EdgeL = append(g2.EdgeL, g.EdgeL[i])
				edgeIDs2 = append(edgeIDs2, res.EdgeIDs[i])
			}
		}
		checkAgainstReference(t, e, g2, &core.LoadResult{VertexIDs: res.VertexIDs, EdgeIDs: edgeIDs2})
		e.Close()
	}
}

func checkAgainstReference(t *testing.T, e core.Engine, g *core.Graph, res *core.LoadResult) {
	t.Helper()
	outRef := make(map[core.ID][]core.ID)
	inRef := make(map[core.ID][]core.ID)
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		s, d := res.VertexIDs[er.Src], res.VertexIDs[er.Dst]
		outRef[s] = append(outRef[s], d)
		inRef[d] = append(inRef[d], s)
	}
	for i, vid := range res.VertexIDs {
		gotOut := ids(e.Neighbors(vid, core.DirOut))
		wantOut := ids(core.SliceIter(outRef[vid]))
		if !sameIDs(gotOut, wantOut) {
			t.Fatalf("vertex %d out = %v, want %v", i, gotOut, wantOut)
		}
		gotIn := ids(e.Neighbors(vid, core.DirIn))
		wantIn := ids(core.SliceIter(inRef[vid]))
		if !sameIDs(gotIn, wantIn) {
			t.Fatalf("vertex %d in = %v, want %v", i, gotIn, wantIn)
		}
		d, err := e.Degree(vid, core.DirOut)
		if err != nil || d != int64(len(outRef[vid])) {
			t.Fatalf("vertex %d out degree = %d (%v), want %d", i, d, err, len(outRef[vid]))
		}
	}
	if n, _ := e.CountEdges(); n != int64(g.NumEdges()) {
		t.Fatalf("CountEdges = %d, want %d", n, g.NumEdges())
	}
}
