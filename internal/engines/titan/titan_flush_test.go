package titan

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestOperationsAcrossFlushBoundaries interleaves graph mutations with
// forced memtable flushes, so every read path must merge the memtable
// with multiple runs and resolve tombstones across them.
func TestOperationsAcrossFlushBoundaries(t *testing.T) {
	for _, v := range []Version{V05, V10} {
		t.Run(fmt.Sprint("v", v), func(t *testing.T) {
			e := New(v)
			defer e.Close()
			hub, _ := e.AddVertex(core.Props{"name": core.S("hub")})
			var spokes []core.ID
			var edges []core.ID
			for i := 0; i < 12; i++ {
				s, _ := e.AddVertex(core.Props{"i": core.I(int64(i))})
				spokes = append(spokes, s)
				eid, _ := e.AddEdge(hub, s, fmt.Sprint("l", i%3), core.Props{"w": core.I(int64(i))})
				edges = append(edges, eid)
				if i%4 == 3 {
					e.kv.Flush()
				}
			}
			// Delete a few edges: tombstones land in a newer generation
			// than the columns they shadow.
			for _, k := range []int{1, 5, 9} {
				if err := e.RemoveEdge(edges[k]); err != nil {
					t.Fatal(err)
				}
			}
			e.kv.Flush()
			if d, _ := e.Degree(hub, core.DirOut); d != 9 {
				t.Fatalf("degree after cross-run tombstones = %d, want 9", d)
			}
			// Update a property that lives in an old run; the new value
			// must shadow it.
			if err := e.SetVertexProp(spokes[0], "i", core.I(100)); err != nil {
				t.Fatal(err)
			}
			if got, _ := e.VertexProp(spokes[0], "i"); got != core.I(100) {
				t.Fatalf("prop across runs = %v", got)
			}
			// Compact everything and re-verify.
			e.kv.Flush()
			e.kv.Compact()
			if d, _ := e.Degree(hub, core.DirOut); d != 9 {
				t.Fatalf("degree after compaction = %d", d)
			}
			if n, _ := e.CountEdges(); n != 9 {
				t.Fatalf("edge count after compaction = %d", n)
			}
			for i, eid := range edges {
				want := i != 1 && i != 5 && i != 9
				if e.HasEdge(eid) != want {
					t.Fatalf("edge %d present=%v want %v", i, e.HasEdge(eid), want)
				}
			}
		})
	}
}

// TestAdjacencyDeltaRoundTrip checks the varint delta encoding for
// neighbours far above and below the row id.
func TestAdjacencyDeltaRoundTrip(t *testing.T) {
	for _, pair := range [][2]core.ID{{0, 1000}, {1000, 0}, {5, 5}, {7, 6}} {
		key := edgeColKey(pair[0], colOutEdge, 3, pair[1], 42)
		tok, other, eid := parseEdgeCol(pair[0], key)
		if tok != 3 || other != pair[1] || eid != 42 {
			t.Fatalf("round trip (%d,%d): got tok=%d other=%d eid=%d", pair[0], pair[1], tok, other, eid)
		}
	}
}
