// Package titan implements the hybrid engine modelled on Titan over
// Cassandra as the paper characterizes it: the graph is a collection of
// adjacency lists stored in a log-structured column store
// (internal/lsm plays the Cassandra role).
//
// Architecture reproduced (Section 3.2):
//
//   - each vertex is a row; its properties and its incident edges are
//     columns of that row, so every edge traversal goes through the
//     row-key index (memtable + SSTable probes);
//   - neighbour vertex IDs inside adjacency columns are delta/varint
//     encoded — the compaction trick that makes Titan the most space-
//     efficient engine on hub-heavy graphs (Figure 1);
//   - deletes write tombstones instead of removing data, which is why
//     Titan is *faster* at deletion than at insertion in Figure 3;
//   - writes pass through consistency checks and the storage
//     serialization path, making single-item CUD among the slowest of
//     the study;
//   - v0.5 performs per-write existence/duplicate read-checks (the
//     "consistency checks and schema inference" the paper disabled for
//     loading); v1.0 drops part of that and adds a row cache, which is
//     what made some cached complex queries look unrepresentatively
//     fast (Section 6.3).
package titan

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/lsm"
)

// Version selects the modelled Titan release.
type Version int

// Supported versions.
const (
	V05 Version = iota // consistency checks on writes, no row cache
	V10                // production release: row cache, leaner writes
)

// Key layout: tag(1) | object id (8, big-endian) | column kind (1) | ...
const (
	tagVertexRow = 'V'
	tagEdgeRow   = 'E'
)

const (
	colExists  byte = iota
	colProp         // | propTok(4) -> value
	colOutEdge      // | labelTok(4) | varint(zigzag(dst-id)) varint(eid)
	colInEdge       // | labelTok(4) | varint(zigzag(src-id)) varint(eid)
)

// rowPrefixLen is tag+id+colkind — the row-cache granularity.
const rowPrefixLen = 10

// Engine is a Titan-style columnar graph store.
type Engine struct {
	core.PlanStatsHolder

	version Version
	kv      *lsm.Store

	labels   []string
	labelID  map[string]uint32
	propKeys []string
	propID   map[string]uint32

	nextID int64

	vindexes map[string]map[core.Value]map[core.ID]struct{}
}

// New returns an empty engine of the given version.
func New(v Version) *Engine {
	opts := lsm.DefaultOptions()
	if v == V10 {
		opts.CachePrefixLen = rowPrefixLen
	}
	return &Engine{
		version:  v,
		kv:       lsm.New(opts),
		labelID:  make(map[string]uint32),
		propID:   make(map[string]uint32),
		vindexes: make(map[string]map[core.Value]map[core.ID]struct{}),
	}
}

// Meta implements core.Engine.
func (e *Engine) Meta() core.EngineMeta {
	name, gremlin := "titan-0.5", "2.6"
	if e.version == V10 {
		name, gremlin = "titan-1.0", "3.0"
	}
	return core.EngineMeta{
		Name:          name,
		Kind:          core.KindHybrid,
		Substrate:     "Columnar",
		Storage:       "Vertex-indexed adjacency list",
		EdgeTraversal: "Row-key index",
		Gremlin:       gremlin,
		Execution:     "Programming API, optimized",
		Optimized:     true,
	}
}

func (e *Engine) labelTok(l string) uint32 {
	if t, ok := e.labelID[l]; ok {
		return t
	}
	t := uint32(len(e.labels))
	e.labelID[l] = t
	e.labels = append(e.labels, l)
	return t
}

func (e *Engine) propTok(p string) uint32 {
	if t, ok := e.propID[p]; ok {
		return t
	}
	t := uint32(len(e.propKeys))
	e.propID[p] = t
	e.propKeys = append(e.propKeys, p)
	return t
}

// --- key construction ---

func rowKey(tag byte, id core.ID, kind byte) []byte {
	k := make([]byte, 0, rowPrefixLen)
	k = append(k, tag)
	k = enc.Uint64(k, uint64(id))
	return append(k, kind)
}

func propKey(tag byte, id core.ID, tok uint32) []byte {
	k := rowKey(tag, id, colProp)
	return binary.BigEndian.AppendUint32(k, tok)
}

func edgeColPrefix(id core.ID, kind byte, tok uint32) []byte {
	k := rowKey(tagVertexRow, id, kind)
	return binary.BigEndian.AppendUint32(k, tok)
}

// edgeColKey encodes the adjacency column: the neighbour is stored as a
// zigzag varint *delta* from the row's own id — the compact-ID encoding
// behind Titan's space advantage on high-degree graphs.
func edgeColKey(id core.ID, kind byte, tok uint32, other core.ID, eid core.ID) []byte {
	k := edgeColPrefix(id, kind, tok)
	k = binary.AppendVarint(k, int64(other)-int64(id))
	return binary.AppendVarint(k, int64(eid))
}

// parseEdgeCol decodes labelTok, neighbour, and edge id from an
// adjacency column key of row id.
func parseEdgeCol(id core.ID, key []byte) (tok uint32, other core.ID, eid core.ID) {
	rest := key[rowPrefixLen:]
	tok = binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	delta, n := binary.Varint(rest)
	eidv, _ := binary.Varint(rest[n:])
	return tok, core.ID(int64(id) + delta), core.ID(eidv)
}

// --- value encoding ---

func encodeValue(v core.Value) []byte {
	out := []byte{byte(v.Kind())}
	switch v.Kind() {
	case core.KindString:
		out = append(out, v.Str()...)
	case core.KindInt:
		out = binary.BigEndian.AppendUint64(out, uint64(v.Int()))
	case core.KindFloat:
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v.Float()))
	case core.KindBool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		out = append(out, b)
	}
	return out
}

func decodeValue(b []byte) core.Value {
	if len(b) == 0 {
		return core.Nil
	}
	switch core.Kind(b[0]) {
	case core.KindString:
		return core.S(string(b[1:]))
	case core.KindInt:
		return core.I(int64(binary.BigEndian.Uint64(b[1:])))
	case core.KindFloat:
		return core.F(math.Float64frombits(binary.BigEndian.Uint64(b[1:])))
	case core.KindBool:
		return core.B(b[1] == 1)
	default:
		return core.Nil
	}
}

// edge row value: src(8) dst(8) labelTok(4)
func encodeEdgeRow(src, dst core.ID, tok uint32) []byte {
	out := binary.BigEndian.AppendUint64(nil, uint64(src))
	out = binary.BigEndian.AppendUint64(out, uint64(dst))
	return binary.BigEndian.AppendUint32(out, tok)
}

func decodeEdgeRow(b []byte) (src, dst core.ID, tok uint32) {
	return core.ID(binary.BigEndian.Uint64(b)),
		core.ID(binary.BigEndian.Uint64(b[8:])),
		binary.BigEndian.Uint32(b[16:])
}

// --- index helpers ---

func (e *Engine) indexAdd(name string, v core.Value, id core.ID) {
	idx, ok := e.vindexes[name]
	if !ok {
		return
	}
	set := idx[v]
	if set == nil {
		set = make(map[core.ID]struct{})
		idx[v] = set
	}
	set[id] = struct{}{}
}

func (e *Engine) indexRemove(name string, v core.Value, id core.ID) {
	if idx, ok := e.vindexes[name]; ok {
		if set := idx[v]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(idx, v)
			}
		}
	}
}

// ConcurrentWrites implements core.ConcurrentWriter: the LSM store's
// read-side row cache is internally locked and never affects results,
// so under core.Guard's exclusive-writer discipline mixed read/write
// workloads are serial-schedule consistent.
func (e *Engine) ConcurrentWrites() bool { return true }
