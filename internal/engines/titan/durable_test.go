package titan

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engines/enginetest"
	"repro/internal/lsm"
	"repro/internal/lsm/fsim"
	"repro/internal/lsm/wal"
)

// durableOpts keeps the tests' thresholds small enough to exercise
// flush, compaction and value separation on tiny graphs.
func durableOpts() lsm.OpenOptions {
	return lsm.OpenOptions{
		Store: lsm.Options{FlushBytes: 1 << 10, CompactAt: 3, CachePrefixLen: rowPrefixLen},
		WAL:   wal.Options{SegmentBytes: 8 << 10, ValueThreshold: 64, GroupCommitOps: 8},
	}
}

// TestDurableConformance runs the full engine battery on durable
// titan instances rooted in fresh directories.
func TestDurableConformance(t *testing.T) {
	n := 0
	enginetest.Run(t, func() core.Engine {
		n++
		e, _, err := OpenOptions(V10, fmt.Sprintf("%s/e%d", t.TempDir(), n), durableOpts())
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
}

// TestDurableConcurrency runs the concurrency battery (use -race) on
// durable engines: the WAL is single-writer behind core.Guard.
func TestDurableConcurrency(t *testing.T) {
	n := 0
	enginetest.RunConcurrency(t, func() core.Engine {
		n++
		e, _, err := OpenOptions(V10, fmt.Sprintf("%s/e%d", t.TempDir(), n), durableOpts())
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
}

func buildSmallGraph() *core.Graph {
	g := core.NewGraph(4, 4)
	g.AddVertex(core.Props{"name": core.S("a"), "bio": core.S(string(make([]byte, 100)))})
	g.AddVertex(core.Props{"name": core.S("b")})
	g.AddVertex(core.Props{"name": core.S("c")})
	g.AddVertex(nil)
	g.AddEdge(0, 1, "knows", core.Props{"w": core.I(1)})
	g.AddEdge(1, 2, "knows", nil)
	g.AddEdge(2, 0, "likes", nil)
	g.AddEdge(3, 3, "likes", nil)
	return g
}

// TestDurableReopenRoundTrip bulk-loads, mutates, closes, reopens:
// dictionaries, allocator, indexes and graph content must all come
// back, and reopening must not write to the log (byte-idempotent
// open).
func TestDurableReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, _, err := OpenOptions(V10, dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.BulkLoad(buildSmallGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.BuildVertexPropIndex("name"); err != nil {
		t.Fatal(err)
	}
	extra, err := e.AddVertex(core.Props{"name": core.S("d")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddEdge(extra, res.VertexIDs[0], "follows", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveEdge(res.EdgeIDs[1]); err != nil {
		t.Fatal(err)
	}
	wantNext := e.nextID
	lsnBefore, _, _ := e.kv.WALStats()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r, rst, err := OpenOptions(V10, dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rst.Records == 0 {
		t.Fatal("reopen replayed nothing")
	}
	if lsn, _, _ := r.kv.WALStats(); lsn != lsnBefore {
		t.Fatalf("reopen moved the log: lsn %d, want %d", lsn, lsnBefore)
	}
	if r.nextID != wantNext {
		t.Fatalf("nextID = %d, want %d", r.nextID, wantNext)
	}
	if nv, _ := r.CountVertices(); nv != 5 {
		t.Fatalf("vertices = %d, want 5", nv)
	}
	if ne, _ := r.CountEdges(); ne != 4 {
		t.Fatalf("edges = %d, want 4", ne)
	}
	if v, ok := r.VertexProp(res.VertexIDs[0], "bio"); !ok || len(v.Str()) != 100 {
		t.Fatalf("separated bio property lost: %v %v", v, ok)
	}
	if !r.HasVertexPropIndex("name") {
		t.Fatal("index definition lost")
	}
	ids := core.Collect(r.VerticesByProp("name", core.S("d")))
	if len(ids) != 1 || ids[0] != extra {
		t.Fatalf("index lookup after reopen = %v, want [%d]", ids, extra)
	}
	if lbl, err := r.EdgeLabel(res.EdgeIDs[3]); err != nil || lbl != "likes" {
		t.Fatalf("label dictionary broken: %q %v", lbl, err)
	}
	if r.HasEdge(res.EdgeIDs[1]) {
		t.Fatal("removed edge resurrected")
	}
	if rep := r.Audit(); !rep.Ok() {
		t.Fatalf("audit after reopen: %v", rep.Problems)
	}

	// Allocation after reopen must not collide with live objects.
	more, err := r.AddVertex(nil)
	if err != nil {
		t.Fatal(err)
	}
	if more < core.ID(wantNext) {
		t.Fatalf("reused id %d (allocator was at %d)", more, wantNext)
	}
}

// TestDurableCrashAudit crashes a simulated filesystem at several
// failpoints mid-write-storm; every recovered engine must pass Audit
// — the graph-level invariant that WAL tx units protect (an edge row
// never splits from its adjacency columns).
func TestDurableCrashAudit(t *testing.T) {
	storm := func(e *Engine) {
		res, err := e.BulkLoad(buildSmallGraph())
		if err != nil {
			return
		}
		ids := append([]core.ID(nil), res.VertexIDs...)
		for i := 0; i < 30; i++ {
			if e.kv.Err() != nil {
				return
			}
			switch i % 5 {
			case 0:
				id, err := e.AddVertex(core.Props{"n": core.I(int64(i))})
				if err == nil {
					ids = append(ids, id)
				}
			case 1, 2:
				e.AddEdge(ids[i%len(ids)], ids[(i+1)%len(ids)], "w", nil)
			case 3:
				e.SetVertexProp(ids[i%len(ids)], "n", core.I(int64(-i)))
			case 4:
				e.RemoveVertex(ids[len(ids)-1])
				ids = ids[:len(ids)-1]
			}
		}
	}

	// Bound the matrix with a fault-free dry run.
	dry := fsim.NewMem(fsim.Faults{})
	o := durableOpts()
	o.FS = dry
	e, _, err := OpenOptions(V10, "g", o)
	if err != nil {
		t.Fatal(err)
	}
	storm(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	total := dry.Ops()
	if total < 20 {
		t.Fatalf("storm produced only %d fs ops", total)
	}

	step := total/25 + 1
	for n := 1; n <= total; n += step {
		m := fsim.NewMem(fsim.Faults{CrashAtOp: n, TearWrites: true, DropRenames: true, Seed: int64(n)})
		o := durableOpts()
		o.FS = m
		if e, _, err := OpenOptions(V10, "g", o); err == nil {
			storm(e)
		}
		o.FS = m.Image()
		rec, _, err := OpenOptions(V10, "g", o)
		if err != nil {
			t.Fatalf("n=%d: recovery failed: %v", n, err)
		}
		if rep := rec.Audit(); !rep.Ok() {
			t.Fatalf("n=%d: audit failed: %v", n, rep.Problems)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("n=%d: close: %v", n, err)
		}
	}
}
