package titan

import (
	"sort"

	"repro/internal/core"
	"repro/internal/enc"
)

// checkedWrite models the v0.5 consistency machinery: reads verifying
// the object's existence precede the write. v1.0 trimmed this path.
func (e *Engine) checkedWrite(tag byte, id core.ID) {
	if e.version == V05 {
		_, _ = e.kv.Get(rowKey(tag, id, colExists))
		// Duplicate-detection read against the row's property columns.
		e.kv.ScanPrefix(rowKey(tag, id, colProp), func(_, _ []byte) bool { return false })
	}
}

// --- vertex CRUD ---

// AddVertex implements core.Engine. The row writes plus the ID
// allocator update form one atomic WAL unit in durable mode.
func (e *Engine) AddVertex(props core.Props) (core.ID, error) {
	var id core.ID
	e.kv.Tx(func() {
		id = e.allocID()
		e.checkedWrite(tagVertexRow, id)
		e.kv.Put(rowKey(tagVertexRow, id, colExists), nil)
		for k, v := range props {
			e.kv.Put(propKey(tagVertexRow, id, e.ensureProp(k)), encodeValue(v))
			e.indexAdd(k, v, id)
		}
	})
	return id, nil
}

// HasVertex implements core.Engine.
func (e *Engine) HasVertex(id core.ID) bool {
	if id < 0 {
		return false
	}
	_, ok := e.kv.Get(rowKey(tagVertexRow, id, colExists))
	return ok
}

// VertexProps implements core.Engine: a row scan over property columns.
func (e *Engine) VertexProps(id core.ID) (core.Props, error) {
	if !e.HasVertex(id) {
		return nil, core.ErrNotFound
	}
	return e.rowProps(tagVertexRow, id), nil
}

func (e *Engine) rowProps(tag byte, id core.ID) core.Props {
	p := core.Props{}
	e.kv.ScanPrefix(rowKey(tag, id, colProp), func(k, v []byte) bool {
		tok := bigEndianU32(k[rowPrefixLen:])
		p[e.propKeys[tok]] = decodeValue(v)
		return true
	})
	if len(p) == 0 {
		return nil
	}
	return p
}

func bigEndianU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// VertexProp implements core.Engine.
func (e *Engine) VertexProp(id core.ID, name string) (core.Value, bool) {
	if !e.HasVertex(id) {
		return core.Nil, false
	}
	tok, ok := e.propID[name]
	if !ok {
		return core.Nil, false
	}
	b, ok := e.kv.Get(propKey(tagVertexRow, id, tok))
	if !ok {
		return core.Nil, false
	}
	return decodeValue(b), true
}

// SetVertexProp implements core.Engine.
func (e *Engine) SetVertexProp(id core.ID, name string, v core.Value) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	e.kv.Tx(func() {
		e.checkedWrite(tagVertexRow, id)
		if _, indexed := e.vindexes[name]; indexed {
			if old, had := e.VertexProp(id, name); had {
				e.indexRemove(name, old, id)
			}
			e.indexAdd(name, v, id)
		}
		e.kv.Put(propKey(tagVertexRow, id, e.ensureProp(name)), encodeValue(v))
	})
	return nil
}

// RemoveVertexProp implements core.Engine: a tombstone write.
func (e *Engine) RemoveVertexProp(id core.ID, name string) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	if tok, ok := e.propID[name]; ok {
		if _, indexed := e.vindexes[name]; indexed {
			if old, had := e.VertexProp(id, name); had {
				e.indexRemove(name, old, id)
			}
		}
		e.kv.Delete(propKey(tagVertexRow, id, tok))
	}
	return nil
}

// RemoveVertex implements core.Engine: tombstones for the whole row plus
// cascaded edge removals.
func (e *Engine) RemoveVertex(id core.ID) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	for name := range e.vindexes {
		if v, had := e.VertexProp(id, name); had {
			e.indexRemove(name, v, id)
		}
	}
	var eids []core.ID
	for _, kind := range []byte{colOutEdge, colInEdge} {
		e.kv.ScanPrefix(rowKey(tagVertexRow, id, kind), func(k, _ []byte) bool {
			_, _, eid := parseEdgeCol(id, k)
			eids = append(eids, eid)
			return true
		})
	}
	for _, eid := range eids {
		if e.HasEdge(eid) {
			if err := e.RemoveEdge(eid); err != nil {
				return err
			}
		}
	}
	// Tombstone the remaining row columns.
	var doomed [][]byte
	for _, kind := range []byte{colExists, colProp, colOutEdge, colInEdge} {
		e.kv.ScanPrefix(rowKey(tagVertexRow, id, kind), func(k, _ []byte) bool {
			doomed = append(doomed, append([]byte(nil), k...))
			return true
		})
	}
	e.kv.Tx(func() {
		for _, k := range doomed {
			e.kv.Delete(k)
		}
	})
	return nil
}

// --- edge CRUD ---

// AddEdge implements core.Engine: one edge row plus an adjacency column
// in each endpoint row.
func (e *Engine) AddEdge(src, dst core.ID, label string, props core.Props) (core.ID, error) {
	if !e.HasVertex(src) || !e.HasVertex(dst) {
		return core.NoID, core.ErrNotFound
	}
	var eid core.ID
	e.kv.Tx(func() {
		eid = e.allocID()
		tok := e.ensureLabel(label)
		e.checkedWrite(tagVertexRow, src)
		e.kv.Put(rowKey(tagEdgeRow, eid, colExists), encodeEdgeRow(src, dst, tok))
		e.kv.Put(edgeColKey(src, colOutEdge, tok, dst, eid), nil)
		e.kv.Put(edgeColKey(dst, colInEdge, tok, src, eid), nil)
		for k, v := range props {
			e.kv.Put(propKey(tagEdgeRow, eid, e.ensureProp(k)), encodeValue(v))
		}
	})
	return eid, nil
}

func (e *Engine) edgeRow(id core.ID) (src, dst core.ID, tok uint32, ok bool) {
	if id < 0 {
		return 0, 0, 0, false
	}
	b, ok := e.kv.Get(rowKey(tagEdgeRow, id, colExists))
	if !ok {
		return 0, 0, 0, false
	}
	src, dst, tok = decodeEdgeRow(b)
	return src, dst, tok, true
}

// HasEdge implements core.Engine.
func (e *Engine) HasEdge(id core.ID) bool {
	_, _, _, ok := e.edgeRow(id)
	return ok
}

// EdgeLabel implements core.Engine.
func (e *Engine) EdgeLabel(id core.ID) (string, error) {
	_, _, tok, ok := e.edgeRow(id)
	if !ok {
		return "", core.ErrNotFound
	}
	return e.labels[tok], nil
}

// EdgeEnds implements core.Engine.
func (e *Engine) EdgeEnds(id core.ID) (core.ID, core.ID, error) {
	src, dst, _, ok := e.edgeRow(id)
	if !ok {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	return src, dst, nil
}

// EdgeProps implements core.Engine.
func (e *Engine) EdgeProps(id core.ID) (core.Props, error) {
	if !e.HasEdge(id) {
		return nil, core.ErrNotFound
	}
	return e.rowProps(tagEdgeRow, id), nil
}

// EdgeProp implements core.Engine.
func (e *Engine) EdgeProp(id core.ID, name string) (core.Value, bool) {
	if !e.HasEdge(id) {
		return core.Nil, false
	}
	tok, ok := e.propID[name]
	if !ok {
		return core.Nil, false
	}
	b, ok := e.kv.Get(propKey(tagEdgeRow, id, tok))
	if !ok {
		return core.Nil, false
	}
	return decodeValue(b), true
}

// SetEdgeProp implements core.Engine.
func (e *Engine) SetEdgeProp(id core.ID, name string, v core.Value) error {
	if !e.HasEdge(id) {
		return core.ErrNotFound
	}
	e.kv.Tx(func() {
		e.checkedWrite(tagEdgeRow, id)
		e.kv.Put(propKey(tagEdgeRow, id, e.ensureProp(name)), encodeValue(v))
	})
	return nil
}

// RemoveEdgeProp implements core.Engine.
func (e *Engine) RemoveEdgeProp(id core.ID, name string) error {
	if !e.HasEdge(id) {
		return core.ErrNotFound
	}
	if tok, ok := e.propID[name]; ok {
		e.kv.Delete(propKey(tagEdgeRow, id, tok))
	}
	return nil
}

// RemoveEdge implements core.Engine: pure tombstone writes — the reason
// the paper measures Titan's deletions an order of magnitude faster
// than its insertions.
func (e *Engine) RemoveEdge(id core.ID) error {
	src, dst, tok, ok := e.edgeRow(id)
	if !ok {
		return core.ErrNotFound
	}
	var doomed [][]byte
	e.kv.ScanPrefix(rowKey(tagEdgeRow, id, colProp), func(k, _ []byte) bool {
		doomed = append(doomed, append([]byte(nil), k...))
		return true
	})
	e.kv.Tx(func() {
		e.kv.Delete(edgeColKey(src, colOutEdge, tok, dst, id))
		e.kv.Delete(edgeColKey(dst, colInEdge, tok, src, id))
		for _, k := range doomed {
			e.kv.Delete(k)
		}
		e.kv.Delete(rowKey(tagEdgeRow, id, colExists))
	})
	return nil
}

// --- scans ---

// CountVertices implements core.Engine: a full scan over vertex
// existence columns (every probe pays the LSM read path).
func (e *Engine) CountVertices() (int64, error) {
	var n int64
	e.kv.ScanPrefix([]byte{tagVertexRow}, func(k, _ []byte) bool {
		if k[rowPrefixLen-1] == colExists {
			n++
		}
		return true
	})
	return n, nil
}

// CountEdges implements core.Engine.
func (e *Engine) CountEdges() (int64, error) {
	var n int64
	e.kv.ScanPrefix([]byte{tagEdgeRow}, func(k, _ []byte) bool {
		if k[rowPrefixLen-1] == colExists {
			n++
		}
		return true
	})
	return n, nil
}

func (e *Engine) scanRows(tag byte) []core.ID {
	var out []core.ID
	e.kv.ScanPrefix([]byte{tag}, func(k, _ []byte) bool {
		if k[rowPrefixLen-1] == colExists {
			id, _ := enc.TakeUint64(k[1:])
			out = append(out, core.ID(id))
		}
		return true
	})
	return out
}

// Vertices implements core.Engine.
func (e *Engine) Vertices() core.Iter[core.ID] {
	return core.SliceIter(e.scanRows(tagVertexRow))
}

// Edges implements core.Engine.
func (e *Engine) Edges() core.Iter[core.ID] {
	return core.SliceIter(e.scanRows(tagEdgeRow))
}

// VerticesByProp implements core.Engine: an index lookup when a
// graph-centric index exists (the 2–5 orders-of-magnitude effect of
// Figure 4(c)), a full scan with per-row probes otherwise.
func (e *Engine) VerticesByProp(name string, v core.Value) core.Iter[core.ID] {
	if idx, ok := e.vindexes[name]; ok {
		set := idx[v]
		out := make([]core.ID, 0, len(set))
		for id := range set {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return core.SliceIter(out)
	}
	tok, ok := e.propID[name]
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	want := encodeValue(v)
	return core.FilterIter(e.Vertices(), func(id core.ID) bool {
		b, ok := e.kv.Get(propKey(tagVertexRow, id, tok))
		return ok && string(b) == string(want)
	})
}

// EdgesByProp implements core.Engine.
func (e *Engine) EdgesByProp(name string, v core.Value) core.Iter[core.ID] {
	tok, ok := e.propID[name]
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	want := encodeValue(v)
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		b, ok := e.kv.Get(propKey(tagEdgeRow, id, tok))
		return ok && string(b) == string(want)
	})
}

// EdgesByLabel implements core.Engine: scan + per-edge row decode.
func (e *Engine) EdgesByLabel(label string) core.Iter[core.ID] {
	tok, ok := e.labelID[label]
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		_, _, got, ok := e.edgeRow(id)
		return ok && got == tok
	})
}

// --- traversal ---

// IncidentEdges implements core.Engine: a row-prefix scan per direction;
// label filters narrow the scanned column range (vertex-centric access).
func (e *Engine) IncidentEdges(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	if !e.HasVertex(id) {
		return core.EmptyIter[core.ID]()
	}
	collect := func(kind byte, skipLoops bool) []core.ID {
		var prefixes [][]byte
		if len(labels) == 0 {
			prefixes = [][]byte{rowKey(tagVertexRow, id, kind)}
		} else {
			for _, l := range labels {
				if tok, ok := e.labelID[l]; ok {
					prefixes = append(prefixes, edgeColPrefix(id, kind, tok))
				}
			}
		}
		var out []core.ID
		for _, p := range prefixes {
			e.kv.ScanPrefix(p, func(k, _ []byte) bool {
				_, other, eid := parseEdgeCol(id, k)
				if skipLoops && other == id {
					return true
				}
				out = append(out, eid)
				return true
			})
		}
		return out
	}
	switch d {
	case core.DirOut:
		return core.SliceIter(collect(colOutEdge, false))
	case core.DirIn:
		return core.SliceIter(collect(colInEdge, false))
	default:
		both := collect(colOutEdge, false)
		both = append(both, collect(colInEdge, true)...)
		return core.SliceIter(both)
	}
}

// Neighbors implements core.Engine: the neighbour is decoded from the
// adjacency column itself, no edge-row access needed.
func (e *Engine) Neighbors(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	if !e.HasVertex(id) {
		return core.EmptyIter[core.ID]()
	}
	collect := func(kind byte, skipLoops bool) []core.ID {
		var prefixes [][]byte
		if len(labels) == 0 {
			prefixes = [][]byte{rowKey(tagVertexRow, id, kind)}
		} else {
			for _, l := range labels {
				if tok, ok := e.labelID[l]; ok {
					prefixes = append(prefixes, edgeColPrefix(id, kind, tok))
				}
			}
		}
		var out []core.ID
		for _, p := range prefixes {
			e.kv.ScanPrefix(p, func(k, _ []byte) bool {
				_, other, _ := parseEdgeCol(id, k)
				if skipLoops && other == id {
					return true
				}
				out = append(out, other)
				return true
			})
		}
		return out
	}
	switch d {
	case core.DirOut:
		return core.SliceIter(collect(colOutEdge, false))
	case core.DirIn:
		return core.SliceIter(collect(colInEdge, false))
	default:
		both := collect(colOutEdge, false)
		both = append(both, collect(colInEdge, true)...)
		return core.SliceIter(both)
	}
}

// Degree implements core.Engine.
func (e *Engine) Degree(id core.ID, d core.Direction) (int64, error) {
	if !e.HasVertex(id) {
		return 0, core.ErrNotFound
	}
	return int64(core.Drain(e.IncidentEdges(id, d))), nil
}

// --- index / bulk / space ---

// BuildVertexPropIndex implements core.Engine (graph-centric index).
func (e *Engine) BuildVertexPropIndex(name string) error {
	if _, dup := e.vindexes[name]; dup {
		return nil
	}
	e.rebuildIndex(name)
	if e.kv.Durable() {
		e.kv.Put(metaIndexKey(name), nil)
	}
	return nil
}

// HasVertexPropIndex implements core.Engine.
func (e *Engine) HasVertexPropIndex(name string) bool {
	_, ok := e.vindexes[name]
	return ok
}

// BulkLoad implements core.Engine through the schema-first path the
// paper had to configure (consistency checks and schema inference
// disabled): all columns are built, sorted once, and installed as a
// single SSTable.
func (e *Engine) BulkLoad(g *core.Graph) (*core.LoadResult, error) {
	e.CapturePlanStats(g)
	if e.nextID != 0 {
		return e.bulkIncremental(g)
	}
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	type kvPair struct{ k, v []byte }
	// The CSR snapshot knows the exact pair count up front: one exists
	// row per object, three rows per edge (edge row + out/in columns),
	// one row per property.
	snap := g.Snapshot()
	pairs := make([]kvPair, 0, g.NumVertices()+3*g.NumEdges()+snap.VPropTotal+snap.EPropTotal)
	// Fresh engine (nextID == 0 above): the snapshot's label table is
	// exactly the token set this load interns, so pre-size the
	// dictionary. Tokens still assign in first-encounter order.
	if len(e.labels) == 0 {
		e.labelID = make(map[string]uint32, len(snap.Labels))
		e.labels = make([]string, 0, len(snap.Labels))
	}
	for i := range g.VProps {
		id := core.ID(e.nextID)
		e.nextID++
		res.VertexIDs[i] = id
		pairs = append(pairs, kvPair{rowKey(tagVertexRow, id, colExists), []byte{}})
		for k, v := range g.VProps[i] {
			pairs = append(pairs, kvPair{propKey(tagVertexRow, id, e.propTok(k)), encodeValue(v)})
		}
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		eid := core.ID(e.nextID)
		e.nextID++
		res.EdgeIDs[i] = eid
		src, dst := res.VertexIDs[er.Src], res.VertexIDs[er.Dst]
		tok := e.labelTok(er.Label)
		pairs = append(pairs,
			kvPair{rowKey(tagEdgeRow, eid, colExists), encodeEdgeRow(src, dst, tok)},
			kvPair{edgeColKey(src, colOutEdge, tok, dst, eid), []byte{}},
			kvPair{edgeColKey(dst, colInEdge, tok, src, eid), []byte{}})
		for k, v := range er.Props {
			pairs = append(pairs, kvPair{propKey(tagEdgeRow, eid, e.propTok(k)), encodeValue(v)})
		}
	}
	if e.kv.Durable() {
		// BulkLoad replaces the store's entire contents, so the meta
		// snapshot (dictionaries, allocator, index definitions) rides in
		// the same pair set; 'M' sorts between the 'E' and 'V' rows.
		mk, mv := e.metaPairs()
		for i := range mk {
			pairs = append(pairs, kvPair{mk[i], mv[i]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return string(pairs[i].k) < string(pairs[j].k) })
	keys := make([][]byte, len(pairs))
	vals := make([][]byte, len(pairs))
	for i, p := range pairs {
		keys[i] = p.k
		vals[i] = p.v
	}
	if err := e.kv.BulkLoad(keys, vals); err != nil {
		return nil, err
	}
	return res, nil
}

func (e *Engine) bulkIncremental(g *core.Graph) (*core.LoadResult, error) {
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	for i := range g.VProps {
		id, err := e.AddVertex(g.VProps[i])
		if err != nil {
			return nil, err
		}
		res.VertexIDs[i] = id
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		id, err := e.AddEdge(res.VertexIDs[er.Src], res.VertexIDs[er.Dst], er.Label, er.Props)
		if err != nil {
			return nil, err
		}
		res.EdgeIDs[i] = id
	}
	return res, nil
}

// SpaceUsage implements core.Engine.
func (e *Engine) SpaceUsage() core.SpaceReport {
	var r core.SpaceReport
	r.Add("lsm-store", e.kv.Bytes())
	var dict int64
	for _, l := range e.labels {
		dict += int64(len(l)) + 24
	}
	for _, p := range e.propKeys {
		dict += int64(len(p)) + 24
	}
	r.Add("schema", dict)
	var idx int64
	for _, m := range e.vindexes {
		idx += 48
		for v, set := range m {
			idx += v.Bytes() + int64(len(set))*16
		}
	}
	r.Add("graph-indexes", idx)
	return r
}

// Stats exposes the LSM internals (flushes, compactions, cache) for
// tests and reports.
func (e *Engine) Stats() (flushes, compacts, runs, cacheHits, cacheMisses int) {
	return e.kv.Stats()
}

// Close implements core.Engine. In durable mode this syncs and closes
// the WAL; a volatile engine has nothing to release.
func (e *Engine) Close() error { return e.kv.Close() }
