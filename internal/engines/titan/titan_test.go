package titan

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engines/enginetest"
)

func TestConformanceV05(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New(V05) })
}

func TestConformanceV10(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New(V10) })
}

func TestConcurrencyConformanceV05(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New(V05) })
}

func TestConcurrencyConformanceV10(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New(V10) })
}

func TestDeltaEncodingCompactsAdjacency(t *testing.T) {
	// A hub with many neighbours of nearby IDs must occupy less space
	// per edge than fixed-width records would: the adjacency column
	// stores varint deltas.
	hubGraph := core.NewGraph(1001, 1000)
	for i := 0; i <= 1000; i++ {
		hubGraph.AddVertex(nil)
	}
	for i := 1; i <= 1000; i++ {
		hubGraph.AddEdge(0, i, "l", nil)
	}
	e := New(V10)
	defer e.Close()
	if _, err := e.BulkLoad(hubGraph); err != nil {
		t.Fatal(err)
	}
	key := edgeColKey(0, colOutEdge, 0, 500, 1300)
	// prefix(10) + labelTok(4) + delta varint + eid varint: well under a
	// fixed 8+8 layout.
	if len(key) >= 10+4+16 {
		t.Fatalf("adjacency key not compacted: %d bytes", len(key))
	}
}

func TestDeletesAreTombstones(t *testing.T) {
	e := New(V05)
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	eid, _ := e.AddEdge(a, b, "l", nil)
	e.kv.Flush() // push the row into an immutable run, as on a settled store
	bytesBefore := e.kv.Bytes()
	if err := e.RemoveEdge(eid); err != nil {
		t.Fatal(err)
	}
	// A tombstone write *grows* the store until compaction.
	if e.kv.Bytes() <= bytesBefore {
		t.Fatalf("delete shrank the store immediately: %d -> %d", bytesBefore, e.kv.Bytes())
	}
	if e.HasEdge(eid) {
		t.Fatal("edge visible after tombstone")
	}
	if n := core.Drain(e.IncidentEdges(a, core.DirBoth)); n != 0 {
		t.Fatalf("adjacency still shows %d edges", n)
	}
}

func TestV10RowCacheServesRepeatedTraversals(t *testing.T) {
	e := New(V10)
	defer e.Close()
	hub, _ := e.AddVertex(nil)
	for i := 0; i < 10; i++ {
		v, _ := e.AddVertex(nil)
		e.AddEdge(hub, v, "l", nil)
	}
	core.Drain(e.Neighbors(hub, core.DirOut))
	core.Drain(e.Neighbors(hub, core.DirOut))
	_, _, _, hits, _ := e.Stats()
	if hits == 0 {
		t.Fatal("repeated traversal did not hit the row cache")
	}
	// Cache must not serve stale rows.
	v, _ := e.AddVertex(nil)
	e.AddEdge(hub, v, "l", nil)
	if n := core.Drain(e.Neighbors(hub, core.DirOut)); n != 11 {
		t.Fatalf("post-write traversal = %d, want 11", n)
	}
}

func TestV05ConsistencyChecksOnWrites(t *testing.T) {
	// Both versions must agree semantically; v0.5 just pays extra reads.
	e5, e10 := New(V05), New(V10)
	defer e5.Close()
	defer e10.Close()
	for i := 0; i < 10; i++ {
		a5, _ := e5.AddVertex(core.Props{"i": core.I(int64(i))})
		a10, _ := e10.AddVertex(core.Props{"i": core.I(int64(i))})
		if a5 != a10 {
			t.Fatalf("id sequences diverged: %v vs %v", a5, a10)
		}
	}
	n5, _ := e5.CountVertices()
	n10, _ := e10.CountVertices()
	if n5 != n10 || n5 != 10 {
		t.Fatalf("counts: %d vs %d", n5, n10)
	}
}

func TestBulkLoadSingleRun(t *testing.T) {
	g := core.NewGraph(200, 600)
	for i := 0; i < 200; i++ {
		g.AddVertex(core.Props{"n": core.I(int64(i))})
	}
	for i := 0; i < 600; i++ {
		g.AddEdge(i%200, (i+1)%200, "l", core.Props{"w": core.I(int64(i))})
	}
	e := New(V10)
	defer e.Close()
	res, err := e.BulkLoad(g)
	if err != nil {
		t.Fatal(err)
	}
	flushes, _, runs, _, _ := e.Stats()
	if flushes != 0 || runs != 1 {
		t.Fatalf("bulk load: flushes=%d runs=%d, want 0/1", flushes, runs)
	}
	if n, _ := e.CountEdges(); n != 600 {
		t.Fatalf("CountEdges = %d", n)
	}
	if v, ok := e.EdgeProp(res.EdgeIDs[5], "w"); !ok || v != core.I(5) {
		t.Fatalf("edge prop = %v %v", v, ok)
	}
	// A second load on a non-empty store must use the incremental path
	// and still be correct.
	res2, err := e.BulkLoad(g)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := e.CountVertices(); n != 400 {
		t.Fatalf("vertices after second load = %d", n)
	}
	if !e.HasVertex(res2.VertexIDs[0]) {
		t.Fatal("second load lost vertices")
	}
}
