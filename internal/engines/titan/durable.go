package titan

// Durable mode: the engine's LSM substrate opens over a write-ahead
// log (internal/lsm/wal) instead of living purely in memory. Beyond
// the graph rows, durability needs the engine's volatile bookkeeping
// — the label/property token dictionaries, the ID allocator, and
// which graph-centric indexes exist — persisted too, or a reopened
// store could re-issue IDs and mis-decode tokens. That state lives in
// meta rows under their own tag, written inside the same WAL
// transaction as the graph mutation they belong to, and replayed into
// the dictionaries on Open without re-logging.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/lsm"
)

// Meta rows: tag(1) | sub(1) | ...
// 'M' sorts between 'E' and 'V', and every meta key is shorter than
// rowPrefixLen, so row-cache prefixes and 'V'/'E' scans never see one.
const tagMeta = 'M'

const (
	subLabel byte = 1 // | tok(4, BE) -> label name
	subProp  byte = 2 // | tok(4, BE) -> property key name
	subNext  byte = 3 // -> nextID (8, BE)
	subIndex byte = 4 // | name -> nil (a graph-centric index exists)
)

func metaTokKey(sub byte, tok uint32) []byte {
	return binary.BigEndian.AppendUint32([]byte{tagMeta, sub}, tok)
}

func metaNextKey() []byte { return []byte{tagMeta, subNext} }

func metaIndexKey(name string) []byte {
	return append([]byte{tagMeta, subIndex}, name...)
}

// ensureLabel interns the label and, on first allocation in durable
// mode, persists the token mapping.
func (e *Engine) ensureLabel(l string) uint32 {
	if t, ok := e.labelID[l]; ok {
		return t
	}
	t := e.labelTok(l)
	if e.kv.Durable() {
		e.kv.Put(metaTokKey(subLabel, t), []byte(l))
	}
	return t
}

// ensureProp is ensureLabel for property keys.
func (e *Engine) ensureProp(p string) uint32 {
	if t, ok := e.propID[p]; ok {
		return t
	}
	t := e.propTok(p)
	if e.kv.Durable() {
		e.kv.Put(metaTokKey(subProp, t), []byte(p))
	}
	return t
}

// allocID hands out the next object ID, persisting the counter in
// durable mode so a reopened store never re-issues an ID.
func (e *Engine) allocID() core.ID {
	id := core.ID(e.nextID)
	e.nextID++
	if e.kv.Durable() {
		e.kv.Put(metaNextKey(), binary.BigEndian.AppendUint64(nil, uint64(e.nextID)))
	}
	return id
}

// Open returns a durable engine rooted at dir, recovering any
// existing WAL. Reopening is read-only with respect to the log:
// dictionaries, the ID allocator and index definitions are rebuilt
// from replayed meta rows without writing anything back.
func Open(v Version, dir string) (*Engine, *lsm.RecoveryStats, error) {
	return OpenOptions(v, dir, lsm.OpenOptions{})
}

// OpenOptions is Open with explicit store/WAL/filesystem options —
// the store knobs default to New's for the version, so tests can
// inject a simulated filesystem or tighter thresholds.
func OpenOptions(v Version, dir string, o lsm.OpenOptions) (*Engine, *lsm.RecoveryStats, error) {
	if o.Store == (lsm.Options{}) {
		o.Store = lsm.DefaultOptions()
		if v == V10 {
			o.Store.CachePrefixLen = rowPrefixLen
		}
	}
	kv, rst, err := lsm.Open(dir, o)
	if err != nil {
		return nil, nil, err
	}
	e := &Engine{
		version:  v,
		kv:       kv,
		labelID:  make(map[string]uint32),
		propID:   make(map[string]uint32),
		vindexes: make(map[string]map[core.Value]map[core.ID]struct{}),
	}
	if err := e.loadMeta(); err != nil {
		kv.Close()
		return nil, nil, err
	}
	return e, rst, nil
}

// loadMeta rebuilds the volatile bookkeeping from meta rows. Token
// scans arrive in big-endian token order, so append reconstructs the
// dictionaries exactly.
func (e *Engine) loadMeta() error {
	var bad error
	e.kv.ScanPrefix([]byte{tagMeta, subLabel}, func(k, v []byte) bool {
		tok := binary.BigEndian.Uint32(k[2:])
		if int(tok) != len(e.labels) {
			bad = fmt.Errorf("titan: label token %d out of order (have %d)", tok, len(e.labels))
			return false
		}
		e.labelID[string(v)] = tok
		e.labels = append(e.labels, string(v))
		return true
	})
	if bad != nil {
		return bad
	}
	e.kv.ScanPrefix([]byte{tagMeta, subProp}, func(k, v []byte) bool {
		tok := binary.BigEndian.Uint32(k[2:])
		if int(tok) != len(e.propKeys) {
			bad = fmt.Errorf("titan: prop token %d out of order (have %d)", tok, len(e.propKeys))
			return false
		}
		e.propID[string(v)] = tok
		e.propKeys = append(e.propKeys, string(v))
		return true
	})
	if bad != nil {
		return bad
	}
	if b, ok := e.kv.Get(metaNextKey()); ok && len(b) == 8 {
		e.nextID = int64(binary.BigEndian.Uint64(b))
	}
	var indexNames []string
	e.kv.ScanPrefix([]byte{tagMeta, subIndex}, func(k, _ []byte) bool {
		indexNames = append(indexNames, string(k[2:]))
		return true
	})
	for _, name := range indexNames {
		e.rebuildIndex(name)
	}
	return nil
}

// rebuildIndex populates a graph-centric index from the stored rows
// without logging anything.
func (e *Engine) rebuildIndex(name string) {
	e.vindexes[name] = make(map[core.Value]map[core.ID]struct{})
	it := e.Vertices()
	for id, ok := it(); ok; id, ok = it() {
		if v, has := e.VertexProp(id, name); has {
			e.indexAdd(name, v, id)
		}
	}
}

// metaPairs renders the full bookkeeping snapshot as sorted-ready kv
// pairs for BulkLoad, which replaces the store's entire contents.
func (e *Engine) metaPairs() (keys, vals [][]byte) {
	for tok, l := range e.labels {
		keys = append(keys, metaTokKey(subLabel, uint32(tok)))
		vals = append(vals, []byte(l))
	}
	for tok, p := range e.propKeys {
		keys = append(keys, metaTokKey(subProp, uint32(tok)))
		vals = append(vals, []byte(p))
	}
	keys = append(keys, metaNextKey())
	vals = append(vals, binary.BigEndian.AppendUint64(nil, uint64(e.nextID)))
	for name := range e.vindexes {
		keys = append(keys, metaIndexKey(name))
		vals = append(vals, []byte{})
	}
	return keys, vals
}

// AuditReport summarizes an integrity pass over the stored graph.
type AuditReport struct {
	Vertices int64    `json:"vertices"`
	Edges    int64    `json:"edges"`
	NextID   int64    `json:"next_id"`
	Problems []string `json:"problems,omitempty"`
}

// Ok reports whether the audit found no inconsistencies.
func (r AuditReport) Ok() bool { return len(r.Problems) == 0 }

// Audit cross-checks the row families: every edge row's endpoints
// must exist, each edge must appear in both endpoints' adjacency
// columns, every adjacency column must point at a live edge row, and
// the persisted ID allocator must be ahead of every live object. The
// serve crash-recovery smoke greps its output after a kill -9.
func (e *Engine) Audit() AuditReport {
	rep := AuditReport{NextID: e.nextID}
	problem := func(format string, args ...any) {
		if len(rep.Problems) < 20 {
			rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
		}
	}
	var maxID core.ID = -1

	vset := make(map[core.ID]struct{})
	for _, id := range e.scanRows(tagVertexRow) {
		vset[id] = struct{}{}
		rep.Vertices++
		if id > maxID {
			maxID = id
		}
	}

	type edgeEnd struct{ src, dst core.ID }
	eset := make(map[core.ID]edgeEnd)
	for _, id := range e.scanRows(tagEdgeRow) {
		rep.Edges++
		if id > maxID {
			maxID = id
		}
		src, dst, tok, ok := e.edgeRow(id)
		if !ok {
			problem("edge %d: exists row unreadable", id)
			continue
		}
		if int(tok) >= len(e.labels) {
			problem("edge %d: label token %d outside dictionary (%d labels)", id, tok, len(e.labels))
		}
		if _, ok := vset[src]; !ok {
			problem("edge %d: src vertex %d missing", id, src)
		}
		if _, ok := vset[dst]; !ok {
			problem("edge %d: dst vertex %d missing", id, dst)
		}
		eset[id] = edgeEnd{src, dst}
	}

	// Walk adjacency columns: no dangling references, and count each
	// edge's appearances to catch a missing half of the pair.
	outSeen := make(map[core.ID]struct{})
	inSeen := make(map[core.ID]struct{})
	for id := range vset {
		for _, kind := range []byte{colOutEdge, colInEdge} {
			e.kv.ScanPrefix(rowKey(tagVertexRow, id, kind), func(k, _ []byte) bool {
				_, other, eid := parseEdgeCol(id, k)
				ends, ok := eset[eid]
				if !ok {
					problem("vertex %d: adjacency column references dead edge %d", id, eid)
					return true
				}
				if kind == colOutEdge {
					if ends.src != id || ends.dst != other {
						problem("edge %d: out column on %d disagrees with edge row (%d->%d)", eid, id, ends.src, ends.dst)
					}
					outSeen[eid] = struct{}{}
				} else {
					if ends.dst != id || ends.src != other {
						problem("edge %d: in column on %d disagrees with edge row (%d->%d)", eid, id, ends.src, ends.dst)
					}
					inSeen[eid] = struct{}{}
				}
				return true
			})
		}
	}
	for eid := range eset {
		if _, ok := outSeen[eid]; !ok {
			problem("edge %d: missing out adjacency column", eid)
		}
		if _, ok := inSeen[eid]; !ok {
			problem("edge %d: missing in adjacency column", eid)
		}
	}

	if maxID >= core.ID(e.nextID) {
		problem("id allocator behind: nextID %d <= max live id %d", e.nextID, maxID)
	}
	if err := e.kv.Err(); err != nil {
		problem("store poisoned: %v", err)
	}
	return rep
}

// WALStats exposes the substrate's log position (frames written,
// durable frames, fsync count) for serving reports.
func (e *Engine) WALStats() (lsn, durable, syncs int64) {
	return e.kv.WALStats()
}
