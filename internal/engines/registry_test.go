package engines

import (
	"testing"

	"repro/internal/core"
)

func TestAllNamesConstruct(t *testing.T) {
	for _, name := range Names() {
		e, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got := e.Meta().Name; got != name {
			t.Errorf("Meta().Name = %q, registered as %q", got, name)
		}
		e.Close()
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if Constructor("nope") != nil {
		t.Fatal("Constructor returned non-nil for unknown name")
	}
}

func TestForEachVisitsAll(t *testing.T) {
	seen := map[string]bool{}
	err := ForEach(func(e core.Engine) error {
		seen[e.Meta().Name] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(Names()) {
		t.Fatalf("visited %d engines, want %d", len(seen), len(Names()))
	}
}

func TestTable1Metadata(t *testing.T) {
	// The registry must reproduce Table 1's native/hybrid split.
	wantKind := map[string]core.SystemKind{
		"arango":    core.KindHybrid,
		"blaze":     core.KindHybrid,
		"neo-1.9":   core.KindNative,
		"neo-3.0":   core.KindNative,
		"orient":    core.KindNative,
		"sparksee":  core.KindNative,
		"sqlg":      core.KindHybrid,
		"titan-0.5": core.KindHybrid,
		"titan-1.0": core.KindHybrid,
	}
	for name, want := range wantKind {
		e, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Meta().Kind; got != want {
			t.Errorf("%s: kind = %q, want %q", name, got, want)
		}
		e.Close()
	}
}
