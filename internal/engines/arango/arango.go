// Package arango implements the hybrid engine modelled on ArangoDB 2.8
// as the paper characterizes it: a document store exposed over REST,
// with graph semantics layered on JSON documents.
//
// Architecture reproduced (Section 3.2):
//
//   - every vertex and edge is a self-contained serialized JSON
//     document;
//   - a specialized hash index keyed on edge IDs gives the source,
//     destination and label of each edge without deserializing it,
//     accelerating traversals;
//   - the client/server split is simulated by actually passing every
//     interactive operation's request and response through a JSON codec
//     (the V8 server boundary) — this is the genuine per-operation cost
//     that made per-item Gremlin loading "prohibitively slow" in the
//     paper and why the suite loads via the native bulk path instead;
//   - writes are acknowledged before any durability work (the paper
//     notes updates are registered in RAM and flushed asynchronously,
//     biasing CUD timings in ArangoDB's favour — the same bias exists
//     here: no journal work happens on the write path);
//   - whole-graph edge operations must materialize (deserialize) every
//     edge document, which is why edge iteration rarely finished within
//     the paper's timeout;
//   - attribute indexes are accepted but change nothing ("ArangoDB
//     showed no difference in running times, so we suspect some defect
//     in the Gremlin implementation").
package arango

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/core"
)

// Engine is an ArangoDB-style document graph store.
type Engine struct {
	core.PlanStatsHolder

	nextID int64
	vdocs  map[core.ID][]byte
	edocs  map[core.ID][]byte

	// Edge hash index: endpoints and label token per edge, plus
	// adjacency lists of edge IDs per vertex.
	edgeIdx map[core.ID]edgeEntry
	outIdx  map[core.ID][]core.ID
	inIdx   map[core.ID][]core.ID

	labels  []string
	labelID map[string]uint32

	declaredIndexes map[string]bool
	// restBytes is atomic: every read operation crosses the simulated
	// REST boundary, and reads may run concurrently (core.Engine).
	restBytes atomic.Int64 // total bytes through the simulated REST boundary
}

type edgeEntry struct {
	src, dst core.ID
	label    uint32
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		vdocs:           make(map[core.ID][]byte),
		edocs:           make(map[core.ID][]byte),
		edgeIdx:         make(map[core.ID]edgeEntry),
		outIdx:          make(map[core.ID][]core.ID),
		inIdx:           make(map[core.ID][]core.ID),
		labelID:         make(map[string]uint32),
		declaredIndexes: make(map[string]bool),
	}
}

// Meta implements core.Engine.
func (e *Engine) Meta() core.EngineMeta {
	return core.EngineMeta{
		Name:          "arango",
		Kind:          core.KindHybrid,
		Substrate:     "Document",
		Storage:       "Serialized JSON",
		EdgeTraversal: "Hash index",
		Gremlin:       "2.6",
		Execution:     "AQL, non-optimized (REST/V8 server)",
	}
}

// rest pushes a payload through the simulated client/server JSON
// boundary: marshalled on one side, unmarshalled on the other. Every
// interactive operation calls it once for the request and once for the
// response.
func (e *Engine) rest(payload any) {
	b, err := json.Marshal(payload)
	if err != nil {
		return
	}
	e.restBytes.Add(int64(len(b)))
	var sink any
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	_ = dec.Decode(&sink)
}

type request struct {
	Op    string `json:"op"`
	ID    int64  `json:"id,omitempty"`
	Other int64  `json:"other,omitempty"`
	Name  string `json:"name,omitempty"`
	Value string `json:"value,omitempty"`
}

func (e *Engine) call(op string, id core.ID, args ...string) {
	r := request{Op: op, ID: int64(id)}
	if len(args) > 0 {
		r.Name = args[0]
	}
	if len(args) > 1 {
		r.Value = args[1]
	}
	e.rest(&r)
}

// --- document encoding (JSON, as stored) ---

func (e *Engine) labelTok(l string) uint32 {
	if t, ok := e.labelID[l]; ok {
		return t
	}
	t := uint32(len(e.labels))
	e.labelID[l] = t
	e.labels = append(e.labels, l)
	return t
}

func propsToJSONMap(p core.Props) map[string]any {
	m := make(map[string]any, len(p)+2)
	for k, v := range p {
		switch v.Kind() {
		case core.KindString:
			m[k] = v.Str()
		case core.KindInt:
			m[k] = v.Int()
		case core.KindFloat:
			m[k] = v.Float()
		case core.KindBool:
			m[k] = v.Bool()
		case core.KindNil:
			m[k] = nil
		}
	}
	return m
}

func jsonMapToProps(m map[string]any) (core.Props, error) {
	p := core.Props{}
	for k, v := range m {
		if len(k) > 0 && k[0] == '_' {
			continue // system fields
		}
		switch x := v.(type) {
		case string:
			p[k] = core.S(x)
		case bool:
			p[k] = core.B(x)
		case nil:
			p[k] = core.Nil
		case json.Number:
			if i, err := x.Int64(); err == nil {
				p[k] = core.I(i)
			} else if f, err := x.Float64(); err == nil {
				p[k] = core.F(f)
			} else {
				return nil, fmt.Errorf("arango: bad number %q", x)
			}
		default:
			return nil, fmt.Errorf("arango: unsupported field type %T", v)
		}
	}
	if len(p) == 0 {
		return nil, nil
	}
	return p, nil
}

func (e *Engine) encodeVertexDoc(id core.ID, p core.Props) []byte {
	m := propsToJSONMap(p)
	m["_key"] = int64(id)
	b, _ := json.Marshal(m)
	return b
}

func (e *Engine) encodeEdgeDoc(id core.ID, src, dst core.ID, label string, p core.Props) []byte {
	m := propsToJSONMap(p)
	m["_key"] = int64(id)
	m["_from"] = int64(src)
	m["_to"] = int64(dst)
	m["_label"] = label
	b, _ := json.Marshal(m)
	return b
}

// decodeDoc deserializes a stored document into its property set —
// the materialization step whose cost dominates whole-graph edge
// operations on this engine.
func decodeDoc(doc []byte) (core.Props, error) {
	var m map[string]any
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.UseNumber()
	if err := dec.Decode(&m); err != nil {
		return nil, err
	}
	return jsonMapToProps(m)
}

func removeID(s []core.ID, id core.ID) []core.ID {
	for i, x := range s {
		if x == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func sortedKeys[V any](m map[core.ID]V) []core.ID {
	out := make([]core.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConcurrentWrites implements core.ConcurrentWriter: the document
// store keeps no result-affecting read-side state (the REST-boundary
// accounting is an atomic byte counter), so under core.Guard's
// exclusive-writer discipline mixed read/write workloads observe
// serial-schedule-consistent documents and adjacency lists.
func (e *Engine) ConcurrentWrites() bool { return true }
