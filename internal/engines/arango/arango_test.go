package arango

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engines/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New() })
}

func TestConcurrencyConformance(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New() })
}

func TestInteractiveOpsCrossRESTBoundary(t *testing.T) {
	e := New()
	defer e.Close()
	before := e.RESTBytes()
	v, _ := e.AddVertex(core.Props{"a": core.I(1)})
	afterInsert := e.RESTBytes()
	if afterInsert <= before {
		t.Fatal("AddVertex did not cross the REST boundary")
	}
	e.VertexProps(v)
	if e.RESTBytes() <= afterInsert {
		t.Fatal("read did not cross the REST boundary")
	}
}

func TestBulkLoadBypassesREST(t *testing.T) {
	e := New()
	defer e.Close()
	g := core.NewGraph(100, 100)
	for i := 0; i < 100; i++ {
		g.AddVertex(core.Props{"i": core.I(int64(i))})
	}
	for i := 0; i < 100; i++ {
		g.AddEdge(i, (i+1)%100, "l", nil)
	}
	before := e.RESTBytes()
	if _, err := e.BulkLoad(g); err != nil {
		t.Fatal(err)
	}
	if e.RESTBytes() != before {
		t.Fatal("bulk load pushed bytes through REST (native path expected)")
	}
}

func TestDocumentsAreSelfContainedJSON(t *testing.T) {
	e := New()
	defer e.Close()
	v, _ := e.AddVertex(core.Props{"name": core.S("x")})
	doc := e.vdocs[v]
	if len(doc) == 0 || doc[0] != '{' {
		t.Fatalf("vertex not stored as JSON: %q", doc)
	}
	// Updating a property rewrites the serialized document.
	e.SetVertexProp(v, "name", core.S("a-much-longer-name"))
	if string(e.vdocs[v]) == string(doc) {
		t.Fatal("document not rewritten on update")
	}
}

func TestEdgeHashIndexServesTraversalWithoutDecode(t *testing.T) {
	e := New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	eid, _ := e.AddEdge(a, b, "knows", core.Props{"big": core.S("payload payload payload")})
	// Corrupt the stored document: traversal and EdgeEnds must still work
	// because they are served from the hash index, not the document.
	e.edocs[eid] = []byte("not json")
	src, dst, err := e.EdgeEnds(eid)
	if err != nil || src != a || dst != b {
		t.Fatalf("EdgeEnds = %v,%v,%v", src, dst, err)
	}
	if n := core.Drain(e.Neighbors(a, core.DirOut)); n != 1 {
		t.Fatalf("neighbors = %d", n)
	}
	if l, err := e.EdgeLabel(eid); err != nil || l != "knows" {
		t.Fatalf("label = %q %v", l, err)
	}
}

func TestDeclaredIndexChangesNothing(t *testing.T) {
	e := New()
	defer e.Close()
	for i := 0; i < 50; i++ {
		e.AddVertex(core.Props{"k": core.I(int64(i % 5))})
	}
	before := core.Drain(e.VerticesByProp("k", core.I(2)))
	if err := e.BuildVertexPropIndex("k"); err != nil {
		t.Fatal(err)
	}
	after := core.Drain(e.VerticesByProp("k", core.I(2)))
	if before != after || after != 10 {
		t.Fatalf("index changed results: %d vs %d", before, after)
	}
}
