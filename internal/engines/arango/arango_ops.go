package arango

import (
	"repro/internal/core"
)

// --- vertex CRUD (each interactive op crosses the REST boundary) ---

// AddVertex implements core.Engine. The write is acknowledged once the
// document is registered in memory (asynchronous durability, as the
// paper notes), so this is fast despite the REST hop.
func (e *Engine) AddVertex(props core.Props) (core.ID, error) {
	e.call("insert-vertex", core.NoID)
	id := core.ID(e.nextID)
	e.nextID++
	e.vdocs[id] = e.encodeVertexDoc(id, props)
	e.call("insert-vertex-resp", id)
	return id, nil
}

// HasVertex implements core.Engine.
func (e *Engine) HasVertex(id core.ID) bool {
	_, ok := e.vdocs[id]
	return ok
}

// VertexProps implements core.Engine.
func (e *Engine) VertexProps(id core.ID) (core.Props, error) {
	e.call("document", id)
	doc, ok := e.vdocs[id]
	if !ok {
		return nil, core.ErrNotFound
	}
	return decodeDoc(doc)
}

// VertexProp implements core.Engine.
func (e *Engine) VertexProp(id core.ID, name string) (core.Value, bool) {
	p, err := e.VertexProps(id)
	if err != nil {
		return core.Nil, false
	}
	v, ok := p[name]
	return v, ok
}

// SetVertexProp implements core.Engine: read-modify-write of the whole
// document (documents are self-contained).
func (e *Engine) SetVertexProp(id core.ID, name string, v core.Value) error {
	e.call("update-vertex", id, name)
	doc, ok := e.vdocs[id]
	if !ok {
		return core.ErrNotFound
	}
	p, err := decodeDoc(doc)
	if err != nil {
		return err
	}
	if p == nil {
		p = core.Props{}
	}
	p[name] = v
	e.vdocs[id] = e.encodeVertexDoc(id, p)
	return nil
}

// RemoveVertexProp implements core.Engine.
func (e *Engine) RemoveVertexProp(id core.ID, name string) error {
	e.call("unset-vertex", id, name)
	doc, ok := e.vdocs[id]
	if !ok {
		return core.ErrNotFound
	}
	p, err := decodeDoc(doc)
	if err != nil {
		return err
	}
	delete(p, name)
	e.vdocs[id] = e.encodeVertexDoc(id, p)
	return nil
}

// RemoveVertex implements core.Engine.
func (e *Engine) RemoveVertex(id core.ID) error {
	e.call("remove-vertex", id)
	if _, ok := e.vdocs[id]; !ok {
		return core.ErrNotFound
	}
	incident := append(append([]core.ID(nil), e.outIdx[id]...), e.inIdx[id]...)
	for _, eid := range incident {
		if _, ok := e.edocs[eid]; ok {
			e.removeEdgeInternal(eid)
		}
	}
	delete(e.vdocs, id)
	delete(e.outIdx, id)
	delete(e.inIdx, id)
	return nil
}

// --- edge CRUD ---

// AddEdge implements core.Engine.
func (e *Engine) AddEdge(src, dst core.ID, label string, props core.Props) (core.ID, error) {
	e.call("insert-edge", src)
	if !e.HasVertexQuiet(src) || !e.HasVertexQuiet(dst) {
		return core.NoID, core.ErrNotFound
	}
	id := core.ID(e.nextID)
	e.nextID++
	e.edocs[id] = e.encodeEdgeDoc(id, src, dst, label, props)
	e.edgeIdx[id] = edgeEntry{src: src, dst: dst, label: e.labelTok(label)}
	e.outIdx[src] = append(e.outIdx[src], id)
	e.inIdx[dst] = append(e.inIdx[dst], id)
	e.call("insert-edge-resp", id)
	return id, nil
}

// HasVertexQuiet checks existence without a REST hop (used inside
// server-side operations).
func (e *Engine) HasVertexQuiet(id core.ID) bool {
	_, ok := e.vdocs[id]
	return ok
}

// HasEdge implements core.Engine.
func (e *Engine) HasEdge(id core.ID) bool {
	_, ok := e.edocs[id]
	return ok
}

// EdgeLabel implements core.Engine: served by the hash index.
func (e *Engine) EdgeLabel(id core.ID) (string, error) {
	ent, ok := e.edgeIdx[id]
	if !ok {
		return "", core.ErrNotFound
	}
	return e.labels[ent.label], nil
}

// EdgeEnds implements core.Engine: served by the hash index.
func (e *Engine) EdgeEnds(id core.ID) (core.ID, core.ID, error) {
	ent, ok := e.edgeIdx[id]
	if !ok {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	return ent.src, ent.dst, nil
}

// EdgeProps implements core.Engine.
func (e *Engine) EdgeProps(id core.ID) (core.Props, error) {
	e.call("document", id)
	doc, ok := e.edocs[id]
	if !ok {
		return nil, core.ErrNotFound
	}
	return decodeDoc(doc)
}

// EdgeProp implements core.Engine.
func (e *Engine) EdgeProp(id core.ID, name string) (core.Value, bool) {
	p, err := e.EdgeProps(id)
	if err != nil {
		return core.Nil, false
	}
	v, ok := p[name]
	return v, ok
}

// SetEdgeProp implements core.Engine.
func (e *Engine) SetEdgeProp(id core.ID, name string, v core.Value) error {
	e.call("update-edge", id, name)
	doc, ok := e.edocs[id]
	if !ok {
		return core.ErrNotFound
	}
	p, err := decodeDoc(doc)
	if err != nil {
		return err
	}
	if p == nil {
		p = core.Props{}
	}
	p[name] = v
	ent := e.edgeIdx[id]
	e.edocs[id] = e.encodeEdgeDoc(id, ent.src, ent.dst, e.labels[ent.label], p)
	return nil
}

// RemoveEdgeProp implements core.Engine.
func (e *Engine) RemoveEdgeProp(id core.ID, name string) error {
	e.call("unset-edge", id, name)
	doc, ok := e.edocs[id]
	if !ok {
		return core.ErrNotFound
	}
	p, err := decodeDoc(doc)
	if err != nil {
		return err
	}
	delete(p, name)
	ent := e.edgeIdx[id]
	e.edocs[id] = e.encodeEdgeDoc(id, ent.src, ent.dst, e.labels[ent.label], p)
	return nil
}

// RemoveEdge implements core.Engine.
func (e *Engine) RemoveEdge(id core.ID) error {
	e.call("remove-edge", id)
	if _, ok := e.edocs[id]; !ok {
		return core.ErrNotFound
	}
	e.removeEdgeInternal(id)
	return nil
}

func (e *Engine) removeEdgeInternal(id core.ID) {
	ent := e.edgeIdx[id]
	e.outIdx[ent.src] = removeID(e.outIdx[ent.src], id)
	e.inIdx[ent.dst] = removeID(e.inIdx[ent.dst], id)
	delete(e.edocs, id)
	delete(e.edgeIdx, id)
}

// --- scans ---

// CountVertices implements core.Engine: a collection count, no
// materialization (one of the few whole-graph queries this engine
// finished in the paper).
func (e *Engine) CountVertices() (int64, error) {
	e.call("count-vertices", core.NoID)
	return int64(len(e.vdocs)), nil
}

// CountEdges implements core.Engine. The AQL translation materializes
// every edge document while counting — the paper's explanation for this
// engine timing out on edge iteration.
func (e *Engine) CountEdges() (int64, error) {
	e.call("count-edges", core.NoID)
	var n int64
	for _, doc := range e.edocs {
		if _, err := decodeDoc(doc); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

// Vertices implements core.Engine.
func (e *Engine) Vertices() core.Iter[core.ID] {
	e.call("all-vertices", core.NoID)
	return core.SliceIter(sortedKeys(e.vdocs))
}

// Edges implements core.Engine: materializes every document up front.
func (e *Engine) Edges() core.Iter[core.ID] {
	e.call("all-edges", core.NoID)
	keys := sortedKeys(e.edocs)
	for _, id := range keys {
		_, _ = decodeDoc(e.edocs[id])
	}
	return core.SliceIter(keys)
}

// VerticesByProp implements core.Engine: a full collection scan with
// document materialization (indexes bring no change; see package doc).
func (e *Engine) VerticesByProp(name string, v core.Value) core.Iter[core.ID] {
	e.call("filter-vertices", core.NoID, name)
	var out []core.ID
	for _, id := range sortedKeys(e.vdocs) {
		p, err := decodeDoc(e.vdocs[id])
		if err != nil {
			continue
		}
		if got, ok := p[name]; ok && got.Compare(v) == 0 {
			out = append(out, id)
		}
	}
	return core.SliceIter(out)
}

// EdgesByProp implements core.Engine.
func (e *Engine) EdgesByProp(name string, v core.Value) core.Iter[core.ID] {
	e.call("filter-edges", core.NoID, name)
	var out []core.ID
	for _, id := range sortedKeys(e.edocs) {
		p, err := decodeDoc(e.edocs[id])
		if err != nil {
			continue
		}
		if got, ok := p[name]; ok && got.Compare(v) == 0 {
			out = append(out, id)
		}
	}
	return core.SliceIter(out)
}

// EdgesByLabel implements core.Engine: scan with materialization.
func (e *Engine) EdgesByLabel(label string) core.Iter[core.ID] {
	e.call("filter-edges-label", core.NoID, label)
	tok, ok := e.labelID[label]
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	var out []core.ID
	for _, id := range sortedKeys(e.edocs) {
		_, _ = decodeDoc(e.edocs[id])
		if e.edgeIdx[id].label == tok {
			out = append(out, id)
		}
	}
	return core.SliceIter(out)
}

// --- traversal (hash-index served: the engine's strong suit) ---

// IncidentEdges implements core.Engine.
func (e *Engine) IncidentEdges(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	e.call("neighbors", id)
	if !e.HasVertexQuiet(id) {
		return core.EmptyIter[core.ID]()
	}
	var want map[uint32]bool
	if len(labels) > 0 {
		want = make(map[uint32]bool, len(labels))
		for _, l := range labels {
			if tok, ok := e.labelID[l]; ok {
				want[tok] = true
			}
		}
		if len(want) == 0 {
			return core.EmptyIter[core.ID]()
		}
	}
	match := func(eid core.ID) bool {
		return want == nil || want[e.edgeIdx[eid].label]
	}
	var list []core.ID
	switch d {
	case core.DirOut:
		list = e.outIdx[id]
	case core.DirIn:
		list = e.inIdx[id]
	default:
		list = append(append([]core.ID(nil), e.outIdx[id]...), e.inIdx[id]...)
	}
	inStart := -1
	if d == core.DirBoth {
		inStart = len(e.outIdx[id])
	}
	i := 0
	return func() (core.ID, bool) {
		for i < len(list) {
			eid := list[i]
			fromIn := inStart >= 0 && i >= inStart
			i++
			if !match(eid) {
				continue
			}
			if fromIn {
				if ent := e.edgeIdx[eid]; ent.src == ent.dst {
					continue // loop already yielded by the out pass
				}
			}
			return eid, true
		}
		return core.NoID, false
	}
}

// Neighbors implements core.Engine.
func (e *Engine) Neighbors(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	inner := e.IncidentEdges(id, d, labels...)
	return func() (core.ID, bool) {
		eid, ok := inner()
		if !ok {
			return core.NoID, false
		}
		ent := e.edgeIdx[eid]
		if ent.src != id {
			return ent.src, true
		}
		return ent.dst, true
	}
}

// Degree implements core.Engine.
func (e *Engine) Degree(id core.ID, d core.Direction) (int64, error) {
	if !e.HasVertexQuiet(id) {
		return 0, core.ErrNotFound
	}
	switch d {
	case core.DirOut:
		return int64(len(e.outIdx[id])), nil
	case core.DirIn:
		return int64(len(e.inIdx[id])), nil
	default:
		loops := 0
		for _, eid := range e.inIdx[id] {
			if ent := e.edgeIdx[eid]; ent.src == ent.dst {
				loops++
			}
		}
		return int64(len(e.outIdx[id]) + len(e.inIdx[id]) - loops), nil
	}
}

// --- index / bulk / space ---

// BuildVertexPropIndex implements core.Engine: accepted, but the search
// path does not change (the paper measured no difference).
func (e *Engine) BuildVertexPropIndex(name string) error {
	e.declaredIndexes[name] = true
	return nil
}

// HasVertexPropIndex implements core.Engine.
func (e *Engine) HasVertexPropIndex(name string) bool { return e.declaredIndexes[name] }

// BulkLoad implements core.Engine via the implementation-specific import
// scripts the paper's suite uses for this engine: documents are written
// directly, bypassing the REST boundary — which is how ArangoDB ends up
// the *fastest* loader of the study despite its slow per-item path.
func (e *Engine) BulkLoad(g *core.Graph) (*core.LoadResult, error) {
	e.CapturePlanStats(g)
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	// Pre-size the document and index maps from the CSR snapshot: on a
	// fresh engine the final cardinalities are known exactly, so the
	// load pays no incremental map growth. Only vertices with edges get
	// pre-sized adjacency slices — creating entries for isolated
	// vertices would change the space accounting.
	snap := g.Snapshot()
	if len(e.vdocs) == 0 && len(e.edocs) == 0 {
		e.vdocs = make(map[core.ID][]byte, g.NumVertices())
		e.edocs = make(map[core.ID][]byte, g.NumEdges())
		e.edgeIdx = make(map[core.ID]edgeEntry, g.NumEdges())
		e.outIdx = make(map[core.ID][]core.ID, g.NumVertices())
		e.inIdx = make(map[core.ID][]core.ID, g.NumVertices())
		// The snapshot's label table is exactly the token set this load
		// interns; tokens still assign in first-encounter order.
		if len(e.labels) == 0 {
			e.labelID = make(map[string]uint32, len(snap.Labels))
			e.labels = make([]string, 0, len(snap.Labels))
		}
	}
	for i := range g.VProps {
		id := core.ID(e.nextID)
		e.nextID++
		e.vdocs[id] = e.encodeVertexDoc(id, g.VProps[i])
		res.VertexIDs[i] = id
		if d := snap.OutDegree(i); d > 0 && e.outIdx[id] == nil {
			e.outIdx[id] = make([]core.ID, 0, d)
		}
		if d := snap.InDegree(i); d > 0 && e.inIdx[id] == nil {
			e.inIdx[id] = make([]core.ID, 0, d)
		}
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		id := core.ID(e.nextID)
		e.nextID++
		src, dst := res.VertexIDs[er.Src], res.VertexIDs[er.Dst]
		e.edocs[id] = e.encodeEdgeDoc(id, src, dst, er.Label, er.Props)
		e.edgeIdx[id] = edgeEntry{src: src, dst: dst, label: e.labelTok(er.Label)}
		e.outIdx[src] = append(e.outIdx[src], id)
		e.inIdx[dst] = append(e.inIdx[dst], id)
		res.EdgeIDs[i] = id
	}
	return res, nil
}

// SpaceUsage implements core.Engine.
func (e *Engine) SpaceUsage() core.SpaceReport {
	var r core.SpaceReport
	var vb, eb int64
	for _, d := range e.vdocs {
		vb += int64(len(d)) + 16
	}
	for _, d := range e.edocs {
		eb += int64(len(d)) + 16
	}
	r.Add("vertex-documents", vb)
	r.Add("edge-documents", eb)
	var idx int64 = int64(len(e.edgeIdx)) * 40
	for _, l := range e.outIdx {
		idx += int64(len(l))*8 + 16
	}
	for _, l := range e.inIdx {
		idx += int64(len(l))*8 + 16
	}
	r.Add("edge-hash-index", idx)
	return r
}

// RESTBytes reports the bytes pushed through the simulated REST
// boundary (for tests and the harness's explain output).
func (e *Engine) RESTBytes() int64 { return e.restBytes.Load() }

// Close implements core.Engine.
func (e *Engine) Close() error { return nil }
