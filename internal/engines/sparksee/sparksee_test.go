package sparksee

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engines/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func() core.Engine { return New() })
}

func TestConcurrencyConformance(t *testing.T) {
	enginetest.RunConcurrency(t, func() core.Engine { return New() })
}

func TestCountsArePopcounts(t *testing.T) {
	e := New()
	defer e.Close()
	for i := 0; i < 1000; i++ {
		e.AddVertex(nil)
	}
	if n, _ := e.CountVertices(); n != 1000 {
		t.Fatalf("CountVertices = %d", n)
	}
	// The count must reflect removals without scanning.
	e.RemoveVertex(core.ID(0))
	if n, _ := e.CountVertices(); n != 999 {
		t.Fatalf("CountVertices after removal = %d", n)
	}
}

// TestDegreeOOMOnLabelHeavyGraphs reproduces the paper's Q28–Q31
// finding: on graphs combining many nodes with many edge labels (the
// Freebase family), the degree filter exhausts the adapter's memory
// budget; on label-light graphs of similar size (MiCo-like) it
// completes.
func TestDegreeOOMOnLabelHeavyGraphs(t *testing.T) {
	build := func(nodes, labels int) *Engine {
		e := New(WithMemBudget(1 << 20))
		var vs []core.ID
		for i := 0; i < nodes; i++ {
			v, _ := e.AddVertex(nil)
			vs = append(vs, v)
		}
		for i := 0; i < nodes*2; i++ {
			e.AddEdge(vs[i%nodes], vs[(i+1)%nodes], fmt.Sprint("l", i%labels), nil)
		}
		return e
	}

	scanDegrees := func(e *Engine) error {
		it := e.Vertices() // resets retention, as a fresh traversal does
		for id, ok := it(); ok; id, ok = it() {
			if _, err := e.Degree(id, core.DirBoth); err != nil {
				return err
			}
		}
		return nil
	}

	labelHeavy := build(500, 400)
	if err := scanDegrees(labelHeavy); !errors.Is(err, core.ErrOutOfMemory) {
		t.Fatalf("label-heavy scan err = %v, want ErrOutOfMemory", err)
	}
	labelLight := build(500, 5)
	if err := scanDegrees(labelLight); err != nil {
		t.Fatalf("label-light scan failed: %v", err)
	}
	// A fresh traversal must start from a clean budget.
	if err := scanDegrees(labelLight); err != nil {
		t.Fatalf("second scan failed: %v", err)
	}
}

func TestDeclaredIndexDoesNotChangeSearchPath(t *testing.T) {
	e := New()
	defer e.Close()
	for i := 0; i < 100; i++ {
		e.AddVertex(core.Props{"k": core.I(int64(i % 10))})
	}
	before := core.Drain(e.VerticesByProp("k", core.I(3)))
	if err := e.BuildVertexPropIndex("k"); err != nil {
		t.Fatal(err)
	}
	if !e.HasVertexPropIndex("k") {
		t.Fatal("index declaration not recorded")
	}
	after := core.Drain(e.VerticesByProp("k", core.I(3)))
	if before != after || after != 10 {
		t.Fatalf("results changed with index: %d vs %d", before, after)
	}
}

func TestLabelFilteredNeighborsViaBitmapIntersection(t *testing.T) {
	e := New()
	defer e.Close()
	hub, _ := e.AddVertex(nil)
	for i := 0; i < 30; i++ {
		v, _ := e.AddVertex(nil)
		e.AddEdge(hub, v, fmt.Sprint("l", i%3), nil)
	}
	if n := core.Drain(e.Neighbors(hub, core.DirOut, "l1")); n != 10 {
		t.Fatalf("out(hub,l1) = %d", n)
	}
	if n := core.Drain(e.Neighbors(hub, core.DirOut, "l0", "l2")); n != 20 {
		t.Fatalf("out(hub,l0,l2) = %d", n)
	}
}

func TestAttrStoreValueBitmapsStayConsistent(t *testing.T) {
	e := New()
	defer e.Close()
	v, _ := e.AddVertex(core.Props{"c": core.S("red")})
	e.SetVertexProp(v, "c", core.S("blue"))
	a := e.vattrs["c"]
	if _, stale := a.byVal[core.S("red")]; stale {
		t.Fatal("stale value bitmap kept after update")
	}
	if !a.byVal[core.S("blue")].Contains(uint64(v)) {
		t.Fatal("value bitmap missing updated entry")
	}
	e.RemoveVertexProp(v, "c")
	if len(a.byVal) != 0 || len(a.vals) != 0 {
		t.Fatal("attr store not emptied")
	}
}
