package sparksee

import (
	"repro/internal/bitmap"
	"repro/internal/core"
)

// --- scans ---

// CountVertices implements core.Engine: a container popcount, the
// operation where the paper found Sparksee fastest.
func (e *Engine) CountVertices() (int64, error) { return int64(e.nodes.Len()), nil }

// CountEdges implements core.Engine.
func (e *Engine) CountEdges() (int64, error) { return int64(e.edges.Len()), nil }

func bitmapIter(b *bitmap.Bitmap) core.Iter[core.ID] {
	// Materialize the OIDs: bitmap iteration is callback-based, and the
	// modelled adapter materializes scans anyway.
	return core.SliceIter(idsOf(b))
}

func idsOf(b *bitmap.Bitmap) []core.ID {
	out := make([]core.ID, 0, b.Len())
	b.Iterate(func(x uint64) bool { out = append(out, core.ID(x)); return true })
	return out
}

// Vertices implements core.Engine. Starting a fresh full-graph scan
// resets the Gremlin adapter's retention accounting (each traversal
// carries its own intermediates).
func (e *Engine) Vertices() core.Iter[core.ID] {
	e.retained.Store(0)
	return bitmapIter(e.nodes)
}

// Edges implements core.Engine.
func (e *Engine) Edges() core.Iter[core.ID] {
	e.retained.Store(0)
	return bitmapIter(e.edges)
}

// VerticesByProp implements core.Engine. The value→bitmap structure
// could answer this directly, but the paper measured scans (the adapter
// does not exploit it, and declared user indexes bring "no improvement"
// for this engine), so a scan with per-object value lookups is modelled.
func (e *Engine) VerticesByProp(name string, v core.Value) core.Iter[core.ID] {
	a := e.vattrs[name]
	if a == nil {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Vertices(), func(id core.ID) bool {
		got, ok := a.vals[uint64(id)]
		return ok && got.Compare(v) == 0
	})
}

// EdgesByProp implements core.Engine.
func (e *Engine) EdgesByProp(name string, v core.Value) core.Iter[core.ID] {
	a := e.eattrs[name]
	if a == nil {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		got, ok := a.vals[uint64(id)]
		return ok && got.Compare(v) == 0
	})
}

// EdgesByLabel implements core.Engine (scan + token compare; see
// VerticesByProp for why the label bitmap is not consulted).
func (e *Engine) EdgesByLabel(label string) core.Iter[core.ID] {
	tok, ok := e.labelID[label]
	if !ok {
		return core.EmptyIter[core.ID]()
	}
	return core.FilterIter(e.Edges(), func(id core.ID) bool {
		return e.labelOf[uint64(id)] == tok
	})
}

// --- traversal ---

// IncidentEdges implements core.Engine. Label filters are bitmap
// intersections — the one local operation where the paper found
// Sparksee on par with the fastest engines.
func (e *Engine) IncidentEdges(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	if !e.HasVertex(id) {
		return core.EmptyIter[core.ID]()
	}
	oid := uint64(id)
	pick := func(b *bitmap.Bitmap) *bitmap.Bitmap {
		if b == nil {
			return bitmap.New()
		}
		if len(labels) == 0 {
			return b
		}
		acc := bitmap.New()
		for _, l := range labels {
			if tok, ok := e.labelID[l]; ok {
				acc = acc.Or(b.And(e.byLabel[tok]))
			}
		}
		return acc
	}
	switch d {
	case core.DirOut:
		return bitmapIter(pick(e.out[oid]))
	case core.DirIn:
		return bitmapIter(pick(e.in[oid]))
	default:
		// Union dedupes loops (an OID is a set member once).
		return bitmapIter(pick(e.out[oid]).Or(pick(e.in[oid])))
	}
}

// Neighbors implements core.Engine.
func (e *Engine) Neighbors(id core.ID, d core.Direction, labels ...string) core.Iter[core.ID] {
	inner := e.IncidentEdges(id, d, labels...)
	return func() (core.ID, bool) {
		eid, ok := inner()
		if !ok {
			return core.NoID, false
		}
		src := core.ID(e.srcOf[uint64(eid)])
		if src != id {
			return src, true
		}
		return core.ID(e.dstOf[uint64(eid)]), true
	}
}

// Degree implements core.Engine through the modelled Gremlin adapter:
// the adapter walks the per-label edge bitmaps and retains a decoded
// intermediate per label per call, so graphs with many labels and many
// nodes exhaust the budget mid-scan (the paper's Q28–Q31 failure on all
// Freebase samples). The retention counter is reset by Vertices()/
// Edges(), i.e. per full-graph traversal.
func (e *Engine) Degree(id core.ID, d core.Direction) (int64, error) {
	if !e.HasVertex(id) {
		return 0, core.ErrNotFound
	}
	oid := uint64(id)
	count := func(b *bitmap.Bitmap) int64 {
		if b == nil {
			return 0
		}
		var n int64
		for _, lb := range e.byLabel {
			hits := b.AndLen(lb)
			n += int64(hits)
			e.retained.Add(40 + int64(hits)*16)
		}
		return n
	}
	var deg int64
	switch d {
	case core.DirOut:
		deg = count(e.out[oid])
	case core.DirIn:
		deg = count(e.in[oid])
	default:
		ob, ib := e.out[oid], e.in[oid]
		switch {
		case ob != nil && ib != nil:
			both := ob.Or(ib)
			e.retained.Add(both.Bytes())
			deg = count(both)
		case ob != nil:
			deg = count(ob)
		case ib != nil:
			deg = count(ib)
		}
	}
	if e.retained.Load() > e.memBudget {
		return 0, core.ErrOutOfMemory
	}
	return deg, nil
}

// --- index / bulk / space ---

// BuildVertexPropIndex implements core.Engine. The declaration is
// accepted but — matching the paper's measurement — brings no change in
// the search path.
func (e *Engine) BuildVertexPropIndex(name string) error {
	e.declaredIndexes[name] = true
	return nil
}

// HasVertexPropIndex implements core.Engine.
func (e *Engine) HasVertexPropIndex(name string) bool { return e.declaredIndexes[name] }

// BulkLoad implements core.Engine (the engine's Gremlin load path was
// unproblematic in the paper, so this is a plain loop).
func (e *Engine) BulkLoad(g *core.Graph) (*core.LoadResult, error) {
	e.CapturePlanStats(g)
	res := &core.LoadResult{
		VertexIDs: make([]core.ID, g.NumVertices()),
		EdgeIDs:   make([]core.ID, g.NumEdges()),
	}
	// On a fresh engine the per-edge link maps reach exactly |E|
	// entries and the adjacency-bitmap maps one entry per vertex with
	// that direction — pre-size them from the CSR snapshot so the
	// (deliberately per-item, as in the paper) load path at least pays
	// no incremental map growth.
	if e.nodes.Len() == 0 && e.edges.Len() == 0 {
		snap := g.Snapshot()
		e.srcOf = make(map[uint64]uint64, g.NumEdges())
		e.dstOf = make(map[uint64]uint64, g.NumEdges())
		e.labelOf = make(map[uint64]uint32, g.NumEdges())
		// The snapshot's label table is exactly the label-bitmap set this
		// load creates; tokens still assign in first-encounter order.
		if len(e.labels) == 0 {
			e.labelID = make(map[string]uint32, len(snap.Labels))
			e.byLabel = make(map[uint32]*bitmap.Bitmap, len(snap.Labels))
			e.labels = make([]string, 0, len(snap.Labels))
		}
		var nOut, nIn int
		for v, n := 0, g.NumVertices(); v < n; v++ {
			if snap.OutDegree(v) > 0 {
				nOut++
			}
			if snap.InDegree(v) > 0 {
				nIn++
			}
		}
		e.out = make(map[uint64]*bitmap.Bitmap, nOut)
		e.in = make(map[uint64]*bitmap.Bitmap, nIn)
	}
	for i := range g.VProps {
		id, err := e.AddVertex(g.VProps[i])
		if err != nil {
			return nil, err
		}
		res.VertexIDs[i] = id
	}
	for i := range g.EdgeL {
		er := &g.EdgeL[i]
		id, err := e.AddEdge(res.VertexIDs[er.Src], res.VertexIDs[er.Dst], er.Label, er.Props)
		if err != nil {
			return nil, err
		}
		res.EdgeIDs[i] = id
	}
	return res, nil
}

// SpaceUsage implements core.Engine.
func (e *Engine) SpaceUsage() core.SpaceReport {
	var r core.SpaceReport
	r.Add("object-bitmaps", e.nodes.Bytes()+e.edges.Bytes())
	var lb int64
	for _, b := range e.byLabel {
		lb += b.Bytes()
	}
	for _, l := range e.labels {
		lb += int64(len(l)) + 24
	}
	r.Add("label-bitmaps", lb+int64(len(e.labelOf))*12)
	var adj int64
	for _, b := range e.out {
		adj += b.Bytes() + 16
	}
	for _, b := range e.in {
		adj += b.Bytes() + 16
	}
	r.Add("relationship-bitmaps", adj+int64(len(e.srcOf)+len(e.dstOf))*16)
	var at int64
	for name, a := range e.vattrs {
		at += int64(len(name)) + a.bytes()
	}
	for name, a := range e.eattrs {
		at += int64(len(name)) + a.bytes()
	}
	r.Add("attribute-maps", at)
	return r
}

// Close implements core.Engine.
func (e *Engine) Close() error { return nil }
