// Package sparksee implements the native engine modelled on Sparksee
// (formerly DEX), whose architecture the paper describes as "clusters of
// bitmaps" (Section 3.2, citing Martínez-Bazán et al., IDEAS 2012):
//
//   - every object (node or edge) has a sequential OID;
//   - object sets are compressed bitmaps: one for nodes, one for edges,
//     one per edge label, one per incident direction per node;
//   - every attribute is a pair of maps — OID→value and value→bitmap —
//     so many operations become bitwise bitmap work.
//
// The modelled behaviours match the paper's findings:
//
//   - counting (Q8, Q9) is a container popcount — Sparksee is fastest;
//   - create/update/delete touch a map entry and a few bits — fastest
//     CUD of the study;
//   - the degree-filter queries (Q28–Q31) go through the engine's
//     Gremlin adapter, which retains per-label intermediates per visited
//     node; on graphs with both many nodes and many edge labels (the
//     Freebase family) this exhausts the memory budget and the engine
//     returns core.ErrOutOfMemory — "linked to a known problem in the
//     Gremlin implementation";
//   - user attribute indexes are accepted but ignored: the paper found
//     "Sparksee and Neo4J (v.3.0) are not able to take advantage of such
//     indexes", so searches stay scans.
package sparksee

import (
	"repro/internal/bitmap"
	"repro/internal/core"
	"sync/atomic"
)

// DefaultMemBudget bounds the bytes the modelled Gremlin adapter may
// retain during a single full-graph traversal before the engine reports
// core.ErrOutOfMemory.
const DefaultMemBudget = 256 << 20

// Engine is a Sparksee-style bitmap graph store.
type Engine struct {
	core.PlanStatsHolder

	nextOID uint64
	nodes   *bitmap.Bitmap
	edges   *bitmap.Bitmap

	srcOf   map[uint64]uint64
	dstOf   map[uint64]uint64
	labelOf map[uint64]uint32
	byLabel map[uint32]*bitmap.Bitmap
	labels  []string
	labelID map[string]uint32

	out map[uint64]*bitmap.Bitmap // node -> outgoing edge set
	in  map[uint64]*bitmap.Bitmap // node -> incoming edge set

	vattrs map[string]*attrStore
	eattrs map[string]*attrStore

	// declared user indexes (accepted, not exploited — see package doc)
	declaredIndexes map[string]bool

	// Gremlin-adapter retention accounting.
	memBudget int64
	// retained is atomic: it is bumped on read paths (Degree), which may
	// run concurrently under the core.Engine concurrent-read contract.
	retained atomic.Int64
}

// attrStore is the paper's per-attribute structure: a map from OIDs to
// values plus a bitmap per distinct value.
type attrStore struct {
	vals  map[uint64]core.Value
	byVal map[core.Value]*bitmap.Bitmap
}

func newAttrStore() *attrStore {
	return &attrStore{
		vals:  make(map[uint64]core.Value),
		byVal: make(map[core.Value]*bitmap.Bitmap),
	}
}

func (a *attrStore) set(oid uint64, v core.Value) {
	if old, ok := a.vals[oid]; ok {
		if b := a.byVal[old]; b != nil {
			b.Remove(oid)
			if b.IsEmpty() {
				delete(a.byVal, old)
			}
		}
	}
	a.vals[oid] = v
	b := a.byVal[v]
	if b == nil {
		b = bitmap.New()
		a.byVal[v] = b
	}
	b.Add(oid)
}

func (a *attrStore) remove(oid uint64) {
	if old, ok := a.vals[oid]; ok {
		if b := a.byVal[old]; b != nil {
			b.Remove(oid)
			if b.IsEmpty() {
				delete(a.byVal, old)
			}
		}
		delete(a.vals, oid)
	}
}

func (a *attrStore) bytes() int64 {
	var n int64 = 96
	for _, v := range a.vals {
		n += 24 + v.Bytes()
	}
	for v, b := range a.byVal {
		n += v.Bytes() + b.Bytes()
	}
	return n
}

// Option configures the engine.
type Option func(*Engine)

// WithMemBudget overrides the Gremlin-adapter retention budget.
func WithMemBudget(bytes int64) Option {
	return func(e *Engine) { e.memBudget = bytes }
}

// New returns an empty engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		nodes:           bitmap.New(),
		edges:           bitmap.New(),
		srcOf:           make(map[uint64]uint64),
		dstOf:           make(map[uint64]uint64),
		labelOf:         make(map[uint64]uint32),
		byLabel:         make(map[uint32]*bitmap.Bitmap),
		labelID:         make(map[string]uint32),
		out:             make(map[uint64]*bitmap.Bitmap),
		in:              make(map[uint64]*bitmap.Bitmap),
		vattrs:          make(map[string]*attrStore),
		eattrs:          make(map[string]*attrStore),
		declaredIndexes: make(map[string]bool),
		memBudget:       DefaultMemBudget,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Meta implements core.Engine.
func (e *Engine) Meta() core.EngineMeta {
	return core.EngineMeta{
		Name:          "sparksee",
		Kind:          core.KindNative,
		Substrate:     "Native",
		Storage:       "Indexed bitmaps",
		EdgeTraversal: "B+Tree/Bitmap",
		Gremlin:       "2.6",
		Execution:     "Programming API, non-optimized",
	}
}

func (e *Engine) labelTok(l string) uint32 {
	if t, ok := e.labelID[l]; ok {
		return t
	}
	t := uint32(len(e.labels))
	e.labelID[l] = t
	e.labels = append(e.labels, l)
	e.byLabel[t] = bitmap.New()
	return t
}

// --- vertex CRUD ---

// AddVertex implements core.Engine.
func (e *Engine) AddVertex(props core.Props) (core.ID, error) {
	oid := e.nextOID
	e.nextOID++
	e.nodes.Add(oid)
	for k, v := range props {
		e.vattr(k).set(oid, v)
	}
	return core.ID(oid), nil
}

func (e *Engine) vattr(name string) *attrStore {
	a := e.vattrs[name]
	if a == nil {
		a = newAttrStore()
		e.vattrs[name] = a
	}
	return a
}

func (e *Engine) eattr(name string) *attrStore {
	a := e.eattrs[name]
	if a == nil {
		a = newAttrStore()
		e.eattrs[name] = a
	}
	return a
}

// HasVertex implements core.Engine.
func (e *Engine) HasVertex(id core.ID) bool {
	return id >= 0 && e.nodes.Contains(uint64(id))
}

// VertexProps implements core.Engine.
func (e *Engine) VertexProps(id core.ID) (core.Props, error) {
	if !e.HasVertex(id) {
		return nil, core.ErrNotFound
	}
	p := core.Props{}
	for name, a := range e.vattrs {
		if v, ok := a.vals[uint64(id)]; ok {
			p[name] = v
		}
	}
	if len(p) == 0 {
		return nil, nil
	}
	return p, nil
}

// VertexProp implements core.Engine.
func (e *Engine) VertexProp(id core.ID, name string) (core.Value, bool) {
	if !e.HasVertex(id) {
		return core.Nil, false
	}
	a := e.vattrs[name]
	if a == nil {
		return core.Nil, false
	}
	v, ok := a.vals[uint64(id)]
	return v, ok
}

// SetVertexProp implements core.Engine.
func (e *Engine) SetVertexProp(id core.ID, name string, v core.Value) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	e.vattr(name).set(uint64(id), v)
	return nil
}

// RemoveVertexProp implements core.Engine.
func (e *Engine) RemoveVertexProp(id core.ID, name string) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	if a := e.vattrs[name]; a != nil {
		a.remove(uint64(id))
	}
	return nil
}

// RemoveVertex implements core.Engine.
func (e *Engine) RemoveVertex(id core.ID) error {
	if !e.HasVertex(id) {
		return core.ErrNotFound
	}
	oid := uint64(id)
	var incident []uint64
	if b := e.out[oid]; b != nil {
		incident = append(incident, b.Slice()...)
	}
	if b := e.in[oid]; b != nil {
		incident = append(incident, b.Slice()...)
	}
	for _, eid := range incident {
		if e.edges.Contains(eid) {
			e.RemoveEdge(core.ID(eid))
		}
	}
	for _, a := range e.vattrs {
		a.remove(oid)
	}
	delete(e.out, oid)
	delete(e.in, oid)
	e.nodes.Remove(oid)
	return nil
}

// --- edge CRUD ---

// AddEdge implements core.Engine.
func (e *Engine) AddEdge(src, dst core.ID, label string, props core.Props) (core.ID, error) {
	if !e.HasVertex(src) || !e.HasVertex(dst) {
		return core.NoID, core.ErrNotFound
	}
	oid := e.nextOID
	e.nextOID++
	e.edges.Add(oid)
	e.srcOf[oid] = uint64(src)
	e.dstOf[oid] = uint64(dst)
	tok := e.labelTok(label)
	e.labelOf[oid] = tok
	e.byLabel[tok].Add(oid)
	ob := e.out[uint64(src)]
	if ob == nil {
		ob = bitmap.New()
		e.out[uint64(src)] = ob
	}
	ob.Add(oid)
	ib := e.in[uint64(dst)]
	if ib == nil {
		ib = bitmap.New()
		e.in[uint64(dst)] = ib
	}
	ib.Add(oid)
	for k, v := range props {
		e.eattr(k).set(oid, v)
	}
	return core.ID(oid), nil
}

// HasEdge implements core.Engine.
func (e *Engine) HasEdge(id core.ID) bool {
	return id >= 0 && e.edges.Contains(uint64(id))
}

// EdgeLabel implements core.Engine.
func (e *Engine) EdgeLabel(id core.ID) (string, error) {
	if !e.HasEdge(id) {
		return "", core.ErrNotFound
	}
	return e.labels[e.labelOf[uint64(id)]], nil
}

// EdgeEnds implements core.Engine.
func (e *Engine) EdgeEnds(id core.ID) (core.ID, core.ID, error) {
	if !e.HasEdge(id) {
		return core.NoID, core.NoID, core.ErrNotFound
	}
	return core.ID(e.srcOf[uint64(id)]), core.ID(e.dstOf[uint64(id)]), nil
}

// EdgeProps implements core.Engine.
func (e *Engine) EdgeProps(id core.ID) (core.Props, error) {
	if !e.HasEdge(id) {
		return nil, core.ErrNotFound
	}
	p := core.Props{}
	for name, a := range e.eattrs {
		if v, ok := a.vals[uint64(id)]; ok {
			p[name] = v
		}
	}
	if len(p) == 0 {
		return nil, nil
	}
	return p, nil
}

// EdgeProp implements core.Engine.
func (e *Engine) EdgeProp(id core.ID, name string) (core.Value, bool) {
	if !e.HasEdge(id) {
		return core.Nil, false
	}
	a := e.eattrs[name]
	if a == nil {
		return core.Nil, false
	}
	v, ok := a.vals[uint64(id)]
	return v, ok
}

// SetEdgeProp implements core.Engine.
func (e *Engine) SetEdgeProp(id core.ID, name string, v core.Value) error {
	if !e.HasEdge(id) {
		return core.ErrNotFound
	}
	e.eattr(name).set(uint64(id), v)
	return nil
}

// RemoveEdgeProp implements core.Engine.
func (e *Engine) RemoveEdgeProp(id core.ID, name string) error {
	if !e.HasEdge(id) {
		return core.ErrNotFound
	}
	if a := e.eattrs[name]; a != nil {
		a.remove(uint64(id))
	}
	return nil
}

// RemoveEdge implements core.Engine.
func (e *Engine) RemoveEdge(id core.ID) error {
	if !e.HasEdge(id) {
		return core.ErrNotFound
	}
	oid := uint64(id)
	if b := e.out[e.srcOf[oid]]; b != nil {
		b.Remove(oid)
	}
	if b := e.in[e.dstOf[oid]]; b != nil {
		b.Remove(oid)
	}
	if b := e.byLabel[e.labelOf[oid]]; b != nil {
		b.Remove(oid)
	}
	for _, a := range e.eattrs {
		a.remove(oid)
	}
	delete(e.srcOf, oid)
	delete(e.dstOf, oid)
	delete(e.labelOf, oid)
	e.edges.Remove(oid)
	return nil
}

// ConcurrentReads implements core.ConcurrentReader: Sparksee's modeled
// retention accounting (the paper's OOM-on-degree-filter behaviour)
// accumulates across in-flight reads, so its out-of-memory verdict
// depends on what else is running — the harness must not fan its
// batches out.
func (e *Engine) ConcurrentReads() bool { return false }

// ConcurrentWrites implements core.ConcurrentWriter: denied for the
// same reason reads are vetoed — the retention accounting makes
// results depend on what else is in flight, so a mixed workload has no
// serial schedule to be consistent with. Under core.Guard the engine
// is fully serialized and serves read-only workloads.
func (e *Engine) ConcurrentWrites() bool { return false }
