package gremlin

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/engines/neo"
	"repro/internal/engines/sqlg"
)

func TestGroupCount(t *testing.T) {
	for name, e := range testEngines() {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			hub, _ := e.AddVertex(nil)
			a, _ := e.AddVertex(nil)
			b, _ := e.AddVertex(nil)
			// hub reaches a twice (parallel edges) and b once.
			e.AddEdge(hub, a, "l", nil)
			e.AddEdge(hub, a, "l", nil)
			e.AddEdge(hub, b, "l", nil)
			counts, err := New(e).VID(hub).Out().GroupCount(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if counts[a] != 2 || counts[b] != 1 || len(counts) != 2 {
				t.Fatalf("GroupCount = %v", counts)
			}
		})
	}
}

func TestOrderByAndTopK(t *testing.T) {
	e := neo.New(neo.V19)
	defer e.Close()
	scores := []int64{30, 10, 50, 20, 40}
	var ids []core.ID
	for _, s := range scores {
		id, _ := e.AddVertex(core.Props{"score": core.I(s)})
		ids = append(ids, id)
	}
	noScore, _ := e.AddVertex(nil)
	ctx := context.Background()
	g := New(e)

	asc, err := g.V().OrderBy(ctx, "score", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(asc) != 6 {
		t.Fatalf("OrderBy kept %d elements", len(asc))
	}
	wantAsc := []int64{10, 20, 30, 40, 50}
	for i, w := range wantAsc {
		if asc[i].Value.Int() != w {
			t.Fatalf("asc[%d] = %v, want %d", i, asc[i].Value, w)
		}
	}
	if asc[5].ID != noScore || !asc[5].Value.IsNil() {
		t.Fatalf("missing property must sort last: %+v", asc[5])
	}

	top, err := g.V().TopK(ctx, "score", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Value.Int() != 50 || top[1].Value.Int() != 40 {
		t.Fatalf("TopK = %+v", top)
	}
	if top[0].ID != ids[2] {
		t.Fatalf("TopK id = %v, want %v", top[0].ID, ids[2])
	}

	// k larger than the result keeps everything.
	all, _ := g.V().TopK(ctx, "score", 100, false)
	if len(all) != 6 {
		t.Fatalf("TopK(100) = %d", len(all))
	}
}

func TestOrderByEdgesAndStability(t *testing.T) {
	e := sqlg.New()
	defer e.Close()
	a, _ := e.AddVertex(nil)
	b, _ := e.AddVertex(nil)
	e.AddEdge(a, b, "l", core.Props{"w": core.I(5)})
	e.AddEdge(a, b, "l", core.Props{"w": core.I(5)})
	e.AddEdge(a, b, "l", core.Props{"w": core.I(1)})
	ranked, err := New(e).E().OrderBy(context.Background(), "w", false)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Value.Int() != 1 {
		t.Fatalf("edge order wrong: %+v", ranked)
	}
	// Equal values tie-break by id, ascending.
	if ranked[1].ID > ranked[2].ID {
		t.Fatalf("tie-break not by id: %+v", ranked[1:])
	}
}

func TestSampleDeterministicAndBounded(t *testing.T) {
	e := neo.New(neo.V19)
	defer e.Close()
	for i := 0; i < 100; i++ {
		e.AddVertex(core.Props{"i": core.I(int64(i))})
	}
	ctx := context.Background()
	g := New(e)
	s1, err := g.V().Sample(10, 7).IDs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := g.V().Sample(10, 7).IDs(ctx)
	if len(s1) != 10 || len(s2) != 10 {
		t.Fatalf("sample sizes = %d, %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	s3, _ := g.V().Sample(10, 8).IDs(ctx)
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
	// Sampling more than exists returns everything.
	all, _ := g.V().Sample(500, 1).Count(ctx)
	if all != 100 {
		t.Fatalf("oversample = %d", all)
	}
	// Distinct elements only.
	seen := map[core.ID]bool{}
	for _, id := range s1 {
		if seen[id] {
			t.Fatal("sample contains duplicates")
		}
		seen[id] = true
	}
}

func TestSamplePropagatesErrors(t *testing.T) {
	e := neo.New(neo.V19)
	defer e.Close()
	for i := 0; i < 10; i++ {
		e.AddVertex(nil)
	}
	boom := errFixed("boom")
	_, err := New(e).V().
		Filter(func(core.ID) (bool, error) { return false, boom }).
		Sample(3, 1).
		Count(context.Background())
	if err == nil {
		t.Fatal("sample swallowed upstream error")
	}
}

type errFixed string

func (e errFixed) Error() string { return string(e) }
