package gremlin

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engines/sqlg"
)

// propGraph generates a random graph whose vertices and edges carry
// filterable properties: vertex "color" (three values), vertex "n"
// (unique), edge "w" (four values), edge labels a–d.
func propGraph(seed int64) *core.Graph {
	rng := rand.New(rand.NewSource(seed))
	nv := 20 + rng.Intn(20)
	ne := 2*nv + rng.Intn(2*nv)
	g := core.NewGraph(nv, ne)
	colors := []string{"red", "green", "blue"}
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < nv; i++ {
		g.AddVertex(core.Props{
			"n":     core.I(int64(i)),
			"color": core.S(colors[rng.Intn(len(colors))]),
		})
	}
	for i := 0; i < ne; i++ {
		g.AddEdge(rng.Intn(nv), rng.Intn(nv), labels[rng.Intn(len(labels))],
			core.Props{"w": core.I(int64(rng.Intn(4)))})
	}
	return g
}

// planCases is the representative Q1–Q35-style traversal grid the
// determinism suite runs under both optimizer modes. Each case builds a
// fresh traversal (Store/Except sets are per-build, so the two modes
// never share mutable state).
func planCases() []struct {
	name  string
	build func(gr G, res *core.LoadResult) *Traversal
} {
	firstThree := func(res *core.LoadResult) map[core.ID]struct{} {
		set := make(map[core.ID]struct{})
		for _, id := range res.VertexIDs[:3] {
			set[id] = struct{}{}
		}
		return set
	}
	return []struct {
		name  string
		build func(gr G, res *core.LoadResult) *Traversal
	}{
		{"has", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().Has("color", core.S("red"))
		}},
		{"vhas-explicit", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.VHas("color", core.S("red"))
		}},
		{"filter-late", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().DegreeAtLeast(core.DirBoth, 3).Has("color", core.S("red"))
		}},
		{"filter-early", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().Has("color", core.S("red")).DegreeAtLeast(core.DirBoth, 3)
		}},
		{"edge-has-then-label", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.E().Has("w", core.I(1)).HasLabel("b")
		}},
		{"edge-label-then-has", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.E().HasLabel("b").Has("w", core.I(1))
		}},
		{"ehaslabel-explicit", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.EHasLabel("c")
		}},
		{"ehas-explicit", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.EHas("w", core.I(2))
		}},
		{"expand-dedup", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().Out("a", "b").Dedup()
		}},
		{"two-hop", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().Has("color", core.S("red")).Out().Has("color", core.S("blue"))
		}},
		{"both-dedup-degree", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().Both().Dedup().DegreeAtLeast(core.DirOut, 1)
		}},
		{"limit-label", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.E().HasLabel("c").Limit(3)
		}},
		{"limit", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.E().Limit(5)
		}},
		{"oute-inv", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().OutE("a").InV().Dedup()
		}},
		{"except-then-has", func(gr G, res *core.LoadResult) *Traversal {
			return gr.V().Except(firstThree(res)).Has("color", core.S("red"))
		}},
		{"has-then-except", func(gr G, res *core.LoadResult) *Traversal {
			return gr.V().Has("color", core.S("red")).Except(firstThree(res))
		}},
		{"store-barrier", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().Has("color", core.S("red")).Store(map[core.ID]struct{}{}).DegreeAtLeast(core.DirBoth, 2)
		}},
		{"sample", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.V().Sample(5, 7)
		}},
		{"filterfunc-barrier", func(gr G, _ *core.LoadResult) *Traversal {
			e := gr.Engine()
			return gr.V().DegreeAtLeast(core.DirBoth, 1).Filter(func(id core.ID) (bool, error) {
				n, ok := e.VertexProp(id, "n")
				return ok && n.Compare(core.I(5)) > 0, nil
			}).Has("color", core.S("green"))
		}},
		{"triple-filter", func(gr G, _ *core.LoadResult) *Traversal {
			return gr.E().Has("w", core.I(0)).HasLabel("a").Limit(10)
		}},
	}
}

// TestOptimizerOnOffElementIdentical is the cross-engine determinism
// suite: for every engine in the catalog and every traversal in the
// grid, optimizer-on execution must yield the same elements in the
// same order as optimizer-off execution.
func TestOptimizerOnOffElementIdentical(t *testing.T) {
	ctxOn := context.Background()
	ctxOff := WithoutOptimizer(context.Background())
	cases := planCases()
	for _, seed := range []int64{1, 42, 9000} {
		g := propGraph(seed)
		for name, e := range allEngines() {
			res, err := e.BulkLoad(g)
			if err != nil {
				t.Fatalf("%s: load: %v", name, err)
			}
			gr := New(e)
			for _, tc := range cases {
				on, err1 := tc.build(gr, res).IDs(ctxOn)
				off, err2 := tc.build(gr, res).IDs(ctxOff)
				if err1 != nil || err2 != nil {
					t.Errorf("%s/%s: errors on=%v off=%v [seed %d]", name, tc.name, err1, err2, seed)
					continue
				}
				if len(on) != len(off) {
					t.Errorf("%s/%s: optimizer changed cardinality: on=%d off=%d [seed %d]", name, tc.name, len(on), len(off), seed)
					continue
				}
				for i := range on {
					if on[i] != off[i] {
						t.Errorf("%s/%s: element %d differs: on=%d off=%d [seed %d]", name, tc.name, i, on[i], off[i], seed)
						break
					}
				}
			}
			e.Close()
		}
	}
}

// TestStoreBarrierSetsIdentical: the set a Store step populates must be
// identical under both optimizer modes — filters must never migrate
// across the Store barrier.
func TestStoreBarrierSetsIdentical(t *testing.T) {
	g := propGraph(3)
	for name, e := range allEngines() {
		if _, err := e.BulkLoad(g); err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		gr := New(e)
		run := func(ctx context.Context) []core.ID {
			set := map[core.ID]struct{}{}
			_, err := gr.V().DegreeAtLeast(core.DirBoth, 2).Store(set).Has("color", core.S("red")).Count(ctx)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			ids := make([]core.ID, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids
		}
		on := run(context.Background())
		off := run(WithoutOptimizer(context.Background()))
		if len(on) != len(off) {
			t.Fatalf("%s: stored set sizes differ: on=%d off=%d", name, len(on), len(off))
		}
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("%s: stored sets differ at %d", name, i)
			}
		}
		e.Close()
	}
}

// TestOptimizeReordersWithinRuns exercises the commutability rules on
// the plan alone (heuristic selectivities, no engine).
func TestOptimizeReordersWithinRuns(t *testing.T) {
	ops := func(steps []Step) []Op {
		out := make([]Op, len(steps))
		for i, s := range steps {
			out[i] = s.Op
		}
		return out
	}
	eq := func(a, b []Op) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	// A cheap selective Has overtakes an expensive Degree.
	got := ops(optimize([]Step{
		{Op: OpSourceV}, {Op: OpDegree, Dir: core.DirBoth, K: 3}, {Op: OpHas, Name: "p"},
	}, nil))
	if !eq(got, []Op{OpSourceV, OpHas, OpDegree}) {
		t.Errorf("degree/has not reordered: %v", got)
	}

	// An opaque FilterFunc is a barrier: nothing crosses it.
	got = ops(optimize([]Step{
		{Op: OpSourceV}, {Op: OpDegree, Dir: core.DirBoth, K: 3}, {Op: OpFilterFunc}, {Op: OpHas, Name: "p"},
	}, nil))
	if !eq(got, []Op{OpSourceV, OpDegree, OpFilterFunc, OpHas}) {
		t.Errorf("filterfunc barrier crossed: %v", got)
	}

	// Dedup, Store, Limit pin their positions too.
	got = ops(optimize([]Step{
		{Op: OpSourceV}, {Op: OpDegree, Dir: core.DirBoth, K: 3}, {Op: OpStore}, {Op: OpHas, Name: "p"}, {Op: OpLimit, N: 1},
	}, nil))
	if !eq(got, []Op{OpSourceV, OpDegree, OpStore, OpHas, OpLimit}) {
		t.Errorf("store/limit barrier crossed: %v", got)
	}

	// HasLabel (heuristically most selective per cost) leads its run,
	// which then makes it fusable into the source.
	reordered := optimize([]Step{
		{Op: OpSourceE}, {Op: OpHas, Name: "w"}, {Op: OpHasLabel, Label: "b"},
	}, nil)
	if !eq(ops(reordered), []Op{OpSourceE, OpHasLabel, OpHas}) {
		t.Errorf("hasLabel not promoted: %v", ops(reordered))
	}
	if !fusedSource(reordered, true) {
		t.Error("promoted hasLabel should fuse into the E() source")
	}
}

// TestExplainByteStable: Explain output is byte-identical across
// repeated calls, across traversal rebuilds, and across engine
// instances loading the same dataset.
func TestExplainByteStable(t *testing.T) {
	ctx := context.Background()
	g := propGraph(7)
	build := func(e core.Engine) *Traversal {
		return New(e).V().DegreeAtLeast(core.DirBoth, 3).Has("color", core.S("red")).Out("a").Dedup().Limit(10)
	}
	render := func() string {
		e := sqlg.New()
		defer e.Close()
		if _, err := e.BulkLoad(g); err != nil {
			t.Fatal(err)
		}
		return build(e).Explain(ctx).String()
	}
	want := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != want {
			t.Fatalf("explain output drifted:\n%s\nvs\n%s", got, want)
		}
	}

	// The optimized plan runs the cheap selective filter first…
	if strings.Index(want, "has(color=red)") > strings.Index(want, "degreeAtLeast") {
		t.Errorf("optimized plan did not promote has before degreeAtLeast:\n%s", want)
	}
	// …and the as-written plan preserves builder order.
	e := sqlg.New()
	defer e.Close()
	if _, err := e.BulkLoad(g); err != nil {
		t.Fatal(err)
	}
	plain := build(e).Explain(WithoutOptimizer(ctx)).String()
	if strings.Index(plain, "has(color=red)") < strings.Index(plain, "degreeAtLeast") {
		t.Errorf("as-written plan was reordered:\n%s", plain)
	}
	if !strings.Contains(plain, "as-written") || !strings.Contains(want, "optimized") {
		t.Errorf("plan headers wrong:\n%s\n%s", plain, want)
	}
}

// TestExplainEstimatesWithoutStats: an engine populated element by
// element (no BulkLoad) has no statistics; Explain must render unknown
// estimates rather than fabricating numbers.
func TestExplainEstimatesWithoutStats(t *testing.T) {
	e := sqlg.New()
	defer e.Close()
	v1, _ := e.AddVertex(core.Props{"color": core.S("red")})
	v2, _ := e.AddVertex(nil)
	if _, err := e.AddEdge(v1, v2, "a", nil); err != nil {
		t.Fatal(err)
	}
	p := New(e).V().Has("color", core.S("red")).Explain(context.Background())
	if p.HasStats {
		t.Fatal("element-wise engine should not carry plan stats")
	}
	out := p.String()
	if !strings.Contains(out, "no stats") || !strings.Contains(out, "?") {
		t.Errorf("expected unknown estimates:\n%s", out)
	}
}

// TestOrderByKindFromPlanOutput is the regression test for the OrderBy
// kind derivation: after a vertex→edge expansion the terminal must
// fetch the sort property from edge properties, even though the
// traversal began with vertices (and vice versa for edge→vertex).
func TestOrderByKindFromPlanOutput(t *testing.T) {
	ctx := context.Background()
	e := sqlg.New()
	defer e.Close()
	// Vertices and edges both carry "w", with disjoint value ranges:
	// vertex w ∈ {100,101,102}, edge w ∈ {0,1,2}.
	var vs []core.ID
	for i := 0; i < 3; i++ {
		id, err := e.AddVertex(core.Props{"w": core.I(int64(100 + i))})
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, id)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.AddEdge(vs[i], vs[(i+1)%3], "x", core.Props{"w": core.I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	ranked, err := New(e).V().OutE("x").OrderBy(ctx, "w", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("got %d edges, want 3", len(ranked))
	}
	for i, r := range ranked {
		if r.Value.Compare(core.I(int64(i))) != 0 {
			t.Fatalf("rank %d: got %v — OrderBy fetched vertex properties for an edge stream", i, r.Value)
		}
	}

	// Edge→vertex direction: values must be the vertex range.
	ranked, err = New(e).E().InV().Dedup().OrderBy(ctx, "w", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("got %d vertices, want 3", len(ranked))
	}
	for _, r := range ranked {
		if r.Value.Compare(core.I(100)) < 0 {
			t.Fatalf("got %v — OrderBy fetched edge properties for a vertex stream", r.Value)
		}
	}
}

// TestStepsReturnsBuilderOrder: Steps exposes the as-written plan and
// is a copy — mutating it must not affect execution.
func TestStepsReturnsBuilderOrder(t *testing.T) {
	e := sqlg.New()
	defer e.Close()
	tr := New(e).V().DegreeAtLeast(core.DirBoth, 1).Has("color", core.S("red"))
	steps := tr.Steps()
	if len(steps) != 3 || steps[1].Op != OpDegree || steps[2].Op != OpHas {
		t.Fatalf("unexpected plan: %v", steps)
	}
	steps[1] = Step{Op: OpLimit, N: 0}
	if got := tr.Steps(); got[1].Op != OpDegree {
		t.Fatal("Steps must return a copy")
	}
}
