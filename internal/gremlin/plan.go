package gremlin

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Op identifies one logical step kind of the traversal plan. Builder
// methods append Step values; nothing executes until a terminal
// compiles the plan (see compile.go), which is what makes steps
// inspectable, reorderable and explainable before any element flows.
type Op uint8

// Plan step operators.
const (
	// Sources (exactly one, always first).
	OpSourceV   Op = iota // all vertices (g.V)
	OpSourceE             // all edges (g.E)
	OpSourceVID           // one vertex by id (g.V(id))
	OpSourceEID           // one edge by id (g.E(id))

	// Filters — pure per-element predicates; commutable (see
	// optimize.go for the commutability rules).
	OpHas      // property equality
	OpHasLabel // edge label equality
	OpDegree   // degree-at-least threshold
	OpExcept   // drop members of a set

	// Expansions — change the element stream.
	OpOut   // vertex → vertex, outgoing
	OpIn    // vertex → vertex, incoming
	OpBoth  // vertex → vertex, both
	OpOutE  // vertex → edge, outgoing
	OpInE   // vertex → edge, incoming
	OpBothE // vertex → edge, both
	OpOutV  // edge → source vertex
	OpInV   // edge → destination vertex

	// Barriers and stream shapers — order-pinned.
	OpFilterFunc // opaque user predicate (side effects unknown)
	OpDedup      // first occurrence of each id
	OpStore      // add passing elements to a set
	OpLimit      // stop after n elements
	OpSample     // deterministic reservoir sample
)

// String returns the operator's Gremlin-flavoured name.
func (op Op) String() string {
	switch op {
	case OpSourceV:
		return "V()"
	case OpSourceE:
		return "E()"
	case OpSourceVID:
		return "V(id)"
	case OpSourceEID:
		return "E(id)"
	case OpHas:
		return "has"
	case OpHasLabel:
		return "hasLabel"
	case OpDegree:
		return "degreeAtLeast"
	case OpExcept:
		return "except"
	case OpOut:
		return "out"
	case OpIn:
		return "in"
	case OpBoth:
		return "both"
	case OpOutE:
		return "outE"
	case OpInE:
		return "inE"
	case OpBothE:
		return "bothE"
	case OpOutV:
		return "outV"
	case OpInV:
		return "inV"
	case OpFilterFunc:
		return "filter"
	case OpDedup:
		return "dedup"
	case OpStore:
		return "store"
	case OpLimit:
		return "limit"
	case OpSample:
		return "sample"
	}
	return "unknown"
}

// Step is one declarative node of the logical plan. Only the fields
// its Op consumes are set.
type Step struct {
	Op   Op
	Kind Kind // element kind this step OUTPUTS (and, for filters, filters)

	Name  string     // Has: property name
	Value core.Value // Has: property value
	Label string     // HasLabel: edge label

	Labels []string       // expansions: label restriction
	Dir    core.Direction // Degree: direction
	K      int64          // Degree: threshold
	N      int64          // Limit / Sample: element budget
	Seed   int64          // Sample: PRNG seed
	ID     core.ID        // SourceVID / SourceEID

	Keep func(core.ID) (bool, error) // FilterFunc predicate
	Set  map[core.ID]struct{}        // Except / Store set

	// Explicit marks a Has/HasLabel written through the G.VHas /
	// G.EHas / G.EHasLabel entry constructors: the workload requests
	// the engine's index surface deliberately (the paper's source-step
	// fast path), so the compiler fuses it into the source even with
	// the optimizer off. A plain mid-chain .has() sets it false and is
	// fused only when the optimizer is on.
	Explicit bool
}

// label renders the step with its arguments, e.g. `has(name=x)`.
func (s Step) label() string {
	switch s.Op {
	case OpHas:
		return fmt.Sprintf("has(%s=%s)", s.Name, s.Value)
	case OpHasLabel:
		return fmt.Sprintf("hasLabel(%s)", s.Label)
	case OpDegree:
		return fmt.Sprintf("degreeAtLeast(%s,%d)", s.Dir, s.K)
	case OpExcept:
		return fmt.Sprintf("except(|set|=%d)", len(s.Set))
	case OpOut, OpIn, OpBoth, OpOutE, OpInE, OpBothE:
		if len(s.Labels) > 0 {
			return fmt.Sprintf("%s(%s)", s.Op, strings.Join(s.Labels, ","))
		}
		return s.Op.String() + "()"
	case OpLimit:
		return fmt.Sprintf("limit(%d)", s.N)
	case OpSample:
		return fmt.Sprintf("sample(%d)", s.N)
	case OpSourceVID, OpSourceEID:
		return s.Op.String()
	case OpSourceV, OpSourceE:
		return s.Op.String()
	default:
		return s.Op.String() + "()"
	}
}

// isFilter reports whether the step is a pure per-element predicate:
// its verdict depends only on the element id (and, for Except, on set
// contents that nothing between two filters can change), so any two
// adjacent filters commute without changing the output sequence.
func (s Step) isFilter() bool {
	switch s.Op {
	case OpHas, OpHasLabel, OpDegree, OpExcept:
		return true
	}
	return false
}

// isSource reports whether the step roots the plan.
func (s Step) isSource() bool {
	switch s.Op {
	case OpSourceV, OpSourceE, OpSourceVID, OpSourceEID:
		return true
	}
	return false
}

// Steps returns a copy of the traversal's logical plan, in builder
// order (before any optimization).
func (t *Traversal) Steps() []Step {
	return append([]Step(nil), t.steps...)
}

// outputKind derives the element kind a plan produces from its final
// step — the plan is the single source of truth, so a terminal that
// needs the kind (OrderBy, Values) can never consult a stale field
// after steps have been reordered or fused.
func outputKind(steps []Step) Kind {
	if len(steps) == 0 {
		return KindVertex
	}
	return steps[len(steps)-1].Kind
}
