package gremlin

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/engines/arango"
	"repro/internal/engines/blaze"
	"repro/internal/engines/neo"
	"repro/internal/engines/orient"
	"repro/internal/engines/sparksee"
	"repro/internal/engines/sqlg"
	"repro/internal/engines/titan"
)

// allEngines builds one fresh instance of each configuration.
func allEngines() map[string]core.Engine {
	return map[string]core.Engine{
		"arango":    arango.New(),
		"blaze":     blaze.New(),
		"neo-1.9":   neo.New(neo.V19),
		"neo-3.0":   neo.New(neo.V30),
		"orient":    orient.New(),
		"sparksee":  sparksee.New(),
		"sqlg":      sqlg.New(),
		"titan-0.5": titan.New(titan.V05),
		"titan-1.0": titan.New(titan.V10),
	}
}

func randomGraph(seed int64) *core.Graph {
	rng := rand.New(rand.NewSource(seed))
	nv := 10 + rng.Intn(25)
	ne := nv + rng.Intn(3*nv)
	g := core.NewGraph(nv, ne)
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < nv; i++ {
		g.AddVertex(core.Props{"n": core.I(int64(i))})
	}
	for i := 0; i < ne; i++ {
		g.AddEdge(rng.Intn(nv), rng.Intn(nv), labels[rng.Intn(len(labels))], nil)
	}
	return g
}

// refBFS computes BFS reach on the dataset graph directly.
func refBFS(g *core.Graph, start, depth int, label string) int {
	adj := make([][]int, g.NumVertices())
	for i := range g.EdgeL {
		e := &g.EdgeL[i]
		if label != "" && e.Label != label {
			continue
		}
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	visited := map[int]bool{start: true}
	frontier := []int{start}
	count := 0
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []int
		for _, v := range frontier {
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					count++
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return count
}

// refSPLen computes shortest-path length (vertex count) or 0.
func refSPLen(g *core.Graph, a, b int) int {
	if a == b {
		return 1
	}
	adj := make([][]int, g.NumVertices())
	for i := range g.EdgeL {
		e := &g.EdgeL[i]
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
	}
	dist := map[int]int{a: 1}
	frontier := []int{a}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, w := range adj[v] {
				if _, seen := dist[w]; seen {
					continue
				}
				dist[w] = dist[v] + 1
				if w == b {
					return dist[w]
				}
				next = append(next, w)
			}
		}
		frontier = next
	}
	return 0
}

// TestQuickBFSAndSPMatchReferenceOnAllEngines is the heavyweight
// cross-validation: on random graphs, every engine's BFS reach and
// shortest-path length must equal a reference computed directly on the
// dataset — across depths and label filters.
func TestQuickBFSAndSPMatchReferenceOnAllEngines(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		g := randomGraph(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5ee))
		start := rng.Intn(g.NumVertices())
		target := rng.Intn(g.NumVertices())
		depth := 1 + rng.Intn(4)

		wantBFS := refBFS(g, start, depth, "")
		wantBFSLab := refBFS(g, start, depth, "b")
		wantSP := refSPLen(g, start, target)

		for name, e := range allEngines() {
			res, err := e.BulkLoad(g)
			if err != nil {
				t.Logf("%s: load: %v", name, err)
				return false
			}
			got, err := BFS(ctx, e, res.VertexIDs[start], depth)
			if err != nil || len(got) != wantBFS {
				t.Logf("%s: BFS = %d (err %v), want %d [seed %d]", name, len(got), err, wantBFS, seed)
				return false
			}
			gotLab, err := BFS(ctx, e, res.VertexIDs[start], depth, "b")
			if err != nil || len(gotLab) != wantBFSLab {
				t.Logf("%s: BFS(b) = %d, want %d [seed %d]", name, len(gotLab), wantBFSLab, seed)
				return false
			}
			path, err := ShortestPath(ctx, e, res.VertexIDs[start], res.VertexIDs[target])
			if err != nil || len(path) != wantSP {
				t.Logf("%s: SP = %d, want %d [seed %d]", name, len(path), wantSP, seed)
				return false
			}
			e.Close()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestQuickDegreeDistributionsAgree: the multiset of vertex degrees
// reported by each engine must equal the dataset's.
func TestQuickDegreeDistributionsAgree(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		wantOut := make([]int, g.NumVertices())
		wantIn := make([]int, g.NumVertices())
		for i := range g.EdgeL {
			wantOut[g.EdgeL[i].Src]++
			wantIn[g.EdgeL[i].Dst]++
		}
		sortInts := func(s []int) { sort.Ints(s) }
		wo := append([]int(nil), wantOut...)
		wi := append([]int(nil), wantIn...)
		sortInts(wo)
		sortInts(wi)
		for name, e := range allEngines() {
			res, err := e.BulkLoad(g)
			if err != nil {
				return false
			}
			var gotOut, gotIn []int
			for _, vid := range res.VertexIDs {
				o, err1 := e.Degree(vid, core.DirOut)
				in, err2 := e.Degree(vid, core.DirIn)
				if err1 != nil || err2 != nil {
					t.Logf("%s: degree errors: %v %v", name, err1, err2)
					return false
				}
				gotOut = append(gotOut, int(o))
				gotIn = append(gotIn, int(in))
			}
			sortInts(gotOut)
			sortInts(gotIn)
			for i := range wo {
				if gotOut[i] != wo[i] || gotIn[i] != wi[i] {
					t.Logf("%s: degree distribution mismatch [seed %d]", name, seed)
					return false
				}
			}
			e.Close()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestQuickScanConsistency: g.V().Count, g.E().Count and per-label edge
// counts agree with the dataset on every engine, after random edge
// deletions applied identically everywhere.
func TestQuickScanConsistency(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		g := randomGraph(seed)
		rng := rand.New(rand.NewSource(seed ^ 0xdead))
		del := map[int]bool{}
		for i := 0; i < g.NumEdges()/5; i++ {
			del[rng.Intn(g.NumEdges())] = true
		}
		labelCount := map[string]int64{}
		live := 0
		for i := range g.EdgeL {
			if !del[i] {
				labelCount[g.EdgeL[i].Label]++
				live++
			}
		}
		for name, e := range allEngines() {
			res, err := e.BulkLoad(g)
			if err != nil {
				return false
			}
			for i := range del {
				if err := e.RemoveEdge(res.EdgeIDs[i]); err != nil {
					t.Logf("%s: remove: %v", name, err)
					return false
				}
			}
			gr := New(e)
			nv, _ := gr.V().Count(ctx)
			ne, _ := gr.E().Count(ctx)
			if nv != int64(g.NumVertices()) || ne != int64(live) {
				t.Logf("%s: counts %d/%d want %d/%d [seed %d]", name, nv, ne, g.NumVertices(), live, seed)
				return false
			}
			for _, l := range []string{"a", "b", "c", "d"} {
				n, _ := gr.EHasLabel(l).Count(ctx)
				if n != labelCount[l] {
					t.Logf("%s: label %s = %d want %d [seed %d]", name, l, n, labelCount[l], seed)
					return false
				}
			}
			e.Close()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
