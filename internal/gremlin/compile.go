package gremlin

import (
	"context"

	"repro/internal/core"
)

// compile turns the logical plan into an executable stream. When the
// optimizer is enabled for ctx, commutable filters are reordered first
// (optimize.go); lowering then walks the ordered steps once, fusing an
// index-served leading filter into the source and each maximal run of
// predicate steps into a single filter loop. The traversal's own plan
// is never mutated — compiling is repeatable and Explain sees the same
// plan the executor ran.
func (t *Traversal) compile(ctx context.Context) stream {
	steps := t.steps
	opt := OptimizerEnabled(ctx)
	if opt {
		steps = optimize(steps, engineStats(t.e))
	}
	return lower(t.e, steps, opt)
}

// lower translates ordered steps into a chain of pull-based streams.
// Each stage pulls from its upstream only on demand, so a downstream
// Limit that stops pulling stops the whole chain — including the
// engine iterators inside the source — without any push-side
// cooperation (the Limit short-circuit the closure pipeline could not
// express).
func lower(e core.Engine, steps []Step, opt bool) stream {
	if len(steps) == 0 || !steps[0].isSource() {
		return func() (core.ID, bool, error) { return core.NoID, false, nil }
	}
	s, i := lowerSource(e, steps, opt)
	for i < len(steps) {
		st := steps[i]
		if isPredicate(st) {
			// Fuse the whole predicate run into one filter loop.
			j := i + 1
			for j < len(steps) && isPredicate(steps[j]) {
				j++
			}
			s = filterStage(e, s, steps[i:j])
			i = j
			continue
		}
		switch st.Op {
		case OpOut, OpIn, OpBoth:
			s = flatMapStage(s, neighborExpand(e, st))
		case OpOutE, OpInE, OpBothE:
			s = flatMapStage(s, incidentExpand(e, st))
		case OpOutV:
			s = flatMapStage(s, endExpand(e, false))
		case OpInV:
			s = flatMapStage(s, endExpand(e, true))
		case OpDedup:
			s = dedupStage(s)
		case OpStore:
			s = storeStage(s, st.Set)
		case OpLimit:
			s = limitStage(s, st.N)
		case OpSample:
			s = sampleStage(s, st.N, st.Seed)
		}
		i++
	}
	return s
}

// lowerSource emits the plan's source stream and returns the index of
// the first unconsumed step. A leading Has/HasLabel filter is fused
// into the engine's index surface (VerticesByProp / EdgesByProp /
// EdgesByLabel) when the filter is Explicit — the workload asked for
// the index, Q11–Q13 — or when the optimizer is on. Fusion preserves
// the element sequence because every engine's ByProp/ByLabel surface
// yields ids in the same ascending order its full scan does.
func lowerSource(e core.Engine, steps []Step, opt bool) (stream, int) {
	src := steps[0]
	if len(steps) > 1 && (steps[1].Explicit || opt) {
		next := steps[1]
		switch {
		case src.Op == OpSourceV && next.Op == OpHas:
			return fromIter(e.VerticesByProp(next.Name, next.Value)), 2
		case src.Op == OpSourceE && next.Op == OpHasLabel:
			return fromIter(e.EdgesByLabel(next.Label)), 2
		case src.Op == OpSourceE && next.Op == OpHas:
			return fromIter(e.EdgesByProp(next.Name, next.Value)), 2
		}
	}
	switch src.Op {
	case OpSourceV:
		return fromIter(e.Vertices()), 1
	case OpSourceE:
		return fromIter(e.Edges()), 1
	case OpSourceVID:
		var ids []core.ID
		if e.HasVertex(src.ID) {
			ids = append(ids, src.ID)
		}
		return fromIter(core.SliceIter(ids)), 1
	default: // OpSourceEID
		var ids []core.ID
		if e.HasEdge(src.ID) {
			ids = append(ids, src.ID)
		}
		return fromIter(core.SliceIter(ids)), 1
	}
}

// fusedSource reports whether lowering would serve the plan's second
// step from the engine index surface (shared with Explain so the
// rendered plan matches what executes).
func fusedSource(steps []Step, opt bool) bool {
	if len(steps) < 2 || !(steps[1].Explicit || opt) {
		return false
	}
	switch {
	case steps[0].Op == OpSourceV && steps[1].Op == OpHas,
		steps[0].Op == OpSourceE && steps[1].Op == OpHasLabel,
		steps[0].Op == OpSourceE && steps[1].Op == OpHas:
		return true
	}
	return false
}

// isPredicate reports whether lowering can fold the step into a fused
// filter loop. This is broader than Step.isFilter: an opaque FilterFunc
// never *reorders*, but once the order is fixed it evaluates like any
// other per-element predicate.
func isPredicate(s Step) bool {
	return s.isFilter() || s.Op == OpFilterFunc
}

// predicate compiles one filter step to its per-element test. The
// engine call patterns match the closure API exactly — per-element
// property probes, label fetches and degree counts — so optimizer-off
// execution is indistinguishable from the pre-plan implementation, and
// engine failures (core.ErrOutOfMemory from Degree on Q28–Q31) still
// abort the traversal.
func predicate(e core.Engine, s Step) func(core.ID) (bool, error) {
	switch s.Op {
	case OpHas:
		if s.Kind == KindVertex {
			return func(id core.ID) (bool, error) {
				got, ok := e.VertexProp(id, s.Name)
				return ok && got.Compare(s.Value) == 0, nil
			}
		}
		return func(id core.ID) (bool, error) {
			got, ok := e.EdgeProp(id, s.Name)
			return ok && got.Compare(s.Value) == 0, nil
		}
	case OpHasLabel:
		return func(id core.ID) (bool, error) {
			l, err := e.EdgeLabel(id)
			if err != nil {
				return false, nil
			}
			return l == s.Label, nil
		}
	case OpDegree:
		return func(id core.ID) (bool, error) {
			deg, err := e.Degree(id, s.Dir)
			if err != nil {
				return false, err
			}
			return deg >= s.K, nil
		}
	case OpExcept:
		return func(id core.ID) (bool, error) {
			_, in := s.Set[id]
			return !in, nil
		}
	default: // OpFilterFunc
		return s.Keep
	}
}

// filterStage lowers a run of predicate steps into a single loop: each
// element is tested against the conjunction in plan order, with no
// intermediate stream frames between the predicates.
func filterStage(e core.Engine, src stream, run []Step) stream {
	preds := make([]func(core.ID) (bool, error), len(run))
	for i, s := range run {
		preds[i] = predicate(e, s)
	}
	return func() (core.ID, bool, error) {
	next:
		for {
			id, ok, err := src()
			if err != nil || !ok {
				return core.NoID, false, err
			}
			for _, p := range preds {
				hit, err := p(id)
				if err != nil {
					return core.NoID, false, err
				}
				if !hit {
					continue next
				}
			}
			return id, true, nil
		}
	}
}

// flatMapStage expands each incoming element through expand.
func flatMapStage(src stream, expand func(core.ID) core.Iter[core.ID]) stream {
	var cur core.Iter[core.ID]
	return func() (core.ID, bool, error) {
		for {
			if cur != nil {
				if id, ok := cur(); ok {
					return id, true, nil
				}
				cur = nil
			}
			id, ok, err := src()
			if err != nil || !ok {
				return core.NoID, false, err
			}
			cur = expand(id)
		}
	}
}

func neighborExpand(e core.Engine, s Step) func(core.ID) core.Iter[core.ID] {
	var d core.Direction
	switch s.Op {
	case OpOut:
		d = core.DirOut
	case OpIn:
		d = core.DirIn
	default:
		d = core.DirBoth
	}
	return func(id core.ID) core.Iter[core.ID] {
		return e.Neighbors(id, d, s.Labels...)
	}
}

func incidentExpand(e core.Engine, s Step) func(core.ID) core.Iter[core.ID] {
	var d core.Direction
	switch s.Op {
	case OpOutE:
		d = core.DirOut
	case OpInE:
		d = core.DirIn
	default:
		d = core.DirBoth
	}
	return func(id core.ID) core.Iter[core.ID] {
		return e.IncidentEdges(id, d, s.Labels...)
	}
}

func endExpand(e core.Engine, in bool) func(core.ID) core.Iter[core.ID] {
	return func(id core.ID) core.Iter[core.ID] {
		src, dst, err := e.EdgeEnds(id)
		if err != nil {
			return core.EmptyIter[core.ID]()
		}
		if in {
			return core.SliceIter([]core.ID{dst})
		}
		return core.SliceIter([]core.ID{src})
	}
}

func dedupStage(src stream) stream {
	seen := make(map[core.ID]struct{})
	return func() (core.ID, bool, error) {
		for {
			id, ok, err := src()
			if err != nil || !ok {
				return core.NoID, false, err
			}
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			return id, true, nil
		}
	}
}

func storeStage(src stream, set map[core.ID]struct{}) stream {
	return func() (core.ID, bool, error) {
		id, ok, err := src()
		if err != nil || !ok {
			return core.NoID, false, err
		}
		set[id] = struct{}{}
		return id, true, nil
	}
}

func limitStage(src stream, n int64) stream {
	var seen int64
	return func() (core.ID, bool, error) {
		if seen >= n {
			return core.NoID, false, nil
		}
		id, ok, err := src()
		if err != nil || !ok {
			return core.NoID, false, err
		}
		seen++
		return id, true, nil
	}
}

// sampleStage keeps a uniform random sample of up to n elements
// (reservoir sampling with a deterministic seed — the harness requires
// identical random choices across engines, per the paper's
// methodology). The upstream is drained on the first pull.
func sampleStage(src stream, n, seed int64) stream {
	var inner core.Iter[core.ID]
	return func() (core.ID, bool, error) {
		if inner == nil {
			reservoir := make([]core.ID, 0, n)
			rng := splitMix(uint64(seed))
			count := 0
			for {
				id, ok, err := src()
				if err != nil {
					return core.NoID, false, err
				}
				if !ok {
					break
				}
				count++
				if int64(len(reservoir)) < n {
					reservoir = append(reservoir, id)
					continue
				}
				if j := int64(rng() % uint64(count)); j < n {
					reservoir[j] = id
				}
			}
			inner = core.SliceIter(reservoir)
		}
		id, ok := inner()
		return id, ok, nil
	}
}
