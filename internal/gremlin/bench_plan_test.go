package gremlin

// Planner micro-benchmarks: the two traversal shapes the optimizer
// exists for. Filter-reorder runs a workload-authored filter-late
// traversal (expensive degree threshold before a selective property
// probe) on neo-1.9, whose Degree walks relationship chains;
// limit-fusion runs E().hasLabel(rare).limit(1) on sqlg, whose full
// edge scan eagerly materializes the union of every per-label table.
// TestRecordGremlinBenchmarks renders both A/B pairs into
// BENCH_gremlin.json for CI (set BENCH_JSON to the output path) and
// enforces the ≥2× filter-reorder floor.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/engines/neo"
	"repro/internal/engines/sqlg"
)

// benchPlanGraph is sized so a full degree pass is clearly measurable
// while the whole A/B suite stays inside a CI smoke budget: 1500
// vertices at average undirected degree ~12, a "hit" property on ~1%
// of vertices, and a "rare" label on ~0.4% of edges.
func benchPlanGraph() *core.Graph {
	rng := rand.New(rand.NewSource(11))
	const nv, deg = 1500, 6
	g := core.NewGraph(nv, nv*deg)
	for i := 0; i < nv; i++ {
		p := core.Props{"n": core.I(int64(i))}
		if i%97 == 0 {
			p["p"] = core.S("hit")
		}
		g.AddVertex(p)
	}
	labels := []string{"follows", "likes", "knows"}
	for i := 0; i < nv*deg; i++ {
		l := labels[rng.Intn(len(labels))]
		if i%251 == 0 {
			l = "rare"
		}
		g.AddEdge(rng.Intn(nv), rng.Intn(nv), l, nil)
	}
	return g
}

func benchFilterReorder(b *testing.B, ctx context.Context) {
	e := neo.New(neo.V19)
	defer e.Close()
	if _, err := e.BulkLoad(benchPlanGraph()); err != nil {
		b.Fatal(err)
	}
	gr := New(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := gr.V().DegreeAtLeast(core.DirBoth, 8).Has("p", core.S("hit")).Count(ctx)
		if err != nil || n == 0 {
			b.Fatalf("count=%d err=%v", n, err)
		}
	}
}

func benchLimitFusion(b *testing.B, ctx context.Context) {
	e := sqlg.New()
	defer e.Close()
	if _, err := e.BulkLoad(benchPlanGraph()); err != nil {
		b.Fatal(err)
	}
	gr := New(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := gr.E().HasLabel("rare").Limit(1).Count(ctx)
		if err != nil || n != 1 {
			b.Fatalf("count=%d err=%v", n, err)
		}
	}
}

func BenchmarkTraversalFilterReorderAsWritten(b *testing.B) {
	benchFilterReorder(b, WithoutOptimizer(context.Background()))
}

func BenchmarkTraversalFilterReorderOptimized(b *testing.B) {
	benchFilterReorder(b, context.Background())
}

func BenchmarkTraversalLimitFusionAsWritten(b *testing.B) {
	benchLimitFusion(b, WithoutOptimizer(context.Background()))
}

func BenchmarkTraversalLimitFusionOptimized(b *testing.B) {
	benchLimitFusion(b, context.Background())
}

// benchRecord is one benchmark's entry in BENCH_gremlin.json.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TestRecordGremlinBenchmarks runs both A/B pairs through
// testing.Benchmark and writes the results — plus the two speedups —
// to the file named by BENCH_JSON (skipped when unset, so ordinary
// test runs stay fast). The ≥2× filter-reorder floor is asserted here,
// and the committed BENCH_gremlin.json ratchets the trajectory: a
// regression below half the committed speedup fails even while it
// clears the absolute bar.
func TestRecordGremlinBenchmarks(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set; skipping benchmark recording")
	}
	run := func(name string, fn func(*testing.B)) benchRecord {
		r := testing.Benchmark(fn)
		t.Logf("%s: %v", name, r)
		return benchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	reorderOff := run("filter-reorder/neo-1.9/as-written", BenchmarkTraversalFilterReorderAsWritten)
	reorderOn := run("filter-reorder/neo-1.9/optimized", BenchmarkTraversalFilterReorderOptimized)
	limitOff := run("limit-fusion/sqlg/as-written", BenchmarkTraversalLimitFusionAsWritten)
	limitOn := run("limit-fusion/sqlg/optimized", BenchmarkTraversalLimitFusionOptimized)

	reorderSpeedup := reorderOff.NsPerOp / reorderOn.NsPerOp
	limitSpeedup := limitOff.NsPerOp / limitOn.NsPerOp
	doc := struct {
		Benchmarks           []benchRecord `json:"benchmarks"`
		FilterReorderSpeedup float64       `json:"filter_reorder_speedup"`
		LimitFusionSpeedup   float64       `json:"limit_fusion_speedup"`
	}{
		Benchmarks:           []benchRecord{reorderOff, reorderOn, limitOff, limitOn},
		FilterReorderSpeedup: reorderSpeedup,
		LimitFusionSpeedup:   limitSpeedup,
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (filter-reorder %.1fx, limit-fusion %.1fx)", out, reorderSpeedup, limitSpeedup)
	if reorderSpeedup < 2 {
		t.Errorf("optimized filter-reorder traversal is only %.1fx faster than as-written, want >= 2x", reorderSpeedup)
	}

	if reorderFloor, limitFloor, ok := committedGremlinFloor(t); ok {
		if reorderSpeedup < reorderFloor/2 {
			t.Errorf("filter-reorder speedup %.1fx is less than half the committed floor %.1fx (BENCH_gremlin.json); investigate or re-baseline", reorderSpeedup, reorderFloor)
		}
		if limitSpeedup < limitFloor/2 {
			t.Errorf("limit-fusion speedup %.1fx is less than half the committed floor %.1fx (BENCH_gremlin.json); investigate or re-baseline", limitSpeedup, limitFloor)
		}
	}
}

// committedGremlinFloor reads the speedups from the repo's committed
// BENCH_gremlin.json.
func committedGremlinFloor(t *testing.T) (reorder, limit float64, ok bool) {
	raw, err := os.ReadFile("../../BENCH_gremlin.json")
	if err != nil {
		t.Logf("no committed BENCH_gremlin.json floor: %v", err)
		return 0, 0, false
	}
	var doc struct {
		FilterReorderSpeedup float64 `json:"filter_reorder_speedup"`
		LimitFusionSpeedup   float64 `json:"limit_fusion_speedup"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("committed BENCH_gremlin.json is unreadable: %v", err)
	}
	return doc.FilterReorderSpeedup, doc.LimitFusionSpeedup, doc.FilterReorderSpeedup > 0
}
