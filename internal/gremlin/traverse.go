package gremlin

import (
	"context"

	"repro/internal/core"
)

// BFS performs the paper's breadth-first traversal queries Q32/Q33
// (v.as('i').both(ls...).except(vs).store(vs).loop('i') bounded at
// depth): it returns every vertex reached from start within depth hops
// over edges with the given labels (all labels when none given),
// excluding start itself, executing step-at-a-time against the engine
// as the non-optimizing adapters do.
func BFS(ctx context.Context, e core.Engine, start core.ID, depth int, labels ...string) ([]core.ID, error) {
	if !e.HasVertex(start) {
		return nil, core.ErrNotFound
	}
	visited := map[core.ID]struct{}{start: {}}
	var out []core.ID
	frontier := []core.ID{start}
	checked := 0
	for level := 0; level < depth && len(frontier) > 0; level++ {
		if ctx.Err() != nil {
			return nil, core.ErrTimeout
		}
		var next []core.ID
		for _, v := range frontier {
			checked++
			if checked%ctxCheckEvery == 0 {
				if ctx.Err() != nil {
					return nil, core.ErrTimeout
				}
			}
			it := e.Neighbors(v, core.DirBoth, labels...)
			for n, ok := it(); ok; n, ok = it() {
				if _, seen := visited[n]; seen {
					continue
				}
				visited[n] = struct{}{}
				out = append(out, n)
				next = append(next, n)
			}
		}
		frontier = next
	}
	return out, nil
}

// ShortestPath performs the paper's unweighted shortest-path queries
// Q34/Q35: the vertex sequence from v1 to v2 following edges in either
// direction (optionally restricted to labels), or nil when v2 is
// unreachable. The result includes both endpoints.
func ShortestPath(ctx context.Context, e core.Engine, v1, v2 core.ID, labels ...string) ([]core.ID, error) {
	if !e.HasVertex(v1) || !e.HasVertex(v2) {
		return nil, core.ErrNotFound
	}
	if v1 == v2 {
		return []core.ID{v1}, nil
	}
	parent := map[core.ID]core.ID{v1: v1}
	frontier := []core.ID{v1}
	checked := 0
	for len(frontier) > 0 {
		if ctx.Err() != nil {
			return nil, core.ErrTimeout
		}
		var next []core.ID
		for _, v := range frontier {
			checked++
			if checked%ctxCheckEvery == 0 {
				if ctx.Err() != nil {
					return nil, core.ErrTimeout
				}
			}
			it := e.Neighbors(v, core.DirBoth, labels...)
			for n, ok := it(); ok; n, ok = it() {
				if _, seen := parent[n]; seen {
					continue
				}
				parent[n] = v
				if n == v2 {
					return reconstruct(parent, v1, v2), nil
				}
				next = append(next, n)
			}
		}
		frontier = next
	}
	return nil, nil
}

func reconstruct(parent map[core.ID]core.ID, v1, v2 core.ID) []core.ID {
	var rev []core.ID
	for v := v2; ; v = parent[v] {
		rev = append(rev, v)
		if v == v1 {
			break
		}
	}
	out := make([]core.ID, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}
