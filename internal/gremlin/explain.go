package gremlin

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
)

// PlanStep is one rendered step of an explained plan.
type PlanStep struct {
	// Label is the step with its arguments, e.g. "has(name=x)"; a
	// source fused with an index-served filter renders as one step with
	// an "[index]" marker.
	Label string
	// Est is the estimated number of elements the step emits, or -1
	// when the engine carries no planner statistics.
	Est int64
}

// Plan is the ordered execution plan a terminal would run, produced by
// Traversal.Explain without executing anything.
type Plan struct {
	Steps []PlanStep
	// Optimized records whether filter reordering and implicit source
	// fusion were applied (the ctx carried no WithoutOptimizer mark).
	Optimized bool
	// HasStats records whether snapshot statistics informed the
	// estimates; false means every Est is -1.
	HasStats bool
}

// Explain compiles the traversal's plan under ctx — applying the same
// reordering and source fusion a terminal would — and returns it with
// estimated cardinalities instead of executing it. The rendering is
// deterministic: identical plan and dataset produce byte-identical
// output across runs and processes.
func (t *Traversal) Explain(ctx context.Context) *Plan {
	steps := t.steps
	opt := OptimizerEnabled(ctx)
	stats := engineStats(t.e)
	if opt {
		steps = optimize(steps, stats)
	}
	p := &Plan{Optimized: opt, HasStats: stats != nil}

	est := newEstimator(stats)
	i := 0
	if fusedSource(steps, opt) {
		est.apply(steps[0])
		est.apply(steps[1])
		p.Steps = append(p.Steps, PlanStep{
			Label: steps[0].label() + "." + steps[1].label() + " [index]",
			Est:   est.rows(),
		})
		i = 2
	}
	for ; i < len(steps); i++ {
		est.apply(steps[i])
		p.Steps = append(p.Steps, PlanStep{Label: steps[i].label(), Est: est.rows()})
	}
	return p
}

// String renders the plan as a fixed-width table, one line per step.
func (p *Plan) String() string {
	var b strings.Builder
	mode := "as-written"
	if p.Optimized {
		mode = "optimized"
	}
	src := "no stats"
	if p.HasStats {
		src = "snapshot stats"
	}
	fmt.Fprintf(&b, "plan: %s (%s)\n", mode, src)
	width := 0
	for _, s := range p.Steps {
		if len(s.Label) > width {
			width = len(s.Label)
		}
	}
	for i, s := range p.Steps {
		est := "?"
		if s.Est >= 0 {
			est = fmt.Sprintf("~%d", s.Est)
		}
		fmt.Fprintf(&b, "  %2d  %-*s  %s\n", i+1, width, s.Label, est)
	}
	return b.String()
}

// estimator threads an estimated row count through the plan. With no
// statistics every estimate is unknown; estimates never influence
// results, only the rendered plan and the optimizer's filter order.
type estimator struct {
	stats *core.PlanStats
	cur   float64
}

func newEstimator(stats *core.PlanStats) *estimator {
	return &estimator{stats: stats, cur: -1}
}

// rows returns the current estimate rounded to whole elements.
func (e *estimator) rows() int64 {
	if e.cur < 0 {
		return -1
	}
	return int64(math.Round(e.cur))
}

func (e *estimator) apply(s Step) {
	if e.stats == nil {
		// Singleton sources are exact even without statistics.
		if s.Op == OpSourceVID || s.Op == OpSourceEID {
			e.cur = 1
		} else {
			e.cur = -1
		}
		return
	}
	switch s.Op {
	case OpSourceV:
		e.cur = float64(e.stats.V)
	case OpSourceE:
		e.cur = float64(e.stats.E)
	case OpSourceVID, OpSourceEID:
		e.cur = 1
	case OpHas, OpHasLabel, OpDegree, OpExcept:
		e.cur *= selectivity(s, e.stats)
	case OpFilterFunc:
		e.cur *= 0.5
	case OpOut:
		e.cur *= e.stats.AvgDegree(core.DirOut, s.Labels)
	case OpIn:
		e.cur *= e.stats.AvgDegree(core.DirIn, s.Labels)
	case OpBoth:
		e.cur *= e.stats.AvgDegree(core.DirBoth, s.Labels)
	case OpOutE:
		e.cur *= e.stats.AvgDegree(core.DirOut, s.Labels)
	case OpInE:
		e.cur *= e.stats.AvgDegree(core.DirIn, s.Labels)
	case OpBothE:
		e.cur *= e.stats.AvgDegree(core.DirBoth, s.Labels)
	case OpOutV, OpInV, OpStore:
		// Row count unchanged.
	case OpDedup:
		pool := float64(e.stats.V)
		if s.Kind == KindEdge {
			pool = float64(e.stats.E)
		}
		e.cur = math.Min(e.cur, pool)
	case OpLimit, OpSample:
		e.cur = math.Min(e.cur, float64(s.N))
	}
}
