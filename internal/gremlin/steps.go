package gremlin

import (
	"context"
	"sort"

	"repro/internal/core"
)

// GroupCount drains the traversal into element→occurrence counts (the
// Gremlin groupCount() step; the building block of the recommendation
// queries in the complex workload, which rank friend-of-friend
// candidates by common-neighbour count).
func (t *Traversal) GroupCount(ctx context.Context) (map[core.ID]int64, error) {
	out := make(map[core.ID]int64)
	err := t.drain(ctx, func(id core.ID) bool {
		out[id]++
		return true
	})
	return out, err
}

// Ranked is one element of an ordered result.
type Ranked struct {
	ID    core.ID
	Value core.Value
}

// OrderBy drains the traversal and sorts elements by the given property
// (elements lacking it sort last), ascending or descending — the
// order().by() step. Ties break by ID for determinism. The element
// kind is derived from the plan's output step, so a plan whose filters
// were reordered (or whose last expansion changed the element kind)
// can never fetch vertex properties for an edge stream.
func (t *Traversal) OrderBy(ctx context.Context, name string, descending bool) ([]Ranked, error) {
	kind := t.Kind()
	var out []Ranked
	err := t.drain(ctx, func(id core.ID) bool {
		var v core.Value
		var ok bool
		if kind == KindVertex {
			v, ok = t.e.VertexProp(id, name)
		} else {
			v, ok = t.e.EdgeProp(id, name)
		}
		if !ok {
			v = core.Nil
		}
		out = append(out, Ranked{ID: id, Value: v})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool {
		// Nil (missing property) sorts after any present value.
		in, jn := out[i].Value.IsNil(), out[j].Value.IsNil()
		if in != jn {
			return jn
		}
		c := out[i].Value.Compare(out[j].Value)
		if descending {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// TopK drains the traversal and returns the k elements with the
// greatest (or smallest) property values — order().by().limit(k), the
// top-k pattern the paper includes in the complex workload.
func (t *Traversal) TopK(ctx context.Context, name string, k int, descending bool) ([]Ranked, error) {
	ranked, err := t.OrderBy(ctx, name, descending)
	if err != nil {
		return nil, err
	}
	if k < len(ranked) {
		ranked = ranked[:k]
	}
	return ranked, nil
}

// Sample keeps a uniform random sample of up to n elements (reservoir
// sampling with a deterministic seed — the harness requires identical
// random choices across engines, per the paper's methodology). Sampling
// is a barrier step: the optimizer never moves filters across it, so
// the reservoir sees the same upstream sequence — and makes the same
// random choices — optimized or not.
func (t *Traversal) Sample(n int, seed int64) *Traversal {
	return t.append(Step{Op: OpSample, Kind: t.Kind(), N: int64(n), Seed: seed})
}

// splitMix returns a deterministic PRNG closure.
func splitMix(s uint64) func() uint64 {
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
