package gremlin

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engines/neo"
	"repro/internal/engines/sqlg"
)

// testEngines returns one native and one hybrid engine, so every test
// runs against two very different physical layouts.
func testEngines() map[string]core.Engine {
	return map[string]core.Engine{
		"neo":  neo.New(neo.V19),
		"sqlg": sqlg.New(),
	}
}

// diamond builds:
//
//	a -x-> b -y-> d
//	a -y-> c -y-> d,  d -z-> a
func diamond(t *testing.T, e core.Engine) (a, b, c, d core.ID) {
	t.Helper()
	var err error
	if a, err = e.AddVertex(core.Props{"name": core.S("a"), "deg": core.I(3)}); err != nil {
		t.Fatal(err)
	}
	b, _ = e.AddVertex(core.Props{"name": core.S("b")})
	c, _ = e.AddVertex(core.Props{"name": core.S("c")})
	d, _ = e.AddVertex(core.Props{"name": core.S("d")})
	e.AddEdge(a, b, "x", core.Props{"w": core.I(1)})
	e.AddEdge(a, c, "y", nil)
	e.AddEdge(b, d, "y", nil)
	e.AddEdge(c, d, "y", nil)
	e.AddEdge(d, a, "z", nil)
	return
}

func sorted(ids []core.ID) []core.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func eq(a, b []core.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSourceStepsAndCounts(t *testing.T) {
	for name, e := range testEngines() {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			diamond(t, e)
			ctx := context.Background()
			g := New(e)
			if n, err := g.V().Count(ctx); err != nil || n != 4 {
				t.Fatalf("V count = %d, %v", n, err)
			}
			if n, err := g.E().Count(ctx); err != nil || n != 5 {
				t.Fatalf("E count = %d, %v", n, err)
			}
		})
	}
}

func TestHopsAndFilters(t *testing.T) {
	for name, e := range testEngines() {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			a, b, c, d := diamond(t, e)
			ctx := context.Background()
			g := New(e)

			out, err := g.VID(a).Out().IDs(ctx)
			if err != nil || !eq(sorted(out), sorted([]core.ID{b, c})) {
				t.Fatalf("out(a) = %v, %v", out, err)
			}
			outY, _ := g.VID(a).Out("y").IDs(ctx)
			if !eq(outY, []core.ID{c}) {
				t.Fatalf("out(a,y) = %v", outY)
			}
			in, _ := g.VID(d).In().IDs(ctx)
			if !eq(sorted(in), sorted([]core.ID{b, c})) {
				t.Fatalf("in(d) = %v", in)
			}
			both, _ := g.VID(a).Both().IDs(ctx)
			if len(both) != 3 {
				t.Fatalf("both(a) = %v", both)
			}
			two, _ := g.VID(a).Out().Out().Dedup().IDs(ctx)
			if !eq(two, []core.ID{d}) {
				t.Fatalf("out.out(a).dedup = %v", two)
			}
			named, _ := g.VHas("name", core.S("b")).IDs(ctx)
			if !eq(named, []core.ID{b}) {
				t.Fatalf("VHas(name,b) = %v", named)
			}
			heavy, _ := g.V().Has("deg", core.I(3)).IDs(ctx)
			if !eq(heavy, []core.ID{a}) {
				t.Fatalf("Has(deg,3) = %v", heavy)
			}
			we, _ := g.EHas("w", core.I(1)).Count(ctx)
			if we != 1 {
				t.Fatalf("EHas(w,1) = %d", we)
			}
			ys, _ := g.EHasLabel("y").Count(ctx)
			if ys != 3 {
				t.Fatalf("EHasLabel(y) = %d", ys)
			}
		})
	}
}

func TestEdgeStepsAndLabels(t *testing.T) {
	for name, e := range testEngines() {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			a, _, _, d := diamond(t, e)
			ctx := context.Background()
			g := New(e)
			ls, err := g.E().DistinctLabels(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(ls)
			if len(ls) != 3 || ls[0] != "x" || ls[1] != "y" || ls[2] != "z" {
				t.Fatalf("labels = %v", ls)
			}
			outLs, _ := g.VID(a).OutE().DistinctLabels(ctx)
			sort.Strings(outLs)
			if len(outLs) != 2 || outLs[0] != "x" || outLs[1] != "y" {
				t.Fatalf("outE labels = %v", outLs)
			}
			inV, _ := g.VID(a).OutE("x").InV().IDs(ctx)
			if len(inV) != 1 {
				t.Fatalf("outE.inV = %v", inV)
			}
			srcs, _ := g.VID(d).InE().OutV().Dedup().Count(ctx)
			if srcs != 2 {
				t.Fatalf("inE.outV = %d", srcs)
			}
		})
	}
}

func TestDegreeFilterAndStoreExcept(t *testing.T) {
	for name, e := range testEngines() {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			a, _, _, d := diamond(t, e)
			ctx := context.Background()
			g := New(e)
			big, err := g.V().DegreeAtLeast(core.DirBoth, 3).IDs(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !eq(sorted(big), sorted([]core.ID{a, d})) {
				t.Fatalf("degree>=3 = %v", big)
			}
			withIn, _ := g.V().Filter(func(id core.ID) (bool, error) {
				n, err := g.Engine().Degree(id, core.DirIn)
				return n >= 1, err
			}).Count(ctx)
			if withIn != 4 {
				t.Fatalf("with incoming = %d", withIn)
			}
			set := map[core.ID]struct{}{a: {}}
			rest, _ := g.V().Except(set).Store(set).Count(ctx)
			if rest != 3 || len(set) != 4 {
				t.Fatalf("except/store = %d, set %d", rest, len(set))
			}
		})
	}
}

func TestLimitAndFirstAndValues(t *testing.T) {
	e := neo.New(neo.V19)
	defer e.Close()
	diamond(t, e)
	ctx := context.Background()
	g := New(e)
	if n, _ := g.V().Limit(2).Count(ctx); n != 2 {
		t.Fatalf("limit = %d", n)
	}
	if _, ok, _ := g.V().First(ctx); !ok {
		t.Fatal("First on non-empty traversal")
	}
	if _, ok, _ := g.VHas("name", core.S("zzz")).First(ctx); ok {
		t.Fatal("First on empty traversal")
	}
	vals, _ := g.V().Values(ctx, "name")
	if len(vals) != 4 {
		t.Fatalf("values = %v", vals)
	}
}

func TestTimeoutPropagates(t *testing.T) {
	e := neo.New(neo.V19)
	defer e.Close()
	g := New(e)
	var prev core.ID = core.NoID
	for i := 0; i < 5000; i++ {
		v, _ := e.AddVertex(nil)
		if prev != core.NoID {
			e.AddEdge(prev, v, "n", nil)
		}
		prev = v
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := g.V().Count(ctx); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("expired deadline err = %v", err)
	}
	if _, err := BFS(ctx, e, 0, 10); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("BFS deadline err = %v", err)
	}
	if _, err := ShortestPath(ctx, e, 0, 4999); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("SP deadline err = %v", err)
	}
}

func TestFilterErrorAborts(t *testing.T) {
	e := neo.New(neo.V19)
	defer e.Close()
	for i := 0; i < 10; i++ {
		e.AddVertex(nil)
	}
	g := New(e)
	boom := errors.New("boom")
	_, err := g.V().Filter(func(core.ID) (bool, error) { return false, boom }).Count(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("filter error = %v", err)
	}
}

func TestBFSDepths(t *testing.T) {
	for name, e := range testEngines() {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			// Path graph 0-1-2-3-4 (undirected reach via both()).
			var vs []core.ID
			for i := 0; i < 5; i++ {
				v, _ := e.AddVertex(nil)
				vs = append(vs, v)
			}
			for i := 0; i < 4; i++ {
				e.AddEdge(vs[i], vs[i+1], "p", nil)
			}
			ctx := context.Background()
			for depth, want := range map[int]int{1: 1, 2: 2, 4: 4, 10: 4} {
				got, err := BFS(ctx, e, vs[0], depth)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != want {
					t.Fatalf("BFS depth %d = %d nodes, want %d", depth, len(got), want)
				}
			}
			// Label-restricted BFS stops immediately on a missing label.
			got, err := BFS(ctx, e, vs[0], 3, "absent")
			if err != nil || len(got) != 0 {
				t.Fatalf("label BFS = %v, %v", got, err)
			}
		})
	}
}

func TestShortestPath(t *testing.T) {
	for name, e := range testEngines() {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			a, b, c, d := diamond(t, e)
			_ = b
			ctx := context.Background()
			// The z edge d->a makes a and d adjacent under both().
			p, err := ShortestPath(ctx, e, a, d)
			if err != nil {
				t.Fatal(err)
			}
			if len(p) != 2 || p[0] != a || p[1] != d {
				t.Fatalf("path = %v", p)
			}
			// Label-filtered: only y edges, a-y->c-y->d.
			p, err = ShortestPath(ctx, e, a, d, "y")
			if err != nil || len(p) != 3 || p[1] != c {
				t.Fatalf("y-path = %v, %v", p, err)
			}
			// Unreachable via label x only.
			p, err = ShortestPath(ctx, e, c, b, "x")
			if err != nil || p != nil {
				t.Fatalf("unreachable path = %v, %v", p, err)
			}
			// Self path.
			p, _ = ShortestPath(ctx, e, a, a)
			if len(p) != 1 {
				t.Fatalf("self path = %v", p)
			}
		})
	}
}

func TestBFSOnMissingVertex(t *testing.T) {
	e := neo.New(neo.V19)
	defer e.Close()
	if _, err := BFS(context.Background(), e, 99, 2); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("BFS missing start err = %v", err)
	}
	if _, err := ShortestPath(context.Background(), e, 0, 1); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("SP missing err = %v", err)
	}
}
