// Package gremlin implements a Gremlin-style traversal machine over the
// core.Engine contract: plan-first step pipelines (g.V().has(...).out())
// with terminal operations that respect context deadlines.
//
// It plays the role Apache TinkerPop plays in the paper — the
// database-independent connectivity layer through which every test query
// is expressed exactly once. Builder methods append declarative Step
// nodes to a logical plan (plan.go); a terminal operation compiles the
// plan — greedily reordering commutable filters by snapshot cardinality
// signals and fusing index-served filters into the source step
// (optimize.go) — and lowers it to pull-based streams (compile.go).
// Like the non-optimizing adapters the paper describes, lowered steps
// execute one element at a time against the engine API; the optimizer
// is guaranteed to return element-identical results to the unoptimized
// plan, and can be held off per query for A/B runs (WithoutOptimizer).
package gremlin

import (
	"context"

	"repro/internal/core"
)

// ctxCheckEvery bounds how many elements flow between deadline checks.
const ctxCheckEvery = 64

// stream produces elements until ok is false; err aborts the traversal
// (e.g. core.ErrOutOfMemory from an engine, or ctx cancellation).
type stream func() (id core.ID, ok bool, err error)

func fromIter(it core.Iter[core.ID]) stream {
	return func() (core.ID, bool, error) {
		id, ok := it()
		return id, ok, nil
	}
}

// Kind of element flowing through a traversal.
type Kind uint8

// Element kinds.
const (
	KindVertex Kind = iota
	KindEdge
)

// Traversal is a lazy pipeline of elements (vertices or edges),
// represented as a logical plan until a terminal compiles it.
type Traversal struct {
	e     core.Engine
	steps []Step
}

// G roots traversals at an engine, mirroring the Gremlin "g".
type G struct{ e core.Engine }

// New returns a traversal source over the engine.
func New(e core.Engine) G { return G{e: e} }

// Engine returns the underlying engine.
func (g G) Engine() core.Engine { return g.e }

func (g G) source(s Step) *Traversal {
	return &Traversal{e: g.e, steps: []Step{s}}
}

// V streams all vertices (g.V).
func (g G) V() *Traversal {
	return g.source(Step{Op: OpSourceV, Kind: KindVertex})
}

// E streams all edges (g.E).
func (g G) E() *Traversal {
	return g.source(Step{Op: OpSourceE, Kind: KindEdge})
}

// VID streams the single vertex with the given id (g.V(id), Q14).
func (g G) VID(id core.ID) *Traversal {
	return g.source(Step{Op: OpSourceVID, Kind: KindVertex, ID: id})
}

// EID streams the single edge with the given id (g.E(id), Q15).
func (g G) EID(id core.ID) *Traversal {
	return g.source(Step{Op: OpSourceEID, Kind: KindEdge, ID: id})
}

// VHas streams vertices with property name = v through the engine's
// search surface (g.V.has(name, value), Q11 — the step that benefits
// from attribute indexes in Figure 4(c)). It is plan sugar for
// V().Has(name, v) with the filter marked explicit, so the compiler
// dispatches it to the engine index surface even with the optimizer
// off — entry points and mid-chain filters share one representation.
func (g G) VHas(name string, v core.Value) *Traversal {
	t := g.V()
	t.steps = append(t.steps, Step{Op: OpHas, Kind: KindVertex, Name: name, Value: v, Explicit: true})
	return t
}

// EHas streams edges with property name = v (g.E.has(name, value), Q12).
func (g G) EHas(name string, v core.Value) *Traversal {
	t := g.E()
	t.steps = append(t.steps, Step{Op: OpHas, Kind: KindEdge, Name: name, Value: v, Explicit: true})
	return t
}

// EHasLabel streams edges with the given label (g.E.has('label', l),
// Q13).
func (g G) EHasLabel(label string) *Traversal {
	t := g.E()
	t.steps = append(t.steps, Step{Op: OpHasLabel, Kind: KindEdge, Label: label, Explicit: true})
	return t
}

// Kind reports whether the traversal currently carries vertices or
// edges, derived from the plan's output step.
func (t *Traversal) Kind() Kind { return outputKind(t.steps) }

// append extends the plan in place and returns the receiver: builder
// chains stay cheap (one slice append per step), and intermediate
// traversal values are not retained anywhere.
func (t *Traversal) append(s Step) *Traversal {
	t.steps = append(t.steps, s)
	return t
}

func (t *Traversal) expand(op Op, kind Kind, labels []string) *Traversal {
	return t.append(Step{Op: op, Kind: kind, Labels: labels})
}

// Out moves vertex→vertex over outgoing edges (v.out, Q23).
func (t *Traversal) Out(labels ...string) *Traversal {
	return t.expand(OpOut, KindVertex, labels)
}

// In moves vertex→vertex over incoming edges (v.in, Q22).
func (t *Traversal) In(labels ...string) *Traversal {
	return t.expand(OpIn, KindVertex, labels)
}

// Both moves vertex→vertex over all incident edges (v.both, Q24).
func (t *Traversal) Both(labels ...string) *Traversal {
	return t.expand(OpBoth, KindVertex, labels)
}

// OutE moves vertex→edge (v.outE, Q26).
func (t *Traversal) OutE(labels ...string) *Traversal {
	return t.expand(OpOutE, KindEdge, labels)
}

// InE moves vertex→edge (v.inE, Q25).
func (t *Traversal) InE(labels ...string) *Traversal {
	return t.expand(OpInE, KindEdge, labels)
}

// BothE moves vertex→edge (v.bothE, Q27).
func (t *Traversal) BothE(labels ...string) *Traversal {
	return t.expand(OpBothE, KindEdge, labels)
}

// OutV moves edge→source vertex.
func (t *Traversal) OutV() *Traversal {
	return t.append(Step{Op: OpOutV, Kind: KindVertex})
}

// InV moves edge→destination vertex.
func (t *Traversal) InV() *Traversal {
	return t.append(Step{Op: OpInV, Kind: KindVertex})
}

// Has filters elements on a property value (mid-pipeline .has step —
// a per-element probe unless the compiler fuses it into the source).
func (t *Traversal) Has(name string, v core.Value) *Traversal {
	return t.append(Step{Op: OpHas, Kind: t.Kind(), Name: name, Value: v})
}

// HasLabel filters edges on their label.
func (t *Traversal) HasLabel(label string) *Traversal {
	return t.append(Step{Op: OpHasLabel, Kind: t.Kind(), Label: label})
}

// Filter keeps the elements for which keep returns true; an error from
// keep aborts the traversal (this is how engine failures such as
// core.ErrOutOfMemory propagate out of Q28–Q31). The predicate is
// opaque to the optimizer, so it is never reordered.
func (t *Traversal) Filter(keep func(core.ID) (bool, error)) *Traversal {
	return t.append(Step{Op: OpFilterFunc, Kind: t.Kind(), Keep: keep})
}

// DegreeAtLeast keeps vertices with at least k incident edges in
// direction d (the filter of Q28–Q30).
func (t *Traversal) DegreeAtLeast(d core.Direction, k int64) *Traversal {
	return t.append(Step{Op: OpDegree, Kind: t.Kind(), Dir: d, K: k})
}

// Dedup suppresses repeated element ids (.dedup).
func (t *Traversal) Dedup() *Traversal {
	return t.append(Step{Op: OpDedup, Kind: t.Kind()})
}

// Except drops elements contained in the set (.except(vs)).
func (t *Traversal) Except(set map[core.ID]struct{}) *Traversal {
	return t.append(Step{Op: OpExcept, Kind: t.Kind(), Set: set})
}

// Store adds every passing element to the set (.store(vs)).
func (t *Traversal) Store(set map[core.ID]struct{}) *Traversal {
	return t.append(Step{Op: OpStore, Kind: t.Kind(), Set: set})
}

// Limit stops the traversal after n elements (.limit). The compiled
// stream stops pulling its upstream — and therefore the engine
// iterators — as soon as the budget is spent.
func (t *Traversal) Limit(n int64) *Traversal {
	return t.append(Step{Op: OpLimit, Kind: t.Kind(), N: n})
}

// --- terminal operations (deadline-aware) ---

// drain compiles the plan (reordering and fusing when the optimizer is
// enabled for ctx) and pulls every element through fn until fn returns
// false or the stream ends.
func (t *Traversal) drain(ctx context.Context, fn func(core.ID) bool) error {
	src := t.compile(ctx)
	n := 0
	for {
		if n%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return core.ErrTimeout
			}
		}
		n++
		id, ok, err := src()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(id) {
			return nil
		}
	}
}

// Count drains the traversal and returns the element count (.count).
func (t *Traversal) Count(ctx context.Context) (int64, error) {
	var n int64
	err := t.drain(ctx, func(core.ID) bool { n++; return true })
	return n, err
}

// IDs drains the traversal into a slice.
func (t *Traversal) IDs(ctx context.Context) ([]core.ID, error) {
	var out []core.ID
	err := t.drain(ctx, func(id core.ID) bool { out = append(out, id); return true })
	return out, err
}

// First returns the first element; ok is false on an empty traversal.
func (t *Traversal) First(ctx context.Context) (core.ID, bool, error) {
	var got core.ID
	found := false
	err := t.drain(ctx, func(id core.ID) bool { got, found = id, true; return false })
	return got, found, err
}

// Labels drains an edge traversal into the label of each edge (.label).
func (t *Traversal) Labels(ctx context.Context) ([]string, error) {
	var out []string
	err := t.drain(ctx, func(id core.ID) bool {
		if l, err := t.e.EdgeLabel(id); err == nil {
			out = append(out, l)
		}
		return true
	})
	return out, err
}

// DistinctLabels drains an edge traversal into its distinct labels
// (.label.dedup — Q10, Q25–Q27).
func (t *Traversal) DistinctLabels(ctx context.Context) ([]string, error) {
	seen := make(map[string]struct{})
	var out []string
	err := t.drain(ctx, func(id core.ID) bool {
		if l, err := t.e.EdgeLabel(id); err == nil {
			if _, dup := seen[l]; !dup {
				seen[l] = struct{}{}
				out = append(out, l)
			}
		}
		return true
	})
	return out, err
}

// Values drains the traversal into one property value per element,
// skipping elements without the property (.values(name)). The element
// kind is derived from the plan's output step.
func (t *Traversal) Values(ctx context.Context, name string) ([]core.Value, error) {
	kind := t.Kind()
	var out []core.Value
	err := t.drain(ctx, func(id core.ID) bool {
		var v core.Value
		var ok bool
		if kind == KindVertex {
			v, ok = t.e.VertexProp(id, name)
		} else {
			v, ok = t.e.EdgeProp(id, name)
		}
		if ok {
			out = append(out, v)
		}
		return true
	})
	return out, err
}
