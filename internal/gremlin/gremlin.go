// Package gremlin implements a Gremlin-style traversal machine over the
// core.Engine contract: lazy step pipelines (g.V().has(...).out()...)
// with terminal operations that respect context deadlines.
//
// It plays the role Apache TinkerPop plays in the paper — the
// database-independent connectivity layer through which every test query
// is expressed exactly once. Like the non-optimizing adapters the paper
// describes for most engines, steps execute one element at a time
// against the engine API; the only "optimizations" are the source-step
// fast paths every adapter has (g.V().has(p,v) → engine property lookup,
// g.E().hasLabel(l) → engine label lookup), which the workload package
// uses explicitly where the paper's queries do.
package gremlin

import (
	"context"

	"repro/internal/core"
)

// ctxCheckEvery bounds how many elements flow between deadline checks.
const ctxCheckEvery = 64

// stream produces elements until ok is false; err aborts the traversal
// (e.g. core.ErrOutOfMemory from an engine, or ctx cancellation).
type stream func() (id core.ID, ok bool, err error)

func fromIter(it core.Iter[core.ID]) stream {
	return func() (core.ID, bool, error) {
		id, ok := it()
		return id, ok, nil
	}
}

// Kind of element flowing through a traversal.
type Kind uint8

// Element kinds.
const (
	KindVertex Kind = iota
	KindEdge
)

// Traversal is a lazy pipeline of elements (vertices or edges).
type Traversal struct {
	e    core.Engine
	kind Kind
	src  stream
}

// G roots traversals at an engine, mirroring the Gremlin "g".
type G struct{ e core.Engine }

// New returns a traversal source over the engine.
func New(e core.Engine) G { return G{e: e} }

// Engine returns the underlying engine.
func (g G) Engine() core.Engine { return g.e }

// V streams all vertices (g.V).
func (g G) V() *Traversal {
	return &Traversal{e: g.e, kind: KindVertex, src: fromIter(g.e.Vertices())}
}

// E streams all edges (g.E).
func (g G) E() *Traversal {
	return &Traversal{e: g.e, kind: KindEdge, src: fromIter(g.e.Edges())}
}

// VID streams the single vertex with the given id (g.V(id), Q14).
func (g G) VID(id core.ID) *Traversal {
	ids := []core.ID{}
	if g.e.HasVertex(id) {
		ids = append(ids, id)
	}
	return &Traversal{e: g.e, kind: KindVertex, src: fromIter(core.SliceIter(ids))}
}

// EID streams the single edge with the given id (g.E(id), Q15).
func (g G) EID(id core.ID) *Traversal {
	ids := []core.ID{}
	if g.e.HasEdge(id) {
		ids = append(ids, id)
	}
	return &Traversal{e: g.e, kind: KindEdge, src: fromIter(core.SliceIter(ids))}
}

// VHas streams vertices with property name = v through the engine's
// search surface (g.V.has(name, value), Q11 — the step that benefits
// from attribute indexes in Figure 4(c)).
func (g G) VHas(name string, v core.Value) *Traversal {
	return &Traversal{e: g.e, kind: KindVertex, src: fromIter(g.e.VerticesByProp(name, v))}
}

// EHas streams edges with property name = v (g.E.has(name, value), Q12).
func (g G) EHas(name string, v core.Value) *Traversal {
	return &Traversal{e: g.e, kind: KindEdge, src: fromIter(g.e.EdgesByProp(name, v))}
}

// EHasLabel streams edges with the given label (g.E.has('label', l),
// Q13).
func (g G) EHasLabel(label string) *Traversal {
	return &Traversal{e: g.e, kind: KindEdge, src: fromIter(g.e.EdgesByLabel(label))}
}

// Kind reports whether the traversal currently carries vertices or
// edges.
func (t *Traversal) Kind() Kind { return t.kind }

func (t *Traversal) derive(kind Kind, s stream) *Traversal {
	return &Traversal{e: t.e, kind: kind, src: s}
}

// flatMap expands each incoming element through expand.
func (t *Traversal) flatMap(kind Kind, expand func(core.ID) core.Iter[core.ID]) *Traversal {
	src := t.src
	var cur core.Iter[core.ID]
	return t.derive(kind, func() (core.ID, bool, error) {
		for {
			if cur != nil {
				if id, ok := cur(); ok {
					return id, true, nil
				}
				cur = nil
			}
			id, ok, err := src()
			if err != nil || !ok {
				return core.NoID, false, err
			}
			cur = expand(id)
		}
	})
}

// Out moves vertex→vertex over outgoing edges (v.out, Q23).
func (t *Traversal) Out(labels ...string) *Traversal {
	return t.flatMap(KindVertex, func(id core.ID) core.Iter[core.ID] {
		return t.e.Neighbors(id, core.DirOut, labels...)
	})
}

// In moves vertex→vertex over incoming edges (v.in, Q22).
func (t *Traversal) In(labels ...string) *Traversal {
	return t.flatMap(KindVertex, func(id core.ID) core.Iter[core.ID] {
		return t.e.Neighbors(id, core.DirIn, labels...)
	})
}

// Both moves vertex→vertex over all incident edges (v.both, Q24).
func (t *Traversal) Both(labels ...string) *Traversal {
	return t.flatMap(KindVertex, func(id core.ID) core.Iter[core.ID] {
		return t.e.Neighbors(id, core.DirBoth, labels...)
	})
}

// OutE moves vertex→edge (v.outE, Q26).
func (t *Traversal) OutE(labels ...string) *Traversal {
	return t.flatMap(KindEdge, func(id core.ID) core.Iter[core.ID] {
		return t.e.IncidentEdges(id, core.DirOut, labels...)
	})
}

// InE moves vertex→edge (v.inE, Q25).
func (t *Traversal) InE(labels ...string) *Traversal {
	return t.flatMap(KindEdge, func(id core.ID) core.Iter[core.ID] {
		return t.e.IncidentEdges(id, core.DirIn, labels...)
	})
}

// BothE moves vertex→edge (v.bothE, Q27).
func (t *Traversal) BothE(labels ...string) *Traversal {
	return t.flatMap(KindEdge, func(id core.ID) core.Iter[core.ID] {
		return t.e.IncidentEdges(id, core.DirBoth, labels...)
	})
}

// OutV moves edge→source vertex.
func (t *Traversal) OutV() *Traversal {
	return t.flatMap(KindVertex, func(id core.ID) core.Iter[core.ID] {
		src, _, err := t.e.EdgeEnds(id)
		if err != nil {
			return core.EmptyIter[core.ID]()
		}
		return core.SliceIter([]core.ID{src})
	})
}

// InV moves edge→destination vertex.
func (t *Traversal) InV() *Traversal {
	return t.flatMap(KindVertex, func(id core.ID) core.Iter[core.ID] {
		_, dst, err := t.e.EdgeEnds(id)
		if err != nil {
			return core.EmptyIter[core.ID]()
		}
		return core.SliceIter([]core.ID{dst})
	})
}

// Has filters elements on a property value (mid-pipeline .has step —
// always a per-element probe, never an index).
func (t *Traversal) Has(name string, v core.Value) *Traversal {
	return t.Filter(func(id core.ID) (bool, error) {
		var got core.Value
		var ok bool
		if t.kind == KindVertex {
			got, ok = t.e.VertexProp(id, name)
		} else {
			got, ok = t.e.EdgeProp(id, name)
		}
		return ok && got.Compare(v) == 0, nil
	})
}

// HasLabel filters edges on their label.
func (t *Traversal) HasLabel(label string) *Traversal {
	return t.Filter(func(id core.ID) (bool, error) {
		l, err := t.e.EdgeLabel(id)
		if err != nil {
			return false, nil
		}
		return l == label, nil
	})
}

// Filter keeps the elements for which keep returns true; an error from
// keep aborts the traversal (this is how engine failures such as
// core.ErrOutOfMemory propagate out of Q28–Q31).
func (t *Traversal) Filter(keep func(core.ID) (bool, error)) *Traversal {
	src := t.src
	return t.derive(t.kind, func() (core.ID, bool, error) {
		for {
			id, ok, err := src()
			if err != nil || !ok {
				return core.NoID, false, err
			}
			hit, err := keep(id)
			if err != nil {
				return core.NoID, false, err
			}
			if hit {
				return id, true, nil
			}
		}
	})
}

// DegreeAtLeast keeps vertices with at least k incident edges in
// direction d (the filter of Q28–Q30).
func (t *Traversal) DegreeAtLeast(d core.Direction, k int64) *Traversal {
	return t.Filter(func(id core.ID) (bool, error) {
		deg, err := t.e.Degree(id, d)
		if err != nil {
			return false, err
		}
		return deg >= k, nil
	})
}

// Dedup suppresses repeated element ids (.dedup).
func (t *Traversal) Dedup() *Traversal {
	src := t.src
	seen := make(map[core.ID]struct{})
	return t.derive(t.kind, func() (core.ID, bool, error) {
		for {
			id, ok, err := src()
			if err != nil || !ok {
				return core.NoID, false, err
			}
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			return id, true, nil
		}
	})
}

// Except drops elements contained in the set (.except(vs)).
func (t *Traversal) Except(set map[core.ID]struct{}) *Traversal {
	return t.Filter(func(id core.ID) (bool, error) {
		_, in := set[id]
		return !in, nil
	})
}

// Store adds every passing element to the set (.store(vs)).
func (t *Traversal) Store(set map[core.ID]struct{}) *Traversal {
	src := t.src
	return t.derive(t.kind, func() (core.ID, bool, error) {
		id, ok, err := src()
		if err != nil || !ok {
			return core.NoID, false, err
		}
		set[id] = struct{}{}
		return id, true, nil
	})
}

// Limit stops the traversal after n elements (.limit).
func (t *Traversal) Limit(n int64) *Traversal {
	src := t.src
	var seen int64
	return t.derive(t.kind, func() (core.ID, bool, error) {
		if seen >= n {
			return core.NoID, false, nil
		}
		id, ok, err := src()
		if err != nil || !ok {
			return core.NoID, false, err
		}
		seen++
		return id, true, nil
	})
}

// --- terminal operations (deadline-aware) ---

func (t *Traversal) drain(ctx context.Context, fn func(core.ID) bool) error {
	n := 0
	for {
		if n%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return core.ErrTimeout
			}
		}
		n++
		id, ok, err := t.src()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(id) {
			return nil
		}
	}
}

// Count drains the traversal and returns the element count (.count).
func (t *Traversal) Count(ctx context.Context) (int64, error) {
	var n int64
	err := t.drain(ctx, func(core.ID) bool { n++; return true })
	return n, err
}

// IDs drains the traversal into a slice.
func (t *Traversal) IDs(ctx context.Context) ([]core.ID, error) {
	var out []core.ID
	err := t.drain(ctx, func(id core.ID) bool { out = append(out, id); return true })
	return out, err
}

// First returns the first element; ok is false on an empty traversal.
func (t *Traversal) First(ctx context.Context) (core.ID, bool, error) {
	var got core.ID
	found := false
	err := t.drain(ctx, func(id core.ID) bool { got, found = id, true; return false })
	return got, found, err
}

// Labels drains an edge traversal into the label of each edge (.label).
func (t *Traversal) Labels(ctx context.Context) ([]string, error) {
	var out []string
	err := t.drain(ctx, func(id core.ID) bool {
		if l, err := t.e.EdgeLabel(id); err == nil {
			out = append(out, l)
		}
		return true
	})
	return out, err
}

// DistinctLabels drains an edge traversal into its distinct labels
// (.label.dedup — Q10, Q25–Q27).
func (t *Traversal) DistinctLabels(ctx context.Context) ([]string, error) {
	seen := make(map[string]struct{})
	var out []string
	err := t.drain(ctx, func(id core.ID) bool {
		if l, err := t.e.EdgeLabel(id); err == nil {
			if _, dup := seen[l]; !dup {
				seen[l] = struct{}{}
				out = append(out, l)
			}
		}
		return true
	})
	return out, err
}

// Values drains the traversal into one property value per element,
// skipping elements without the property (.values(name)).
func (t *Traversal) Values(ctx context.Context, name string) ([]core.Value, error) {
	var out []core.Value
	err := t.drain(ctx, func(id core.ID) bool {
		var v core.Value
		var ok bool
		if t.kind == KindVertex {
			v, ok = t.e.VertexProp(id, name)
		} else {
			v, ok = t.e.EdgeProp(id, name)
		}
		if ok {
			out = append(out, v)
		}
		return true
	})
	return out, err
}
