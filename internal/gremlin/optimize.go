package gremlin

import (
	"context"
	"sort"

	"repro/internal/core"
)

// The optimizer toggle travels in the context, not in package state:
// determinism tests run optimized and unoptimized traversals
// concurrently in one process, and a global flag would race.

type noOptimizerKey struct{}

// WithoutOptimizer returns a context under which traversal compilation
// skips filter reordering and implicit source fusion, executing the
// plan exactly as written (the -optimize=false escape hatch for A/B
// runs). Explicit source steps (G.VHas/G.EHas/G.EHasLabel) still hit
// the engine's index surface — that dispatch is part of the paper's
// query semantics, not an optimization.
func WithoutOptimizer(ctx context.Context) context.Context {
	return context.WithValue(ctx, noOptimizerKey{}, true)
}

// OptimizerEnabled reports whether traversal compilation under ctx may
// reorder and fuse steps.
func OptimizerEnabled(ctx context.Context) bool {
	off, _ := ctx.Value(noOptimizerKey{}).(bool)
	return !off
}

// engineStats returns the engine's load-time planner statistics, or nil
// when the engine has none (the optimizer then falls back to fixed
// heuristic selectivities).
func engineStats(e core.Engine) *core.PlanStats {
	if p, ok := e.(core.PlanStatsProvider); ok {
		return p.PlanStats()
	}
	return nil
}

// optimize returns a reordered copy of the plan: within each maximal
// run of consecutive pure filters (isFilter), steps are stable-sorted
// by ascending rank = (selectivity−1)/cost, so cheap selective
// predicates run first and expensive ones see the fewest elements.
//
// Only pure filters commute. Each one's verdict depends solely on the
// element id (Except reads a set, but between two adjacent filters no
// Store step can mutate it — Store is a barrier that terminates the
// run), so permuting a run changes neither the surviving element set
// nor its order: survivors still flow in upstream order, and dropped
// elements are dropped regardless of which predicate rejects first.
// Everything else — expansions, Dedup, Store, Limit, Sample, opaque
// FilterFunc predicates — pins its position.
func optimize(steps []Step, stats *core.PlanStats) []Step {
	out := append([]Step(nil), steps...)
	for i := 0; i < len(out); {
		if !out[i].isFilter() {
			i++
			continue
		}
		j := i + 1
		for j < len(out) && out[j].isFilter() {
			j++
		}
		if j-i > 1 {
			run := out[i:j]
			sort.SliceStable(run, func(a, b int) bool {
				return rank(run[a], stats) < rank(run[b], stats)
			})
		}
		i = j
	}
	return out
}

// rank orders commutable filters: (selectivity−1)/cost. A filter that
// drops many elements per unit of work ranks most negative and runs
// first; ties keep builder order (the sort is stable).
func rank(s Step, stats *core.PlanStats) float64 {
	return (selectivity(s, stats) - 1) / cost(s)
}

// selectivity estimates the fraction of elements a filter passes.
// Label and degree predicates read the snapshot statistics when the
// engine carries them; property equality has no per-value statistics
// (the repo keeps no histogram machinery, by design) and uses a fixed
// heuristic.
func selectivity(s Step, stats *core.PlanStats) float64 {
	switch s.Op {
	case OpHasLabel:
		if stats != nil {
			return stats.LabelSelectivity(s.Label)
		}
		return 0.1
	case OpHas:
		return 0.25
	case OpDegree:
		if stats != nil && s.Kind == KindVertex {
			return stats.DegreeAtLeastFrac(s.Dir, s.K)
		}
		return 0.5
	case OpExcept:
		return 0.9
	}
	return 1
}

// cost is the relative per-element price of evaluating a filter:
// label and set probes are one lookup, property probes fetch and
// compare a value, and degree thresholds walk or count incident edges
// (potentially a full chain traversal on the linked-list engines).
func cost(s Step) float64 {
	switch s.Op {
	case OpHasLabel, OpExcept:
		return 1
	case OpHas:
		return 2
	case OpDegree:
		return 8
	}
	return 1
}
