package workload

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engines"
)

// buildTestGraph makes a deterministic graph with properties on both
// nodes and edges, several labels, and non-trivial connectivity.
func buildTestGraph() *core.Graph {
	rng := rand.New(rand.NewSource(99))
	g := core.NewGraph(40, 120)
	for i := 0; i < 40; i++ {
		g.AddVertex(core.Props{
			"uid":  core.I(int64(i)),
			"name": core.S(fmt.Sprint("node", i)),
			"grp":  core.I(int64(i % 4)),
		})
	}
	labels := []string{"a", "b", "c"}
	for i := 0; i < 120; i++ {
		g.AddEdge(rng.Intn(40), rng.Intn(40), labels[rng.Intn(3)],
			core.Props{"w": core.I(int64(i % 7))})
	}
	return g
}

// params draws the standard parameter set against the dataset graph and
// translates it via a load result, exactly as the harness does.
func params(res *core.LoadResult) Params {
	return Params{
		V:            res.VertexIDs[3],
		V2:           res.VertexIDs[7],
		E:            res.EdgeIDs[11],
		Label:        "b",
		VPropName:    "grp",
		VPropValue:   core.I(2),
		EPropName:    "w",
		EPropValue:   core.I(3),
		NewPropName:  "fresh",
		NewPropValue: core.S("x"),
		NewVertex:    core.Props{"name": core.S("new")},
		NewEdgeProps: core.Props{"w": core.I(100)},
		K:            4,
		Depth:        2,
	}
}

func TestQueryListMatchesTable2(t *testing.T) {
	qs := Queries()
	if len(qs) != 34 { // Q2..Q35 (Q1 is the loader)
		t.Fatalf("got %d queries, want 34", len(qs))
	}
	seen := map[int]bool{}
	for _, q := range qs {
		if q.Num < 2 || q.Num > 35 || seen[q.Num] {
			t.Fatalf("bad or duplicate query number %d", q.Num)
		}
		seen[q.Num] = true
		if q.Name != fmt.Sprintf("Q%d", q.Num) {
			t.Errorf("query %d named %q", q.Num, q.Name)
		}
		if q.Gremlin == "" || q.Desc == "" {
			t.Errorf("%s lacks gremlin/description", q.Name)
		}
		switch q.Cat {
		case CatCreate, CatRead, CatUpdate, CatDelete, CatTraverse:
		default:
			t.Errorf("%s has category %q", q.Name, q.Cat)
		}
		if (q.Cat == CatCreate || q.Cat == CatUpdate || q.Cat == CatDelete) != q.Mutates {
			t.Errorf("%s mutates flag inconsistent with category %s", q.Name, q.Cat)
		}
	}
	if ByName("Q28") == nil || ByName("Q99") != nil {
		t.Fatal("ByName lookup wrong")
	}
	if len(ByCategory(CatTraverse)) != 14 {
		t.Fatalf("traversal queries = %d, want 14", len(ByCategory(CatTraverse)))
	}
}

// TestAllQueriesAgreeAcrossEngines is the core cross-validation: every
// read query must produce the same count on every engine, and every
// mutation must leave every engine in an equivalent state (checked via
// subsequent counts). This is the property the paper's comparative
// methodology silently depends on.
func TestAllQueriesAgreeAcrossEngines(t *testing.T) {
	g := buildTestGraph()
	ctx := context.Background()

	type run struct {
		engine string
		counts map[string]int64
	}
	var runs []run
	for _, name := range engines.Names() {
		counts := map[string]int64{}
		// Each query runs against a fresh load, as the paper's isolation
		// methodology requires (destructive queries would otherwise
		// invalidate later parameters).
		for _, q := range Queries() {
			e, err := engines.New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.BulkLoad(g)
			if err != nil {
				t.Fatalf("%s: load: %v", name, err)
			}
			p := params(res)
			r, err := q.Run(ctx, e, p)
			if err != nil {
				t.Fatalf("%s: %s: %v", name, q.Name, err)
			}
			counts[q.Name] = r.Count
			// Post-mutation probe: engines must agree on the state a
			// mutation leaves behind.
			if q.Mutates {
				nv, _ := e.CountVertices()
				ne, _ := e.CountEdges()
				counts[q.Name+"-postV"] = nv
				counts[q.Name+"-postE"] = ne
			}
			e.Close()
		}
		runs = append(runs, run{engine: name, counts: counts})
	}
	ref := runs[0]
	for _, r := range runs[1:] {
		for k, v := range ref.counts {
			if r.counts[k] != v {
				t.Errorf("%s: %s = %d, but %s got %d", r.engine, k, r.counts[k], ref.engine, v)
			}
		}
	}
}

func TestReadQueriesAreSideEffectFree(t *testing.T) {
	g := buildTestGraph()
	ctx := context.Background()
	e, _ := engines.New("neo-1.9")
	defer e.Close()
	res, _ := e.BulkLoad(g)
	p := params(res)
	for _, q := range Queries() {
		if q.Mutates {
			continue
		}
		before, _ := e.CountVertices()
		beforeE, _ := e.CountEdges()
		if _, err := q.Run(ctx, e, p); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		after, _ := e.CountVertices()
		afterE, _ := e.CountEdges()
		if before != after || beforeE != afterE {
			t.Fatalf("%s mutated the graph: %d/%d -> %d/%d", q.Name, before, beforeE, after, afterE)
		}
	}
}

func TestSpecificQuerySemantics(t *testing.T) {
	g := core.NewGraph(5, 5)
	for i := 0; i < 5; i++ {
		g.AddVertex(core.Props{"x": core.I(int64(i % 2))})
	}
	// star: 0 -> 1..4 plus 1 -> 0
	for i := 1; i < 5; i++ {
		g.AddEdge(0, i, "s", nil)
	}
	g.AddEdge(1, 0, "back", core.Props{"w": core.I(9)})
	e, _ := engines.New("sparksee")
	defer e.Close()
	res, _ := e.BulkLoad(g)
	ctx := context.Background()

	check := func(name string, p Params, want int64) {
		t.Helper()
		q := ByName(name)
		r, err := q.Run(ctx, e, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Count != want {
			t.Fatalf("%s = %d, want %d", name, r.Count, want)
		}
	}
	check("Q8", Params{}, 5)
	check("Q9", Params{}, 5)
	check("Q10", Params{}, 2)
	check("Q11", Params{VPropName: "x", VPropValue: core.I(1)}, 2)
	check("Q12", Params{EPropName: "w", EPropValue: core.I(9)}, 1)
	check("Q13", Params{Label: "s"}, 4)
	check("Q23", Params{V: res.VertexIDs[0]}, 4)
	check("Q22", Params{V: res.VertexIDs[0]}, 1)
	check("Q28", Params{K: 1}, 5)                          // all nodes have >=1 in-edge
	check("Q29", Params{K: 4}, 1)                          // only the hub
	check("Q31", Params{}, 5)                              // every node has an incoming edge
	check("Q32", Params{V: res.VertexIDs[2], Depth: 2}, 4) // 2 hops reach everything
	check("Q34", Params{V: res.VertexIDs[2], V2: res.VertexIDs[3]}, 3)
}

func TestComplexQueryListMatchesFigure2(t *testing.T) {
	want := []string{
		"max-iid", "max-oid", "create", "city", "company", "university",
		"friend1", "friend2", "friend-tags", "add-tags",
		"friend-of-friend", "triangle", "places",
	}
	qs := ComplexQueries()
	if len(qs) != len(want) {
		t.Fatalf("complex queries = %d, want %d", len(qs), len(want))
	}
	for i, q := range qs {
		if q.Name != want[i] {
			t.Errorf("complex[%d] = %q, want %q", i, q.Name, want[i])
		}
	}
	if ComplexByName("triangle") == nil || ComplexByName("nope") != nil {
		t.Fatal("ComplexByName wrong")
	}
}

// social builds a small ldbc-shaped graph for the complex queries.
func social() (*core.Graph, map[string]int) {
	g := core.NewGraph(0, 0)
	ix := map[string]int{}
	add := func(name, kind string) int {
		i := g.AddVertex(core.Props{"kind": core.S(kind), "name": core.S(name), "uid": core.I(int64(g.NumVertices()))})
		ix[name] = i
		return i
	}
	for _, p := range []string{"alice", "bob", "carol", "dave", "erin"} {
		add(p, "person")
	}
	add("rome", "city")
	add("acme", "company")
	add("mit", "university")
	add("jazz", "tag")
	add("go", "tag")
	knows := func(a, b string) {
		g.AddEdge(ix[a], ix[b], "knows", core.Props{"uid": core.I(int64(g.NumEdges()))})
		g.AddEdge(ix[b], ix[a], "knows", core.Props{"uid": core.I(int64(g.NumEdges()))})
	}
	knows("alice", "bob")
	knows("alice", "carol")
	knows("bob", "carol") // triangle alice-bob-carol
	knows("carol", "dave")
	knows("dave", "erin")
	g.AddEdge(ix["alice"], ix["rome"], "livesIn", nil)
	g.AddEdge(ix["alice"], ix["acme"], "worksAt", nil)
	g.AddEdge(ix["alice"], ix["mit"], "studyAt", nil)
	g.AddEdge(ix["bob"], ix["jazz"], "hasInterest", nil)
	g.AddEdge(ix["carol"], ix["go"], "hasInterest", nil)
	return g, ix
}

func TestComplexQueriesAgreeAcrossEngines(t *testing.T) {
	g, ix := social()
	ctx := context.Background()
	var ref map[string]int64
	for _, name := range engines.Names() {
		e, _ := engines.New(name)
		res, err := e.BulkLoad(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := ComplexParams{
			Person:     res.VertexIDs[ix["alice"]],
			City:       res.VertexIDs[ix["rome"]],
			University: res.VertexIDs[ix["mit"]],
			Company:    res.VertexIDs[ix["acme"]],
			Tags:       []core.ID{res.VertexIDs[ix["jazz"]], res.VertexIDs[ix["go"]]},
			NewPerson:  core.Props{"kind": core.S("person"), "name": core.S("zed")},
			K:          3,
		}
		counts := map[string]int64{}
		for _, q := range ComplexQueries() {
			r, err := q.Run(ctx, e, p)
			if err != nil {
				t.Fatalf("%s: %s: %v", name, q.Name, err)
			}
			counts[q.Name] = r.Count
		}
		e.Close()
		if ref == nil {
			ref = counts
			// Spot-check absolute semantics on the first engine.
			if counts["friend1"] != 2 {
				t.Fatalf("friend1 = %d, want 2", counts["friend1"])
			}
			if counts["triangle"] != 1 {
				t.Fatalf("triangle = %d, want 1", counts["triangle"])
			}
			if counts["city"] != 1 || counts["company"] != 1 || counts["university"] != 1 {
				t.Fatalf("profile hops wrong: %v", counts)
			}
			if counts["friend2"] != 1 { // dave (via carol); bob/carol are direct
				t.Fatalf("friend2 = %d, want 1", counts["friend2"])
			}
			continue
		}
		for k, v := range ref {
			if counts[k] != v {
				t.Errorf("%s: %s = %d, want %d", name, k, counts[k], v)
			}
		}
	}
}
