package workload

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/gremlin"
)

// ComplexParams carries the arguments of the complex (LDBC-derived)
// queries: objects drawn from the ldbc dataset by the harness.
type ComplexParams struct {
	Person     core.ID   // the acting user
	City       core.ID   // a place node
	University core.ID   // a university node
	Company    core.ID   // a company node
	Tags       []core.ID // tag nodes (add-tags)
	NewPerson  core.Props
	K          int // top-k for recommendation queries
}

// ComplexQuery is one of the 13 macro-benchmark queries of Figure 2,
// mimicking the tasks of a new social-network user — from account
// creation to friend and content recommendation (Section 4.7).
//
// The paper's exact definitions live in its technical report; the
// versions here follow the figure's query names and the paper's
// description of their structure (multi-operator compositions, multiple
// join predicates, sorting, top-k, max).
type ComplexQuery struct {
	Name    string
	Desc    string
	Mutates bool
	Run     func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error)
}

// ComplexQueries returns the 13 queries in Figure 2 order.
func ComplexQueries() []ComplexQuery {
	return []ComplexQuery{
		{
			Name: "max-iid",
			Desc: "max internal node uid (next account id)",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				vals, err := gremlin.New(e).V().Values(ctx, "uid")
				if err != nil {
					return Result{}, err
				}
				var max int64
				for _, v := range vals {
					if v.Int() > max {
						max = v.Int()
					}
				}
				return Result{Count: max}, nil
			},
		},
		{
			Name: "max-oid",
			Desc: "max internal edge uid (next object id)",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				vals, err := gremlin.New(e).E().Values(ctx, "uid")
				if err != nil {
					return Result{}, err
				}
				var max int64
				for _, v := range vals {
					if v.Int() > max {
						max = v.Int()
					}
				}
				return Result{Count: max}, nil
			},
		},
		{
			Name: "create", Mutates: true,
			Desc: "create an account and fill the profile (node + school/birthplace/workplace edges)",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				nv, err := e.AddVertex(p.NewPerson)
				if err != nil {
					return Result{}, err
				}
				if _, err := e.AddEdge(nv, p.City, "livesIn", nil); err != nil {
					return Result{}, err
				}
				if _, err := e.AddEdge(nv, p.University, "studyAt", nil); err != nil {
					return Result{}, err
				}
				if _, err := e.AddEdge(nv, p.Company, "worksAt", nil); err != nil {
					return Result{}, err
				}
				return Result{Count: 4}, nil
			},
		},
		{
			Name: "city",
			Desc: "the city where the user lives (single-label 1-hop)",
			Run:  hop1("livesIn"),
		},
		{
			Name: "company",
			Desc: "the company where the user works (single-label 1-hop)",
			Run:  hop1("worksAt"),
		},
		{
			Name: "university",
			Desc: "the university the user attended (single-label 1-hop)",
			Run:  hop1("studyAt"),
		},
		{
			Name: "friend1",
			Desc: "direct friends of the user",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				n, err := gremlin.New(e).VID(p.Person).Out("knows").Dedup().Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Name: "friend2",
			Desc: "friends of friends, excluding self and direct friends",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				g := gremlin.New(e)
				direct, err := g.VID(p.Person).Out("knows").IDs(ctx)
				if err != nil {
					return Result{}, err
				}
				skip := map[core.ID]struct{}{p.Person: {}}
				for _, f := range direct {
					skip[f] = struct{}{}
				}
				n, err := g.VID(p.Person).Out("knows").Out("knows").Dedup().Except(skip).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Name: "friend-tags",
			Desc: "interest tags of the user's friends",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				n, err := gremlin.New(e).VID(p.Person).
					Out("knows").Out("hasInterest").Dedup().Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Name: "add-tags", Mutates: true,
			Desc: "subscribe the user to a set of tags",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				for _, tag := range p.Tags {
					if _, err := e.AddEdge(p.Person, tag, "hasInterest", nil); err != nil {
						return Result{}, err
					}
				}
				return Result{Count: int64(len(p.Tags))}, nil
			},
		},
		{
			Name: "friend-of-friend",
			Desc: "top-k friend recommendations ranked by common friends (join + sort + top-k)",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				g := gremlin.New(e)
				direct, err := g.VID(p.Person).Out("knows").IDs(ctx)
				if err != nil {
					return Result{}, err
				}
				isFriend := map[core.ID]struct{}{p.Person: {}}
				for _, f := range direct {
					isFriend[f] = struct{}{}
				}
				counts := make(map[core.ID]int)
				for _, f := range direct {
					fof, err := g.VID(f).Out("knows").IDs(ctx)
					if err != nil {
						return Result{}, err
					}
					for _, c := range fof {
						if _, skip := isFriend[c]; !skip {
							counts[c]++
						}
					}
				}
				type cand struct {
					id core.ID
					n  int
				}
				ranked := make([]cand, 0, len(counts))
				for id, n := range counts {
					ranked = append(ranked, cand{id, n})
				}
				sort.Slice(ranked, func(i, j int) bool {
					if ranked[i].n != ranked[j].n {
						return ranked[i].n > ranked[j].n
					}
					return ranked[i].id < ranked[j].id
				})
				k := p.K
				if k <= 0 || k > len(ranked) {
					k = len(ranked)
				}
				return Result{Count: int64(k)}, nil
			},
		},
		{
			Name: "triangle",
			Desc: "triangles through the user (pairs of friends who know each other)",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				g := gremlin.New(e)
				direct, err := g.VID(p.Person).Out("knows").IDs(ctx)
				if err != nil {
					return Result{}, err
				}
				inSet := make(map[core.ID]struct{}, len(direct))
				for _, f := range direct {
					inSet[f] = struct{}{}
				}
				var n int64
				for _, f := range direct {
					ff, err := g.VID(f).Out("knows").IDs(ctx)
					if err != nil {
						return Result{}, err
					}
					for _, x := range ff {
						if _, hit := inSet[x]; hit && x != f {
							n++
						}
					}
				}
				return Result{Count: n / 2}, nil // each triangle counted twice
			},
		},
		{
			Name: "places",
			Desc: "entities two unfiltered hops around the user (traverses many edge types; large intermediates)",
			Run: func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
				n, err := gremlin.New(e).VID(p.Person).Both().Both().Dedup().Count(ctx)
				return Result{Count: n}, err
			},
		},
	}
}

func hop1(label string) func(context.Context, core.Engine, ComplexParams) (Result, error) {
	return func(ctx context.Context, e core.Engine, p ComplexParams) (Result, error) {
		n, err := gremlin.New(e).VID(p.Person).Out(label).Count(ctx)
		return Result{Count: n}, err
	}
}

// ComplexByName returns the named complex query, or nil.
func ComplexByName(name string) *ComplexQuery {
	for _, q := range ComplexQueries() {
		if q.Name == name {
			q := q
			return &q
		}
	}
	return nil
}
