// Package workload defines the paper's test queries: the 35 primitive
// operation classes of Table 2 (the micro-benchmark) and the 13
// LDBC-derived complex queries of Figure 2 (the macro comparison).
//
// Every query is written once, against the gremlin traversal layer, and
// parameterized by a Params value that the harness derives from the
// *dataset* (not from any engine), so the same logical objects are
// queried in every system — the fairness requirement of Section 5.
package workload

import (
	"context"

	"repro/internal/core"
	"repro/internal/gremlin"
)

// Category classifies queries as in Table 2.
type Category string

// Query categories (Table 2's L/C/R/U/D/T).
const (
	CatLoad     Category = "L"
	CatCreate   Category = "C"
	CatRead     Category = "R"
	CatUpdate   Category = "U"
	CatDelete   Category = "D"
	CatTraverse Category = "T"
)

// Params carries the pre-drawn arguments of one query execution. The
// harness fills only the fields a query needs, translated to engine IDs
// through the engine's LoadResult.
type Params struct {
	V, V2 core.ID // vertex arguments
	E     core.ID // edge argument

	Label string // edge label argument

	VPropName  string     // existing vertex property name
	VPropValue core.Value // matching value
	EPropName  string     // existing edge property name
	EPropValue core.Value

	NewPropName  string // property to create/update
	NewPropValue core.Value
	NewVertex    core.Props // properties for created vertices
	NewEdgeProps core.Props // properties for created edges

	K     int64 // degree threshold (Q28–Q30)
	Depth int   // BFS depth (Q32, Q33)
	Fanum int   // number of edges for Q7
}

// Result is a query outcome, comparable across engines for validation.
type Result struct {
	// Count is the number of elements returned or affected.
	Count int64
}

// Query is one of the 35 primitive operations.
type Query struct {
	Num     int      // Table 2 number (2..35; 1 is the loader)
	Name    string   // "Q2", ...
	Gremlin string   // the paper's Gremlin 2.6 phrasing
	Desc    string   // Table 2 description
	Cat     Category // L/C/R/U/D/T
	Mutates bool     // whether the query changes the database
	Run     func(ctx context.Context, e core.Engine, p Params) (Result, error)
}

// Queries returns the micro-benchmark queries in Table 2 order.
// Q1 (bulk load) is executed by the harness itself, since — as in the
// paper — loading goes through per-engine bulk paths and is measured
// separately (Figure 3(a)).
func Queries() []Query {
	return []Query{
		{
			Num: 2, Name: "Q2", Cat: CatCreate, Mutates: true,
			Gremlin: "g.addVertex(p[])", Desc: "Create new node with properties p",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				_, err := e.AddVertex(p.NewVertex)
				return Result{Count: 1}, err
			},
		},
		{
			Num: 3, Name: "Q3", Cat: CatCreate, Mutates: true,
			Gremlin: "g.addEdge(v1, v2, l)", Desc: "Add edge from v1 to v2",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				_, err := e.AddEdge(p.V, p.V2, p.Label, nil)
				return Result{Count: 1}, err
			},
		},
		{
			Num: 4, Name: "Q4", Cat: CatCreate, Mutates: true,
			Gremlin: "g.addEdge(v1, v2, l, p[])", Desc: "Add edge with properties p",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				_, err := e.AddEdge(p.V, p.V2, p.Label, p.NewEdgeProps)
				return Result{Count: 1}, err
			},
		},
		{
			Num: 5, Name: "Q5", Cat: CatCreate, Mutates: true,
			Gremlin: "v.setProperty(Name, Value)", Desc: "Add property Name=Value to node v",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				return Result{Count: 1}, e.SetVertexProp(p.V, p.NewPropName, p.NewPropValue)
			},
		},
		{
			Num: 6, Name: "Q6", Cat: CatCreate, Mutates: true,
			Gremlin: "e.setProperty(Name, Value)", Desc: "Add property Name=Value to edge e",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				return Result{Count: 1}, e.SetEdgeProp(p.E, p.NewPropName, p.NewPropValue)
			},
		},
		{
			Num: 7, Name: "Q7", Cat: CatCreate, Mutates: true,
			Gremlin: "g.addVertex(...); g.addEdge(...)", Desc: "Add a new node, then edges to it",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				nv, err := e.AddVertex(p.NewVertex)
				if err != nil {
					return Result{}, err
				}
				if _, err := e.AddEdge(nv, p.V, p.Label, nil); err != nil {
					return Result{}, err
				}
				if _, err := e.AddEdge(p.V2, nv, p.Label, nil); err != nil {
					return Result{}, err
				}
				return Result{Count: 3}, nil
			},
		},
		{
			Num: 8, Name: "Q8", Cat: CatRead,
			Gremlin: "g.V.count()", Desc: "Total number of nodes",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).V().Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 9, Name: "Q9", Cat: CatRead,
			Gremlin: "g.E.count()", Desc: "Total number of edges",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).E().Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 10, Name: "Q10", Cat: CatRead,
			Gremlin: "g.E.label.dedup()", Desc: "Existing edge labels (no duplicates)",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				ls, err := gremlin.New(e).E().DistinctLabels(ctx)
				return Result{Count: int64(len(ls))}, err
			},
		},
		{
			Num: 11, Name: "Q11", Cat: CatRead,
			Gremlin: "g.V.has(Name, Value)", Desc: "Nodes with property Name=Value",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).VHas(p.VPropName, p.VPropValue).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 12, Name: "Q12", Cat: CatRead,
			Gremlin: "g.E.has(Name, Value)", Desc: "Edges with property Name=Value",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).EHas(p.EPropName, p.EPropValue).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 13, Name: "Q13", Cat: CatRead,
			Gremlin: "g.E.has('label', l)", Desc: "Edges with label l",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).EHasLabel(p.Label).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 14, Name: "Q14", Cat: CatRead,
			Gremlin: "g.V(id)", Desc: "The node with identifier id",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).VID(p.V).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 15, Name: "Q15", Cat: CatRead,
			Gremlin: "g.E(id)", Desc: "The edge with identifier id",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).EID(p.E).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 16, Name: "Q16", Cat: CatUpdate, Mutates: true,
			Gremlin: "v.setProperty(Name, Value)", Desc: "Update property Name for vertex v",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				return Result{Count: 1}, e.SetVertexProp(p.V, p.VPropName, p.NewPropValue)
			},
		},
		{
			Num: 17, Name: "Q17", Cat: CatUpdate, Mutates: true,
			Gremlin: "e.setProperty(Name, Value)", Desc: "Update property Name for edge e",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				return Result{Count: 1}, e.SetEdgeProp(p.E, p.EPropName, p.NewPropValue)
			},
		},
		{
			Num: 18, Name: "Q18", Cat: CatDelete, Mutates: true,
			Gremlin: "g.removeVertex(id)", Desc: "Delete node identified by id",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				return Result{Count: 1}, e.RemoveVertex(p.V)
			},
		},
		{
			Num: 19, Name: "Q19", Cat: CatDelete, Mutates: true,
			Gremlin: "g.removeEdge(id)", Desc: "Delete edge identified by id",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				return Result{Count: 1}, e.RemoveEdge(p.E)
			},
		},
		{
			Num: 20, Name: "Q20", Cat: CatDelete, Mutates: true,
			Gremlin: "v.removeProperty(Name)", Desc: "Remove node property Name from v",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				return Result{Count: 1}, e.RemoveVertexProp(p.V, p.VPropName)
			},
		},
		{
			Num: 21, Name: "Q21", Cat: CatDelete, Mutates: true,
			Gremlin: "e.removeProperty(Name)", Desc: "Remove edge property Name from e",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				return Result{Count: 1}, e.RemoveEdgeProp(p.E, p.EPropName)
			},
		},
		{
			Num: 22, Name: "Q22", Cat: CatTraverse,
			Gremlin: "v.in()", Desc: "Nodes adjacent to v via incoming edges",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).VID(p.V).In().Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 23, Name: "Q23", Cat: CatTraverse,
			Gremlin: "v.out()", Desc: "Nodes adjacent to v via outgoing edges",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).VID(p.V).Out().Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 24, Name: "Q24", Cat: CatTraverse,
			Gremlin: "v.both('l')", Desc: "Nodes adjacent to v via edges labeled l",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).VID(p.V).Both(p.Label).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 25, Name: "Q25", Cat: CatTraverse,
			Gremlin: "v.inE.label.dedup()", Desc: "Labels of incoming edges of v",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				ls, err := gremlin.New(e).VID(p.V).InE().DistinctLabels(ctx)
				return Result{Count: int64(len(ls))}, err
			},
		},
		{
			Num: 26, Name: "Q26", Cat: CatTraverse,
			Gremlin: "v.outE.label.dedup()", Desc: "Labels of outgoing edges of v",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				ls, err := gremlin.New(e).VID(p.V).OutE().DistinctLabels(ctx)
				return Result{Count: int64(len(ls))}, err
			},
		},
		{
			Num: 27, Name: "Q27", Cat: CatTraverse,
			Gremlin: "v.bothE.label.dedup()", Desc: "Labels of edges of v",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				ls, err := gremlin.New(e).VID(p.V).BothE().DistinctLabels(ctx)
				return Result{Count: int64(len(ls))}, err
			},
		},
		{
			Num: 28, Name: "Q28", Cat: CatTraverse,
			Gremlin: "g.V.filter{it.inE.count()>=k}", Desc: "Nodes of at least k-incoming-degree",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).V().DegreeAtLeast(core.DirIn, p.K).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 29, Name: "Q29", Cat: CatTraverse,
			Gremlin: "g.V.filter{it.outE.count()>=k}", Desc: "Nodes of at least k-outgoing-degree",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).V().DegreeAtLeast(core.DirOut, p.K).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 30, Name: "Q30", Cat: CatTraverse,
			Gremlin: "g.V.filter{it.bothE.count()>=k}", Desc: "Nodes of at least k-degree",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).V().DegreeAtLeast(core.DirBoth, p.K).Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 31, Name: "Q31", Cat: CatTraverse,
			Gremlin: "g.V.out.dedup()", Desc: "Nodes having an incoming edge",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				n, err := gremlin.New(e).V().Out().Dedup().Count(ctx)
				return Result{Count: n}, err
			},
		},
		{
			Num: 32, Name: "Q32", Cat: CatTraverse,
			Gremlin: "v.as('i').both().except(vs).store(vs).loop('i')",
			Desc:    "Nodes reached via breadth-first traversal from v",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				vs, err := gremlin.BFS(ctx, e, p.V, p.Depth)
				return Result{Count: int64(len(vs))}, err
			},
		},
		{
			Num: 33, Name: "Q33", Cat: CatTraverse,
			Gremlin: "v.as('i').both(*ls).except(vs).store(vs).loop('i')",
			Desc:    "Nodes reached via breadth-first traversal from v on labels ls",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				vs, err := gremlin.BFS(ctx, e, p.V, p.Depth, p.Label)
				return Result{Count: int64(len(vs))}, err
			},
		},
		{
			Num: 34, Name: "Q34", Cat: CatTraverse,
			Gremlin: "v1...loop('i'){!it.object.equals(v2)}.retain([v2]).path()",
			Desc:    "Unweighted shortest path from v1 to v2",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				path, err := gremlin.ShortestPath(ctx, e, p.V, p.V2)
				return Result{Count: int64(len(path))}, err
			},
		},
		{
			Num: 35, Name: "Q35", Cat: CatTraverse,
			Gremlin: "Shortest Path on 'l'",
			Desc:    "Same as Q34, but only following label l",
			Run: func(ctx context.Context, e core.Engine, p Params) (Result, error) {
				path, err := gremlin.ShortestPath(ctx, e, p.V, p.V2, p.Label)
				return Result{Count: int64(len(path))}, err
			},
		},
	}
}

// ByName returns the named query (e.g. "Q28"), or nil.
func ByName(name string) *Query {
	for _, q := range Queries() {
		if q.Name == name {
			q := q
			return &q
		}
	}
	return nil
}

// ByCategory filters the query list.
func ByCategory(cat Category) []Query {
	var out []Query
	for _, q := range Queries() {
		if q.Cat == cat {
			out = append(out, q)
		}
	}
	return out
}
