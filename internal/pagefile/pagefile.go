// Package pagefile provides the two low-level storage shapes used by the
// native-architecture engines, mirroring how the paper describes their
// files (Section 3.2):
//
//   - Store: a file of fixed-size records where the record ID *is* the
//     offset (ID × record size), as in Neo4j's node/relationship stores.
//     Given an ID, a record is fetched with one multiplication and one
//     slice — the "direct pointer" edge traversal of Table 1.
//
//   - Heap: an append-only file of variable-size records addressed by
//     physical offset, as in OrientDB's clusters; combined with a
//     position map it yields logical RIDs that survive relocation.
//
// Both are byte-backed so space accounting (Figure 1) reflects the real
// serialized size of the stores, including fragmentation and freelists.
package pagefile

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Store is a file of fixed-size records. Record 0 is valid; callers that
// need a nil sentinel should reserve it themselves.
type Store struct {
	recSize  int
	buf      []byte
	inUse    []bool
	freelist []int64
	live     int64
}

// NewStore returns a store of recSize-byte records.
func NewStore(recSize int) *Store {
	if recSize <= 0 {
		panic(fmt.Sprintf("pagefile: invalid record size %d", recSize))
	}
	return &Store{recSize: recSize}
}

// RecordSize returns the fixed record size.
func (s *Store) RecordSize() int { return s.recSize }

// Reserve grows the store's capacity to hold n additional records
// without reallocation — the bulk-load pre-sizing hook: a loader that
// knows its record count up front (via the dataset's CSR snapshot)
// avoids the doubling copies of append. It never changes the store's
// contents or IDs.
func (s *Store) Reserve(n int64) {
	if n <= 0 {
		return
	}
	s.buf = slices.Grow(s.buf, int(n)*s.recSize)
	s.inUse = slices.Grow(s.inUse, int(n))
}

// Alloc reserves a record, reusing freed slots first, and returns its ID.
func (s *Store) Alloc() int64 {
	if n := len(s.freelist); n > 0 {
		id := s.freelist[n-1]
		s.freelist = s.freelist[:n-1]
		s.inUse[id] = true
		s.live++
		clear(s.buf[int(id)*s.recSize : (int(id)+1)*s.recSize])
		return id
	}
	id := int64(len(s.inUse))
	s.inUse = append(s.inUse, true)
	s.buf = append(s.buf, make([]byte, s.recSize)...)
	s.live++
	return id
}

// Free releases a record back to the freelist.
func (s *Store) Free(id int64) {
	if !s.valid(id) {
		return
	}
	s.inUse[id] = false
	s.freelist = append(s.freelist, id)
	s.live--
}

func (s *Store) valid(id int64) bool {
	return id >= 0 && id < int64(len(s.inUse)) && s.inUse[id]
}

// InUse reports whether the record is live.
func (s *Store) InUse(id int64) bool { return s.valid(id) }

// Record returns the live record's bytes as a direct view (no copy);
// writes through the slice mutate the store. ok is false for freed or
// out-of-range IDs.
func (s *Store) Record(id int64) (rec []byte, ok bool) {
	if !s.valid(id) {
		return nil, false
	}
	off := int(id) * s.recSize
	return s.buf[off : off+s.recSize : off+s.recSize], true
}

// Live returns the number of live records.
func (s *Store) Live() int64 { return s.live }

// HighWater returns the number of record slots ever allocated; the file
// size is HighWater × RecordSize regardless of freed records, as with
// real record files.
func (s *Store) HighWater() int64 { return int64(len(s.inUse)) }

// Bytes returns the file size in bytes (plus freelist overhead).
func (s *Store) Bytes() int64 {
	return int64(len(s.buf)) + int64(len(s.freelist))*8 + int64(len(s.inUse))
}

// ScanLive calls fn for every live record ID in ascending order until fn
// returns false.
func (s *Store) ScanLive(fn func(id int64) bool) {
	for id, ok := range s.inUse {
		if ok && !fn(int64(id)) {
			return
		}
	}
}

// Heap is an append-only variable-size record file. Records are length-
// prefixed; deleting leaves a hole (dead bytes), as in append-only
// cluster files. Offsets returned by Append are stable physical
// positions.
type Heap struct {
	buf  []byte
	dead int64
	live int64
}

// NewHeap returns an empty heap file.
func NewHeap() *Heap { return &Heap{} }

// Reserve grows the heap's capacity by n bytes (plus per-record
// headers are the caller's business) without changing its contents.
func (h *Heap) Reserve(n int64) {
	if n <= 0 {
		return
	}
	h.buf = slices.Grow(h.buf, int(n))
}

// Append writes a record and returns its physical offset.
func (h *Heap) Append(rec []byte) int64 {
	off := int64(len(h.buf))
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	h.buf = append(h.buf, hdr[:]...)
	h.buf = append(h.buf, rec...)
	h.live++
	return off
}

// Read returns a view of the record at off. ok is false if off is out of
// range.
func (h *Heap) Read(off int64) (rec []byte, ok bool) {
	if off < 0 || off+4 > int64(len(h.buf)) {
		return nil, false
	}
	n := int64(binary.LittleEndian.Uint32(h.buf[off:]))
	if off+4+n > int64(len(h.buf)) {
		return nil, false
	}
	return h.buf[off+4 : off+4+n : off+4+n], true
}

// Delete marks the record at off as dead. The space is not reclaimed
// (append-only file); it is tracked as dead bytes.
func (h *Heap) Delete(off int64) {
	if rec, ok := h.Read(off); ok {
		h.dead += int64(len(rec)) + 4
		h.live--
	}
}

// Update rewrites a record: appended at the tail, old position dead. It
// returns the new offset — the relocation that OrientDB's position map
// absorbs without changing the logical RID.
func (h *Heap) Update(off int64, rec []byte) int64 {
	h.Delete(off)
	return h.Append(rec)
}

// Bytes returns the file size (dead space included, as on disk).
func (h *Heap) Bytes() int64 { return int64(len(h.buf)) }

// DeadBytes returns the bytes occupied by deleted records.
func (h *Heap) DeadBytes() int64 { return h.dead }

// Live returns the number of live records.
func (h *Heap) Live() int64 { return h.live }

// PositionMap maps logical record positions to physical offsets, the
// indirection OrientDB places between RIDs and cluster files so objects
// can move without changing identity. Logical IDs are dense and
// append-only; freed entries are tombstoned.
type PositionMap struct {
	phys []int64 // -1 = tombstone
	live int64
}

// NewPositionMap returns an empty map.
func NewPositionMap() *PositionMap { return &PositionMap{} }

// Reserve grows the map's capacity to hold n additional logical
// positions without changing its contents or accounting.
func (m *PositionMap) Reserve(n int64) {
	if n <= 0 {
		return
	}
	m.phys = slices.Grow(m.phys, int(n))
}

// Add registers a physical offset and returns the logical position.
func (m *PositionMap) Add(phys int64) int64 {
	m.phys = append(m.phys, phys)
	m.live++
	return int64(len(m.phys) - 1)
}

// Get resolves a logical position. ok is false for tombstoned or
// out-of-range positions.
func (m *PositionMap) Get(logical int64) (phys int64, ok bool) {
	if logical < 0 || logical >= int64(len(m.phys)) || m.phys[logical] < 0 {
		return 0, false
	}
	return m.phys[logical], true
}

// Move repoints a logical position at a new physical offset.
func (m *PositionMap) Move(logical, phys int64) bool {
	if logical < 0 || logical >= int64(len(m.phys)) || m.phys[logical] < 0 {
		return false
	}
	m.phys[logical] = phys
	return true
}

// Free tombstones a logical position.
func (m *PositionMap) Free(logical int64) bool {
	if logical < 0 || logical >= int64(len(m.phys)) || m.phys[logical] < 0 {
		return false
	}
	m.phys[logical] = -1
	m.live--
	return true
}

// Live returns the number of live logical positions.
func (m *PositionMap) Live() int64 { return m.live }

// Len returns the high-water number of logical positions.
func (m *PositionMap) Len() int64 { return int64(len(m.phys)) }

// ScanLive calls fn for every live logical position in ascending order
// until fn returns false.
func (m *PositionMap) ScanLive(fn func(logical int64) bool) {
	for i, p := range m.phys {
		if p >= 0 && !fn(int64(i)) {
			return
		}
	}
}

// Bytes returns the map's size.
func (m *PositionMap) Bytes() int64 { return int64(len(m.phys)) * 8 }
