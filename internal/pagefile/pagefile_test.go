package pagefile

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStoreAllocWriteRead(t *testing.T) {
	s := NewStore(16)
	a := s.Alloc()
	b := s.Alloc()
	if a == b {
		t.Fatalf("Alloc returned duplicate id %d", a)
	}
	ra, _ := s.Record(a)
	copy(ra, "hello")
	rb, _ := s.Record(b)
	copy(rb, "world")
	ra2, ok := s.Record(a)
	if !ok || !bytes.HasPrefix(ra2, []byte("hello")) {
		t.Fatalf("record a corrupted: %q", ra2)
	}
	if len(ra2) != 16 {
		t.Fatalf("record view length %d", len(ra2))
	}
}

func TestStoreFreeReuseZeroes(t *testing.T) {
	s := NewStore(8)
	a := s.Alloc()
	r, _ := s.Record(a)
	copy(r, "AAAAAAAA")
	s.Free(a)
	if s.InUse(a) {
		t.Fatalf("freed record still in use")
	}
	if _, ok := s.Record(a); ok {
		t.Fatalf("freed record readable")
	}
	b := s.Alloc()
	if b != a {
		t.Fatalf("freelist not reused: got %d want %d", b, a)
	}
	rb, _ := s.Record(b)
	for _, c := range rb {
		if c != 0 {
			t.Fatalf("reused record not zeroed: %v", rb)
		}
	}
}

func TestStoreHighWaterIsFileSize(t *testing.T) {
	s := NewStore(32)
	ids := make([]int64, 10)
	for i := range ids {
		ids[i] = s.Alloc()
	}
	for _, id := range ids[:5] {
		s.Free(id)
	}
	if s.Live() != 5 || s.HighWater() != 10 {
		t.Fatalf("live=%d highwater=%d", s.Live(), s.HighWater())
	}
	if s.Bytes() < 10*32 {
		t.Fatalf("Bytes=%d must include freed slots", s.Bytes())
	}
}

func TestStoreScanLive(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 6; i++ {
		s.Alloc()
	}
	s.Free(1)
	s.Free(3)
	var got []int64
	s.ScanLive(func(id int64) bool { got = append(got, id); return true })
	want := []int64{0, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
	n := 0
	s.ScanLive(func(int64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestStoreInvalidIDs(t *testing.T) {
	s := NewStore(4)
	if _, ok := s.Record(-1); ok {
		t.Fatal("negative id readable")
	}
	if _, ok := s.Record(99); ok {
		t.Fatal("out of range id readable")
	}
	s.Free(-3) // must not panic
	s.Free(99)
}

func TestHeapAppendReadDelete(t *testing.T) {
	h := NewHeap()
	o1 := h.Append([]byte("first"))
	o2 := h.Append([]byte("second record"))
	if r, ok := h.Read(o1); !ok || string(r) != "first" {
		t.Fatalf("Read(o1) = %q %v", r, ok)
	}
	if r, ok := h.Read(o2); !ok || string(r) != "second record" {
		t.Fatalf("Read(o2) = %q %v", r, ok)
	}
	h.Delete(o1)
	if h.DeadBytes() == 0 || h.Live() != 1 {
		t.Fatalf("dead=%d live=%d", h.DeadBytes(), h.Live())
	}
	if h.Bytes() < int64(len("first")+len("second record")) {
		t.Fatalf("heap shrank on delete (append-only expected)")
	}
}

func TestHeapUpdateRelocates(t *testing.T) {
	h := NewHeap()
	o := h.Append([]byte("v1"))
	o2 := h.Update(o, []byte("version-two"))
	if o2 == o {
		t.Fatalf("update did not relocate")
	}
	if r, ok := h.Read(o2); !ok || string(r) != "version-two" {
		t.Fatalf("relocated read = %q %v", r, ok)
	}
}

func TestHeapReadOutOfRange(t *testing.T) {
	h := NewHeap()
	if _, ok := h.Read(0); ok {
		t.Fatal("empty heap readable")
	}
	h.Append([]byte("x"))
	if _, ok := h.Read(1000); ok {
		t.Fatal("far offset readable")
	}
	if _, ok := h.Read(-1); ok {
		t.Fatal("negative offset readable")
	}
}

func TestPositionMapLifecycle(t *testing.T) {
	m := NewPositionMap()
	l1 := m.Add(100)
	l2 := m.Add(200)
	if p, ok := m.Get(l1); !ok || p != 100 {
		t.Fatalf("Get(l1) = %d %v", p, ok)
	}
	if !m.Move(l1, 300) {
		t.Fatal("Move failed")
	}
	if p, _ := m.Get(l1); p != 300 {
		t.Fatalf("moved position = %d", p)
	}
	if !m.Free(l2) || m.Free(l2) {
		t.Fatal("Free semantics wrong")
	}
	if _, ok := m.Get(l2); ok {
		t.Fatal("freed logical position resolvable")
	}
	if m.Live() != 1 || m.Len() != 2 {
		t.Fatalf("live=%d len=%d", m.Live(), m.Len())
	}
	var seen []int64
	m.ScanLive(func(l int64) bool { seen = append(seen, l); return true })
	if len(seen) != 1 || seen[0] != l1 {
		t.Fatalf("ScanLive = %v", seen)
	}
}

// TestQuickHeapRoundTrip: whatever is appended is readable verbatim at
// the returned offset, regardless of interleaved appends.
func TestQuickHeapRoundTrip(t *testing.T) {
	f := func(recs [][]byte) bool {
		h := NewHeap()
		offs := make([]int64, len(recs))
		for i, r := range recs {
			offs[i] = h.Append(r)
		}
		for i, r := range recs {
			got, ok := h.Read(offs[i])
			if !ok || !bytes.Equal(got, r) {
				return false
			}
		}
		return h.Live() == int64(len(recs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickStoreAllocFreeInvariant: live count equals allocs minus frees
// and all live records are readable.
func TestQuickStoreAllocFreeInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		s := NewStore(8)
		var ids []int64
		for _, alloc := range ops {
			if alloc || len(ids) == 0 {
				ids = append(ids, s.Alloc())
			} else {
				s.Free(ids[len(ids)-1])
				ids = ids[:len(ids)-1]
			}
		}
		if s.Live() != int64(len(ids)) {
			return false
		}
		for _, id := range ids {
			if _, ok := s.Record(id); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreReserve(t *testing.T) {
	s := NewStore(8)
	id0 := s.Alloc()
	s.Reserve(100)
	if got, ok := s.Record(id0); !ok || len(got) != 8 {
		t.Fatal("Reserve disturbed existing records")
	}
	if s.HighWater() != 1 || s.Live() != 1 {
		t.Fatalf("Reserve changed accounting: high=%d live=%d", s.HighWater(), s.Live())
	}
	// The next 100 allocs must not reallocate the backing buffer.
	rec0, _ := s.Record(id0)
	p0 := &rec0[0]
	for i := 0; i < 100; i++ {
		s.Alloc()
	}
	rec0b, _ := s.Record(id0)
	if p0 != &rec0b[0] {
		t.Fatal("allocations within reserved capacity reallocated the buffer")
	}
	s.Reserve(0) // no-ops
	s.Reserve(-1)
}

func TestPositionMapReserve(t *testing.T) {
	m := NewPositionMap()
	l0 := m.Add(42)
	m.Reserve(100)
	if got, ok := m.Get(l0); !ok || got != 42 {
		t.Fatal("Reserve disturbed existing entries")
	}
	if m.Len() != 1 || m.Live() != 1 {
		t.Fatalf("Reserve changed accounting: len=%d live=%d", m.Len(), m.Live())
	}
	m.Reserve(0) // no-ops
	m.Reserve(-1)
}

func TestHeapReserve(t *testing.T) {
	h := NewHeap()
	off := h.Append([]byte("abc"))
	h.Reserve(1 << 12)
	if got, ok := h.Read(off); !ok || string(got) != "abc" {
		t.Fatal("Reserve disturbed heap contents")
	}
	if h.Bytes() != 4+3 {
		t.Fatalf("Reserve changed the accounted size: %d", h.Bytes())
	}
	h.Reserve(0)
	h.Reserve(-1)
}
