// Package btree implements an in-memory B+Tree over []byte keys with
// []byte values, ordered lexicographically (bytes.Compare).
//
// It is the index substrate for the engines that the paper describes as
// B+Tree-based: the BlazeGraph-style triple store builds its SPO/POS/OSP
// statement indexes on it, and the Sqlg-style relational engine builds
// its primary-key and foreign-key indexes on it. The tree keeps leaves in
// a doubly-linked list so range scans (prefix scans over triples, index
// range lookups) stream in key order without re-descending.
//
// The structure deliberately pays the costs the paper attributes to the
// architecture: every insertion rebalances eagerly (node splits propagate
// up immediately), which is why the triple store's per-statement loading
// is slow unless its bulk path is used (see BulkBuild).
package btree

import (
	"bytes"
	"fmt"
)

// degree is the maximum number of children of an internal node. 32 keeps
// node scans within a cache line or two while producing realistic depth.
const degree = 32

const (
	maxKeys = degree - 1
	minKeys = maxKeys / 2
)

type leaf struct {
	keys       [][]byte
	vals       [][]byte
	next, prev *leaf
}

type inner struct {
	keys     [][]byte // len(children)-1 separators
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// Tree is a B+Tree. The zero value is not usable; call New.
type Tree struct {
	root  node
	first *leaf // leftmost leaf, head of the scan list
	size  int
	bytes int64 // space accounting: key+value payload plus node overhead
}

// New returns an empty tree.
func New() *Tree {
	l := &leaf{}
	return &Tree{root: l, first: l}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Bytes returns an approximation of the memory footprint of the tree:
// payload bytes plus per-entry and per-node overhead. It backs the space
// occupancy experiment (Figure 1).
func (t *Tree) Bytes() int64 { return t.bytes }

func (t *Tree) payload(k, v []byte) int64 { return int64(len(k)+len(v)) + 48 }

// Get returns the value stored under key, or nil and false.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	l, _ := t.findLeaf(key)
	i, ok := l.search(key)
	if !ok {
		return nil, false
	}
	return l.vals[i], true
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) bool {
	_, ok := t.Get(key)
	return ok
}

func (l *leaf) search(key []byte) (int, bool) {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(l.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l.keys) && bytes.Equal(l.keys[lo], key)
}

func (in *inner) childIndex(key []byte) int {
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(in.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends to the leaf that owns key, recording the path of
// inner nodes and child indexes for rebalancing.
func (t *Tree) findLeaf(key []byte) (*leaf, []pathElem) {
	var path []pathElem
	n := t.root
	for {
		switch x := n.(type) {
		case *leaf:
			return x, path
		case *inner:
			i := x.childIndex(key)
			path = append(path, pathElem{x, i})
			n = x.children[i]
		}
	}
}

type pathElem struct {
	n   *inner
	idx int
}

// Put inserts key→value, replacing any existing value. It returns true
// if the key was new.
func (t *Tree) Put(key, value []byte) bool {
	l, path := t.findLeaf(key)
	i, ok := l.search(key)
	if ok {
		t.bytes += int64(len(value) - len(l.vals[i]))
		l.vals[i] = value
		return false
	}
	l.keys = insertAt(l.keys, i, key)
	l.vals = insertAt(l.vals, i, value)
	t.size++
	t.bytes += t.payload(key, value)
	if len(l.keys) > maxKeys {
		t.splitLeaf(l, path)
	}
	return true
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	var zero T
	s[len(s)-1] = zero
	return s[:len(s)-1]
}

func (t *Tree) splitLeaf(l *leaf, path []pathElem) {
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([][]byte(nil), l.keys[mid:]...),
		vals: append([][]byte(nil), l.vals[mid:]...),
		next: l.next,
		prev: l,
	}
	if l.next != nil {
		l.next.prev = right
	}
	l.next = right
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	t.bytes += 96 // new node overhead
	t.insertIntoParent(path, right.keys[0], l, right)
}

func (t *Tree) insertIntoParent(path []pathElem, sep []byte, left, right node) {
	if len(path) == 0 {
		t.root = &inner{keys: [][]byte{sep}, children: []node{left, right}}
		t.bytes += 96
		return
	}
	pe := path[len(path)-1]
	p := pe.n
	p.keys = insertAt(p.keys, pe.idx, sep)
	p.children = insertAt(p.children, pe.idx+1, right)
	if len(p.children) > degree {
		t.splitInner(p, path[:len(path)-1])
	}
}

func (t *Tree) splitInner(in *inner, path []pathElem) {
	mid := len(in.keys) / 2
	sep := in.keys[mid]
	right := &inner{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	t.bytes += 96
	t.insertIntoParent(path, sep, in, right)
}

// Delete removes key. It returns true if the key was present.
//
// Rebalancing on delete uses borrowing/merging of leaves; inner nodes are
// allowed to become sparse (a common implementation simplification that
// preserves ordering invariants and amortized performance).
func (t *Tree) Delete(key []byte) bool {
	l, path := t.findLeaf(key)
	i, ok := l.search(key)
	if !ok {
		return false
	}
	t.bytes -= t.payload(key, l.vals[i])
	l.keys = removeAt(l.keys, i)
	l.vals = removeAt(l.vals, i)
	t.size--
	if len(l.keys) >= minKeys || len(path) == 0 {
		return true
	}
	t.rebalanceLeaf(l, path)
	return true
}

func (t *Tree) rebalanceLeaf(l *leaf, path []pathElem) {
	pe := path[len(path)-1]
	p, idx := pe.n, pe.idx
	// Borrow from the right sibling when possible.
	if idx+1 < len(p.children) {
		r := p.children[idx+1].(*leaf)
		if len(r.keys) > minKeys {
			l.keys = append(l.keys, r.keys[0])
			l.vals = append(l.vals, r.vals[0])
			r.keys = removeAt(r.keys, 0)
			r.vals = removeAt(r.vals, 0)
			p.keys[idx] = r.keys[0]
			return
		}
	}
	// Borrow from the left sibling.
	if idx > 0 {
		lft := p.children[idx-1].(*leaf)
		if len(lft.keys) > minKeys {
			last := len(lft.keys) - 1
			l.keys = insertAt(l.keys, 0, lft.keys[last])
			l.vals = insertAt(l.vals, 0, lft.vals[last])
			lft.keys = lft.keys[:last]
			lft.vals = lft.vals[:last]
			p.keys[idx-1] = l.keys[0]
			return
		}
	}
	// Merge with a sibling.
	if idx+1 < len(p.children) {
		r := p.children[idx+1].(*leaf)
		l.keys = append(l.keys, r.keys...)
		l.vals = append(l.vals, r.vals...)
		l.next = r.next
		if r.next != nil {
			r.next.prev = l
		}
		p.keys = removeAt(p.keys, idx)
		p.children = removeAt(p.children, idx+1)
	} else if idx > 0 {
		lft := p.children[idx-1].(*leaf)
		lft.keys = append(lft.keys, l.keys...)
		lft.vals = append(lft.vals, l.vals...)
		lft.next = l.next
		if l.next != nil {
			l.next.prev = lft
		}
		p.keys = removeAt(p.keys, idx-1)
		p.children = removeAt(p.children, idx)
	}
	t.bytes -= 96
	t.collapseRoot(path)
}

// collapseRoot shrinks the tree height when the root lost all separators.
func (t *Tree) collapseRoot(path []pathElem) {
	if r, ok := t.root.(*inner); ok && len(r.children) == 1 {
		t.root = r.children[0]
		t.bytes -= 96
	}
	_ = path
}

// Cursor iterates key/value pairs in ascending key order.
type Cursor struct {
	l *leaf
	i int
}

// Next returns the next pair, or ok=false at the end.
func (c *Cursor) Next() (key, value []byte, ok bool) {
	for c.l != nil && c.i >= len(c.l.keys) {
		c.l = c.l.next
		c.i = 0
	}
	if c.l == nil {
		return nil, nil, false
	}
	k, v := c.l.keys[c.i], c.l.vals[c.i]
	c.i++
	return k, v, true
}

// Seek positions a cursor at the first key >= start.
func (t *Tree) Seek(start []byte) *Cursor {
	l, _ := t.findLeaf(start)
	i, _ := l.search(start)
	return &Cursor{l: l, i: i}
}

// Scan positions a cursor at the smallest key.
func (t *Tree) Scan() *Cursor { return &Cursor{l: t.first} }

// AscendPrefix calls fn for every pair whose key begins with prefix,
// in key order, until fn returns false.
func (t *Tree) AscendPrefix(prefix []byte, fn func(key, value []byte) bool) {
	c := t.Seek(prefix)
	for {
		k, v, ok := c.Next()
		if !ok || !bytes.HasPrefix(k, prefix) {
			return
		}
		if !fn(k, v) {
			return
		}
	}
}

// AscendRange calls fn for every pair with start <= key < end.
func (t *Tree) AscendRange(start, end []byte, fn func(key, value []byte) bool) {
	c := t.Seek(start)
	for {
		k, v, ok := c.Next()
		if !ok || (end != nil && bytes.Compare(k, end) >= 0) {
			return
		}
		if !fn(k, v) {
			return
		}
	}
}

// BulkBuild replaces the tree contents with the given pairs, which must
// be sorted by key and free of duplicates. It builds leaves left to
// right without per-insert rebalancing — the "bulk loading" mode that
// the paper had to enable to load BlazeGraph in reasonable time.
func (t *Tree) BulkBuild(keys, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("btree: BulkBuild: %d keys but %d values", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			return fmt.Errorf("btree: BulkBuild: keys not strictly ascending at %d", i)
		}
	}
	*t = *New()
	const fill = maxKeys * 3 / 4
	var leaves []*leaf
	for i := 0; i < len(keys); i += fill {
		j := i + fill
		if j > len(keys) {
			j = len(keys)
		}
		l := &leaf{
			keys: append([][]byte(nil), keys[i:j]...),
			vals: append([][]byte(nil), vals[i:j]...),
		}
		if n := len(leaves); n > 0 {
			leaves[n-1].next = l
			l.prev = leaves[n-1]
		}
		leaves = append(leaves, l)
		t.bytes += 96
		for k := i; k < j; k++ {
			t.bytes += t.payload(keys[k], vals[k])
		}
	}
	t.size = len(keys)
	if len(leaves) == 0 {
		return nil
	}
	t.first = leaves[0]
	// Build inner levels bottom-up.
	level := make([]node, len(leaves))
	firstKeys := make([][]byte, len(leaves))
	for i, l := range leaves {
		level[i] = l
		firstKeys[i] = l.keys[0]
	}
	for len(level) > 1 {
		var up []node
		var upKeys [][]byte
		const width = degree * 3 / 4
		for i := 0; i < len(level); i += width {
			j := i + width
			if j > len(level) {
				j = len(level)
			}
			in := &inner{children: append([]node(nil), level[i:j]...)}
			for k := i + 1; k < j; k++ {
				in.keys = append(in.keys, firstKeys[k])
			}
			up = append(up, in)
			upKeys = append(upKeys, firstKeys[i])
			t.bytes += 96
		}
		level, firstKeys = up, upKeys
	}
	t.root = level[0]
	return nil
}
