package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestPutGet(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		if !tr.Put(key(i*7%1000), []byte(fmt.Sprint(i*7%1000))) {
			t.Fatalf("Put(%d) reported existing key", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(key(i))
		if !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get(key(5000)); ok {
		t.Fatalf("Get of absent key succeeded")
	}
}

func TestPutReplaces(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), []byte("v1"))
	if tr.Put([]byte("k"), []byte("v2")) {
		t.Fatalf("replacement reported as new key")
	}
	if v, _ := tr.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("value not replaced: %q", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(key(i), key(i))
	}
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	for _, i := range perm[:n/2] {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	deleted := make(map[int]bool)
	for _, i := range perm[:n/2] {
		deleted[i] = true
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(key(i))
		if ok == deleted[i] {
			t.Fatalf("Get(%d) = %v, deleted = %v", i, ok, deleted[i])
		}
	}
	if tr.Delete(key(123456)) {
		t.Fatalf("Delete of absent key reported success")
	}
}

func TestScanOrdered(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(42))
	for _, i := range rng.Perm(5000) {
		tr.Put(key(i), nil)
	}
	c := tr.Scan()
	var prev []byte
	n := 0
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order at %d", n)
		}
		prev = append(prev[:0], k...)
		n++
	}
	if n != 5000 {
		t.Fatalf("scan visited %d keys", n)
	}
}

func TestSeekAndRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key(i*2), nil) // even keys only
	}
	c := tr.Seek(key(51))
	k, _, ok := c.Next()
	if !ok || binary.BigEndian.Uint64(k) != 52 {
		t.Fatalf("Seek(51) landed on %v", k)
	}
	var got []uint64
	tr.AscendRange(key(10), key(20), func(k, _ []byte) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	want := []uint64{10, 12, 14, 16, 18}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New()
	for _, s := range []string{"ab", "abc", "abd", "ac", "b", "aa"} {
		tr.Put([]byte(s), nil)
	}
	var got []string
	tr.AscendPrefix([]byte("ab"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint([]string{"ab", "abc", "abd"}) {
		t.Fatalf("prefix scan = %v", got)
	}
	// Early stop.
	count := 0
	tr.AscendPrefix([]byte("a"), func(_, _ []byte) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBulkBuildMatchesIncremental(t *testing.T) {
	const n = 3000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i * 3)
		vals[i] = []byte(fmt.Sprint(i))
	}
	bulk := New()
	if err := bulk.BulkBuild(keys, vals); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != n {
		t.Fatalf("bulk Len = %d", bulk.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := bulk.Get(key(i * 3))
		if !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("bulk Get(%d) = %q, %v", i*3, v, ok)
		}
	}
	// Scans must be ordered and complete, and further Puts must work.
	seen := 0
	var prev []byte
	c := bulk.Scan()
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("bulk scan out of order")
		}
		prev = append(prev[:0], k...)
		seen++
	}
	if seen != n {
		t.Fatalf("bulk scan saw %d", seen)
	}
	bulk.Put(key(1), []byte("x"))
	if v, ok := bulk.Get(key(1)); !ok || string(v) != "x" {
		t.Fatalf("Put after bulk failed")
	}
}

func TestBulkBuildRejectsUnsorted(t *testing.T) {
	tr := New()
	if err := tr.BulkBuild([][]byte{key(2), key(1)}, [][]byte{nil, nil}); err == nil {
		t.Fatalf("unsorted BulkBuild accepted")
	}
	if err := tr.BulkBuild([][]byte{key(1)}, nil); err == nil {
		t.Fatalf("mismatched lengths accepted")
	}
}

func TestBytesAccounting(t *testing.T) {
	tr := New()
	if tr.Bytes() < 0 {
		t.Fatalf("negative bytes on empty tree")
	}
	for i := 0; i < 100; i++ {
		tr.Put(key(i), bytes.Repeat([]byte("x"), 100))
	}
	grown := tr.Bytes()
	if grown < 100*100 {
		t.Fatalf("Bytes = %d does not cover payload", grown)
	}
	for i := 0; i < 100; i++ {
		tr.Delete(key(i))
	}
	if tr.Bytes() >= grown {
		t.Fatalf("Bytes did not shrink after deletes: %d", tr.Bytes())
	}
}

// TestQuickAgainstMap drives random Put/Delete/Get sequences and checks
// the tree against a reference map, plus scan ordering invariants.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tr := New()
		ref := make(map[string]string)
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := string(key(int(op % 512)))
			switch rng.Intn(3) {
			case 0:
				v := fmt.Sprint(rng.Intn(1000))
				tr.Put([]byte(k), []byte(v))
				ref[k] = v
			case 1:
				delete(ref, k)
				tr.Delete([]byte(k))
			case 2:
				v, ok := tr.Get([]byte(k))
				rv, rok := ref[k]
				if ok != rok || (ok && string(v) != rv) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Full scan equals sorted reference.
		var want []string
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		c := tr.Scan()
		for _, wk := range want {
			k, v, ok := c.Next()
			if !ok || string(k) != wk || string(v) != ref[wk] {
				return false
			}
		}
		_, _, ok := c.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
