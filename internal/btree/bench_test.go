package btree

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func benchKeys(n int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, rng.Uint64())
		keys[i] = k
	}
	return keys
}

// BenchmarkPut measures the per-insert rebalancing cost that makes the
// triple store's fine-grained loading slow (Figure 3(a)).
func BenchmarkPut(b *testing.B) {
	keys := benchKeys(b.N)
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], nil)
	}
}

func BenchmarkGet(b *testing.B) {
	const n = 100_000
	keys := benchKeys(n)
	tr := New()
	for _, k := range keys {
		tr.Put(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%n])
	}
}

// BenchmarkBulkBuild measures the bulk path the paper had to enable for
// BlazeGraph, against per-insert loading of the same data.
func BenchmarkBulkBuild(b *testing.B) {
	const n = 100_000
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, uint64(i))
		keys[i] = k
	}
	vals := make([][]byte, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		if err := tr.BulkBuild(keys, vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefixScan(b *testing.B) {
	const n = 100_000
	tr := New()
	for i := 0; i < n; i++ {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, uint64(i))
		tr.Put(k, nil)
	}
	prefix := []byte{0, 0, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.AscendPrefix(prefix, func(_, _ []byte) bool {
			count++
			return count < 100
		})
	}
}
