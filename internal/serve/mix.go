package serve

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// opKind enumerates the operation classes a serving mix draws from.
// The order is part of the report schema (per_op entries appear in
// this order) and of the seeded draw (thresholds are checked in this
// order), so it must not be rearranged.
type opKind uint8

const (
	opRead opKind = iota
	opTraverse
	opInsert
	opUpdate
	nOpKinds
)

func (k opKind) String() string {
	switch k {
	case opRead:
		return "read"
	case opTraverse:
		return "traverse"
	case opInsert:
		return "insert"
	case opUpdate:
		return "update"
	}
	return "?"
}

// Mix is a workload composition in integer weights (conventionally
// percentages). Reads fetch a vertex's properties, traversals run a
// bounded BFS, inserts add a vertex wired to the loaded graph, updates
// overwrite a vertex property.
type Mix struct {
	Read     int
	Traverse int
	Insert   int
	Update   int
}

// DefaultMix is the read-mostly interactive composition gdb-serve uses
// when no -mix is given.
var DefaultMix = Mix{Read: 70, Traverse: 30}

// ParseMix parses "read=70,traverse=20,insert=5,update=5". Omitted
// kinds weigh zero; weights must be non-negative and sum to a positive
// total.
func ParseMix(s string) (Mix, error) {
	var m Mix
	fields := map[string]*int{
		"read":     &m.Read,
		"traverse": &m.Traverse,
		"insert":   &m.Insert,
		"update":   &m.Update,
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("mix term %q: want kind=weight", part)
		}
		dst, known := fields[strings.TrimSpace(k)]
		if !known {
			return Mix{}, fmt.Errorf("mix term %q: unknown kind (read, traverse, insert, update)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return Mix{}, fmt.Errorf("mix term %q: weight must be a non-negative integer", part)
		}
		*dst = n
	}
	if m.total() <= 0 {
		return Mix{}, fmt.Errorf("mix %q: weights sum to zero", s)
	}
	return m, nil
}

func (m Mix) total() int { return m.Read + m.Traverse + m.Insert + m.Update }

// Mutating reports whether the mix contains write operations — such a
// mix requires the engine to grant core.ConcurrentWriter.
func (m Mix) Mutating() bool { return m.Insert+m.Update > 0 }

// String renders the mix in canonical order with zero-weight kinds
// omitted, suitable for the report.
func (m Mix) String() string {
	type kv struct {
		k string
		v int
	}
	parts := []kv{{"read", m.Read}, {"traverse", m.Traverse}, {"insert", m.Insert}, {"update", m.Update}}
	var b strings.Builder
	for _, p := range parts {
		if p.v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", p.k, p.v)
	}
	return b.String()
}

// draw picks the next op kind from the mix, consuming one variate.
func (m Mix) draw(rng *rand.Rand) opKind {
	p := rng.Intn(m.total())
	if p -= m.Read; p < 0 {
		return opRead
	}
	if p -= m.Traverse; p < 0 {
		return opTraverse
	}
	if p -= m.Insert; p < 0 {
		return opInsert
	}
	return opUpdate
}

// op is one intended operation: a kind plus two integer parameters
// whose meaning depends on the kind (base-vertex index, BFS depth,
// property payload). Ops carry *intent*, never outcomes, so the
// operation log is identical across execution modes and interleavings.
type op struct {
	Kind opKind
	A    int64
	B    int64
}

// genOp draws one operation. nBase is the number of loaded base
// vertices parameters index into; the draw sequence per client is a
// pure function of the client's rng state.
func genOp(rng *rand.Rand, m Mix, nBase int) op {
	k := m.draw(rng)
	switch k {
	case opRead:
		return op{Kind: k, A: int64(rng.Intn(nBase))}
	case opTraverse:
		return op{Kind: k, A: int64(rng.Intn(nBase)), B: int64(1 + rng.Intn(3))}
	case opInsert:
		return op{Kind: k, A: int64(rng.Intn(nBase)), B: rng.Int63n(1 << 30)}
	default: // opUpdate
		return op{Kind: k, A: int64(rng.Intn(nBase)), B: rng.Int63n(1 << 30)}
	}
}

// clientRNG derives the per-client stream. Clients get well-separated
// seeds so neighbouring client indexes do not produce correlated
// streams under math/rand's LCG-seeded source.
func clientRNG(seed int64, client int) *rand.Rand {
	const spread = int64(-0x61c8864680b583eb) // golden-ratio multiplier, as int64
	return rand.New(rand.NewSource(seed ^ (int64(client)+1)*spread))
}

// sortOpNames returns the op kind names in schema order; kept here so
// the report builder and tests agree on the per_op ordering.
func opKinds() []opKind {
	ks := make([]opKind, 0, nOpKinds)
	for k := opKind(0); k < nOpKinds; k++ {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
