// Package hist implements an HDR-style latency histogram: log-linear
// buckets with a fixed number of linear sub-buckets per power of two,
// giving a bounded *relative* error (~1.6% with 7 sub-bucket bits) over
// the full int64 range at a few KiB of memory — the property the
// serving layer needs to report tail quantiles (p99, p999) from
// millions of samples without storing them.
//
// It also implements HdrHistogram's coordinated-omission correction:
// RecordCorrected backfills the samples a stalled closed-loop client
// failed to issue while it was stuck behind one slow operation, so the
// recorded distribution approximates what an open-loop arrival process
// would have observed.
//
// The package is self-contained and allocation-free on the record path;
// merging is element-wise addition and therefore associative and
// commutative, so per-client histograms can be combined in any order
// (deterministic reports do not depend on goroutine join order).
package hist

import "math/bits"

const (
	// subBits fixes the precision: each power-of-two range is split
	// into 2^subBits linear sub-buckets, so the worst-case relative
	// error of a representative value is 2^-(subBits-1) ≈ 1.6%.
	subBits  = 7
	subCount = 1 << subBits // values < subCount are recorded exactly
	subHalf  = subCount / 2
	// nBuckets covers the whole non-negative int64 range.
	nBuckets = 64 - subBits + 1
	nSlots   = subCount + (nBuckets-1)*subHalf
)

// Histogram counts non-negative int64 values (the serving layer uses
// nanoseconds). The zero value is not usable; construct with New. Not
// safe for concurrent use — each client owns one and they are merged
// after the run.
type Histogram struct {
	counts [nSlots]int64
	total  int64
	min    int64 // exact, valid when total > 0
	max    int64 // exact, valid when total > 0
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// slot maps a value to its bucket index. Values below subCount land in
// the exact linear region; above it, the value's top subBits bits pick
// a sub-bucket within its power-of-two range.
func slot(v int64) int {
	if v < subCount {
		return int(v)
	}
	b := bits.Len64(uint64(v)) - subBits // ≥ 1
	sub := int(v >> uint(b))             // in [subHalf, subCount)
	return subCount + (b-1)*subHalf + (sub - subHalf)
}

// valueAt returns the representative (midpoint) value of a slot.
func valueAt(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	b := (i-subCount)/subHalf + 1
	sub := int64((i-subCount)%subHalf + subHalf)
	low := sub << uint(b)
	return low + (int64(1)<<uint(b))/2
}

// Record adds one sample. Negative values are clamped to zero (a
// latency can round to a negative under a coarse clock; dropping the
// sample would bias the count).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[slot(v)]++
	h.total++
}

// RecordCorrected adds one sample plus the coordinated-omission
// backfill: when a closed-loop client intended to issue one operation
// every expectedInterval but a single operation took v ≫
// expectedInterval, the operations it would have issued meanwhile were
// never sampled. Following HdrHistogram, the missing samples are
// reconstructed at v-expectedInterval, v-2·expectedInterval, … down to
// expectedInterval — each queued arrival would have waited that much
// less. With expectedInterval ≤ 0 it degrades to Record.
func (h *Histogram) RecordCorrected(v, expectedInterval int64) {
	h.Record(v)
	if expectedInterval <= 0 {
		return
	}
	for missed := v - expectedInterval; missed >= expectedInterval; missed -= expectedInterval {
		h.Record(missed)
	}
}

// Merge adds o's samples into h. Element-wise addition: associative,
// commutative, and equivalent to having recorded all samples into one
// histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Min returns the smallest recorded sample, exactly. Zero when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, exactly. Zero when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the mean of the bucket-representative values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		if c != 0 {
			sum += float64(valueAt(i)) * float64(c)
		}
	}
	return sum / float64(h.total)
}

// Quantile returns the value at quantile q ∈ [0, 1]: the representative
// value of the bucket holding the ⌈q·count⌉-th smallest sample, clamped
// to the exact observed [Min, Max]. Zero when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	target := int64(q*float64(h.total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.total {
		target = h.total
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			v := valueAt(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
