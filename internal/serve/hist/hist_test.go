package hist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the sorted-slice reference the histogram is measured
// against: the ⌈q·n⌉-th smallest sample.
func refQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	k := int(q*float64(len(sorted)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

// distributions spanning several decades, so quantiles land in buckets
// of very different widths.
func distributions() map[string]func(*rand.Rand) int64 {
	return map[string]func(*rand.Rand) int64{
		// Uniform microsecond-scale: exercises the linear region's edge.
		"uniform-small": func(r *rand.Rand) int64 { return 1 + r.Int63n(1000) },
		// Log-uniform over nine decades: every bucket size in play.
		"log-uniform": func(r *rand.Rand) int64 {
			return int64(math.Exp(r.Float64() * math.Log(1e9)))
		},
		// Exponential with a 1ms mean: the classic latency shape.
		"exponential": func(r *rand.Rand) int64 {
			return int64(r.ExpFloat64() * 1e6)
		},
		// Bimodal: fast path plus a 100× slower tail — tail quantiles
		// must not be dragged toward the big mode.
		"bimodal": func(r *rand.Rand) int64 {
			if r.Float64() < 0.95 {
				return 10_000 + r.Int63n(5_000)
			}
			return 1_000_000 + r.Int63n(500_000)
		},
	}
}

func TestQuantileAccuracyAgainstSortedReference(t *testing.T) {
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	names := make([]string, 0)
	dists := distributions()
	for name := range dists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gen := dists[name]
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			h := New()
			samples := make([]int64, 0, 50_000)
			for i := 0; i < 50_000; i++ {
				v := gen(rng)
				h.Record(v)
				samples = append(samples, v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			if h.Count() != int64(len(samples)) {
				t.Fatalf("count = %d, want %d", h.Count(), len(samples))
			}
			if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
				t.Fatalf("min/max = %d/%d, want %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
			}
			for _, q := range quantiles {
				got := h.Quantile(q)
				want := refQuantile(samples, q)
				// Bucket-representative error bound: 2^-(subBits-1), plus
				// one ulp of slack for values in the exact region.
				tol := float64(want)/64 + 1
				if math.Abs(float64(got-want)) > tol {
					t.Errorf("q%.3f = %d, reference %d (tolerance %.0f)", q, got, want, tol)
				}
			}
		})
	}
}

func TestExactRegionIsExact(t *testing.T) {
	h := New()
	for v := int64(0); v < subCount; v++ {
		h.Record(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 1} {
		got := h.Quantile(q)
		want := refQuantile(func() []int64 {
			s := make([]int64, subCount)
			for i := range s {
				s[i] = int64(i)
			}
			return s
		}(), q)
		if got != want {
			t.Fatalf("q%.2f = %d, want exact %d", q, got, want)
		}
	}
}

// TestRecordCorrectedBackfill pins the HdrHistogram semantics: one
// stalled operation of 10 intervals yields ten samples — the stall
// itself plus nine reconstructed queued arrivals at 9, 8, …, 1
// intervals of waiting.
func TestRecordCorrectedBackfill(t *testing.T) {
	const interval = int64(1_000_000) // 1ms intended period
	h := New()
	h.RecordCorrected(10*interval, interval)
	if h.Count() != 10 {
		t.Fatalf("count = %d, want 10 backfilled samples", h.Count())
	}
	// Median of {1..10}·interval ≈ 5·interval.
	got := h.Quantile(0.5)
	want := 5 * interval
	if math.Abs(float64(got-want)) > float64(want)/32 {
		t.Fatalf("corrected p50 = %d, want ≈ %d", got, want)
	}
	// No correction requested → single sample.
	h2 := New()
	h2.RecordCorrected(10*interval, 0)
	if h2.Count() != 1 {
		t.Fatalf("uncorrected count = %d", h2.Count())
	}
}

// TestCoordinatedOmissionCorrection models the stalled client the
// correction exists for: a steady stream of fast operations with one
// long stall. Uncorrected, the stall is one sample among thousands and
// the p99 stays low — the lie coordinated omission tells. Corrected,
// the backfilled queue drags the upper quantiles toward the stall.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	const (
		interval = int64(1_000_000)     // client intends one op per ms
		fast     = int64(100_000)       // 0.1ms service time
		stall    = int64(1_000_000_000) // one 1s stall
	)
	uncorrected, corrected := New(), New()
	for i := 0; i < 2000; i++ {
		uncorrected.Record(fast)
		corrected.RecordCorrected(fast, interval)
	}
	uncorrected.Record(stall)
	corrected.RecordCorrected(stall, interval)

	if p99 := uncorrected.Quantile(0.99); p99 >= interval {
		t.Fatalf("uncorrected p99 = %d, expected the omission lie (< %d)", p99, interval)
	}
	// The stall backfills ~999 queued samples among ~3000 total, so the
	// corrected p99 lands far into the stall's queue.
	if p99 := corrected.Quantile(0.99); p99 < 100*interval {
		t.Fatalf("corrected p99 = %d, correction did not surface the stall", p99)
	}
	if corrected.Count() <= uncorrected.Count() {
		t.Fatalf("no backfill: %d vs %d", corrected.Count(), uncorrected.Count())
	}
}

// TestMergeAssociative checks (a∪b)∪c = a∪(b∪c) = one histogram fed
// everything, bucket by bucket — the property that makes per-client
// histograms mergeable in any join order.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int, scale float64) (*Histogram, []int64) {
		h := New()
		var vs []int64
		for i := 0; i < n; i++ {
			v := int64(rng.ExpFloat64() * scale)
			h.Record(v)
			vs = append(vs, v)
		}
		return h, vs
	}
	a, va := mk(1000, 1e5)
	b, vb := mk(500, 1e7)
	c, vc := mk(2000, 1e3)

	left := New()
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	right := New()
	bc := New()
	bc.Merge(b)
	bc.Merge(c)
	right.Merge(a)
	right.Merge(bc)

	direct := New()
	for _, v := range va {
		direct.Record(v)
	}
	for _, v := range vb {
		direct.Record(v)
	}
	for _, v := range vc {
		direct.Record(v)
	}

	for name, h := range map[string]*Histogram{"left": left, "right": right} {
		if h.counts != direct.counts {
			t.Fatalf("%s: merged buckets differ from direct recording", name)
		}
		if h.Count() != direct.Count() || h.Min() != direct.Min() || h.Max() != direct.Max() {
			t.Fatalf("%s: count/min/max diverged", name)
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if h.Quantile(q) != direct.Quantile(q) {
				t.Fatalf("%s: q%.3f diverged", name, q)
			}
		}
	}
	// Merging an empty histogram is the identity.
	before := left.counts
	left.Merge(New())
	if left.counts != before {
		t.Fatal("empty merge changed buckets")
	}
}

func TestSlotRoundTripBounds(t *testing.T) {
	// Every power of two and its neighbors must land in a bucket whose
	// representative is within the documented relative error.
	for shift := uint(0); shift < 62; shift++ {
		for _, d := range []int64{-1, 0, 1} {
			v := int64(1)<<shift + d
			if v < 0 {
				continue
			}
			rep := valueAt(slot(v))
			tol := v/64 + 1
			if rep < v-tol || rep > v+tol {
				t.Fatalf("value %d → representative %d (tolerance %d)", v, rep, tol)
			}
		}
	}
	if got := slot(0); got != 0 {
		t.Fatalf("slot(0) = %d", got)
	}
	if slot(math.MaxInt64) >= nSlots {
		t.Fatal("MaxInt64 overflows the bucket array")
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	h := New()
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative sample mishandled: count=%d min=%d", h.Count(), h.Min())
	}
}
