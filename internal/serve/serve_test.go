package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engines"
)

// loadedEngine builds a fresh named engine with a small seeded graph
// loaded, returning the engine and the base vertex pool.
func loadedEngine(t *testing.T, name string) (core.Engine, []core.ID) {
	t.Helper()
	e, err := engines.New(name)
	if err != nil {
		t.Fatal(err)
	}
	const nv, ne = 40, 80
	g := core.NewGraph(nv, ne)
	for i := 0; i < nv; i++ {
		g.AddVertex(core.Props{"n": core.I(int64(i))})
	}
	for i := 0; i < ne; i++ {
		g.AddEdge(i%nv, (i*7+3)%nv, "l", nil)
	}
	res, err := e.BulkLoad(g)
	if err != nil {
		t.Fatal(err)
	}
	return e, res.VertexIDs
}

// runFrozenOnce executes one frozen-clock run on a fresh engine and
// returns the op log and report bytes.
func runFrozenOnce(t *testing.T, engine string, cfg Config) (oplog, report []byte) {
	t.Helper()
	e, base := loadedEngine(t, engine)
	defer e.Close()
	var logBuf, repBuf bytes.Buffer
	cfg.Engine = e
	cfg.EngineName = engine
	cfg.Base = base
	cfg.FrozenClock = true
	cfg.OpLog = &logBuf
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Encode(&repBuf); err != nil {
		t.Fatal(err)
	}
	return logBuf.Bytes(), repBuf.Bytes()
}

// TestFrozenReplayByteIdentical is the deterministic-replay guarantee:
// same seed + mix + rate ⇒ byte-identical operation log AND report,
// run to run, on a fresh engine each time.
func TestFrozenReplayByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"closed-mixed", Config{Dataset: "tiny", Clients: 4, Ops: 200, Seed: 7,
			Mix: Mix{Read: 60, Traverse: 20, Insert: 10, Update: 10}}},
		{"open-read-only", Config{Dataset: "tiny", Clients: 3, Ops: 150, Seed: 11,
			Rate: 2e6, Mix: Mix{Read: 70, Traverse: 30}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			log1, rep1 := runFrozenOnce(t, "sqlg", tc.cfg)
			log2, rep2 := runFrozenOnce(t, "sqlg", tc.cfg)
			if !bytes.Equal(log1, log2) {
				t.Fatal("op logs differ between identical frozen runs")
			}
			if !bytes.Equal(rep1, rep2) {
				t.Fatalf("reports differ between identical frozen runs:\n%s\n---\n%s", rep1, rep2)
			}
			if len(log1) == 0 {
				t.Fatal("empty op log")
			}
			// A different seed must actually change the schedule.
			tc.cfg.Seed++
			log3, _ := runFrozenOnce(t, "sqlg", tc.cfg)
			if bytes.Equal(log1, log3) {
				t.Fatal("op log insensitive to seed")
			}
		})
	}
}

// TestFrozenReportShape sanity-checks the virtual schedule: closed-loop
// latencies are exactly the virtual service time; the op count is
// clients × ops; per_op covers exactly the mixed kinds in order.
func TestFrozenReportShape(t *testing.T) {
	e, base := loadedEngine(t, "neo-1.9")
	defer e.Close()
	rep, err := Run(Config{
		Engine: e, EngineName: "neo-1.9", Dataset: "tiny", Base: base,
		Clients: 4, Ops: 100, Seed: 3, FrozenClock: true,
		Mix: Mix{Read: 50, Traverse: 20, Insert: 20, Update: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Loop != "closed" || !rep.FrozenClock {
		t.Fatalf("header wrong: %+v", rep)
	}
	if rep.Ops != 400 {
		t.Fatalf("ops = %d, want 400", rep.Ops)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Latency.P50 != virtualServiceNS || rep.Latency.Max != virtualServiceNS {
		t.Fatalf("closed-loop virtual latency = %+v, want constant %d", rep.Latency, virtualServiceNS)
	}
	if rep.DurationNS != 100*virtualServiceNS {
		t.Fatalf("virtual duration = %d", rep.DurationNS)
	}
	var kinds []string
	var n int64
	for _, o := range rep.PerOp {
		kinds = append(kinds, o.Op)
		n += o.Count
	}
	if strings.Join(kinds, ",") != "read,traverse,insert,update" {
		t.Fatalf("per_op order = %v", kinds)
	}
	if n != rep.Ops {
		t.Fatalf("per_op counts sum to %d, total %d", n, rep.Ops)
	}
}

// TestFrozenOpenLoopShowsQueueing drives virtual arrivals faster than
// the virtual service rate: an open loop must not slow down with the
// server, so the backlog shows up as growing intended-start latency —
// the behaviour coordinated-omission-safe measurement exists to expose.
func TestFrozenOpenLoopShowsQueueing(t *testing.T) {
	e, base := loadedEngine(t, "sqlg")
	defer e.Close()
	// 2e6 ops/sec on one client = one arrival per 500ns mean, against a
	// 1000ns virtual service time: the queue grows without bound.
	rep, err := Run(Config{
		Engine: e, EngineName: "sqlg", Dataset: "tiny", Base: base,
		Clients: 1, Ops: 500, Seed: 5, Rate: 2e6, FrozenClock: true,
		Mix: Mix{Read: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loop != "open" {
		t.Fatalf("loop = %q", rep.Loop)
	}
	if rep.Latency.Max < 20*virtualServiceNS {
		t.Fatalf("max latency %d shows no queueing", rep.Latency.Max)
	}
	if rep.Latency.P99 <= rep.Latency.P50 {
		t.Fatalf("flat latency distribution under overload: %+v", rep.Latency)
	}
}

// TestMutatingMixRequiresWriteGrant pins the capability gate: sparksee
// vetoes concurrent use, so a mutating mix is refused while a read-only
// mix runs (fully serialized under the guard).
func TestMutatingMixRequiresWriteGrant(t *testing.T) {
	e, base := loadedEngine(t, "sparksee")
	defer e.Close()
	_, err := Run(Config{
		Engine: e, EngineName: "sparksee", Dataset: "tiny", Base: base,
		Clients: 2, Ops: 10, Seed: 1, FrozenClock: true,
		Mix: Mix{Read: 90, Insert: 10},
	})
	if err == nil || !strings.Contains(err.Error(), "ConcurrentWriter") {
		t.Fatalf("mutating mix on sparksee: err = %v", err)
	}
	rep, err := Run(Config{
		Engine: e, EngineName: "sparksee", Dataset: "tiny", Base: base,
		Clients: 2, Ops: 50, Seed: 1, FrozenClock: true,
		Mix: Mix{Read: 70, Traverse: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 100 || rep.Errors != 0 {
		t.Fatalf("read-only run on sparksee: %+v", rep)
	}
}

// fakeClock is a deterministic injected clock for real-mode tests:
// every read advances time by a fixed step, and sleeping advances it by
// the requested amount.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(f.step)
	return f.t
}

func (f *fakeClock) since(t0 time.Time) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(f.step)
	return f.t.Sub(t0)
}

func (f *fakeClock) sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// TestRealModeOnInjectedClock exercises the goroutine executor without
// touching the wall clock: a fixed per-client op count on a mixed
// workload, with the op log covering every issued operation.
func TestRealModeOnInjectedClock(t *testing.T) {
	e, base := loadedEngine(t, "neo-3.0")
	defer e.Close()
	fc := &fakeClock{step: time.Microsecond}
	r := &Runner{now: fc.now, since: fc.since, sleep: fc.sleep}
	var logBuf bytes.Buffer
	rep, err := r.Run(Config{
		Engine: e, EngineName: "neo-3.0", Dataset: "tiny", Base: base,
		Clients: 3, Ops: 40, Seed: 9, OpLog: &logBuf,
		Mix: Mix{Read: 50, Traverse: 20, Insert: 20, Update: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 120 || rep.FrozenClock || rep.Loop != "closed" {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Throughput <= 0 || rep.DurationNS <= 0 {
		t.Fatalf("throughput %f over %dns", rep.Throughput, rep.DurationNS)
	}
	if n := bytes.Count(logBuf.Bytes(), []byte("\n")); n != 120 {
		t.Fatalf("op log has %d lines, want 120", n)
	}
	// Engine state must reflect the inserts: base plus one vertex per
	// insert op.
	var inserts int64
	for _, o := range rep.PerOp {
		if o.Op == "insert" {
			inserts = o.Count
		}
	}
	if inserts == 0 {
		t.Fatal("mix produced no inserts")
	}
	if n, _ := e.CountVertices(); n != int64(len(base))+inserts {
		t.Fatalf("vertices = %d, want %d base + %d inserts", n, len(base), inserts)
	}
}

// TestRealModeOpenLoopOnInjectedClock checks the open-loop scheduler
// sleeps to its intended arrivals and records intended-start latencies.
func TestRealModeOpenLoopOnInjectedClock(t *testing.T) {
	e, base := loadedEngine(t, "sqlg")
	defer e.Close()
	fc := &fakeClock{step: time.Microsecond}
	r := &Runner{now: fc.now, since: fc.since, sleep: fc.sleep}
	rep, err := r.Run(Config{
		Engine: e, EngineName: "sqlg", Dataset: "tiny", Base: base,
		Clients: 2, Ops: 30, Seed: 4, Rate: 1000, // 1k ops/sec: far slower than the fake clock's service
		Mix: Mix{Read: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loop != "open" || rep.Ops != 60 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Latency.Min < 0 || rep.Latency.Max == 0 {
		t.Fatalf("latency summary: %+v", rep.Latency)
	}
}

func TestConfigValidation(t *testing.T) {
	e, base := loadedEngine(t, "sqlg")
	defer e.Close()
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no-engine", Config{Base: base, Clients: 1, Ops: 1}, "no engine"},
		{"no-base", Config{Engine: e, Clients: 1, Ops: 1}, "base"},
		{"no-clients", Config{Engine: e, Base: base, Ops: 1}, "clients"},
		{"frozen-needs-ops", Config{Engine: e, Base: base, Clients: 1, FrozenClock: true}, "op count"},
		{"no-bound", Config{Engine: e, Base: base, Clients: 1}, "-ops or -duration"},
		{"neg-rate", Config{Engine: e, Base: base, Clients: 1, Ops: 1, Rate: -1}, "rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("read=60, traverse=20,insert=15,update=5")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Read: 60, Traverse: 20, Insert: 15, Update: 5}) {
		t.Fatalf("mix = %+v", m)
	}
	if m.String() != "read=60,traverse=20,insert=15,update=5" {
		t.Fatalf("String = %q", m.String())
	}
	if !m.Mutating() {
		t.Fatal("mutating mix not detected")
	}
	ro, _ := ParseMix("read=1")
	if ro.Mutating() {
		t.Fatal("read-only mix flagged mutating")
	}
	for _, bad := range []string{"read", "read=-1", "scan=5", "read=0,traverse=0", ""} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestAllEnginesServeReadTraverse runs a short frozen-clock read+
// traverse workload on every registered configuration — the acceptance
// criterion that serving works across all seven engines (nine
// configurations), including the ConcurrentReader-vetoing one.
func TestAllEnginesServeReadTraverse(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			e, base := loadedEngine(t, name)
			defer e.Close()
			rep, err := Run(Config{
				Engine: e, EngineName: name, Dataset: "tiny", Base: base,
				Clients: 4, Ops: 50, Seed: 2, FrozenClock: true,
				Mix: Mix{Read: 70, Traverse: 30},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops != 200 || rep.Errors != 0 {
				t.Fatalf("%s: %+v", name, rep)
			}
			for _, q := range []int64{rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.P999} {
				if q <= 0 {
					t.Fatalf("%s: missing quantile in %+v", name, rep.Latency)
				}
			}
		})
	}
}

// TestMixedWorkloadOnGrantingEngines runs a mutating mix on every
// configuration that grants ConcurrentWriter — the second acceptance
// criterion — and verifies the engine absorbed the writes.
func TestMixedWorkloadOnGrantingEngines(t *testing.T) {
	for _, name := range engines.Names() {
		t.Run(name, func(t *testing.T) {
			e, base := loadedEngine(t, name)
			defer e.Close()
			if !core.Guard(e).ConcurrentWrites() {
				t.Skipf("%s does not grant ConcurrentWriter", name)
			}
			rep, err := Run(Config{
				Engine: e, EngineName: name, Dataset: "tiny", Base: base,
				Clients: 4, Ops: 60, Seed: 8, FrozenClock: true,
				Mix: Mix{Read: 40, Traverse: 20, Insert: 25, Update: 15},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops != 240 {
				t.Fatalf("%s: ops = %d", name, rep.Ops)
			}
			if rep.Errors != 0 {
				t.Fatalf("%s: %d errors", name, rep.Errors)
			}
			var inserts int64
			for _, o := range rep.PerOp {
				if o.Op == "insert" {
					inserts = o.Count
				}
			}
			if n, _ := e.CountVertices(); n != int64(len(base))+inserts {
				t.Fatalf("%s: vertices = %d, want %d+%d", name, n, len(base), inserts)
			}
		})
	}
}

// TestReportEncodeDeterministic double-encodes one report and compares
// bytes — a guard against map-backed fields sneaking into the schema.
func TestReportEncodeDeterministic(t *testing.T) {
	e, base := loadedEngine(t, "sqlg")
	defer e.Close()
	rep, err := Run(Config{
		Engine: e, EngineName: "sqlg", Dataset: "tiny", Base: base,
		Clients: 2, Ops: 20, Seed: 6, FrozenClock: true, Mix: DefaultMix,
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := rep.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("report encoding unstable")
	}
	for _, field := range []string{`"schema"`, `"throughput_ops_per_sec"`, `"p999"`, `"per_op"`} {
		if !strings.Contains(a.String(), field) {
			t.Fatalf("report missing %s:\n%s", field, a.String())
		}
	}
}

// TestGuardedConcurrentServeRace is the -race companion for real mode:
// many clients on a mutating mix against a granting engine, plus the
// vetoing engine read-only — any locking hole in the serve path or the
// guard shows up under the detector.
func TestGuardedConcurrentServeRace(t *testing.T) {
	for _, tc := range []struct {
		engine string
		mix    Mix
	}{
		{"sqlg", Mix{Read: 40, Traverse: 20, Insert: 25, Update: 15}},
		{"sparksee", Mix{Read: 70, Traverse: 30}},
	} {
		t.Run(tc.engine, func(t *testing.T) {
			e, base := loadedEngine(t, tc.engine)
			defer e.Close()
			rep, err := Run(Config{
				Engine: e, EngineName: tc.engine, Dataset: "tiny", Base: base,
				Clients: 8, Ops: 150, Seed: 13, Mix: tc.mix,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops != 8*150 {
				t.Fatalf("ops = %d", rep.Ops)
			}
			if rep.Errors != 0 {
				t.Fatalf("%d errors: %s", rep.Errors, func() string {
					var b bytes.Buffer
					rep.Encode(&b)
					return b.String()
				}())
			}
		})
	}
}
