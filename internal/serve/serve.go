// Package serve is the sustained-traffic serving mode: where the
// harness measures isolated query latencies on a quiesced engine (the
// paper's methodology), serve drives one engine+dataset with N
// concurrent clients issuing a seeded mixed workload and reports
// throughput plus latency quantiles — the contended, warm-cache regime
// a production deployment actually runs in.
//
// Two loop disciplines are supported. In the *closed* loop each client
// issues its next operation the moment the previous one completes, and
// the recorded latency is pure service time: throughput is the
// measurement, latency the side effect. In the *open* loop (-rate)
// arrivals follow a seeded Poisson process that does not slow down when
// the engine does; latency is measured from the *intended* arrival
// time, so queueing delay is included and the numbers are free of
// coordinated omission (see internal/serve/hist and METHODOLOGY.md).
//
// Engines are accessed through core.Guard, which enforces the
// documented concurrency contract (exclusive writer, shared readers;
// full serialization for ConcurrentReader-vetoing engines). Mixes
// containing writes require the engine to grant core.ConcurrentWriter.
//
// With Config.FrozenClock the run becomes a discrete-event simulation:
// no goroutines, a fixed virtual service time per operation, operations
// executed in (virtual time, client) order. Same seed, mix, and rate then yield a
// byte-identical operation log and JSON report — the property the
// deterministic-replay tests and the gdb-lint wallclock analyzer
// protect.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve/hist"
)

// Config describes one serving run. Engine and Base come from the
// caller (cmd/gdb-serve loads a dataset and passes the loaded vertex
// IDs) so the serve layer never touches dataset generation.
type Config struct {
	// Engine is the engine under test, unguarded; serve wraps it in
	// core.Guard itself.
	Engine core.Engine
	// EngineName and Dataset label the report; they do not affect
	// execution.
	EngineName string
	Dataset    string
	// Base is the pool of loaded vertex IDs operations draw targets
	// from. Must be non-empty.
	Base []core.ID
	// Clients is the number of concurrent clients (goroutines in real
	// mode, virtual clients in frozen mode). At least 1.
	Clients int
	// Ops is the per-client operation count. Required in frozen-clock
	// mode; in real mode it may be 0, in which case Duration bounds the
	// run instead.
	Ops int
	// Duration bounds a real-mode run when Ops is 0.
	Duration time.Duration
	// Rate is the total target arrival rate in ops/sec across all
	// clients. Zero selects the closed loop.
	Rate float64
	// Mix is the workload composition; zero value falls back to
	// DefaultMix.
	Mix Mix
	// Seed drives every random choice (per-client op streams and
	// arrival processes).
	Seed int64
	// FrozenClock switches to the deterministic discrete-event mode.
	FrozenClock bool
	// OpLog, when non-nil, receives the intended-operation log as JSON
	// lines sorted by (client, seq).
	OpLog io.Writer
}

// Report is the JSON result schema. Field order is fixed; all maps are
// avoided so encoding is deterministic.
type Report struct {
	Schema      string  `json:"schema"`
	Engine      string  `json:"engine"`
	Dataset     string  `json:"dataset"`
	Clients     int     `json:"clients"`
	Loop        string  `json:"loop"`
	Rate        float64 `json:"rate_ops_per_sec"`
	Mix         string  `json:"mix"`
	Seed        int64   `json:"seed"`
	FrozenClock bool    `json:"frozen_clock"`
	DurationNS  int64   `json:"duration_ns"`
	Ops         int64   `json:"ops"`
	Errors      int64   `json:"errors"`
	Throughput  float64 `json:"throughput_ops_per_sec"`
	Latency     Summary `json:"latency_ns"`
	PerOp       []OpSum `json:"per_op"`
}

// Summary is a latency digest in nanoseconds.
type Summary struct {
	Min  int64 `json:"min"`
	Mean int64 `json:"mean"`
	P50  int64 `json:"p50"`
	P95  int64 `json:"p95"`
	P99  int64 `json:"p99"`
	P999 int64 `json:"p999"`
	Max  int64 `json:"max"`
}

// OpSum is the per-operation-kind slice of the report, in fixed kind
// order (read, traverse, insert, update); zero-count kinds are omitted.
type OpSum struct {
	Op     string `json:"op"`
	Count  int64  `json:"count"`
	Errors int64  `json:"errors"`
	Summary
}

// Schema is the report schema identifier.
const Schema = "gdb-serve/v1"

// Runner executes serving runs. The clock functions are injectable for
// tests; production construction via NewRunner uses the wall clock (the
// only wall-clock reads in the package, see the gdb-allow directives).
type Runner struct {
	now   func() time.Time
	since func(time.Time) time.Duration
	sleep func(time.Duration)
}

// NewRunner returns a Runner on the real clock.
func NewRunner() *Runner {
	return &Runner{
		now:   time.Now,   //lint:gdb-allow wallclock this IS the injectable clock's production default
		since: time.Since, //lint:gdb-allow wallclock this IS the injectable clock's production default
		sleep: time.Sleep,
	}
}

// client is one load-generating client's accumulated state.
type client struct {
	id   int
	ops  []op // issued ops in sequence order, for the op log
	lat  *hist.Histogram
	kind [nOpKinds]*hist.Histogram
	errs [nOpKinds]int64
	last int64 // last virtual completion (frozen mode)
}

func newClient(id int) *client {
	c := &client{id: id, lat: hist.New()}
	for k := range c.kind {
		c.kind[k] = hist.New()
	}
	return c
}

func (c *client) record(k opKind, latency int64, err error) {
	c.lat.Record(latency)
	c.kind[k].Record(latency)
	if err != nil {
		c.errs[k]++
	}
}

// Run validates the config and executes the run.
func (r *Runner) Run(cfg Config) (*Report, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: no engine")
	}
	if len(cfg.Base) == 0 {
		return nil, fmt.Errorf("serve: empty base vertex pool (load a dataset first)")
	}
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("serve: clients = %d, want ≥ 1", cfg.Clients)
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix
	}
	if cfg.FrozenClock && cfg.Ops <= 0 {
		return nil, fmt.Errorf("serve: frozen-clock mode needs a per-client op count (duration has no meaning in virtual time)")
	}
	if !cfg.FrozenClock && cfg.Ops <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("serve: need -ops or -duration")
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("serve: negative rate")
	}
	g := core.Guard(cfg.Engine)
	if cfg.Mix.Mutating() && !g.ConcurrentWrites() {
		return nil, fmt.Errorf("serve: mix %q mutates but engine %s does not grant ConcurrentWriter; use a read-only mix (e.g. read=70,traverse=30)",
			cfg.Mix, cfg.EngineName)
	}

	var clients []*client
	var durationNS int64
	if cfg.FrozenClock {
		clients, durationNS = r.runFrozen(cfg, g)
	} else {
		clients, durationNS = r.runReal(cfg, g)
	}

	if cfg.OpLog != nil {
		if err := writeOpLog(cfg.OpLog, clients); err != nil {
			return nil, fmt.Errorf("serve: op log: %w", err)
		}
	}
	return buildReport(cfg, clients, durationNS), nil
}

// Run executes one serving run on the real clock.
func Run(cfg Config) (*Report, error) { return NewRunner().Run(cfg) }

// interArrival draws the next exponential inter-arrival gap in
// nanoseconds for a per-client rate (total rate split evenly), never
// rounding to zero.
func interArrival(rng *rand.Rand, perClientRate float64) int64 {
	dt := int64(rng.ExpFloat64() * 1e9 / perClientRate)
	if dt < 1 {
		dt = 1
	}
	return dt
}

// --- real mode: goroutines on the injected clock ---

func (r *Runner) runReal(cfg Config, g *core.GuardedEngine) ([]*client, int64) {
	clients := make([]*client, cfg.Clients)
	for i := range clients {
		clients[i] = newClient(i)
	}
	perClientRate := 0.0
	if cfg.Rate > 0 {
		perClientRate = cfg.Rate / float64(cfg.Clients)
	}
	start := r.now()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			rng := clientRNG(cfg.Seed, c.id)
			var offset int64 // intended start offset in ns (open loop)
			for seq := 0; ; seq++ {
				if cfg.Ops > 0 && seq >= cfg.Ops {
					return
				}
				if cfg.Duration > 0 && r.since(start) >= cfg.Duration {
					return
				}
				var intended time.Time
				if perClientRate > 0 {
					// Open loop: the arrival process does not wait for the
					// engine. Sleep only if ahead of schedule; if behind,
					// issue immediately and let the intended-start latency
					// absorb the queueing delay (coordinated-omission-safe).
					offset += interArrival(rng, perClientRate)
					intended = start.Add(time.Duration(offset))
					if ahead := intended.Sub(r.now()); ahead > 0 {
						r.sleep(ahead)
					}
				}
				o := genOp(rng, cfg.Mix, len(cfg.Base))
				c.ops = append(c.ops, o)
				var t0 time.Time
				if perClientRate == 0 {
					t0 = r.now()
				}
				err := executeOp(g, cfg.Base, o)
				var lat int64
				if perClientRate > 0 {
					lat = int64(r.since(intended))
				} else {
					lat = int64(r.since(t0))
				}
				c.record(o.Kind, lat, err)
			}
		}(c)
	}
	wg.Wait()
	return clients, int64(r.since(start))
}

// --- frozen mode: discrete-event simulation in virtual time ---

// vevent is one scheduled operation in the virtual timeline.
type vevent struct {
	intended int64
	client   int
	seq      int
	o        op
}

// virtualServiceNS is the fixed virtual service time in frozen-clock
// mode: long enough that an open-loop arrival process can outrun the
// server and show queueing, short enough that closed-loop runs stay
// readable. Virtual latencies measure the *simulated schedule*, not
// the engine; the mode exists for byte-identical replay, not for
// performance numbers.
const virtualServiceNS = 1000

func (r *Runner) runFrozen(cfg Config, g *core.GuardedEngine) ([]*client, int64) {
	clients := make([]*client, cfg.Clients)
	perClientRate := 0.0
	if cfg.Rate > 0 {
		perClientRate = cfg.Rate / float64(cfg.Clients)
	}
	var events []vevent
	var maxCompletion int64
	for i := range clients {
		c := newClient(i)
		clients[i] = c
		rng := clientRNG(cfg.Seed, c.id)
		var intended, completion int64
		for seq := 0; seq < cfg.Ops; seq++ {
			if perClientRate > 0 {
				// Open loop: Poisson arrivals; an op takes the fixed
				// virtual service time, and it cannot start before the
				// previous one finished — queueing shows up as latency,
				// exactly as on the real clock.
				intended += interArrival(rng, perClientRate)
				start := intended
				if completion > start {
					start = completion
				}
				completion = start + virtualServiceNS
			} else {
				// Closed loop: next op starts at the previous completion.
				intended = completion
				completion = intended + virtualServiceNS
			}
			o := genOp(rng, cfg.Mix, len(cfg.Base))
			c.ops = append(c.ops, o)
			c.record(o.Kind, completion-intended, nil)
			events = append(events, vevent{intended: intended, client: c.id, seq: seq, o: o})
		}
		if completion > maxCompletion {
			maxCompletion = completion
		}
	}
	// Execute in global virtual order so engine state evolves the same
	// way on every run: by intended time, then client, then sequence.
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.intended != b.intended {
			return a.intended < b.intended
		}
		if a.client != b.client {
			return a.client < b.client
		}
		return a.seq < b.seq
	})
	for _, ev := range events {
		if err := executeOp(g, cfg.Base, ev.o); err != nil {
			clients[ev.client].errs[ev.o.Kind]++
		}
	}
	return clients, maxCompletion
}

// --- operation execution ---

// traverseCap bounds BFS materialization so one traversal cannot
// dominate a mixed schedule.
const traverseCap = 256

func executeOp(g core.Engine, base []core.ID, o op) error {
	switch o.Kind {
	case opRead:
		id := base[o.A]
		if !g.HasVertex(id) {
			return core.ErrNotFound
		}
		_, err := g.VertexProps(id)
		return err
	case opTraverse:
		frontier := []core.ID{base[o.A]}
		seen := map[core.ID]bool{base[o.A]: true}
		for d := int64(0); d < o.B && len(frontier) > 0 && len(seen) < traverseCap; d++ {
			var next []core.ID
			for _, v := range frontier {
				it := g.Neighbors(v, core.DirBoth)
				for id, ok := it(); ok; id, ok = it() {
					if !seen[id] {
						seen[id] = true
						next = append(next, id)
						if len(seen) >= traverseCap {
							break
						}
					}
				}
			}
			frontier = next
		}
		return nil
	case opInsert:
		v, err := g.AddVertex(core.Props{"serve_p": core.I(o.B)})
		if err != nil {
			return err
		}
		_, err = g.AddEdge(base[o.A], v, "serve", nil)
		return err
	case opUpdate:
		return g.SetVertexProp(base[o.A], "serve_u", core.I(o.B))
	}
	return fmt.Errorf("unknown op kind %d", o.Kind)
}

// --- op log and report ---

// opLogEntry is one line of the intended-operation log. Intent only —
// no outcomes, no timestamps — so the log is identical across
// execution modes and goroutine interleavings for a fixed op count.
type opLogEntry struct {
	Client int    `json:"client"`
	Seq    int    `json:"seq"`
	Op     string `json:"op"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

func writeOpLog(w io.Writer, clients []*client) error {
	enc := json.NewEncoder(w)
	for _, c := range clients {
		for seq, o := range c.ops {
			if err := enc.Encode(opLogEntry{Client: c.id, Seq: seq, Op: o.Kind.String(), A: o.A, B: o.B}); err != nil {
				return err
			}
		}
	}
	return nil
}

func summarize(h *hist.Histogram) Summary {
	return Summary{
		Min:  h.Min(),
		Mean: int64(h.Mean()),
		P50:  h.Quantile(0.50),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
		Max:  h.Max(),
	}
}

func buildReport(cfg Config, clients []*client, durationNS int64) *Report {
	total := hist.New()
	perKind := make([]*hist.Histogram, nOpKinds)
	for k := range perKind {
		perKind[k] = hist.New()
	}
	var errs int64
	var kindErrs [nOpKinds]int64
	for _, c := range clients {
		total.Merge(c.lat)
		for k := range c.kind {
			perKind[k].Merge(c.kind[k])
			kindErrs[k] += c.errs[k]
			errs += c.errs[k]
		}
	}
	loop := "closed"
	if cfg.Rate > 0 {
		loop = "open"
	}
	rep := &Report{
		Schema:      Schema,
		Engine:      cfg.EngineName,
		Dataset:     cfg.Dataset,
		Clients:     cfg.Clients,
		Loop:        loop,
		Rate:        cfg.Rate,
		Mix:         cfg.Mix.String(),
		Seed:        cfg.Seed,
		FrozenClock: cfg.FrozenClock,
		DurationNS:  durationNS,
		Ops:         total.Count(),
		Errors:      errs,
		Latency:     summarize(total),
	}
	if durationNS > 0 {
		rep.Throughput = float64(rep.Ops) / (float64(durationNS) / 1e9)
	}
	for _, k := range opKinds() {
		h := perKind[k]
		if h.Count() == 0 && kindErrs[k] == 0 {
			continue
		}
		rep.PerOp = append(rep.PerOp, OpSum{
			Op:      k.String(),
			Count:   h.Count(),
			Errors:  kindErrs[k],
			Summary: summarize(h),
		})
	}
	return rep
}

// Encode renders the report as indented JSON with a trailing newline —
// the exact bytes gdb-serve emits and the replay tests compare.
func (r *Report) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
