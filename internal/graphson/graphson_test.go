package graphson

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

const sample = `{
  "mode": "NORMAL",
  "vertices": [
    {"_id": "a", "_type": "vertex", "name": "ann", "age": 31},
    {"_id": "b", "_type": "vertex", "name": "bob", "score": 1.5, "active": true},
    {"_id": 3,   "_type": "vertex"}
  ],
  "edges": [
    {"_id": 0, "_type": "edge", "_outV": "a", "_inV": "b", "_label": "knows", "since": 2010},
    {"_id": 1, "_type": "edge", "_outV": "b", "_inV": 3, "_label": "likes"}
  ]
}`

func TestReadSample(t *testing.T) {
	g, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.VProps[0]["name"] != core.S("ann") || g.VProps[0]["age"] != core.I(31) {
		t.Fatalf("vertex 0 props = %v", g.VProps[0])
	}
	if g.VProps[1]["score"] != core.F(1.5) || g.VProps[1]["active"] != core.B(true) {
		t.Fatalf("vertex 1 props = %v", g.VProps[1])
	}
	if g.VProps[2] != nil {
		t.Fatalf("vertex 2 should have nil props: %v", g.VProps[2])
	}
	e := g.EdgeL[0]
	if e.Src != 0 || e.Dst != 1 || e.Label != "knows" || e.Props["since"] != core.I(2010) {
		t.Fatalf("edge 0 = %+v", e)
	}
	if g.EdgeL[1].Props != nil {
		t.Fatalf("edge 1 should have nil props")
	}
}

func TestReadEdgesBeforeVertices(t *testing.T) {
	doc := `{"edges":[{"_outV":1,"_inV":2,"_label":"x"}],
	         "vertices":[{"_id":1},{"_id":2}]}`
	g, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.EdgeL[0].Src != 0 || g.EdgeL[0].Dst != 1 {
		t.Fatalf("graph = %+v", g)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"not an object":     `[1,2]`,
		"vertex without id": `{"vertices":[{"name":"x"}]}`,
		"dangling outV":     `{"vertices":[{"_id":1}],"edges":[{"_outV":9,"_inV":1}]}`,
		"dangling inV":      `{"vertices":[{"_id":1}],"edges":[{"_outV":1,"_inV":9}]}`,
		"duplicate id":      `{"vertices":[{"_id":1},{"_id":1}]}`,
		"truncated":         `{"vertices":[{"_id":1}`,
		"array prop":        `{"vertices":[{"_id":1,"bad":[1,2]}]}`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestNumbersIntVsFloat(t *testing.T) {
	doc := `{"vertices":[{"_id":1,"i":42,"f":4.5,"e":1e3,"big":9007199254740993}]}`
	g, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	p := g.VProps[0]
	if p["i"].Kind() != core.KindInt {
		t.Errorf("42 parsed as %v", p["i"].Kind())
	}
	if p["f"].Kind() != core.KindFloat || p["e"].Kind() != core.KindFloat {
		t.Errorf("floats parsed as %v/%v", p["f"].Kind(), p["e"].Kind())
	}
	if p["big"].Kind() != core.KindInt || p["big"].Int() != 9007199254740993 {
		t.Errorf("large int lost precision: %v", p["big"])
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := core.NewGraph(3, 2)
	g.AddVertex(core.Props{"name": core.S("ann"), "age": core.I(30)})
	g.AddVertex(core.Props{"f": core.F(2.5)})
	g.AddVertex(nil)
	g.AddEdge(0, 1, "knows", core.Props{"w": core.I(1)})
	g.AddEdge(2, 0, "likes", nil)

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 3 || g2.NumEdges() != 2 {
		t.Fatalf("round trip sizes: %d, %d", g2.NumVertices(), g2.NumEdges())
	}
	if g2.VProps[0]["name"] != core.S("ann") || g2.VProps[0]["age"] != core.I(30) {
		t.Fatalf("vertex 0 = %v", g2.VProps[0])
	}
	if g2.EdgeL[0].Label != "knows" || g2.EdgeL[0].Props["w"] != core.I(1) {
		t.Fatalf("edge 0 = %+v", g2.EdgeL[0])
	}
	if g2.EdgeL[1].Src != 2 || g2.EdgeL[1].Dst != 0 {
		t.Fatalf("edge 1 endpoints = %d,%d", g2.EdgeL[1].Src, g2.EdgeL[1].Dst)
	}
}

// TestQuickRoundTrip generates random graphs and checks Write∘Read
// preserves structure and properties.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 1 + rng.Intn(30)
		ne := rng.Intn(60)
		g := core.NewGraph(nv, ne)
		for i := 0; i < nv; i++ {
			var p core.Props
			if rng.Intn(2) == 0 {
				p = core.Props{"n": core.I(int64(rng.Intn(100)))}
			}
			g.AddVertex(p)
		}
		for i := 0; i < ne; i++ {
			g.AddEdge(rng.Intn(nv), rng.Intn(nv), "l"+string(rune('a'+rng.Intn(3))), nil)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		g2, err := Read(&buf)
		if err != nil || g2.NumVertices() != nv || g2.NumEdges() != ne {
			return false
		}
		for i := range g.EdgeL {
			if g.EdgeL[i].Src != g2.EdgeL[i].Src || g.EdgeL[i].Dst != g2.EdgeL[i].Dst ||
				g.EdgeL[i].Label != g2.EdgeL[i].Label {
				return false
			}
		}
		for i := range g.VProps {
			if len(g.VProps[i]) > 0 && g2.VProps[i]["n"] != g.VProps[i]["n"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
