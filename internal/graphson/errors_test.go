package graphson

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// failAfter is a writer that errors once n bytes have been written.
type failAfter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (f *failAfter) Write(p []byte) (int, error) {
	f.written += len(p)
	if f.written > f.n {
		return 0, errDiskFull
	}
	return len(p), nil
}

func TestWritePropagatesWriterErrors(t *testing.T) {
	g := core.NewGraph(100, 100)
	for i := 0; i < 100; i++ {
		g.AddVertex(core.Props{"name": core.S("some vertex name")})
	}
	for i := 0; i < 100; i++ {
		g.AddEdge(i, (i+1)%100, "l", nil)
	}
	for _, limit := range []int{0, 10, 500, 5000} {
		if err := Write(&failAfter{n: limit}, g); !errors.Is(err, errDiskFull) {
			t.Errorf("limit %d: err = %v, want disk full", limit, err)
		}
	}
}

func TestReadToleratesUnknownTopLevelFields(t *testing.T) {
	doc := `{"mode":"NORMAL","generator":{"tool":"x","nested":[1,2]},
	         "vertices":[{"_id":1}],"edges":[],"trailing":42}`
	g, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatalf("graph = %d/%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadBoolAndMixedIDKinds(t *testing.T) {
	// Scalar ids of different JSON types must not collide ("1" vs 1).
	doc := `{"vertices":[{"_id":"1"},{"_id":1},{"_id":true}],
	         "edges":[{"_outV":"1","_inV":1,"_label":"x"},
	                  {"_outV":true,"_inV":"1","_label":"y"}]}`
	g, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("graph = %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.EdgeL[0].Src == g.EdgeL[0].Dst {
		t.Fatal(`"1" and 1 collided`)
	}
}

func TestReadRejectsCompositeIDs(t *testing.T) {
	doc := `{"vertices":[{"_id":{"compound":1}}]}`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Fatal("object id accepted")
	}
	doc = `{"vertices":[{"_id":1}],"edges":[{"_outV":[1],"_inV":1}]}`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Fatal("array endpoint accepted")
	}
}

func TestReadEdgeWithoutLabel(t *testing.T) {
	doc := `{"vertices":[{"_id":1},{"_id":2}],"edges":[{"_outV":1,"_inV":2}]}`
	g, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeL[0].Label != "" {
		t.Fatalf("label = %q", g.EdgeL[0].Label)
	}
}

func TestReadVerticesNotArray(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"vertices":{"a":1}}`)); err == nil {
		t.Fatal("object vertices accepted")
	}
	if _, err := Read(strings.NewReader(``)); err == nil {
		t.Fatal("empty document accepted")
	}
}

func TestNullPropertyValue(t *testing.T) {
	g, err := Read(strings.NewReader(`{"vertices":[{"_id":1,"p":null}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := g.VProps[0]["p"]; !ok || !v.IsNil() {
		t.Fatalf("null property = %v, %v", v, ok)
	}
}
