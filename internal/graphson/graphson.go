// Package graphson reads and writes the GraphSON 1.0 ("plain JSON")
// graph interchange format used by the paper's suite as the common input
// for every engine:
//
//	{
//	  "mode": "NORMAL",
//	  "vertices": [ {"_id": 1, "_type": "vertex", "name": "marko"}, ... ],
//	  "edges":    [ {"_id": 7, "_type": "edge", "_outV": 1, "_inV": 2,
//	                 "_label": "knows", "weight": 0.5}, ... ]
//	}
//
// The reader streams: vertices and edges are decoded one element at a
// time, so datasets larger than memory headroom still load (loading the
// biggest sample is itself one of the paper's experiments).
package graphson

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
)

// Reserved GraphSON field names.
const (
	fieldID    = "_id"
	fieldType  = "_type"
	fieldOutV  = "_outV"
	fieldInV   = "_inV"
	fieldLabel = "_label"
)

// Read parses a GraphSON document into a dataset graph. Vertex _id
// values may be any JSON scalar; they are mapped to dense indexes in
// encounter order. Edges may precede vertices in the document.
func Read(r io.Reader) (*core.Graph, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()

	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("graphson: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("graphson: document must be a JSON object, got %v", tok)
	}

	g := core.NewGraph(0, 0)
	vids := make(map[string]int)
	type pendingEdge struct {
		out, in string
		label   string
		props   core.Props
	}
	var pending []pendingEdge

	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("graphson: %w", err)
		}
		key, _ := keyTok.(string)
		switch key {
		case "vertices":
			if err := eachElement(dec, func(obj map[string]any) error {
				id, props, err := splitVertex(obj)
				if err != nil {
					return err
				}
				if _, dup := vids[id]; dup {
					return fmt.Errorf("duplicate vertex _id %q", id)
				}
				vids[id] = g.AddVertex(props)
				return nil
			}); err != nil {
				return nil, fmt.Errorf("graphson: vertices: %w", err)
			}
		case "edges":
			if err := eachElement(dec, func(obj map[string]any) error {
				e, err := splitEdge(obj)
				if err != nil {
					return err
				}
				pending = append(pending, pendingEdge{e.out, e.in, e.label, e.props})
				return nil
			}); err != nil {
				return nil, fmt.Errorf("graphson: edges: %w", err)
			}
		default:
			// "mode" and any unknown top-level fields: skip the value.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, fmt.Errorf("graphson: skipping %q: %w", key, err)
			}
		}
	}
	for _, e := range pending {
		src, ok := vids[e.out]
		if !ok {
			return nil, fmt.Errorf("graphson: edge references unknown _outV %q", e.out)
		}
		dst, ok := vids[e.in]
		if !ok {
			return nil, fmt.Errorf("graphson: edge references unknown _inV %q", e.in)
		}
		g.AddEdge(src, dst, e.label, e.props)
	}
	return g, nil
}

type edgeParts struct {
	out, in, label string
	props          core.Props
}

func eachElement(dec *json.Decoder, fn func(map[string]any) error) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("expected array, got %v", tok)
	}
	for dec.More() {
		var obj map[string]any
		if err := dec.Decode(&obj); err != nil {
			return err
		}
		if err := fn(obj); err != nil {
			return err
		}
	}
	_, err = dec.Token() // closing ']'
	return err
}

func scalarKey(v any) (string, error) {
	switch x := v.(type) {
	case string:
		return "s" + x, nil
	case json.Number:
		return "n" + x.String(), nil
	case bool:
		return fmt.Sprintf("b%v", x), nil
	default:
		return "", fmt.Errorf("unsupported id type %T", v)
	}
}

func splitVertex(obj map[string]any) (id string, props core.Props, err error) {
	raw, ok := obj[fieldID]
	if !ok {
		return "", nil, fmt.Errorf("vertex missing %s", fieldID)
	}
	id, err = scalarKey(raw)
	if err != nil {
		return "", nil, err
	}
	props = core.Props{}
	for k, v := range obj {
		if k == fieldID || k == fieldType {
			continue
		}
		val, err := toValue(v)
		if err != nil {
			return "", nil, fmt.Errorf("vertex %s property %q: %w", id, k, err)
		}
		props[k] = val
	}
	if len(props) == 0 {
		props = nil
	}
	return id, props, nil
}

func splitEdge(obj map[string]any) (edgeParts, error) {
	var e edgeParts
	rawOut, ok := obj[fieldOutV]
	if !ok {
		return e, fmt.Errorf("edge missing %s", fieldOutV)
	}
	rawIn, ok := obj[fieldInV]
	if !ok {
		return e, fmt.Errorf("edge missing %s", fieldInV)
	}
	var err error
	if e.out, err = scalarKey(rawOut); err != nil {
		return e, err
	}
	if e.in, err = scalarKey(rawIn); err != nil {
		return e, err
	}
	if l, ok := obj[fieldLabel].(string); ok {
		e.label = l
	}
	e.props = core.Props{}
	for k, v := range obj {
		switch k {
		case fieldID, fieldType, fieldOutV, fieldInV, fieldLabel:
			continue
		}
		val, err := toValue(v)
		if err != nil {
			return e, fmt.Errorf("edge property %q: %w", k, err)
		}
		e.props[k] = val
	}
	if len(e.props) == 0 {
		e.props = nil
	}
	return e, nil
}

func toValue(v any) (core.Value, error) {
	switch x := v.(type) {
	case string:
		return core.S(x), nil
	case bool:
		return core.B(x), nil
	case nil:
		return core.Nil, nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return core.I(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return core.Nil, err
		}
		return core.F(f), nil
	default:
		return core.Nil, fmt.Errorf("unsupported property type %T", v)
	}
}

// Write serializes a dataset graph as GraphSON 1.0. Vertex _id values
// are the dense indexes, so Write∘Read is identity on structure.
func Write(w io.Writer, g *core.Graph) error {
	bw := &errWriter{w: w}
	bw.str(`{"mode":"NORMAL","vertices":[`)
	for i := 0; i < g.NumVertices(); i++ {
		if i > 0 {
			bw.str(",")
		}
		bw.obj(func(m map[string]any) {
			m[fieldID] = i
			m[fieldType] = "vertex"
			addProps(m, g.VProps[i])
		})
	}
	bw.str(`],"edges":[`)
	for i := range g.EdgeL {
		if i > 0 {
			bw.str(",")
		}
		e := &g.EdgeL[i]
		bw.obj(func(m map[string]any) {
			m[fieldID] = i
			m[fieldType] = "edge"
			m[fieldOutV] = e.Src
			m[fieldInV] = e.Dst
			m[fieldLabel] = e.Label
			addProps(m, e.Props)
		})
	}
	bw.str("]}\n")
	return bw.err
}

func addProps(m map[string]any, p core.Props) {
	for k, v := range p {
		switch v.Kind() {
		case core.KindString:
			m[k] = v.Str()
		case core.KindInt:
			m[k] = v.Int()
		case core.KindFloat:
			m[k] = v.Float()
		case core.KindBool:
			m[k] = v.Bool()
		case core.KindNil:
			m[k] = nil
		}
	}
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

func (e *errWriter) obj(fill func(map[string]any)) {
	if e.err != nil {
		return
	}
	m := make(map[string]any)
	fill(m)
	b, err := json.Marshal(m)
	if err != nil {
		e.err = err
		return
	}
	_, e.err = e.w.Write(b)
}
