// Package remote is the wire transport that lets the evaluation grid
// span machines: a scheduler (gdb-bench -remote) dials one or more
// workers (cmd/gdb-worker), and every connection serves grid cells —
// request in, measurements out — over a small length-prefixed JSON
// protocol.
//
// The protocol is deliberately minimal:
//
//   - Frames are a 4-byte big-endian length followed by one JSON
//     object with a "type" tag.
//   - The first exchange is a handshake: the scheduler sends a Hello
//     carrying the protocol version, a catalog fingerprint (the
//     worker must have byte-identical engine and dataset catalogs, or
//     its measurements would silently diverge) and the run
//     configuration; the worker answers with a Welcome that either
//     rejects the session or advertises its slot capacity and
//     heartbeat interval.
//   - After the handshake the scheduler sends CellSpec requests — one
//     per slot may be in flight, multiplexed by plan index — and the
//     worker answers each with a CellDone carrying the cell's
//     measurements (or an error the scheduler treats as "run this
//     cell somewhere else").
//   - While a connection is open the worker emits heartbeat frames
//     every Welcome.HeartbeatNS; a scheduler that sees no frame for
//     several intervals declares the worker dead and reassigns its
//     in-flight cells. This is what distinguishes a long-running cell
//     (heartbeats keep arriving) from a crashed or partitioned worker
//     (they stop).
//   - A draining worker (SIGTERM) finishes its in-flight cells,
//     answers new requests with an error, and closes.
//   - The worker may ask the scheduler for a dataset artifact it is
//     missing (an ArtifactRequest frame, content-addressed by snapshot
//     fingerprint); the scheduler answers with a sequence of
//     CRC-carrying ArtifactChunk frames on the same connection. This
//     is how a cold worker fleet seeds its dataset cache from one warm
//     scheduler instead of regenerating every graph locally.
//
// The package is transport only: cell payloads are opaque
// json.RawMessage values and artifact bytes are an opaque stream, so
// it has no dependency on the harness and the harness stays free to
// evolve its record and snapshot shapes.
package remote

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// ProtocolVersion guards the wire format; both sides must agree
// exactly. Bump it whenever a frame or message shape changes.
// Version 2 added the artifact request/chunk frames.
const ProtocolVersion = 2

// MaxFrame bounds a single frame body (a cell result carrying every
// measurement of a micro cell is a few hundred KB at paper scale; the
// bound exists so a corrupt length prefix cannot demand gigabytes).
const MaxFrame = 64 << 20

// DefaultHeartbeat is the worker's liveness interval when the server
// does not configure one.
const DefaultHeartbeat = 2 * time.Second

// handshakeTimeout bounds the hello/welcome exchange and the initial
// TCP dial; after the handshake, liveness is heartbeat-driven.
const handshakeTimeout = 10 * time.Second

// Frame type tags.
const (
	typeHello         = "hello"
	typeWelcome       = "welcome"
	typeCell          = "cell"
	typeDone          = "done"
	typeHeartbeat     = "heartbeat"
	typeArtifactReq   = "artifact_request"
	typeArtifactChunk = "artifact_chunk"
)

// artifactChunkSize bounds the artifact bytes carried by one chunk
// frame: large enough that a transfer is not dominated by framing,
// small enough that chunks interleave with heartbeats and cell results
// on the shared connection (and stay far below MaxFrame even after
// JSON base64 expansion).
const artifactChunkSize = 1 << 20

// artifactCRC is the chunk checksum polynomial — Castagnoli, the same
// the dataset snapshot format uses for its payload, so a transfer's
// integrity checks compose with the artifact's own.
var artifactCRC = crc32.MakeTable(crc32.Castagnoli)

// Hello is the scheduler's half of the handshake.
type Hello struct {
	// Proto is the scheduler's ProtocolVersion; Dial fills it in.
	Proto int `json:"proto"`
	// Catalog fingerprints the engine and dataset catalogs (plus
	// result-format versions) the scheduler was built with. The worker
	// rejects the session unless its own fingerprint is identical:
	// measurements from mismatched builds must never mix.
	Catalog string `json:"catalog"`
	// Config is the run configuration the worker needs to reproduce
	// the scheduler's grid plan — opaque to the transport.
	Config json.RawMessage `json:"config"`
}

// Welcome is the worker's half of the handshake.
type Welcome struct {
	// OK reports whether the session was accepted; when false, Error
	// says why and the connection closes.
	OK bool `json:"ok"`
	// Capacity is how many cells the worker is willing to execute
	// concurrently on this connection; the scheduler runs one dispatch
	// slot per unit.
	Capacity int `json:"capacity,omitempty"`
	// HeartbeatNS is the interval at which the worker will emit
	// heartbeat frames; the scheduler sizes its read deadline from it.
	HeartbeatNS int64 `json:"heartbeat_ns,omitempty"`
	// Error is the rejection reason when OK is false.
	Error string `json:"error,omitempty"`
}

// CellSpec asks the worker to execute one grid cell. Index is the
// deterministic plan index (also the multiplexing key); Kind, Engine
// and Dataset restate the cell so the worker can verify its own plan
// agrees before running anything.
type CellSpec struct {
	Index   int    `json:"index"`
	Kind    string `json:"kind"`
	Engine  string `json:"engine"`
	Dataset string `json:"dataset"`
}

// CellDone answers one CellSpec. Result carries the cell's
// measurements (opaque to the transport) unless Error is set, in
// which case the scheduler reassigns the cell.
type CellDone struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// ArtifactRequest asks the scheduler for one dataset artifact. It
// flows worker → scheduler: the worker is missing the artifact and the
// scheduler is the one place guaranteed to be able to produce it. ID
// multiplexes concurrent fetches on one connection; Fingerprint is the
// hex content address (the dataset snapshot fingerprint), which the
// requester re-verifies against the received artifact's own embedded
// fingerprint — the transport never has to be trusted.
type ArtifactRequest struct {
	ID          uint64 `json:"id"`
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
}

// ArtifactChunk carries one slice of a requested artifact, scheduler →
// worker. Data chunks arrive in Seq order, each carrying the CRC-32C
// of its Data; the transfer ends with an empty Last chunk, or with an
// Error chunk when the scheduler cannot (or will not) serve the
// artifact — the worker then falls back to local generation.
type ArtifactChunk struct {
	ID    uint64 `json:"id"`
	Seq   int    `json:"seq"`
	Data  []byte `json:"data,omitempty"`
	CRC   uint32 `json:"crc,omitempty"`
	Last  bool   `json:"last,omitempty"`
	Error string `json:"error,omitempty"`
}

// frame is the tagged union every wire message travels in.
type frame struct {
	Type    string           `json:"type"`
	Hello   *Hello           `json:"hello,omitempty"`
	Welcome *Welcome         `json:"welcome,omitempty"`
	Cell    *CellSpec        `json:"cell,omitempty"`
	Done    *CellDone        `json:"done,omitempty"`
	Req     *ArtifactRequest `json:"artifact_request,omitempty"`
	Chunk   *ArtifactChunk   `json:"artifact_chunk,omitempty"`
}

// writeFrame sends one frame: 4-byte big-endian body length, then the
// JSON body, as a single Write so concurrent writers (serialized by
// the caller's mutex) never interleave bytes.
func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("remote: encode %s frame: %w", f.Type, err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("remote: %s frame exceeds %d bytes", f.Type, MaxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	_, err = w.Write(buf)
	return err
}

// readFrame receives one frame.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("remote: frame length %d exceeds %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("remote: malformed frame: %w", err)
	}
	return &f, nil
}
