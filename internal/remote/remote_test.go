package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// echoSession returns a canned payload after an optional delay, or an
// error, and can block on a gate channel to hold a cell in flight.
type echoSession struct {
	delay   time.Duration
	gate    chan struct{} // when non-nil, Execute blocks until closed
	refuse  string        // when non-empty, every Execute errors
	execs   atomic.Int64
	payload string
}

func (s *echoSession) Execute(spec CellSpec) ([]byte, error) {
	s.execs.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if s.refuse != "" {
		return nil, errors.New(s.refuse)
	}
	return json.Marshal(map[string]any{"index": spec.Index, "payload": s.payload})
}

// acceptAll is a Handler that accepts every handshake with a fixed
// session, optionally requiring a catalog. The connection's artifact
// fetcher is parked on a channel for tests that exercise fetching.
type acceptAll struct {
	catalog  string
	sess     Session
	fetchers chan ArtifactFetcher // when non-nil, receives each connection's fetcher
}

func (h *acceptAll) Accept(hello Hello, artifacts ArtifactFetcher) (Session, error) {
	if h.catalog != "" && hello.Catalog != h.catalog {
		return nil, fmt.Errorf("catalog fingerprint mismatch: want %s, got %s", h.catalog, hello.Catalog)
	}
	if h.fetchers != nil {
		h.fetchers <- artifacts
	}
	return h.sess, nil
}

// startServer runs a Server on a localhost listener and returns its
// address; the server is torn down with the test.
func startServer(t *testing.T, srv *Server) string {
	addr, _ := startServerDone(t, srv)
	return addr
}

// startServerDone additionally returns a channel closed when Serve
// returns, for tests that pin the shutdown ordering.
func startServerDone(t *testing.T, srv *Server) (string, <-chan struct{}) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	return l.Addr().String(), done
}

func TestHandshakeAndExecute(t *testing.T) {
	sess := &echoSession{payload: "ok"}
	addr := startServer(t, &Server{
		Handler:   &acceptAll{catalog: "cat", sess: sess},
		Capacity:  3,
		Heartbeat: 50 * time.Millisecond,
	})
	c, err := Dial(addr, Hello{Catalog: "cat", Config: json.RawMessage(`{}`)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Capacity() != 3 {
		t.Fatalf("capacity = %d, want 3 (from the welcome)", c.Capacity())
	}
	res, err := c.Execute(CellSpec{Index: 7, Kind: "micro", Engine: "e", Dataset: "d"})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Index   int    `json:"index"`
		Payload string `json:"payload"`
	}
	if err := json.Unmarshal(res, &got); err != nil {
		t.Fatal(err)
	}
	if got.Index != 7 || got.Payload != "ok" {
		t.Fatalf("payload round-trip broken: %+v", got)
	}
}

// TestHandshakeRejectsCatalogMismatch: the worker must refuse a
// scheduler built with a different catalog, and the reason must reach
// the scheduler's error.
func TestHandshakeRejectsCatalogMismatch(t *testing.T) {
	addr := startServer(t, &Server{Handler: &acceptAll{catalog: "want", sess: &echoSession{}}})
	_, err := Dial(addr, Hello{Catalog: "other"}, nil)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mismatched catalog accepted: %v", err)
	}
}

// TestHandshakeRejectsProtocolMismatch speaks a wrong protocol version
// on a raw connection; the server must reject, not misparse.
func TestHandshakeRejectsProtocolMismatch(t *testing.T) {
	addr := startServer(t, &Server{Handler: &acceptAll{sess: &echoSession{}}})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &frame{Type: typeHello, Hello: &Hello{Proto: ProtocolVersion + 1}}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != typeWelcome || f.Welcome == nil || f.Welcome.OK || !strings.Contains(f.Welcome.Error, "protocol version") {
		t.Fatalf("protocol mismatch not rejected: %+v", f)
	}
}

// TestHeartbeatOutlivesSlowCell: a cell that runs for many heartbeat
// intervals must not trip the client's liveness deadline — heartbeats
// are exactly what distinguishes slow from dead.
func TestHeartbeatOutlivesSlowCell(t *testing.T) {
	const hb = 20 * time.Millisecond
	sess := &echoSession{payload: "slow", delay: 12 * hb} // ≫ the 4*hb read deadline
	addr := startServer(t, &Server{Handler: &acceptAll{sess: sess}, Heartbeat: hb})
	c, err := Dial(addr, Hello{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(CellSpec{Index: 1}); err != nil {
		t.Fatalf("slow cell failed despite heartbeats: %v", err)
	}
}

// TestWorkerDeathFailsInFlight: when the worker vanishes mid-cell, the
// waiting Execute must fail within a few heartbeat intervals (not hang
// for the cell's duration), and later calls must fail fast.
func TestWorkerDeathFailsInFlight(t *testing.T) {
	const hb = 20 * time.Millisecond
	sess := &echoSession{gate: make(chan struct{})} // never closed: cell hangs forever
	srv := &Server{Handler: &acceptAll{sess: sess}, Heartbeat: hb}
	addr := startServer(t, srv)
	c, err := Dial(addr, Hello{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := c.Execute(CellSpec{Index: 1})
		errc <- err
	}()
	// Let the cell land, then kill the worker (heartbeats stop).
	for i := 0; i < 100 && sess.execs.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	srv.Close()

	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Execute succeeded on a dead worker")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute hung after worker death")
	}
	if _, err := c.Execute(CellSpec{Index: 2}); err == nil {
		t.Fatal("Execute on a dead client did not fail fast")
	}
	close(sess.gate)
}

// TestDrainFinishesInFlight: Drain must deliver the in-flight cell's
// result before tearing the session down — the graceful half of
// worker shutdown. Serve must not return earlier either: gdb-worker's
// main exits when Serve does, and an early return would cut the drain
// short.
func TestDrainFinishesInFlight(t *testing.T) {
	sess := &echoSession{payload: "drained", gate: make(chan struct{})}
	srv := &Server{Handler: &acceptAll{sess: sess}, Heartbeat: 20 * time.Millisecond}
	addr, served := startServerDone(t, srv)
	c, err := Dial(addr, Hello{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		res json.RawMessage
		err error
	}
	resc := make(chan result, 1)
	go func() {
		res, err := c.Execute(CellSpec{Index: 1})
		resc <- result{res, err}
	}()
	for i := 0; i < 100 && sess.execs.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	// Drain — and Serve, whose return lets gdb-worker's main exit —
	// must both block on the in-flight cell...
	select {
	case <-drained:
		t.Fatal("Drain returned while a cell was in flight")
	case <-served:
		t.Fatal("Serve returned while a cell was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	// ...and deliver its result once it finishes.
	close(sess.gate)
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight cell lost during drain: %v", r.err)
	}
	<-drained
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the drain completed")
	}
}

// TestExecuteDeliveredResultBeatsDeath is the regression test for the
// result-loss race: a worker that delivers a cell's result and dies
// immediately after makes both the result channel and the death
// notification ready, and Execute's select must never drop the
// completed result on the floor (the scheduler would re-execute a
// finished cell elsewhere). The read loop routes the done frame before
// it can observe the connection error, so with the drain-first fix the
// result wins deterministically — every iteration must succeed.
func TestExecuteDeliveredResultBeatsDeath(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A raw worker that answers one cell and drops dead: handshake,
	// read the cell, write the done frame, close the connection.
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if f, err := readFrame(conn); err != nil || f.Type != typeHello {
					return
				}
				writeFrame(conn, &frame{Type: typeWelcome, Welcome: &Welcome{OK: true, Capacity: 1}})
				f, err := readFrame(conn)
				if err != nil || f.Type != typeCell {
					return
				}
				writeFrame(conn, &frame{Type: typeDone, Done: &CellDone{Index: f.Cell.Index, Result: json.RawMessage(`"delivered"`)}})
			}(conn)
		}
	}()

	for i := 0; i < 200; i++ {
		c, err := Dial(l.Addr().String(), Hello{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Execute(CellSpec{Index: i})
		c.Close()
		if err != nil {
			t.Fatalf("iteration %d: delivered result lost to the death race: %v", i, err)
		}
		if string(res) != `"delivered"` {
			t.Fatalf("iteration %d: result mangled: %s", i, res)
		}
	}
}

// TestServeWaitsForInflightOnAcceptError is the regression test for
// the shutdown race: a non-drain accept error (the listener torn down
// without Drain) must not let Serve return while a cell is still
// executing — gdb-worker's main exits when Serve returns, which would
// cut the in-flight cell's result write short and lose completed work.
func TestServeWaitsForInflightOnAcceptError(t *testing.T) {
	sess := &echoSession{payload: "late", gate: make(chan struct{})}
	srv := &Server{Handler: &acceptAll{sess: sess}, Heartbeat: 20 * time.Millisecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()
	t.Cleanup(srv.Close)

	c, err := Dial(l.Addr().String(), Hello{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type result struct {
		res json.RawMessage
		err error
	}
	resc := make(chan result, 1)
	go func() {
		res, err := c.Execute(CellSpec{Index: 1})
		resc <- result{res, err}
	}()
	for i := 0; i < 100 && sess.execs.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if sess.execs.Load() == 0 {
		t.Fatal("cell never reached the session")
	}

	// Kill the listener out from under Serve — an accept error with no
	// drain requested.
	l.Close()
	select {
	case err := <-served:
		t.Fatalf("Serve returned (%v) while a cell was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// The error path marks the server draining: a new cell arriving on
	// the still-open connection while Serve waits out the in-flight one
	// must be refused (inflight.Add must never race the Wait), not
	// executed.
	if _, err := c.Execute(CellSpec{Index: 2}); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("new cell during error-path wait: want draining refusal, got %v", err)
	}

	// Once the cell finishes, its result must reach the scheduler and
	// Serve must return the original accept error.
	close(sess.gate)
	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight cell lost to the accept error: %v", r.err)
	}
	select {
	case err := <-served:
		if err == nil {
			t.Fatal("Serve swallowed the accept error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the in-flight cell finished")
	}
}

// TestDrainBeforeServe: a drain that lands before Serve has registered
// the listener (a SIGTERM during startup) must still stop the accept
// loop — Serve returns instead of accepting forever.
func TestDrainBeforeServe(t *testing.T) {
	srv := &Server{Handler: &acceptAll{sess: &echoSession{}}}
	srv.Drain() // no listener yet
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve kept running after a pre-Serve drain")
	}
}

// TestFrameRoundTrip pushes an outsized payload through the framing to
// pin the length-prefix format.
func TestFrameRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	payload := json.RawMessage(`"` + strings.Repeat("x", 1<<16) + `"`)
	go writeFrame(client, &frame{Type: typeDone, Done: &CellDone{Index: 42, Result: payload}})
	f, err := readFrame(server)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != typeDone || f.Done == nil || f.Done.Index != 42 || len(f.Done.Result) != len(payload) {
		t.Fatalf("frame mangled in transit: type=%s", f.Type)
	}
}
