package remote

import (
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"runtime"
	"sync"
	"time"
)

// Session executes grid cells for one accepted scheduler connection.
// Execute is called from one goroutine per in-flight cell and must be
// safe for concurrent use up to the server's advertised Capacity.
type Session interface {
	Execute(spec CellSpec) (result []byte, err error)
}

// ArtifactFetcher pulls dataset artifacts from the connected
// scheduler. Each accepted connection hands its Handler one fetcher;
// FetchArtifact sends an ArtifactRequest and returns a reader over the
// chunk stream, verifying each chunk's CRC as it goes — the caller
// additionally verifies the assembled artifact through the snapshot
// format's own fingerprint and CRC. Any failure (refusal, stall,
// connection loss, CRC mismatch) surfaces as a read error; callers
// treat every error as "generate locally instead". Safe for
// concurrent use.
type ArtifactFetcher interface {
	FetchArtifact(name string, fingerprint [32]byte) (io.ReadCloser, error)
}

// Handler vets handshakes. Accept inspects the scheduler's Hello —
// catalog fingerprint, run configuration — and returns the Session
// that will execute its cells, or an error that becomes the rejection
// reason on the wire. artifacts fetches dataset artifacts from this
// connection's scheduler; it stays usable for the lifetime of the
// connection and fails every fetch after it closes.
type Handler interface {
	Accept(h Hello, artifacts ArtifactFetcher) (Session, error)
}

// artifactStallTimeout bounds how long a fetch waits for the next
// chunk frame before declaring the transfer dead. The scheduler sends
// no heartbeats (liveness flows worker → scheduler), so a stalled
// transfer must time out on its own; a variable so tests can shrink
// it.
var artifactStallTimeout = 30 * time.Second

// Server serves grid cells to remote schedulers. The zero value plus
// a Handler is ready to use; Serve runs the accept loop.
type Server struct {
	// Handler vets handshakes and supplies cell executors. Required.
	Handler Handler
	// Capacity is the slot count advertised per connection; zero
	// means runtime.NumCPU().
	Capacity int
	// Heartbeat is the liveness interval; zero means DefaultHeartbeat.
	Heartbeat time.Duration
	// Logf, when non-nil, receives connection-lifecycle lines.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	inflight sync.WaitGroup // cells executing; Drain waits for them
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts scheduler connections on l until the listener closes.
// It returns nil after Drain (or Close) — and only once every
// in-flight cell has finished and its result been written, so a main
// that exits when Serve returns cannot cut a drain short. Any other
// accept error is returned — but only after the same wait: whatever
// ended the accept loop, a worker main that exits when Serve returns
// must never cut an in-flight cell's result write short.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.lis = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	// A drain that raced ahead of Serve found no listener to close;
	// honor it now, or the accept loop would run forever.
	draining := s.draining
	s.mu.Unlock()
	if draining {
		l.Close()
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining
			// Whatever ended the accept loop — drain or error — the
			// server is shutting down: flag it so open connections
			// refuse new cells from here on (handle's inflight.Add
			// must never race the Wait below) and the wait covers
			// exactly the cells already executing, not the rest of
			// the scheduler's grid.
			s.draining = true
			s.mu.Unlock()
			// The in-flight wait must cover the error path too: a
			// non-drain accept error (listener torn down by the OS, a
			// stray close) that returned immediately would let the
			// worker's main exit mid-cell and silently lose the
			// completed result — the scheduler would re-execute the
			// cell elsewhere, or worse, wait out a full liveness
			// timeout first.
			s.inflight.Wait()
			s.closeConns()
			if stopping {
				return nil
			}
			return err
		}
		// Heartbeats normally surface a dead peer, but they can sit in
		// kernel buffers for many minutes on a hard partition; TCP
		// keepalive bounds how long a vanished scheduler pins this
		// worker's connection state.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Drain is the graceful shutdown: stop accepting connections, let
// in-flight cells finish and their results reach the scheduler,
// answer any late cell requests with an error (the scheduler
// reassigns those cells), then close every connection. It returns
// once the worker is idle.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.inflight.Wait()
	s.closeConns()
}

// Close tears the server down without waiting for in-flight cells —
// the abrupt variant, for tests and fatal exits.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.closeConns()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

// artifactClient is the per-connection ArtifactFetcher: it issues
// requests over the connection's shared write path and hands each
// fetch a stream that the connection's read loop feeds chunk frames
// into.
type artifactClient struct {
	write func(*frame) error

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*artifactStream
	closed  error // set when the connection is gone; fails new fetches
}

// artifactStream is one in-flight fetch. The read loop routes chunks
// into ch; done is closed when the reader is abandoned, so routing
// never blocks on a fetch nobody is consuming anymore.
type artifactStream struct {
	ch       chan ArtifactChunk
	done     chan struct{}
	doneOnce sync.Once
}

func (st *artifactStream) abandon() { st.doneOnce.Do(func() { close(st.done) }) }

// FetchArtifact implements ArtifactFetcher.
func (a *artifactClient) FetchArtifact(name string, fingerprint [32]byte) (io.ReadCloser, error) {
	st := &artifactStream{ch: make(chan ArtifactChunk, 16), done: make(chan struct{})}
	a.mu.Lock()
	if a.closed != nil {
		err := a.closed
		a.mu.Unlock()
		return nil, err
	}
	a.nextID++
	id := a.nextID
	a.pending[id] = st
	a.mu.Unlock()
	req := &ArtifactRequest{ID: id, Name: name, Fingerprint: hex.EncodeToString(fingerprint[:])}
	if err := a.write(&frame{Type: typeArtifactReq, Req: req}); err != nil {
		a.forget(id)
		return nil, fmt.Errorf("remote: artifact request: %w", err)
	}
	return &artifactReader{a: a, id: id, st: st}, nil
}

func (a *artifactClient) forget(id uint64) {
	a.mu.Lock()
	delete(a.pending, id)
	a.mu.Unlock()
}

// route delivers one chunk frame to its waiting fetch; chunks for
// unknown (finished, abandoned) fetches are dropped.
func (a *artifactClient) route(chunk ArtifactChunk) {
	a.mu.Lock()
	st := a.pending[chunk.ID]
	a.mu.Unlock()
	if st == nil {
		return
	}
	select {
	case st.ch <- chunk:
	case <-st.done:
	}
}

// close fails every in-flight fetch and all future ones; called when
// the connection goes away.
func (a *artifactClient) close(err error) {
	a.mu.Lock()
	a.closed = err
	streams := a.pending
	a.pending = make(map[uint64]*artifactStream)
	a.mu.Unlock()
	for id, st := range streams {
		select {
		case st.ch <- ArtifactChunk{ID: id, Error: err.Error()}:
		case <-st.done:
		}
	}
}

// artifactReader assembles the chunk stream of one fetch back into the
// artifact's bytes, verifying each chunk's sequence number and CRC.
type artifactReader struct {
	a   *artifactClient
	id  uint64
	st  *artifactStream
	buf []byte
	seq int
	err error // sticky
}

func (r *artifactReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for len(r.buf) == 0 {
		select {
		case chunk := <-r.st.ch:
			switch {
			case chunk.Error != "":
				r.err = fmt.Errorf("remote: artifact fetch: %s", chunk.Error)
				return 0, r.err
			case chunk.Last:
				r.err = io.EOF
				return 0, io.EOF
			case chunk.Seq != r.seq:
				r.err = fmt.Errorf("remote: artifact chunk %d arrived out of order (want %d)", chunk.Seq, r.seq)
				return 0, r.err
			case crc32.Checksum(chunk.Data, artifactCRC) != chunk.CRC:
				r.err = errors.New("remote: artifact chunk CRC mismatch")
				return 0, r.err
			}
			r.seq++
			r.buf = chunk.Data
		case <-time.After(artifactStallTimeout):
			r.err = errors.New("remote: artifact fetch stalled: no chunk from scheduler")
			return 0, r.err
		}
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

func (r *artifactReader) Close() error {
	r.a.forget(r.id)
	r.st.abandon()
	return nil
}

// handle owns one scheduler connection: handshake, then a read loop
// that fans cell requests out to executor goroutines and routes
// artifact chunks to in-flight fetches, while a ticker goroutine emits
// heartbeats.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// Handshake under a deadline; afterwards the connection idles
	// until the scheduler has work, so no read deadline applies.
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout)) //lint:gdb-allow wallclock handshake I/O deadline, never enters a result
	f, err := readFrame(conn)
	if err != nil || f.Type != typeHello || f.Hello == nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	var wmu sync.Mutex
	write := func(f *frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, f)
	}
	reject := func(reason string) {
		write(&frame{Type: typeWelcome, Welcome: &Welcome{Error: reason}})
		s.logf("remote: rejected %s: %s", conn.RemoteAddr(), reason)
	}
	if f.Hello.Proto != ProtocolVersion {
		reject(fmt.Sprintf("protocol version mismatch: scheduler speaks %d, worker %d", f.Hello.Proto, ProtocolVersion))
		return
	}
	artifacts := &artifactClient{write: write, pending: make(map[uint64]*artifactStream)}
	defer artifacts.close(errors.New("scheduler connection closed"))
	sess, err := s.Handler.Accept(*f.Hello, artifacts)
	if err != nil {
		reject(err.Error())
		return
	}
	capacity := s.Capacity
	if capacity <= 0 {
		capacity = runtime.NumCPU()
	}
	hb := s.Heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	if err := write(&frame{Type: typeWelcome, Welcome: &Welcome{OK: true, Capacity: capacity, HeartbeatNS: int64(hb)}}); err != nil {
		return
	}
	s.logf("remote: session from %s, %d slots", conn.RemoteAddr(), capacity)

	// Heartbeats flow for the whole session, busy or idle: the
	// scheduler's only liveness signal while a cell runs for minutes.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if write(&frame{Type: typeHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	for {
		f, err := readFrame(conn)
		if err != nil {
			return // EOF: scheduler finished (or died); either way we are done
		}
		if f.Type == typeArtifactChunk && f.Chunk != nil {
			artifacts.route(*f.Chunk)
			continue
		}
		if f.Type != typeCell || f.Cell == nil {
			continue
		}
		spec := *f.Cell
		s.mu.Lock()
		draining := s.draining
		if !draining {
			s.inflight.Add(1)
		}
		s.mu.Unlock()
		if draining {
			write(&frame{Type: typeDone, Done: &CellDone{Index: spec.Index, Error: "worker draining"}})
			continue
		}
		go func() {
			defer s.inflight.Done()
			result, err := sess.Execute(spec)
			d := &CellDone{Index: spec.Index}
			if err != nil {
				d.Error = err.Error()
			} else {
				d.Result = result
			}
			write(&frame{Type: typeDone, Done: d})
		}()
	}
}
