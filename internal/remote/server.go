package remote

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"
)

// Session executes grid cells for one accepted scheduler connection.
// Execute is called from one goroutine per in-flight cell and must be
// safe for concurrent use up to the server's advertised Capacity.
type Session interface {
	Execute(spec CellSpec) (result []byte, err error)
}

// Handler vets handshakes. Accept inspects the scheduler's Hello —
// catalog fingerprint, run configuration — and returns the Session
// that will execute its cells, or an error that becomes the rejection
// reason on the wire.
type Handler interface {
	Accept(h Hello) (Session, error)
}

// Server serves grid cells to remote schedulers. The zero value plus
// a Handler is ready to use; Serve runs the accept loop.
type Server struct {
	// Handler vets handshakes and supplies cell executors. Required.
	Handler Handler
	// Capacity is the slot count advertised per connection; zero
	// means runtime.NumCPU().
	Capacity int
	// Heartbeat is the liveness interval; zero means DefaultHeartbeat.
	Heartbeat time.Duration
	// Logf, when non-nil, receives connection-lifecycle lines.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	inflight sync.WaitGroup // cells executing; Drain waits for them
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts scheduler connections on l until the listener closes.
// It returns nil after Drain (or Close) — and only once every
// in-flight cell has finished and its result been written, so a main
// that exits when Serve returns cannot cut a drain short. Any other
// accept error is returned as-is.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.lis = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	// A drain that raced ahead of Serve found no listener to close;
	// honor it now, or the accept loop would run forever.
	draining := s.draining
	s.mu.Unlock()
	if draining {
		l.Close()
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining
			s.mu.Unlock()
			if stopping {
				s.inflight.Wait()
				s.closeConns()
				return nil
			}
			return err
		}
		// Heartbeats normally surface a dead peer, but they can sit in
		// kernel buffers for many minutes on a hard partition; TCP
		// keepalive bounds how long a vanished scheduler pins this
		// worker's connection state.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Drain is the graceful shutdown: stop accepting connections, let
// in-flight cells finish and their results reach the scheduler,
// answer any late cell requests with an error (the scheduler
// reassigns those cells), then close every connection. It returns
// once the worker is idle.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.inflight.Wait()
	s.closeConns()
}

// Close tears the server down without waiting for in-flight cells —
// the abrupt variant, for tests and fatal exits.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.closeConns()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

// handle owns one scheduler connection: handshake, then a read loop
// that fans cell requests out to executor goroutines while a ticker
// goroutine emits heartbeats.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// Handshake under a deadline; afterwards the connection idles
	// until the scheduler has work, so no read deadline applies.
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	f, err := readFrame(conn)
	if err != nil || f.Type != typeHello || f.Hello == nil {
		return
	}
	conn.SetReadDeadline(time.Time{})

	var wmu sync.Mutex
	write := func(f *frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, f)
	}
	reject := func(reason string) {
		write(&frame{Type: typeWelcome, Welcome: &Welcome{Error: reason}})
		s.logf("remote: rejected %s: %s", conn.RemoteAddr(), reason)
	}
	if f.Hello.Proto != ProtocolVersion {
		reject(fmt.Sprintf("protocol version mismatch: scheduler speaks %d, worker %d", f.Hello.Proto, ProtocolVersion))
		return
	}
	sess, err := s.Handler.Accept(*f.Hello)
	if err != nil {
		reject(err.Error())
		return
	}
	capacity := s.Capacity
	if capacity <= 0 {
		capacity = runtime.NumCPU()
	}
	hb := s.Heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	if err := write(&frame{Type: typeWelcome, Welcome: &Welcome{OK: true, Capacity: capacity, HeartbeatNS: int64(hb)}}); err != nil {
		return
	}
	s.logf("remote: session from %s, %d slots", conn.RemoteAddr(), capacity)

	// Heartbeats flow for the whole session, busy or idle: the
	// scheduler's only liveness signal while a cell runs for minutes.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if write(&frame{Type: typeHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	for {
		f, err := readFrame(conn)
		if err != nil {
			return // EOF: scheduler finished (or died); either way we are done
		}
		if f.Type != typeCell || f.Cell == nil {
			continue
		}
		spec := *f.Cell
		s.mu.Lock()
		draining := s.draining
		if !draining {
			s.inflight.Add(1)
		}
		s.mu.Unlock()
		if draining {
			write(&frame{Type: typeDone, Done: &CellDone{Index: spec.Index, Error: "worker draining"}})
			continue
		}
		go func() {
			defer s.inflight.Done()
			result, err := sess.Execute(spec)
			d := &CellDone{Index: spec.Index}
			if err != nil {
				d.Error = err.Error()
			} else {
				d.Result = result
			}
			write(&frame{Type: typeDone, Done: d})
		}()
	}
}
