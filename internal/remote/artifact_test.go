package remote

import (
	"bytes"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// bytesProvider is an ArtifactProvider serving one in-memory artifact.
type bytesProvider struct {
	name  string
	fp    [32]byte
	data  []byte
	err   error // when non-nil, every open is refused with it
	opens atomic.Int64
}

func (p *bytesProvider) OpenArtifact(name string, fp [32]byte) (io.ReadCloser, error) {
	p.opens.Add(1)
	if p.err != nil {
		return nil, p.err
	}
	if name != p.name || fp != p.fp {
		return nil, errors.New("unknown artifact")
	}
	return io.NopCloser(bytes.NewReader(p.data)), nil
}

// dialWithFetcher connects a client (with the given provider) to a
// fresh server and returns the server side's per-connection fetcher.
func dialWithFetcher(t *testing.T, provider ArtifactProvider) (*Client, ArtifactFetcher) {
	t.Helper()
	fetchers := make(chan ArtifactFetcher, 1)
	addr := startServer(t, &Server{
		Handler:   &acceptAll{sess: &echoSession{}, fetchers: fetchers},
		Heartbeat: 50 * time.Millisecond,
	})
	c, err := Dial(addr, Hello{}, provider)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, <-fetchers
}

// TestArtifactFetchRoundTrip pushes a multi-chunk artifact through the
// request/chunk frames: the worker-side fetcher must reassemble the
// exact bytes the scheduler's provider served, across chunk
// boundaries, with every per-chunk CRC verified along the way.
func TestArtifactFetchRoundTrip(t *testing.T) {
	data := make([]byte, 2*artifactChunkSize+12345) // 3 data chunks
	rand.New(rand.NewSource(1)).Read(data)
	var fp [32]byte
	fp[0], fp[31] = 0xAB, 0xCD
	p := &bytesProvider{name: "frb-s", fp: fp, data: data}
	_, fetcher := dialWithFetcher(t, p)

	rc, err := fetcher.FetchArtifact("frb-s", fp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("artifact mangled in transit: %d bytes, want %d", len(got), len(data))
	}
	if p.opens.Load() != 1 {
		t.Fatalf("provider opened %d times, want 1", p.opens.Load())
	}

	// Concurrent fetches multiplex by request id on one connection.
	const fetches = 4
	errs := make(chan error, fetches)
	for i := 0; i < fetches; i++ {
		go func() {
			rc, err := fetcher.FetchArtifact("frb-s", fp)
			if err != nil {
				errs <- err
				return
			}
			defer rc.Close()
			got, err := io.ReadAll(rc)
			if err == nil && !bytes.Equal(got, data) {
				err = errors.New("artifact mangled in concurrent transit")
			}
			errs <- err
		}()
	}
	for i := 0; i < fetches; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestArtifactFetchRefused: a nil provider and a provider error must
// both surface as read errors carrying the refusal reason — the
// worker's cue to generate locally.
func TestArtifactFetchRefused(t *testing.T) {
	var fp [32]byte
	readErr := func(fetcher ArtifactFetcher) error {
		t.Helper()
		rc, err := fetcher.FetchArtifact("frb-s", fp)
		if err != nil {
			return err
		}
		defer rc.Close()
		_, err = io.ReadAll(rc)
		return err
	}

	_, fetcher := dialWithFetcher(t, nil)
	if err := readErr(fetcher); err == nil || !strings.Contains(err.Error(), "does not serve artifacts") {
		t.Fatalf("nil provider fetch: %v", err)
	}

	_, fetcher = dialWithFetcher(t, &bytesProvider{err: errors.New("cache dir on fire")})
	if err := readErr(fetcher); err == nil || !strings.Contains(err.Error(), "cache dir on fire") {
		t.Fatalf("refusal reason lost: %v", err)
	}
}

// TestArtifactFetchFailsWhenSchedulerDies: a fetch in flight when the
// scheduler connection drops must fail promptly (connection-closed
// error), not hang until the stall timeout; and fetches issued after
// the connection is gone must fail immediately.
func TestArtifactFetchFailsWhenSchedulerDies(t *testing.T) {
	var fp [32]byte
	// A provider whose artifact never finishes: the pipe is never
	// closed, so chunks stop coming once the connection dies.
	pr, pw := io.Pipe()
	defer pw.Close()
	slow := &pipeProvider{rc: pr}
	c, fetcher := dialWithFetcher(t, slow)

	rc, err := fetcher.FetchArtifact("frb-s", fp)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	c.Close() // scheduler goes away mid-transfer

	done := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(rc)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "connection closed") {
			t.Fatalf("fetch across a dead connection: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch hung after the scheduler connection died")
	}

	if _, err := fetcher.FetchArtifact("frb-s", fp); err == nil {
		t.Fatal("fetch on a closed connection did not fail fast")
	}
}

// pipeProvider serves one reader, once.
type pipeProvider struct{ rc io.ReadCloser }

func (p *pipeProvider) OpenArtifact(string, [32]byte) (io.ReadCloser, error) { return p.rc, nil }

// TestArtifactFetchSurvivesSlowOpen: opening the artifact on the
// scheduler can outlast the worker's stall timeout — a cold scheduler
// generates the dataset before the first byte can flow — so the
// serving side must emit keepalive chunks that hold the transfer open
// until data arrives.
func TestArtifactFetchSurvivesSlowOpen(t *testing.T) {
	oldStall, oldKeep := artifactStallTimeout, artifactKeepalive
	artifactStallTimeout, artifactKeepalive = 300*time.Millisecond, 50*time.Millisecond
	t.Cleanup(func() { artifactStallTimeout, artifactKeepalive = oldStall, oldKeep })

	data := []byte("worth the wait")
	var fp [32]byte
	p := &slowOpenProvider{delay: 4 * artifactStallTimeout, data: data}
	_, fetcher := dialWithFetcher(t, p)

	rc, err := fetcher.FetchArtifact("frb-s", fp)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("slow open starved the fetch despite keepalives: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("slow-open artifact mangled: %q", got)
	}
}

// slowOpenProvider blocks in OpenArtifact before serving.
type slowOpenProvider struct {
	delay time.Duration
	data  []byte
}

func (p *slowOpenProvider) OpenArtifact(string, [32]byte) (io.ReadCloser, error) {
	time.Sleep(p.delay)
	return io.NopCloser(bytes.NewReader(p.data)), nil
}

// gatedOpenProvider blocks OpenArtifact until released, then serves a
// close-recording reader.
type gatedOpenProvider struct {
	release chan struct{}
	rc      *closeRecorder
}

func (p *gatedOpenProvider) OpenArtifact(string, [32]byte) (io.ReadCloser, error) {
	<-p.release
	return p.rc, nil
}

// closeRecorder signals when it is closed.
type closeRecorder struct {
	closed chan struct{}
	once   sync.Once
}

func (r *closeRecorder) Read(p []byte) (int, error) { return 0, io.EOF }
func (r *closeRecorder) Close() error {
	r.once.Do(func() { close(r.closed) })
	return nil
}

// TestArtifactKeepaliveFailureClosesLateOpen: when the connection dies
// while the provider is still opening, the serving goroutine must wait
// for the open to finish and close its reader — the reader must not
// leak just because there is no one left to stream it to.
func TestArtifactKeepaliveFailureClosesLateOpen(t *testing.T) {
	oldStall, oldKeep := artifactStallTimeout, artifactKeepalive
	artifactStallTimeout, artifactKeepalive = 300*time.Millisecond, 20*time.Millisecond
	t.Cleanup(func() { artifactStallTimeout, artifactKeepalive = oldStall, oldKeep })

	p := &gatedOpenProvider{
		release: make(chan struct{}),
		rc:      &closeRecorder{closed: make(chan struct{})},
	}
	c, fetcher := dialWithFetcher(t, p)

	rc, err := fetcher.FetchArtifact("frb-s", [32]byte{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Let a few keepalives flow, sever the scheduler connection so the
	// next send fails, then release the still-pending open.
	time.Sleep(3 * artifactKeepalive)
	c.Close()
	time.Sleep(3 * artifactKeepalive)
	close(p.release)

	select {
	case <-p.rc.closed:
		// The dead transfer's reader was reaped.
	case <-time.After(5 * time.Second):
		t.Fatal("late-opened artifact reader was never closed after the connection died")
	}
}

// TestArtifactChunkCRCMismatch speaks the scheduler side raw: a chunk
// whose data does not match its CRC — corruption in transit — must
// fail the fetch, never feed bad bytes to the artifact decoder. An
// out-of-order sequence number must fail the same way.
func TestArtifactChunkCRCMismatch(t *testing.T) {
	fetchers := make(chan ArtifactFetcher, 1)
	addr := startServer(t, &Server{
		Handler:   &acceptAll{sess: &echoSession{}, fetchers: fetchers},
		Heartbeat: 50 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &frame{Type: typeHello, Hello: &Hello{Proto: ProtocolVersion}}); err != nil {
		t.Fatal(err)
	}
	if f, err := readFrame(conn); err != nil || f.Type != typeWelcome || !f.Welcome.OK {
		t.Fatalf("handshake failed: %+v, %v", f, err)
	}
	fetcher := <-fetchers

	// The raw scheduler: answer each artifact request with one
	// poisoned chunk (bad CRC first, bad sequence second).
	go func() {
		poison := []func(id uint64) *ArtifactChunk{
			func(id uint64) *ArtifactChunk {
				data := []byte("good bytes")
				return &ArtifactChunk{ID: id, Seq: 0, Data: data, CRC: crc32.Checksum(data, artifactCRC) ^ 1}
			},
			func(id uint64) *ArtifactChunk {
				data := []byte("good bytes")
				return &ArtifactChunk{ID: id, Seq: 7, Data: data, CRC: crc32.Checksum(data, artifactCRC)}
			},
		}
		for {
			f, err := readFrame(conn)
			if err != nil {
				return
			}
			if f.Type != typeArtifactReq || f.Req == nil {
				continue // heartbeats
			}
			next := poison[0]
			poison = poison[1:]
			writeFrame(conn, &frame{Type: typeArtifactChunk, Chunk: next(f.Req.ID)})
		}
	}()

	var fp [32]byte
	for _, want := range []string{"CRC mismatch", "out of order"} {
		rc, err := fetcher.FetchArtifact("frb-s", fp)
		if err != nil {
			t.Fatal(err)
		}
		_, err = io.ReadAll(rc)
		rc.Close()
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("poisoned chunk accepted, want %q error: %v", want, err)
		}
	}
}

// TestArtifactRequestFrameRoundTrip pins the wire shape of the new
// frames, including the hex fingerprint encoding.
func TestArtifactRequestFrameRoundTrip(t *testing.T) {
	var fp [32]byte
	for i := range fp {
		fp[i] = byte(i)
	}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go writeFrame(client, &frame{Type: typeArtifactReq, Req: &ArtifactRequest{ID: 9, Name: "ldbc", Fingerprint: hex.EncodeToString(fp[:])}})
	f, err := readFrame(server)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != typeArtifactReq || f.Req == nil || f.Req.ID != 9 || f.Req.Name != "ldbc" {
		t.Fatalf("request frame mangled: %+v", f)
	}
	raw, err := hex.DecodeString(f.Req.Fingerprint)
	if err != nil || !bytes.Equal(raw, fp[:]) {
		t.Fatalf("fingerprint mangled: %q", f.Req.Fingerprint)
	}

	data := []byte{0, 1, 2, 0xFF}
	go writeFrame(client, &frame{Type: typeArtifactChunk, Chunk: &ArtifactChunk{ID: 9, Seq: 3, Data: data, CRC: 42, Last: false}})
	f, err = readFrame(server)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != typeArtifactChunk || f.Chunk == nil || f.Chunk.Seq != 3 || !bytes.Equal(f.Chunk.Data, data) || f.Chunk.CRC != 42 {
		t.Fatalf("chunk frame mangled: %+v", f)
	}
}
