package remote

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned by Execute after Close.
var ErrClosed = errors.New("remote: client closed")

// ArtifactProvider serves dataset artifacts to workers that request
// them. OpenArtifact returns a reader over the complete artifact bytes
// for the given content address, or an error that becomes the refusal
// reason on the wire (the worker falls back to generating the dataset
// locally). It is called from the client's read loop in a dedicated
// goroutine per request and must be safe for concurrent use.
type ArtifactProvider interface {
	OpenArtifact(name string, fingerprint [32]byte) (io.ReadCloser, error)
}

// Client is the scheduler's end of one worker connection. Execute may
// be called from Capacity goroutines concurrently; responses are
// multiplexed by plan index. Once the connection dies — read error,
// or no frame for several heartbeat intervals — every in-flight and
// future Execute fails fast, and the caller reassigns those cells.
type Client struct {
	addr      string
	conn      net.Conn
	capacity  int
	heartbeat time.Duration
	artifacts ArtifactProvider

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[int]chan CellDone
	err     error         // first fatal error; set once
	dead    chan struct{} // closed when err is set
}

// Dial connects to a worker and performs the handshake. hello.Proto
// is filled in; Catalog and Config are the caller's. artifacts, when
// non-nil, serves the worker's dataset artifact requests over this
// connection (a nil provider refuses them and the worker generates
// locally). A rejection (catalog mismatch, protocol drift, unknown
// engines) surfaces as an error mentioning the worker's reason.
func Dial(addr string, hello Hello, artifacts ArtifactProvider) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	hello.Proto = ProtocolVersion
	conn.SetDeadline(time.Now().Add(handshakeTimeout)) //lint:gdb-allow wallclock handshake I/O deadline, never enters a result
	if err := writeFrame(conn, &frame{Type: typeHello, Hello: &hello}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake with %s: %w", addr, err)
	}
	f, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake with %s: %w", addr, err)
	}
	if f.Type != typeWelcome || f.Welcome == nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake with %s: unexpected %q frame", addr, f.Type)
	}
	if !f.Welcome.OK {
		conn.Close()
		return nil, fmt.Errorf("remote: %s rejected the session: %s", addr, f.Welcome.Error)
	}
	conn.SetDeadline(time.Time{})
	hb := time.Duration(f.Welcome.HeartbeatNS)
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	capacity := f.Welcome.Capacity
	if capacity < 1 {
		capacity = 1
	}
	c := &Client{
		addr:      addr,
		conn:      conn,
		capacity:  capacity,
		heartbeat: hb,
		artifacts: artifacts,
		pending:   make(map[int]chan CellDone),
		dead:      make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Addr returns the worker address this client dialed.
func (c *Client) Addr() string { return c.addr }

// Capacity returns the slot count the worker advertised.
func (c *Client) Capacity() int { return c.capacity }

// deadlineReader refreshes the connection's read deadline on every
// chunk, so the liveness timeout measures *stall* time, not total
// frame-transfer time — a multi-megabyte result trickling over a slow
// link keeps making progress and must not be mistaken for death.
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (d deadlineReader) Read(p []byte) (int, error) {
	d.conn.SetReadDeadline(time.Now().Add(d.timeout)) //lint:gdb-allow wallclock stall-detection I/O deadline, never enters a result
	return d.conn.Read(p)
}

// readLoop is the only reader: it routes responses to their waiting
// Execute and treats heartbeats as pure liveness. The stall deadline
// is several heartbeat intervals — a healthy worker always produces
// bytes well within it, however long the cell itself runs.
func (c *Client) readLoop() {
	r := deadlineReader{conn: c.conn, timeout: 4 * c.heartbeat}
	for {
		f, err := readFrame(r)
		if err != nil {
			c.fail(fmt.Errorf("remote: worker %s died: %w", c.addr, err))
			return
		}
		switch f.Type {
		case typeHeartbeat:
			// liveness only
		case typeDone:
			if f.Done == nil {
				continue
			}
			c.mu.Lock()
			ch := c.pending[f.Done.Index]
			delete(c.pending, f.Done.Index)
			c.mu.Unlock()
			if ch != nil {
				ch <- *f.Done // buffered; never blocks
			}
		case typeArtifactReq:
			if f.Req != nil {
				// Streaming an artifact can take a while; a dedicated
				// goroutine keeps the read loop free to route cell
				// results and heartbeats meanwhile.
				go c.serveArtifact(*f.Req)
			}
		}
	}
}

// send writes one frame under the write mutex.
func (c *Client) send(f *frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeFrame(c.conn, f)
}

// artifactKeepalive is how often serveArtifact sends an empty chunk
// while the provider is still opening the artifact (a cold scheduler
// generates the dataset first, which can take minutes at paper scale).
// Must be comfortably below the worker's stall timeout, or a slow open
// would look like a dead transfer; a variable so tests can shrink it.
var artifactKeepalive = 5 * time.Second

// serveArtifact answers one worker artifact request: it opens the
// artifact at the provider and streams it as CRC-carrying chunks,
// ending with an empty Last chunk. Any refusal — no provider, a
// malformed request, a provider error — is sent as an Error chunk the
// worker turns into its generate-locally fallback. A connection-level
// write failure just stops the transfer: declaring the worker dead is
// the read loop's job alone — fail from a second goroutine could race
// an already-delivered cell result out of Execute's drain-first
// re-check.
func (c *Client) serveArtifact(req ArtifactRequest) {
	refuse := func(reason string) {
		c.send(&frame{Type: typeArtifactChunk, Chunk: &ArtifactChunk{ID: req.ID, Error: reason}})
	}
	if c.artifacts == nil {
		refuse("scheduler does not serve artifacts")
		return
	}
	raw, err := hex.DecodeString(req.Fingerprint)
	if err != nil || len(raw) != 32 {
		refuse(fmt.Sprintf("malformed artifact fingerprint %q", req.Fingerprint))
		return
	}
	var fp [32]byte
	copy(fp[:], raw)
	// Opening can block far longer than the worker's stall timeout —
	// a cold scheduler acquires (and possibly generates) the dataset
	// first — so it runs aside while empty keepalive chunks hold the
	// transfer open. An empty chunk carries bytes of progress, which
	// is exactly what the worker's stall detector measures.
	type opened struct {
		rc  io.ReadCloser
		err error
	}
	oc := make(chan opened, 1)
	// Every path below drains oc exactly once, so the opener can never
	// block or leak its ReadCloser.
	//lint:gdb-allow goroutinejoin opener is always joined by the oc receive below, on success and failure paths alike
	go func() {
		rc, err := c.artifacts.OpenArtifact(req.Name, fp)
		oc <- opened{rc, err}
	}()
	seq := 0
	var rc io.ReadCloser
	for rc == nil {
		select {
		case o := <-oc:
			if o.err != nil {
				refuse(o.err.Error())
				return
			}
			rc = o.rc
		case <-time.After(artifactKeepalive):
			if err := c.send(&frame{Type: typeArtifactChunk, Chunk: &ArtifactChunk{ID: req.ID, Seq: seq}}); err != nil {
				// Connection broken: no more keepalives to send, so
				// join the opener right here — this serveArtifact call
				// already runs in its own goroutine — and close
				// whatever it produced. The read loop discovers the
				// death independently.
				if o := <-oc; o.rc != nil {
					o.rc.Close()
				}
				return
			}
			seq++
		}
	}
	defer rc.Close()
	buf := make([]byte, artifactChunkSize)
	for {
		n, rerr := rc.Read(buf)
		if n > 0 {
			chunk := &ArtifactChunk{ID: req.ID, Seq: seq, Data: buf[:n], CRC: crc32.Checksum(buf[:n], artifactCRC)}
			if err := c.send(&frame{Type: typeArtifactChunk, Chunk: chunk}); err != nil {
				return
			}
			seq++
		}
		switch {
		case rerr == io.EOF:
			c.send(&frame{Type: typeArtifactChunk, Chunk: &ArtifactChunk{ID: req.ID, Seq: seq, Last: true}})
			return
		case rerr != nil:
			refuse(fmt.Sprintf("reading artifact %s: %v", req.Name, rerr))
			return
		}
	}
}

// fail records the first fatal error, wakes every waiter, and closes
// the connection.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.dead)
	}
	c.mu.Unlock()
	c.conn.Close()
}

// Execute runs one cell on the worker and returns its result payload.
// Any error — a per-cell refusal (draining, plan mismatch) or worker
// death — means the cell did not run remotely and must be reassigned.
func (c *Client) Execute(spec CellSpec) (json.RawMessage, error) {
	ch := make(chan CellDone, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[spec.Index] = ch
	c.mu.Unlock()

	if err := c.send(&frame{Type: typeCell, Cell: &spec}); err != nil {
		c.fail(fmt.Errorf("remote: worker %s: %w", c.addr, err))
		c.forget(spec.Index)
		return nil, err
	}

	done := func(d CellDone) (json.RawMessage, error) {
		if d.Error != "" {
			return nil, fmt.Errorf("remote: worker %s refused cell %d: %s", c.addr, spec.Index, d.Error)
		}
		return d.Result, nil
	}
	select {
	case d := <-ch:
		return done(d)
	case <-c.dead:
		// The worker may have delivered this cell's result in the
		// instant before it died: the read loop routes the done frame
		// into ch (buffered) strictly before it can observe the
		// connection error that closes c.dead, so when both channels
		// are ready the select above picks nondeterministically. A
		// delivered result must always win — dropping it would
		// re-execute a completed cell elsewhere — so re-check ch
		// non-blockingly before conceding to the death notification.
		select {
		case d := <-ch:
			return done(d)
		default:
		}
		c.forget(spec.Index)
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
}

func (c *Client) forget(index int) {
	c.mu.Lock()
	delete(c.pending, index)
	c.mu.Unlock()
}

// Close ends the session; the worker sees EOF and forgets it.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}
