package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrClosed is returned by Execute after Close.
var ErrClosed = errors.New("remote: client closed")

// Client is the scheduler's end of one worker connection. Execute may
// be called from Capacity goroutines concurrently; responses are
// multiplexed by plan index. Once the connection dies — read error,
// or no frame for several heartbeat intervals — every in-flight and
// future Execute fails fast, and the caller reassigns those cells.
type Client struct {
	addr      string
	conn      net.Conn
	capacity  int
	heartbeat time.Duration

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[int]chan CellDone
	err     error         // first fatal error; set once
	dead    chan struct{} // closed when err is set
}

// Dial connects to a worker and performs the handshake. hello.Proto
// is filled in; Catalog and Config are the caller's. A rejection
// (catalog mismatch, protocol drift, unknown engines) surfaces as an
// error mentioning the worker's reason.
func Dial(addr string, hello Hello) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	hello.Proto = ProtocolVersion
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := writeFrame(conn, &frame{Type: typeHello, Hello: &hello}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake with %s: %w", addr, err)
	}
	f, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake with %s: %w", addr, err)
	}
	if f.Type != typeWelcome || f.Welcome == nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake with %s: unexpected %q frame", addr, f.Type)
	}
	if !f.Welcome.OK {
		conn.Close()
		return nil, fmt.Errorf("remote: %s rejected the session: %s", addr, f.Welcome.Error)
	}
	conn.SetDeadline(time.Time{})
	hb := time.Duration(f.Welcome.HeartbeatNS)
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	capacity := f.Welcome.Capacity
	if capacity < 1 {
		capacity = 1
	}
	c := &Client{
		addr:      addr,
		conn:      conn,
		capacity:  capacity,
		heartbeat: hb,
		pending:   make(map[int]chan CellDone),
		dead:      make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Addr returns the worker address this client dialed.
func (c *Client) Addr() string { return c.addr }

// Capacity returns the slot count the worker advertised.
func (c *Client) Capacity() int { return c.capacity }

// deadlineReader refreshes the connection's read deadline on every
// chunk, so the liveness timeout measures *stall* time, not total
// frame-transfer time — a multi-megabyte result trickling over a slow
// link keeps making progress and must not be mistaken for death.
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (d deadlineReader) Read(p []byte) (int, error) {
	d.conn.SetReadDeadline(time.Now().Add(d.timeout))
	return d.conn.Read(p)
}

// readLoop is the only reader: it routes responses to their waiting
// Execute and treats heartbeats as pure liveness. The stall deadline
// is several heartbeat intervals — a healthy worker always produces
// bytes well within it, however long the cell itself runs.
func (c *Client) readLoop() {
	r := deadlineReader{conn: c.conn, timeout: 4 * c.heartbeat}
	for {
		f, err := readFrame(r)
		if err != nil {
			c.fail(fmt.Errorf("remote: worker %s died: %w", c.addr, err))
			return
		}
		switch f.Type {
		case typeHeartbeat:
			// liveness only
		case typeDone:
			if f.Done == nil {
				continue
			}
			c.mu.Lock()
			ch := c.pending[f.Done.Index]
			delete(c.pending, f.Done.Index)
			c.mu.Unlock()
			if ch != nil {
				ch <- *f.Done // buffered; never blocks
			}
		}
	}
}

// fail records the first fatal error, wakes every waiter, and closes
// the connection.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.dead)
	}
	c.mu.Unlock()
	c.conn.Close()
}

// Execute runs one cell on the worker and returns its result payload.
// Any error — a per-cell refusal (draining, plan mismatch) or worker
// death — means the cell did not run remotely and must be reassigned.
func (c *Client) Execute(spec CellSpec) (json.RawMessage, error) {
	ch := make(chan CellDone, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[spec.Index] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.conn, &frame{Type: typeCell, Cell: &spec})
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("remote: worker %s: %w", c.addr, err))
		c.forget(spec.Index)
		return nil, err
	}

	select {
	case d := <-ch:
		if d.Error != "" {
			return nil, fmt.Errorf("remote: worker %s refused cell %d: %s", c.addr, spec.Index, d.Error)
		}
		return d.Result, nil
	case <-c.dead:
		c.forget(spec.Index)
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
}

func (c *Client) forget(index int) {
	c.mu.Lock()
	delete(c.pending, index)
	c.mu.Unlock()
}

// Close ends the session; the worker sees EOF and forgets it.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}
