//go:build unix

package mmapfile

import (
	"errors"
	"os"
	"syscall"
)

// errEmptyFile routes zero-length files to the fallback: mmap(2)
// rejects length 0, and an empty heap buffer serves identically.
var errEmptyFile = errors.New("mmapfile: empty file")

// openMapped maps the file read-only and privately: writes elsewhere
// to the same file never tear the view mid-read, and the mapping
// itself can never dirty the file.
func openMapped(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, errEmptyFile
	}
	if size != int64(int(size)) {
		return nil, errors.New("mmapfile: file too large to map")
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, err
	}
	return &File{data: data, mapped: true}, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
