// Package mmapfile gives read-only, zero-copy access to a file's
// bytes: a memory mapping where the platform supports one, a plain
// read-whole-file buffer everywhere else. Callers see one type either
// way — a File whose Data() is the file's contents — so format code
// (the dataset snapshot reader) never branches on how the bytes came
// in, and the mapped and heap paths are byte-identical by
// construction.
//
// The package also owns the unsafe aliasing helpers (Int32s, String)
// that reinterpret regions of a mapping as typed Go values without
// copying. Everything handed out by this package aliases the original
// region and MUST be treated as read-only: appending to or writing
// through an aliased slice either faults (a real mapping is PROT_READ)
// or silently corrupts shared bytes. The mapalias analyzer (gdb-lint)
// machine-checks that rule in the packages that consume mappings.
//
// Lifetime: Close unmaps, and every slice or string handed out before
// the Close dangles afterwards. Long-lived consumers (the dataset
// artifact registry) therefore never Close a mapping they have shared;
// tests that do Close must not retain aliases across it.
package mmapfile

import (
	"os"
	"unsafe"
)

// File is a read-only view of one file's bytes: memory-mapped when
// Mapped() is true, a private heap copy otherwise.
type File struct {
	data   []byte
	mapped bool
}

// Open returns a read-only view of the named file, preferring a memory
// mapping and falling back to reading the whole file into memory when
// mapping is unavailable (unsupported platform, empty file, or a
// mapping error). The fallback is indistinguishable to format code:
// Data() holds the same bytes either way.
func Open(path string) (*File, error) {
	if f, err := openMapped(path); err == nil {
		return f, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &File{data: data}, nil
}

// Data returns the file's bytes. The slice aliases the mapping (or the
// one heap copy) and must be treated as read-only; it is valid until
// Close.
func (f *File) Data() []byte { return f.data }

// Mapped reports whether the bytes are a live memory mapping (true) or
// a heap copy (false).
func (f *File) Mapped() bool { return f.mapped }

// Len returns the file size in bytes.
func (f *File) Len() int { return len(f.data) }

// Close releases the view: the mapping is unmapped (a heap copy is
// simply dropped). Every alias handed out from Data, Int32s or String
// is invalid afterwards.
func (f *File) Close() error {
	data, mapped := f.data, f.mapped
	f.data, f.mapped = nil, false
	if mapped && data != nil {
		return munmap(data)
	}
	return nil
}

// nativeLittleEndian reports whether this machine stores multi-byte
// integers little-endian — the byte order the snapshot format's
// aligned sections use, so aliasing is only valid when it holds.
var nativeLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// Int32s reinterprets b as a little-endian []int32 without copying.
// ok is false — and the caller must decode by copy instead — when the
// region cannot be aliased: length not a multiple of 4, base address
// not 4-byte aligned, or a big-endian host. An empty region aliases
// trivially.
func Int32s(b []byte) (s []int32, ok bool) {
	if len(b)%4 != 0 || !nativeLittleEndian {
		return nil, false
	}
	if len(b) == 0 {
		return []int32{}, true
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%unsafe.Alignof(int32(0)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*int32)(p), len(b)/4), true
}

// String reinterprets b as a string without copying. The result
// aliases b: it is immutable only because the region is — callers must
// hand in bytes nothing will ever write to (a read-only mapping, or a
// buffer they retain and never mutate).
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
