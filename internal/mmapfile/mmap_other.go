//go:build !unix

package mmapfile

import "errors"

// Non-unix platforms always take the read-whole-file fallback.
func openMapped(path string) (*File, error) {
	return nil, errors.New("mmapfile: mapping unsupported on this platform")
}

func munmap(data []byte) error { return nil }
