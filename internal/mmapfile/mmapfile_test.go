package mmapfile

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

func TestOpenMappedMatchesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("abcdefgh"), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !bytes.Equal(f.Data(), want) {
		t.Fatal("mapped bytes differ from file contents")
	}
	if f.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(want))
	}
	if !f.Mapped() {
		t.Log("mapping unavailable; fallback served the bytes (still correct)")
	}
}

func TestOpenEmptyFileFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mapped() {
		t.Fatal("zero-length file should not be mapped")
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d, want 0", f.Len())
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file opened without error")
	}
}

func TestCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, []byte("12345678"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if f.Data() != nil {
		t.Fatal("Data non-nil after Close")
	}
}

func TestInt32sAliases(t *testing.T) {
	if !nativeLittleEndian {
		t.Skip("big-endian host: aliasing is defined to refuse")
	}
	// An 8-aligned backing array, values round-tripped through the
	// little-endian encoding the snapshot sections use.
	vals := []int32{0, 1, -1, 1 << 30, -(1 << 30), 42}
	raw := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		raw = binary.LittleEndian.AppendUint32(raw, uint32(v))
	}
	got, ok := Int32s(raw)
	if !ok {
		t.Fatal("aligned region refused")
	}
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], v)
		}
	}
	// Empty region: trivially aliasable.
	if s, ok := Int32s(raw[:0]); !ok || len(s) != 0 {
		t.Fatalf("empty region: %v %v", s, ok)
	}
	// Length not a multiple of 4: refused.
	if _, ok := Int32s(raw[:5]); ok {
		t.Fatal("ragged length aliased")
	}
	// Misaligned base: refused. Byte slices carry no alignment
	// guarantee, so find a 4-aligned offset and step one past it.
	buf := make([]byte, 16)
	off := (4 - int(uintptr(unsafe.Pointer(&buf[0]))%4)) % 4
	if _, ok := Int32s(buf[off+1 : off+9]); ok {
		t.Fatal("misaligned base aliased")
	}
}

func TestStringAliases(t *testing.T) {
	b := []byte("hello, mapping")
	if got := String(b); got != "hello, mapping" {
		t.Fatalf("String = %q", got)
	}
	if got := String(nil); got != "" {
		t.Fatalf("String(nil) = %q", got)
	}
}
